(* The benchmark harness: regenerates every table and figure of Hanson's
   "A Performance Analysis of View Materialization Strategies" (SIGMOD 1987),
   both from the analytic cost model (exact reproduction of the formulas) and
   by measured simulation on the storage engine, plus Bechamel
   microbenchmarks of the core data structures.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- figure-1 ... -- selected sections
     dune exec bench/main.exe -- --scale 0.2  -- larger measured runs
     dune exec bench/main.exe -- --json adaptive figure-1-measured
                                              -- also write BENCH_*.json
     dune exec bench/main.exe -- --jobs 4 figure-1-measured
                                              -- sweep points on 4 domains
                                                 (output byte-identical to --jobs 1)
     dune exec bench/main.exe -- --durability wal figure-1-measured
                                              -- measured sections under the WAL
                                                 engine (wal cost column only)
     dune exec bench/main.exe -- durability   -- WAL overhead + observer-effect
                                                 check (BENCH_durability.json)
     dune exec bench/main.exe -- --wall --readers 4 --json serving
                                              -- wall-clock serving benchmark:
                                                 TPS + p50/p95/p99 latency per
                                                 strategy (BENCH_serving.json)

   See DESIGN.md section 3 for the experiment index and EXPERIMENTS.md for
   the recorded paper-vs-measured comparison. *)

open Core

let default_scale = 1.0

let scale = ref default_scale

let json_enabled = ref false

(* Number of domains for the measured sweeps (--jobs N; 0 = all cores).
   Every sweep point builds its own Ctx.t, so points are embarrassingly
   parallel and the output is byte-identical for any jobs value. *)
let jobs = ref 1

(* --durability wal runs every measured section under the write-ahead-
   logging engine (DESIGN section 9).  The log device is in-memory, so the
   sweeps stay domain-parallel safe; the only cost difference is the wal
   category. *)
let durability = ref "none"

(* --wall arms the serving section's wall-clock measurements (real TPS and
   latency quantiles from N reader domains, DESIGN section 10).  Off by
   default: wall numbers are machine-dependent, and every other section
   must stay byte-identical run to run. *)
let wall = ref false

(* Reader domains for the serving section (--readers N). *)
let readers = ref 2

let durability_wrap () : Experiment.wrap option =
  match !durability with
  | "none" -> None
  | "wal" ->
      Some
        (fun ~ctx ~initial strategy ->
          Durable.strategy (Durable.wrap ~ctx ~dev:(Device.memory ()) ~initial strategy))
  | other ->
      Printf.eprintf "unknown durability mode %s (expected wal or none)\n" other;
      exit 2

(* ------------------------------------------------------------------ *)
(* Hand-rolled JSON (no dependencies)                                  *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let j_str s = Printf.sprintf "\"%s\"" (json_escape s)
let j_num f = if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f else Printf.sprintf "%.6g" f
let j_int i = string_of_int i
let j_bool b = if b then "true" else "false"
let j_arr items = "[" ^ String.concat "," items ^ "]"
let j_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> j_str k ^ ":" ^ v) fields) ^ "}"

let write_json path json =
  let oc = open_out path in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let json_of_measurement (m : Runner.measurement) =
  j_obj
    [
      ("strategy", j_str m.Runner.strategy_name);
      ("transactions", j_int m.Runner.transactions);
      ("queries", j_int m.Runner.queries);
      ("cost_per_query", j_num m.Runner.cost_per_query);
      ("physical_reads", j_int m.Runner.physical_reads);
      ("physical_writes", j_int m.Runner.physical_writes);
      ("buffer_pool_hits", j_int m.Runner.buffer_pool_hits);
      ("buffer_pool_misses", j_int m.Runner.buffer_pool_misses);
      ( "category_costs",
        j_obj
          (List.filter_map
             (fun (cat, cost) ->
               if cost > 0. then Some (Cost_meter.category_name cat, j_num cost) else None)
             m.Runner.category_costs) );
    ]

(* When --json is on, measured sections run under a live recorder whose
   metric registry is embedded in the BENCH_*.json they write (the
   ["metrics"] field, in Metrics.to_json shape).  Without --json there is no
   recorder, and either way the measured numbers are identical (the recorder
   never touches the meter). *)
let bench_recorder () =
  if not !json_enabled then (None, None)
  else
    let metrics = Metrics.create () in
    (Some metrics, Some (Recorder.create ~metrics ()))

let metrics_field metrics =
  match metrics with None -> [] | Some m -> [ ("metrics", Metrics.to_json m) ]

let section title =
  let rule = String.make 78 '=' in
  Printf.printf "\n%s\n%s\n%s\n" rule title rule

let print_table ~headers rows = print_endline (Table.render ~headers rows)

let p_grid = [ 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95 ]

let measured_p_grid = [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let scaled_params prob =
  Params.with_update_probability (Experiment.scale Params.defaults !scale) prob

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let table_defaults () =
  section "Table (3.1): parameters and defaults";
  print_table ~headers:[ "parameter"; "value" ]
    (List.map (fun (k, v) -> [ k; v ]) (Params.rows Params.defaults))

let table_access_methods () =
  section "Table (3.1): access methods";
  print_table ~headers:[ "relation"; "access method" ]
    [
      [ "R, R1"; "clustered B+-tree on the view predicate column" ];
      [ "R2"; "clustered hashing on the join column (a key)" ];
      [ "materialized view V"; "clustered B+-tree on the view predicate column" ];
      [ "differential file AD"; "clustered hashing on the relation key + Bloom filter" ];
    ]

(* ------------------------------------------------------------------ *)
(* Figure 1: Model 1, cost vs P                                        *)
(* ------------------------------------------------------------------ *)

let figure_1 () =
  section "Figure 1: Model 1 -- average cost per query vs P (defaults)";
  let series =
    [
      ("deferred", 'D', Model1.total_deferred);
      ("immediate", 'I', Model1.total_immediate);
      ("clustered", 'C', Model1.total_clustered);
      ("unclustered", 'U', Model1.total_unclustered);
    ]
  in
  let rows =
    List.map
      (fun prob ->
        let p = Params.with_update_probability Params.defaults prob in
        Table.float_cell ~decimals:2 prob
        :: List.map (fun (_, _, total) -> Table.float_cell ~decimals:1 (total p)) series)
      p_grid
  in
  print_table ~headers:([ "P" ] @ List.map (fun (n, _, _) -> n) series) rows;
  (* unclustered is an order of magnitude above the rest; omit it from the
     plot so the crossover between the other three is visible *)
  let chart_series names =
    List.filter_map
      (fun (name, marker, total) ->
        if List.mem name names then
          Some
            ( name,
              marker,
              List.map
                (fun prob ->
                  (prob, total (Params.with_update_probability Params.defaults prob)))
                p_grid )
        else None)
      series
  in
  print_endline
    (Ascii_plot.line_chart ~title:"Figure 1 (sequential off-scale, unclustered omitted)"
       ~x_label:"P" ~y_label:"ms/query"
       ~series:(chart_series [ "deferred"; "immediate"; "clustered" ])
       ());
  Printf.printf "analytic crossover: immediate/clustered at P = %s\n"
    (match
       Regions.crossover ~lo:0.05 ~hi:0.9 (fun prob ->
           let p = Params.with_update_probability Params.defaults prob in
           Model1.total_immediate p -. Model1.total_clustered p)
     with
    | Some x -> Printf.sprintf "%.3f" x
    | None -> "none")

let figure_1_measured () =
  section
    (Printf.sprintf "Figure 1 (measured): simulated engine at N = %.0f"
       (Experiment.scale Params.defaults !scale).Params.n_tuples);
  let headers = [ "P"; "deferred"; "immediate"; "clustered"; "unclustered"; "winner" ] in
  (* One recorder (and metric registry) per sweep point: every point is an
     isolated engine, so the points can run on separate domains and the
     output is byte-identical for any --jobs value. *)
  let measured =
    Parallel.map_points ~jobs:!jobs
      (fun prob ->
        let p = scaled_params prob in
        let metrics, recorder = bench_recorder () in
        ( prob,
          Experiment.measure_model1 ?recorder ?wrap:(durability_wrap ()) p
            [ `Deferred; `Immediate; `Clustered; `Unclustered ],
          metrics ))
      measured_p_grid
  in
  let rows =
    List.map
      (fun (prob, results, _) ->
        let cost name = (List.assoc name results).Runner.cost_per_query in
        let winner =
          fst
            (List.fold_left
               (fun (bn, bc) (n, m) ->
                 if m.Runner.cost_per_query < bc then (n, m.Runner.cost_per_query)
                 else (bn, bc))
               ("-", Float.infinity) results)
        in
        [
          Table.float_cell ~decimals:2 prob;
          Table.float_cell ~decimals:1 (cost "deferred");
          Table.float_cell ~decimals:1 (cost "immediate");
          Table.float_cell ~decimals:1 (cost "qmod-clustered");
          Table.float_cell ~decimals:1 (cost "qmod-unclustered");
          winner;
        ])
      measured
  in
  print_table ~headers rows;
  if !json_enabled then
    write_json "BENCH_figures.json"
      (j_obj
         ([
           ("figure", j_str "figure-1-measured");
           ("n_tuples", j_num (Experiment.scale Params.defaults !scale).Params.n_tuples);
           ( "points",
             j_arr
               (List.map
                  (fun (prob, results, metrics) ->
                    j_obj
                      ([
                         ("P", j_num prob);
                         ( "strategies",
                           j_arr (List.map (fun (_, m) -> json_of_measurement m) results) );
                       ]
                      @ metrics_field metrics))
                  measured) );
          ]))

(* ------------------------------------------------------------------ *)
(* Figures 2, 3, 4, 6, 7: region maps                                  *)
(* ------------------------------------------------------------------ *)

let strategy_letter = function
  | "deferred" -> 'D'
  | "immediate" -> 'I'
  | "clustered" | "loopjoin" -> 'Q'
  | "unclustered" -> 'U'
  | "sequential" -> 'S'
  | "recompute" -> 'R'
  | _ -> '?'

let region_figure ~title ~base ~best () =
  print_endline
    (Ascii_plot.region_map ~title ~x_label:"P" ~y_label:"f" ~x_range:(0.02, 0.98)
       ~y_range:(0.02, 1.0)
       ~legend:[ ('D', "deferred"); ('I', "immediate"); ('Q', "query modification") ]
       ~classify:(fun p f -> strategy_letter (Regions.classify ~best ~base ~p ~f))
       ());
  (* region shares over a finer grid *)
  let counts = Hashtbl.create 8 in
  let samples = 40 in
  for i = 0 to samples - 1 do
    for j = 0 to samples - 1 do
      let p = 0.02 +. (0.96 *. float_of_int i /. float_of_int (samples - 1)) in
      let f = 0.02 +. (0.98 *. float_of_int j /. float_of_int (samples - 1)) in
      let w = Regions.classify ~best ~base ~p ~f in
      Hashtbl.replace counts w (1 + Option.value ~default:0 (Hashtbl.find_opt counts w))
    done
  done;
  let total = float_of_int (samples * samples) in
  print_table ~headers:[ "strategy"; "share of (P, f) grid" ]
    (List.sort compare
       (Hashtbl.fold
          (fun w c acc ->
            [ w; Printf.sprintf "%.1f%%" (100. *. float_of_int c /. total) ] :: acc)
          counts []))

let figure_2 () =
  section "Figure 2: Model 1 -- best strategy over f vs P (fv = .1)";
  region_figure ~title:"Figure 2" ~base:Params.defaults ~best:Regions.best_model1 ()

let figure_3 () =
  section "Figure 3: Model 1 -- best strategy over f vs P (fv = .01)";
  region_figure ~title:"Figure 3" ~base:{ Params.defaults with Params.fv = 0.01 }
    ~best:Regions.best_model1 ()

let figure_4 () =
  section "Figure 4: Model 1 -- best strategy over f vs P (C3 = 2, fv = .1)";
  region_figure ~title:"Figure 4" ~base:{ Params.defaults with Params.c3 = 2. }
    ~best:Regions.best_model1 ();
  (* the sensitivity claim: deferred's advantage over immediate grows with C3 *)
  let cells c3 =
    let base = { Params.defaults with Params.c3 } in
    List.fold_left
      (fun acc prob ->
        List.fold_left
          (fun acc f ->
            let p = Params.with_update_probability { base with Params.f } prob in
            if Model1.total_deferred p < Model1.total_immediate p then acc + 1 else acc)
          acc
          [ 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ])
      0
      [ 0.1; 0.3; 0.5; 0.7; 0.9; 0.95 ]
  in
  Printf.printf "grid cells where deferred beats immediate: C3=1: %d, C3=2: %d, C3=4: %d\n"
    (cells 1.) (cells 2.) (cells 4.)

(* ------------------------------------------------------------------ *)
(* Figure 5: Model 2, cost vs P                                        *)
(* ------------------------------------------------------------------ *)

let figure_5 () =
  section "Figure 5: Model 2 -- average cost per query vs P (defaults)";
  let series =
    [
      ("deferred", 'D', Model2.total_deferred);
      ("immediate", 'I', Model2.total_immediate);
      ("loopjoin", 'Q', Model2.total_loopjoin);
    ]
  in
  let rows =
    List.map
      (fun prob ->
        let p = Params.with_update_probability Params.defaults prob in
        Table.float_cell ~decimals:2 prob
        :: List.map (fun (_, _, total) -> Table.float_cell ~decimals:1 (total p)) series)
      p_grid
  in
  print_table ~headers:([ "P" ] @ List.map (fun (n, _, _) -> n) series) rows;
  print_endline
    (Ascii_plot.line_chart ~title:"Figure 5" ~x_label:"P" ~y_label:"ms/query"
       ~series:
         (List.map
            (fun (name, marker, total) ->
              ( name,
                marker,
                List.map
                  (fun prob ->
                    (prob, total (Params.with_update_probability Params.defaults prob)))
                  p_grid ))
            series)
       ());
  Printf.printf "analytic crossover: immediate/loopjoin at P = %s\n"
    (match
       Regions.crossover ~lo:0.05 ~hi:0.999 (fun prob ->
           let p = Params.with_update_probability Params.defaults prob in
           Model2.total_immediate p -. Model2.total_loopjoin p)
     with
    | Some x -> Printf.sprintf "%.3f" x
    | None -> "none (materialization wins for all P below .999)")

let figure_5_measured () =
  section
    (Printf.sprintf "Figure 5 (measured): simulated engine at N = %.0f"
       (Experiment.scale Params.defaults !scale).Params.n_tuples);
  let rows =
    Parallel.map_points ~jobs:!jobs
      (fun prob ->
        let p = scaled_params prob in
        let results =
          Experiment.measure_model2 ?wrap:(durability_wrap ()) p
            [ `Deferred; `Immediate; `Loopjoin ]
        in
        let cost name = (List.assoc name results).Runner.cost_per_query in
        [
          Table.float_cell ~decimals:2 prob;
          Table.float_cell ~decimals:1 (cost "deferred");
          Table.float_cell ~decimals:1 (cost "immediate");
          Table.float_cell ~decimals:1 (cost "qmod-loopjoin");
        ])
      measured_p_grid
  in
  print_table ~headers:[ "P"; "deferred"; "immediate"; "loopjoin" ] rows

let figure_6 () =
  section "Figure 6: Model 2 -- best strategy over f vs P (fv = .1)";
  region_figure ~title:"Figure 6" ~base:Params.defaults ~best:Regions.best_model2 ()

let figure_7 () =
  section "Figure 7: Model 2 -- best strategy over f vs P (fv = .01)";
  region_figure ~title:"Figure 7" ~base:{ Params.defaults with Params.fv = 0.01 }
    ~best:Regions.best_model2 ()

(* ------------------------------------------------------------------ *)
(* Figure 8: Model 3, cost vs l                                        *)
(* ------------------------------------------------------------------ *)

let l_grid = [ 1.; 2.; 5.; 10.; 25.; 50.; 100.; 200.; 400. ]

let figure_8 () =
  section "Figure 8: Model 3 -- aggregate query cost vs l (defaults)";
  let series =
    [
      ("deferred", 'D', Model3.total_deferred);
      ("immediate", 'I', Model3.total_immediate);
      ("clustered scan", 'C', Model3.total_recompute);
    ]
  in
  let rows =
    List.map
      (fun l ->
        let p = { Params.defaults with Params.l_per_txn = l } in
        Table.float_cell ~decimals:0 l
        :: List.map (fun (_, _, total) -> Table.float_cell ~decimals:1 (total p)) series)
      l_grid
  in
  print_table ~headers:([ "l" ] @ List.map (fun (n, _, _) -> n) series) rows;
  print_endline
    (Ascii_plot.line_chart
       ~title:"Figure 8 (maintenance only; clustered scan = 17500 off-scale)" ~x_label:"l"
       ~y_label:"ms/query"
       ~series:
         (List.filter_map
            (fun (name, marker, total) ->
              if name = "clustered scan" then None
              else
                Some
                  ( name,
                    marker,
                    List.map
                      (fun l -> (l, total { Params.defaults with Params.l_per_txn = l }))
                      l_grid ))
            series)
       ())

let figure_8_measured () =
  section
    (Printf.sprintf "Figure 8 (measured): simulated engine at N = %.0f"
       (Experiment.scale Params.defaults !scale).Params.n_tuples);
  let rows =
    Parallel.map_points ~jobs:!jobs
      (fun l ->
        let p = { (Experiment.scale Params.defaults !scale) with Params.l_per_txn = l } in
        let results =
          Experiment.measure_model3 ?wrap:(durability_wrap ()) p
            [ `Deferred; `Immediate; `Recompute ]
        in
        let cost name = (List.assoc name results).Runner.cost_per_query in
        [
          Table.float_cell ~decimals:0 l;
          Table.float_cell ~decimals:1 (cost "deferred");
          Table.float_cell ~decimals:1 (cost "immediate");
          Table.float_cell ~decimals:1 (cost "recompute");
        ])
      [ 5.; 25.; 100. ]
  in
  print_table ~headers:[ "l"; "deferred"; "immediate"; "recompute" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 9: Model 3, equal-cost curves                                *)
(* ------------------------------------------------------------------ *)

let figure_9 () =
  section "Figure 9: Model 3 -- equal-cost P vs l for immediate vs clustered scan";
  let fs = [ (0.001, '1'); (0.01, '2'); (0.1, '3'); (1.0, '4') ] in
  let ls = [ 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000. ] in
  let rows =
    List.map
      (fun l ->
        Table.float_cell ~decimals:0 l
        :: List.map
             (fun (f, _) ->
               Table.float_cell ~decimals:4
                 (Regions.fig9_equal_cost_p { Params.defaults with Params.f } ~l))
             fs)
      ls
  in
  print_table
    ~headers:([ "l" ] @ List.map (fun (f, _) -> Printf.sprintf "P* (f=%g)" f) fs)
    rows;
  print_endline
    (Ascii_plot.line_chart
       ~title:"Figure 9: standard processing best above each curve, immediate below"
       ~x_label:"l" ~y_label:"P*"
       ~series:
         (List.map
            (fun (f, marker) ->
              ( Printf.sprintf "f=%g" f,
                marker,
                List.map
                  (fun l ->
                    (l, Regions.fig9_equal_cost_p { Params.defaults with Params.f } ~l))
                  ls ))
            fs)
       ())

(* ------------------------------------------------------------------ *)
(* EMP-DEPT special case (3.5) and Yao table (Appendix B)              *)
(* ------------------------------------------------------------------ *)

let emp_dept () =
  section "EMP-DEPT (3.5): big join view, one-tuple queries (f=1, l=1, fv=1/fN)";
  let base = Regions.emp_dept_params Params.defaults in
  let rows =
    List.map
      (fun prob ->
        let p = Params.with_update_probability base prob in
        [
          Table.float_cell ~decimals:2 prob;
          Table.float_cell ~decimals:1 (Model2.total_deferred p);
          Table.float_cell ~decimals:1 (Model2.total_immediate p);
          Table.float_cell ~decimals:1 (Model2.total_loopjoin p);
          fst (Regions.best_model2 p);
        ])
      [ 0.02; 0.05; 0.08; 0.1; 0.2; 0.5; 0.9 ]
  in
  print_table ~headers:[ "P"; "deferred"; "immediate"; "loopjoin"; "best" ] rows;
  match Regions.emp_dept_crossover Params.defaults with
  | Some x ->
      Printf.printf "query modification wins for all P >= %.3f (paper reports ~.08)\n" x
  | None -> print_endline "no crossover found"

let yao_table () =
  section "Appendix B: Yao function -- exact vs Cardenas approximation";
  let n = 10_000. and m = 500. in
  let rows =
    List.map
      (fun k ->
        let e = Yao.exact ~n ~m ~k and c = Yao.cardenas ~n ~m ~k in
        [
          Table.float_cell ~decimals:0 k;
          Table.float_cell ~decimals:3 e;
          Table.float_cell ~decimals:3 c;
          Printf.sprintf "%.2f%%" (100. *. Stats.relative_error ~expected:e ~actual:c);
        ])
      [ 1.; 5.; 10.; 50.; 100.; 500.; 1000.; 5000. ]
  in
  Printf.printf "n = %.0f records, m = %.0f blocks (blocking factor %.0f)\n" n m (n /. m);
  print_table ~headers:[ "k"; "exact y(n,m,k)"; "Cardenas"; "error" ] rows;
  (* triangle inequality spot check (the paper's section-4 argument) *)
  let y k = Yao.eval ~n ~m ~k in
  Printf.printf "triangle: y(1000) = %.1f <= y(600) + y(400) = %.1f\n" (y 1000.)
    (y 600. +. y 400.)

(* ------------------------------------------------------------------ *)
(* Ablations (section-4 extensions)                                    *)
(* ------------------------------------------------------------------ *)

let small_geometry = { Strategy.page_bytes = 400; index_entry_bytes = 20 }

let ablation_workload ?(seed = 77) ~n ~f ~k ~l ~q () =
  let rng = Rng.create seed in
  let tids = Tuple.source () in
  let dataset = Dataset.make_model1 ~rng ~tids ~n ~f ~s_bytes:100 in
  let tuples = Array.of_list dataset.Dataset.m1_tuples in
  let ops =
    Stream.generate ~rng ~tuples
      ~mutate:
        (Stream.mutate_column ~tids ~col:2 (fun rng ->
             Value.Float (float_of_int (Rng.int rng 100))))
      ~k ~l ~q
      ~query_of:(Stream.range_query_of ~lo_max:(0.8 *. f) ~width:(0.2 *. f))
  in
  (dataset, ops, Tuple.peek tids)

let run_sp_strategy ~first_tid dataset ops ctor =
  let ctx = Ctx.create ~geometry:small_geometry ~first_tid () in
  let env =
    {
      Strategy_sp.ctx;
      view = dataset.Dataset.m1_view;
      initial = dataset.Dataset.m1_tuples;
      ad_buckets = 4;
    }
  in
  Runner.run ~ctx ~strategy:(ctor env) ~ops ()

let ablation_refresh_interval () =
  section "Ablation: refresh frequency (the Yao triangle inequality, section 4)";
  print_endline "Analytic: Model-1 deferred total vs refreshes per query interval";
  print_table ~headers:[ "refreshes/query"; "total ms/query" ]
    (List.map
       (fun m ->
         [
           Table.float_cell ~decimals:0 m;
           Table.float_cell ~decimals:1
             (Extensions.deferred_refresh_rate Params.defaults ~refreshes_per_query:m);
         ])
       [ 1.; 2.; 5.; 10.; 25. ]);
  print_endline "Measured: refresh-category cost per query (simulated engine)";
  let dataset, ops, first_tid = ablation_workload ~n:2000 ~f:0.3 ~k:100 ~l:8 ~q:20 () in
  print_table ~headers:[ "policy"; "refresh ms/query"; "total ms/query" ]
    (Parallel.map_points ~jobs:!jobs
       (fun (name, ctor) ->
         let m = run_sp_strategy ~first_tid dataset ops ctor in
         [
           name;
           Table.float_cell ~decimals:1
             (List.assoc Cost_meter.Refresh m.Runner.category_costs
             /. float_of_int m.Runner.queries);
           Table.float_cell ~decimals:1 m.Runner.cost_per_query;
         ])
       [
         ("on demand (deferred)", Strategy_sp.deferred);
         ("every 5 txns", Strategy_sp.deferred_periodic ~every:5);
         ("every 2 txns", Strategy_sp.deferred_periodic ~every:2);
         ("every txn", Strategy_sp.deferred_periodic ~every:1);
         ("immediate", Strategy_sp.immediate);
         ("asynchronous (idle-time refresh)", Strategy_sp.deferred_async);
         ("snapshot every 10 txns (stale!)", Strategy_sp.snapshot ~period:10);
       ])

let ablation_split_ad () =
  section "Ablation: combined AD file vs separate A and D files (section 2.2.2)";
  Printf.printf
    "analytic: combined %.1f vs split %.1f ms/query (difference = 2 x C_AD = %.1f)\n"
    (Model1.total_deferred Params.defaults)
    (Extensions.deferred_split_ad Params.defaults)
    (2. *. Model1.c_ad Params.defaults);
  let dataset, ops, first_tid = ablation_workload ~n:2000 ~f:0.3 ~k:100 ~l:8 ~q:20 () in
  print_table ~headers:[ "layout"; "physical I/Os"; "hr ms"; "total ms/query" ]
    (Parallel.map_points ~jobs:!jobs
       (fun (name, ctor) ->
         let m = run_sp_strategy ~first_tid dataset ops ctor in
         [
           name;
           string_of_int (m.Runner.physical_reads + m.Runner.physical_writes);
           Table.float_cell ~decimals:0 (List.assoc Cost_meter.Hr m.Runner.category_costs);
           Table.float_cell ~decimals:1 m.Runner.cost_per_query;
         ])
       [
         ("combined AD (3 I/Os per update)", Strategy_sp.deferred);
         ("split A and D (5 I/Os per update)", Strategy_sp.deferred_split_ad);
       ])

let ablation_multidisk () =
  section "Ablation: hypothetical relations on separate disks (section 3.3)";
  print_table
    ~headers:[ "HR I/O overlap"; "deferred ms/query"; "deferred/immediate crossover P" ]
    (List.map
       (fun overlap ->
         let crossover =
           match Extensions.multidisk_crossover_p Params.defaults ~overlap with
           | Some x -> Printf.sprintf "%.3f" x
           | None -> "none"
         in
         [
           Table.float_cell ~decimals:2 overlap;
           Table.float_cell ~decimals:1
             (Extensions.deferred_multidisk Params.defaults ~overlap);
           crossover;
         ])
       [ 0.; 0.25; 0.5; 0.75; 1. ])

let ablation_multiview () =
  section "Ablation: n views sharing one hypothetical relation (section 4)";
  let rng = Rng.create 88 in
  let gen_tids = Tuple.source () in
  let dataset = Dataset.make_model1 ~rng ~tids:gen_tids ~n:2000 ~f:0.9 ~s_bytes:100 in
  let base = dataset.Dataset.m1_schema in
  let views =
    List.map
      (fun (name, lo, hi) ->
        View_def.make_sp ~name ~base
          ~pred:(Predicate.Between (1, Value.Float lo, Value.Float hi))
          ~project:[ "pval"; "amount" ] ~cluster:"pval")
      [ ("v-low", 0., 0.3); ("v-mid", 0.3, 0.6); ("v-high", 0.6, 0.9) ]
  in
  let tuples = Array.of_list dataset.Dataset.m1_tuples in
  let ops =
    Stream.generate ~rng ~tuples
      ~mutate:
        (Stream.mutate_column ~tids:gen_tids ~col:2 (fun rng ->
             Value.Float (float_of_int (Rng.int rng 100))))
      ~k:100 ~l:8 ~q:20
      ~query_of:(Stream.range_query_of ~lo_max:0.8 ~width:0.1)
  in
  let first_tid = Tuple.peek gen_tids in
  (* shared manager *)
  let ctx = Ctx.create ~geometry:small_geometry ~first_tid () in
  let meter = Ctx.meter ctx in
  let multi =
    Multi_view.create ~ctx ~base ~views ~initial:dataset.Dataset.m1_tuples ~ad_buckets:4 ()
  in
  Cost_meter.reset meter;
  List.iter
    (fun op ->
      match op with
      | Stream.Txn changes -> Multi_view.handle_transaction multi changes
      | Stream.Query q ->
          List.iter (fun v -> ignore (Multi_view.answer_query multi ~view:v q))
            (Multi_view.view_names multi))
    ops;
  let shared = Cost_meter.cost meter Cost_meter.Refresh +. Cost_meter.cost meter Cost_meter.Hr in
  (* separate deferred instances *)
  let separate =
    List.fold_left
      (fun acc v ->
        let ctx = Ctx.create ~geometry:small_geometry ~first_tid () in
        let meter = Ctx.meter ctx in
        let s =
          Strategy_sp.deferred
            {
              Strategy_sp.ctx;
              view = v;
              initial = dataset.Dataset.m1_tuples;
              ad_buckets = 4;
            }
        in
        Cost_meter.reset meter;
        List.iter
          (fun op ->
            match op with
            | Stream.Txn changes -> s.Strategy.handle_transaction changes
            | Stream.Query q -> ignore (s.Strategy.answer_query q))
          ops;
        acc +. Cost_meter.cost meter Cost_meter.Refresh +. Cost_meter.cost meter Cost_meter.Hr)
      0. views
  in
  print_table ~headers:[ "organization"; "HR + refresh cost (ms, whole run)" ]
    [
      [ "3 views, shared hypothetical relation"; Table.float_cell ~decimals:0 shared ];
      [ "3 separate deferred instances"; Table.float_cell ~decimals:0 separate ];
    ];
  Printf.printf "sharing saves %.0f%% of maintenance I/O on this workload\n"
    (100. *. (separate -. shared) /. separate)

let ablation_planner () =
  section "Ablation: optimizer choice of access path (section 3.3)";
  let rng = Rng.create 99 in
  let gen_tids = Tuple.source () in
  let dataset = Dataset.make_model1 ~rng ~tids:gen_tids ~n:2000 ~f:0.5 ~s_bytes:100 in
  let first_tid = Tuple.peek gen_tids in
  let measure route column lo hi =
    let ctx = Ctx.create ~geometry:small_geometry ~first_tid () in
    let meter = Ctx.meter ctx in
    let planner =
      Planner.create ~ctx ~view:dataset.Dataset.m1_view ~base_cluster:"amount"
        ~initial:dataset.Dataset.m1_tuples ()
    in
    Cost_meter.reset meter;
    ignore (Planner.answer_via planner route ~column ~lo ~hi);
    Cost_meter.total_cost meter
  in
  print_table
    ~headers:[ "query"; "via base (ms)"; "via view (ms)"; "planner picks" ]
    (List.map
       (fun (label, column, lo, hi) ->
         let base_cost = measure Planner.Via_base column lo hi in
         let view_cost = measure Planner.Via_view column lo hi in
         let ctx = Ctx.create ~geometry:small_geometry ~first_tid () in
         let planner =
           Planner.create ~ctx ~view:dataset.Dataset.m1_view ~base_cluster:"amount"
             ~initial:dataset.Dataset.m1_tuples ()
         in
         let route =
           match Planner.plan planner ~column ~lo ~hi with
           | Planner.Via_base -> "base"
           | Planner.Via_view -> "view"
         in
         [
           label;
           Table.float_cell ~decimals:0 base_cost;
           Table.float_cell ~decimals:0 view_cost;
           route;
         ])
       [
         ("pval in [.2, .25] (view cluster)", "pval", Value.Float 0.2, Value.Float 0.25);
         ("amount in [100, 150] (base cluster)", "amount", Value.Float 100., Value.Float 150.);
       ])

(* ------------------------------------------------------------------ *)
(* Adaptive maintenance on a phase-shifting workload                   *)
(* ------------------------------------------------------------------ *)

let adaptive_bench () =
  section "Adaptive: phase-shifting workload (update-heavy -> query-heavy)";
  (* A region-boundary-crossing workload: phase 1 is update-heavy (query
     modification's region), phase 2 query-heavy (materialization's region).
     The adaptive strategy starts on query modification and must notice the
     shift, pay one migration and track the per-phase winner.  Sized at
     N = 5000 so the cost gap clears the controller's hysteresis margin. *)
  let p =
    {
      (Experiment.scale Params.defaults (Float.min 1. (0.05 *. !scale))) with
      Params.f = 0.5;
      fv = 0.5;
    }
  in
  let l = 8 in
  let phase_specs = [ (120, l, 12); (12, l, 240) ] in
  let phases =
    List.map
      (fun (k, l, q) -> { Experiment.sp_k = k; sp_l = l; sp_q = q; sp_fv = p.Params.fv })
      phase_specs
  in
  let metrics, recorder = bench_recorder () in
  let results =
    Experiment.measure_phased ?recorder p ~phases
      ~adaptive_initial:Migrate.Qmod_clustered
      [ `Clustered; `Deferred; `Immediate; `Adaptive ]
  in
  print_table
    ~headers:[ "strategy"; "phase1 ms/q"; "phase2 ms/q"; "overall ms/q" ]
    (List.map
       (fun r ->
         r.Experiment.ph_name
         :: (List.map
               (fun m -> Table.float_cell ~decimals:1 m.Runner.cost_per_query)
               r.Experiment.ph_per_phase
            @ [ Table.float_cell ~decimals:1 r.Experiment.ph_overall.Runner.cost_per_query ]))
       results);
  let adaptive = List.find (fun r -> r.Experiment.ph_adaptive <> None) results in
  let statics = List.filter (fun r -> r.Experiment.ph_adaptive = None) results in
  let phase_cost r i = (List.nth r.Experiment.ph_per_phase i).Runner.cost_per_query in
  let nphases = List.length phases in
  let per_phase_ok =
    List.init nphases (fun i ->
        let best =
          List.fold_left (fun acc r -> Float.min acc (phase_cost r i)) Float.infinity statics
        in
        let a = phase_cost adaptive i in
        let ok = a <= 1.1 *. best in
        Printf.printf "phase %d: adaptive %.1f vs best static %.1f (%+.1f%%) %s\n" (i + 1) a
          best
          (100. *. ((a /. best) -. 1.))
          (if ok then "[within 10%]" else "[MISSED 10%]");
        ok)
  in
  let worst_overall =
    List.fold_left
      (fun acc r -> Float.max acc r.Experiment.ph_overall.Runner.cost_per_query)
      0. statics
  in
  let adaptive_overall = adaptive.Experiment.ph_overall.Runner.cost_per_query in
  let overall_ok = adaptive_overall < worst_overall in
  Printf.printf "overall: adaptive %.1f vs worst static %.1f %s\n" adaptive_overall
    worst_overall
    (if overall_ok then "[strictly better]" else "[NOT better]");
  (match adaptive.Experiment.ph_adaptive with
  | None -> ()
  | Some a ->
      List.iter
        (fun m ->
          Printf.printf "migration after query %d: %s -> %s (measured %.0f ms)\n"
            m.Adaptive.at_query
            (Migrate.kind_name m.Adaptive.from_kind)
            (Migrate.kind_name m.Adaptive.to_kind)
            m.Adaptive.measured_cost)
        (Adaptive.migrations a));
  if !json_enabled then
    let adaptive_json =
      match adaptive.Experiment.ph_adaptive with
      | None -> []
      | Some a ->
          [
            ( "migrations",
              j_arr
                (List.map
                   (fun m ->
                     j_obj
                       [
                         ("at_query", j_int m.Adaptive.at_query);
                         ("from", j_str (Migrate.kind_name m.Adaptive.from_kind));
                         ("to", j_str (Migrate.kind_name m.Adaptive.to_kind));
                         ("measured_cost", j_num m.Adaptive.measured_cost);
                       ])
                   (Adaptive.migrations a)) );
            ("decisions", j_int (List.length (Adaptive.decision_log a)));
            ("switches", j_int (Controller.switches (Adaptive.controller a)));
          ]
    in
    write_json "BENCH_adaptive.json"
      (j_obj
         ([
            ( "workload",
              j_obj
                [
                  ("n_tuples", j_num p.Params.n_tuples);
                  ("f", j_num p.Params.f);
                  ("fv", j_num p.Params.fv);
                  ( "phases",
                    j_arr
                      (List.map
                         (fun (k, l, q) ->
                           j_obj [ ("k", j_int k); ("l", j_int l); ("q", j_int q) ])
                         phase_specs) );
                ] );
            ( "strategies",
              j_arr
                (List.map
                   (fun r ->
                     j_obj
                       [
                         ("strategy", j_str r.Experiment.ph_name);
                         ("overall", json_of_measurement r.Experiment.ph_overall);
                         ( "phases",
                           j_arr (List.map json_of_measurement r.Experiment.ph_per_phase) );
                       ])
                   results) );
            ( "acceptance",
              j_obj
                [
                  ("within_10pct_each_phase", j_bool (List.for_all Fun.id per_phase_ok));
                  ("better_than_worst_overall", j_bool overall_ok);
                ] );
          ]
         @ adaptive_json @ metrics_field metrics))

(* ------------------------------------------------------------------ *)
(* Durability: WAL + checkpoint overhead                               *)
(* ------------------------------------------------------------------ *)

let durability_bench () =
  section "Durability: WAL + checkpoint overhead (model 1, in-memory log device)";
  let group_commit = 4 and checkpoint_every = 32 in
  let config = Wal.config ~group_commit ~checkpoint_every () in
  let wrap : Experiment.wrap =
   fun ~ctx ~initial strategy ->
    Durable.strategy (Durable.wrap ~config ~ctx ~dev:(Device.memory ()) ~initial strategy)
  in
  let strategies = [ `Deferred; `Immediate; `Clustered ] in
  Printf.printf "group commit every %d txns, checkpoint every %d txns\n" group_commit
    checkpoint_every;
  (* Each point measures the same seeded workload twice — plain and under
     the durable engine — so the delta is exactly the wal category and the
     zero-observer-effect claim is checked on every row. *)
  let measured =
    Parallel.map_points ~jobs:!jobs
      (fun prob ->
        let p = scaled_params prob in
        let plain = Experiment.measure_model1 p strategies in
        let durable = Experiment.measure_model1 ~wrap p strategies in
        (prob, plain, durable))
      measured_p_grid
  in
  let wal_ms (m : Runner.measurement) =
    Option.value ~default:0. (List.assoc_opt Cost_meter.Wal m.Runner.category_costs)
  in
  let observer_free (a : Runner.measurement) (b : Runner.measurement) =
    a.Runner.physical_reads = b.Runner.physical_reads
    && a.Runner.physical_writes = b.Runner.physical_writes
    && List.for_all
         (fun (cat, cost) ->
           cat = Cost_meter.Wal
           || Float.abs (cost -. Option.value ~default:0. (List.assoc_opt cat b.Runner.category_costs)) < 1e-9)
         a.Runner.category_costs
  in
  let rows =
    List.concat_map
      (fun (prob, plain, durable) ->
        List.map
          (fun (name, (d : Runner.measurement)) ->
            let p0 = List.assoc name plain in
            [
              Table.float_cell ~decimals:2 prob;
              name;
              Table.float_cell ~decimals:1 p0.Runner.cost_per_query;
              Table.float_cell ~decimals:1 d.Runner.cost_per_query;
              Table.float_cell ~decimals:1 (wal_ms d /. float_of_int d.Runner.queries);
              Printf.sprintf "%.1f%%"
                (100. *. (d.Runner.cost_per_query /. p0.Runner.cost_per_query -. 1.));
              (if observer_free p0 d then "ok" else "DRIFT");
            ])
          durable)
      measured
  in
  print_table
    ~headers:
      [ "P"; "strategy"; "none ms/q"; "wal ms/q"; "wal-only ms/q"; "overhead"; "observer" ]
    rows;
  let drift =
    List.exists (fun row -> match List.rev row with last :: _ -> last <> "ok" | [] -> false) rows
  in
  if drift then print_endline "WARNING: durability changed a non-wal cost category"
  else
    print_endline
      "durability cost is fully isolated to the wal category (no observer effect)";
  if !json_enabled then
    write_json "BENCH_durability.json"
      (j_obj
         [
           ("figure", j_str "durability");
           ("n_tuples", j_num (Experiment.scale Params.defaults !scale).Params.n_tuples);
           ("group_commit", j_int group_commit);
           ("checkpoint_every", j_int checkpoint_every);
           ( "points",
             j_arr
               (List.map
                  (fun (prob, plain, durable) ->
                    j_obj
                      [
                        ("P", j_num prob);
                        ( "strategies",
                          j_arr
                            (List.map
                               (fun (name, (d : Runner.measurement)) ->
                                 let p0 = List.assoc name plain in
                                 j_obj
                                   [
                                     ("strategy", j_str name);
                                     ("none", json_of_measurement p0);
                                     ("wal", json_of_measurement d);
                                     ( "wal_ms_per_query",
                                       j_num (wal_ms d /. float_of_int d.Runner.queries) );
                                     ("observer_effect_free", j_bool (observer_free p0 d));
                                   ])
                               durable) );
                      ])
                  measured) );
         ])

(* ------------------------------------------------------------------ *)
(* Serving: wall-clock TPS / latency (DESIGN section 10)               *)
(* ------------------------------------------------------------------ *)

let j_latency (l : Serve.latency) =
  j_obj
    [
      ("count", j_int l.Serve.l_count);
      ("mean", j_num l.Serve.l_mean_us);
      ("p50", j_num l.Serve.l_p50_us);
      ("p95", j_num l.Serve.l_p95_us);
      ("p99", j_num l.Serve.l_p99_us);
      ("max", j_num l.Serve.l_max_us);
    ]

let serving_bench () =
  section "Serving: MVCC snapshot readers + single-writer group commit (wall clock)";
  if not !wall then
    print_endline
      "skipped (pass --wall to measure; wall-clock numbers are machine-dependent, \
       so they only run when asked and never land in the deterministic sections)"
  else begin
    let prob = 0.5 in
    let p = scaled_params prob in
    let queries_per_reader = 200 and publish_every = 8 and group_commit = 8 in
    let config =
      {
        Serve.readers = !readers;
        queries_per_reader;
        publish_every;
        durability = Serve.Wal_group_commit (Wal.config ~group_commit ());
        record_observations = false;
        trace_sample = 0;
        sketch_capacity = 0;
        flight_capacity = 0;
        dash_every = 0;
      }
    in
    let strategies = [ `Deferred; `Immediate; `Clustered ] in
    Printf.printf "P=%.2f, N=%.0f, %d readers x %d queries, epoch every %d txns, group commit %d\n"
      prob p.Params.n_tuples !readers queries_per_reader publish_every group_commit;
    (* One classic (single-session, modeled-clock) measurement per strategy
       runs alongside the wall-clock serve: the modeled column below must
       match a --wall-less run exactly — serving never contaminates the
       modeled axis. *)
    let results =
      List.map
        (fun s ->
          let modeled = snd (List.hd (Experiment.measure_model1 p [ s ])) in
          let r = Serve.run ~config ~params:p ~strategy:s () in
          (r, modeled))
        strategies
    in
    let rows =
      List.map
        (fun ((r : Serve.report), (modeled : Runner.measurement)) ->
          [
            r.Serve.r_strategy;
            Table.float_cell ~decimals:1 modeled.Runner.cost_per_query;
            Table.float_cell ~decimals:0 r.Serve.r_tps;
            Table.float_cell ~decimals:0 r.Serve.r_qps;
            Table.float_cell ~decimals:1 r.Serve.r_query_latency.Serve.l_p50_us;
            Table.float_cell ~decimals:1 r.Serve.r_query_latency.Serve.l_p95_us;
            Table.float_cell ~decimals:1 r.Serve.r_query_latency.Serve.l_p99_us;
            Table.float_cell ~decimals:1 r.Serve.r_txn_latency.Serve.l_p99_us;
            j_int r.Serve.r_epochs;
            j_int r.Serve.r_reclaimed;
            Table.float_cell ~decimals:0 r.Serve.r_writer_alloc_per_txn;
            Table.float_cell ~decimals:0 r.Serve.r_reader_alloc_per_query;
          ])
        results
    in
    print_table
      ~headers:
        [
          "strategy"; "modeled ms/q"; "tps"; "qps"; "q p50 us"; "q p95 us"; "q p99 us";
          "txn p99 us"; "epochs"; "reclaimed"; "B/txn"; "B/query";
        ]
      rows;
    if !json_enabled then
      write_json "BENCH_serving.json"
        (j_obj
           [
             ("figure", j_str "serving");
             ("n_tuples", j_num p.Params.n_tuples);
             ("P", j_num prob);
             ("readers", j_int !readers);
             ("queries_per_reader", j_int queries_per_reader);
             ("publish_every", j_int publish_every);
             ("group_commit", j_int group_commit);
             ( "strategies",
               j_arr
                 (List.map
                    (fun ((r : Serve.report), modeled) ->
                      j_obj
                        [
                          ("strategy", j_str r.Serve.r_strategy);
                          ("modeled", json_of_measurement modeled);
                          ("modeled_serving_ms", j_num r.Serve.r_modeled_ms);
                          ("final_digest", j_str r.Serve.r_final_digest);
                          ( "wall",
                            j_obj
                              [
                                ("tps", j_num r.Serve.r_tps);
                                ("qps", j_num r.Serve.r_qps);
                                ("wall_s", j_num r.Serve.r_wall_s);
                                ("txns", j_int r.Serve.r_txns);
                                ("queries", j_int r.Serve.r_queries);
                                ("epochs", j_int r.Serve.r_epochs);
                                ("reclaimed", j_int r.Serve.r_reclaimed);
                                ("max_live", j_int r.Serve.r_max_live);
                                ("query_latency_us", j_latency r.Serve.r_query_latency);
                                ("txn_latency_us", j_latency r.Serve.r_txn_latency);
                                ( "alloc",
                                  j_obj
                                    [
                                      ( "writer_bytes",
                                        j_num r.Serve.r_writer_alloc_bytes );
                                      ( "writer_bytes_per_txn",
                                        j_num r.Serve.r_writer_alloc_per_txn );
                                      ( "reader_bytes",
                                        j_num r.Serve.r_reader_alloc_bytes );
                                      ( "reader_bytes_per_query",
                                        j_num r.Serve.r_reader_alloc_per_query );
                                    ] );
                              ] );
                        ])
                    results) );
           ])
  end

(* ------------------------------------------------------------------ *)
(* Fleet: shared-subexpression maintenance at 16/64/256 views          *)
(* ------------------------------------------------------------------ *)

let fleet_bench () =
  section "Fleet: shared maintenance + advisor vs isolated engines (DESIGN section 14)";
  let metrics, recorder = bench_recorder () in
  let sc x = max 1 (int_of_float (float_of_int x *. !scale)) in
  let sizes = [ 16; 64; 256 ] in
  let results =
    List.map
      (fun views ->
        let opts =
          {
            Fleet_report.default_opts with
            Fleet_report.ro_views = views;
            ro_overlap = 0.5;
            ro_zipf = 1.1;
            ro_n_tuples = sc 2000;
            ro_k = sc 200;
            ro_l = 8;
            ro_q = max 40 (sc 100);
            ro_seed = 11;
          }
        in
        (views, Fleet_report.run_comparison ?recorder opts))
      sizes
  in
  print_table
    ~headers:
      [
        "views";
        "classes";
        "groups";
        "aliases";
        "mat";
        "promote";
        "demote";
        "shared ms/delta";
        "isolated ms/delta";
        "maint speedup";
        "exact";
      ]
    (List.map
       (fun (views, r) ->
         [
           string_of_int views;
           string_of_int r.Fleet_report.r_classes;
           string_of_int r.Fleet_report.r_groups;
           string_of_int r.Fleet_report.r_aliases;
           string_of_int r.Fleet_report.r_materialized;
           string_of_int r.Fleet_report.r_promotions;
           string_of_int r.Fleet_report.r_demotions;
           Table.float_cell ~decimals:2 r.Fleet_report.r_shared_ms_per_delta;
           Table.float_cell ~decimals:2 r.Fleet_report.r_isolated_ms_per_delta;
           Table.float_cell ~decimals:2 r.Fleet_report.r_maint_speedup;
           (if r.Fleet_report.r_match then "yes" else "NO");
         ])
       results);
  let _, largest = List.nth results (List.length results - 1) in
  let exact = List.for_all (fun (_, r) -> r.Fleet_report.r_match) results in
  Printf.printf "equivalence: every answer and final content matches the isolated oracles %s\n"
    (if exact then "[ok]" else "[NOT ok]");
  Printf.printf
    "acceptance: shared maintenance %.2fx cheaper than isolated at 256 views, 50%% overlap %s\n"
    largest.Fleet_report.r_maint_speedup
    (if largest.Fleet_report.r_maint_speedup >= 2. then "[ok, >= 2x]" else "[NOT ok, < 2x]");
  if !json_enabled then
    write_json "BENCH_fleet.json"
      (j_obj
         ([
            ("scale", j_num !scale);
            ( "workload",
              j_obj
                [
                  ("overlap", j_num 0.5);
                  ("zipf_s", j_num 1.1);
                  ("n_tuples", j_int (sc 2000));
                  ("k", j_int (sc 200));
                  ("l", j_int 8);
                  ("q", j_int (max 40 (sc 100)));
                  ("seed", j_int 11);
                ] );
            ( "sizes",
              j_arr
                (List.map
                   (fun (views, r) ->
                     j_obj
                       [
                         ("views", j_int views);
                         ("classes", j_int r.Fleet_report.r_classes);
                         ("groups", j_int r.Fleet_report.r_groups);
                         ("aliases", j_int r.Fleet_report.r_aliases);
                         ("materialized", j_int r.Fleet_report.r_materialized);
                         ("refreshes", j_int r.Fleet_report.r_refreshes);
                         ("promotions", j_int r.Fleet_report.r_promotions);
                         ("demotions", j_int r.Fleet_report.r_demotions);
                         ("shared_maint_ms", j_num r.Fleet_report.r_shared_maint_ms);
                         ("isolated_maint_ms", j_num r.Fleet_report.r_isolated_maint_ms);
                         ("shared_total_ms", j_num r.Fleet_report.r_shared_total_ms);
                         ("isolated_total_ms", j_num r.Fleet_report.r_isolated_total_ms);
                         ("shared_ms_per_delta", j_num r.Fleet_report.r_shared_ms_per_delta);
                         ("isolated_ms_per_delta", j_num r.Fleet_report.r_isolated_ms_per_delta);
                         ("maint_speedup", j_num r.Fleet_report.r_maint_speedup);
                         ("total_speedup", j_num r.Fleet_report.r_total_speedup);
                         ("digest", j_str r.Fleet_report.r_digest);
                         ("match", j_bool r.Fleet_report.r_match);
                       ])
                   results) );
          ]
         @ metrics_field metrics))

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let microbenchmarks () =
  section "Bechamel microbenchmarks (wall-clock of core operations)";
  let open Bechamel in
  let rng = Rng.create 7 in
  let meter = Cost_meter.create () in
  let disk = Disk.create meter in
  let tree =
    Btree.create ~disk ~name:"bench" ~fanout:200 ~leaf_capacity:40
      ~key_col:0 ()
  in
  for i = 0 to 9_999 do
    Btree.insert tree (Tuple.make ~tid:(i + 1) [| Value.Int i; Value.Str "x" |])
  done;
  let hash =
    Hash_file.create ~disk ~name:"bench" ~buckets:64 ~tuples_per_page:40
      ~key_col:0 ()
  in
  for i = 0 to 9_999 do
    Hash_file.insert hash (Tuple.make ~tid:(i + 10_001) [| Value.Int i; Value.Str "x" |])
  done;
  let bloom = Bloom.create ~bits:65536 () in
  for i = 0 to 999 do
    Bloom.add bloom (string_of_int i)
  done;
  let screen =
    Screen.create ~meter ~view_name:"bench"
      ~pred:
        (Predicate.Cmp (Predicate.Lt, Predicate.Column 1, Predicate.Const (Value.Float 0.1)))
      ()
  in
  let tids = Tuple.source ~first:20_001 () in
  let sample_tuple () =
    Tuple.make ~tid:(Tuple.next tids)
      [| Value.Int (Rng.int rng 10_000); Value.Float (Rng.float rng) |]
  in
  let tests =
    Test.make_grouped ~name:"vmat"
      [
        Test.make ~name:"yao.eval"
          (Staged.stage (fun () -> ignore (Yao.eval ~n:10000. ~m:125. ~k:5.)));
        Test.make ~name:"bloom.mem" (Staged.stage (fun () -> ignore (Bloom.mem bloom "500")));
        Test.make ~name:"btree.find"
          (Staged.stage (fun () -> ignore (Btree.find tree (Value.Int (Rng.int rng 10_000)))));
        Test.make ~name:"btree.insert+remove"
          (Staged.stage (fun () ->
               let t = sample_tuple () in
               Btree.insert tree t;
               ignore (Btree.remove tree ~key:(Tuple.get t 0) ~tid:(Tuple.tid t))));
        Test.make ~name:"hash.lookup"
          (Staged.stage (fun () ->
               ignore (Hash_file.lookup hash (Value.Int (Rng.int rng 10_000)))));
        Test.make ~name:"screen.screen"
          (Staged.stage (fun () -> ignore (Screen.screen screen (sample_tuple ()))));
        Test.make ~name:"model1.total_deferred"
          (Staged.stage (fun () -> ignore (Model1.total_deferred Params.defaults)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (estimate :: _) -> Table.float_cell ~decimals:1 estimate
          | _ -> "-"
        in
        [ name; ns ] :: acc)
      results []
  in
  print_table ~headers:[ "operation"; "ns/run" ] (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* CSV export                                                          *)
(* ------------------------------------------------------------------ *)

let csv_dir = ref "bench_csv"

let write_csv name headers rows =
  (try Unix.mkdir !csv_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat !csv_dir (name ^ ".csv") in
  let oc = open_out path in
  output_string oc (String.concat "," headers ^ "\n");
  List.iter (fun row -> output_string oc (String.concat "," row ^ "\n")) rows;
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n" path (List.length rows)

let csv_export () =
  section (Printf.sprintf "CSV export of every figure's data series (to %s/)" !csv_dir);
  let num = Printf.sprintf "%.6g" in
  let fine_p = List.init 46 (fun i -> 0.02 +. (0.02 *. float_of_int i)) in
  write_csv "figure1"
    [ "P"; "deferred"; "immediate"; "clustered"; "unclustered"; "sequential" ]
    (List.map
       (fun prob ->
         let p = Params.with_update_probability Params.defaults prob in
         num prob
         :: List.map num
              [ Model1.total_deferred p; Model1.total_immediate p; Model1.total_clustered p;
                Model1.total_unclustered p; Model1.total_sequential p ])
       fine_p);
  write_csv "figure5" [ "P"; "deferred"; "immediate"; "loopjoin" ]
    (List.map
       (fun prob ->
         let p = Params.with_update_probability Params.defaults prob in
         num prob
         :: List.map num
              [ Model2.total_deferred p; Model2.total_immediate p; Model2.total_loopjoin p ])
       fine_p);
  write_csv "figure8" [ "l"; "deferred"; "immediate"; "recompute" ]
    (List.map
       (fun l ->
         let p = { Params.defaults with Params.l_per_txn = l } in
         num l
         :: List.map num
              [ Model3.total_deferred p; Model3.total_immediate p; Model3.total_recompute p ])
       (List.init 50 (fun i -> float_of_int (1 + (i * 10)))));
  write_csv "figure9" [ "l"; "pstar_f0.001"; "pstar_f0.01"; "pstar_f0.1"; "pstar_f1" ]
    (List.map
       (fun l ->
         num l
         :: List.map
              (fun f -> num (Regions.fig9_equal_cost_p { Params.defaults with Params.f } ~l))
              [ 0.001; 0.01; 0.1; 1.0 ])
       (List.init 50 (fun i -> float_of_int (1 + (i * 20)))));
  List.iter
    (fun (name, base, best) ->
      write_csv name [ "P"; "f"; "winner" ]
        (List.concat_map
           (fun prob ->
             List.map
               (fun f ->
                 [ num prob; num f; Regions.classify ~best ~base ~p:prob ~f ])
               (List.init 25 (fun i -> 0.02 +. (0.98 /. 24. *. float_of_int i))))
           (List.init 25 (fun i -> 0.02 +. (0.96 /. 24. *. float_of_int i)))))
    [
      ("figure2_regions", Params.defaults, Regions.best_model1);
      ("figure3_regions", { Params.defaults with Params.fv = 0.01 }, Regions.best_model1);
      ("figure4_regions", { Params.defaults with Params.c3 = 2. }, Regions.best_model1);
      ("figure6_regions", Params.defaults, Regions.best_model2);
      ("figure7_regions", { Params.defaults with Params.fv = 0.01 }, Regions.best_model2);
    ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table-defaults", table_defaults);
    ("table-access-methods", table_access_methods);
    ("figure-1", figure_1);
    ("figure-1-measured", figure_1_measured);
    ("figure-2", figure_2);
    ("figure-3", figure_3);
    ("figure-4", figure_4);
    ("figure-5", figure_5);
    ("figure-5-measured", figure_5_measured);
    ("figure-6", figure_6);
    ("figure-7", figure_7);
    ("figure-8", figure_8);
    ("figure-8-measured", figure_8_measured);
    ("figure-9", figure_9);
    ("emp-dept", emp_dept);
    ("ablation-refresh-interval", ablation_refresh_interval);
    ("ablation-split-ad", ablation_split_ad);
    ("ablation-multidisk", ablation_multidisk);
    ("ablation-multiview", ablation_multiview);
    ("ablation-planner", ablation_planner);
    ("adaptive", adaptive_bench);
    ("durability", durability_bench);
    ("serving", serving_bench);
    ("fleet", fleet_bench);
    ("yao", yao_table);
    ("csv", csv_export);
    ("bechamel", microbenchmarks);
  ]

let () =
  let args = Array.to_list Sys.argv in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse acc rest
    | "--csv-dir" :: v :: rest ->
        csv_dir := v;
        parse acc rest
    | "--json" :: rest ->
        json_enabled := true;
        parse acc rest
    | "--jobs" :: v :: rest ->
        let n = int_of_string v in
        if n < 0 then begin
          Printf.eprintf "--jobs %d is negative; expected N >= 0 (0 = all cores)\n" n;
          exit 2
        end;
        jobs := (if n = 0 then Parallel.default_jobs () else n);
        parse acc rest
    | "--durability" :: v :: rest ->
        durability := v;
        parse acc rest
    | "--wall" :: rest ->
        wall := true;
        parse acc rest
    | "--readers" :: v :: rest ->
        let n = int_of_string v in
        if n < 1 then begin
          Printf.eprintf "--readers %d is out of range; expected N >= 1\n" n;
          exit 2
        end;
        readers := n;
        parse acc rest
    | arg :: rest -> parse (arg :: acc) rest
  in
  let requested = parse [] (List.tl args) in
  let chosen =
    match requested with
    | [] -> sections
    | names ->
        List.filter_map
          (fun name ->
            match List.assoc_opt name sections with
            | Some fn -> Some (name, fn)
            | None ->
                Printf.eprintf "unknown section %s (known: %s)\n" name
                  (String.concat ", " (List.map fst sections));
                exit 2)
          names
  in
  List.iter (fun (_, fn) -> fn ()) chosen
