type geometry = { page_bytes : int; index_entry_bytes : int }

let default_geometry = { page_bytes = 4000; index_entry_bytes = 20 }

type t = {
  geometry : geometry;
  meter : Cost_meter.t;
  disk : Disk.t;
  tids : Tuple.source;
  rng : Vmat_util.Rng.t;
  san : Sanitize.t;
  fault : Fault.t;
  mutable owner : int;
      (* Integer id of the domain currently driving this context.  All the
         mutable state above is single-threaded by design; cross-domain
         handoff (the serving writer, DESIGN §10) must be explicit via
         [adopt] so sanitizers can assert ownership before mutations. *)
}

let current_domain () = (Domain.self () :> int)

let of_parts ?(geometry = default_geometry) ?(seed = 42) ?(first_tid = 1)
    ?(sanitizer = Sanitize.none) ?(fault = Fault.none) ~meter ~disk () =
  Sanitize.attach_meter sanitizer meter;
  {
    geometry;
    meter;
    disk;
    tids = Tuple.source ~first:first_tid ();
    rng = Vmat_util.Rng.create seed;
    san = sanitizer;
    fault;
    owner = current_domain ();
  }

let create ?geometry ?c1 ?c2 ?c3 ?seed ?first_tid ?sanitize ?fault () =
  let meter = Cost_meter.create ?c1 ?c2 ?c3 () in
  let disk = Disk.create meter in
  let sanitizer =
    let wanted =
      match sanitize with Some b -> b | None -> Sanitize.env_enabled ()
    in
    if wanted then Sanitize.create () else Sanitize.none
  in
  of_parts ?geometry ?seed ?first_tid ~sanitizer ?fault ~meter ~disk ()

let geometry t = t.geometry
let meter t = t.meter
let disk t = t.disk
let tids t = t.tids
let rng t = t.rng
let sanitizer t = t.san
let fault t = t.fault
let owner t = t.owner
let adopt t = t.owner <- current_domain ()
let owned_by_current t = t.owner = current_domain ()
let fresh_tid t = Tuple.next t.tids
let split_rng t = Vmat_util.Rng.split t.rng
let recorder t = Cost_meter.recorder t.meter
let set_recorder t r = Cost_meter.set_recorder t.meter r
