(** Binary codec shared by WAL records and checkpoint images (DESIGN §9).

    Little-endian, length-prefixed, one tag byte per variant; CRC32-framed at
    the record layer.  The encoding is stable: recovery reads images written
    by earlier runs of the engine. *)

exception Corrupt of string
(** Raised by every decoder on malformed input (bad tag, truncation,
    implausible length, failed schema validation). *)

val crc32 : ?init:int -> string -> int
(** IEEE 802.3 reflected CRC32 (init/xorout [0xFFFFFFFF]), bitwise — no
    lookup table, hence no module-level state. *)

(** {1 Writer} *)

type writer

val writer : unit -> writer
val contents : writer -> string
val u8 : writer -> int -> unit
val u32 : writer -> int -> unit
val i64 : writer -> int -> unit
val i64_bits : writer -> int64 -> unit
val f64 : writer -> float -> unit
val str : writer -> string -> unit
val bool : writer -> bool -> unit
val option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val array : writer -> (writer -> 'a -> unit) -> 'a array -> unit

(** {1 Reader} *)

type reader = { data : string; mutable pos : int }

val reader : string -> reader
val remaining : reader -> int
val at_end : reader -> bool
val r_u8 : reader -> int
val r_u32 : reader -> int
val r_i64 : reader -> int
val r_i64_bits : reader -> int64
val r_f64 : reader -> float
val r_str : reader -> string
val r_bool : reader -> bool
val r_option : reader -> (reader -> 'a) -> 'a option
val r_list : reader -> (reader -> 'a) -> 'a list
val r_array : reader -> (reader -> 'a) -> 'a array

(** {1 Engine types} *)

val value : writer -> Value.t -> unit
val r_value : reader -> Value.t
val tuple : writer -> Tuple.t -> unit
val r_tuple : reader -> Tuple.t
val column_type : writer -> Schema.column_type -> unit
val r_column_type : reader -> Schema.column_type
val schema : writer -> Schema.t -> unit
val r_schema : reader -> Schema.t

(** {1 Framing}

    A frame is [[u32 payload_len][u32 crc32(payload)][payload]]. *)

type frame_error =
  | Torn  (** remaining bytes cannot hold a whole frame (clean truncation) *)
  | Bad_crc  (** complete frame whose checksum fails (bit rot / torn write) *)

val frame : string -> string

val read_frame : reader -> (string, frame_error) result
(** On success advances past the frame; on error leaves [pos] unchanged so
    the caller can record where the valid prefix ends. *)
