(* Deterministic fault injection (DESIGN §9).  Crash points are named
   call sites threaded through the execution context: every call to
   [point] increments a per-context counter, and when the counter reaches
   the configured crash index the process "crashes" by raising [Crash].
   Because the counter is advanced identically on every run at a fixed
   seed, crash point [k] always lands on the same operation — the
   crash-equivalence property (recover after crash at k ≡ uncrashed run)
   is checkable for every k by simple enumeration.

   Zero observer effect: with [none] (the default in every context), the
   disabled handle carries no state at all, [point] is a single match on
   an immutable record, and no meter/RNG/tid state is ever touched. *)

exception Crash of string * int
(** [Crash (label, k)]: the simulated machine died at crash point [k],
    whose call site is [label]. *)

type state = {
  mutable counter : int;
  mutable crash_at : int;  (* 0 = count only, never crash *)
  mutable labels : (int * string) list;  (* most recent first *)
  keep_labels : bool;
}

type t = { state : state option }

(* Immutable literal on purpose (same pattern as [Sanitize.none]): the
   disabled injector is a shared stateless handle, so vmlint's D1 rule has
   nothing to object to. *)
let none = { state = None }

let create ?(crash_at = 0) ?(keep_labels = false) () =
  if crash_at < 0 then invalid_arg "Fault.create: crash_at must be >= 0";
  { state = Some { counter = 0; crash_at; labels = []; keep_labels } }

let enabled t = Option.is_some t.state

let point t label =
  match t.state with
  | None -> ()
  | Some s ->
      s.counter <- s.counter + 1;
      if s.keep_labels then s.labels <- (s.counter, label) :: s.labels;
      if s.crash_at > 0 && s.counter = s.crash_at then
        raise (Crash (label, s.counter))

let points_seen t = match t.state with None -> 0 | Some s -> s.counter

let labels t =
  match t.state with None -> [] | Some s -> List.rev s.labels

let reset ?crash_at t =
  match t.state with
  | None -> ()
  | Some s ->
      s.counter <- 0;
      s.labels <- [];
      (match crash_at with
      | None -> ()
      | Some k ->
          if k < 0 then invalid_arg "Fault.reset: crash_at must be >= 0";
          s.crash_at <- k)
