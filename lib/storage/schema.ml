type column_type = T_int | T_float | T_string | T_bool

type column = { name : string; ty : column_type }

type t = {
  name : string;
  columns : column array;
  tuple_bytes : int;
  key : int;
  index_of : (string, int) Hashtbl.t;
}

let make ~name ~columns ~tuple_bytes ~key =
  if tuple_bytes <= 0 then invalid_arg "Schema.make: tuple_bytes must be positive";
  if List.is_empty columns then invalid_arg "Schema.make: no columns";
  let arr : column array = Array.of_list columns in
  let index_of = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i (c : column) ->
      if Hashtbl.mem index_of c.name then
        invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add index_of c.name i)
    arr;
  let key_idx =
    match Hashtbl.find_opt index_of key with
    | Some i -> i
    | None -> invalid_arg ("Schema.make: key column not found: " ^ key)
  in
  { name; columns = arr; tuple_bytes; key = key_idx; index_of }

let name t = t.name
let columns t = Array.to_list t.columns
let arity t = Array.length t.columns
let tuple_bytes t = t.tuple_bytes
let key_index t = t.key

let column_index t col =
  match Hashtbl.find_opt t.index_of col with
  | Some i -> i
  | None -> raise Not_found

let column_name t i = t.columns.(i).name

let project t ~name ~column_names ~key =
  let cols = List.map (fun cn -> t.columns.(column_index t cn)) column_names in
  let frac = float_of_int (List.length cols) /. float_of_int (arity t) in
  let bytes = max 1 (int_of_float (ceil (frac *. float_of_int t.tuple_bytes))) in
  make ~name ~columns:cols ~tuple_bytes:bytes ~key

let join a b ~name ~key =
  let tag schema (c : column) : column =
    if Hashtbl.mem a.index_of c.name && Hashtbl.mem b.index_of c.name then
      { c with name = schema.name ^ "." ^ c.name }
    else c
  in
  let cols =
    List.map (tag a) (columns a) @ List.map (tag b) (columns b)
  in
  make ~name ~columns:cols ~tuple_bytes:(a.tuple_bytes + b.tuple_bytes) ~key

let pp fmt t =
  Format.fprintf fmt "%s(%s)[%dB]" t.name
    (String.concat ", " (List.map (fun (c : column) -> c.name) (columns t)))
    t.tuple_bytes
