type t = { tid : int; values : Value.t array; mutable key_memo : string option }

let make ~tid values = { tid; values; key_memo = None }

type source = { mutable next_tid : int }

let source ?(first = 1) () = { next_tid = first }

let next s =
  let tid = s.next_tid in
  s.next_tid <- tid + 1;
  tid

let peek s = s.next_tid

let tid t = t.tid
let values t = t.values
let get t i = t.values.(i)
let arity t = Array.length t.values

let set t i v =
  let values = Array.copy t.values in
  values.(i) <- v;
  { tid = t.tid; values; key_memo = None }

(* The key ignores the tid, so the memo stays valid across [with_tid]. *)
let with_tid t tid = { t with tid }

let project t positions =
  { tid = t.tid; values = Array.map (Array.get t.values) positions; key_memo = None }

let concat ~tid a b = { tid; values = Array.append a.values b.values; key_memo = None }

let equal_values a b =
  Array.length a.values = Array.length b.values
  && Array.for_all2 Value.equal a.values b.values

let equal a b = a.tid = b.tid && equal_values a b

let compare_values a b =
  let la = Array.length a.values and lb = Array.length b.values in
  let rec loop i =
    if i >= la || i >= lb then Int.compare la lb
    else
      match Value.compare a.values.(i) b.values.(i) with
      | 0 -> loop (i + 1)
      | c -> c
  in
  loop 0

(* Memoized: rows are keyed repeatedly (snapshot sorts/merges/digests, bag
   lookups, Bloom keys), and tuples are immutable, so the first rendering is
   cached on the tuple.  Publication safety: the writer domain keys every row
   while building a snapshot, so reader domains only ever load an
   already-written [Some]. *)
let value_key t =
  match t.key_memo with
  | Some key -> key
  | None ->
      let key =
        String.concat "|" (Array.to_list (Array.map Value.key_string t.values))
      in
      t.key_memo <- Some key;
      key

let pp fmt t =
  Format.fprintf fmt "#%d(%s)" t.tid
    (String.concat ", " (Array.to_list (Array.map Value.to_string t.values)))
