(** Zero-copy cursor over one flat row (page + slot).  Exposes the {!Tuple}
    accessors without materializing; scans reuse one cursor and mutate its
    slot, so iteration allocates nothing.

    Validity: a view is a *borrowed* position — it is valid only until the
    underlying page is next mutated (insert/remove/replace/compaction), and
    scan callbacks receive a cursor that is re-aimed at the next row after
    the callback returns.  Keep a row by calling {!materialize}. *)

type t

val on : Flat.t -> int -> t
val set : t -> Flat.t -> int -> unit
val set_slot : t -> int -> unit

val tid : t -> int
val arity : t -> int

val get : t -> int -> Value.t
(** Boxes one cell (prefer the comparison/key functions on hot paths). *)

val get_int : t -> int -> int
(** Unboxed read of an [Int] cell. @raise Invalid_argument otherwise. *)

val get_bool_or_false : t -> int -> bool

val compare_col : t -> int -> Value.t -> int
(** [compare_col v col x = Value.compare (get v col) x], without boxing the
    cell. *)

val compare_cols : t -> int -> t -> int -> int
val compare_values : t -> t -> int
val compare_values_tuple : t -> Tuple.t -> int
val equal_values_tuple : t -> Tuple.t -> bool

val equal_prefix_values : t -> Tuple.t -> int -> bool
(** [equal_prefix_values v tuple n]: the first [n] cells of [v] equal the [n]
    fields of [tuple] (false unless [Tuple.arity tuple = n <= arity v]). *)

val value_key : t -> string
(** Equals [Tuple.value_key (materialize v)]. *)

val key_string_col : t -> int -> string

val materialize : t -> Tuple.t
(** Box the row — the sanctioned boundary where flat rows become [Tuple.t]. *)

val materialize_prefix : t -> int -> tid:int -> Tuple.t
val project : t -> int array -> tid:int -> Tuple.t
