module Recorder = Vmat_obs.Recorder
module Metrics = Vmat_obs.Metrics

type category = Base | Hr | Refresh | Query | Screen | Overhead | Migrate | Wal

let all_categories = [ Base; Hr; Refresh; Query; Screen; Overhead; Migrate; Wal ]

let category_name = function
  | Base -> "base"
  | Hr -> "hr"
  | Refresh -> "refresh"
  | Query -> "query"
  | Screen -> "screen"
  | Overhead -> "overhead"
  | Migrate -> "migrate"
  | Wal -> "wal"

let category_index = function
  | Base -> 0
  | Hr -> 1
  | Refresh -> 2
  | Query -> 3
  | Screen -> 4
  | Overhead -> 5
  | Migrate -> 6
  | Wal -> 7

let ncategories = 8

let category_of_index = Array.of_list all_categories

type charge_kind = Read | Write | Predicate_test | Overhead_tuples

let charge_kind_name = function
  | Read -> "read"
  | Write -> "write"
  | Predicate_test -> "test"
  | Overhead_tuples -> "overhead_tuples"

let charge_kind_index = function
  | Read -> 0
  | Write -> 1
  | Predicate_test -> 2
  | Overhead_tuples -> 3

let all_charge_kinds = [ Read; Write; Predicate_test; Overhead_tuples ]

type hook = {
  on_charge : category -> charge_kind -> int -> float -> unit;
      (** category, kind, amount, cost of this charge in ms *)
  on_reset : unit -> unit;  (** the meter was zeroed; mirrors must follow *)
}

type t = {
  c1 : float;
  c2 : float;
  c3 : float;
  reads : int array;
  writes : int array;
  tests : int array;
  overhead_tuples : int array;
  mutable current : category;
  mutable hook : hook option;
  mutable san_hook : hook option;
      (* second, independent slot: the sanitizer's conservation mirror must
         coexist with the recorder's metric mirror (which owns [hook]) *)
  mutable recorder : Recorder.t;
}

let create ?(c1 = 1.) ?(c2 = 30.) ?(c3 = 1.) () =
  {
    c1;
    c2;
    c3;
    reads = Array.make ncategories 0;
    writes = Array.make ncategories 0;
    tests = Array.make ncategories 0;
    overhead_tuples = Array.make ncategories 0;
    current = Base;
    hook = None;
    san_hook = None;
    recorder = Recorder.noop;
  }

let c1 t = t.c1
let c2 t = t.c2
let c3 t = t.c3

let with_category t cat f =
  let previous = t.current in
  t.current <- cat;
  Fun.protect ~finally:(fun () -> t.current <- previous) f

let current_category t = t.current

let charge t arr kind unit_cost n =
  let i = category_index t.current in
  arr.(i) <- arr.(i) + n;
  (match t.hook with
  | None -> ()
  | Some h -> h.on_charge t.current kind n (unit_cost *. float_of_int n));
  match t.san_hook with
  | None -> ()
  | Some h -> h.on_charge t.current kind n (unit_cost *. float_of_int n)

let charge_read t = charge t t.reads Read t.c2 1
let charge_write t = charge t t.writes Write t.c2 1
let charge_predicate_test t = charge t t.tests Predicate_test t.c1 1
let charge_set_overhead t n = charge t t.overhead_tuples Overhead_tuples t.c3 n

let reads t cat = t.reads.(category_index cat)
let writes t cat = t.writes.(category_index cat)
let predicate_tests t cat = t.tests.(category_index cat)
let overhead_tuples t cat = t.overhead_tuples.(category_index cat)

let cost t cat =
  let i = category_index cat in
  (t.c2 *. float_of_int (t.reads.(i) + t.writes.(i)))
  +. (t.c1 *. float_of_int t.tests.(i))
  +. (t.c3 *. float_of_int t.overhead_tuples.(i))

let total_cost ?(excluding = []) t =
  List.fold_left
    (fun acc cat -> if List.mem cat excluding then acc else acc +. cost t cat)
    0. all_categories

let reset t =
  Array.fill t.reads 0 ncategories 0;
  Array.fill t.writes 0 ncategories 0;
  Array.fill t.tests 0 ncategories 0;
  Array.fill t.overhead_tuples 0 ncategories 0;
  (match t.hook with None -> () | Some h -> h.on_reset ());
  match t.san_hook with None -> () | Some h -> h.on_reset ()

(* ------------------------------------------------------------------ *)
(* Observability wiring                                                *)
(* ------------------------------------------------------------------ *)

let set_hook t hook = t.hook <- hook
let set_san_hook t hook = t.san_hook <- hook
let recorder t = t.recorder

(* Mirror every charge into the recorder's metric registry through handles
   resolved once here, so the instrumented hot path pays array indexing, not
   registry lookups.  The per-category ms counters are zeroed whenever the
   meter itself is reset — that is the invariant making
   [vmat_cost_ms_total{category=...}] provably equal to [cost t cat] at all
   times (see the qcheck property in test/test_obs.ml). *)
let install_metric_hook t r m =
  let ms_help = "Modeled cost in ms accrued per accounting category (= Cost_meter.cost)." in
  let charges_help = "Raw charge events per category and kind (reads/writes/tests/A-D tuples)." in
  let ms =
    Array.map
      (fun cat ->
        Metrics.counter m ~help:ms_help
          ~labels:[ ("category", category_name cat) ]
          "vmat_cost_ms_total")
      category_of_index
  in
  let charges =
    Array.map
      (fun cat ->
        Array.of_list
          (List.map
             (fun kind ->
               Metrics.counter m ~help:charges_help
                 ~labels:
                   [ ("category", category_name cat); ("kind", charge_kind_name kind) ]
                 "vmat_cost_charges_total")
             all_charge_kinds))
      category_of_index
  in
  let trace_charges = Recorder.trace_charges r in
  let on_charge cat kind n cost_ms =
    let i = category_index cat in
    Metrics.inc charges.(i).(charge_kind_index kind) (float_of_int n);
    Metrics.inc ms.(i) cost_ms;
    if trace_charges then
      Recorder.trace_counter r "vmat_cost_ms" [ (category_name cat, cost t cat) ]
  in
  let on_reset () =
    Array.iter Metrics.reset_counter ms;
    Array.iter (Array.iter Metrics.reset_counter) charges
  in
  t.hook <- Some { on_charge; on_reset }

let set_recorder t r =
  t.recorder <- r;
  if not (Recorder.enabled r) then t.hook <- None
  else
    match Recorder.metrics r with
    | Some m -> install_metric_hook t r m
    | None ->
        if Recorder.trace_charges r then
          t.hook <-
            Some
              {
                on_charge =
                  (fun cat _kind _n _cost ->
                    Recorder.trace_counter r "vmat_cost_ms" [ (category_name cat, cost t cat) ]);
                on_reset = Fun.id;
              }
        else t.hook <- None

type snapshot = {
  s_reads : int array;
  s_writes : int array;
  s_tests : int array;
  s_overhead : int array;
}

let snapshot t =
  {
    s_reads = Array.copy t.reads;
    s_writes = Array.copy t.writes;
    s_tests = Array.copy t.tests;
    s_overhead = Array.copy t.overhead_tuples;
  }

let cost_since t snap ?(excluding = []) () =
  List.fold_left
    (fun acc cat ->
      if List.mem cat excluding then acc
      else
        let i = category_index cat in
        acc
        +. (t.c2
            *. float_of_int
                 (t.reads.(i) - snap.s_reads.(i) + t.writes.(i) - snap.s_writes.(i)))
        +. (t.c1 *. float_of_int (t.tests.(i) - snap.s_tests.(i)))
        +. (t.c3 *. float_of_int (t.overhead_tuples.(i) - snap.s_overhead.(i))))
    0. all_categories

let pp fmt t =
  List.iter
    (fun cat ->
      Format.fprintf fmt "%s: r=%d w=%d cpu=%d cost=%.1fms@."
        (category_name cat) (reads t cat) (writes t cat) (predicate_tests t cat)
        (cost t cat))
    all_categories
