type category = Base | Hr | Refresh | Query | Screen | Overhead | Migrate

let all_categories = [ Base; Hr; Refresh; Query; Screen; Overhead; Migrate ]

let category_name = function
  | Base -> "base"
  | Hr -> "hr"
  | Refresh -> "refresh"
  | Query -> "query"
  | Screen -> "screen"
  | Overhead -> "overhead"
  | Migrate -> "migrate"

let category_index = function
  | Base -> 0
  | Hr -> 1
  | Refresh -> 2
  | Query -> 3
  | Screen -> 4
  | Overhead -> 5
  | Migrate -> 6

let ncategories = 7

type t = {
  c1 : float;
  c2 : float;
  c3 : float;
  reads : int array;
  writes : int array;
  tests : int array;
  overhead_tuples : int array;
  mutable current : category;
}

let create ?(c1 = 1.) ?(c2 = 30.) ?(c3 = 1.) () =
  {
    c1;
    c2;
    c3;
    reads = Array.make ncategories 0;
    writes = Array.make ncategories 0;
    tests = Array.make ncategories 0;
    overhead_tuples = Array.make ncategories 0;
    current = Base;
  }

let c1 t = t.c1
let c2 t = t.c2
let c3 t = t.c3

let with_category t cat f =
  let previous = t.current in
  t.current <- cat;
  Fun.protect ~finally:(fun () -> t.current <- previous) f

let current_category t = t.current

let bump arr t = arr.(category_index t.current) <- arr.(category_index t.current) + 1

let charge_read t = bump t.reads t
let charge_write t = bump t.writes t
let charge_predicate_test t = bump t.tests t

let charge_set_overhead t n =
  let i = category_index t.current in
  t.overhead_tuples.(i) <- t.overhead_tuples.(i) + n

let reads t cat = t.reads.(category_index cat)
let writes t cat = t.writes.(category_index cat)
let predicate_tests t cat = t.tests.(category_index cat)

let cost t cat =
  let i = category_index cat in
  (t.c2 *. float_of_int (t.reads.(i) + t.writes.(i)))
  +. (t.c1 *. float_of_int t.tests.(i))
  +. (t.c3 *. float_of_int t.overhead_tuples.(i))

let total_cost ?(excluding = []) t =
  List.fold_left
    (fun acc cat -> if List.mem cat excluding then acc else acc +. cost t cat)
    0. all_categories

let reset t =
  Array.fill t.reads 0 ncategories 0;
  Array.fill t.writes 0 ncategories 0;
  Array.fill t.tests 0 ncategories 0;
  Array.fill t.overhead_tuples 0 ncategories 0

type snapshot = {
  s_reads : int array;
  s_writes : int array;
  s_tests : int array;
  s_overhead : int array;
}

let snapshot t =
  {
    s_reads = Array.copy t.reads;
    s_writes = Array.copy t.writes;
    s_tests = Array.copy t.tests;
    s_overhead = Array.copy t.overhead_tuples;
  }

let cost_since t snap ?(excluding = []) () =
  List.fold_left
    (fun acc cat ->
      if List.mem cat excluding then acc
      else
        let i = category_index cat in
        acc
        +. (t.c2
            *. float_of_int
                 (t.reads.(i) - snap.s_reads.(i) + t.writes.(i) - snap.s_writes.(i)))
        +. (t.c1 *. float_of_int (t.tests.(i) - snap.s_tests.(i)))
        +. (t.c3 *. float_of_int (t.overhead_tuples.(i) - snap.s_overhead.(i))))
    0. all_categories

let pp fmt t =
  List.iter
    (fun cat ->
      Format.fprintf fmt "%s: r=%d w=%d cpu=%d cost=%.1fms@."
        (category_name cat) (reads t cat) (writes t cat) (predicate_tests t cat)
        (cost t cat))
    all_categories
