(* Binary codec shared by the WAL record format and checkpoint images
   (DESIGN §9).  Little-endian, length-prefixed strings, one tag byte per
   variant.  Deliberately boring: the encoding must stay stable across
   sessions because recovery reads images written by earlier runs.

   The CRC32 implementation is the bitwise IEEE 802.3 reflected algorithm —
   no precomputed table, so there is no module-level mutable state for
   vmlint's D1 rule to object to.  Eight shifts per byte is plenty fast for
   simulated-disk volumes. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE, reflected, init/xorout 0xFFFFFFFF)                      *)
(* ------------------------------------------------------------------ *)

let crc32_poly = 0xEDB88320

let crc32 ?(init = 0xFFFFFFFF) s =
  let crc = ref init in
  String.iter
    (fun ch ->
      crc := !crc lxor Char.code ch;
      for _ = 1 to 8 do
        let lsb = !crc land 1 in
        crc := !crc lsr 1;
        if lsb = 1 then crc := !crc lxor crc32_poly
      done)
    s;
  !crc lxor 0xFFFFFFFF land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Writer                                                               *)
(* ------------------------------------------------------------------ *)

type writer = Buffer.t

let writer () = Buffer.create 256
let contents w = Buffer.contents w

let u8 w n =
  if n < 0 || n > 0xFF then invalid_arg "Codec.u8: out of range";
  Buffer.add_char w (Char.chr n)

let u32 w n =
  if n < 0 || n > 0xFFFFFFFF then invalid_arg "Codec.u32: out of range";
  Buffer.add_char w (Char.chr (n land 0xFF));
  Buffer.add_char w (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char w (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char w (Char.chr ((n lsr 24) land 0xFF))

let i64_bits w (n : int64) =
  for i = 0 to 7 do
    Buffer.add_char w
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * i)) 0xFFL)))
  done

let i64 w n = i64_bits w (Int64.of_int n)
let f64 w x = i64_bits w (Int64.bits_of_float x)

let str w s =
  u32 w (String.length s);
  Buffer.add_string w s

let bool w b = u8 w (if b then 1 else 0)

let option w f = function
  | None -> u8 w 0
  | Some x ->
      u8 w 1;
      f w x

let list w f xs =
  u32 w (List.length xs);
  List.iter (f w) xs

let array w f xs =
  u32 w (Array.length xs);
  Array.iter (f w) xs

(* ------------------------------------------------------------------ *)
(* Reader                                                               *)
(* ------------------------------------------------------------------ *)

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }
let remaining r = String.length r.data - r.pos
let at_end r = remaining r = 0

let need r n =
  if remaining r < n then
    corrupt "truncated input: need %d bytes at offset %d, have %d" n r.pos (remaining r)

let r_u8 r =
  need r 1;
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_u32 r =
  need r 4;
  let b i = Char.code r.data.[r.pos + i] in
  let n = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  r.pos <- r.pos + 4;
  n

let r_i64_bits r =
  need r 8;
  let n = ref 0L in
  for i = 7 downto 0 do
    n := Int64.logor (Int64.shift_left !n 8)
           (Int64.of_int (Char.code r.data.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  !n

let r_i64 r = Int64.to_int (r_i64_bits r)
let r_f64 r = Int64.float_of_bits (r_i64_bits r)

let r_str r =
  let len = r_u32 r in
  need r len;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> corrupt "bad bool tag %d at offset %d" n (r.pos - 1)

let r_option r f = match r_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | n -> corrupt "bad option tag %d at offset %d" n (r.pos - 1)

let r_list r f =
  let n = r_u32 r in
  if n > remaining r then corrupt "implausible list length %d at offset %d" n r.pos;
  List.init n (fun _ -> f r)

let r_array r f =
  let n = r_u32 r in
  if n > remaining r then corrupt "implausible array length %d at offset %d" n r.pos;
  Array.init n (fun _ -> f r)

(* ------------------------------------------------------------------ *)
(* Value / Tuple / Schema                                               *)
(* ------------------------------------------------------------------ *)

let value w (v : Value.t) =
  match v with
  | Value.Null -> u8 w 0
  | Value.Bool b ->
      u8 w 1;
      bool w b
  | Value.Int n ->
      u8 w 2;
      i64 w n
  | Value.Float x ->
      u8 w 3;
      f64 w x
  | Value.Str s ->
      u8 w 4;
      str w s

let r_value r : Value.t =
  match r_u8 r with
  | 0 -> Value.Null
  | 1 -> Value.Bool (r_bool r)
  | 2 -> Value.Int (r_i64 r)
  | 3 -> Value.Float (r_f64 r)
  | 4 -> Value.Str (r_str r)
  | n -> corrupt "bad Value tag %d at offset %d" n (r.pos - 1)

let tuple w (t : Tuple.t) =
  i64 w (Tuple.tid t);
  array w value (Tuple.values t)

let r_tuple r : Tuple.t =
  let tid = r_i64 r in
  let values = r_array r r_value in
  Tuple.make ~tid values

let column_type w (ty : Schema.column_type) =
  u8 w
    (match ty with
    | Schema.T_int -> 0
    | Schema.T_float -> 1
    | Schema.T_string -> 2
    | Schema.T_bool -> 3)

let r_column_type r : Schema.column_type =
  match r_u8 r with
  | 0 -> Schema.T_int
  | 1 -> Schema.T_float
  | 2 -> Schema.T_string
  | 3 -> Schema.T_bool
  | n -> corrupt "bad column_type tag %d at offset %d" n (r.pos - 1)

let schema w (s : Schema.t) =
  str w (Schema.name s);
  list w
    (fun w (c : Schema.column) ->
      str w c.Schema.name;
      column_type w c.Schema.ty)
    (Schema.columns s);
  u32 w (Schema.tuple_bytes s);
  (* The key is stored by column *name* so [Schema.make] can revalidate it on
     decode rather than trusting a raw index. *)
  str w (Schema.column_name s (Schema.key_index s))

let r_schema r : Schema.t =
  let name = r_str r in
  let columns =
    r_list r (fun r ->
        let cname = r_str r in
        let ty = r_column_type r in
        { Schema.name = cname; ty })
  in
  let tuple_bytes = r_u32 r in
  let key = r_str r in
  match Schema.make ~name ~columns ~tuple_bytes ~key with
  | s -> s
  | exception Invalid_argument msg -> corrupt "bad schema: %s" msg

(* ------------------------------------------------------------------ *)
(* Framing: [u32 payload_len][u32 crc32(payload)][payload]              *)
(* ------------------------------------------------------------------ *)

type frame_error = Torn | Bad_crc

let frame payload =
  let w = writer () in
  u32 w (String.length payload);
  u32 w (crc32 payload);
  contents w ^ payload

(* Reads one frame starting at [r.pos].  On success advances past the frame
   and returns the payload.  [Error Torn] means the remaining bytes cannot
   hold a whole frame (clean truncation); [Error Bad_crc] means the frame is
   complete but its checksum fails (bit rot / torn overwrite).  In both
   error cases [r.pos] is left unchanged so the caller can record where the
   valid prefix ends. *)
let read_frame r =
  let start = r.pos in
  if remaining r < 8 then Error Torn
  else begin
    let len = r_u32 r in
    let crc = r_u32 r in
    if remaining r < len then begin
      r.pos <- start;
      Error Torn
    end
    else begin
      let payload = String.sub r.data r.pos len in
      r.pos <- r.pos + len;
      if crc32 payload <> crc then begin
        r.pos <- start;
        Error Bad_crc
      end
      else Ok payload
    end
  end
