(** Flat page-resident rows (DESIGN §12): one growable [Bytes] buffer per
    page plus a slot directory of row offsets.  Rows are self-describing and
    relocatable ([len:u32][tid:i64][arity:u16][cells arity x 9B][varlen]);
    cell tags match the WAL codec ({!Codec}).  Fixed-width cells give O(1)
    column access, and comparisons / key strings are computed straight off
    the buffer without boxing a {!Value.t}.

    A [Flat.t] models the payload of one simulated disk page; the metered
    page I/O discipline lives above, in the storage engines. *)

type t

val create : ?hint:int -> unit -> t
(** Empty page; [hint] is the initial buffer capacity in bytes. *)

val length : t -> int
(** Number of live rows (slots). *)

val byte_size : t -> int
(** Live row bytes (excluding garbage from removals/replacements). *)

val clear : t -> unit

(** {1 Slot edits}

    Slots are dense indices [0 .. length-1]; edits shift later slots, exactly
    like list insertion/removal, and trigger in-page compaction when dead
    bytes outgrow live bytes. *)

val append : t -> Tuple.t -> int
(** Encode the tuple after the last slot; returns its slot index. *)

val insert_at : t -> int -> Tuple.t -> unit
(** Encode the tuple at slot [i], shifting slots [i..] up by one. *)

val remove_at : t -> int -> unit

val replace_at : t -> int -> Tuple.t -> unit
(** Re-encode slot [i] in place (the row's bytes are rewritten; its slot
    index is unchanged). *)

val truncate : t -> int -> unit
(** Drop slots [n..]. *)

val copy_row : src:t -> int -> dst:t -> unit
(** Blit slot [i] of [src] onto the end of [dst] (rows are relocatable). *)

(** {1 Row accessors} *)

val tid_at : t -> int -> int
val arity_at : t -> int -> int

val cell_value : t -> int -> int -> Value.t
(** [cell_value p slot col] boxes one cell.
    @raise Invalid_argument on slot/column out of range. *)

val cell_int : t -> int -> int -> int
(** Unboxed read of an [Int] cell. @raise Invalid_argument otherwise. *)

val cell_bool_or_false : t -> int -> int -> bool
(** [true] iff the cell is [Bool true] (non-Bool cells read as [false], the
    Hr marker-decode convention). *)

(** {1 Comparisons}

    All three replicate {!Value.compare} exactly (including Int/Float mixed
    numeric comparison) without boxing the cell(s). *)

val compare_cell_value : t -> int -> int -> Value.t -> int
(** [compare_cell_value p slot col v = Value.compare cell v]. *)

val compare_cells : t -> int -> int -> t -> int -> int -> int
(** [compare_cells pa sa ca pb sb cb = Value.compare cell_a cell_b]. *)

(** {1 Key strings} *)

val cell_key_string : t -> int -> int -> string
(** Equals [Value.key_string] of the boxed cell. *)

val row_value_key : t -> int -> string
(** Equals [Tuple.value_key] of the materialized row. *)

(** {1 Materialization — the sanctioned boxing boundary} *)

val materialize : t -> int -> Tuple.t

val materialize_prefix : t -> int -> int -> tid:int -> Tuple.t
(** First [n] cells under the given tid (Hr entries strip their three
    bookkeeping columns this way). *)

val project : t -> int -> int array -> tid:int -> Tuple.t
(** The cells at [positions] (in order) under the given tid — a fused
    [Tuple.project]+[Tuple.with_tid] with a single allocation per survivor. *)
