(** Cost accounting in the units of the paper: [C1] ms of CPU per predicate
    test, [C2] ms per disk page read or write, [C3] ms per tuple of A/D set
    manipulation.  Charges accrue to the {e current category}, so that the
    report can exclude ordinary base-relation maintenance exactly as the
    paper's per-query averages do. *)

type category =
  | Base  (** ordinary base-relation maintenance, excluded from comparisons *)
  | Hr  (** extra I/O to maintain the hypothetical relation (paper: [C_AD]) *)
  | Refresh  (** bringing the materialized view or aggregate up to date *)
  | Query  (** answering a view query *)
  | Screen  (** stage-2 screening of inserted/deleted tuples ([C_screen]) *)
  | Overhead  (** in-memory A/D set manipulation in immediate ([C_overhead]) *)
  | Migrate
      (** one-time cost of a live strategy migration (adaptive maintenance):
          materializing a view from a base scan, or dematerializing one *)
  | Wal
      (** durability: write-ahead-log appends/forces and checkpoint images —
          the cost axis the paper never measured (DESIGN §9) *)

val all_categories : category list
val category_name : category -> string

val category_index : category -> int
(** Dense index in [0, ncategories): lets external mirrors (recorder
    metrics, sanitizer conservation counters) use array indexing on the
    per-charge hot path instead of association lookups. *)

val ncategories : int

type charge_kind =
  | Read  (** one [C2] page read *)
  | Write  (** one [C2] page write *)
  | Predicate_test  (** one [C1] CPU predicate evaluation *)
  | Overhead_tuples  (** [n] tuples of [C3] A/D-set manipulation *)

val charge_kind_name : charge_kind -> string
val all_charge_kinds : charge_kind list

type hook = {
  on_charge : category -> charge_kind -> int -> float -> unit;
      (** [on_charge cat kind amount cost_ms] fires on every charge, after the
          meter's own tally.  Must not touch the meter (observer effect!). *)
  on_reset : unit -> unit;
      (** The meter was zeroed; any mirrored state must be zeroed too. *)
}

type t

val create : ?c1:float -> ?c2:float -> ?c3:float -> unit -> t
(** Defaults are the paper's: [c1 = 1.], [c2 = 30.], [c3 = 1.] (ms). *)

val c1 : t -> float
val c2 : t -> float
val c3 : t -> float

val with_category : t -> category -> (unit -> 'a) -> 'a
(** Run a thunk with charges going to the given category (re-entrant; the
    previous category is restored afterwards, also on exceptions). *)

val current_category : t -> category

val charge_read : t -> unit
val charge_write : t -> unit

val charge_predicate_test : t -> unit
(** One [C1] CPU charge. *)

val charge_set_overhead : t -> int -> unit
(** [charge_set_overhead t n] charges [n * C3]. *)

val reads : t -> category -> int
val writes : t -> category -> int
val predicate_tests : t -> category -> int

val overhead_tuples : t -> category -> int
(** Accumulated [C3] tuple-manipulation units for one category (the fourth
    tally next to {!reads}/{!writes}/{!predicate_tests}; exposed so an
    external mirror — e.g. the sanitizer's conservation check — can audit
    every tally the meter keeps). *)

val cost : t -> category -> float
(** Accumulated cost in ms for one category. *)

val total_cost : ?excluding:category list -> t -> float

val reset : t -> unit
(** Zero every tally (and fire the hook's [on_reset], keeping mirrored
    metrics consistent). *)

(** {1 Observability wiring} *)

val set_hook : t -> hook option -> unit
(** Install (or clear) a raw charge hook.  Most callers want
    {!set_recorder}, which installs a hook mirroring charges into a metric
    registry; this lower-level entry point exists for tests and custom
    sinks. *)

val set_san_hook : t -> hook option -> unit
(** Install (or clear) the {e sanitizer} charge hook — a second, independent
    slot so the runtime invariant checker (Sanitize) can mirror charges
    without clobbering the recorder's metric hook, and vice versa.  Same
    contract as {!set_hook}: the hook must never charge the meter. *)

val set_recorder : t -> Vmat_obs.Recorder.t -> unit
(** Attach a recorder: every subsequent charge increments
    [vmat_cost_charges_total{category,kind}] and
    [vmat_cost_ms_total{category}] in the recorder's metric registry (when it
    has one), with handles pre-resolved so the per-charge overhead is a few
    array reads.  When the recorder was built with [~trace_charges:true],
    each charge additionally emits a Chrome counter event of the running
    per-category cost.  [reset] zeroes the mirrored counters, so metric
    totals always equal {!cost} per category.  Attaching {!Recorder.noop}
    detaches.  The hook never charges the meter: measurements are
    bit-identical with or without a recorder. *)

val recorder : t -> Vmat_obs.Recorder.t
(** The attached recorder ({!Recorder.noop} when none): how instrumented
    code everywhere below the workload layer (buffer pool, differential
    files, strategies) reaches the observability sinks without new plumbing
    through every constructor. *)

type snapshot

val snapshot : t -> snapshot

val cost_since : t -> snapshot -> ?excluding:category list -> unit -> float
(** Cost accrued since the snapshot was taken. *)

val pp : Format.formatter -> t -> unit
