(** Cost accounting in the units of the paper: [C1] ms of CPU per predicate
    test, [C2] ms per disk page read or write, [C3] ms per tuple of A/D set
    manipulation.  Charges accrue to the {e current category}, so that the
    report can exclude ordinary base-relation maintenance exactly as the
    paper's per-query averages do. *)

type category =
  | Base  (** ordinary base-relation maintenance, excluded from comparisons *)
  | Hr  (** extra I/O to maintain the hypothetical relation (paper: [C_AD]) *)
  | Refresh  (** bringing the materialized view or aggregate up to date *)
  | Query  (** answering a view query *)
  | Screen  (** stage-2 screening of inserted/deleted tuples ([C_screen]) *)
  | Overhead  (** in-memory A/D set manipulation in immediate ([C_overhead]) *)
  | Migrate
      (** one-time cost of a live strategy migration (adaptive maintenance):
          materializing a view from a base scan, or dematerializing one *)

val all_categories : category list
val category_name : category -> string

type t

val create : ?c1:float -> ?c2:float -> ?c3:float -> unit -> t
(** Defaults are the paper's: [c1 = 1.], [c2 = 30.], [c3 = 1.] (ms). *)

val c1 : t -> float
val c2 : t -> float
val c3 : t -> float

val with_category : t -> category -> (unit -> 'a) -> 'a
(** Run a thunk with charges going to the given category (re-entrant; the
    previous category is restored afterwards, also on exceptions). *)

val current_category : t -> category

val charge_read : t -> unit
val charge_write : t -> unit

val charge_predicate_test : t -> unit
(** One [C1] CPU charge. *)

val charge_set_overhead : t -> int -> unit
(** [charge_set_overhead t n] charges [n * C3]. *)

val reads : t -> category -> int
val writes : t -> category -> int
val predicate_tests : t -> category -> int

val cost : t -> category -> float
(** Accumulated cost in ms for one category. *)

val total_cost : ?excluding:category list -> t -> float

val reset : t -> unit

type snapshot

val snapshot : t -> snapshot

val cost_since : t -> snapshot -> ?excluding:category list -> unit -> float
(** Cost accrued since the snapshot was taken. *)

val pp : Format.formatter -> t -> unit
