type page_id = int

type t = {
  meter : Cost_meter.t;
  owner : (page_id, string) Hashtbl.t;
  file_sizes : (string, int) Hashtbl.t;
  mutable next_page : int;
  mutable reads : int;
  mutable writes : int;
  (* Disk-wide aggregation of the buffer pools layered on top: individual
     pools live inside strategies and are invisible to the runner, so they
     report their hit/miss/eviction tallies here. *)
  mutable pool_hits : int;
  mutable pool_misses : int;
  mutable pool_evictions : int;
}

let create meter =
  {
    meter;
    owner = Hashtbl.create 1024;
    file_sizes = Hashtbl.create 16;
    next_page = 0;
    reads = 0;
    writes = 0;
    pool_hits = 0;
    pool_misses = 0;
    pool_evictions = 0;
  }

let meter t = t.meter

let alloc t ~file =
  let pid = t.next_page in
  t.next_page <- t.next_page + 1;
  Hashtbl.replace t.owner pid file;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.file_sizes file) in
  Hashtbl.replace t.file_sizes file (n + 1);
  pid

let check t pid =
  if not (Hashtbl.mem t.owner pid) then
    invalid_arg (Printf.sprintf "Disk: page %d is not allocated" pid)

let free t pid =
  check t pid;
  let file = Hashtbl.find t.owner pid in
  Hashtbl.remove t.owner pid;
  let n = Hashtbl.find t.file_sizes file in
  Hashtbl.replace t.file_sizes file (n - 1)

let read t pid =
  check t pid;
  t.reads <- t.reads + 1;
  Cost_meter.charge_read t.meter

let write t pid =
  check t pid;
  t.writes <- t.writes + 1;
  Cost_meter.charge_write t.meter

let file_of t pid =
  check t pid;
  Hashtbl.find t.owner pid

let pages_in_file t file = Option.value ~default:0 (Hashtbl.find_opt t.file_sizes file)

let allocated_pages t = Hashtbl.length t.owner
let physical_reads t = t.reads
let physical_writes t = t.writes

let note_pool_hit t = t.pool_hits <- t.pool_hits + 1
let note_pool_miss t = t.pool_misses <- t.pool_misses + 1
let note_pool_eviction t = t.pool_evictions <- t.pool_evictions + 1
let pool_hits t = t.pool_hits
let pool_misses t = t.pool_misses
let pool_evictions t = t.pool_evictions

let page_id_to_int pid = pid
