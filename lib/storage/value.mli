(** Typed field values.  The ordering is total: [Null] sorts lowest, then
    booleans, then numbers (ints and floats compare numerically), then
    strings. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

val compare : t -> t -> int
val equal : t -> t -> bool

val rank : t -> int
(** Position of the constructor in the total order ([Null] 0, [Bool] 1,
    numbers 2, [Str] 3) — exposed so flat cells can replicate {!compare}
    without boxing. *)

val to_string : t -> string
(** Human-readable rendering. *)

val key_string : t -> string
(** Injective encoding used for hashing (hash files, Bloom filters): two
    values have equal [key_string] iff {!equal}. *)

val hash : t -> int

val as_int : t -> int
(** @raise Invalid_argument if the value is not an [Int]. *)

val as_float : t -> float
(** Numeric coercion of [Int] or [Float].
    @raise Invalid_argument otherwise. *)

val pp : Format.formatter -> t -> unit
