module Seq_map = Map.Make (Int)

(* Rows live in flat page buffers; within a page, slots are in insertion
   order, and every iteration walks them newest-first (the cons-list order
   this file historically used), so scan output and the metered page-touch
   sequence are unchanged by the representation. *)
type page = { pid : Disk.page_id; seq : int; rows : Flat.t }

type t = {
  schema : Schema.t;
  disk : Disk.t;
  pool : Buffer_pool.t;
  capacity : int;
  mutable pages : page list;  (* newest first *)
  mutable next_seq : int;
  (* Non-full pages keyed by creation seq.  The insert target is the newest
     non-full page (max seq): historically the first hit of a newest-first
     O(pages) list scan, now one O(log pages) lookup that examines exactly
     one page.  Deletes re-admit their page when it stops being full. *)
  mutable open_pages : page Seq_map.t;
  mutable tuple_count : int;
  mutable probes : int;  (* cumulative pages examined by inserts *)
  by_tid : (int, page) Hashtbl.t;
}

type locator = { l_page : page; l_tid : int }

let create ~disk ?pool_capacity ~page_bytes schema =
  if page_bytes <= 0 then invalid_arg "Heap_file.create: page_bytes must be positive";
  let capacity = max 1 (page_bytes / Schema.tuple_bytes schema) in
  {
    schema;
    disk;
    pool = Buffer_pool.create ?capacity:pool_capacity disk;
    capacity;
    pages = [];
    next_seq = 0;
    open_pages = Seq_map.empty;
    tuple_count = 0;
    probes = 0;
    by_tid = Hashtbl.create 1024;
  }

let schema t = t.schema
let tuples_per_page t = t.capacity
let tuple_count t = t.tuple_count
let page_count t = List.length t.pages
let pool t = t.pool
let insert_probes t = t.probes

let file_name t = "heap:" ^ Schema.name t.schema

let insert t tuple =
  let page =
    match Seq_map.max_binding_opt t.open_pages with
    | Some (_, p) ->
        t.probes <- t.probes + 1;
        p
    | None ->
        let p =
          { pid = Disk.alloc t.disk ~file:(file_name t); seq = t.next_seq; rows = Flat.create () }
        in
        t.next_seq <- t.next_seq + 1;
        t.pages <- p :: t.pages;
        t.open_pages <- Seq_map.add p.seq p t.open_pages;
        t.probes <- t.probes + 1;
        p
  in
  Buffer_pool.read t.pool page.pid;
  ignore (Flat.append page.rows tuple);
  if Flat.length page.rows >= t.capacity then
    t.open_pages <- Seq_map.remove page.seq t.open_pages;
  t.tuple_count <- t.tuple_count + 1;
  Hashtbl.replace t.by_tid (Tuple.tid tuple) page;
  Buffer_pool.write t.pool page.pid;
  { l_page = page; l_tid = Tuple.tid tuple }

let check t loc =
  match Hashtbl.find_opt t.by_tid loc.l_tid with
  | Some page when page == loc.l_page -> ()
  | _ -> invalid_arg "Heap_file: stale locator"

let slot_of_tid page tid =
  let n = Flat.length page.rows in
  let rec find i =
    if i >= n then None else if Flat.tid_at page.rows i = tid then Some i else find (i + 1)
  in
  find 0

let delete t loc =
  check t loc;
  let page = loc.l_page in
  Buffer_pool.read t.pool page.pid;
  let was_full = Flat.length page.rows >= t.capacity in
  (match slot_of_tid page loc.l_tid with
  | Some slot -> Flat.remove_at page.rows slot
  | None -> ());
  if was_full && Flat.length page.rows < t.capacity then
    t.open_pages <- Seq_map.add page.seq page t.open_pages;
  t.tuple_count <- t.tuple_count - 1;
  Hashtbl.remove t.by_tid loc.l_tid;
  Buffer_pool.write t.pool page.pid

let read_at t loc =
  check t loc;
  Buffer_pool.read t.pool loc.l_page.pid;
  match slot_of_tid loc.l_page loc.l_tid with
  | Some slot -> Flat.materialize loc.l_page.rows slot
  | None -> invalid_arg "Heap_file: stale locator"

let view_at t loc view =
  check t loc;
  Buffer_pool.read t.pool loc.l_page.pid;
  match slot_of_tid loc.l_page loc.l_tid with
  | Some slot -> Tuple_view.set view loc.l_page.rows slot
  | None -> invalid_arg "Heap_file: stale locator"

let page_of t loc =
  check t loc;
  loc.l_page.pid

(* Newest-first within each page: slots run oldest-first, so walk them in
   reverse. *)
let iter_page_views page view f =
  for slot = Flat.length page.rows - 1 downto 0 do
    Tuple_view.set view page.rows slot;
    f view
  done

let scan_views t f =
  let view = Tuple_view.on (Flat.create ()) 0 in
  List.iter
    (fun page ->
      Buffer_pool.read t.pool page.pid;
      iter_page_views page view f)
    (List.rev t.pages)

let scan t f = scan_views t (fun view -> f (Tuple_view.materialize view))

let iter_views_unmetered t f =
  let view = Tuple_view.on (Flat.create ()) 0 in
  List.iter (fun page -> iter_page_views page view f) (List.rev t.pages)

let iter_unmetered t f = iter_views_unmetered t (fun view -> f (Tuple_view.materialize view))

let find_unmetered t pred =
  let rec find_in_pages = function
    | [] -> None
    | page :: rest ->
        let n = Flat.length page.rows in
        let rec find slot =
          if slot < 0 then find_in_pages rest
          else
            let tuple = Flat.materialize page.rows slot in
            if pred tuple then Some ({ l_page = page; l_tid = Tuple.tid tuple }, tuple)
            else find (slot - 1)
        in
        find (n - 1)
  in
  find_in_pages (List.rev t.pages)

let locators_unmetered t =
  List.concat_map
    (fun page ->
      let out = ref [] in
      (* newest-first, like the historical per-page cons list *)
      for slot = 0 to Flat.length page.rows - 1 do
        let tuple = Flat.materialize page.rows slot in
        out := ({ l_page = page; l_tid = Tuple.tid tuple }, tuple) :: !out
      done;
      !out)
    (List.rev t.pages)
