(** Tuples.  Every tuple carries a unique identifier [tid] drawn from a
    monotonically increasing source, as required by the hypothetical-relation
    scheme of §2.2.1 ("the value of the system clock or other monotonically
    increasing source"). *)

type t = private {
  tid : int;
  values : Value.t array;
  mutable key_memo : string option;
      (** Cached {!value_key} rendering — an implementation detail (tuples are
          immutable in every observable respect). *)
}

val make : tid:int -> Value.t array -> t

type source
(** A monotonic tuple-id source.  There is deliberately no process-global
    source: every engine owns one (via [Ctx.t]), so independent engines in
    one process are perfectly isolated and runs are reproducible. *)

val source : ?first:int -> unit -> source
(** Fresh source whose first emitted tid is [first] (default 1). *)

val next : source -> int
(** Draw the next tid and advance the source. *)

val peek : source -> int
(** The tid [next] would return, without advancing. *)

val tid : t -> int
val values : t -> Value.t array
val get : t -> int -> Value.t
val arity : t -> int

val set : t -> int -> Value.t -> t
(** Functional update of one field; keeps the tid. *)

val with_tid : t -> int -> t

val project : t -> int array -> t
(** Keep the fields at the given positions (in the given order); keeps the
    tid. *)

val concat : tid:int -> t -> t -> t
(** Concatenate the fields of two tuples (join result). *)

val equal_values : t -> t -> bool
(** Field-wise equality ignoring the tid — the equality used for duplicate
    counting in materialized views. *)

val equal : t -> t -> bool
(** [equal_values] and same tid — the equality of the hypothetical-relation
    set difference ("based on all fields of the tuple, including id"). *)

val compare_values : t -> t -> int
(** Lexicographic field comparison ignoring the tid. *)

val value_key : t -> string
(** Injective string encoding of the field values (ignoring tid), used for
    duplicate-count lookup and Bloom filters. *)

val pp : Format.formatter -> t -> unit
