(** The simulated disk.  Structures keep their contents in memory; the disk
    allocates page identifiers, counts physical page reads and writes, and
    charges them ([C2] each) to the cost meter's current category.  This
    substitutes for the paper's 1986 disk: every cost in the paper is a count
    of page I/Os, which this meter reproduces exactly. *)

type t

type page_id = private int

val create : Cost_meter.t -> t
val meter : t -> Cost_meter.t

val alloc : t -> file:string -> page_id
(** Allocate a page belonging to the named file. *)

val free : t -> page_id -> unit
(** Release a page.  @raise Invalid_argument if the page is not allocated. *)

val read : t -> page_id -> unit
(** One physical page read: counted and charged.
    @raise Invalid_argument if the page is not allocated. *)

val write : t -> page_id -> unit
(** One physical page write: counted and charged. *)

val file_of : t -> page_id -> string

val pages_in_file : t -> string -> int
(** Number of currently allocated pages of a file. *)

val allocated_pages : t -> int
val physical_reads : t -> int
val physical_writes : t -> int

(** {1 Buffer-pool aggregation}

    Buffer pools are created privately inside strategies; they report their
    hit/miss/eviction tallies to the shared disk so the runner can include
    pool behaviour in its measurement without threading every pool out. *)

val note_pool_hit : t -> unit
val note_pool_miss : t -> unit
val note_pool_eviction : t -> unit
val pool_hits : t -> int
val pool_misses : t -> int
val pool_evictions : t -> int

val page_id_to_int : page_id -> int
