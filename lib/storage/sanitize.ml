(* Runtime invariant sanitizers: cheap always-on checks plus sampled
   expensive ones, enabled per-context (Ctx.create ~sanitize:true or
   VMAT_SANITIZE=1).  The counterpart of the static rules vmlint enforces at
   the source level — vmlint proves the code cannot *introduce* certain
   nondeterminism; the sanitizer proves the running engine actually
   *preserves* its semantic invariants (cost conservation, Bloom
   no-false-negatives, refresh ≡ recompute).

   Design constraint: zero observer effect.  Checks may read unmetered views
   of structures and mirror meter charges, but must never charge the meter,
   consume context RNG state, or mint tuple ids from the context source —
   measurements are bit-identical with the sanitizer on or off. *)

exception Violation of string

type counts = {
  mutable reads : int;
  mutable writes : int;
  mutable tests : int;
  mutable overhead : int;
}

type state = {
  sample_every : int;
  on_violation : string -> unit;
  ticks : (string, int ref) Hashtbl.t;
      (* per-rule deterministic sampling counters: advancing them must not
         touch any RNG the engine observes *)
  mirror : counts array;  (* per category, same indexing as the meter *)
  mutable checks_run : int;
  mutable violations : int;
}

type t = { state : state option }

(* Immutable literal on purpose: the disabled sanitizer carries no state at
   all, so passing [none] everywhere costs one pointer and vmlint's D1 rule
   has nothing to object to. *)
let none = { state = None }

let enabled t = Option.is_some t.state

let default_violation rule_and_detail =
  raise (Violation rule_and_detail)

let env_enabled () =
  match Sys.getenv_opt "VMAT_SANITIZE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let create ?(sample_every = 16) ?(on_violation = default_violation) () =
  if sample_every <= 0 then invalid_arg "Sanitize.create: sample_every must be positive";
  {
    state =
      Some
        {
          sample_every;
          on_violation;
          ticks = Hashtbl.create 8;
          mirror = Array.init Cost_meter.ncategories (fun _ ->
              { reads = 0; writes = 0; tests = 0; overhead = 0 });
          checks_run = 0;
          violations = 0;
        };
  }

let checks_run t = match t.state with None -> 0 | Some s -> s.checks_run
let violations t = match t.state with None -> 0 | Some s -> s.violations

let report t ~rule ~detail =
  match t.state with
  | None -> ()
  | Some s ->
      s.violations <- s.violations + 1;
      s.on_violation (Printf.sprintf "[%s] %s" rule detail)

let check t ~rule cond ~detail =
  match t.state with
  | None -> ()
  | Some s ->
      s.checks_run <- s.checks_run + 1;
      if not (cond ()) then begin
        s.violations <- s.violations + 1;
        s.on_violation (Printf.sprintf "[%s] %s" rule (detail ()))
      end

(* Deterministic counter-based sampling: the [n]-th call for a given rule
   fires iff n mod sample_every = 0 (so the very first occurrence is always
   checked).  No RNG involved — sampling with the context RNG would shift
   every downstream random draw and break bit-identity with sanitize off. *)
let sample t ~rule =
  match t.state with
  | None -> false
  | Some s ->
      let tick =
        match Hashtbl.find_opt s.ticks rule with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.replace s.ticks rule r;
            r
      in
      let n = !tick in
      incr tick;
      n mod s.sample_every = 0

(* ------------------------------------------------------------------ *)
(* Cost conservation                                                    *)
(* ------------------------------------------------------------------ *)

(* Mirror every charge through the meter's dedicated sanitizer hook slot and
   periodically reconcile against the meter's own tallies.  Guards against a
   future refactor adding a charge path that bypasses the hook mechanism (or
   mutating tallies without charging) — the same drift the recorder's metric
   mirror would silently inherit. *)

let attach_meter t meter =
  match t.state with
  | None -> ()
  | Some s ->
      let on_charge cat kind n _cost_ms =
        let c = s.mirror.(Cost_meter.category_index cat) in
        match kind with
        | Cost_meter.Read -> c.reads <- c.reads + n
        | Cost_meter.Write -> c.writes <- c.writes + n
        | Cost_meter.Predicate_test -> c.tests <- c.tests + n
        | Cost_meter.Overhead_tuples -> c.overhead <- c.overhead + n
      in
      let on_reset () =
        Array.iter
          (fun c ->
            c.reads <- 0;
            c.writes <- 0;
            c.tests <- 0;
            c.overhead <- 0)
          s.mirror
      in
      Cost_meter.set_san_hook meter (Some { Cost_meter.on_charge; on_reset })

let check_meter t meter =
  match t.state with
  | None -> ()
  | Some _ ->
      List.iter
        (fun cat ->
          let name = Cost_meter.category_name cat in
          let mirror_of t' =
            match t'.state with
            | None -> assert false
            | Some s -> s.mirror.(Cost_meter.category_index cat)
          in
          let c = mirror_of t in
          check t ~rule:"cost-conservation"
            (fun () ->
              c.reads = Cost_meter.reads meter cat
              && c.writes = Cost_meter.writes meter cat
              && c.tests = Cost_meter.predicate_tests meter cat
              && c.overhead = Cost_meter.overhead_tuples meter cat)
            ~detail:(fun () ->
              Printf.sprintf
                "category %s: mirror r=%d w=%d t=%d o=%d vs meter r=%d w=%d t=%d o=%d \
                 (a charge path bypassed the hook, or a tally was mutated directly)"
                name c.reads c.writes c.tests c.overhead
                (Cost_meter.reads meter cat)
                (Cost_meter.writes meter cat)
                (Cost_meter.predicate_tests meter cat)
                (Cost_meter.overhead_tuples meter cat)))
        Cost_meter.all_categories
