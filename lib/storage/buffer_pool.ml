module Recorder = Vmat_obs.Recorder

type entry = { mutable dirty : bool; mutable stamp : int }

type t = {
  disk : Disk.t;
  capacity : int option;
  entries : (Disk.page_id, entry) Hashtbl.t;
  (* LRU with lazy deletion: the queue may contain stale (pid, stamp) pairs;
     a pair is live only if it matches the entry's current stamp. *)
  queue : (Disk.page_id * int) Queue.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?capacity disk =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Buffer_pool.create: capacity must be positive"
  | _ -> ());
  { disk; capacity; entries = Hashtbl.create 256; queue = Queue.create (); tick = 0; hits = 0; misses = 0 }

let disk t = t.disk

let touch t pid entry =
  t.tick <- t.tick + 1;
  entry.stamp <- t.tick;
  Queue.push (pid, t.tick) t.queue

(* Observability: pools also report to the disk-wide tallies (plain integer
   bumps, so measurements are unaffected) and, when a live recorder is
   attached to the meter, to the metric registry / trace. *)
let recorder t = Cost_meter.recorder (Disk.meter t.disk)

let note_eviction t pid ~dirty =
  Disk.note_pool_eviction t.disk;
  let r = recorder t in
  if Recorder.enabled r then begin
    Recorder.inc r ~help:"Buffer-pool evictions (LRU victims written back when dirty)."
      "vmat_buffer_pool_evictions_total" 1.;
    Recorder.instant r ~cat:"buffer_pool" "evict"
      ~args:
        [
          ("page", string_of_int (Disk.page_id_to_int pid));
          ("dirty", string_of_bool dirty);
        ]
  end

let evict_one t =
  let rec loop () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some (pid, stamp) -> (
        match Hashtbl.find_opt t.entries pid with
        | Some entry when entry.stamp = stamp ->
            note_eviction t pid ~dirty:entry.dirty;
            if entry.dirty then Disk.write t.disk pid;
            Hashtbl.remove t.entries pid
        | _ -> loop ())
  in
  loop ()

let evict_if_needed t =
  match t.capacity with
  | None -> ()
  | Some cap ->
      while Hashtbl.length t.entries > cap do
        evict_one t
      done

let read t pid =
  match Hashtbl.find_opt t.entries pid with
  | Some entry ->
      t.hits <- t.hits + 1;
      Disk.note_pool_hit t.disk;
      let r = recorder t in
      if Recorder.enabled r then
        Recorder.inc r ~help:"Buffer-pool logical reads served without I/O."
          "vmat_buffer_pool_hits_total" 1.;
      touch t pid entry
  | None ->
      t.misses <- t.misses + 1;
      Disk.note_pool_miss t.disk;
      let r = recorder t in
      if Recorder.enabled r then
        Recorder.inc r ~help:"Buffer-pool logical reads that paid a physical read."
          "vmat_buffer_pool_misses_total" 1.;
      Disk.read t.disk pid;
      let entry = { dirty = false; stamp = 0 } in
      Hashtbl.replace t.entries pid entry;
      touch t pid entry;
      evict_if_needed t

let write t pid =
  match Hashtbl.find_opt t.entries pid with
  | Some entry ->
      entry.dirty <- true;
      touch t pid entry
  | None ->
      let entry = { dirty = true; stamp = 0 } in
      Hashtbl.replace t.entries pid entry;
      touch t pid entry;
      evict_if_needed t

let flush t =
  Hashtbl.iter
    (fun pid entry ->
      if entry.dirty then begin
        Disk.write t.disk pid;
        entry.dirty <- false
      end)
    t.entries

let invalidate t =
  flush t;
  Hashtbl.reset t.entries;
  Queue.clear t.queue

let discard t pid = Hashtbl.remove t.entries pid

let resident t pid = Hashtbl.mem t.entries pid
let resident_count t = Hashtbl.length t.entries
let hits t = t.hits
let misses t = t.misses
