module Recorder = Vmat_obs.Recorder

type entry = { e_pid : Disk.page_id; mutable dirty : bool; mutable stamp : int }

type t = {
  disk : Disk.t;
  capacity : int option;
  entries : (int, entry) Hashtbl.t;  (* keyed by the page id's int *)
  (* LRU with lazy deletion, as a ring of (pid, stamp) int pairs packed into
     one growable array — a touch allocates nothing (the Queue this replaces
     allocated a tuple and a cell per metered read/write).  A pair is live
     only if it matches the entry's current stamp.  Capacity-less pools
     (most modeled pools: the paper invalidates between operations) never
     evict, so they skip the ring entirely. *)
  mutable ring : int array;
  mutable ring_head : int;  (* oldest pair, in pair units *)
  mutable ring_len : int;  (* live+stale pairs in the ring *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?capacity disk =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Buffer_pool.create: capacity must be positive"
  | _ -> ());
  {
    disk;
    capacity;
    entries = Hashtbl.create 256;
    ring = (match capacity with Some _ -> Array.make 128 0 | None -> [||]);
    ring_head = 0;
    ring_len = 0;
    tick = 0;
    hits = 0;
    misses = 0;
  }

let disk t = t.disk

let ring_capacity t = Array.length t.ring / 2

let ring_push t pid_int stamp =
  let cap = ring_capacity t in
  if t.ring_len = cap then begin
    (* Grow, unrolling the ring so head comes first. *)
    let fresh = Array.make (max 8 (Array.length t.ring * 2)) 0 in
    for i = 0 to t.ring_len - 1 do
      let j = (t.ring_head + i) mod cap in
      fresh.(2 * i) <- t.ring.(2 * j);
      fresh.((2 * i) + 1) <- t.ring.((2 * j) + 1)
    done;
    t.ring <- fresh;
    t.ring_head <- 0
  end;
  let cap = ring_capacity t in
  let i = (t.ring_head + t.ring_len) mod cap in
  t.ring.(2 * i) <- pid_int;
  t.ring.((2 * i) + 1) <- stamp;
  t.ring_len <- t.ring_len + 1

let ring_pop t =
  if t.ring_len = 0 then None
  else begin
    let i = t.ring_head in
    let pid_int = t.ring.(2 * i) and stamp = t.ring.((2 * i) + 1) in
    t.ring_head <- (i + 1) mod ring_capacity t;
    t.ring_len <- t.ring_len - 1;
    Some (pid_int, stamp)
  end

let touch t pid_int entry =
  t.tick <- t.tick + 1;
  entry.stamp <- t.tick;
  if t.capacity <> None then ring_push t pid_int t.tick

(* Observability: pools also report to the disk-wide tallies (plain integer
   bumps, so measurements are unaffected) and, when a live recorder is
   attached to the meter, to the metric registry / trace. *)
let recorder t = Cost_meter.recorder (Disk.meter t.disk)

let note_eviction t pid ~dirty =
  Disk.note_pool_eviction t.disk;
  let r = recorder t in
  if Recorder.enabled r then begin
    Recorder.inc r ~help:"Buffer-pool evictions (LRU victims written back when dirty)."
      "vmat_buffer_pool_evictions_total" 1.;
    Recorder.instant r ~cat:"buffer_pool" "evict"
      ~args:
        [
          ("page", string_of_int (Disk.page_id_to_int pid));
          ("dirty", string_of_bool dirty);
        ]
  end

let evict_one t =
  let rec loop () =
    match ring_pop t with
    | None -> ()
    | Some (pid_int, stamp) -> (
        match Hashtbl.find_opt t.entries pid_int with
        | Some entry when entry.stamp = stamp ->
            note_eviction t entry.e_pid ~dirty:entry.dirty;
            if entry.dirty then Disk.write t.disk entry.e_pid;
            Hashtbl.remove t.entries pid_int
        | _ -> loop ())
  in
  loop ()

let evict_if_needed t =
  match t.capacity with
  | None -> ()
  | Some cap ->
      while Hashtbl.length t.entries > cap do
        evict_one t
      done

let read t pid =
  let pid_int = Disk.page_id_to_int pid in
  match Hashtbl.find_opt t.entries pid_int with
  | Some entry ->
      t.hits <- t.hits + 1;
      Disk.note_pool_hit t.disk;
      let r = recorder t in
      if Recorder.enabled r then
        Recorder.inc r ~help:"Buffer-pool logical reads served without I/O."
          "vmat_buffer_pool_hits_total" 1.;
      touch t pid_int entry
  | None ->
      t.misses <- t.misses + 1;
      Disk.note_pool_miss t.disk;
      let r = recorder t in
      if Recorder.enabled r then
        Recorder.inc r ~help:"Buffer-pool logical reads that paid a physical read."
          "vmat_buffer_pool_misses_total" 1.;
      Disk.read t.disk pid;
      let entry = { e_pid = pid; dirty = false; stamp = 0 } in
      Hashtbl.replace t.entries pid_int entry;
      touch t pid_int entry;
      evict_if_needed t

let write t pid =
  let pid_int = Disk.page_id_to_int pid in
  match Hashtbl.find_opt t.entries pid_int with
  | Some entry ->
      entry.dirty <- true;
      touch t pid_int entry
  | None ->
      let entry = { e_pid = pid; dirty = true; stamp = 0 } in
      Hashtbl.replace t.entries pid_int entry;
      touch t pid_int entry;
      evict_if_needed t

let flush t =
  Hashtbl.iter
    (fun _ entry ->
      if entry.dirty then begin
        Disk.write t.disk entry.e_pid;
        entry.dirty <- false
      end)
    t.entries

let invalidate t =
  flush t;
  Hashtbl.reset t.entries;
  t.ring_head <- 0;
  t.ring_len <- 0

let discard t pid = Hashtbl.remove t.entries (Disk.page_id_to_int pid)

let resident t pid = Hashtbl.mem t.entries (Disk.page_id_to_int pid)
let resident_count t = Hashtbl.length t.entries
let hits t = t.hits
let misses t = t.misses
