(* Flat page-resident rows: the in-memory twin of the WAL codec's LE
   fixint/varlen format (DESIGN §12).  A page is one growable [Bytes] buffer
   plus a slot directory of row offsets; rows are self-describing
   ([len][tid][arity][cells][varlen]) and relocatable (varlen offsets are
   row-relative), so moving a row between pages is a single blit.

   Layout of one row at offset [off]:

     off + 0   u32   total row length in bytes (header + cells + varlen)
     off + 4   i64   tid
     off + 12  u16   arity
     off + 14  cells arity x 9 bytes: 1 tag byte + 8 payload bytes
     ...       varlen bytes (string payloads, in column order)

   Cell payloads by tag (tags match lib/storage/codec.ml):
     0 Null    payload unused (zero)
     1 Bool    payload <> 0
     2 Int     i64 LE
     3 Float   IEEE-754 bits LE
     4 Str     u32 LE offset from row start ++ u32 LE byte length

   Fixed-width cells make column access O(1): cell [i] of the row at [off]
   lives at [off + 14 + 9*i].  Comparisons and key strings are computed
   straight off the buffer without boxing a [Value.t]. *)

type t = {
  mutable buf : Bytes.t;
  mutable used : int;  (* high-water mark of row bytes (including garbage) *)
  mutable slots : int array;  (* row offsets, in slot order *)
  mutable nslots : int;
  mutable garbage : int;  (* dead row bytes below [used] *)
}

let header_bytes = 14
let cell_bytes = 9

let tag_null = 0
let tag_bool = 1
let tag_int = 2
let tag_float = 3
let tag_str = 4

let create ?(hint = 256) () =
  {
    buf = Bytes.create (max 64 hint);
    used = 0;
    slots = Array.make 8 0;
    nslots = 0;
    garbage = 0;
  }

let length p = p.nslots
let byte_size p = p.used - p.garbage

let clear p =
  p.used <- 0;
  p.nslots <- 0;
  p.garbage <- 0

let ensure_bytes p extra =
  let need = p.used + extra in
  if need > Bytes.length p.buf then begin
    let cap = ref (Bytes.length p.buf * 2) in
    while need > !cap do
      cap := !cap * 2
    done;
    let fresh = Bytes.create !cap in
    Bytes.blit p.buf 0 fresh 0 p.used;
    p.buf <- fresh
  end

let ensure_slot p =
  if p.nslots = Array.length p.slots then begin
    let fresh = Array.make (Array.length p.slots * 2) 0 in
    Array.blit p.slots 0 fresh 0 p.nslots;
    p.slots <- fresh
  end

let slot_off p i =
  if i < 0 || i >= p.nslots then invalid_arg "Flat: slot out of range";
  p.slots.(i)

let row_len_at p off = Int32.to_int (Bytes.get_int32_le p.buf off)

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

let row_size tuple =
  let values = Tuple.values tuple in
  let var =
    Array.fold_left
      (fun acc v -> match v with Value.Str s -> acc + String.length s | _ -> acc)
      0 values
  in
  header_bytes + (Array.length values * cell_bytes) + var

(* Encode [tuple] at the end of the buffer; returns its offset.  Does not
   touch the slot directory. *)
let write_row p tuple =
  let values = Tuple.values tuple in
  let n = Array.length values in
  if n > 0xffff then invalid_arg "Flat: arity exceeds 65535";
  let size = row_size tuple in
  ensure_bytes p size;
  let off = p.used in
  Bytes.set_int32_le p.buf off (Int32.of_int size);
  Bytes.set_int64_le p.buf (off + 4) (Int64.of_int (Tuple.tid tuple));
  Bytes.set_uint16_le p.buf (off + 12) n;
  let var = ref (header_bytes + (n * cell_bytes)) in
  for i = 0 to n - 1 do
    let c = off + header_bytes + (i * cell_bytes) in
    match values.(i) with
    | Value.Null ->
        Bytes.set_uint8 p.buf c tag_null;
        Bytes.set_int64_le p.buf (c + 1) 0L
    | Value.Bool b ->
        Bytes.set_uint8 p.buf c tag_bool;
        Bytes.set_int64_le p.buf (c + 1) (if b then 1L else 0L)
    | Value.Int x ->
        Bytes.set_uint8 p.buf c tag_int;
        Bytes.set_int64_le p.buf (c + 1) (Int64.of_int x)
    | Value.Float f ->
        Bytes.set_uint8 p.buf c tag_float;
        Bytes.set_int64_le p.buf (c + 1) (Int64.bits_of_float f)
    | Value.Str s ->
        let len = String.length s in
        Bytes.set_uint8 p.buf c tag_str;
        Bytes.set_int32_le p.buf (c + 1) (Int32.of_int !var);
        Bytes.set_int32_le p.buf (c + 5) (Int32.of_int len);
        Bytes.blit_string s 0 p.buf (off + !var) len;
        var := !var + len
  done;
  p.used <- p.used + size;
  off

(* ------------------------------------------------------------------ *)
(* Compaction                                                           *)
(* ------------------------------------------------------------------ *)

let compact p =
  let fresh = Bytes.create (Bytes.length p.buf) in
  let w = ref 0 in
  for i = 0 to p.nslots - 1 do
    let off = p.slots.(i) in
    let len = row_len_at p off in
    Bytes.blit p.buf off fresh !w len;
    p.slots.(i) <- !w;
    w := !w + len
  done;
  p.buf <- fresh;
  p.used <- !w;
  p.garbage <- 0

let maybe_compact p = if p.garbage * 2 > p.used then compact p

(* ------------------------------------------------------------------ *)
(* Slot directory edits                                                 *)
(* ------------------------------------------------------------------ *)

let append p tuple =
  let off = write_row p tuple in
  ensure_slot p;
  p.slots.(p.nslots) <- off;
  p.nslots <- p.nslots + 1;
  p.nslots - 1

let insert_at p i tuple =
  if i < 0 || i > p.nslots then invalid_arg "Flat.insert_at";
  let off = write_row p tuple in
  ensure_slot p;
  Array.blit p.slots i p.slots (i + 1) (p.nslots - i);
  p.slots.(i) <- off;
  p.nslots <- p.nslots + 1

let remove_at p i =
  let off = slot_off p i in
  p.garbage <- p.garbage + row_len_at p off;
  Array.blit p.slots (i + 1) p.slots i (p.nslots - i - 1);
  p.nslots <- p.nslots - 1;
  maybe_compact p

let replace_at p i tuple =
  let old = slot_off p i in
  let old_len = row_len_at p old in
  let off = write_row p tuple in
  p.slots.(i) <- off;
  p.garbage <- p.garbage + old_len;
  maybe_compact p

let truncate p n =
  if n < 0 || n > p.nslots then invalid_arg "Flat.truncate";
  for i = n to p.nslots - 1 do
    p.garbage <- p.garbage + row_len_at p p.slots.(i)
  done;
  p.nslots <- n;
  maybe_compact p

let copy_row ~src i ~dst =
  let off = slot_off src i in
  let len = row_len_at src off in
  ensure_bytes dst len;
  Bytes.blit src.buf off dst.buf dst.used len;
  ensure_slot dst;
  dst.slots.(dst.nslots) <- dst.used;
  dst.nslots <- dst.nslots + 1;
  dst.used <- dst.used + len

(* ------------------------------------------------------------------ *)
(* Row accessors                                                        *)
(* ------------------------------------------------------------------ *)

let tid_at p i = Int64.to_int (Bytes.get_int64_le p.buf (slot_off p i + 4))
let arity_at p i = Bytes.get_uint16_le p.buf (slot_off p i + 12)

let cell_check p off col =
  let n = Bytes.get_uint16_le p.buf (off + 12) in
  if col < 0 || col >= n then invalid_arg "Flat: column out of range"

let cell_off off col = off + header_bytes + (col * cell_bytes)

let str_parts p off c =
  let s_off = Int32.to_int (Bytes.get_int32_le p.buf (c + 1)) in
  let s_len = Int32.to_int (Bytes.get_int32_le p.buf (c + 5)) in
  (off + s_off, s_len)

let value_of_cell p off col =
  let c = cell_off off col in
  match Bytes.get_uint8 p.buf c with
  | 0 -> Value.Null
  | 1 -> Value.Bool (not (Int64.equal (Bytes.get_int64_le p.buf (c + 1)) 0L))
  | 2 -> Value.Int (Int64.to_int (Bytes.get_int64_le p.buf (c + 1)))
  | 3 -> Value.Float (Int64.float_of_bits (Bytes.get_int64_le p.buf (c + 1)))
  | 4 ->
      let s_off, s_len = str_parts p off c in
      Value.Str (Bytes.sub_string p.buf s_off s_len)
  | tag -> invalid_arg (Printf.sprintf "Flat: corrupt cell tag %d" tag)

let cell_value p i col =
  let off = slot_off p i in
  cell_check p off col;
  value_of_cell p off col

let cell_int p i col =
  let off = slot_off p i in
  cell_check p off col;
  let c = cell_off off col in
  if Bytes.get_uint8 p.buf c <> tag_int then invalid_arg "Flat.cell_int: not an Int cell";
  Int64.to_int (Bytes.get_int64_le p.buf (c + 1))

(* Mirrors the Hr marker decode: any non-Bool cell reads as false. *)
let cell_bool_or_false p i col =
  let off = slot_off p i in
  cell_check p off col;
  let c = cell_off off col in
  Bytes.get_uint8 p.buf c = tag_bool
  && not (Int64.equal (Bytes.get_int64_le p.buf (c + 1)) 0L)

(* ------------------------------------------------------------------ *)
(* Comparisons straight off the buffer (no Value.t boxing)              *)
(* ------------------------------------------------------------------ *)

let rank_of_tag = function
  | 0 -> 0
  | 1 -> 1
  | 2 | 3 -> 2
  | 4 -> 3
  | tag -> invalid_arg (Printf.sprintf "Flat: corrupt cell tag %d" tag)

(* String.compare is byte-lexicographic, so comparing the raw byte ranges
   reproduces it exactly. *)
let compare_bytes_bytes ba oa la bb ob lb =
  let n = if la < lb then la else lb in
  let rec loop i =
    if i = n then Int.compare la lb
    else
      let c = Char.compare (Bytes.get ba (oa + i)) (Bytes.get bb (ob + i)) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let compare_bytes_string ba oa la s =
  let lb = String.length s in
  let n = if la < lb then la else lb in
  let rec loop i =
    if i = n then Int.compare la lb
    else
      let c = Char.compare (Bytes.get ba (oa + i)) (String.get s i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

(* [compare_cell_value p i col v] = [Value.compare (cell) v], replicated
   case-by-case so no Value.t is boxed for the cell. *)
let compare_cell_value p i col (v : Value.t) =
  let off = slot_off p i in
  cell_check p off col;
  let c = cell_off off col in
  let tag = Bytes.get_uint8 p.buf c in
  match (tag, v) with
  | 0, Value.Null -> 0
  | 1, Value.Bool y ->
      Bool.compare (not (Int64.equal (Bytes.get_int64_le p.buf (c + 1)) 0L)) y
  | 2, Value.Int y -> Int.compare (Int64.to_int (Bytes.get_int64_le p.buf (c + 1))) y
  | 3, Value.Float y -> Float.compare (Int64.float_of_bits (Bytes.get_int64_le p.buf (c + 1))) y
  | 2, Value.Float y ->
      Float.compare (float_of_int (Int64.to_int (Bytes.get_int64_le p.buf (c + 1)))) y
  | 3, Value.Int y ->
      Float.compare (Int64.float_of_bits (Bytes.get_int64_le p.buf (c + 1))) (float_of_int y)
  | 4, Value.Str y ->
      let s_off, s_len = str_parts p off c in
      compare_bytes_string p.buf s_off s_len y
  | _, _ -> Int.compare (rank_of_tag tag) (Value.rank v)

let float_of_cell p c tag =
  if tag = tag_int then float_of_int (Int64.to_int (Bytes.get_int64_le p.buf (c + 1)))
  else Int64.float_of_bits (Bytes.get_int64_le p.buf (c + 1))

(* [Value.compare] between two cells, possibly on different pages. *)
let compare_cells pa ia ca pb ib cb =
  let offa = slot_off pa ia and offb = slot_off pb ib in
  cell_check pa offa ca;
  cell_check pb offb cb;
  let a = cell_off offa ca and b = cell_off offb cb in
  let ta = Bytes.get_uint8 pa.buf a and tb = Bytes.get_uint8 pb.buf b in
  match (ta, tb) with
  | 0, 0 -> 0
  | 1, 1 ->
      Bool.compare
        (not (Int64.equal (Bytes.get_int64_le pa.buf (a + 1)) 0L))
        (not (Int64.equal (Bytes.get_int64_le pb.buf (b + 1)) 0L))
  | 2, 2 ->
      Int.compare
        (Int64.to_int (Bytes.get_int64_le pa.buf (a + 1)))
        (Int64.to_int (Bytes.get_int64_le pb.buf (b + 1)))
  | (2 | 3), (2 | 3) -> Float.compare (float_of_cell pa a ta) (float_of_cell pb b tb)
  | 4, 4 ->
      let sa, la = str_parts pa offa a and sb, lb = str_parts pb offb b in
      compare_bytes_bytes pa.buf sa la pb.buf sb lb
  | _, _ -> Int.compare (rank_of_tag ta) (rank_of_tag tb)

(* ------------------------------------------------------------------ *)
(* Key strings (must equal Value.key_string of the boxed cell)          *)
(* ------------------------------------------------------------------ *)

let add_cell_key_string buffer p off col =
  let c = cell_off off col in
  match Bytes.get_uint8 p.buf c with
  | 0 -> Buffer.add_char buffer 'N'
  | 1 ->
      Buffer.add_string buffer
        (if Int64.equal (Bytes.get_int64_le p.buf (c + 1)) 0L then "B0" else "B1")
  | 2 ->
      Buffer.add_char buffer 'I';
      Buffer.add_string buffer (string_of_int (Int64.to_int (Bytes.get_int64_le p.buf (c + 1))))
  | 3 ->
      let f = Int64.float_of_bits (Bytes.get_int64_le p.buf (c + 1)) in
      if Float.is_integer f && Float.abs f < 1e15 then begin
        Buffer.add_char buffer 'I';
        Buffer.add_string buffer (string_of_int (int_of_float f))
      end
      else begin
        Buffer.add_char buffer 'F';
        Buffer.add_string buffer (string_of_float f)
      end
  | 4 ->
      let s_off, s_len = str_parts p off c in
      Buffer.add_char buffer 'S';
      Buffer.add_subbytes buffer p.buf s_off s_len
  | tag -> invalid_arg (Printf.sprintf "Flat: corrupt cell tag %d" tag)

let cell_key_string p i col =
  let off = slot_off p i in
  cell_check p off col;
  let b = Buffer.create 16 in
  add_cell_key_string b p off col;
  Buffer.contents b

(* Equals [Tuple.value_key] of the materialized row: cell key strings joined
   by '|'. *)
let row_value_key p i =
  let off = slot_off p i in
  let n = Bytes.get_uint16_le p.buf (off + 12) in
  let b = Buffer.create 32 in
  for col = 0 to n - 1 do
    if col > 0 then Buffer.add_char b '|';
    add_cell_key_string b p off col
  done;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Materialization (the sanctioned boxing boundary)                     *)
(* ------------------------------------------------------------------ *)

let materialize p i =
  let off = slot_off p i in
  let n = Bytes.get_uint16_le p.buf (off + 12) in
  Tuple.make
    ~tid:(Int64.to_int (Bytes.get_int64_le p.buf (off + 4)))
    (Array.init n (fun col -> value_of_cell p off col))

let materialize_prefix p i n ~tid =
  let off = slot_off p i in
  let arity = Bytes.get_uint16_le p.buf (off + 12) in
  if n > arity then invalid_arg "Flat.materialize_prefix: prefix longer than row";
  Tuple.make ~tid (Array.init n (fun col -> value_of_cell p off col))

let project p i positions ~tid =
  let off = slot_off p i in
  let arity = Bytes.get_uint16_le p.buf (off + 12) in
  Tuple.make ~tid
    (Array.map
       (fun col ->
         if col < 0 || col >= arity then invalid_arg "Flat.project: column out of range";
         value_of_cell p off col)
       positions)
