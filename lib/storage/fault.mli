(** Deterministic fault injection for crash-recovery testing (DESIGN §9).

    Durability-critical call sites declare named crash points via
    {!point}.  An enabled injector counts every point it passes; when the
    count reaches the configured index it raises {!Crash}, simulating the
    machine dying at exactly that operation.  At a fixed seed the counter
    sequence is deterministic, so the crash-point space can be enumerated
    exhaustively: run once with a counting injector to learn [K], then for
    each [k <= K] crash at [k], recover, and demand bit-identity with the
    uncrashed run.

    The disabled handle {!none} carries no state (the [Sanitize.none]
    pattern) and is the default in every context — production paths pay one
    pattern match and nothing else. *)

exception Crash of string * int
(** [Crash (label, k)] — simulated crash at point [k] (label = call site). *)

type t

val none : t
(** The disabled injector: stateless, shareable, never crashes. *)

val create : ?crash_at:int -> ?keep_labels:bool -> unit -> t
(** [crash_at = 0] (default) counts points without crashing — used to
    enumerate the crash-point space.  [crash_at = k > 0] raises {!Crash} at
    the [k]-th point.  [keep_labels] records the label of every point
    passed (for the crash-point catalog; off by default). *)

val enabled : t -> bool

val point : t -> string -> unit
(** Declare a crash point.  No-op on {!none}. *)

val points_seen : t -> int
(** Number of points passed so far (0 for {!none}). *)

val labels : t -> (int * string) list
(** Points passed, in order, when [keep_labels] was set. *)

val reset : ?crash_at:int -> t -> unit
(** Zero the counter (and optionally retarget the crash index) so one
    injector can drive multiple enumeration runs. *)
