(** Per-engine execution context.

    A [Ctx.t] owns every piece of state that used to be ambient: the tuple-id
    source, the device geometry, the cost meter (and through it the
    observability recorder), the disk, and a root deterministic RNG.  Each
    engine ([Db.t], a strategy environment, one sweep point of a measured
    experiment) owns exactly one context, so any number of engines can coexist
    in one process — or run in parallel domains — in perfect isolation. *)

type geometry = { page_bytes : int; index_entry_bytes : int }
(** Device geometry of §4: usable page payload and bytes per index entry. *)

val default_geometry : geometry
(** 4000-byte pages, 20-byte index entries (paper defaults). *)

type t

val create :
  ?geometry:geometry ->
  ?c1:float ->
  ?c2:float ->
  ?c3:float ->
  ?seed:int ->
  ?first_tid:int ->
  ?sanitize:bool ->
  ?fault:Fault.t ->
  unit ->
  t
(** Fresh context with its own meter, disk, tid source (first tid
    [first_tid], default 1) and RNG ([seed], default 42).  [sanitize]
    (default: {!Sanitize.env_enabled}, i.e. the [VMAT_SANITIZE] environment
    variable) attaches an enabled {!Sanitize.t}, installing its
    cost-conservation mirror in the meter's sanitizer hook slot.  [fault]
    (default {!Fault.none}) attaches a deterministic crash-point injector
    for durability testing (DESIGN §9). *)

val of_parts :
  ?geometry:geometry ->
  ?seed:int ->
  ?first_tid:int ->
  ?sanitizer:Sanitize.t ->
  ?fault:Fault.t ->
  meter:Cost_meter.t ->
  disk:Disk.t ->
  unit ->
  t
(** Wrap an existing meter/disk pair (the disk must have been created from
    that meter) in a context.  [sanitizer] (default {!Sanitize.none}) lets
    tests supply a custom sanitizer (e.g. one whose [~on_violation]
    accumulates instead of raising); it is attached to [meter] here. *)

val geometry : t -> geometry
val meter : t -> Cost_meter.t
val disk : t -> Disk.t
val tids : t -> Tuple.source
val rng : t -> Vmat_util.Rng.t

val sanitizer : t -> Sanitize.t
(** This context's runtime invariant checker ({!Sanitize.none} unless
    created with [~sanitize:true] / [VMAT_SANITIZE=1]). *)

val fault : t -> Fault.t
(** This context's crash-point injector ({!Fault.none} unless supplied). *)

(** {1 Cross-domain handoff}

    A context's mutable state (meter, disk, tid source, RNG) is
    single-threaded by design: exactly one domain may drive it at a time.
    Handing a context to another domain — the serving subsystem's writer
    domain (DESIGN §10), for example — must be explicit: the receiving
    domain calls {!adopt} before its first operation, and runtime
    sanitizers assert {!owned_by_current} before mutations. *)

val owner : t -> int
(** Integer id of the domain that currently owns this context (initially
    the domain that created it). *)

val adopt : t -> unit
(** Claim ownership for the calling domain.  Call at the top of a domain
    body that received a context built elsewhere; the handing-over domain
    must no longer touch the context afterwards. *)

val owned_by_current : t -> bool
(** Whether the calling domain is the current owner. *)

val fresh_tid : t -> int
(** Draw the next tuple id from this context's source. *)

val split_rng : t -> Vmat_util.Rng.t
(** Independent child generator derived from the context's root RNG. *)

val recorder : t -> Vmat_obs.Recorder.t
(** The recorder attached to this context's meter ([Recorder.noop] when
    none). *)

val set_recorder : t -> Vmat_obs.Recorder.t -> unit
(** Attach a recorder to this context's meter (see
    {!Cost_meter.set_recorder}). *)
