(* A zero-copy cursor over one flat row: a page plus a slot index.  Storage
   engines reuse a single cursor per scan (mutating [slot]), so iterating a
   page allocates nothing; callers that keep a row past the callback must
   [materialize] it. *)

type t = { mutable page : Flat.t; mutable slot : int }

let on page slot = { page; slot }

let set v page slot =
  v.page <- page;
  v.slot <- slot

let set_slot v slot = v.slot <- slot

let tid v = Flat.tid_at v.page v.slot
let arity v = Flat.arity_at v.page v.slot
let get v col = Flat.cell_value v.page v.slot col
let get_int v col = Flat.cell_int v.page v.slot col
let get_bool_or_false v col = Flat.cell_bool_or_false v.page v.slot col

let compare_col v col value = Flat.compare_cell_value v.page v.slot col value

let compare_cols a ca b cb = Flat.compare_cells a.page a.slot ca b.page b.slot cb

(* Lexicographic field comparison ignoring tids — mirrors
   [Tuple.compare_values]. *)
let compare_values a b =
  let la = arity a and lb = arity b in
  let rec loop i =
    if i >= la || i >= lb then Int.compare la lb
    else match compare_cols a i b i with 0 -> loop (i + 1) | c -> c
  in
  loop 0

let compare_values_tuple v tuple =
  let la = arity v and lb = Tuple.arity tuple in
  let rec loop i =
    if i >= la || i >= lb then Int.compare la lb
    else match compare_col v i (Tuple.get tuple i) with 0 -> loop (i + 1) | c -> c
  in
  loop 0

let equal_values_tuple v tuple = compare_values_tuple v tuple = 0

(* First [n] cells of the view against all fields of [tuple] — the
   stored-row-vs-view-row equality of materialized views (the stored row
   carries a trailing count column). *)
let equal_prefix_values v tuple n =
  Tuple.arity tuple = n
  && arity v >= n
  &&
  let rec loop i =
    i >= n || (compare_col v i (Tuple.get tuple i) = 0 && loop (i + 1))
  in
  loop 0

let value_key v = Flat.row_value_key v.page v.slot
let key_string_col v col = Flat.cell_key_string v.page v.slot col

let materialize v = Flat.materialize v.page v.slot
let materialize_prefix v n ~tid = Flat.materialize_prefix v.page v.slot n ~tid
let project v positions ~tid = Flat.project v.page v.slot positions ~tid
