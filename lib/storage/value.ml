type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

let rank = function Null -> 0 | Bool _ -> 1 | Int _ | Float _ -> 2 | Str _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let key_string = function
  | Null -> "N"
  | Bool b -> if b then "B1" else "B0"
  | Int i -> "I" ^ string_of_int i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then "I" ^ string_of_int (int_of_float f)
      else "F" ^ string_of_float f
  | Str s -> "S" ^ s

(* Monomorphic [String.hash] over the canonical key string: same value as the
   polymorphic hash on strings (so bucket layouts are unchanged), but
   deterministic by type rather than by convention (vmlint rule D2). *)
let hash v = String.hash (key_string v)

let as_int = function
  | Int i -> i
  | v -> invalid_arg ("Value.as_int: " ^ to_string v)

let as_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> invalid_arg ("Value.as_float: " ^ to_string v)

let pp fmt v = Format.pp_print_string fmt (to_string v)
