(** Unordered heap files: fixed-capacity pages of tuples in insertion order.
    Used for sequential-scan access paths and as the data layer under
    secondary indexes. *)

type t

type locator
(** Position of a tuple (page + identity), returned by insertions so indexes
    can point at it. *)

val create :
  disk:Disk.t -> ?pool_capacity:int -> page_bytes:int -> Schema.t -> t
(** [create ~disk ~page_bytes schema] is an empty heap file whose pages hold
    [page_bytes / Schema.tuple_bytes schema] tuples (at least 1). *)

val schema : t -> Schema.t
val tuples_per_page : t -> int
val tuple_count : t -> int
val page_count : t -> int
val pool : t -> Buffer_pool.t

val insert : t -> Tuple.t -> locator
(** Append the tuple (newest page with free space, else a new page).  Charges
    the read and write of the target page.  Finding the target examines
    exactly one page — a direct handle to the open page, not a scan. *)

val insert_probes : t -> int
(** Cumulative number of pages examined while choosing insert targets (one
    per insert) — observable evidence that insert cost does not grow with
    the page count. *)

val delete : t -> locator -> unit
(** Remove the tuple at the locator (read + write of its page).
    @raise Invalid_argument if the locator is stale. *)

val read_at : t -> locator -> Tuple.t
(** Fetch the tuple at a locator, charging the page read. *)

val view_at : t -> locator -> Tuple_view.t -> unit
(** Aim the cursor at the row behind the locator, charging the same page
    read as {!read_at} but materializing nothing. *)

val page_of : t -> locator -> Disk.page_id

val scan : t -> (Tuple.t -> unit) -> unit
(** Full sequential scan: charges one read per page and applies the function
    to every tuple.  No per-tuple CPU is charged here; callers charge [C1]
    when they test a predicate. *)

val scan_views : t -> (Tuple_view.t -> unit) -> unit
(** {!scan} without boxing: the callback receives a reused cursor aimed at
    each row in turn (valid only during the callback).  Identical page-read
    charges and row order to {!scan}. *)

val iter_unmetered : t -> (Tuple.t -> unit) -> unit
(** Iterate without charging any cost (verification and tests only). *)

val iter_views_unmetered : t -> (Tuple_view.t -> unit) -> unit

val find_unmetered : t -> (Tuple.t -> bool) -> (locator * Tuple.t) option

val locators_unmetered : t -> (locator * Tuple.t) list
(** All (locator, tuple) pairs, uncharged — used to build secondary indexes. *)
