(** Runtime invariant sanitizers — the dynamic counterpart of the vmlint
    static rules (DESIGN §8).  A sanitizer handle rides in the execution
    context ({!Ctx.create} [~sanitize:true], or [VMAT_SANITIZE=1] in the
    environment); instrumented sites ask it to verify semantic invariants the
    type system cannot express:

    - {b cost conservation}: every meter tally equals an independently
      mirrored count of the charges that produced it ({!attach_meter} +
      {!check_meter}, driven per-operation by [Runner]);
    - {b Bloom no-false-negatives}: a negative screen of the differential
      file really means no A/D entry holds the key ([Hr.lookup]);
    - {b refresh ≡ recompute}: an incrementally maintained view equals the
      from-scratch recomputation over current base contents (deferred
      refresh / immediate maintenance, sampled via {!sample}).

    Zero observer effect by construction: checks read unmetered views and
    never charge the meter, consume context RNG state, or mint tuple ids
    from the context source.  Measurements are bit-identical with the
    sanitizer on or off (asserted in test/test_sanitize.ml). *)

exception Violation of string
(** Raised by the default violation handler.  The message carries the rule
    tag and a diagnostic, e.g.
    [\[cost-conservation\] category hr: mirror r=3 ... vs meter r=4 ...]. *)

type t

val none : t
(** The disabled sanitizer: every operation is a no-op costing one branch.
    This is what a context created without [~sanitize:true] carries. *)

val create : ?sample_every:int -> ?on_violation:(string -> unit) -> unit -> t
(** An enabled sanitizer.  [sample_every] (default 16) thins the expensive
    checks: {!sample} answers [true] on the first and every [sample_every]-th
    occurrence per rule, advancing a deterministic counter (never an RNG).
    [on_violation] defaults to raising {!Violation}; tests substitute an
    accumulator to assert on caught violations.

    @raise Invalid_argument if [sample_every <= 0]. *)

val env_enabled : unit -> bool
(** [true] iff [VMAT_SANITIZE] is set to [1]/[true]/[yes]/[on] — the switch
    CI's sanitize smoke job flips for the whole test suite and a sweep. *)

val enabled : t -> bool

val check : t -> rule:string -> (unit -> bool) -> detail:(unit -> string) -> unit
(** [check t ~rule cond ~detail] evaluates [cond] (only when enabled) and
    reports a violation of [rule] with [detail ()] when it is [false].  Both
    thunks are unevaluated on {!none}. *)

val sample : t -> rule:string -> bool
(** Whether the caller should run an expensive check now.  [false] on
    {!none}; otherwise true every [sample_every]-th call per [rule]
    (including the first). *)

val report : t -> rule:string -> detail:string -> unit
(** Unconditionally report a violation discovered by the caller's own logic
    (e.g. a Bloom false negative detected inline). *)

val checks_run : t -> int
val violations : t -> int

(** {1 Cost conservation} *)

val attach_meter : t -> Cost_meter.t -> unit
(** Install the conservation mirror in the meter's dedicated sanitizer hook
    slot ({!Cost_meter.set_san_hook}) — independent of, and coexisting with,
    the recorder's metric hook.  No-op on {!none}. *)

val check_meter : t -> Cost_meter.t -> unit
(** Reconcile the mirror against the meter's own tallies, category by
    category and kind by kind; any discrepancy means a charge path bypassed
    the hook mechanism or a tally was mutated directly. *)
