open Vmat_storage

(* Entries are ordered by the pair (key, tid); internal separators are such
   pairs, equal to the smallest pair of their right subtree.  Descending with
   an exact pair therefore lands in the unique leaf that may contain it, and
   descending with (key, min_int) lands in the leftmost leaf that may contain
   any entry with that key. *)

type pair = Value.t * int

let compare_pair (k1, t1) (k2, t2) =
  match Value.compare k1 k2 with 0 -> Int.compare t1 t2 | c -> c

type leaf = {
  l_pid : Disk.page_id;
  mutable l_tuples : Tuple.t list;  (* sorted by pair *)
  mutable l_next : leaf option;
}

type internal = {
  i_pid : Disk.page_id;
  mutable i_keys : pair list;  (* n separators for n+1 children *)
  mutable i_children : node list;
}

and node = Leaf of leaf | Internal of internal

type t = {
  disk : Disk.t;
  pool : Buffer_pool.t;
  name : string;
  fanout : int;
  leaf_capacity : int;
  key_fn : Tuple.t -> Value.t;
  mutable root : node;
  mutable count : int;
  mutable n_leaves : int;
  mutable n_index : int;
}

let file_name t kind = Printf.sprintf "btree:%s:%s" t.name kind

let create ~disk ?pool_capacity ~name ~fanout ~leaf_capacity ~key_of () =
  if fanout < 2 then invalid_arg "Btree.create: fanout must be >= 2";
  if leaf_capacity < 1 then invalid_arg "Btree.create: leaf_capacity must be >= 1";
  let pool = Buffer_pool.create ?capacity:pool_capacity disk in
  let t =
    {
      disk;
      pool;
      name;
      fanout;
      leaf_capacity;
      key_fn = key_of;
      root = Leaf { l_pid = Disk.alloc disk ~file:(Printf.sprintf "btree:%s:leaf" name); l_tuples = []; l_next = None };
      count = 0;
      n_leaves = 1;
      n_index = 0;
    }
  in
  t

let key_of t tuple = t.key_fn tuple
let pool t = t.pool
let tuple_count t = t.count
let leaf_pages t = t.n_leaves
let index_pages t = t.n_index

let height t =
  let rec depth = function
    | Leaf _ -> 0
    | Internal n -> 1 + depth (List.hd n.i_children)
  in
  depth t.root

let pair_of t tuple = (t.key_fn tuple, Tuple.tid tuple)

(* Index of the child to descend into: the number of separators <= target. *)
let child_index keys target =
  let rec loop i = function
    | [] -> i
    | k :: rest -> if compare_pair k target <= 0 then loop (i + 1) rest else i
  in
  loop 0 keys

let nth_child n i = List.nth n.i_children i

let insert_sorted cmp x list =
  let rec loop = function
    | [] -> [ x ]
    | y :: rest as all -> if cmp x y <= 0 then x :: all else y :: loop rest
  in
  loop list

let split_at n list =
  let rec loop i acc = function
    | rest when i = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> loop (i - 1) (x :: acc) rest
  in
  loop n [] list

let split_leaf t leaf =
  let n = List.length leaf.l_tuples in
  let left, right_tuples = split_at ((n + 1) / 2) leaf.l_tuples in
  let right =
    { l_pid = Disk.alloc t.disk ~file:(file_name t "leaf"); l_tuples = right_tuples; l_next = leaf.l_next }
  in
  leaf.l_tuples <- left;
  leaf.l_next <- Some right;
  t.n_leaves <- t.n_leaves + 1;
  Buffer_pool.write t.pool leaf.l_pid;
  Buffer_pool.write t.pool right.l_pid;
  let sep = pair_of t (List.hd right_tuples) in
  (sep, Leaf right)

let split_internal t node =
  let c = List.length node.i_children in
  let m = (c + 1) / 2 in
  let left_children, right_children = split_at m node.i_children in
  let left_keys, promoted_and_right = split_at (m - 1) node.i_keys in
  let promoted, right_keys =
    match promoted_and_right with
    | p :: rest -> (p, rest)
    | [] -> assert false
  in
  let right =
    { i_pid = Disk.alloc t.disk ~file:(file_name t "index"); i_keys = right_keys; i_children = right_children }
  in
  node.i_keys <- left_keys;
  node.i_children <- left_children;
  t.n_index <- t.n_index + 1;
  Buffer_pool.write t.pool node.i_pid;
  Buffer_pool.write t.pool right.i_pid;
  (promoted, Internal right)

let rec insert_into t node pair tuple =
  match node with
  | Leaf leaf ->
      Buffer_pool.read t.pool leaf.l_pid;
      leaf.l_tuples <-
        insert_sorted (fun a b -> compare_pair (pair_of t a) (pair_of t b)) tuple leaf.l_tuples;
      Buffer_pool.write t.pool leaf.l_pid;
      if List.length leaf.l_tuples > t.leaf_capacity then Some (split_leaf t leaf) else None
  | Internal n -> (
      Buffer_pool.read t.pool n.i_pid;
      let i = child_index n.i_keys pair in
      match insert_into t (nth_child n i) pair tuple with
      | None -> None
      | Some (sep, right_node) ->
          let keys_before, keys_after = split_at i n.i_keys in
          n.i_keys <- keys_before @ (sep :: keys_after);
          let children_before, children_after = split_at (i + 1) n.i_children in
          n.i_children <- children_before @ (right_node :: children_after);
          Buffer_pool.write t.pool n.i_pid;
          if List.length n.i_children > t.fanout then Some (split_internal t n) else None)

let insert t tuple =
  let pair = pair_of t tuple in
  (match insert_into t t.root pair tuple with
  | None -> ()
  | Some (sep, right_node) ->
      let root =
        {
          i_pid = Disk.alloc t.disk ~file:(file_name t "index");
          i_keys = [ sep ];
          i_children = [ t.root; right_node ];
        }
      in
      t.n_index <- t.n_index + 1;
      Buffer_pool.write t.pool root.i_pid;
      t.root <- Internal root);
  t.count <- t.count + 1

let rec leaf_for t node pair =
  match node with
  | Leaf leaf ->
      Buffer_pool.read t.pool leaf.l_pid;
      leaf
  | Internal n ->
      Buffer_pool.read t.pool n.i_pid;
      leaf_for t (nth_child n (child_index n.i_keys pair)) pair

let remove t ~key ~tid =
  let leaf = leaf_for t t.root (key, tid) in
  let found = ref false in
  leaf.l_tuples <-
    List.filter
      (fun tuple ->
        let matches = Tuple.tid tuple = tid && Value.equal (t.key_fn tuple) key in
        if matches then found := true;
        not matches)
      leaf.l_tuples;
  if !found then begin
    Buffer_pool.write t.pool leaf.l_pid;
    t.count <- t.count - 1
  end;
  !found

let update_in_place t ~key ~tid f =
  let leaf = leaf_for t t.root (key, tid) in
  let found = ref false in
  leaf.l_tuples <-
    List.map
      (fun tuple ->
        if Tuple.tid tuple = tid && Value.equal (t.key_fn tuple) key then begin
          found := true;
          let replacement = f tuple in
          if Tuple.tid replacement <> tid || not (Value.equal (t.key_fn replacement) key)
          then invalid_arg "Btree.update_in_place: replacement moved the entry";
          replacement
        end
        else tuple)
      leaf.l_tuples;
  if !found then Buffer_pool.write t.pool leaf.l_pid;
  !found

(* Walk the leaf chain from [start], calling [f] on tuples whose key lies in
   [lo, hi]; stops at the first tuple with key > hi. *)
let walk_range t start ~lo ~hi f =
  let rec walk leaf_opt =
    match leaf_opt with
    | None -> ()
    | Some leaf ->
        Buffer_pool.read t.pool leaf.l_pid;
        let stop = ref false in
        List.iter
          (fun tuple ->
            if not !stop then begin
              let k = t.key_fn tuple in
              if Value.compare k hi > 0 then stop := true
              else if Value.compare k lo >= 0 then f tuple
            end)
          leaf.l_tuples;
        if not !stop then walk leaf.l_next
  in
  walk (Some start)

let range t ~lo ~hi f =
  if Value.compare lo hi <= 0 then begin
    let start = leaf_for t t.root (lo, Int.min_int) in
    walk_range t start ~lo ~hi f
  end

let find t key =
  let acc = ref [] in
  range t ~lo:key ~hi:key (fun tuple -> acc := tuple :: !acc);
  List.rev !acc

let rec leftmost_leaf = function
  | Leaf leaf -> leaf
  | Internal n -> leftmost_leaf (List.hd n.i_children)

let iter_unmetered t f =
  let rec walk = function
    | None -> ()
    | Some leaf ->
        List.iter f leaf.l_tuples;
        walk leaf.l_next
  in
  walk (Some (leftmost_leaf t.root))

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Bounds, ordering within nodes, separator correctness. *)
  let rec check node ~lo ~hi =
    (* every pair p in subtree must satisfy lo <= p < hi (when bounds given) *)
    match node with
    | Leaf leaf ->
        if List.length leaf.l_tuples > t.leaf_capacity then
          fail "leaf over capacity: %d > %d" (List.length leaf.l_tuples) t.leaf_capacity;
        let rec sorted = function
          | a :: (b :: _ as rest) ->
              if compare_pair (pair_of t a) (pair_of t b) >= 0 then fail "leaf unsorted";
              sorted rest
          | _ -> ()
        in
        sorted leaf.l_tuples;
        List.iter
          (fun tuple ->
            let p = pair_of t tuple in
            (match lo with
            | Some l when compare_pair p l < 0 -> fail "entry below subtree bound"
            | _ -> ());
            match hi with
            | Some h when compare_pair p h >= 0 -> fail "entry above subtree bound"
            | _ -> ())
          leaf.l_tuples;
        List.length leaf.l_tuples
    | Internal n ->
        let nk = List.length n.i_keys and nc = List.length n.i_children in
        if nc <> nk + 1 then fail "internal arity mismatch";
        if nc > t.fanout then fail "internal over fanout";
        let rec sorted = function
          | a :: (b :: _ as rest) ->
              if compare_pair a b >= 0 then fail "separators unsorted";
              sorted rest
          | _ -> ()
        in
        sorted n.i_keys;
        let bounds =
          (* child i is bounded by (key[i-1], key[i]) *)
          List.mapi
            (fun i child ->
              let lo_i = if i = 0 then lo else Some (List.nth n.i_keys (i - 1)) in
              let hi_i = if i = nk then hi else Some (List.nth n.i_keys i) in
              check child ~lo:lo_i ~hi:hi_i)
            n.i_children
        in
        List.fold_left ( + ) 0 bounds
  in
  let total = check t.root ~lo:None ~hi:None in
  if total <> t.count then fail "tuple count mismatch: %d <> %d" total t.count;
  (* The leaf chain must visit the tuples in order. *)
  let previous = ref None in
  iter_unmetered t (fun tuple ->
      (match !previous with
      | Some p when compare_pair p (pair_of t tuple) >= 0 -> fail "leaf chain out of order"
      | _ -> ());
      previous := Some (pair_of t tuple))

exception Found of Tuple.t

let find_unmetered t pred =
  match
    iter_unmetered t (fun tuple -> if pred tuple then raise (Found tuple))
  with
  | () -> None
  | exception Found tuple -> Some tuple

let chunk size list =
  let rec loop acc current n = function
    | [] -> List.rev (if List.is_empty current then acc else List.rev current :: acc)
    | x :: rest ->
        if n = size then loop (List.rev current :: acc) [ x ] 1 rest
        else loop acc (x :: current) (n + 1) rest
  in
  loop [] [] 0 list

let bulk_load t tuples =
  if t.count > 0 then invalid_arg "Btree.bulk_load: tree is not empty";
  match tuples with
  | [] -> ()
  | _ ->
      let sorted =
        List.sort (fun a b -> compare_pair (pair_of t a) (pair_of t b)) tuples
      in
      let leaf_groups = chunk t.leaf_capacity sorted in
      let leaves =
        List.map
          (fun group ->
            { l_pid = Disk.alloc t.disk ~file:(file_name t "leaf"); l_tuples = group; l_next = None })
          leaf_groups
      in
      let rec link = function
        | a :: (b :: _ as rest) ->
            a.l_next <- Some b;
            link rest
        | _ -> ()
      in
      link leaves;
      List.iter (fun leaf -> Buffer_pool.write t.pool leaf.l_pid) leaves;
      t.n_leaves <- List.length leaves;
      (* The old empty root leaf is abandoned; free its page. *)
      (match t.root with
      | Leaf old when List.is_empty old.l_tuples ->
          Buffer_pool.discard t.pool old.l_pid;
          Disk.free t.disk old.l_pid;
          t.n_leaves <- t.n_leaves (* already replaced by the new count *)
      | _ -> ());
      (* Build packed internal levels; carry each node's minimum pair. *)
      let min_of_leaf leaf = pair_of t (List.hd leaf.l_tuples) in
      let rec build level =
        match level with
        | [ (node, _) ] -> node
        | _ ->
            let groups = chunk t.fanout level in
            let parents =
              List.map
                (fun group ->
                  let children = List.map fst group in
                  let keys = List.map snd (List.tl group) in
                  let node =
                    {
                      i_pid = Disk.alloc t.disk ~file:(file_name t "index");
                      i_keys = keys;
                      i_children = children;
                    }
                  in
                  t.n_index <- t.n_index + 1;
                  Buffer_pool.write t.pool node.i_pid;
                  (Internal node, snd (List.hd group)))
                groups
            in
            build parents
      in
      t.root <- build (List.map (fun leaf -> (Leaf leaf, min_of_leaf leaf)) leaves);
      t.count <- List.length sorted

let min_key_unmetered t =
  let rec first_nonempty = function
    | None -> None
    | Some leaf -> (
        match leaf.l_tuples with
        | tuple :: _ -> Some (t.key_fn tuple)
        | [] -> first_nonempty leaf.l_next)
  in
  first_nonempty (Some (leftmost_leaf t.root))

let max_key_unmetered t =
  let result = ref None in
  iter_unmetered t (fun tuple -> result := Some (t.key_fn tuple));
  !result
