open Vmat_storage

(* Entries are ordered by the pair (key, tid); internal separators are such
   pairs, equal to the smallest pair of their right subtree.  Descending with
   an exact pair therefore lands in the unique leaf that may contain it, and
   descending with (key, min_int) lands in the leftmost leaf that may contain
   any entry with that key.

   Leaves hold their rows in flat page buffers, in (key, tid) order by slot;
   the key is a column offset ([key_col]), so ordering and range bounds are
   evaluated straight off page cells without boxing.  Internal nodes are tiny
   (a handful of separators) and stay boxed. *)

type pair = Value.t * int

let compare_pair (k1, t1) (k2, t2) =
  match Value.compare k1 k2 with 0 -> Int.compare t1 t2 | c -> c

type leaf = {
  l_pid : Disk.page_id;
  l_rows : Flat.t;  (* sorted by (key, tid) *)
  mutable l_next : leaf option;
}

type internal = {
  i_pid : Disk.page_id;
  mutable i_keys : pair list;  (* n separators for n+1 children *)
  mutable i_children : node list;
}

and node = Leaf of leaf | Internal of internal

type t = {
  disk : Disk.t;
  pool : Buffer_pool.t;
  name : string;
  fanout : int;
  leaf_capacity : int;
  key_col : int;
  mutable root : node;
  mutable count : int;
  mutable n_leaves : int;
  mutable n_index : int;
}

let file_name t kind = Printf.sprintf "btree:%s:%s" t.name kind

let create ~disk ?pool_capacity ~name ~fanout ~leaf_capacity ~key_col () =
  if fanout < 2 then invalid_arg "Btree.create: fanout must be >= 2";
  if leaf_capacity < 1 then invalid_arg "Btree.create: leaf_capacity must be >= 1";
  if key_col < 0 then invalid_arg "Btree.create: key_col must be >= 0";
  let pool = Buffer_pool.create ?capacity:pool_capacity disk in
  let t =
    {
      disk;
      pool;
      name;
      fanout;
      leaf_capacity;
      key_col;
      root =
        Leaf
          {
            l_pid = Disk.alloc disk ~file:(Printf.sprintf "btree:%s:leaf" name);
            l_rows = Flat.create ();
            l_next = None;
          };
      count = 0;
      n_leaves = 1;
      n_index = 0;
    }
  in
  t

let key_col t = t.key_col
let key_of t tuple = Tuple.get tuple t.key_col
let pool t = t.pool
let tuple_count t = t.count
let leaf_pages t = t.n_leaves
let index_pages t = t.n_index

let height t =
  let rec depth = function
    | Leaf _ -> 0
    | Internal n -> 1 + depth (List.hd n.i_children)
  in
  depth t.root

let pair_of t tuple = (Tuple.get tuple t.key_col, Tuple.tid tuple)

(* [compare_pair] of the row at [slot] against (key, tid), off the cells. *)
let compare_slot_pair t rows slot key tid =
  match Flat.compare_cell_value rows slot t.key_col key with
  | 0 -> Int.compare (Flat.tid_at rows slot) tid
  | c -> c

let slot_pair t rows slot = (Flat.cell_value rows slot t.key_col, Flat.tid_at rows slot)

(* Index of the child to descend into: the number of separators <= target. *)
let child_index keys target =
  let rec loop i = function
    | [] -> i
    | k :: rest -> if compare_pair k target <= 0 then loop (i + 1) rest else i
  in
  loop 0 keys

let nth_child n i = List.nth n.i_children i

let split_at n list =
  let rec loop i acc = function
    | rest when i = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> loop (i - 1) (x :: acc) rest
  in
  loop n [] list

let split_leaf t leaf =
  let n = Flat.length leaf.l_rows in
  let keep = (n + 1) / 2 in
  let right =
    { l_pid = Disk.alloc t.disk ~file:(file_name t "leaf"); l_rows = Flat.create (); l_next = leaf.l_next }
  in
  for slot = keep to n - 1 do
    Flat.copy_row ~src:leaf.l_rows slot ~dst:right.l_rows
  done;
  Flat.truncate leaf.l_rows keep;
  leaf.l_next <- Some right;
  t.n_leaves <- t.n_leaves + 1;
  Buffer_pool.write t.pool leaf.l_pid;
  Buffer_pool.write t.pool right.l_pid;
  let sep = slot_pair t right.l_rows 0 in
  (sep, Leaf right)

let split_internal t node =
  let c = List.length node.i_children in
  let m = (c + 1) / 2 in
  let left_children, right_children = split_at m node.i_children in
  let left_keys, promoted_and_right = split_at (m - 1) node.i_keys in
  let promoted, right_keys =
    match promoted_and_right with
    | p :: rest -> (p, rest)
    | [] -> assert false
  in
  let right =
    { i_pid = Disk.alloc t.disk ~file:(file_name t "index"); i_keys = right_keys; i_children = right_children }
  in
  node.i_keys <- left_keys;
  node.i_children <- left_children;
  t.n_index <- t.n_index + 1;
  Buffer_pool.write t.pool node.i_pid;
  Buffer_pool.write t.pool right.i_pid;
  (promoted, Internal right)

let rec insert_into t node ((key, tid) as pair) tuple =
  match node with
  | Leaf leaf ->
      Buffer_pool.read t.pool leaf.l_pid;
      (* Position of the first row >= the new pair — the sorted-insert point
         ((key, tid) pairs are unique, so ties cannot arise). *)
      let n = Flat.length leaf.l_rows in
      let rec position i =
        if i >= n || compare_slot_pair t leaf.l_rows i key tid >= 0 then i
        else position (i + 1)
      in
      Flat.insert_at leaf.l_rows (position 0) tuple;
      Buffer_pool.write t.pool leaf.l_pid;
      if Flat.length leaf.l_rows > t.leaf_capacity then Some (split_leaf t leaf) else None
  | Internal n -> (
      Buffer_pool.read t.pool n.i_pid;
      let i = child_index n.i_keys pair in
      match insert_into t (nth_child n i) pair tuple with
      | None -> None
      | Some (sep, right_node) ->
          let keys_before, keys_after = split_at i n.i_keys in
          n.i_keys <- keys_before @ (sep :: keys_after);
          let children_before, children_after = split_at (i + 1) n.i_children in
          n.i_children <- children_before @ (right_node :: children_after);
          Buffer_pool.write t.pool n.i_pid;
          if List.length n.i_children > t.fanout then Some (split_internal t n) else None)

let insert t tuple =
  let pair = pair_of t tuple in
  (match insert_into t t.root pair tuple with
  | None -> ()
  | Some (sep, right_node) ->
      let root =
        {
          i_pid = Disk.alloc t.disk ~file:(file_name t "index");
          i_keys = [ sep ];
          i_children = [ t.root; right_node ];
        }
      in
      t.n_index <- t.n_index + 1;
      Buffer_pool.write t.pool root.i_pid;
      t.root <- Internal root);
  t.count <- t.count + 1

let rec leaf_for t node pair =
  match node with
  | Leaf leaf ->
      Buffer_pool.read t.pool leaf.l_pid;
      leaf
  | Internal n ->
      Buffer_pool.read t.pool n.i_pid;
      leaf_for t (nth_child n (child_index n.i_keys pair)) pair

let remove t ~key ~tid =
  let leaf = leaf_for t t.root (key, tid) in
  let found = ref false in
  (* Backwards keeps slot indices stable across removals. *)
  for slot = Flat.length leaf.l_rows - 1 downto 0 do
    if
      Flat.tid_at leaf.l_rows slot = tid
      && Flat.compare_cell_value leaf.l_rows slot t.key_col key = 0
    then begin
      found := true;
      t.count <- t.count - 1;
      Flat.remove_at leaf.l_rows slot
    end
  done;
  if !found then Buffer_pool.write t.pool leaf.l_pid;
  !found

let update_in_place t ~key ~tid f =
  let leaf = leaf_for t t.root (key, tid) in
  let n = Flat.length leaf.l_rows in
  let rec find slot =
    if slot >= n then false
    else if
      Flat.tid_at leaf.l_rows slot = tid
      && Flat.compare_cell_value leaf.l_rows slot t.key_col key = 0
    then begin
      let replacement = f (Flat.materialize leaf.l_rows slot) in
      if Tuple.tid replacement <> tid || not (Value.equal (key_of t replacement) key) then
        invalid_arg "Btree.update_in_place: replacement moved the entry";
      Flat.replace_at leaf.l_rows slot replacement;
      true
    end
    else find (slot + 1)
  in
  let found = find 0 in
  if found then Buffer_pool.write t.pool leaf.l_pid;
  found

(* Walk the leaf chain from [start], aiming [view] at rows whose key lies in
   [lo, hi]; stops at the first row with key > hi.  Slot order is (key, tid)
   order, so this visits rows exactly as the historical sorted-list walk
   did. *)
let walk_range_views t start ~lo ~hi view f =
  let rec walk leaf_opt =
    match leaf_opt with
    | None -> ()
    | Some leaf ->
        Buffer_pool.read t.pool leaf.l_pid;
        let n = Flat.length leaf.l_rows in
        let rec slots slot =
          if slot >= n then true
          else if Flat.compare_cell_value leaf.l_rows slot t.key_col hi > 0 then false
          else begin
            if Flat.compare_cell_value leaf.l_rows slot t.key_col lo >= 0 then begin
              Tuple_view.set view leaf.l_rows slot;
              f view
            end;
            slots (slot + 1)
          end
        in
        if slots 0 then walk leaf.l_next
  in
  walk (Some start)

let range_views t ~lo ~hi f =
  if Value.compare lo hi <= 0 then begin
    let start = leaf_for t t.root (lo, Int.min_int) in
    walk_range_views t start ~lo ~hi (Tuple_view.on (Flat.create ()) 0) f
  end

let range t ~lo ~hi f = range_views t ~lo ~hi (fun view -> f (Tuple_view.materialize view))

let find_views t key f = range_views t ~lo:key ~hi:key f

let find t key =
  let acc = ref [] in
  range t ~lo:key ~hi:key (fun tuple -> acc := tuple :: !acc);
  List.rev !acc

let rec leftmost_leaf = function
  | Leaf leaf -> leaf
  | Internal n -> leftmost_leaf (List.hd n.i_children)

let iter_views_unmetered t f =
  let view = Tuple_view.on (Flat.create ()) 0 in
  let rec walk = function
    | None -> ()
    | Some leaf ->
        for slot = 0 to Flat.length leaf.l_rows - 1 do
          Tuple_view.set view leaf.l_rows slot;
          f view
        done;
        walk leaf.l_next
  in
  walk (Some (leftmost_leaf t.root))

let iter_unmetered t f = iter_views_unmetered t (fun view -> f (Tuple_view.materialize view))

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Bounds, ordering within nodes, separator correctness. *)
  let rec check node ~lo ~hi =
    (* every pair p in subtree must satisfy lo <= p < hi (when bounds given) *)
    match node with
    | Leaf leaf ->
        let n = Flat.length leaf.l_rows in
        if n > t.leaf_capacity then fail "leaf over capacity: %d > %d" n t.leaf_capacity;
        for slot = 0 to n - 2 do
          if compare_pair (slot_pair t leaf.l_rows slot) (slot_pair t leaf.l_rows (slot + 1)) >= 0
          then fail "leaf unsorted"
        done;
        for slot = 0 to n - 1 do
          let p = slot_pair t leaf.l_rows slot in
          (match lo with
          | Some l when compare_pair p l < 0 -> fail "entry below subtree bound"
          | _ -> ());
          match hi with
          | Some h when compare_pair p h >= 0 -> fail "entry above subtree bound"
          | _ -> ()
        done;
        n
    | Internal n ->
        let nk = List.length n.i_keys and nc = List.length n.i_children in
        if nc <> nk + 1 then fail "internal arity mismatch";
        if nc > t.fanout then fail "internal over fanout";
        let rec sorted = function
          | a :: (b :: _ as rest) ->
              if compare_pair a b >= 0 then fail "separators unsorted";
              sorted rest
          | _ -> ()
        in
        sorted n.i_keys;
        let bounds =
          (* child i is bounded by (key[i-1], key[i]) *)
          List.mapi
            (fun i child ->
              let lo_i = if i = 0 then lo else Some (List.nth n.i_keys (i - 1)) in
              let hi_i = if i = nk then hi else Some (List.nth n.i_keys i) in
              check child ~lo:lo_i ~hi:hi_i)
            n.i_children
        in
        List.fold_left ( + ) 0 bounds
  in
  let total = check t.root ~lo:None ~hi:None in
  if total <> t.count then fail "tuple count mismatch: %d <> %d" total t.count;
  (* The leaf chain must visit the tuples in order. *)
  let previous = ref None in
  iter_unmetered t (fun tuple ->
      (match !previous with
      | Some p when compare_pair p (pair_of t tuple) >= 0 -> fail "leaf chain out of order"
      | _ -> ());
      previous := Some (pair_of t tuple))

exception Found of Tuple.t

let find_view_unmetered t pred =
  match
    iter_views_unmetered t (fun view ->
        if pred view then raise (Found (Tuple_view.materialize view)))
  with
  | () -> None
  | exception Found tuple -> Some tuple

let find_unmetered t pred =
  match
    iter_unmetered t (fun tuple -> if pred tuple then raise (Found tuple))
  with
  | () -> None
  | exception Found tuple -> Some tuple

let chunk size list =
  let rec loop acc current n = function
    | [] -> List.rev (if List.is_empty current then acc else List.rev current :: acc)
    | x :: rest ->
        if n = size then loop (List.rev current :: acc) [ x ] 1 rest
        else loop acc (x :: current) (n + 1) rest
  in
  loop [] [] 0 list

let bulk_load t tuples =
  if t.count > 0 then invalid_arg "Btree.bulk_load: tree is not empty";
  match tuples with
  | [] -> ()
  | _ ->
      let sorted =
        List.sort (fun a b -> compare_pair (pair_of t a) (pair_of t b)) tuples
      in
      let leaf_groups = chunk t.leaf_capacity sorted in
      let leaves =
        List.map
          (fun group ->
            let rows = Flat.create () in
            List.iter (fun tuple -> ignore (Flat.append rows tuple)) group;
            { l_pid = Disk.alloc t.disk ~file:(file_name t "leaf"); l_rows = rows; l_next = None })
          leaf_groups
      in
      let rec link = function
        | a :: (b :: _ as rest) ->
            a.l_next <- Some b;
            link rest
        | _ -> ()
      in
      link leaves;
      List.iter (fun leaf -> Buffer_pool.write t.pool leaf.l_pid) leaves;
      t.n_leaves <- List.length leaves;
      (* The old empty root leaf is abandoned; free its page. *)
      (match t.root with
      | Leaf old when Flat.length old.l_rows = 0 ->
          Buffer_pool.discard t.pool old.l_pid;
          Disk.free t.disk old.l_pid;
          t.n_leaves <- t.n_leaves (* already replaced by the new count *)
      | _ -> ());
      (* Build packed internal levels; carry each node's minimum pair. *)
      let min_of_leaf leaf = slot_pair t leaf.l_rows 0 in
      let rec build level =
        match level with
        | [ (node, _) ] -> node
        | _ ->
            let groups = chunk t.fanout level in
            let parents =
              List.map
                (fun group ->
                  let children = List.map fst group in
                  let keys = List.map snd (List.tl group) in
                  let node =
                    {
                      i_pid = Disk.alloc t.disk ~file:(file_name t "index");
                      i_keys = keys;
                      i_children = children;
                    }
                  in
                  t.n_index <- t.n_index + 1;
                  Buffer_pool.write t.pool node.i_pid;
                  (Internal node, snd (List.hd group)))
                groups
            in
            build parents
      in
      t.root <- build (List.map (fun leaf -> (Leaf leaf, min_of_leaf leaf)) leaves);
      t.count <- List.length sorted

let min_key_unmetered t =
  let rec first_nonempty = function
    | None -> None
    | Some leaf ->
        if Flat.length leaf.l_rows > 0 then Some (Flat.cell_value leaf.l_rows 0 t.key_col)
        else first_nonempty leaf.l_next
  in
  first_nonempty (Some (leftmost_leaf t.root))

let max_key_unmetered t =
  let result = ref None in
  let rec walk = function
    | None -> ()
    | Some leaf ->
        let n = Flat.length leaf.l_rows in
        if n > 0 then result := Some (Flat.cell_value leaf.l_rows (n - 1) t.key_col);
        walk leaf.l_next
  in
  walk (Some (leftmost_leaf t.root));
  !result
