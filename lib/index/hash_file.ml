open Vmat_storage

(* Rows live in flat page buffers; within a page, iteration is newest-first
   (reverse slot order — the historical cons-list order), so lookups, scans,
   and the metered page-touch sequence are unchanged by the representation. *)
type page = { pid : Disk.page_id; rows : Flat.t }

type t = {
  disk : Disk.t;
  pool : Buffer_pool.t;
  name : string;
  buckets : page list ref array;  (* chain: primary page first *)
  tuples_per_page : int;
  key_col : int;
  mutable count : int;
  mutable pages : int;
}

let create ~disk ?pool_capacity ~name ~buckets ~tuples_per_page ~key_col () =
  if buckets < 1 then invalid_arg "Hash_file.create: buckets must be >= 1";
  if tuples_per_page < 1 then invalid_arg "Hash_file.create: tuples_per_page must be >= 1";
  if key_col < 0 then invalid_arg "Hash_file.create: key_col must be >= 0";
  let t =
    {
      disk;
      pool = Buffer_pool.create ?capacity:pool_capacity disk;
      name;
      buckets = Array.init buckets (fun _ -> ref []);
      tuples_per_page;
      key_col;
      count = 0;
      pages = 0;
    }
  in
  (* Primary bucket pages exist up front (a static hash file), so the first
     insert into a bucket pays the page read the paper's update discipline
     counts. *)
  Array.iter
    (fun chain ->
      t.pages <- t.pages + 1;
      chain := [ { pid = Disk.alloc disk ~file:("hash:" ^ name); rows = Flat.create () } ])
    t.buckets;
  t

let key_col t = t.key_col
let key_of t tuple = Tuple.get tuple t.key_col
let pool t = t.pool
let tuple_count t = t.count
let page_count t = t.pages

let bucket_of t key = t.buckets.(Value.hash key mod Array.length t.buckets)

let new_page t =
  t.pages <- t.pages + 1;
  { pid = Disk.alloc t.disk ~file:("hash:" ^ t.name); rows = Flat.create () }

let insert t tuple =
  let chain = bucket_of t (Tuple.get tuple t.key_col) in
  (* Read pages along the chain until one with space is found. *)
  let rec place = function
    | [] ->
        let page = new_page t in
        chain := !chain @ [ page ];
        page
    | page :: rest ->
        Buffer_pool.read t.pool page.pid;
        if Flat.length page.rows < t.tuples_per_page then page else place rest
  in
  let page = place !chain in
  ignore (Flat.append page.rows tuple);
  Buffer_pool.write t.pool page.pid;
  t.count <- t.count + 1

(* Newest-first within each page: slots run oldest-first, walk in reverse. *)
let iter_page_views page view f =
  for slot = Flat.length page.rows - 1 downto 0 do
    Tuple_view.set view page.rows slot;
    f view
  done

let lookup_views t key f =
  let chain = bucket_of t key in
  let view = Tuple_view.on (Flat.create ()) 0 in
  List.iter
    (fun page ->
      Buffer_pool.read t.pool page.pid;
      iter_page_views page view (fun v ->
          if Tuple_view.compare_col v t.key_col key = 0 then f v))
    !chain

let lookup t key =
  let out = ref [] in
  lookup_views t key (fun v -> out := Tuple_view.materialize v :: !out);
  List.rev !out

let remove t ~key ~tid =
  let chain = bucket_of t key in
  let rec go = function
    | [] -> false
    | page :: rest ->
        Buffer_pool.read t.pool page.pid;
        let found = ref false in
        (* Remove every matching slot (walking backwards keeps indices
           stable), as the historical List.filter did. *)
        for slot = Flat.length page.rows - 1 downto 0 do
          if
            Flat.tid_at page.rows slot = tid
            && Flat.compare_cell_value page.rows slot t.key_col key = 0
          then begin
            found := true;
            t.count <- t.count - 1;
            Flat.remove_at page.rows slot
          end
        done;
        if !found then begin
          Buffer_pool.write t.pool page.pid;
          true
        end
        else go rest
  in
  go !chain

let iter_pages t f =
  Array.iter (fun chain -> List.iter f !chain) t.buckets

let scan_views t f =
  let view = Tuple_view.on (Flat.create ()) 0 in
  iter_pages t (fun page ->
      Buffer_pool.read t.pool page.pid;
      iter_page_views page view f)

let scan t f = scan_views t (fun view -> f (Tuple_view.materialize view))

let iter_views_unmetered t f =
  let view = Tuple_view.on (Flat.create ()) 0 in
  iter_pages t (fun page -> iter_page_views page view f)

let iter_unmetered t f = iter_views_unmetered t (fun view -> f (Tuple_view.materialize view))

let clear t =
  (* Overflow pages are freed; primary bucket pages are kept (emptied). *)
  Array.iter
    (fun chain ->
      match !chain with
      | [] -> ()
      | primary :: overflow ->
          List.iter
            (fun page ->
              Buffer_pool.discard t.pool page.pid;
              Disk.free t.disk page.pid;
              t.pages <- t.pages - 1)
            overflow;
          Flat.clear primary.rows;
          chain := [ primary ])
    t.buckets;
  t.count <- 0
