(** Clustered static hash file: a fixed number of primary buckets, each a
    chain of pages holding up to [tuples_per_page] tuples.  Used for the join
    column of [R2] and for the combined [AD] differential file (paper §2.2.2,
    "clustered hashing access method on the key"). *)

open Vmat_storage

type t

val create :
  disk:Disk.t ->
  ?pool_capacity:int ->
  name:string ->
  buckets:int ->
  tuples_per_page:int ->
  key_col:int ->
  unit ->
  t
(** The hashed key is the tuple's [key_col] field — a column offset, so the
    flat path evaluates keys straight off page cells.
    @raise Invalid_argument if [buckets < 1], [tuples_per_page < 1] or
    [key_col < 0]. *)

val key_col : t -> int
val key_of : t -> Tuple.t -> Value.t
val pool : t -> Buffer_pool.t
val tuple_count : t -> int

val page_count : t -> int
(** Currently allocated pages.  Primary bucket pages exist from creation (a
    static hash file), so an empty file occupies [buckets] pages and every
    insert pays at least one page read, as in the paper's update
    discipline. *)

val insert : t -> Tuple.t -> unit
(** Insert into the first page of the key's chain with space (allocating an
    overflow page if the chain is full).  Charges the chain reads up to the
    target page and its write. *)

val lookup : t -> Value.t -> Tuple.t list
(** All tuples with the given key, charging one read per chain page. *)

val lookup_views : t -> Value.t -> (Tuple_view.t -> unit) -> unit
(** {!lookup} without boxing: the callback receives a reused cursor aimed at
    each matching row (valid only during the callback).  Identical charges
    and row order to {!lookup}. *)

val remove : t -> key:Value.t -> tid:int -> bool
(** Remove the tuple with this key and tid; charges chain reads and the
    write of the modified page. *)

val scan : t -> (Tuple.t -> unit) -> unit
(** Read every page once, applying [f] to each tuple. *)

val scan_views : t -> (Tuple_view.t -> unit) -> unit
(** {!scan} over reused cursors (no boxing). *)

val iter_unmetered : t -> (Tuple.t -> unit) -> unit

val iter_views_unmetered : t -> (Tuple_view.t -> unit) -> unit

val clear : t -> unit
(** Drop all tuples, freeing overflow pages and emptying primary pages (no
    charge: used when the differential file is reset after a refresh has
    already paid for reading it). *)
