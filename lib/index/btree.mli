(** Clustered B+-tree: leaves are the data pages (up to [leaf_capacity]
    tuples, the paper's [T = B/S]); internal nodes hold up to [fanout]
    separators (the paper's [B/n]).  Entries are ordered by (key, tid), so
    duplicate keys are supported and every entry is addressable.  Page I/O is
    charged through a per-tree buffer pool; deletion is lazy (no merging),
    matching the paper's neglect of structural maintenance.

    Leaf rows live in flat page buffers ({!Vmat_storage.Flat}); the key is a
    column offset, so ordering and range bounds are evaluated straight off
    page cells without boxing.  The [_views] entry points hand out a reused
    {!Vmat_storage.Tuple_view.t} cursor instead of materializing. *)

open Vmat_storage

type t

val create :
  disk:Disk.t ->
  ?pool_capacity:int ->
  name:string ->
  fanout:int ->
  leaf_capacity:int ->
  key_col:int ->
  unit ->
  t
(** @raise Invalid_argument if [fanout < 2], [leaf_capacity < 1] or
    [key_col < 0]. *)

val key_col : t -> int
val key_of : t -> Tuple.t -> Value.t
val pool : t -> Buffer_pool.t
val tuple_count : t -> int
val leaf_pages : t -> int
val index_pages : t -> int

val height : t -> int
(** Number of internal (index) levels above the data pages: 0 while the tree
    is a single leaf.  Comparable to the paper's [H_vi]. *)

val insert : t -> Tuple.t -> unit
(** Insert (duplicates by value are allowed; (key, tid) pairs must be
    unique).  Charges the descent reads and leaf/internal writes, including
    splits. *)

val remove : t -> key:Value.t -> tid:int -> bool
(** Remove the entry with exactly this key and tid; [false] if absent. *)

val update_in_place : t -> key:Value.t -> tid:int -> (Tuple.t -> Tuple.t) -> bool
(** Rewrite the entry's tuple without moving it.  The replacement must
    preserve the key and the tid.
    @raise Invalid_argument if the replacement changes either. *)

val find : t -> Value.t -> Tuple.t list
(** All tuples with the given key, in tid order.  Charges descent and data
    page reads. *)

val find_views : t -> Value.t -> (Tuple_view.t -> unit) -> unit
(** {!find} without boxing: the callback receives a reused cursor aimed at
    each matching row in (key, tid) order, valid only during the callback.
    Identical descent and page-read charges to {!find}. *)

val range : t -> lo:Value.t -> hi:Value.t -> (Tuple.t -> unit) -> unit
(** Iterate tuples with [lo <= key <= hi] in key order, charging the descent
    and one read per data page touched. *)

val range_views : t -> lo:Value.t -> hi:Value.t -> (Tuple_view.t -> unit) -> unit
(** {!range} without boxing (reused cursor, same charges and order). *)

val iter_unmetered : t -> (Tuple.t -> unit) -> unit
(** In-order iteration without any charge (tests and verification). *)

val iter_views_unmetered : t -> (Tuple_view.t -> unit) -> unit

val check_invariants : t -> unit
(** Assert ordering, separator and capacity invariants (tests).
    @raise Failure on violation. *)

val find_unmetered : t -> (Tuple.t -> bool) -> Tuple.t option
(** First tuple (in key order) satisfying the predicate, without charging
    (models an auxiliary access path whose cost the analysis does not
    attribute; see Hr.lookup). *)

val find_view_unmetered : t -> (Tuple_view.t -> bool) -> Tuple.t option
(** {!find_unmetered} with the predicate evaluated on a cursor; only the
    match (if any) is materialized. *)

val bulk_load : t -> Tuple.t list -> unit
(** Replace an empty tree's contents with the given tuples, packing every
    data page to [leaf_capacity] and every index node to [fanout] (the
    paper's "all pages are packed full" assumption).  Charges one write per
    page built.
    @raise Invalid_argument if the tree is not empty. *)

val min_key_unmetered : t -> Value.t option
val max_key_unmetered : t -> Value.t option
(** Smallest / largest key currently stored, uncharged (catalog
    statistics). *)
