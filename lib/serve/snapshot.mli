(** Immutable point-in-time view images served to reader domains
    (DESIGN §10).

    A snapshot is the full logical contents of the materialized view at one
    commit epoch, canonicalized into an array sorted by (clustering value,
    value key) with duplicate counts merged per distinct value key — the
    same canonical row representation the WAL checkpoints persist
    ({!Vmat_wal.Checkpoint.image}[.ck_view]).  Snapshots are deeply
    immutable, so any number of domains may {!query} one concurrently
    without synchronization. *)

open Vmat_storage

type t

val of_rows : cluster_col:int -> epoch:int -> txns:int -> (Tuple.t * int) list -> t
(** Canonicalize a strategy answer (rows + duplicate counts, any order)
    into a snapshot.  [cluster_col] is the output position of the view's
    clustering column ({!Vmat_view.View_def.sp}[.sp_cluster_out]); [txns]
    is the number of committed transactions the image covers. *)

val of_image : cluster_col:int -> epoch:int -> Vmat_wal.Checkpoint.image -> t
(** Rehydrate a snapshot from a WAL checkpoint image ([txns] =
    [ck_op_index]) — serving can come straight off the durability
    subsystem's recovery path. *)

val epoch : t -> int
val txns : t -> int
val cluster_col : t -> int
val size : t -> int
(** Distinct value keys in the image. *)

val rows : t -> (Tuple.t * int) list
(** Canonical order: ascending (clustering value, value key). *)

val query : t -> lo:Value.t -> hi:Value.t -> (Tuple.t * int) list
(** All rows whose clustering value lies in [[lo, hi]] (inclusive), in
    canonical order, by binary search — the reader-side equivalent of a
    clustered range scan, costing no modeled I/O because it never touches a
    simulated disk. *)

val digest_rows : (Tuple.t * int) list -> string
(** Order-sensitive digest of rows as (value key, count) pairs.  Tuple ids
    are deliberately excluded: replays mint fresh tids, the value-keyed bag
    is the stable identity. *)

val digest : t -> string
(** {!digest_rows} over the full canonical contents. *)
