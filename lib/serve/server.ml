open Vmat_storage
module Rng = Vmat_util.Rng
module Stats = Vmat_util.Stats
module Wallclock = Vmat_obs.Wallclock
module Recorder = Vmat_obs.Recorder
module Strategy = Vmat_view.Strategy
module Strategy_sp = Vmat_view.Strategy_sp
module View_def = Vmat_view.View_def
module Params = Vmat_cost.Params
module Experiment = Vmat_workload.Experiment
module Stream = Vmat_workload.Stream
module Dataset = Vmat_workload.Dataset
module Parallel = Vmat_workload.Parallel
module Mvcc = Vmat_wal.Mvcc
module Wal = Vmat_wal.Wal
module Durable = Vmat_wal.Durable
module Device = Vmat_wal.Device

type durability = No_wal | Wal_group_commit of Wal.config

type config = {
  readers : int;
  queries_per_reader : int;
  publish_every : int;
  durability : durability;
  record_observations : bool;
}

let default_config =
  {
    readers = 2;
    queries_per_reader = 200;
    publish_every = 8;
    durability = Wal_group_commit (Wal.config ~group_commit:8 ());
    record_observations = false;
  }

type latency = {
  l_count : int;
  l_mean_us : float;
  l_p50_us : float;
  l_p95_us : float;
  l_p99_us : float;
  l_max_us : float;
}

type observation = {
  ob_reader : int;
  ob_seq : int;
  ob_epoch : int;
  ob_lo : Value.t;
  ob_hi : Value.t;
  ob_digest : string;
}

type report = {
  r_strategy : string;
  r_readers : int;
  r_txns : int;
  r_queries : int;
  r_epochs : int;
  r_reclaimed : int;
  r_live : int;
  r_max_live : int;
  r_wall_s : float;
  r_tps : float;
  r_qps : float;
  r_txn_latency : latency;
  r_query_latency : latency;
  r_category_costs : (Cost_meter.category * float) list;
  r_modeled_ms : float;
  r_final_digest : string;
  r_sanitize_checks : int;
  r_sanitize_violations : int;
  r_observations : observation list;
}

(* ------------------------------------------------------------------ *)
(* The engine: one strategy over a Model-1 setup, txn-only stream      *)
(* ------------------------------------------------------------------ *)

type engine = {
  en_env : Strategy_sp.env;
  en_strategy : Strategy.t;
  en_cluster_col : int;
  en_txns : Strategy.change list list;
}

(* The writer replays a transaction-only stream: in the serving split,
   queries are answered by reader domains from published snapshots, so the
   generated stream carries the parameter set's update transactions and the
   query mix is driven by [queries_per_reader] instead of [q]. *)
let build_engine ?sanitize ~seed ~durability (p : Params.t) which =
  let p = { p with Params.q_queries = 0. } in
  let setup = Experiment.model1_setup ~seed p in
  let env = Experiment.model1_env ?sanitize p setup in
  let strategy = Experiment.model1_strategy_of env which in
  let strategy =
    match durability with
    | No_wal -> strategy
    | Wal_group_commit config ->
        Durable.strategy
          (Durable.wrap ~config ~ctx:env.Strategy_sp.ctx ~dev:(Device.memory ())
             ~initial:setup.Experiment.ms_dataset.Dataset.m1_tuples strategy)
  in
  let txns =
    List.filter_map
      (function Stream.Txn cs -> Some cs | Stream.Query _ -> None)
      setup.Experiment.ms_ops
  in
  {
    en_env = env;
    en_strategy = strategy;
    en_cluster_col = env.Strategy_sp.view.View_def.sp_cluster_out;
    en_txns = txns;
  }

let full_range =
  { Strategy.q_lo = Strategy.min_sentinel; q_hi = Strategy.max_sentinel }

(* The epoch-publication primitive: materialize the strategy's current
   answer for the full clustering range through its ordinary query path, so
   every snapshot pays the strategy's honest modeled refresh-plus-scan cost
   (deferred strategies refresh here, exactly as they would for a client
   query). *)
let snapshot_now engine ~epoch ~txns =
  let rows = engine.en_strategy.Strategy.answer_query full_range in
  Snapshot.of_rows ~cluster_col:engine.en_cluster_col ~epoch ~txns rows

(* The epoch protocol, shared by the live writer and the serial replay used
   to verify it: epochs advance only at transaction boundaries, every
   [publish_every] transactions plus once for a partial tail, so a published
   image can never contain half a transaction.  [publish] runs at each
   boundary with the epoch number and transactions covered; [on_txn] wraps
   each transaction application (timing, sanitizing). *)
let apply_txns engine ~publish_every ~publish ~on_txn =
  let txns_done = ref 0 and epochs = ref 1 and since = ref 0 in
  List.iter
    (fun changes ->
      on_txn (fun () -> engine.en_strategy.Strategy.handle_transaction changes);
      incr txns_done;
      incr since;
      if !since >= publish_every then begin
        publish ~epoch:!epochs ~txns:!txns_done;
        incr epochs;
        since := 0
      end)
    engine.en_txns;
  if !since > 0 then begin
    publish ~epoch:!epochs ~txns:!txns_done;
    incr epochs
  end;
  (!txns_done, !epochs)

(* ------------------------------------------------------------------ *)
(* Serial replay (the verification oracle)                             *)
(* ------------------------------------------------------------------ *)

let replay_epochs ?(config = default_config) ?sanitize ?(seed = 42) ~params ~strategy ()
    =
  let engine = build_engine ?sanitize ~seed ~durability:config.durability params strategy in
  let snaps = ref [ snapshot_now engine ~epoch:0 ~txns:0 ] in
  let _ =
    apply_txns engine ~publish_every:config.publish_every
      ~publish:(fun ~epoch ~txns -> snaps := snapshot_now engine ~epoch ~txns :: !snaps)
      ~on_txn:(fun f -> f ())
  in
  Array.of_list (List.rev !snaps)

(* ------------------------------------------------------------------ *)
(* The live server                                                     *)
(* ------------------------------------------------------------------ *)

let latency_of samples =
  match samples with
  | [] ->
      { l_count = 0; l_mean_us = 0.; l_p50_us = 0.; l_p95_us = 0.; l_p99_us = 0.; l_max_us = 0. }
  | _ ->
      {
        l_count = List.length samples;
        l_mean_us = Stats.mean samples;
        l_p50_us = Stats.quantile 0.5 samples;
        l_p95_us = Stats.quantile 0.95 samples;
        l_p99_us = Stats.quantile 0.99 samples;
        l_max_us = Stats.maximum samples;
      }

let run ?(config = default_config) ?recorder ?sanitize ?(seed = 42) ~params ~strategy ()
    =
  if config.readers < 1 then invalid_arg "Server.run: readers must be >= 1";
  if config.publish_every < 1 then invalid_arg "Server.run: publish_every must be >= 1";
  if config.queries_per_reader < 0 then
    invalid_arg "Server.run: negative queries_per_reader";
  let engine = build_engine ?sanitize ~seed ~durability:config.durability params strategy in
  let ctx = engine.en_env.Strategy_sp.ctx in
  (match recorder with Some r -> Ctx.set_recorder ctx r | None -> ());
  let meter = Ctx.meter ctx and san = Ctx.sanitizer ctx in
  let store : Snapshot.t Mvcc.t = Mvcc.create () in
  (* Epoch 0 — the initial image — goes out on this domain before any other
     domain exists, so a reader's very first pin always finds a snapshot. *)
  ignore (Mvcc.publish store (snapshot_now engine ~epoch:0 ~txns:0));
  let width = params.Params.f *. params.Params.fv in
  let lo_max = params.Params.f -. width in
  let reader_seeds = Parallel.split_seeds ~root:seed config.readers in
  let sw_all = Wallclock.start () in
  let writer =
    Domain.spawn (fun () ->
        (* Explicit ctx handoff: this domain owns the engine from here on
           (the main domain only joins). *)
        Ctx.adopt ctx;
        let lats = ref [] in
        let sw_writer = Wallclock.start () in
        let txns, epochs =
          apply_txns engine ~publish_every:config.publish_every
            ~publish:(fun ~epoch ~txns ->
              let v = Mvcc.publish store (snapshot_now engine ~epoch ~txns) in
              assert (v = epoch))
            ~on_txn:(fun f ->
              let sw = Wallclock.start () in
              f ();
              lats := Wallclock.elapsed_us sw :: !lats;
              if Sanitize.enabled san then begin
                Sanitize.check san ~rule:"ctx-ownership"
                  (fun () -> Ctx.owned_by_current ctx)
                  ~detail:(fun () ->
                    Printf.sprintf "serving writer lost ctx ownership (owner %d)"
                      (Ctx.owner ctx));
                Sanitize.check_meter san meter
              end)
        in
        (txns, epochs, Wallclock.elapsed_s sw_writer, List.rev !lats))
  in
  let reader idx rseed () =
    (* Readers own no ctx at all: a private RNG drives the query mix, and
       every read touches only immutable pinned snapshots. *)
    let rng = Rng.create rseed in
    let lats = ref [] and obs = ref [] in
    for s = 0 to config.queries_per_reader - 1 do
      let q = Stream.range_query_of ~lo_max ~width rng in
      let sw = Wallclock.start () in
      let v, snap = Mvcc.pin store in
      let result = Snapshot.query snap ~lo:q.Strategy.q_lo ~hi:q.Strategy.q_hi in
      Mvcc.unpin store v;
      lats := Wallclock.elapsed_us sw :: !lats;
      if config.record_observations then
        obs :=
          {
            ob_reader = idx;
            ob_seq = s;
            ob_epoch = v;
            ob_lo = q.Strategy.q_lo;
            ob_hi = q.Strategy.q_hi;
            ob_digest = Snapshot.digest_rows result;
          }
          :: !obs
    done;
    (List.rev !lats, List.rev !obs)
  in
  let readers = List.mapi (fun i s -> Domain.spawn (reader i s)) reader_seeds in
  let reader_results = List.map Domain.join readers in
  let txns, epochs, writer_s, txn_lats = Domain.join writer in
  let wall_s = Wallclock.elapsed_s sw_all in
  let query_lats = List.concat_map fst reader_results in
  let observations = List.concat_map snd reader_results in
  let _, final = Mvcc.pin store in
  Mvcc.unpin store (Snapshot.epoch final);
  let st = Mvcc.stats store in
  (* Wall-clock latency histograms are merged into the recorder here, on
     the coordinating domain after both sides joined — the metric registry
     is not thread-safe and reader domains must never touch it. *)
  (match recorder with
  | Some r when Recorder.enabled r ->
      let name = engine.en_strategy.Strategy.name in
      List.iter
        (fun l ->
          Recorder.observe r ~help:"Wall-clock latency of one serving operation (us)."
            ~labels:[ ("op", "query"); ("strategy", name) ]
            ~bounds:(Vmat_obs.Metrics.log_bounds ~start:0.25 ~growth:2. ~count:24 ())
            "vmat_serve_latency_us" l)
        query_lats;
      List.iter
        (fun l ->
          Recorder.observe r ~help:"Wall-clock latency of one serving operation (us)."
            ~labels:[ ("op", "txn"); ("strategy", name) ]
            ~bounds:(Vmat_obs.Metrics.log_bounds ~start:0.25 ~growth:2. ~count:24 ())
            "vmat_serve_latency_us" l)
        txn_lats;
      Recorder.set_gauge r ~help:"Snapshots published during the serving run."
        ~labels:[ ("strategy", name) ]
        "vmat_serve_epochs" (float_of_int epochs)
  | _ -> ());
  let queries = config.readers * config.queries_per_reader in
  {
    r_strategy = engine.en_strategy.Strategy.name;
    r_readers = config.readers;
    r_txns = txns;
    r_queries = queries;
    r_epochs = epochs;
    r_reclaimed = st.Mvcc.st_reclaimed;
    r_live = st.Mvcc.st_live;
    r_max_live = st.Mvcc.st_max_live;
    r_wall_s = wall_s;
    r_tps = float_of_int txns /. Float.max 1e-9 writer_s;
    r_qps = float_of_int queries /. Float.max 1e-9 wall_s;
    r_txn_latency = latency_of txn_lats;
    r_query_latency = latency_of query_lats;
    r_category_costs =
      List.map (fun cat -> (cat, Cost_meter.cost meter cat)) Cost_meter.all_categories;
    r_modeled_ms = Cost_meter.total_cost ~excluding:[ Cost_meter.Base ] meter;
    r_final_digest = Snapshot.digest final;
    r_sanitize_checks = Sanitize.checks_run san;
    r_sanitize_violations = Sanitize.violations san;
    r_observations = observations;
  }
