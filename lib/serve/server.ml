open Vmat_storage
module Rng = Vmat_util.Rng
module Stats = Vmat_util.Stats
module Wallclock = Vmat_obs.Wallclock
module Recorder = Vmat_obs.Recorder
module Metrics = Vmat_obs.Metrics
module Flight = Vmat_obs.Flight
module Sketch = Vmat_obs.Sketch
module Dash = Vmat_obs.Dash
module Strategy = Vmat_view.Strategy
module Strategy_sp = Vmat_view.Strategy_sp
module View_def = Vmat_view.View_def
module Params = Vmat_cost.Params
module Experiment = Vmat_workload.Experiment
module Stream = Vmat_workload.Stream
module Dataset = Vmat_workload.Dataset
module Parallel = Vmat_workload.Parallel
module Mvcc = Vmat_wal.Mvcc
module Wal = Vmat_wal.Wal
module Durable = Vmat_wal.Durable
module Device = Vmat_wal.Device

type durability = No_wal | Wal_group_commit of Wal.config

type config = {
  readers : int;
  queries_per_reader : int;
  publish_every : int;
  durability : durability;
  record_observations : bool;
  trace_sample : int;
  sketch_capacity : int;
  flight_capacity : int;
  dash_every : int;
}

let default_config =
  {
    readers = 2;
    queries_per_reader = 200;
    publish_every = 8;
    durability = Wal_group_commit (Wal.config ~group_commit:8 ());
    record_observations = false;
    trace_sample = 0;
    sketch_capacity = 0;
    flight_capacity = 0;
    dash_every = 0;
  }

type latency = {
  l_count : int;
  l_mean_us : float;
  l_p50_us : float;
  l_p95_us : float;
  l_p99_us : float;
  l_max_us : float;
}

type observation = {
  ob_reader : int;
  ob_seq : int;
  ob_epoch : int;
  ob_lo : Value.t;
  ob_hi : Value.t;
  ob_digest : string;
}

type report = {
  r_strategy : string;
  r_readers : int;
  r_txns : int;
  r_queries : int;
  r_epochs : int;
  r_reclaimed : int;
  r_live : int;
  r_max_live : int;
  r_wall_s : float;
  r_tps : float;
  r_qps : float;
  r_txn_latency : latency;
  r_query_latency : latency;
  r_category_costs : (Cost_meter.category * float) list;
  r_modeled_ms : float;
  r_final_digest : string;
  r_sanitize_checks : int;
  r_sanitize_violations : int;
  r_observations : observation list;
  r_flight : Flight.t list;
  r_hot_keys : Sketch.heavy list;
  r_key_total : int;
  r_key_distinct : float;
  r_key_skew : float;
  r_key_error_bound : float;
  r_writer_alloc_bytes : float;
  r_writer_alloc_per_txn : float;
  r_reader_alloc_bytes : float;
  r_reader_alloc_per_query : float;
}

(* ------------------------------------------------------------------ *)
(* The engine: one strategy over a Model-1 setup, txn-only stream      *)
(* ------------------------------------------------------------------ *)

type engine = {
  en_env : Strategy_sp.env;
  en_strategy : Strategy.t;
  en_cluster_col : int;
  en_cluster_base : int;
  en_durable : Durable.t option;
  en_txns : Strategy.change list list;
}

(* The writer replays a transaction-only stream: in the serving split,
   queries are answered by reader domains from published snapshots, so the
   generated stream carries the parameter set's update transactions and the
   query mix is driven by [queries_per_reader] instead of [q]. *)
let build_engine ?sanitize ~seed ~durability (p : Params.t) which =
  let p = { p with Params.q_queries = 0. } in
  let setup = Experiment.model1_setup ~seed p in
  let env = Experiment.model1_env ?sanitize p setup in
  let strategy = Experiment.model1_strategy_of env which in
  let strategy, durable =
    match durability with
    | No_wal -> (strategy, None)
    | Wal_group_commit config ->
        let d =
          Durable.wrap ~config ~ctx:env.Strategy_sp.ctx ~dev:(Device.memory ())
            ~initial:setup.Experiment.ms_dataset.Dataset.m1_tuples strategy
        in
        (Durable.strategy d, Some d)
  in
  let txns =
    List.filter_map
      (function Stream.Txn cs -> Some cs | Stream.Query _ -> None)
      setup.Experiment.ms_ops
  in
  let view = env.Strategy_sp.view in
  {
    en_env = env;
    en_strategy = strategy;
    en_cluster_col = view.View_def.sp_cluster_out;
    en_cluster_base = view.View_def.sp_positions.(view.View_def.sp_cluster_out);
    en_durable = durable;
    en_txns = txns;
  }

let full_range =
  { Strategy.q_lo = Strategy.min_sentinel; q_hi = Strategy.max_sentinel }

(* The epoch-publication primitive: materialize the strategy's current
   answer for the full clustering range through its ordinary query path, so
   every snapshot pays the strategy's honest modeled refresh-plus-scan cost
   (deferred strategies refresh here, exactly as they would for a client
   query). *)
let snapshot_now engine ~epoch ~txns =
  let rows = engine.en_strategy.Strategy.answer_query full_range in
  Snapshot.of_rows ~cluster_col:engine.en_cluster_col ~epoch ~txns rows

(* The epoch protocol, shared by the live writer and the serial replay used
   to verify it: epochs advance only at transaction boundaries, every
   [publish_every] transactions plus once for a partial tail, so a published
   image can never contain half a transaction.  [publish] runs at each
   boundary with the epoch number and transactions covered; [on_txn] wraps
   each transaction application (timing, sanitizing, flight events) and
   receives the change list for key sketching. *)
let apply_txns engine ~publish_every ~publish ~on_txn =
  let txns_done = ref 0 and epochs = ref 1 and since = ref 0 in
  List.iter
    (fun changes ->
      on_txn changes (fun () ->
          engine.en_strategy.Strategy.handle_transaction changes);
      incr txns_done;
      incr since;
      if !since >= publish_every then begin
        publish ~epoch:!epochs ~txns:!txns_done;
        incr epochs;
        since := 0
      end)
    engine.en_txns;
  if !since > 0 then begin
    publish ~epoch:!epochs ~txns:!txns_done;
    incr epochs
  end;
  (!txns_done, !epochs)

(* ------------------------------------------------------------------ *)
(* Serial replay (the verification oracle)                             *)
(* ------------------------------------------------------------------ *)

let replay_epochs ?(config = default_config) ?sanitize ?(seed = 42) ~params ~strategy ()
    =
  let engine = build_engine ?sanitize ~seed ~durability:config.durability params strategy in
  let snaps = ref [ snapshot_now engine ~epoch:0 ~txns:0 ] in
  let _ =
    apply_txns engine ~publish_every:config.publish_every
      ~publish:(fun ~epoch ~txns -> snaps := snapshot_now engine ~epoch ~txns :: !snaps)
      ~on_txn:(fun _ f -> f ())
  in
  Array.of_list (List.rev !snaps)

(* ------------------------------------------------------------------ *)
(* The live server                                                     *)
(* ------------------------------------------------------------------ *)

let latency_of samples =
  match samples with
  | [] ->
      { l_count = 0; l_mean_us = 0.; l_p50_us = 0.; l_p95_us = 0.; l_p99_us = 0.; l_max_us = 0. }
  | _ ->
      {
        l_count = List.length samples;
        l_mean_us = Stats.mean samples;
        l_p50_us = Stats.quantile 0.5 samples;
        l_p95_us = Stats.quantile 0.95 samples;
        l_p99_us = Stats.quantile 0.99 samples;
        l_max_us = Stats.maximum samples;
      }

(* The sketch key space: cluster values quantized into 64 equal buckets of
   the pval domain [0, 1).  The same quantizer serves writer (updated keys)
   and readers (queried keys), so the merged sketch speaks one language. *)
let bucket_cells = 64

(* The 64 bucket labels, rendered once at module init: the per-observation
   path quantizes to an index and reuses the interned string, so sketching a
   key allocates nothing. *)
let bucket_labels =
  Array.init bucket_cells (fun i ->
      Sketch.bucket_label ~cells:bucket_cells ~lo:0. ~hi:1. i)

let key_of_value = function
  | Value.Float x ->
      bucket_labels.(Sketch.bucket_index ~cells:bucket_cells ~lo:0. ~hi:1. x)
  | v -> Value.to_string v

(* What each domain hands back when it joins: results plus its private
   flight ring and sketch (if enabled) — the only cross-domain channel. *)
type writer_out = {
  wo_txns : int;
  wo_epochs : int;
  wo_wall_s : float;
  wo_lats : float list;
  wo_ring : Flight.t option;
  wo_sketch : Sketch.t option;
  wo_frames : int;
  wo_alloc_bytes : float;
}

type reader_out = {
  ro_lats : float list;
  ro_obs : observation list;
  ro_ring : Flight.t option;
  ro_sketch : Sketch.t option;
  ro_alloc_bytes : float;
}

let run ?(config = default_config) ?recorder ?sanitize ?(seed = 42) ?on_snapshot
    ~params ~strategy () =
  if config.readers < 1 then invalid_arg "Server.run: readers must be >= 1";
  if config.publish_every < 1 then invalid_arg "Server.run: publish_every must be >= 1";
  if config.queries_per_reader < 0 then
    invalid_arg "Server.run: negative queries_per_reader";
  if config.trace_sample < 0 then invalid_arg "Server.run: negative trace_sample";
  if config.sketch_capacity < 0 then
    invalid_arg "Server.run: negative sketch_capacity";
  if config.flight_capacity < 0 then
    invalid_arg "Server.run: negative flight_capacity";
  if config.dash_every < 0 then invalid_arg "Server.run: negative dash_every";
  let engine = build_engine ?sanitize ~seed ~durability:config.durability params strategy in
  let ctx = engine.en_env.Strategy_sp.ctx in
  (match recorder with Some r -> Ctx.set_recorder ctx r | None -> ());
  let meter = Ctx.meter ctx and san = Ctx.sanitizer ctx in
  let name = engine.en_strategy.Strategy.name in
  let flight_on = config.flight_capacity > 0 in
  let sketch_on = config.sketch_capacity > 0 in
  let sampled s = config.trace_sample > 0 && s mod config.trace_sample = 0 in
  let store : Snapshot.t Mvcc.t = Mvcc.create () in
  (* Epoch 0 — the initial image — goes out on this domain before any other
     domain exists, so a reader's very first pin always finds a snapshot. *)
  ignore (Mvcc.publish store (snapshot_now engine ~epoch:0 ~txns:0));
  let width = params.Params.f *. params.Params.fv in
  let lo_max = params.Params.f -. width in
  let reader_seeds = Parallel.split_seeds ~root:seed config.readers in
  (* Wall-clock-only query tally so mid-run dashboard frames can show live
     QPS.  An atomic counter, never consulted by anything modeled. *)
  let queries_done = Atomic.make 0 in
  (* The registry's cost mirror is mutated from the writer domain (via the
     meter's charge hook) while it runs, so the writer may also read it;
     the coordinator reads it only after the join. *)
  let metric_mirror cat_name =
    match recorder with
    | Some r when Recorder.enabled r -> (
        match Recorder.metrics r with
        | Some m ->
            Option.value ~default:0.
              (Metrics.counter_value m
                 ~labels:[ ("category", cat_name) ]
                 "vmat_cost_ms_total")
        | None -> 0.)
    | _ -> 0.
  in
  let dash_categories () =
    List.map
      (fun cat ->
        let cn = Cost_meter.category_name cat in
        {
          Dash.c_name = cn;
          c_meter_ms = Cost_meter.cost meter cat;
          c_metric_ms = metric_mirror cn;
        })
      Cost_meter.all_categories
  in
  let ring_stats rings =
    List.map
      (fun rg ->
        {
          Dash.rs_label = Flight.label rg;
          rs_appended = Flight.appended rg;
          rs_dropped = Flight.dropped rg;
        })
      rings
  in
  let sketch_hot sk =
    List.map
      (fun h ->
        { Dash.h_key = h.Sketch.hh_key; h_count = h.Sketch.hh_count; h_err = h.Sketch.hh_err })
      (Sketch.top ~k:8 sk)
  in
  let sw_all = Wallclock.start () in
  let writer =
    Domain.spawn (fun () ->
        (* Explicit ctx handoff: this domain owns the engine from here on
           (the main domain only joins).  The flight ring and sketch are
           created here, inside the domain, and escape only through the
           join result. *)
        Ctx.adopt ctx;
        let ring =
          if flight_on then
            Some (Flight.create ~capacity:config.flight_capacity ~label:"writer" ())
          else None
        in
        let sketch =
          if sketch_on then Some (Sketch.create ~capacity:config.sketch_capacity ())
          else None
        in
        let emit ~at_us ev =
          match ring with Some rg -> Flight.append rg ~at_us ev | None -> ()
        in
        let lats = ref [] in
        let seq = ref 0 in
        let last_forces = ref 0 in
        let frames = ref 0 in
        let emit_frame ~epoch ~txns =
          match on_snapshot with
          | Some f when config.dash_every > 0 && epoch mod config.dash_every = 0 ->
              let wall = Wallclock.elapsed_s sw_all in
              let queries = Atomic.get queries_done in
              let txn_lat = latency_of !lats in
              f
                {
                  Dash.d_seq = !frames;
                  d_final = false;
                  d_strategy = name;
                  d_wall_s = wall;
                  d_txns = txns;
                  d_queries = queries;
                  d_epochs = epoch + 1;
                  d_tps = float_of_int txns /. Float.max 1e-9 wall;
                  d_qps = float_of_int queries /. Float.max 1e-9 wall;
                  d_txn_p50_us = txn_lat.l_p50_us;
                  d_txn_p95_us = txn_lat.l_p95_us;
                  d_txn_p99_us = txn_lat.l_p99_us;
                  (* Reader latencies are domain-private until the join. *)
                  d_query_p50_us = 0.;
                  d_query_p95_us = 0.;
                  d_query_p99_us = 0.;
                  d_modeled_ms =
                    Cost_meter.total_cost ~excluding:[ Cost_meter.Base ] meter;
                  d_categories = dash_categories ();
                  d_hot_keys =
                    (match sketch with Some sk -> sketch_hot sk | None -> []);
                  d_key_total =
                    (match sketch with Some sk -> Sketch.total sk | None -> 0);
                  d_key_distinct =
                    (match sketch with Some sk -> Sketch.distinct sk | None -> 0.);
                  d_key_skew =
                    (match sketch with Some sk -> Sketch.skew sk | None -> 0.);
                  d_flight =
                    (match ring with Some rg -> ring_stats [ rg ] | None -> []);
                  d_gauges = [];
                };
              incr frames
          | _ -> ()
        in
        (* Gc.allocated_bytes is domain-local in OCaml 5, so this delta is
           exactly the writer's own allocation over the serving loop —
           including snapshot publication, but nothing any reader does. *)
        let alloc0 = Gc.allocated_bytes () in
        let sw_writer = Wallclock.start () in
        let txns, epochs =
          apply_txns engine ~publish_every:config.publish_every
            ~publish:(fun ~epoch ~txns ->
              let v = Mvcc.publish store (snapshot_now engine ~epoch ~txns) in
              assert (v = epoch);
              if flight_on then
                emit ~at_us:(Wallclock.elapsed_us sw_all)
                  (Flight.Publish
                     {
                       epoch;
                       txns;
                       modeled_ms =
                         Cost_meter.total_cost ~excluding:[ Cost_meter.Base ]
                           meter;
                     });
              emit_frame ~epoch ~txns)
            ~on_txn:(fun changes f ->
              let s = !seq in
              incr seq;
              (match sketch with
              | Some sk ->
                  List.iter
                    (fun c ->
                      match (c.Strategy.after, c.Strategy.before) with
                      | Some tu, _ | None, Some tu ->
                          Sketch.observe sk
                            (key_of_value (Tuple.get tu engine.en_cluster_base))
                      | None, None -> ())
                    changes
              | None -> ());
              let want_ev = flight_on && sampled s in
              let msnap = if want_ev then Some (Cost_meter.snapshot meter) else None in
              let t0 = if want_ev then Wallclock.elapsed_us sw_all else 0. in
              let sw = Wallclock.start () in
              f ();
              let el = Wallclock.elapsed_us sw in
              lats := el :: !lats;
              (match msnap with
              | Some ms ->
                  emit ~at_us:t0
                    (Flight.Txn_commit
                       {
                         seq = s;
                         changes = List.length changes;
                         modeled_ms = Cost_meter.cost_since meter ms ();
                         wall_us = el;
                       })
              | None -> ());
              (match engine.en_durable with
              | Some d when flight_on ->
                  let forces = Wal.forces (Durable.wal d) in
                  if forces > !last_forces then begin
                    emit ~at_us:(Wallclock.elapsed_us sw_all)
                      (Flight.Group_commit_force { forces });
                    last_forces := forces
                  end
              | _ -> ());
              if Sanitize.enabled san then begin
                Sanitize.check san ~rule:"ctx-ownership"
                  (fun () -> Ctx.owned_by_current ctx)
                  ~detail:(fun () ->
                    Printf.sprintf "serving writer lost ctx ownership (owner %d)"
                      (Ctx.owner ctx));
                Sanitize.check_meter san meter
              end)
        in
        {
          wo_txns = txns;
          wo_epochs = epochs;
          wo_wall_s = Wallclock.elapsed_s sw_writer;
          wo_lats = List.rev !lats;
          wo_ring = ring;
          wo_sketch = sketch;
          wo_frames = !frames;
          wo_alloc_bytes = Gc.allocated_bytes () -. alloc0;
        })
  in
  let reader idx rseed () =
    (* Readers own no ctx at all: a private RNG drives the query mix, and
       every read touches only immutable pinned snapshots.  Ring and
       sketch are private too. *)
    let rng = Rng.create rseed in
    let ring =
      if flight_on then
        Some
          (Flight.create ~capacity:config.flight_capacity
             ~label:(Printf.sprintf "reader-%d" idx)
             ())
      else None
    in
    let sketch =
      if sketch_on then Some (Sketch.create ~capacity:config.sketch_capacity ())
      else None
    in
    let lats = ref [] and obs = ref [] in
    let alloc0 = Gc.allocated_bytes () in
    for s = 0 to config.queries_per_reader - 1 do
      let q = Stream.range_query_of ~lo_max ~width rng in
      (match sketch with
      | Some sk -> Sketch.observe sk (key_of_value q.Strategy.q_lo)
      | None -> ());
      let smp = flight_on && sampled s in
      let t0 = if smp then Wallclock.elapsed_us sw_all else 0. in
      let sw = Wallclock.start () in
      let v, snap = Mvcc.pin store in
      let result = Snapshot.query snap ~lo:q.Strategy.q_lo ~hi:q.Strategy.q_hi in
      Mvcc.unpin store v;
      let el = Wallclock.elapsed_us sw in
      lats := el :: !lats;
      Atomic.incr queries_done;
      (* Events are appended outside the timed window, stamped with the
         window's endpoints, so sampling never inflates measured latency. *)
      if smp then begin
        (match ring with
        | Some rg ->
            Flight.append rg ~at_us:t0
              (Flight.Query_begin
                 {
                   seq = s;
                   epoch = v;
                   lo = Value.to_string q.Strategy.q_lo;
                   hi = Value.to_string q.Strategy.q_hi;
                 });
            Flight.append rg ~at_us:t0 (Flight.Pin { epoch = v });
            Flight.append rg ~at_us:(t0 +. el) (Flight.Unpin { epoch = v });
            Flight.append rg ~at_us:(t0 +. el)
              (Flight.Query_end
                 { seq = s; rows = List.length result; wall_us = el })
        | None -> ())
      end;
      if config.record_observations then
        obs :=
          {
            ob_reader = idx;
            ob_seq = s;
            ob_epoch = v;
            ob_lo = q.Strategy.q_lo;
            ob_hi = q.Strategy.q_hi;
            ob_digest = Snapshot.digest_rows result;
          }
          :: !obs
    done;
    {
      ro_lats = List.rev !lats;
      ro_obs = List.rev !obs;
      ro_ring = ring;
      ro_sketch = sketch;
      ro_alloc_bytes = Gc.allocated_bytes () -. alloc0;
    }
  in
  let readers = List.mapi (fun i s -> Domain.spawn (reader i s)) reader_seeds in
  let reader_results = List.map Domain.join readers in
  let wout = Domain.join writer in
  let txns = wout.wo_txns and epochs = wout.wo_epochs in
  let writer_s = wout.wo_wall_s and txn_lats = wout.wo_lats in
  let wall_s = Wallclock.elapsed_s sw_all in
  let query_lats = List.concat_map (fun ro -> ro.ro_lats) reader_results in
  let reader_alloc =
    List.fold_left (fun acc ro -> acc +. ro.ro_alloc_bytes) 0. reader_results
  in
  let observations = List.concat_map (fun ro -> ro.ro_obs) reader_results in
  (* Domain-local observability state, merged deterministically here on the
     coordinating domain: rings sort by label (join-order independent) and
     sketches combine with the mergeable-summaries construction. *)
  let rings =
    Flight.merge
      (List.filter_map Fun.id
         (wout.wo_ring :: List.map (fun ro -> ro.ro_ring) reader_results))
  in
  let sketches =
    List.filter_map Fun.id
      (wout.wo_sketch :: List.map (fun ro -> ro.ro_sketch) reader_results)
  in
  let keys = Sketch.merge sketches in
  let _, final = Mvcc.pin store in
  Mvcc.unpin store (Snapshot.epoch final);
  let st = Mvcc.stats store in
  (* Wall-clock latency histograms are merged into the recorder here, on
     the coordinating domain after both sides joined — the metric registry
     is not thread-safe and reader domains must never touch it (vmlint D6);
     flight rings and sketches are the sanctioned carrier. *)
  (match recorder with
  | Some r when Recorder.enabled r ->
      List.iter
        (fun l ->
          Recorder.observe r ~help:"Wall-clock latency of one serving operation (us)."
            ~labels:[ ("op", "query"); ("strategy", name) ]
            ~bounds:(Metrics.log_bounds ~start:0.25 ~growth:2. ~count:24 ())
            "vmat_serve_latency_us" l)
        query_lats;
      List.iter
        (fun l ->
          Recorder.observe r ~help:"Wall-clock latency of one serving operation (us)."
            ~labels:[ ("op", "txn"); ("strategy", name) ]
            ~bounds:(Metrics.log_bounds ~start:0.25 ~growth:2. ~count:24 ())
            "vmat_serve_latency_us" l)
        txn_lats;
      Recorder.set_gauge r ~help:"Snapshots published during the serving run."
        ~labels:[ ("strategy", name) ]
        "vmat_serve_epochs" (float_of_int epochs);
      Flight.export_metrics r rings;
      if not (List.is_empty sketches) then
        Sketch.export ~labels:[ ("strategy", name) ] r keys;
      (match Recorder.trace r with
      | Some tr -> Flight.to_trace tr rings
      | None -> ())
  | _ -> ());
  let queries = config.readers * config.queries_per_reader in
  let txn_lat = latency_of txn_lats and query_lat = latency_of query_lats in
  (* One final dashboard frame with the merged, post-join view. *)
  (match on_snapshot with
  | Some f ->
      let gauges =
        match recorder with
        | Some r when Recorder.enabled r -> (
            match Recorder.metrics r with
            | Some m ->
                List.rev
                  (Metrics.fold_series m
                     (fun acc ~name ~kind ~labels:_ value ->
                       match kind with
                       | Metrics.Gauge
                         when String.starts_with ~prefix:"vmat_hr_" name
                              || String.starts_with ~prefix:"vmat_bloom_" name
                              || String.equal name "vmat_serve_epochs" ->
                           (name, value) :: acc
                       | _ -> acc)
                     [])
            | None -> [])
        | _ -> []
      in
      f
        {
          Dash.d_seq = wout.wo_frames;
          d_final = true;
          d_strategy = name;
          d_wall_s = wall_s;
          d_txns = txns;
          d_queries = queries;
          d_epochs = epochs;
          d_tps = float_of_int txns /. Float.max 1e-9 writer_s;
          d_qps = float_of_int queries /. Float.max 1e-9 wall_s;
          d_txn_p50_us = txn_lat.l_p50_us;
          d_txn_p95_us = txn_lat.l_p95_us;
          d_txn_p99_us = txn_lat.l_p99_us;
          d_query_p50_us = query_lat.l_p50_us;
          d_query_p95_us = query_lat.l_p95_us;
          d_query_p99_us = query_lat.l_p99_us;
          d_modeled_ms = Cost_meter.total_cost ~excluding:[ Cost_meter.Base ] meter;
          d_categories = dash_categories ();
          d_hot_keys = sketch_hot keys;
          d_key_total = Sketch.total keys;
          d_key_distinct = Sketch.distinct keys;
          d_key_skew = Sketch.skew keys;
          d_flight = ring_stats rings;
          d_gauges = gauges;
        }
  | None -> ());
  {
    r_strategy = name;
    r_readers = config.readers;
    r_txns = txns;
    r_queries = queries;
    r_epochs = epochs;
    r_reclaimed = st.Mvcc.st_reclaimed;
    r_live = st.Mvcc.st_live;
    r_max_live = st.Mvcc.st_max_live;
    r_wall_s = wall_s;
    r_tps = float_of_int txns /. Float.max 1e-9 writer_s;
    r_qps = float_of_int queries /. Float.max 1e-9 wall_s;
    r_txn_latency = txn_lat;
    r_query_latency = query_lat;
    r_category_costs =
      List.map (fun cat -> (cat, Cost_meter.cost meter cat)) Cost_meter.all_categories;
    r_modeled_ms = Cost_meter.total_cost ~excluding:[ Cost_meter.Base ] meter;
    r_final_digest = Snapshot.digest final;
    r_sanitize_checks = Sanitize.checks_run san;
    r_sanitize_violations = Sanitize.violations san;
    r_observations = observations;
    r_flight = rings;
    r_hot_keys = Sketch.top keys;
    r_key_total = Sketch.total keys;
    r_key_distinct = Sketch.distinct keys;
    r_key_skew = Sketch.skew keys;
    r_key_error_bound = Sketch.error_bound keys;
    r_writer_alloc_bytes = wout.wo_alloc_bytes;
    r_writer_alloc_per_txn =
      wout.wo_alloc_bytes /. float_of_int (Int.max 1 txns);
    r_reader_alloc_bytes = reader_alloc;
    r_reader_alloc_per_query =
      reader_alloc /. float_of_int (Int.max 1 queries);
  }
