(** The concurrent serving subsystem (DESIGN §10): MVCC snapshot reads,
    a single writer with WAL group commit, and a wall-clock benchmark.

    Roles: {e one} writer domain owns the strategy engine (after an explicit
    {!Vmat_storage.Ctx.adopt} handoff) and applies the update stream through
    the ordinary differential machinery, publishing an immutable
    {!Snapshot.t} into an {!Vmat_wal.Mvcc} store at every commit-epoch
    boundary; {e N} reader domains pin the latest snapshot, answer range
    queries against it with zero synchronization beyond the pin, and unpin.
    Readers never touch the context, the meter, or the simulated disk —
    modeled costs accrue only on the writer, so the modeled-cost axis of a
    serving run is deterministic even though the wall-clock axis is not.

    Two clocks, never mixed: TPS and latency quantiles come from
    {!Vmat_obs.Wallclock}; [r_category_costs]/[r_modeled_ms] come from the
    writer's deterministic cost meter. *)

open Vmat_storage

type durability =
  | No_wal
  | Wal_group_commit of Vmat_wal.Wal.config
      (** writer durability batched through {!Vmat_wal.Wal.commit}'s group
          commit *)

type config = {
  readers : int;  (** client domains executing view queries (>= 1) *)
  queries_per_reader : int;
  publish_every : int;  (** transactions per commit epoch (>= 1) *)
  durability : durability;
  record_observations : bool;
      (** capture one {!observation} per read for the snapshot-isolation
          property (test-only; keep off in benchmarks) *)
  trace_sample : int;
      (** deterministic counter-based sampling period for per-query flight
          events: every [N]-th query/txn per domain is recorded (0 = none).
          Requires [flight_capacity > 0] to have any effect. *)
  sketch_capacity : int;
      (** Space-Saving capacity of the per-domain cluster-key sketches
          (0 = sketches off) *)
  flight_capacity : int;
      (** per-domain flight-ring capacity (0 = flight recorder off) *)
  dash_every : int;
      (** emit a dashboard snapshot every [K] epochs (0 = none beyond the
          final post-join frame when [on_snapshot] is given) *)
}

val default_config : config
(** 2 readers x 200 queries, an epoch every 8 transactions, WAL durability
    with [group_commit = 8], observations off, and every observability
    extra off ([trace_sample = sketch_capacity = flight_capacity =
    dash_every = 0]) — exactly the pre-observability serving behavior. *)

type latency = {
  l_count : int;
  l_mean_us : float;
  l_p50_us : float;
  l_p95_us : float;
  l_p99_us : float;
  l_max_us : float;
}
(** Wall-clock latency summary in microseconds (exact sample quantiles via
    {!Vmat_util.Stats.quantile}, not histogram estimates). *)

type observation = {
  ob_reader : int;
  ob_seq : int;
  ob_epoch : int;  (** the pinned snapshot's epoch *)
  ob_lo : Value.t;
  ob_hi : Value.t;
  ob_digest : string;  (** {!Snapshot.digest_rows} of the result *)
}
(** One reader-side query, recorded so a serial replay can re-derive what
    the answer {e must} have been for the pinned epoch. *)

type report = {
  r_strategy : string;
  r_readers : int;
  r_txns : int;
  r_queries : int;
  r_epochs : int;  (** snapshots published, including the initial epoch 0 *)
  r_reclaimed : int;  (** superseded snapshots dropped after their last unpin *)
  r_live : int;
  r_max_live : int;
  r_wall_s : float;
  r_tps : float;  (** transactions per wall-clock second (writer) *)
  r_qps : float;  (** snapshot queries per wall-clock second (all readers) *)
  r_txn_latency : latency;
  r_query_latency : latency;
  r_category_costs : (Cost_meter.category * float) list;  (** modeled, writer side *)
  r_modeled_ms : float;  (** modeled total excluding [Base] — deterministic *)
  r_final_digest : string;  (** {!Snapshot.digest} of the last published epoch *)
  r_sanitize_checks : int;
  r_sanitize_violations : int;
  r_observations : observation list;  (** empty unless [record_observations] *)
  r_flight : Vmat_obs.Flight.t list;
      (** the domains' flight rings in canonical (label-sorted) order;
          empty unless [flight_capacity > 0] *)
  r_hot_keys : Vmat_obs.Sketch.heavy list;
      (** merged heavy hitters over updated + queried cluster keys,
          heaviest first; empty unless [sketch_capacity > 0] *)
  r_key_total : int;
  r_key_distinct : float;
  r_key_skew : float;
  r_key_error_bound : float;
  r_writer_alloc_bytes : float;
      (** GC bytes allocated on the writer domain over the serving loop
          ([Gc.allocated_bytes] delta; domain-local in OCaml 5, so reader
          work never leaks in).  Deterministic for a deterministic
          workload — the allocation axis of the flat-tuple hot paths. *)
  r_writer_alloc_per_txn : float;
  r_reader_alloc_bytes : float;
      (** Summed over all reader domains (query loop only). *)
  r_reader_alloc_per_query : float;
}

val run :
  ?config:config ->
  ?recorder:Vmat_obs.Recorder.t ->
  ?sanitize:bool ->
  ?seed:int ->
  ?on_snapshot:(Vmat_obs.Dash.snapshot -> unit) ->
  params:Vmat_cost.Params.t ->
  strategy:Vmat_workload.Experiment.model1_strategy ->
  unit ->
  report
(** Serve a Model-1 workload: the writer replays the parameter set's update
    transactions (the query mix is carried by the readers, so the stream is
    generated with [q = 0]) while [readers] domains execute range queries
    against pinned snapshots.  [recorder], when enabled, additionally
    receives the wall-clock latency samples as a [vmat_serve_latency_us]
    histogram — merged on the coordinating domain after all workers joined,
    since the metric registry is single-threaded.

    Observability extras (DESIGN §11), all default-off and all with zero
    observer effect on the modeled artifacts ([r_modeled_ms],
    [r_category_costs], [r_final_digest] are bit-identical on vs. off —
    tested): with [flight_capacity > 0] each domain keeps a private
    {!Vmat_obs.Flight} ring (publish/group-commit-force always; per-query
    and per-txn events for every [trace_sample]-th operation, deterministic
    counter sampling per domain) and with [sketch_capacity > 0] a private
    {!Vmat_obs.Sketch} over quantized cluster keys — updated keys on the
    writer, queried keys on readers.  Rings and sketches travel back
    through the domain join, are merged deterministically here, exported
    into the recorder ([vmat_flight_*], [vmat_key_*], trace lanes per
    domain) and surfaced on the report.  [on_snapshot] receives a
    {!Vmat_obs.Dash} frame from the writer every [dash_every] epochs
    (mid-run: writer-side view only) plus one final merged frame
    post-join; it runs on the writer domain mid-run, so it must not touch
    the registry (vmlint D6) — writing a file or rendering to the terminal
    is fine.
    @raise Invalid_argument on a config with [readers < 1],
    [publish_every < 1] or any negative count field. *)

val replay_epochs :
  ?config:config ->
  ?sanitize:bool ->
  ?seed:int ->
  params:Vmat_cost.Params.t ->
  strategy:Vmat_workload.Experiment.model1_strategy ->
  unit ->
  Snapshot.t array
(** The verification oracle: rebuild, serially on the calling domain, the
    exact snapshot sequence the live writer publishes for the same seed,
    parameters and config (index = epoch).  Deterministic; used by the
    qcheck snapshot-isolation property to check every recorded read against
    the snapshot its pinned epoch must have contained. *)
