open Vmat_storage
module Checkpoint = Vmat_wal.Checkpoint

type t = {
  sn_epoch : int;
  sn_txns : int;
  sn_cluster_col : int;
  sn_rows : (Tuple.t * int) array;
      (* ascending (clustering value, value key); one entry per distinct
         value key, duplicate counts merged *)
}

let compare_rows col (a, _) (b, _) =
  let c = Value.compare (Tuple.get a col) (Tuple.get b col) in
  if c <> 0 then c else String.compare (Tuple.value_key a) (Tuple.value_key b)

(* Canonicalize: sort by (clustering value, value key), then merge entries
   with equal value keys by summing their duplicate counts, so the snapshot
   is a well-formed bag no matter how the strategy chunked its answer. *)
let of_rows ~cluster_col ~epoch ~txns rows =
  let arr = Array.of_list rows in
  Array.sort (compare_rows cluster_col) arr;
  let merged = ref [] in
  Array.iter
    (fun (tuple, count) ->
      match !merged with
      | (prev, prev_count) :: rest when Tuple.value_key prev = Tuple.value_key tuple ->
          merged := (prev, prev_count + count) :: rest
      | _ -> merged := (tuple, count) :: !merged)
    arr;
  {
    sn_epoch = epoch;
    sn_txns = txns;
    sn_cluster_col = cluster_col;
    sn_rows = Array.of_list (List.rev !merged);
  }

let of_image ~cluster_col ~epoch (im : Checkpoint.image) =
  of_rows ~cluster_col ~epoch ~txns:im.Checkpoint.ck_op_index im.Checkpoint.ck_view

let epoch t = t.sn_epoch
let txns t = t.sn_txns
let cluster_col t = t.sn_cluster_col
let size t = Array.length t.sn_rows
let rows t = Array.to_list t.sn_rows

(* First index whose clustering value is >= lo (array length when none). *)
let lower_bound t lo =
  let n = Array.length t.sn_rows in
  let rec search l r =
    if l >= r then l
    else
      let mid = (l + r) / 2 in
      let v, _ = t.sn_rows.(mid) in
      if Value.compare (Tuple.get v t.sn_cluster_col) lo < 0 then search (mid + 1) r
      else search l mid
  in
  search 0 n

let query t ~lo ~hi =
  let n = Array.length t.sn_rows in
  let rec collect i acc =
    if i >= n then List.rev acc
    else
      let tuple, count = t.sn_rows.(i) in
      if Value.compare (Tuple.get tuple t.sn_cluster_col) hi > 0 then List.rev acc
      else collect (i + 1) ((tuple, count) :: acc)
  in
  collect (lower_bound t lo) []

(* FNV-1a, hand-rolled so the digest is deterministic by construction
   (Hashtbl.hash is banned by vmlint rule D2). *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* Digests hash value keys and duplicate counts, never tuple ids: replaying
   the same logical history mints fresh tids, so tids are not stable across
   a replay, but the value-keyed bag is. *)
let digest_rows rows =
  let buf = Buffer.create 256 in
  List.iter
    (fun (tuple, count) ->
      Buffer.add_string buf (Tuple.value_key tuple);
      Buffer.add_char buf '#';
      Buffer.add_string buf (string_of_int count);
      Buffer.add_char buf ';')
    rows;
  Printf.sprintf "%016Lx:%d" (fnv1a (Buffer.contents buf)) (Buffer.length buf)

let digest t = digest_rows (Array.to_list t.sn_rows)
