(** Public facade of the view-materialization library.

    The layers, bottom-up:
    - {!Yao}, {!Bloom}, {!Rng} — analytic and probabilistic primitives;
    - {!Value}, {!Schema}, {!Tuple}, {!Flat}, {!Tuple_view}, {!Disk},
      {!Buffer_pool}, {!Cost_meter}, {!Heap_file}, {!Ctx} — the simulated
      storage engine (page-resident flat rows with zero-copy cursors,
      DESIGN §12) and the per-engine execution context that owns all of its
      mutable state;
    - {!Btree}, {!Hash_file}, {!Tlock} — access methods;
    - {!Predicate}, {!Bag}, {!Ops} — relational algebra with duplicate
      counts;
    - {!Hr} — hypothetical relations (the deferred-maintenance substrate);
    - {!View_def}, {!Materialized}, {!Delta}, {!Screen}, {!Aggregate},
      {!Strategy}, {!Strategy_sp}, {!Strategy_join}, {!Strategy_agg} — views
      and the three materialization strategies;
    - {!Params}, {!Model1}, {!Model2}, {!Model3}, {!Regions} — the paper's
      analytic cost model;
    - {!Dataset}, {!Stream}, {!Runner}, {!Experiment}, {!Parallel} —
      measured workloads and the domain-parallel sweep driver;
    - {!Advisor} — strategy selection from the model;
    - {!Wstats}, {!Migrate}, {!Controller}, {!Adaptive} — online workload
      observation and live strategy migration (adaptive maintenance);
    - {!Span}, {!Trace}, {!Metrics}, {!Recorder}, {!Json_text} — the
      zero-dependency observability layer (Chrome-trace spans, Prometheus
      metrics) threaded through every layer above via the cost meter;
    - {!Codec}, {!Fault}, {!Device}, {!Wal_record}, {!Wal}, {!Checkpoint},
      {!Durable}, {!Recovery}, {!Crash_harness} — the durability subsystem:
      write-ahead logging, checkpoints, ARIES-lite crash recovery, and
      deterministic fault injection (DESIGN §9);
    - {!Mvcc}, {!Snapshot}, {!Serve}, {!Wallclock} — the concurrent serving
      subsystem: immutable MVCC snapshots with pin/reclaim, a single writer
      with WAL group commit, multi-domain readers, and the wall-clock
      benchmark axis (DESIGN §10);
    - {!Flight}, {!Sketch}, {!Dash} — serving-grade observability: per-domain
      flight-recorder rings, Space-Saving heavy-hitter workload sketches, and
      the live text dashboard they feed (DESIGN §11);
    - {!Fleet_ir}, {!Fleet_dag}, {!Fleet_advisor}, {!Fleet}, {!Fleet_spec},
      {!Fleet_report} — the multi-view fleet: canonical
      selection-projection IR, the shared-subexpression DAG, the online
      materialization advisor, and the fleet engine built on all of them
      (DESIGN §14). *)

module Yao = Vmat_util.Yao
module Combin = Vmat_util.Combin
module Bloom = Vmat_util.Bloom
module Rng = Vmat_util.Rng
module Stats = Vmat_util.Stats
module Table = Vmat_util.Table
module Ascii_plot = Vmat_util.Ascii_plot
module Span = Vmat_obs.Span
module Trace = Vmat_obs.Trace
module Metrics = Vmat_obs.Metrics
module Recorder = Vmat_obs.Recorder
module Json_text = Vmat_obs.Json_text
module Flight = Vmat_obs.Flight
module Sketch = Vmat_obs.Sketch
module Dash = Vmat_obs.Dash
module Value = Vmat_storage.Value
module Schema = Vmat_storage.Schema
module Tuple = Vmat_storage.Tuple
module Flat = Vmat_storage.Flat
module Tuple_view = Vmat_storage.Tuple_view
module Cost_meter = Vmat_storage.Cost_meter
module Disk = Vmat_storage.Disk
module Ctx = Vmat_storage.Ctx
module Sanitize = Vmat_storage.Sanitize
module Buffer_pool = Vmat_storage.Buffer_pool
module Heap_file = Vmat_storage.Heap_file
module Btree = Vmat_index.Btree
module Hash_file = Vmat_index.Hash_file
module Tlock = Vmat_index.Tlock
module Predicate = Vmat_relalg.Predicate
module Bag = Vmat_relalg.Bag
module Ops = Vmat_relalg.Ops
module Hr = Vmat_hypo.Hr
module View_def = Vmat_view.View_def
module Materialized = Vmat_view.Materialized
module Delta = Vmat_view.Delta
module Screen = Vmat_view.Screen
module Aggregate = Vmat_view.Aggregate
module Strategy = Vmat_view.Strategy
module Strategy_sp = Vmat_view.Strategy_sp
module Strategy_join = Vmat_view.Strategy_join
module Strategy_agg = Vmat_view.Strategy_agg
module Multi_view = Vmat_view.Multi_view
module Bilateral = Vmat_view.Bilateral
module Trigger = Vmat_view.Trigger
module Planner = Vmat_view.Planner
module Params = Vmat_cost.Params
module Model1 = Vmat_cost.Model1
module Model2 = Vmat_cost.Model2
module Model3 = Vmat_cost.Model3
module Regions = Vmat_cost.Regions
module Extensions = Vmat_cost.Extensions
module Dataset = Vmat_workload.Dataset
module Stream = Vmat_workload.Stream
module Runner = Vmat_workload.Runner
module Experiment = Vmat_workload.Experiment
module Parallel = Vmat_workload.Parallel
module Lexer = Vmat_lang.Lexer
module Ast = Vmat_lang.Ast
module Parser = Vmat_lang.Parser
module Db = Vmat_db.Db
module Advisor = Vmat_cost.Advisor
module Wstats = Vmat_adaptive.Wstats
module Migrate = Vmat_adaptive.Migrate
module Controller = Vmat_adaptive.Controller
module Adaptive = Vmat_adaptive.Adaptive
module Codec = Vmat_storage.Codec
module Fault = Vmat_storage.Fault
module Device = Vmat_wal.Device
module Wal_record = Vmat_wal.Record
module Wal = Vmat_wal.Wal
module Checkpoint = Vmat_wal.Checkpoint
module Durable = Vmat_wal.Durable
module Recovery = Vmat_wal.Recovery
module Crash_harness = Vmat_wal.Harness
module Mvcc = Vmat_wal.Mvcc
module Snapshot = Vmat_serve.Snapshot
module Serve = Vmat_serve.Server
module Wallclock = Vmat_obs.Wallclock
module Fleet = Vmat_fleet.Fleet
module Fleet_ir = Vmat_fleet.Ir
module Fleet_dag = Vmat_fleet.Dag
module Fleet_advisor = Vmat_fleet.Advisor
module Fleet_spec = Vmat_fleet.Spec
module Fleet_report = Vmat_fleet.Report
