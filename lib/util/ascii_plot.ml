let bounds_of_series series =
  let xs = List.concat_map (fun (_, _, pts) -> List.map fst pts) series in
  let ys = List.concat_map (fun (_, _, pts) -> List.map snd pts) series in
  match (xs, ys) with
  | [], _ | _, [] -> ((0., 1.), (0., 1.))
  | _ ->
      let widen (lo, hi) = if hi -. lo < 1e-12 then (lo -. 0.5, hi +. 0.5) else (lo, hi) in
      ( widen (Stats.minimum xs, Stats.maximum xs),
        widen (Stats.minimum ys, Stats.maximum ys) )

let line_chart ?(width = 64) ?(height = 20) ~title ~x_label ~y_label ~series () =
  let (xmin, xmax), (ymin, ymax) = bounds_of_series series in
  let grid = Array.make_matrix height width ' ' in
  let to_col x =
    let c = int_of_float (Float.round ((x -. xmin) /. (xmax -. xmin) *. float_of_int (width - 1))) in
    max 0 (min (width - 1) c)
  in
  let to_row y =
    let r = int_of_float (Float.round ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1))) in
    (height - 1) - max 0 (min (height - 1) r)
  in
  let plot_series (_, marker, pts) =
    (* Draw line segments between consecutive points by sampling columns. *)
    let pts = List.sort (fun (a, _) (b, _) -> Float.compare a b) pts in
    let rec segments = function
      | (x0, y0) :: ((x1, y1) :: _ as rest) ->
          let c0 = to_col x0 and c1 = to_col x1 in
          for c = c0 to c1 do
            let t = if c1 = c0 then 0. else float_of_int (c - c0) /. float_of_int (c1 - c0) in
            let y = y0 +. (t *. (y1 -. y0)) in
            grid.(to_row y).(c) <- marker
          done;
          segments rest
      | [ (x, y) ] -> grid.(to_row y).(to_col x) <- marker
      | [] -> ()
    in
    segments pts
  in
  List.iter plot_series series;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (title ^ "\n");
  let ylab w s = Printf.sprintf "%*s" w s in
  let label_width = 12 in
  for r = 0 to height - 1 do
    let tick =
      if r = 0 then ylab label_width (Printf.sprintf "%.4g" ymax)
      else if r = height - 1 then ylab label_width (Printf.sprintf "%.4g" ymin)
      else if r = (height - 1) / 2 then ylab label_width (Printf.sprintf "%.4g" ((ymin +. ymax) /. 2.))
      else String.make label_width ' '
    in
    Buffer.add_string buf (tick ^ " |" ^ String.init width (fun c -> grid.(r).(c)) ^ "\n")
  done;
  Buffer.add_string buf (String.make (label_width + 1) ' ' ^ "+" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%s  %-10s%*s\n"
       (String.make (label_width + 1) ' ')
       (Printf.sprintf "%.4g" xmin)
       (width - 10) (Printf.sprintf "%.4g" xmax));
  Buffer.add_string buf (Printf.sprintf "%*s x: %s   y: %s\n" (label_width + 1) "" x_label y_label);
  let legend =
    List.map (fun (name, marker, _) -> Printf.sprintf "%c = %s" marker name) series
  in
  Buffer.add_string buf (Printf.sprintf "%*s %s\n" (label_width + 1) "" (String.concat "   " legend));
  Buffer.contents buf

let region_map ?(width = 60) ?(height = 20) ~title ~x_label ~y_label ~x_range ~y_range
    ~legend ~classify () =
  let xmin, xmax = x_range and ymin, ymax = y_range in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (title ^ "\n");
  let label_width = 10 in
  for r = 0 to height - 1 do
    let frac = 1. -. ((float_of_int r +. 0.5) /. float_of_int height) in
    let y = ymin +. (frac *. (ymax -. ymin)) in
    let tick =
      if r = 0 then Printf.sprintf "%*.3g" label_width ymax
      else if r = height - 1 then Printf.sprintf "%*.3g" label_width ymin
      else String.make label_width ' '
    in
    Buffer.add_string buf (tick ^ " |");
    for c = 0 to width - 1 do
      let xfrac = (float_of_int c +. 0.5) /. float_of_int width in
      let x = xmin +. (xfrac *. (xmax -. xmin)) in
      Buffer.add_char buf (classify x y)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make (label_width + 1) ' ' ^ "+" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%s  %-10s%*s\n"
       (String.make (label_width + 1) ' ')
       (Printf.sprintf "%.3g" xmin)
       (width - 10) (Printf.sprintf "%.3g" xmax));
  Buffer.add_string buf (Printf.sprintf "%*s x: %s   y: %s\n" (label_width + 1) "" x_label y_label);
  let legend_line =
    List.map (fun (marker, name) -> Printf.sprintf "%c = %s" marker name) legend
  in
  Buffer.add_string buf (Printf.sprintf "%*s %s\n" (label_width + 1) "" (String.concat "   " legend_line));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Sparklines                                                          *)
(* ------------------------------------------------------------------ *)

let default_levels = " ._-=+*#@"

let sparkline ?(levels = default_levels) values =
  if levels = "" then invalid_arg "Ascii_plot.sparkline: empty level alphabet";
  match values with
  | [] -> ""
  | _ ->
      let vmax = List.fold_left (fun acc v -> Float.max acc v) 0. values in
      let n = String.length levels in
      let cell v =
        if not (Float.is_finite v) || v <= 0. || vmax <= 0. then levels.[0]
        else
          let i = 1 + int_of_float (Float.of_int (n - 2) *. v /. vmax) in
          levels.[min (n - 1) (max 1 i)]
      in
      String.init (List.length values) (fun i -> cell (List.nth values i))
