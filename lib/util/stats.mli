(** Small descriptive statistics over float samples. *)

val mean : float list -> float
(** Arithmetic mean; [0.] for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; [0.] for fewer than two samples. *)

val minimum : float list -> float
val maximum : float list -> float

val median : float list -> float

val quantile : float -> float list -> float
(** [quantile q samples] is the [q]-th quantile ([q] in [[0, 1]]) of the
    samples by linear interpolation between the two nearest order statistics
    ([quantile 0.] = minimum, [quantile 1.] = maximum, [quantile 0.5] =
    {!median}).  Degenerate inputs do not raise: the empty list yields
    [0.] and a single sample yields that sample for every [q] — serving
    runs routinely summarize latency lists that can legitimately be empty
    (zero queries configured).
    @raise Invalid_argument when [q] is outside [[0, 1]]. *)

val relative_error : expected:float -> actual:float -> float
(** [|actual - expected| / max 1e-9 |expected|]. *)

val geometric_mean : float list -> float
(** Geometric mean of strictly positive samples; [0.] for the empty list. *)
