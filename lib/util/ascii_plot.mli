(** ASCII renderings of the paper's figures: line charts (Figures 1, 5, 8, 9)
    and best-strategy region maps (Figures 2, 3, 4, 6, 7). *)

val line_chart :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series:(string * char * (float * float) list) list ->
  unit ->
  string
(** [line_chart ~title ~x_label ~y_label ~series ()] plots every series as its
    marker character on a shared linear grid, with min/max tick labels and a
    legend.  Later series overwrite earlier ones where points collide. *)

val region_map :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  x_range:float * float ->
  y_range:float * float ->
  legend:(char * string) list ->
  classify:(float -> float -> char) ->
  unit ->
  string
(** [region_map ~x_range ~y_range ~classify ()] paints [classify x y] for the
    cell centers of a [width] x [height] grid (x left-to-right, y
    bottom-to-top) with axis labels and the given legend. *)

val sparkline : ?levels:string -> float list -> string
(** [sparkline values] renders non-negative values as one character each,
    scaled against the maximum: the first character of [levels] (default
    [" ._-=+*#@"]) means zero/absent, the last means the maximum.  Used by
    [vmperf top] for per-category cost bars and histogram shapes. *)
