let mean = function
  | [] -> 0.
  | samples -> List.fold_left ( +. ) 0. samples /. float_of_int (List.length samples)

let stddev samples =
  match samples with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean samples in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. samples in
      sqrt (sq /. float_of_int (List.length samples))

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: rest -> List.fold_left Float.min x rest

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: rest -> List.fold_left Float.max x rest

let median samples =
  match List.sort Float.compare samples with
  | [] -> invalid_arg "Stats.median: empty list"
  | sorted ->
      let a = Array.of_list sorted in
      let len = Array.length a in
      if len mod 2 = 1 then a.(len / 2)
      else (a.((len / 2) - 1) +. a.(len / 2)) /. 2.

let quantile q samples =
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q must be in [0, 1]";
  match samples with
  | [] -> 0.
  | [ x ] -> x
  | _ ->
      let a = Array.of_list (List.sort Float.compare samples) in
      let n = Array.length a in
      let pos = q *. float_of_int (n - 1) in
      let i = int_of_float (Float.floor pos) in
      let frac = pos -. float_of_int i in
      if i + 1 >= n then a.(n - 1) else a.(i) +. (frac *. (a.(i + 1) -. a.(i)))

let relative_error ~expected ~actual =
  Float.abs (actual -. expected) /. Float.max 1e-9 (Float.abs expected)

let geometric_mean = function
  | [] -> 0.
  | samples ->
      let log_sum =
        List.fold_left
          (fun acc x ->
            if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive sample"
            else acc +. log x)
          0. samples
      in
      exp (log_sum /. float_of_int (List.length samples))
