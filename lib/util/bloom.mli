(** Bloom filter [Bloo70], used to screen accesses to the differential file of
    a hypothetical relation as proposed by Severance & Lohman [Seve76]
    (paper §2.2.2).  Membership tests have no false negatives; the false
    positive rate is tuned by the bit-array size [m] and hash count. *)

type t

val create : ?hashes:int -> bits:int -> unit -> t
(** [create ~bits ()] is an empty filter over a bit array of size [bits]
    (rounded up to at least 8).  [hashes] defaults to 3, matching the paper's
    assumption that differential-file misses are screened out "with
    arbitrarily small probability" at modest memory cost.

    @raise Invalid_argument if [bits <= 0] or [hashes <= 0] — catching a
    degenerate [m = 0]/[k = 0] geometry at construction instead of as a
    division by zero on the first probe. *)

val add : t -> string -> unit
(** Insert a key.  Idempotent. *)

val mem : t -> string -> bool
(** [mem t key] is [false] only if [key] was never {!add}ed (no false
    negatives); [true] may be a false positive.  Counted in {!probes} (and
    {!positives} when [true]). *)

val note_false_positive : t -> unit
(** The caller — the only party that can tell — reports that the latest
    positive probe turned out to be spurious (the backing structure had no
    entry for the key).  Feeds {!false_positives} and {!observed_fp_rate}. *)

val probes : t -> int
(** Lifetime {!mem} calls (probe stats survive {!clear}: they describe the
    filter's workload, not its contents). *)

val positives : t -> int
(** Lifetime [true] results from {!mem}. *)

val false_positives : t -> int
(** Positive probes the caller reported spurious via {!note_false_positive}. *)

val observed_fp_rate : t -> float
(** [false_positives / probes] as measured (0 when never probed) — the
    empirical counterpart of the analytic {!false_positive_rate}. *)

val clear : t -> unit
(** Reset to empty (used when the hypothetical relation is folded in). *)

val cardinality : t -> int
(** Number of {!add} calls since the last {!clear} (with multiplicity). *)

val bits : t -> int

val snapshot_bits : t -> string
(** The raw bit array (for checkpoint images, DESIGN §9).  Stable: the bit
    layout depends only on the monomorphic [String.seeded_hash]. *)

val restore_bits : t -> insertions:int -> string -> unit
(** Overwrite the bit array with a {!snapshot_bits} image taken from a
    filter of the same geometry, and set the insertion count.

    @raise Invalid_argument on a byte-length mismatch. *)

val equal_bits : t -> t -> bool
(** Bit-for-bit equality of the two filters' arrays (probe statistics and
    insertion counts are ignored) — the check behind the
    rebuilt-filter-equals-live-filter property. *)

val false_positive_rate : t -> float
(** Estimated false-positive probability [(1 - e^{-kn/m})^k] for the current
    load. *)

val ideal_bits : expected_keys:int -> fp_rate:float -> int
(** [ideal_bits ~expected_keys ~fp_rate] is the bit-array size that achieves
    [fp_rate] for [expected_keys] insertions with an optimal hash count. *)
