type t = {
  bits : Bytes.t;
  nbits : int;
  hashes : int;
  mutable insertions : int;
  (* Lifetime probe accounting (survives {!clear}): a membership test alone
     cannot tell a true hit from a false positive, so the caller that goes on
     to search the backing structure reports spurious hits back via
     {!note_false_positive}. *)
  mutable probes : int;
  mutable positives : int;
  mutable false_positives : int;
}

let create ?(hashes = 3) ~bits () =
  if hashes <= 0 then invalid_arg "Bloom.create: hashes must be positive";
  if bits <= 0 then invalid_arg "Bloom.create: bits must be positive";
  let nbits = max 8 bits in
  let nbytes = (nbits + 7) / 8 in
  {
    bits = Bytes.make nbytes '\000';
    nbits;
    hashes;
    insertions = 0;
    probes = 0;
    positives = 0;
    false_positives = 0;
  }

(* [String.seeded_hash] (not the polymorphic [Hashtbl.seeded_hash]): keys are
   flat strings, and the monomorphic hash is representation-stable by
   construction — it computes the same value as the polymorphic one on
   strings, so filter contents are unchanged (vmlint rule D2). *)
let bit_index t seed key = String.seeded_hash seed key mod t.nbits

let set_bit t i =
  let byte = i / 8 and off = i mod 8 in
  let old = Char.code (Bytes.get t.bits byte) in
  Bytes.set t.bits byte (Char.chr (old lor (1 lsl off)))

let get_bit t i =
  let byte = i / 8 and off = i mod 8 in
  Char.code (Bytes.get t.bits byte) land (1 lsl off) <> 0

let add t key =
  for seed = 0 to t.hashes - 1 do
    set_bit t (bit_index t seed key)
  done;
  t.insertions <- t.insertions + 1

let mem t key =
  let rec loop seed =
    if seed >= t.hashes then true
    else if get_bit t (bit_index t seed key) then loop (seed + 1)
    else false
  in
  let hit = loop 0 in
  t.probes <- t.probes + 1;
  if hit then t.positives <- t.positives + 1;
  hit

let note_false_positive t = t.false_positives <- t.false_positives + 1

let probes t = t.probes
let positives t = t.positives
let false_positives t = t.false_positives

let observed_fp_rate t =
  if t.probes = 0 then 0. else float_of_int t.false_positives /. float_of_int t.probes

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.insertions <- 0

let cardinality t = t.insertions

let bits t = t.nbits

let snapshot_bits t = Bytes.to_string t.bits

let restore_bits t ~insertions data =
  if String.length data <> Bytes.length t.bits then
    invalid_arg
      (Printf.sprintf "Bloom.restore_bits: %d bytes for a %d-byte filter"
         (String.length data) (Bytes.length t.bits));
  if insertions < 0 then invalid_arg "Bloom.restore_bits: negative insertions";
  Bytes.blit_string data 0 t.bits 0 (String.length data);
  t.insertions <- insertions

let equal_bits a b = Bytes.equal a.bits b.bits

let false_positive_rate t =
  let k = float_of_int t.hashes in
  let n = float_of_int t.insertions in
  let m = float_of_int t.nbits in
  (1. -. exp (-.k *. n /. m)) ** k

let ideal_bits ~expected_keys ~fp_rate =
  if fp_rate <= 0. || fp_rate >= 1. then invalid_arg "Bloom.ideal_bits";
  let n = float_of_int (max 1 expected_keys) in
  let m = -.n *. log fp_rate /. (log 2. ** 2.) in
  max 8 (int_of_float (ceil m))
