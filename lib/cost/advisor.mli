(** Strategy advisor: operationalizes the paper's §4 conclusions by
    evaluating the analytic cost model at a parameter point and explaining
    the recommendation. *)


type model = Selection_projection | Two_way_join | Aggregate_over_view

val model_name : model -> string

type recommendation = {
  model : model;
  winner : string;
  winner_cost : float;
  costs : (string * float) list;  (** every candidate, cheapest first *)
  notes : string list;  (** qualitative drivers of the choice *)
}

val recommend : model -> Params.t -> recommendation

val pp : Format.formatter -> recommendation -> unit
