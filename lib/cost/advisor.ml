
type model = Selection_projection | Two_way_join | Aggregate_over_view

let model_name = function
  | Selection_projection -> "Model 1 (selection-projection)"
  | Two_way_join -> "Model 2 (two-way join)"
  | Aggregate_over_view -> "Model 3 (aggregate)"

type recommendation = {
  model : model;
  winner : string;
  winner_cost : float;
  costs : (string * float) list;
  notes : string list;
}

let notes_for model (p : Params.t) winner =
  let prob = Params.update_probability p in
  let say cond note acc = if cond then note :: acc else acc in
  []
  |> say (prob >= 0.5)
       "high update probability favors the method with the least per-transaction \
        overhead (query modification)"
  |> say (p.fv <= 0.02)
       "small per-query view fractions favor query modification: maintenance overhead \
        is independent of fv while the query cost shrinks with it"
  |> say (p.f >= 0.5 && model <> Aggregate_over_view)
       "high predicate selectivity means most updates hit the view, raising \
        maintenance cost"
  |> say (model = Two_way_join && String.length winner >= 4 && String.sub winner 0 4 <> "qmod"
          && winner <> "loopjoin")
       "materialization clusters joining tuples on one page, cutting join queries to \
        one I/O per result page"
  |> say (model = Aggregate_over_view && winner <> "recompute")
       "the aggregate state fits in one page, so maintenance is nearly free compared \
        with rescanning the aggregated set"
  |> say (p.c3 >= 2. && winner = "deferred")
       "with expensive in-memory A/D set manipulation (C3), deferring the refresh \
        amortizes set maintenance across transactions"
  |> List.rev

let recommend model p =
  let costs =
    match model with
    | Selection_projection -> Model1.all p
    | Two_way_join -> Model2.all p
    | Aggregate_over_view -> Model3.all p
  in
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare a b) costs in
  match sorted with
  | [] -> invalid_arg "Advisor.recommend: no candidates"
  | (winner, winner_cost) :: _ ->
      { model; winner; winner_cost; costs = sorted; notes = notes_for model p winner }

let pp fmt r =
  Format.fprintf fmt "%s: use %s (%.1f ms/query)@." (model_name r.model) r.winner
    r.winner_cost;
  List.iter (fun (name, cost) -> Format.fprintf fmt "  %-12s %10.1f ms@." name cost) r.costs;
  List.iter (fun note -> Format.fprintf fmt "  - %s@." note) r.notes
