open Vmat_storage
open Vmat_relalg
open Lexer
open Ast

exception Parse_error of string

type state = { mutable tokens : token list }

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let advance st =
  match st.tokens with
  | [] -> fail "unexpected end of input"
  | t :: rest ->
      st.tokens <- rest;
      t

let expect st token =
  let got = advance st in
  if got <> token then fail "expected %s, got %s" (token_to_string token) (token_to_string got)

let keyword st kw =
  match advance st with
  | Ident w when String.equal w kw -> ()
  | got -> fail "expected %s, got %s" kw (token_to_string got)

let ident st =
  match advance st with
  | Ident w -> w
  | got -> fail "expected an identifier, got %s" (token_to_string got)

let accept_keyword st kw =
  match peek st with
  | Some (Ident w) when String.equal w kw ->
      ignore (advance st);
      true
  | _ -> false

let literal st =
  match advance st with
  | Number v -> L_number v
  | String s -> L_string s
  | Ident "true" -> L_bool true
  | Ident "false" -> L_bool false
  | got -> fail "expected a literal, got %s" (token_to_string got)

(* ident [. ident] *)
let column_ref st =
  let first = ident st in
  match peek st with
  | Some Dot ->
      ignore (advance st);
      { table = Some first; column = ident st }
  | _ -> { table = None; column = first }

let comparison_of = function
  | Eq -> Some Predicate.Eq
  | Ne -> Some Predicate.Ne
  | Lt -> Some Predicate.Lt
  | Le -> Some Predicate.Le
  | Gt -> Some Predicate.Gt
  | Ge -> Some Predicate.Ge
  | _ -> None

let operand st =
  match peek st with
  | Some (Number _ | String _) -> O_lit (literal st)
  | Some (Ident "true") | Some (Ident "false") -> O_lit (literal st)
  | _ -> O_col (column_ref st)

(* or-expr := and-expr { OR and-expr }
   and-expr := unary { AND unary }
   unary := NOT unary | atom
   atom := '(' or-expr ')' | TRUE | FALSE
         | column BETWEEN lit AND lit
         | operand cmp operand *)
let rec pexpr st =
  let left = and_expr st in
  if accept_keyword st "or" then P_or (left, pexpr st) else left

and and_expr st =
  let left = unary st in
  if accept_keyword st "and" then P_and (left, and_expr st) else left

and unary st = if accept_keyword st "not" then P_not (unary st) else atom st

and atom st =
  match peek st with
  | Some Lparen ->
      ignore (advance st);
      let inner = pexpr st in
      expect st Rparen;
      inner
  | Some (Ident "true") ->
      ignore (advance st);
      P_true
  | Some (Ident "false") ->
      ignore (advance st);
      P_false
  | _ -> (
      let lhs = operand st in
      match (lhs, peek st) with
      | O_col col, Some (Ident "between") ->
          ignore (advance st);
          let lo = literal st in
          keyword st "and";
          let hi = literal st in
          P_between (col, lo, hi)
      | _ -> (
          let op = advance st in
          match comparison_of op with
          | Some cmp -> P_cmp (cmp, lhs, operand st)
          | None -> fail "expected a comparison operator, got %s" (token_to_string op)))

let column_type_of_keyword = function
  | "int" | "integer" -> Schema.T_int
  | "float" | "real" | "double" -> Schema.T_float
  | "string" | "text" | "varchar" -> Schema.T_string
  | "bool" | "boolean" -> Schema.T_bool
  | other -> fail "unknown column type %s" other

(* create table R (col type [key], ...) size N *)
let create_table st =
  keyword st "table";
  let table = ident st in
  expect st Lparen;
  let rec columns acc =
    let name = ident st in
    let ty = column_type_of_keyword (ident st) in
    let is_key = accept_keyword st "key" in
    let acc = (name, ty, is_key) :: acc in
    match advance st with
    | Comma -> columns acc
    | Rparen -> List.rev acc
    | got -> fail "expected , or ) in column list, got %s" (token_to_string got)
  in
  let columns = columns [] in
  keyword st "size";
  let tuple_bytes =
    match advance st with
    | Number v when v > 0. -> int_of_float v
    | got -> fail "expected a positive size, got %s" (token_to_string got)
  in
  Create_table { table; columns; tuple_bytes }

let optional_where st = if accept_keyword st "where" then Some (pexpr st) else None

let optional_using st = if accept_keyword st "using" then Some (ident st) else None

(* define view V (cols) from R [join S on a = b] [where ...] cluster on c [using s] *)
let define_view st =
  let view = ident st in
  expect st Lparen;
  let rec cols acc =
    let c = column_ref st in
    match advance st with
    | Comma -> cols (c :: acc)
    | Rparen -> List.rev (c :: acc)
    | got -> fail "expected , or ) in target list, got %s" (token_to_string got)
  in
  let columns = cols [] in
  keyword st "from";
  let from_left = ident st in
  let join =
    if accept_keyword st "join" then begin
      let right = ident st in
      keyword st "on";
      let l = column_ref st in
      expect st Eq;
      let r = column_ref st in
      Some (right, l, r)
    end
    else None
  in
  let where_ = optional_where st in
  keyword st "cluster";
  keyword st "on";
  let cluster = column_ref st in
  let using = optional_using st in
  Define_view { view; columns; from_left; join; where_; cluster; using }

(* define aggregate T as sum(col) from R [where ...] [using s] *)
let define_aggregate st =
  let view = ident st in
  keyword st "as";
  let func = ident st in
  expect st Lparen;
  let arg =
    match peek st with
    | Some Star ->
        ignore (advance st);
        None
    | _ -> Some (ident st)
  in
  expect st Rparen;
  keyword st "from";
  let from_ = ident st in
  let where_ = optional_where st in
  let using = optional_using st in
  Define_aggregate { view; func; arg; from_; where_; using }

let insert st =
  keyword st "into";
  let table = ident st in
  keyword st "values";
  expect st Lparen;
  let rec values acc =
    let v = literal st in
    match advance st with
    | Comma -> values (v :: acc)
    | Rparen -> List.rev (v :: acc)
    | got -> fail "expected , or ) in values, got %s" (token_to_string got)
  in
  Insert { table; values = values [] }

let update st =
  let table = ident st in
  keyword st "set";
  let set_column = ident st in
  expect st Eq;
  let set_value = literal st in
  let where_ = optional_where st in
  Update { table; set_column; set_value; where_ }

let delete st =
  keyword st "from";
  let table = ident st in
  let where_ = optional_where st in
  Delete { table; where_ }

(* select * from V [where c between a and b] | select value from T *)
let select st =
  match advance st with
  | Star ->
      keyword st "from";
      let view = ident st in
      let range =
        if accept_keyword st "where" then begin
          let col = ident st in
          keyword st "between";
          let lo = literal st in
          keyword st "and";
          let hi = literal st in
          Some (col, lo, hi)
        end
        else None
      in
      Select_view { view; range }
  | Ident "value" ->
      keyword st "from";
      Select_value { view = ident st }
  | got -> fail "expected * or value after select, got %s" (token_to_string got)

let statement st =
  match advance st with
  | Ident "create" -> create_table st
  | Ident "define" -> (
      match advance st with
      | Ident "view" -> define_view st
      | Ident "aggregate" -> define_aggregate st
      | got -> fail "expected view or aggregate after define, got %s" (token_to_string got))
  | Ident "insert" -> insert st
  | Ident "update" -> update st
  | Ident "delete" -> delete st
  | Ident "select" -> select st
  | got -> fail "unknown statement starting with %s" (token_to_string got)

let run_parser f input =
  match tokenize input with
  | Error message -> Error message
  | Ok tokens -> (
      let st = { tokens } in
      match f st with
      | result ->
          if not (List.is_empty st.tokens) then
            Error
              (Printf.sprintf "trailing input starting at %s"
                 (token_to_string (List.hd st.tokens)))
          else Ok result
      | exception Parse_error message -> Error message)

let parse input = run_parser statement input

let parse_predicate input = run_parser pexpr input
