open Vmat_storage

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type operand = Column of int | Const of Value.t

type t =
  | True
  | False
  | Cmp of comparison * operand * operand
  | Between of int * Value.t * Value.t
  | And of t * t
  | Or of t * t
  | Not of t

let compare_holds op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let operand_value binding = function
  | Const v -> Some v
  | Column i -> binding i

let rec eval3 p binding =
  match p with
  | True -> Some true
  | False -> Some false
  | Cmp (op, a, b) -> (
      match (operand_value binding a, operand_value binding b) with
      | Some va, Some vb -> Some (compare_holds op (Value.compare va vb))
      | _ -> None)
  | Between (col, lo, hi) -> (
      match binding col with
      | Some v -> Some (Value.compare lo v <= 0 && Value.compare v hi <= 0)
      | None -> None)
  | And (a, b) -> (
      match (eval3 a binding, eval3 b binding) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None)
  | Or (a, b) -> (
      match (eval3 a binding, eval3 b binding) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None)
  | Not a -> Option.map not (eval3 a binding)

let eval p tuple =
  let binding i = if i < Tuple.arity tuple then Some (Tuple.get tuple i) else None in
  match eval3 p binding with
  | Some b -> b
  | None -> invalid_arg "Predicate.eval: tuple does not bind all columns read"

let satisfiable_with p binding =
  match eval3 p binding with Some false -> false | Some true | None -> true

(* ------------------------------------------------------------------ *)
(* Compiled evaluation                                                  *)
(* ------------------------------------------------------------------ *)

(* [eval3] rebuilds a binding closure and boxes [Some] results per tuple.
   Compilation walks the AST once, closing each node over preallocated
   [Some true]/[Some false] and, for the flat path, evaluating comparisons
   directly over column offsets ([Tuple_view.compare_col]) — zero
   allocations per row.  Semantics are [eval3] exactly: out-of-range columns
   bind to [None], And/Or use three-valued logic.  Short-circuiting is
   sound because [eval3] is side-effect-free: when the left conjunct is
   [Some false] the conjunction is [Some false] whatever the right says, and
   dually for Or. *)

let some_true = Some true
let some_false = Some false
let of_bool b = if b then some_true else some_false

(* Functorizing over the row representation keeps the two compilers (flat
   views and boxed tuples) provably the same algorithm. *)
module type ROW = sig
  type row

  val arity : row -> int
  val compare_col : row -> int -> Value.t -> int
  (** [Value.compare (column col) v]. *)

  val compare_cols : row -> int -> int -> int
end

module Compile (Row : ROW) = struct
  let rec compile p : Row.row -> bool option =
    match p with
    | True -> fun _ -> some_true
    | False -> fun _ -> some_false
    | Cmp (op, Const a, Const b) ->
        let r = of_bool (compare_holds op (Value.compare a b)) in
        fun _ -> r
    | Cmp (op, Column i, Const v) ->
        fun row ->
          if i >= Row.arity row then None
          else of_bool (compare_holds op (Row.compare_col row i v))
    | Cmp (op, Const v, Column i) ->
        fun row ->
          if i >= Row.arity row then None
          else of_bool (compare_holds op (-Row.compare_col row i v))
    | Cmp (op, Column i, Column j) ->
        fun row ->
          let n = Row.arity row in
          if i >= n || j >= n then None
          else of_bool (compare_holds op (Row.compare_cols row i j))
    | Between (col, lo, hi) ->
        fun row ->
          if col >= Row.arity row then None
          else
            of_bool (Row.compare_col row col lo >= 0 && Row.compare_col row col hi <= 0)
    | And (a, b) ->
        let ca = compile a and cb = compile b in
        fun row -> (
          match ca row with
          | Some false -> some_false
          | Some true -> cb row
          | None -> ( match cb row with Some false -> some_false | _ -> None))
    | Or (a, b) ->
        let ca = compile a and cb = compile b in
        fun row -> (
          match ca row with
          | Some true -> some_true
          | Some false -> cb row
          | None -> ( match cb row with Some true -> some_true | _ -> None))
    | Not a ->
        let ca = compile a in
        fun row -> (
          match ca row with
          | Some b -> if b then some_false else some_true
          | None -> None)
end

module View_compiler = Compile (struct
  type row = Tuple_view.t

  let arity = Tuple_view.arity
  let compare_col = Tuple_view.compare_col
  let compare_cols row i j = Tuple_view.compare_cols row i row j
end)

module Boxed_compiler = Compile (struct
  type row = Tuple.t

  let arity = Tuple.arity
  let compare_col row i v = Value.compare (Tuple.get row i) v
  let compare_cols row i j = Value.compare (Tuple.get row i) (Tuple.get row j)
end)

(* The schema is the layout contract the compiled closure evaluates against;
   today all cells are self-describing so only the arity matters, but the
   argument keeps the door open for schema-specialized layouts. *)
let compile (_schema : Schema.t) p = View_compiler.compile p

let compile_boxed p = Boxed_compiler.compile p

let eval_view compiled view =
  match compiled view with
  | Some b -> b
  | None -> invalid_arg "Predicate.eval: tuple does not bind all columns read"

let columns_read p =
  let rec collect acc = function
    | True | False -> acc
    | Cmp (_, a, b) ->
        let add acc = function Column i -> i :: acc | Const _ -> acc in
        add (add acc a) b
    | Between (col, _, _) -> col :: acc
    | And (a, b) | Or (a, b) -> collect (collect acc a) b
    | Not a -> collect acc a
  in
  List.sort_uniq Int.compare (collect [] p)

type interval = { column : int; lo : Value.t option; hi : Value.t option }

(* Conservative cover: a list of intervals such that every satisfying tuple
   falls into at least one.  For a conjunction, covering either conjunct is
   enough; for a disjunction, both sides must be covered. *)
let rec tlock_intervals p =
  match p with
  | True -> None
  | False -> Some []
  | Between (column, lo, hi) -> Some [ { column; lo = Some lo; hi = Some hi } ]
  | Cmp (op, Column column, Const v) | Cmp (op, Const v, Column column) ->
      let op =
        (* Normalize [Const v OP Column c] to [Column c OP' Const v]. *)
        match p with
        | Cmp (_, Const _, Column _) -> (
            match op with Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le | other -> other)
        | _ -> op
      in
      (match op with
      | Eq -> Some [ { column; lo = Some v; hi = Some v } ]
      | Lt | Le -> Some [ { column; lo = None; hi = Some v } ]
      | Gt | Ge -> Some [ { column; lo = Some v; hi = None } ]
      | Ne -> None)
  | Cmp _ -> None
  | And (a, b) -> (
      match tlock_intervals a with Some ivs -> Some ivs | None -> tlock_intervals b)
  | Or (a, b) -> (
      match (tlock_intervals a, tlock_intervals b) with
      | Some ia, Some ib -> Some (ia @ ib)
      | _ -> None)
  | Not _ -> None

let rec selectivity_on_unit_column p ~column =
  match p with
  | True -> 1.
  | False -> 0.
  | Between (col, lo, hi) when col = column -> (
      try
        let lo = Float.max 0. (Value.as_float lo) and hi = Float.min 1. (Value.as_float hi) in
        Float.max 0. (hi -. lo)
      with Invalid_argument _ -> 1.)
  | Cmp (op, Column col, Const v) when col = column -> (
      try
        let x = Float.max 0. (Float.min 1. (Value.as_float v)) in
        match op with
        | Lt | Le -> x
        | Gt | Ge -> 1. -. x
        | Eq -> 0.
        | Ne -> 1.
      with Invalid_argument _ -> 1.)
  | And (a, b) ->
      Float.min
        (selectivity_on_unit_column a ~column)
        (selectivity_on_unit_column b ~column)
  | Or (a, b) ->
      Float.min 1.
        (selectivity_on_unit_column a ~column +. selectivity_on_unit_column b ~column)
  | Not a -> 1. -. selectivity_on_unit_column a ~column
  | _ -> 1.

let comparison_name = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Cmp (op, a, b) ->
      let pp_operand fmt = function
        | Column i -> Format.fprintf fmt "$%d" i
        | Const v -> Value.pp fmt v
      in
      Format.fprintf fmt "%a %s %a" pp_operand a (comparison_name op) pp_operand b
  | Between (c, lo, hi) -> Format.fprintf fmt "$%d in [%a, %a]" c Value.pp lo Value.pp hi
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp a pp b
  | Not a -> Format.fprintf fmt "(not %a)" pp a
