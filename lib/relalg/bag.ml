open Vmat_storage

type entry = { representative : Tuple.t; mutable count : int }

type t = (string, entry) Hashtbl.t

let create () = Hashtbl.create 64

let add t tuple =
  let key = Tuple.value_key tuple in
  match Hashtbl.find_opt t key with
  | Some entry ->
      entry.count <- entry.count + 1;
      if entry.count = 0 then Hashtbl.remove t key;
      entry.count
  | None ->
      Hashtbl.replace t key { representative = tuple; count = 1 };
      1

let add_count t tuple n =
  if n <> 0 then begin
    let key = Tuple.value_key tuple in
    match Hashtbl.find_opt t key with
    | Some entry ->
        entry.count <- entry.count + n;
        if entry.count = 0 then Hashtbl.remove t key
    | None -> Hashtbl.replace t key { representative = tuple; count = n }
  end

let remove t tuple =
  let key = Tuple.value_key tuple in
  match Hashtbl.find_opt t key with
  | Some entry ->
      entry.count <- entry.count - 1;
      if entry.count = 0 then Hashtbl.remove t key;
      entry.count
  | None ->
      Hashtbl.replace t key { representative = tuple; count = -1 };
      -1

let of_list tuples =
  let t = create () in
  List.iter (fun tuple -> ignore (add t tuple)) tuples;
  t

let copy t =
  let fresh = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter
    (fun key entry -> Hashtbl.replace fresh key { entry with count = entry.count })
    t;
  fresh

let count t tuple =
  match Hashtbl.find_opt t (Tuple.value_key tuple) with
  | Some entry -> entry.count
  | None -> 0

let distinct_size t = Hashtbl.length t

let total_size t =
  Hashtbl.fold (fun _ entry acc -> if entry.count > 0 then acc + entry.count else acc) t 0

let iter t f = Hashtbl.iter (fun _ entry -> f entry.representative entry.count) t

(* Canonical (value-key) order: a bag is an unordered multiset, so the only
   defensible list rendering is a sorted one — the raw [Hashtbl.fold] order
   would leak the hash function of the running compiler into whatever the
   caller prints or diffs (vmlint rule D3). *)
let to_list t =
  let entries =
    List.sort
      (fun (k1, _) (k2, _) -> String.compare k1 k2)
      (Hashtbl.fold (fun key entry acc -> (key, entry) :: acc) t [])
  in
  List.concat_map
    (fun (_, entry) ->
      if entry.count <= 0 then []
      else List.init entry.count (fun _ -> entry.representative))
    entries

let equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun key entry acc ->
         acc
         &&
         match Hashtbl.find_opt b key with
         | Some other -> other.count = entry.count
         | None -> false)
       a true

let merge ~sign a b =
  let result = copy a in
  Hashtbl.iter
    (fun key entry ->
      match Hashtbl.find_opt result key with
      | Some existing ->
          existing.count <- existing.count + (sign * entry.count);
          if existing.count = 0 then Hashtbl.remove result key
      | None ->
          if entry.count <> 0 then
            Hashtbl.replace result key
              { representative = entry.representative; count = sign * entry.count })
    b;
  result

let union a b = merge ~sign:1 a b
let diff a b = merge ~sign:(-1) a b

let has_negative_count t = Hashtbl.fold (fun _ entry acc -> acc || entry.count < 0) t false

let pp fmt t =
  Format.pp_print_string fmt "{";
  iter t (fun tuple count -> Format.fprintf fmt " %a x%d;" Tuple.pp tuple count);
  Format.pp_print_string fmt " }"
