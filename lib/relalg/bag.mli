(** Duplicate-counted multisets of tuples, compared by field values (tids are
    ignored).  This is the paper's storage discipline for materialized views:
    "each tuple in V must contain a duplicate count, indicating how many
    potential sources could have contributed the tuple" (§2.1).  Counts may
    go negative so the Appendix-A demonstration can exhibit the corruption
    caused by Blakeley's original refresh expression; the corrected algorithm
    never drives a count negative. *)

open Vmat_storage

type t

val create : unit -> t
val of_list : Tuple.t list -> t
val copy : t -> t

val add : t -> Tuple.t -> int
(** Insert one occurrence; the new count is returned (1 when the value was
    absent). *)

val add_count : t -> Tuple.t -> int -> unit
(** Add [n] occurrences at once (a no-op when [n = 0]; the entry is dropped
    when the count reaches exactly 0).  Equivalent to [n] calls to {!add} but
    hashes the value key once. *)

val remove : t -> Tuple.t -> int
(** Remove one occurrence; the new count is returned (possibly negative; the
    entry is dropped when it reaches exactly 0 from above). *)

val count : t -> Tuple.t -> int
(** Current duplicate count (0 when absent). *)

val distinct_size : t -> int
val total_size : t -> int
(** Sum of positive counts. *)

val iter : t -> (Tuple.t -> int -> unit) -> unit
(** One call per distinct value with its count (representative tuple). *)

val to_list : t -> Tuple.t list
(** Expanded with multiplicity (entries with non-positive counts omitted),
    in unspecified order. *)

val equal : t -> t -> bool
(** Same distinct values with the same counts. *)

val union : t -> t -> t
val diff : t -> t -> t
(** Pointwise count addition / subtraction ([diff] may produce negative
    counts). *)

val has_negative_count : t -> bool

val pp : Format.formatter -> t -> unit
