(** In-memory relational operators with bag (duplicate-preserving) semantics.
    These are used to evaluate the algebraic expressions of the differential
    view-update algorithm (the [A_1 x R_2'] style terms of §2.1) and to
    recompute views from scratch as a correctness reference.  When a meter is
    supplied, predicate tests and join matches charge [C1] each, as in the
    paper; I/O is charged by the storage structures feeding these operators,
    not here. *)

open Vmat_storage

val select : ?meter:Cost_meter.t -> Predicate.t -> Tuple.t list -> Tuple.t list

val project : tids:Tuple.source -> positions:int array -> Tuple.t list -> Tuple.t list
(** Keep the listed fields; duplicates are preserved (bag semantics).  Result
    tuples get fresh tids drawn from [tids]. *)

val cross : tids:Tuple.source -> Tuple.t list -> Tuple.t list -> Tuple.t list
(** Cartesian product; result tuples concatenate fields and get fresh tids
    from [tids]. *)

val equi_join :
  ?meter:Cost_meter.t ->
  tids:Tuple.source ->
  left_col:int ->
  right_col:int ->
  Tuple.t list ->
  Tuple.t list ->
  Tuple.t list
(** In-memory hash equi-join.  With a meter, charges [C1] per left tuple
    probed. *)

val union_all : Tuple.t list -> Tuple.t list -> Tuple.t list

val minus_bag : Tuple.t list -> Tuple.t list -> Tuple.t list
(** Multiset difference by field values (each occurrence in the right list
    cancels one occurrence in the left list). *)

val sp_view :
  ?meter:Cost_meter.t ->
  tids:Tuple.source ->
  Predicate.t ->
  positions:int array ->
  Tuple.t list ->
  Tuple.t list
(** [π_positions (σ_pred tuples)] — the paper's Model 1 view expression. *)

val distinct_values : Tuple.t list -> Tuple.t list
(** One representative per distinct field value. *)
