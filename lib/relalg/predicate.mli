(** Selection predicates over the columns of one relation: the [X] in the
    paper's view definitions [V = π_Y(σ_X(...))], restricted to one relation's
    attributes (join clauses are expressed separately by the view layer).

    Evaluation itself charges nothing; callers charge [C1] per test through
    their cost meter, matching the paper's accounting. *)

open Vmat_storage

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type operand = Column of int | Const of Value.t

type t =
  | True
  | False
  | Cmp of comparison * operand * operand
  | Between of int * Value.t * Value.t  (** inclusive bounds on a column *)
  | And of t * t
  | Or of t * t
  | Not of t

val eval : t -> Tuple.t -> bool

val eval3 : t -> (int -> Value.t option) -> bool option
(** Three-valued evaluation under a partial binding of columns: [Some b] when
    the truth value is determined, [None] when unknown. *)

val satisfiable_with : t -> (int -> Value.t option) -> bool
(** Stage-2 screening test of §2: is the predicate still satisfiable with the
    bound columns substituted?  [true] unless {!eval3} is definitely
    [false]. *)

val columns_read : t -> int list
(** Sorted, deduplicated column positions the predicate reads — the input to
    the readily-ignorable-update test of [Bune79]. *)

(** {1 Compiled evaluation}

    One-time AST walk producing a closure tree with preallocated results:
    per-row evaluation allocates nothing.  Semantics are exactly {!eval3}
    with the row's columns bound (out-of-range columns unbound). *)

val compile : Schema.t -> t -> Tuple_view.t -> bool option
(** Compile against a row layout: comparisons evaluate directly over column
    offsets in the flat page, with no [Value.t] boxing. *)

val compile_boxed : t -> Tuple.t -> bool option
(** Same compilation over boxed tuples (screens on stream tuples). *)

val eval_view : (Tuple_view.t -> bool option) -> Tuple_view.t -> bool
(** Two-valued read of a compiled predicate; raises like {!eval} when a
    column is unbound. *)

type interval = { column : int; lo : Value.t option; hi : Value.t option }
(** An index interval ([None] = unbounded on that side). *)

val tlock_intervals : t -> interval list option
(** Intervals to t-lock so that every tuple satisfying the predicate breaks
    at least one of them (a conservative cover): [Some []] means the
    predicate is unsatisfiable (nothing to lock), [None] means no indexable
    cover exists and the whole index must be locked. *)

val selectivity_on_unit_column : t -> column:int -> float
(** Estimated fraction of tuples satisfying the predicate assuming the given
    column is uniform on [0, 1) and other clauses are ignored — used by the
    advisor to recover the paper's [f] from a predicate. *)

val pp : Format.formatter -> t -> unit
