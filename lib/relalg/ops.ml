open Vmat_storage

let charge meter = Option.iter Cost_meter.charge_predicate_test meter

let select ?meter pred tuples =
  List.filter
    (fun tuple ->
      charge meter;
      Predicate.eval pred tuple)
    tuples

let project ~tids ~positions tuples =
  List.map (fun tuple -> Tuple.with_tid (Tuple.project tuple positions) (Tuple.next tids)) tuples

let cross ~tids left right =
  List.concat_map
    (fun l -> List.map (fun r -> Tuple.concat ~tid:(Tuple.next tids) l r) right)
    left

let equi_join ?meter ~tids ~left_col ~right_col left right =
  let index = Hashtbl.create (List.length right) in
  List.iter
    (fun r ->
      let key = Value.key_string (Tuple.get r right_col) in
      Hashtbl.add index key r)
    right;
  List.concat_map
    (fun l ->
      charge meter;
      let key = Value.key_string (Tuple.get l left_col) in
      List.rev_map (fun r -> Tuple.concat ~tid:(Tuple.next tids) l r) (Hashtbl.find_all index key))
    left

let union_all a b = a @ b

let minus_bag left right =
  let cancel = Hashtbl.create (List.length right) in
  List.iter
    (fun r ->
      let key = Tuple.value_key r in
      let n = Option.value ~default:0 (Hashtbl.find_opt cancel key) in
      Hashtbl.replace cancel key (n + 1))
    right;
  List.filter
    (fun l ->
      let key = Tuple.value_key l in
      match Hashtbl.find_opt cancel key with
      | Some n when n > 0 ->
          Hashtbl.replace cancel key (n - 1);
          false
      | _ -> true)
    left

let sp_view ?meter ~tids pred ~positions tuples =
  project ~tids ~positions (select ?meter pred tuples)

let distinct_values tuples =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun tuple ->
      let key = Tuple.value_key tuple in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    tuples
