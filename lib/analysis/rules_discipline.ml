(* Discipline rules D4-D6: comparator hygiene, ctx-discipline, and
   registry-domain discipline. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* D4: polymorphic comparison where monomorphic comparators exist       *)
(* ------------------------------------------------------------------ *)

(* Structural compare on Tuple.t/Value.t is both a representation trap (a
   future change of Value.t — say interning strings — silently reorders
   everything) and slower than the dedicated comparators.  Three syntactic
   cues, each a warning:
     1. a bare [compare] passed as a function (to List.sort etc.);
     2. [= []] / [<> []] — use List.is_empty or a pattern match;
     3. a polymorphic comparison whose operand syntactically produces a
        Tuple.t or Value.t (Tuple.* application or Value.* constructor). *)

let poly_binops = [ "="; "<>" ]
let poly_functions = [ "compare"; "Stdlib.compare"; "List.mem"; "List.assoc" ]

let tuple_producers =
  [
    "Tuple.get";
    "Tuple.project";
    "Tuple.make";
    "Tuple.with_tid";
    "Tuple.set";
    "Tuple.concat";
  ]

let is_nil expr =
  match expr.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) -> true
  | _ -> false

let rec produces_tuple_or_value expr =
  match expr.pexp_desc with
  | Pexp_apply (f, _) -> (
      match Rule.applied_path f with
      | Some path -> List.mem path tuple_producers
      | None -> false)
  | Pexp_construct ({ txt = Longident.Ldot (Longident.Lident "Value", _); _ }, _) ->
      true
  | Pexp_constraint (inner, _) -> produces_tuple_or_value inner
  | _ -> false

let d4 =
  {
    Rule.id = "D4";
    doc =
      "polymorphic compare/=/List.mem on values with monomorphic comparators \
       (Tuple.equal, Value.compare, List.is_empty)";
    example = "let sorted xs = List.sort compare xs\nlet empty xs = xs = []";
    fix =
      "let sorted xs = List.sort Value.compare xs\n\
       let empty xs = List.is_empty xs";
    check =
      (fun ctx structure ->
        let file_defines_compare =
          List.mem "compare" (Rule.toplevel_value_names structure)
        in
        let report loc message =
          ctx.Rule.report ~severity:Finding.Warning ~loc message
        in
        let check_apply e f args =
          match Rule.applied_path f with
          | Some op when List.mem op poly_binops -> (
              match Rule.unlabelled args with
              | [ a; b ] ->
                  if is_nil a || is_nil b then
                    report e.pexp_loc
                      (Printf.sprintf
                         "[%s []] is a polymorphic comparison: use \
                          List.is_empty or match on the list"
                         op)
                  else if produces_tuple_or_value a || produces_tuple_or_value b
                  then
                    report e.pexp_loc
                      (Printf.sprintf
                         "polymorphic %s on a Tuple.t/Value.t operand: use \
                          Tuple.equal / Value.equal (representation-stable \
                          and cheaper)"
                         op)
              | _ -> ())
          | Some fn when List.mem fn poly_functions -> (
              match List.find_opt produces_tuple_or_value (Rule.unlabelled args) with
              | Some _ ->
                  report e.pexp_loc
                    (Printf.sprintf
                       "%s uses polymorphic equality on a Tuple.t/Value.t \
                        operand: use the monomorphic comparator"
                       fn)
              | None -> ())
          | _ -> ()
        in
        let visit e =
          match e.pexp_desc with
          | Pexp_apply (f, args) -> check_apply e f args
          | Pexp_ident { txt = Longident.Lident "compare"; _ }
            when not file_defines_compare ->
              report e.pexp_loc
                "bare polymorphic [compare]: pass a monomorphic comparator \
                 (Value.compare, Int.compare, String.compare, ...)"
          | Pexp_ident { txt; _ }
            when Rule.path_of_longident txt = "Stdlib.compare" ->
              report e.pexp_loc
                "Stdlib.compare is polymorphic: pass a monomorphic comparator"
          | _ -> ()
        in
        (* A [compare] that is the *head* of an application with operands we
           can't type is still reported (cue 1) — unless this file defines
           its own compare (a Map/Set functor argument idiom). *)
        let iterator =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun iter e ->
                visit e;
                Ast_iterator.default_iterator.expr iter e);
          }
        in
        iterator.structure iterator structure);
  }

(* ------------------------------------------------------------------ *)
(* D5: ctx-discipline for meter access                                  *)
(* ------------------------------------------------------------------ *)

(* Every charge must flow through a meter the caller received — a Ctx.t, an
   env struct holding one, or a function parameter — never a module-level
   binding.  A meter reachable without being passed is exactly the ambient
   state PR 3 eliminated: it couples engines that must be isolated.  The
   heuristic: the meter operand's root identifier (through field projections
   and receiver-style applications) must not be a toplevel [let] of the same
   file, nor a qualified path into another module. *)

let metered_calls =
  [
    "Cost_meter.charge_read";
    "Cost_meter.charge_write";
    "Cost_meter.charge_predicate_test";
    "Cost_meter.charge_set_overhead";
    "Cost_meter.with_category";
    "Ctx.meter";
  ]

let d5 =
  {
    Rule.id = "D5";
    doc =
      "meter/ctx discipline: Cost_meter charges must use a meter passed in \
       (ctx or env), never a module-level binding";
    example =
      "let meter = Cost_meter.create ()\n\
       let read () = Cost_meter.charge_read meter";
    fix = "let read ctx = Cost_meter.charge_read (Ctx.meter ctx)";
    check =
      (fun ctx structure ->
        let toplevel = Rule.toplevel_value_names structure in
        let visit e =
          match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              match Rule.applied_path f with
              | Some path when List.mem path metered_calls -> (
                  match Rule.unlabelled args with
                  | receiver :: _ -> (
                      match Rule.root_ident receiver with
                      | Some (`Local name) when List.mem name toplevel ->
                          ctx.Rule.report ~severity:Finding.Error ~loc:e.pexp_loc
                            (Printf.sprintf
                               "%s reaches the meter through module-level \
                                binding [%s]: take a Ctx.t (or env) parameter \
                                instead, so engines stay isolated and \
                                re-entrant"
                               path name)
                      | Some (`Qualified qpath) ->
                          ctx.Rule.report ~severity:Finding.Error ~loc:e.pexp_loc
                            (Printf.sprintf
                               "%s reaches the meter through qualified path \
                                [%s]: meters must be passed in via Ctx.t, \
                                never reached ambiently"
                               path qpath)
                      | _ -> ())
                  | [] -> ())
              | _ -> ())
          | _ -> ()
        in
        let iterator =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun iter e ->
                visit e;
                Ast_iterator.default_iterator.expr iter e);
          }
        in
        iterator.structure iterator structure);
  }

(* ------------------------------------------------------------------ *)
(* D6: metrics registry is owner-domain-only                            *)
(* ------------------------------------------------------------------ *)

(* The metric registry (and the trace log behind it) is plain mutable state
   with a single-domain ownership contract (DESIGN §11): only the domain
   that owns the recorder may mutate it, and worker domains report back
   through their private flight rings / sketches, merged post-join.  A
   registry or trace mutator syntactically inside a [Domain.spawn] closure
   is a data race in the making — the spawned domain runs concurrently with
   the owner.  Flight.append / Sketch.observe inside a spawn are exactly
   the sanctioned alternative and are never flagged. *)

let registry_mutators =
  [
    "Metrics.inc";
    "Metrics.reset_counter";
    "Metrics.set";
    "Metrics.observe";
    "Recorder.inc";
    "Recorder.set_gauge";
    "Recorder.observe";
    "Recorder.span";
    "Recorder.instant";
    "Recorder.trace_counter";
    "Recorder.set_thread";
    "Recorder.set_clock";
    "Trace.begin_span";
    "Trace.end_span";
    "Trace.instant";
    "Trace.counter";
    "Trace.set_thread";
  ]

(* Match both short paths (module alias convention) and fully qualified
   ones (Vmat_obs.Metrics.inc). *)
let is_registry_mutator path =
  List.exists
    (fun m -> path = m || String.ends_with ~suffix:("." ^ m) path)
    registry_mutators

(* The first registry-mutator application anywhere under [expr], if any. *)
let find_mutator expr =
  let found = ref None in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun iter e ->
          (match e.pexp_desc with
          | Pexp_apply (f, _) -> (
              match Rule.applied_path f with
              | Some path when is_registry_mutator path ->
                  if !found = None then found := Some (path, e.pexp_loc)
              | _ -> ())
          | _ -> ());
          if !found = None then Ast_iterator.default_iterator.expr iter e);
    }
  in
  iterator.expr iterator expr;
  !found

let d6 =
  {
    Rule.id = "D6";
    doc =
      "registry-domain discipline: metrics/trace mutators must not appear \
       inside a Domain.spawn closure (report through flight rings/sketches, \
       merge post-join)";
    example = "let f m = Domain.spawn (fun () -> Metrics.inc m 1.)";
    fix =
      "let f ring = Domain.spawn (fun () -> Flight.append ring ev)\n\
       (* merge into the registry after Domain.join *)";
    check =
      (fun ctx structure ->
        let visit e =
          match e.pexp_desc with
          | Pexp_apply (f, args) when Rule.applied_path f = Some "Domain.spawn"
            -> (
              match Rule.unlabelled args with
              | closure :: _ -> (
                  match find_mutator closure with
                  | Some (path, loc) ->
                      ctx.Rule.report ~severity:Finding.Error ~loc
                        (Printf.sprintf
                           "%s inside a Domain.spawn closure mutates the \
                            owner domain's registry/trace concurrently: \
                            record into a domain-private Flight ring or \
                            Sketch and merge after the join"
                           path)
                  | None -> ())
              | [] -> ())
          | _ -> ()
        in
        let iterator =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun iter e ->
                visit e;
                Ast_iterator.default_iterator.expr iter e);
          }
        in
        iterator.structure iterator structure);
  }

(* ------------------------------------------------------------------ *)
(* D7: no per-row materialization inside scan/range/iter closures       *)
(* ------------------------------------------------------------------ *)

(* The flat-tuple refactor's contract (DESIGN §12): the closures handed to
   the cursor iterators run once per page-resident row, and boxing there
   (Tuple.make / Tuple.project / Array.map / Tuple_view.materialize) turns
   an allocation-free scan back into one allocation per row — the exact
   regression the cursor API exists to prevent.  Survivor boxing at a true
   API boundary (a probe into another structure, an aggregate insert) is
   sanctioned and carries a [.vmlint] allowlist entry with its
   justification.  Scoped to [lib/view] and [lib/relalg], the layers whose
   hot loops the contract covers; a warning, not an error, because the
   boundary is a judgment call. *)

let scan_iterators =
  [
    "Btree.range_views";
    "Btree.find_views";
    "Btree.iter_views_unmetered";
    "Btree.range";
    "Hash_file.scan_views";
    "Hash_file.lookup_views";
    "Hash_file.iter_views_unmetered";
    "Heap_file.scan_views";
    "Heap_file.iter_views_unmetered";
    "Materialized.range";
  ]

let materializers =
  [ "Tuple.make"; "Tuple.project"; "Array.map"; "Tuple_view.materialize" ]

let is_scan_iterator path =
  List.exists
    (fun m -> path = m || String.ends_with ~suffix:("." ^ m) path)
    scan_iterators

let is_materializer path =
  List.exists
    (fun m -> path = m || String.ends_with ~suffix:("." ^ m) path)
    materializers

(* Every materializer application anywhere under [expr]. *)
let find_materializers expr =
  let found = ref [] in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun iter e ->
          (match e.pexp_desc with
          | Pexp_apply (f, _) -> (
              match Rule.applied_path f with
              | Some path when is_materializer path ->
                  found := (path, e.pexp_loc) :: !found
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr iter e);
    }
  in
  iterator.expr iterator expr;
  List.rev !found

let d7 =
  {
    Rule.id = "D7";
    doc =
      "scan-loop hygiene (lib/view, lib/relalg): no Tuple.make / \
       Tuple.project / Array.map / Tuple_view.materialize inside a cursor \
       iterator's per-row closure; box survivors at API boundaries \
       (allowlisted) and evaluate everything else off the cells";
    example =
      "let all base out =\n\
      \  Btree.range_views base (fun v ->\n\
      \      out := Tuple_view.materialize v :: !out)";
    fix =
      "let survivors base ~compiled out =\n\
      \  Btree.range_views base (fun v ->\n\
      \      if Predicate.eval_view compiled v then\n\
      \        out := Tuple_view.materialize v :: !out)  (* boundary: allowlist *)";
    check =
      (fun ctx structure ->
        let in_scope =
          String.starts_with ~prefix:"lib/view" ctx.Rule.file
          || String.starts_with ~prefix:"lib/relalg" ctx.Rule.file
        in
        if in_scope then begin
          let visit e =
            match e.pexp_desc with
            | Pexp_apply (f, args) -> (
                match Rule.applied_path f with
                | Some head when is_scan_iterator head ->
                    List.iter
                      (fun arg ->
                        List.iter
                          (fun (path, loc) ->
                            ctx.Rule.report ~severity:Finding.Warning ~loc
                              (Printf.sprintf
                                 "%s inside a %s per-row closure boxes every \
                                  row of the scan: evaluate off the cursor's \
                                  cells (compare_col / get_* / eval_view) and \
                                  materialize only survivors at the API \
                                  boundary (allowlist the site if this is one)"
                                 path head))
                          (find_materializers arg))
                      (Rule.unlabelled args)
                | _ -> ())
            | _ -> ()
          in
          let iterator =
            {
              Ast_iterator.default_iterator with
              expr =
                (fun iter e ->
                  visit e;
                  Ast_iterator.default_iterator.expr iter e);
            }
          in
          iterator.structure iterator structure
        end);
  }

let all = [ d4; d5; d6; d7 ]
