(* Module universe and name resolution for the interprocedural passes.

   A "module" is a source file: [lib/hypo/hr.ml] defines module [Hr].  A
   function key is ["Module.fn"].  Resolution is purely syntactic, mirroring
   how this codebase names things: an unqualified call resolves into the
   current module; a qualified call [A.f] resolves if [A] is a known module
   or a local [module A = ...] alias whose target's last component is a
   known module; library-wrapper prefixes ([Vmat_index.Btree.f]) resolve by
   their last two components.  Anything else is unresolved and the caller
   decides how conservative to be. *)

open Parsetree

module Sset = Set.Make (String)

let module_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* Local [module B = Vmat_index.Btree] aliases: B -> Btree. *)
let aliases_of structure =
  List.filter_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_module
          {
            pmb_name = { txt = Some name; _ };
            pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
            _;
          } -> (
          match List.rev (Longident.flatten txt) with
          | last :: _ -> Some (name, last)
          | [] -> None)
      | _ -> None)
    structure

type fn = {
  fn_key : string;  (** "Module.name" *)
  fn_name : string;
  fn_params : Lambda.param list;
  fn_body : Parsetree.expression;
  fn_line : int;
}

(* Toplevel [let]-bound functions of one structure (simple variable patterns;
   lambdas read through Lambda.destructure so this sees the same shapes on
   every supported compiler). *)
let functions_of ~modname structure =
  let out = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = name; _ } -> (
                  match Lambda.destructure vb.pvb_expr with
                  | Lambda.Lambda (params, body) ->
                      let line, _ = Ast_util.position vb.pvb_pat.ppat_loc in
                      out :=
                        {
                          fn_key = modname ^ "." ^ name;
                          fn_name = name;
                          fn_params = params;
                          fn_body = body;
                          fn_line = line;
                        }
                        :: !out
                  | _ -> ())
              | _ -> ())
            bindings
      | _ -> ())
    structure;
  List.rev !out

type scope = {
  self : string;  (** module under analysis *)
  aliases : (string * string) list;
  universe : Sset.t;  (** all module names in the lint run *)
  locals : Sset.t;  (** toplevel value names of [self] *)
}

let scope ~file ~universe structure =
  {
    self = module_of_file file;
    aliases = aliases_of structure;
    universe;
    locals = Sset.of_list (Ast_util.toplevel_value_names structure);
  }

(* Resolve an applied path to a canonical "Module.fn" key.  [`Fn key] means
   a function the run has a summary slot for; [`Local] is an unqualified
   name that is not a toplevel function (parameter, let-binding — assumed
   transient and checked at its own definition site); [`Unknown] is a
   qualified path outside the universe. *)
let resolve scope path =
  match List.rev (String.split_on_char '.' path) with
  | [] -> `Local
  | [ name ] ->
      if Sset.mem scope.self scope.universe && Sset.mem name scope.locals then
        `Fn (scope.self ^ "." ^ name)
      else `Local
  | name :: m :: _ ->
      let m =
        match List.assoc_opt m scope.aliases with Some t -> t | None -> m
      in
      if Sset.mem m scope.universe then `Fn (m ^ "." ^ name) else `Unknown
