(* The .vmlint allowlist: one suppressed finding per line, with a mandatory
   justification —

     # comment
     D1 lib/storage/cost_meter.ml read-only category lookup table
     D3 lib/relalg/bag.ml:61 order re-established by the caller

   An entry matches a finding when the rule matches, the path matches
   exactly or as a path suffix, and (when given) the line matches.  Entries
   that match nothing are reported so suppressions cannot outlive the code
   they excused. *)

type entry = {
  rule : string;
  path : string;
  line : int option;
  justification : string;
  mutable used : bool;
}

type t = entry list

let empty : t = []

let parse_line lineno line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then Ok None
  else
    match String.split_on_char ' ' trimmed with
    | rule :: target :: rest when not (List.is_empty rest) ->
        let path, line_opt =
          match String.rindex_opt target ':' with
          | Some i -> (
              let file = String.sub target 0 i in
              let tail = String.sub target (i + 1) (String.length target - i - 1) in
              match int_of_string_opt tail with
              | Some n -> (file, Some n)
              | None -> (target, None))
          | None -> (target, None)
        in
        Ok
          (Some
             {
               rule;
               path;
               line = line_opt;
               justification = String.trim (String.concat " " rest);
               used = false;
             })
    | _ ->
        Error
          (Printf.sprintf
             "line %d: expected \"RULE path[:line] justification...\", got %S"
             lineno trimmed)

let of_string source =
  let lines = String.split_on_char '\n' source in
  let rec loop lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Ok None -> loop (lineno + 1) acc rest
        | Ok (Some entry) -> loop (lineno + 1) (entry :: acc) rest
        | Error _ as e -> e)
  in
  loop 1 [] lines

let load path =
  match Source.read_file path with
  | source -> of_string source
  | exception Sys_error message -> Error message

let path_matches ~entry_path ~file =
  entry_path = file
  ||
  let le = String.length entry_path and lf = String.length file in
  lf > le
  && String.sub file (lf - le) le = entry_path
  && file.[lf - le - 1] = '/'

let matches (t : t) (finding : Finding.t) =
  match
    List.find_opt
      (fun entry ->
        entry.rule = finding.Finding.rule
        && path_matches ~entry_path:entry.path ~file:finding.Finding.file
        && match entry.line with None -> true | Some n -> n = finding.Finding.line)
      t
  with
  | Some entry ->
      entry.used <- true;
      true
  | None -> false

let unused (t : t) = List.filter (fun entry -> not entry.used) t

(* Entries naming a rule id the engine doesn't know (typo'd, or a rule that
   was removed): these can never match and would otherwise hide forever
   behind the suffix-matching path logic. *)
let unknown_rules ~known (t : t) =
  List.filter (fun entry -> not (List.mem entry.rule known)) t
