(* The interprocedural layer (DESIGN §13): per-function summaries propagated
   to a fixpoint over the whole lint run, then consumed by the borrow rules.

   A summary records, per parameter, four monotone booleans — may be a
   cursor, may escape (be stored somewhere that outlives the call), may be
   returned (aliased into the result), may be mutated — plus one per-function
   fact: the call chain, if any, from this function to a storage mutator
   (Flat writes, Heap_file insert/delete, Buffer_pool traffic).  All facts
   only ever go from "no" to "yes", so the fixpoint terminates; the pass
   cap is a belt-and-braces bound, not a correctness requirement.

   The analysis itself is an abstract interpreter over "exposure": the set
   of tracked bindings (parameters of the function or lambda under analysis)
   that may be *part of the value* of an expression, threaded through
   let-aliases, tuples/constructors/records, branches and closure captures.
   A sink (ref/field/container store, or a call whose summary says the
   matching parameter escapes) fired on a non-empty exposure records an
   escape — and reports it, when the exposed binding is a borrowed cursor
   and a report callback is installed (rule D8).

   Soundness caveats (deliberate, documented in DESIGN §13): the analysis is
   syntactic and per-name — no types, no heap model.  Known false-negative
   shapes: a cursor smuggled through a *function-typed parameter* (the
   callee is unknown at the definition site and assumed transient), through
   an exception payload, or through a locally [let]-bound lambda invoked
   under a different name.  Known over-approximations: any exposed argument
   to a qualified function outside the lint run's universe counts as an
   escape unless the module is on the safe-stdlib list. *)

open Parsetree
module Smap = Map.Make (String)
module Sset = Callgraph.Sset

(* ------------------------------------------------------------------ *)
(* Summaries and the environment                                       *)
(* ------------------------------------------------------------------ *)

type info = {
  i_key : string;  (** "Module.fn" *)
  i_file : string;
  i_line : int;
  i_labels : string option array;  (** argument labels, [None] = positional *)
  i_names : string option array;  (** parameter names (simple patterns) *)
  mutable i_cursor : bool array;  (** parameter may be a borrowed cursor *)
  mutable i_escape : string option array;  (** why the parameter may escape *)
  mutable i_returns : bool array;  (** parameter may alias the result *)
  mutable i_mutates : bool array;  (** parameter may be mutated *)
  mutable i_storage : string list option;
      (** call chain from this function to a storage mutator *)
}

type env = {
  fns : (string, info) Hashtbl.t;
  universe : Sset.t;
  mutable_globals : (string, Sset.t) Hashtbl.t;
      (** per module: toplevel names bound to a mutable constructor *)
}

let universe env = env.universe
let find env key = Hashtbl.find_opt env.fns key

let is_mutable_global env ~modname ~name =
  match Hashtbl.find_opt env.mutable_globals modname with
  | Some names -> Sset.mem name names
  | None -> false

(* ------------------------------------------------------------------ *)
(* Built-in models                                                     *)
(* ------------------------------------------------------------------ *)

(* The last two path components, with local module aliases resolved, give
   the canonical "Module.fn" name used by every built-in table — matching
   both [Btree.insert] and [Vmat_index.Btree.insert]. *)
let canon (scope : Callgraph.scope) path =
  match List.rev (String.split_on_char '.' path) with
  | f :: m :: _ ->
      let m =
        match List.assoc_opt m scope.Callgraph.aliases with
        | Some target -> target
        | None -> m
      in
      Some (m, f)
  | _ -> None

(* Storage mutators: the D9 roots.  Anything that resolves to one of these
   transitively (through summaries) invalidates live cursors over the
   scanned storage — Buffer_pool traffic counts because a fetch may evict
   (modeled; pages are accounting entries, but the model is the contract). *)
let storage_roots =
  [
    "Flat.insert_at";
    "Flat.replace_at";
    "Flat.remove_at";
    "Flat.compact";
    "Heap_file.insert";
    "Heap_file.delete";
    "Buffer_pool.read";
    "Buffer_pool.write";
    "Buffer_pool.invalidate";
    "Buffer_pool.discard";
  ]

(* The cursor-yielding iterators: a lambda passed directly to one of these
   receives a borrowed Tuple_view.t as its first parameter.  (Btree.range
   and Materialized.range yield *boxed* rows and are deliberately absent.) *)
let cursor_iterators =
  [
    "Btree.range_views";
    "Btree.find_views";
    "Btree.iter_views_unmetered";
    "Hash_file.scan_views";
    "Hash_file.lookup_views";
    "Hash_file.iter_views_unmetered";
    "Heap_file.scan_views";
    "Heap_file.iter_views_unmetered";
  ]

(* Stdlib calls that store an argument into a longer-lived container. *)
let store_models =
  [
    ("Hashtbl.add", "a hash table");
    ("Hashtbl.replace", "a hash table");
    ("Queue.add", "a queue");
    ("Queue.push", "a queue");
    ("Queue.transfer", "a queue");
    ("Stack.push", "a stack");
    ("Array.set", "an array");
    ("Array.unsafe_set", "an array");
    ("Array.fill", "an array");
    ("Array.blit", "an array");
    ("Atomic.make", "an atomic");
    ("Atomic.set", "an atomic");
    ("Atomic.exchange", "an atomic");
    ("Atomic.compare_and_set", "an atomic");
  ]

(* Stdlib calls that mutate their receiver without storing a new value. *)
let mutator_models =
  [
    "Hashtbl.remove";
    "Hashtbl.reset";
    "Hashtbl.clear";
    "Hashtbl.filter_map_inplace";
    "Queue.pop";
    "Queue.take";
    "Queue.clear";
    "Stack.pop";
    "Stack.clear";
    "Array.sort";
    "Array.stable_sort";
    "Buffer.clear";
    "Buffer.reset";
  ]

let raise_models = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit" ]

(* Stdlib modules assumed transient: they may hold an argument only for the
   duration of the call (higher-order iteration) or inside the value they
   return (map/filter — covered because exposure propagates to the result).
   Member models above take precedence over this module-level default. *)
let safe_modules =
  [
    "List";
    "ListLabels";
    "Array";
    "ArrayLabels";
    "Option";
    "Result";
    "Either";
    "Fun";
    "Seq";
    "String";
    "StringLabels";
    "Bytes";
    "Char";
    "Int";
    "Int32";
    "Int64";
    "Nativeint";
    "Float";
    "Bool";
    "Printf";
    "Format";
    "Sys";
    "Filename";
    "Hashtbl";
    "Queue";
    "Stack";
    "Atomic";
    "Buffer";
    "Lazy";
    "Stdlib";
    "Domain";
    "Gc";
    "Printexc";
    "Lexing";
    "Map";
    "Set";
  ]

(* Constructors whose result is mutable storage (D10's binding evidence). *)
let mutable_constructors =
  [ "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create" ]

(* Constructors whose result is on the sanctioned-capture list (D10). *)
let sanctioned_constructors =
  [
    "Atomic.make";
    "Mvcc.create";
    "Mvcc.pin";
    "Flight.create";
    "Sketch.create";
    "Wallclock.start";
  ]

(* Modules whose values are safe to touch from a spawned domain (D10). *)
let sanctioned_modules = [ "Mvcc"; "Flight"; "Sketch"; "Wallclock"; "Atomic" ]

(* ------------------------------------------------------------------ *)
(* Exposure tokens                                                     *)
(* ------------------------------------------------------------------ *)

type tok = {
  k_id : int;
  k_desc : string;  (** source name, for messages *)
  k_cursor : bool;  (** tracked as a borrowed cursor *)
  k_param : int option;  (** index into the summarized function's params *)
}

let add_tok t ex = if List.exists (fun u -> u.k_id = t.k_id) ex then ex else t :: ex
let union a b = List.fold_left (fun acc t -> add_tok t acc) a b
let unions exs = List.fold_left union [] exs

type acc = {
  a_env : env;
  a_scope : Callgraph.scope;
  a_report : loc:Location.t -> string -> unit;  (** D8 escape reporter *)
  mutable a_escape : (int * string) list;
  mutable a_mutates : int list;
  mutable a_cursor : int list;
  mutable a_storage : string list option;
  mutable a_next : int;
}

let fresh_id acc =
  acc.a_next <- acc.a_next + 1;
  acc.a_next

let record_escape acc i why =
  if not (List.mem_assoc i acc.a_escape) then acc.a_escape <- (i, why) :: acc.a_escape

let record_mutates acc i =
  if not (List.mem i acc.a_mutates) then acc.a_mutates <- i :: acc.a_mutates

let record_cursor acc i =
  if not (List.mem i acc.a_cursor) then acc.a_cursor <- i :: acc.a_cursor

let record_storage acc chain =
  match acc.a_storage with Some _ -> () | None -> acc.a_storage <- Some chain

(* A sink: the exposed bindings may be stored somewhere that outlives the
   call.  Parameters feed the summary; borrowed cursors are reported. *)
let sink acc ~loc ex why =
  List.iter
    (fun t ->
      (match t.k_param with Some i -> record_escape acc i why | None -> ());
      if t.k_cursor then
        acc.a_report ~loc
          (Printf.sprintf
             "borrowed cursor [%s] %s: the view is only valid until the \
              underlying page is next mutated — box it at the boundary \
              (Tuple_view.materialize / project) or restructure so nothing \
              outlives the callback"
             t.k_desc why))
    ex

let lookup bindings name =
  match Smap.find_opt name bindings with Some toks -> toks | None -> []

(* A *direct* identifier (through type constraints only) — cursor marking
   must not read through field projections the way mutation rooting does:
   [Tuple_view.project t.schema ...] says nothing about [t] itself. *)
let rec direct_ident expr =
  match expr.pexp_desc with
  | Pexp_ident { txt = Longident.Lident name; _ } -> Some name
  | Pexp_constraint (inner, _) -> direct_ident inner
  | _ -> None

(* Mark the tracked roots of [expr] (through field projections) as mutated. *)
let mutate acc bindings expr =
  match Ast_util.root_ident expr with
  | Some (`Local name) ->
      List.iter
        (fun t -> match t.k_param with Some i -> record_mutates acc i | None -> ())
        (lookup bindings name)
  | _ -> ()

let mark_cursor acc bindings expr =
  match direct_ident expr with
  | Some name ->
      List.iter
        (fun t -> match t.k_param with Some i -> record_cursor acc i | None -> ())
        (lookup bindings name)
  | None -> ()

(* Every tracked binding occurring (as a value) anywhere under [expr] — the
   conservative exposure of constructs the interpreter doesn't enumerate,
   and of closure bodies (captures). *)
let occurs bindings expr =
  let out = ref [] in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun iter e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } ->
              out := union !out (lookup bindings n)
          | _ -> ());
          Ast_iterator.default_iterator.expr iter e);
    }
  in
  iterator.expr iterator expr;
  !out

let bind_pattern bindings pat ex =
  List.fold_left (fun b n -> Smap.add n ex b) bindings (Ast_util.pattern_vars pat)

let pat_var (p : Lambda.param) =
  let rec var pat =
    match pat.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (inner, _) -> var inner
    | Ppat_alias (_, { txt; _ }) -> Some txt
    | _ -> None
  in
  var p.Lambda.l_pat

let label_of (p : Lambda.param) =
  match p.Lambda.l_label with
  | Asttypes.Nolabel -> None
  | Asttypes.Labelled l | Asttypes.Optional l -> Some l

(* Match call-site arguments to summarized parameters: positional arguments
   fill unlabelled parameters in order, labelled arguments match by name.
   [full] is false for a partial application (some positional parameter
   unfilled) — the result is then a closure holding the given arguments. *)
let match_args labels args =
  let n = Array.length labels in
  let used = Array.make n false in
  let matched = ref [] in
  let next_pos = ref 0 in
  List.iter
    (fun (label, arg) ->
      let name =
        match label with
        | Asttypes.Nolabel -> None
        | Asttypes.Labelled l | Asttypes.Optional l -> Some l
      in
      let rec seek i =
        if i >= n then None
        else if (not used.(i)) && labels.(i) = name then Some i
        else seek (i + 1)
      in
      let start = match name with None -> !next_pos | Some _ -> 0 in
      match seek start with
      | Some i ->
          used.(i) <- true;
          if name = None then next_pos := i + 1;
          matched := (i, arg) :: !matched
      | None -> ())
    args;
  let full = ref true in
  Array.iteri (fun i l -> if l = None && not used.(i) then full := false) labels;
  (List.rev !matched, !full)

let is_member name2 table =
  List.exists (fun m -> m = name2) table

(* The view-positioned arguments of a [Tuple_view.f] application: receiver
   first, except [on] (builds a view *from a page*, no view argument) and
   [compare_cols] (two views, at positions 0 and 2). *)
let view_args f unlabelled =
  match (f, unlabelled) with
  | "on", _ -> []
  | "compare_cols", a :: _ :: b :: _ -> [ a; b ]
  | _, a :: _ -> [ a ]
  | _, [] -> []

(* Does [body] use [name] as a cursor: a Tuple_view accessor applied to it,
   or [name] passed into a summarized callee's cursor-positioned parameter? *)
let cursor_scan acc name body =
  Ast_util.expr_contains
    (fun e ->
      match e.pexp_desc with
      | Pexp_apply (head, args) -> (
          match Ast_util.applied_path head with
          | None -> false
          | Some path -> (
              let roots_at_name arg =
                match direct_ident arg with Some n -> n = name | None -> false
              in
              match canon acc.a_scope path with
              | Some ("Tuple_view", f) ->
                  List.exists roots_at_name (view_args f (Ast_util.unlabelled args))
              | _ -> (
                  match Callgraph.resolve acc.a_scope path with
                  | `Fn key -> (
                      match find acc.a_env key with
                      | Some info ->
                          let matched, _ = match_args info.i_labels args in
                          List.exists
                            (fun (i, arg) ->
                              info.i_cursor.(i) && roots_at_name arg)
                            matched
                      | None -> false)
                  | _ -> false)))
      | _ -> false)
    body

(* ------------------------------------------------------------------ *)
(* The interpreter                                                     *)
(* ------------------------------------------------------------------ *)

let rec eval acc bindings expr =
  match Lambda.destructure expr with
  | Lambda.Lambda (params, body) ->
      eval_lambda acc bindings ~cursor_hint:false params body
  | Lambda.Cases cases ->
      (* [function ...] lambda: anonymous scrutinee, bodies analyzed with
         case variables untracked; value exposure = captures. *)
      List.iter
        (fun c ->
          let b = bind_pattern bindings c.pc_lhs [] in
          Option.iter (fun g -> ignore (eval acc b g)) c.pc_guard;
          ignore (eval acc b c.pc_rhs))
        cases;
      occurs bindings expr
  | Lambda.Not_a_lambda -> (
      match expr.pexp_desc with
      | Pexp_ident { txt = Longident.Lident n; _ } -> lookup bindings n
      | Pexp_ident _ -> []
      | Pexp_constant _ -> []
      | Pexp_let (_, vbs, body) ->
          let b' =
            List.fold_left
              (fun b vb ->
                let ex = eval acc bindings vb.pvb_expr in
                bind_pattern b vb.pvb_pat ex)
              bindings vbs
          in
          eval acc b' body
      | Pexp_apply (head, args) -> eval_apply acc bindings expr head args
      | Pexp_sequence (a, b) ->
          ignore (eval acc bindings a);
          eval acc bindings b
      | Pexp_tuple es | Pexp_array es -> unions (List.map (eval acc bindings) es)
      | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
          match arg with Some e -> eval acc bindings e | None -> [])
      | Pexp_record (fields, base) ->
          let ex = unions (List.map (fun (_, v) -> eval acc bindings v) fields) in
          let bx = match base with Some b -> eval acc bindings b | None -> [] in
          union ex bx
      | Pexp_field (e, _) -> eval acc bindings e
      | Pexp_setfield (lhs, _, rhs) ->
          let ex = eval acc bindings rhs in
          sink acc ~loc:expr.pexp_loc ex "stored into a mutable field";
          mutate acc bindings lhs;
          ignore (eval acc bindings lhs);
          []
      | Pexp_ifthenelse (c, t, e) ->
          ignore (eval acc bindings c);
          let tx = eval acc bindings t in
          let ex = match e with Some e -> eval acc bindings e | None -> [] in
          union tx ex
      | Pexp_match (scrutinee, cases) | Pexp_try (scrutinee, cases) ->
          let sx = eval acc bindings scrutinee in
          unions
            (List.map
               (fun c ->
                 let b = bind_pattern bindings c.pc_lhs sx in
                 Option.iter (fun g -> ignore (eval acc b g)) c.pc_guard;
                 eval acc b c.pc_rhs)
               cases)
      | Pexp_constraint (e, _) -> eval acc bindings e
      | Pexp_coerce (e, _, _) -> eval acc bindings e
      | Pexp_open (_, e) | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e) ->
          eval acc bindings e
      | Pexp_while (c, body) ->
          ignore (eval acc bindings c);
          ignore (eval acc bindings body);
          []
      | Pexp_for (pat, lo, hi, _, body) ->
          ignore (eval acc bindings lo);
          ignore (eval acc bindings hi);
          ignore (eval acc (bind_pattern bindings pat []) body);
          []
      | Pexp_assert e ->
          ignore (eval acc bindings e);
          []
      | Pexp_lazy e -> eval acc bindings e
      | _ ->
          (* Constructs the interpreter doesn't enumerate: conservative
             exposure (any tracked occurrence), no sinks. *)
          occurs bindings expr)

and eval_lambda acc bindings ~cursor_hint params body =
  (* A lambda: analyze the body with its own parameters tracked — a
     parameter is tracked as a cursor when this lambda is the direct
     callback of a cursor iterator (hint, first parameter) or when the body
     itself uses it as a cursor. *)
  let b' =
    List.fold_left
      (fun (b, idx) p ->
        match pat_var p with
        | Some n ->
            let cursor = (cursor_hint && idx = 0) || cursor_scan acc n body in
            let t =
              { k_id = fresh_id acc; k_desc = n; k_cursor = cursor; k_param = None }
            in
            (Smap.add n [ t ] b, idx + 1)
        | None -> (bind_pattern b p.Lambda.l_pat [], idx + 1))
      (bindings, 0) params
    |> fst
  in
  ignore (eval acc b' body);
  (* The lambda's value exposure: the tracked bindings it captures. *)
  let shadowless =
    List.fold_left
      (fun b p -> bind_pattern b p.Lambda.l_pat [])
      bindings params
  in
  occurs shadowless body

and eval_apply acc bindings expr head args =
  let loc = expr.pexp_loc in
  match Ast_util.applied_path head with
  | None ->
      (* Applying a non-identifier (field projection, immediate lambda):
         evaluate everything and propagate — the callee is opaque but local,
         so storing is assumed to happen at a visible sink instead. *)
      let hx = eval acc bindings head in
      let ax = List.map (fun (_, a) -> eval acc bindings a) args in
      unions (hx :: ax)
  | Some path -> apply_path acc bindings ~loc path args

and apply_path acc bindings ~loc path args =
  let eval_args () = List.map (fun (_, a) -> eval acc bindings a) args in
  match (path, args) with
  | "@@", (_, f) :: rest when not (List.is_empty rest) ->
      (* f @@ x — re-associate so iterator callbacks behind @@ still anchor *)
      re_apply acc bindings ~loc f rest
  | "|>", [ x; (_, f) ] -> re_apply acc bindings ~loc f [ x ]
  | ":=", [ (_, lhs); (_, rhs) ] ->
      let ex = eval acc bindings rhs in
      sink acc ~loc ex "stored into a ref";
      mutate acc bindings lhs;
      ignore (eval acc bindings lhs);
      []
  | "ref", _ ->
      let ex = unions (eval_args ()) in
      sink acc ~loc ex "stored into a ref";
      []
  | ("incr" | "decr"), (_, arg) :: _ ->
      mutate acc bindings arg;
      []
  | "ignore", _ ->
      ignore (eval_args ());
      []
  | _ when List.mem path raise_models ->
      (* Exception payloads are not tracked (documented false negative). *)
      ignore (eval_args ());
      []
  | _ -> (
      match canon acc.a_scope path with
      | Some ("Tuple_view", f) ->
          (* The boxing/reading boundary: every accessor returns a fresh
             boxed value or a scalar; set/set_slot mutate the cursor. *)
          let views = view_args f (Ast_util.unlabelled args) in
          List.iter (fun a -> mark_cursor acc bindings a) views;
          if f = "set" || f = "set_slot" then
            List.iter (fun a -> mutate acc bindings a) views;
          ignore (eval_args ());
          []
      | Some (m, f) when is_member (m ^ "." ^ f) storage_roots ->
          record_storage acc [ m ^ "." ^ f ];
          (match Ast_util.unlabelled args with
          | receiver :: _ -> mutate acc bindings receiver
          | [] -> ());
          ignore (eval_args ());
          []
      | name2 -> (
          let member = match name2 with Some (m, f) -> m ^ "." ^ f | None -> path in
          match List.assoc_opt member store_models with
          | Some container ->
              (match Ast_util.unlabelled args with
              | receiver :: _ -> mutate acc bindings receiver
              | [] -> ());
              let ex = unions (eval_args ()) in
              sink acc ~loc ex (Printf.sprintf "stored into %s" container);
              []
          | None ->
              if is_member member mutator_models then begin
                (match Ast_util.unlabelled args with
                | receiver :: _ -> mutate acc bindings receiver
                | [] -> ());
                ignore (eval_args ());
                []
              end
              else
                let hint = is_member member cursor_iterators in
                apply_resolved acc bindings ~loc ~hint path args))

(* Re-dispatch for @@ / |> with the real head. *)
and re_apply acc bindings ~loc f args =
  match Ast_util.applied_path f with
  | Some path -> apply_path acc bindings ~loc path args
  | None ->
      let hx = eval acc bindings f in
      let ax = List.map (fun (_, a) -> eval acc bindings a) args in
      unions (hx :: ax)

and apply_resolved acc bindings ~loc ~hint path args =
  (* Evaluate arguments — lambdas handed to a cursor iterator get their
     first parameter tracked as a borrowed cursor. *)
  let eval_arg a =
    match Lambda.destructure a with
    | Lambda.Lambda (params, body) when hint ->
        eval_lambda acc bindings ~cursor_hint:true params body
    | _ -> eval acc bindings a
  in
  match Callgraph.resolve acc.a_scope path with
  | `Fn key -> (
      match find acc.a_env key with
      | None ->
          (* A toplevel value that is not a summarized function (a constant,
             a closure built by partial application): assumed transient. *)
          unions (List.map (fun (_, a) -> eval_arg a) args)
      | Some info ->
          let evaluated = List.map (fun (l, a) -> (l, a, eval_arg a)) args in
          let matched, full =
            match_args info.i_labels (List.map (fun (l, a, _) -> (l, a)) evaluated)
          in
          if not full then
            (* Partial application: the result closes over the arguments. *)
            unions (List.map (fun (_, _, ex) -> ex) evaluated)
          else begin
            (match info.i_storage with
            | Some chain -> record_storage acc (info.i_key :: chain)
            | None -> ());
            let result = ref [] in
            List.iter
              (fun (i, arg) ->
                let ex =
                  match
                    List.find_opt (fun (_, a, _) -> a == arg) evaluated
                  with
                  | Some (_, _, ex) -> ex
                  | None -> []
                in
                (match info.i_escape.(i) with
                | Some why when not (List.is_empty ex) ->
                    sink acc ~loc ex
                      (Printf.sprintf "passed to %s, whose parameter [%s] may \
                                       escape (%s)"
                         info.i_key
                         (match info.i_names.(i) with Some n -> n | None -> "_")
                         why)
                | _ -> ());
                if info.i_mutates.(i) then mutate acc bindings arg;
                if info.i_cursor.(i) then mark_cursor acc bindings arg;
                if info.i_returns.(i) then result := union !result ex)
              matched;
            !result
          end)
  | `Local ->
      (* Unqualified non-toplevel head: a parameter or local binding.
         Assumed transient (its definition site is checked on its own);
         exposure propagates through the result. *)
      unions (List.map (fun (_, a) -> eval_arg a) args)
  | `Unknown ->
      let exs = List.map (fun (_, a) -> eval_arg a) args in
      let modname =
        match canon acc.a_scope path with Some (m, _) -> m | None -> path
      in
      let is_module =
        String.length modname > 0 && modname.[0] >= 'A' && modname.[0] <= 'Z'
      in
      (* Operators ([+.], [@], ...) and lowercase heads reaching here are
         stdlib pervasives, not modules that could store anything. *)
      if (not is_module) || List.mem modname safe_modules then unions exs
      else begin
        (* No summary, not on the safe list: assume it may store. *)
        sink acc ~loc (unions exs)
          (Printf.sprintf "passed to %s, which has no summary in this lint \
                           run and may store its argument" path);
        []
      end

(* ------------------------------------------------------------------ *)
(* Per-function analysis and the fixpoint                              *)
(* ------------------------------------------------------------------ *)

let null_report ~loc:_ _ = ()

(* Analyze one summarized function: track its parameters (cursor flags from
   the current fixpoint state), evaluate the body, record which parameters
   reach the result. *)
let analyze ?(report = null_report) env scope (fn : Callgraph.fn) (info : info) =
  let acc =
    {
      a_env = env;
      a_scope = scope;
      a_report = report;
      a_escape = [];
      a_mutates = [];
      a_cursor = [];
      a_storage = None;
      a_next = 0;
    }
  in
  let bindings, _ =
    List.fold_left
      (fun (b, idx) p ->
        match pat_var p with
        | Some n ->
            let t =
              {
                k_id = fresh_id acc;
                k_desc = n;
                k_cursor = info.i_cursor.(idx);
                k_param = Some idx;
              }
            in
            (Smap.add n [ t ] b, idx + 1)
        | None -> (bind_pattern b p.Lambda.l_pat [], idx + 1))
      (Smap.empty, 0) fn.Callgraph.fn_params
  in
  let ret = eval acc bindings fn.Callgraph.fn_body in
  let returns =
    List.filter_map (fun t -> t.k_param) ret |> List.sort_uniq Int.compare
  in
  (acc, returns)

(* Analyze a bare toplevel expression (a non-function [let] or [let () =]):
   no parameters of its own, but lambdas inside still get checked. *)
let check_expr ?(report = null_report) env scope expr =
  let acc =
    {
      a_env = env;
      a_scope = scope;
      a_report = report;
      a_escape = [];
      a_mutates = [];
      a_cursor = [];
      a_storage = None;
      a_next = 0;
    }
  in
  ignore (eval acc Smap.empty expr)

let merge info (acc, returns) =
  let changed = ref false in
  let set_bool arr i =
    if not arr.(i) then begin
      arr.(i) <- true;
      changed := true
    end
  in
  List.iter (fun i -> set_bool info.i_cursor i) acc.a_cursor;
  List.iter (fun i -> set_bool info.i_mutates i) acc.a_mutates;
  List.iter (fun i -> set_bool info.i_returns i) returns;
  List.iter
    (fun (i, why) ->
      match info.i_escape.(i) with
      | Some _ -> ()
      | None ->
          info.i_escape.(i) <- Some why;
          changed := true)
    acc.a_escape;
  (match (info.i_storage, acc.a_storage) with
  | None, Some chain ->
      info.i_storage <- Some chain;
      changed := true
  | _ -> ());
  !changed

let fresh_info ~file (fn : Callgraph.fn) =
  let n = List.length fn.Callgraph.fn_params in
  {
    i_key = fn.Callgraph.fn_key;
    i_file = file;
    i_line = fn.Callgraph.fn_line;
    i_labels = Array.of_list (List.map label_of fn.Callgraph.fn_params);
    i_names = Array.of_list (List.map pat_var fn.Callgraph.fn_params);
    i_cursor = Array.make n false;
    i_escape = Array.make n None;
    i_returns = Array.make n false;
    i_mutates = Array.make n false;
    i_storage = None;
  }

(* Toplevel names bound to a mutable constructor (module-level D10 arm). *)
let mutable_toplevel structure =
  List.filter_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          Some
            (List.filter_map
               (fun vb ->
                 match vb.pvb_pat.ppat_desc with
                 | Ppat_var { txt; _ } -> (
                     match vb.pvb_expr.pexp_desc with
                     | Pexp_apply (head, _) -> (
                         match Ast_util.applied_path head with
                         | Some p when List.mem p mutable_constructors -> Some txt
                         | _ -> None)
                     | _ -> None)
                 | _ -> None)
               bindings)
      | _ -> None)
    structure
  |> List.concat

(* Build the environment for one lint run: collect every summarized function
   of every parsed file, then iterate to a fixpoint.  The pass cap is a
   backstop; every fact is monotone so convergence is guaranteed. *)
let build parsed =
  let universe =
    Sset.of_list (List.map (fun (f, _) -> Callgraph.module_of_file f) parsed)
  in
  let env =
    {
      fns = Hashtbl.create 256;
      universe;
      mutable_globals = Hashtbl.create 16;
    }
  in
  let units =
    List.map
      (fun (file, structure) ->
        let modname = Callgraph.module_of_file file in
        let scope = Callgraph.scope ~file ~universe structure in
        let fns = Callgraph.functions_of ~modname structure in
        List.iter
          (fun fn ->
            Hashtbl.replace env.fns fn.Callgraph.fn_key (fresh_info ~file fn))
          fns;
        Hashtbl.replace env.mutable_globals modname
          (Sset.of_list (mutable_toplevel structure));
        (scope, fns))
      parsed
  in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < 40 do
    changed := false;
    incr passes;
    List.iter
      (fun (scope, fns) ->
        List.iter
          (fun fn ->
            match Hashtbl.find_opt env.fns fn.Callgraph.fn_key with
            | Some info ->
                if merge info (analyze env scope fn info) then changed := true
            | None -> ())
          fns)
      units
  done;
  env

(* An environment for a single already-parsed structure (the golden-fixture
   path): the fixture's own helpers resolve interprocedurally. *)
let build_one ~file structure = build [ (file, structure) ]

(* ------------------------------------------------------------------ *)
(* Debug dump (--summaries-out)                                        *)
(* ------------------------------------------------------------------ *)

let dump env =
  let buf = Buffer.create 4096 in
  let entries =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.fns [])
  in
  List.iter
    (fun (key, info) ->
      let flags arr =
        Array.to_list arr
        |> List.mapi (fun i b -> (i, b))
        |> List.filter_map (fun (i, b) ->
               if b then
                 Some (match info.i_names.(i) with Some n -> n | None -> string_of_int i)
               else None)
        |> String.concat ","
      in
      let escapes =
        Array.to_list info.i_escape
        |> List.mapi (fun i e -> (i, e))
        |> List.filter_map (fun (i, e) ->
               match e with
               | Some why ->
                   Some
                     (Printf.sprintf "%s:%s"
                        (match info.i_names.(i) with
                        | Some n -> n
                        | None -> string_of_int i)
                        why)
               | None -> None)
        |> String.concat "; "
      in
      Buffer.add_string buf
        (Printf.sprintf
           "%s (%s:%d)\n  cursor=[%s] returns=[%s] mutates=[%s]\n  escapes=[%s]\n  storage=%s\n"
           key info.i_file info.i_line (flags info.i_cursor)
           (flags info.i_returns) (flags info.i_mutates) escapes
           (match info.i_storage with
           | Some chain -> String.concat " -> " chain
           | None -> "-")))
    entries;
  Buffer.contents buf
