type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

let severity_rank = function Error -> 1 | Warning -> 0

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

(* Canonical report order: by file, then position, then rule — independent of
   the order rules happen to run in (the linter holds itself to its own D3). *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let to_human f =
  Printf.sprintf "%s:%d:%d \xc2\xb7 %s \xc2\xb7 %s [%s]" f.file f.line f.col f.rule
    f.message (severity_name f.severity)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (json_escape f.rule)
    (severity_name f.severity)
    (json_escape f.file) f.line f.col (json_escape f.message)

let list_to_json = function
  | [] -> "[]\n"
  | findings ->
      "[\n  " ^ String.concat ",\n  " (List.map to_json findings) ^ "\n]\n"
