(* The small AST toolbox shared by the per-expression rules (via Rule's
   re-exports) and the interprocedural layer (Callgraph/Summary, which sit
   *below* Rule because the rule context carries a Summary.env).

   Version-portability note: everything here pattern-matches only Parsetree
   constructors that are stable across the OCaml versions in CI (5.1/5.2) —
   identifiers, applications, constructors, let/sequence/tuple/record/field/
   if/match/try/constraint — and always carries a wildcard fallback.  Lambda
   destructuring, the one construct whose shape changed in 5.2, lives in the
   version-selected Lambda module. *)

let path_of_longident lid = String.concat "." (Longident.flatten lid)

let position (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

open Parsetree

(* The root identifier of an access path, reading through record projections
   and applications: [t.meter] roots at [t]; [(meter env)] roots at [env]
   (the first unlabelled argument — the receiver in this codebase's
   convention); [Globals.meter] roots at the module path itself. *)
let rec root_ident expr =
  match expr.pexp_desc with
  | Pexp_ident { txt = Longident.Lident name; _ } -> Some (`Local name)
  | Pexp_ident { txt; _ } -> Some (`Qualified (path_of_longident txt))
  | Pexp_field (inner, _) -> root_ident inner
  | Pexp_constraint (inner, _) -> root_ident inner
  | Pexp_apply (_, args) -> (
      match
        List.find_opt (fun (label, _) -> label = Asttypes.Nolabel) args
      with
      | Some (_, arg) -> root_ident arg
      | None -> None)
  | _ -> None

(* The name an applied function resolves to, if it is a plain identifier. *)
let applied_path expr =
  match expr.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (path_of_longident txt)
  | _ -> None

let unlabelled args =
  List.filter_map
    (fun (label, arg) -> if label = Asttypes.Nolabel then Some arg else None)
    args

(* Does any sub-expression satisfy [p]?  Full traversal via Ast_iterator, so
   it sees through every construct of the running compiler's Parsetree. *)
let expr_contains p expr =
  let found = ref false in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun iter e ->
          if p e then found := true;
          if not !found then Ast_iterator.default_iterator.expr iter e);
    }
  in
  iterator.expr iterator expr;
  !found

(* All variable names bound by a pattern (through aliases, tuples,
   constructors, records, or-patterns, constraints). *)
let pattern_vars pat =
  let names = ref [] in
  let iterator =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun iter p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> names := txt :: !names
          | Ppat_alias (_, { txt; _ }) -> names := txt :: !names
          | _ -> ());
          Ast_iterator.default_iterator.pat iter p);
    }
  in
  iterator.pat iterator pat;
  List.rev !names

(* Toplevel value names bound by [let] at the structure's outermost layer
   (simple variable patterns only, read through constraints/aliases). *)
let toplevel_value_names structure =
  let names = ref [] in
  let rec pattern_names pat =
    match pat.ppat_desc with
    | Ppat_var { txt; _ } -> names := txt :: !names
    | Ppat_alias (inner, { txt; _ }) ->
        names := txt :: !names;
        pattern_names inner
    | Ppat_constraint (inner, _) -> pattern_names inner
    | Ppat_tuple pats -> List.iter pattern_names pats
    | _ -> ()
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter (fun vb -> pattern_names vb.pvb_pat) bindings
      | _ -> ())
    structure;
  !names

(* Names of record fields declared [mutable] anywhere in this file. *)
let mutable_field_names structure =
  let fields = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
          List.iter
            (fun decl ->
              match decl.ptype_kind with
              | Ptype_record labels ->
                  List.iter
                    (fun label ->
                      if label.pld_mutable = Asttypes.Mutable then
                        fields := label.pld_name.txt :: !fields)
                    labels
              | _ -> ())
            decls
      | _ -> ())
    structure;
  !fields
