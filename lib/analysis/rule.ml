(* The rule interface.  The AST toolbox the rules share lives in Ast_util
   (re-exported here so rule code reads [Rule.applied_path] as before); the
   interprocedural context a rule may consult lives in Summary.

   Version-portability note: rules pattern-match only Parsetree constructors
   that are stable across the OCaml versions in CI (5.1/5.2) — identifiers,
   applications, constructors, let/sequence/tuple/record/field/if/match/try/
   constraint — and always carry a wildcard fallback.  Lambda destructuring,
   the one shape that changed in 5.2, is confined to the version-selected
   Lambda module used by the Summary layer. *)

type ctx = {
  file : string;  (** path as reported in findings *)
  env : Summary.env;  (** interprocedural summaries for the whole lint run *)
  report : severity:Finding.severity -> loc:Location.t -> string -> unit;
      (** record one finding (the driver fills in the rule id) *)
}

type t = {
  id : string;
  doc : string;  (** one-line summary, shown by [vmlint --rules] *)
  example : string;  (** minimal firing program, shown by [vmlint --explain] *)
  fix : string;  (** the idiomatic fix for [example] *)
  check : ctx -> Parsetree.structure -> unit;
}

(* Re-exports: the shared AST toolbox. *)

let path_of_longident = Ast_util.path_of_longident
let position = Ast_util.position
let root_ident = Ast_util.root_ident
let applied_path = Ast_util.applied_path
let unlabelled = Ast_util.unlabelled
let expr_contains = Ast_util.expr_contains
let toplevel_value_names = Ast_util.toplevel_value_names
let mutable_field_names = Ast_util.mutable_field_names
