(* Source discovery and parsing.  Discovery returns paths in sorted order so
   a report never depends on readdir order (the linter obeys its own D3);
   parsing uses the running compiler's own frontend (compiler-libs), so the
   linter accepts exactly the language the build does. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec discover path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.filter (fun name ->
           (* _build, .git and friends are never lint targets *)
           String.length name > 0 && name.[0] <> '_' && name.[0] <> '.')
    |> List.sort String.compare
    |> List.concat_map (fun name -> discover (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let discover_all paths = List.concat_map discover paths

let parse_string ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn ->
      let message =
        match Location.error_of_exn exn with
        | Some (`Ok report) ->
            Format.asprintf "%a" Location.print_report report
        | _ -> Printexc.to_string exn
      in
      Error message

let parse_file path = parse_string ~file:path (read_file path)
