(* Borrow and domain-capture rules D8-D10: the consumers of the
   interprocedural summaries (Summary / Callgraph, DESIGN §13).

   D8  borrow discipline — a borrowed Tuple_view.t cursor must not outlive
       its scan callback, including escapes through callees up to the
       summary fixpoint.
   D9  no mutation while borrowed — inside a scan callback (and its callees)
       nothing may mutate the scanned storage or drive buffer-pool traffic.
   D10 domain-capture races — no mutable value reaches a Domain.spawn
       closure unless it is on the sanctioned-capture list. *)

open Parsetree

let scope_of ctx structure =
  Callgraph.scope ~file:ctx.Rule.file
    ~universe:(Summary.universe ctx.Rule.env)
    structure

(* ------------------------------------------------------------------ *)
(* D8: borrow discipline for zero-copy cursors                          *)
(* ------------------------------------------------------------------ *)

let d8 =
  {
    Rule.id = "D8";
    doc =
      "borrow discipline: a Tuple_view.t received by a scan callback must \
       not be stored, returned, or captured by an outliving closure — \
       including escapes through callees (summary fixpoint); box at the \
       materialize/project boundary instead";
    example =
      "let scan base out =\n\
      \  Btree.iter_views_unmetered base (fun v -> out := v :: !out)";
    fix =
      "let scan base out =\n\
      \  Btree.iter_views_unmetered base (fun v ->\n\
      \      out := Tuple_view.materialize v :: !out)";
    check =
      (fun ctx structure ->
        let env = ctx.Rule.env in
        let scope = scope_of ctx structure in
        let modname = Callgraph.module_of_file ctx.Rule.file in
        let report ~loc message =
          ctx.Rule.report ~severity:Finding.Error ~loc message
        in
        let fns = Callgraph.functions_of ~modname structure in
        let fn_names = List.map (fun fn -> fn.Callgraph.fn_name) fns in
        List.iter
          (fun fn ->
            match Summary.find env fn.Callgraph.fn_key with
            | Some info -> ignore (Summary.analyze ~report env scope fn info)
            | None -> ())
          fns;
        (* Toplevel code that is not a summarized function: bare evals and
           non-lambda lets still contain lambdas worth checking. *)
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_eval (expr, _) -> Summary.check_expr ~report env scope expr
            | Pstr_value (_, bindings) ->
                List.iter
                  (fun vb ->
                    let is_fn =
                      match vb.pvb_pat.ppat_desc with
                      | Ppat_var { txt; _ } -> List.mem txt fn_names
                      | _ -> false
                    in
                    if not is_fn then
                      Summary.check_expr ~report env scope vb.pvb_expr)
                  bindings
            | _ -> ())
          structure);
  }

(* ------------------------------------------------------------------ *)
(* D9: no storage mutation while a cursor is borrowed                   *)
(* ------------------------------------------------------------------ *)

let storage_hit scope env path =
  match Summary.canon scope path with
  | Some (m, f) when List.mem (m ^ "." ^ f) Summary.storage_roots ->
      Some [ m ^ "." ^ f ]
  | _ -> (
      match Callgraph.resolve scope path with
      | `Fn key -> (
          match Summary.find env key with
          | Some info -> (
              match info.Summary.i_storage with
              | Some chain -> Some (info.Summary.i_key :: chain)
              | None -> None)
          | None -> None)
      | _ -> None)

let is_cursor_iterator scope path =
  match Summary.canon scope path with
  | Some (m, f) -> List.mem (m ^ "." ^ f) Summary.cursor_iterators
  | None -> false

let d9 =
  {
    Rule.id = "D9";
    doc =
      "no mutation while borrowed: inside a scan callback (and its callees) \
       nothing may mutate the scanned storage (Flat writes, Heap_file \
       insert/delete) or drive Buffer_pool traffic that may evict the page \
       under the live cursor";
    example =
      "let purge heap rows =\n\
      \  Heap_file.scan_views heap (fun v ->\n\
      \      if Tuple_view.get_int v 0 = 0 then Heap_file.delete heap rows)";
    fix =
      "let purge heap rows =\n\
      \  let doomed = ref [] in\n\
      \  Heap_file.scan_views heap (fun v ->\n\
      \      if Tuple_view.get_int v 0 = 0 then\n\
      \        doomed := Tuple_view.tid v :: !doomed);\n\
      \  List.iter (fun tid -> Heap_file.delete heap tid) !doomed";
    check =
      (fun ctx structure ->
        let env = ctx.Rule.env in
        let scope = scope_of ctx structure in
        let report_hit head ~loc chain =
          let is_pool =
            match chain with
            | [ root ] -> String.length root >= 11 && String.sub root 0 11 = "Buffer_pool"
            | _ -> false
          in
          let what =
            match chain with
            | [ root ] ->
                if is_pool then
                  Printf.sprintf
                    "%s triggers (modeled) buffer-pool traffic that may evict \
                     the page under the live cursor"
                    root
                else Printf.sprintf "%s mutates the scanned storage" root
            | _ ->
                Printf.sprintf
                  "this call reaches a storage mutator (%s)"
                  (String.concat " -> " chain)
          in
          ctx.Rule.report ~severity:Finding.Error ~loc
            (Printf.sprintf
               "%s while a borrowed cursor from %s is live: collect boxed \
                survivors (or tids) during the scan and mutate/probe after it"
               what head)
        in
        (* Every mutating application under a scan callback's body. *)
        let check_callback head callback =
          let visit e =
            match e.pexp_desc with
            | Pexp_apply (f, _) -> (
                match Ast_util.applied_path f with
                | Some path -> (
                    match storage_hit scope env path with
                    | Some chain -> report_hit head ~loc:e.pexp_loc chain
                    | None -> ())
                | None -> ())
            | _ -> ()
          in
          let iterator =
            {
              Ast_iterator.default_iterator with
              expr =
                (fun iter e ->
                  visit e;
                  Ast_iterator.default_iterator.expr iter e);
            }
          in
          iterator.expr iterator callback
        in
        let visit e =
          match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              match Ast_util.applied_path f with
              | Some head when is_cursor_iterator scope head ->
                  List.iter
                    (fun arg ->
                      if Lambda.is_lambda arg then check_callback head arg
                      else
                        (* A named function passed as the callback: its own
                           summary carries any storage chain. *)
                        match Ast_util.applied_path arg with
                        | Some path -> (
                            match storage_hit scope env path with
                            | Some chain ->
                                report_hit head ~loc:arg.pexp_loc chain
                            | None -> ())
                        | None -> ())
                    (Ast_util.unlabelled args)
              | _ -> ())
          | _ -> ()
        in
        let iterator =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun iter e ->
                visit e;
                Ast_iterator.default_iterator.expr iter e);
          }
        in
        iterator.structure iterator structure);
  }

(* ------------------------------------------------------------------ *)
(* D10: domain-capture races                                            *)
(* ------------------------------------------------------------------ *)

module Sset = Callgraph.Sset

(* Free value names of an expression: every unqualified identifier
   occurrence minus every name bound by any pattern inside it (lambda
   parameters, lets, match cases).  Over-approximates binders (a capture
   shadow-reused inside is excluded), which errs toward silence. *)
let free_names expr =
  let idents = ref Sset.empty in
  let bound = ref Sset.empty in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun iter e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } ->
              idents := Sset.add n !idents
          | _ -> ());
          Ast_iterator.default_iterator.expr iter e);
      pat =
        (fun iter p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> bound := Sset.add txt !bound
          | Ppat_alias (_, { txt; _ }) -> bound := Sset.add txt !bound
          | _ -> ());
          Ast_iterator.default_iterator.pat iter p);
    }
  in
  iterator.expr iterator expr;
  Sset.diff !idents !bound

(* Qualified identifiers [M.x] occurring under [expr], as (module, name). *)
let qualified_idents expr =
  let out = ref [] in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun iter e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match List.rev (Longident.flatten txt) with
              | x :: m :: _ -> out := (m, x) :: !out
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr iter e);
    }
  in
  iterator.expr iterator expr;
  List.rev !out

let array_constructors =
  [
    "Array.make";
    "Array.init";
    "Array.create_float";
    "Array.of_list";
    "Array.copy";
    "Array.append";
    "Array.map";
    "Array.mapi";
    "Array.sub";
    "Bytes.create";
    "Bytes.make";
  ]

let d10 =
  {
    Rule.id = "D10";
    doc =
      "domain-capture races: no mutable value (module-level or \
       closure-captured) may reach a Domain.spawn closure unless its type \
       is on the sanctioned-capture list (Mvcc.t, Flight.t, Sketch.t, \
       Wallclock, Atomic.t)";
    example =
      "let f () =\n\
      \  let tbl = Hashtbl.create 8 in\n\
      \  Domain.spawn (fun () -> Hashtbl.add tbl \"k\" 1)";
    fix =
      "let f () =\n\
      \  let n = Atomic.make 0 in\n\
      \  Domain.spawn (fun () -> Atomic.incr n)";
    check =
      (fun ctx structure ->
        let env = ctx.Rule.env in
        let scope = scope_of ctx structure in
        let toplevel = Ast_util.toplevel_value_names structure in
        let self_module = Callgraph.module_of_file ctx.Rule.file in
        (* --- pass A: collect per-name facts across the whole file ------ *)
        (* local function definitions, for expanding [Domain.spawn worker]
           and partial applications through let-bound helpers *)
        let defs = Hashtbl.create 32 in
        (* names bound to a mutable constructor / an array constructor *)
        let mutable_bound = Hashtbl.create 16 in
        let array_bound = Hashtbl.create 16 in
        (* names bound to a sanctioned constructor *)
        let sanctioned_bound = Hashtbl.create 16 in
        (* names with write evidence (:=, setfield, container store, or a
           resolved callee that mutates the matching parameter) *)
        let written = Hashtbl.create 16 in
        let note tbl name payload = Hashtbl.replace tbl name payload in
        let root_written expr reason =
          match Ast_util.root_ident expr with
          | Some (`Local n) ->
              if not (Hashtbl.mem written n) then note written n reason
          | _ -> ()
        in
        let classify_binding name rhs =
          match rhs.pexp_desc with
          | Pexp_apply (head, _) -> (
              match Ast_util.applied_path head with
              | Some p when List.mem p Summary.sanctioned_constructors
                            || (match Summary.canon scope p with
                               | Some (m, _) ->
                                   List.mem m Summary.sanctioned_modules
                               | None -> false) ->
                  note sanctioned_bound name ()
              | Some p when List.mem p Summary.mutable_constructors ->
                  note mutable_bound name p
              | Some p when List.mem p array_constructors ->
                  note array_bound name p
              | _ -> ())
          | _ -> ()
        in
        let collect e =
          match e.pexp_desc with
          | Pexp_let (_, vbs, _) ->
              List.iter
                (fun vb ->
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt; _ } ->
                      classify_binding txt vb.pvb_expr;
                      if Lambda.is_lambda vb.pvb_expr then
                        note defs txt vb.pvb_expr
                  | _ -> ())
                vbs
          | Pexp_setfield (lhs, _, _) -> root_written lhs "a field is written"
          | Pexp_apply (head, args) -> (
              match Ast_util.applied_path head with
              | Some ":=" -> (
                  match Ast_util.unlabelled args with
                  | lhs :: _ -> root_written lhs "assigned through :="
                  | [] -> ())
              | Some ("incr" | "decr") -> (
                  match Ast_util.unlabelled args with
                  | arg :: _ -> root_written arg "incr/decr'd"
                  | [] -> ())
              | Some path -> (
                  let member =
                    match Summary.canon scope path with
                    | Some (m, f) -> m ^ "." ^ f
                    | None -> path
                  in
                  if
                    List.mem_assoc member Summary.store_models
                    || List.mem member Summary.mutator_models
                  then (
                    match Ast_util.unlabelled args with
                    | receiver :: _ ->
                        root_written receiver
                          (Printf.sprintf "mutated via %s" member)
                    | [] -> ())
                  else
                    match Callgraph.resolve scope path with
                    | `Fn key -> (
                        match Summary.find env key with
                        | Some info ->
                            let matched, _ =
                              Summary.match_args info.Summary.i_labels args
                            in
                            List.iter
                              (fun (i, arg) ->
                                if info.Summary.i_mutates.(i) then
                                  root_written arg
                                    (Printf.sprintf "mutated via %s"
                                       info.Summary.i_key))
                              matched
                        | None -> ())
                    | _ -> ())
              | None -> ())
          | _ -> ()
        in
        (* toplevel functions are expandable defs too *)
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.iter
                  (fun vb ->
                    match vb.pvb_pat.ppat_desc with
                    | Ppat_var { txt; _ } ->
                        classify_binding txt vb.pvb_expr;
                        if Lambda.is_lambda vb.pvb_expr then
                          note defs txt vb.pvb_expr
                    | _ -> ())
                  vbs
            | _ -> ())
          structure;
        let collector =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun iter e ->
                collect e;
                Ast_iterator.default_iterator.expr iter e);
          }
        in
        collector.structure collector structure;
        (* --- pass B: each spawn site ----------------------------------- *)
        (* transitively expand the spawned expression through local defs *)
        let expansion arg =
          let exprs = ref [ arg ] in
          let visited = ref Sset.empty in
          let frontier = ref (free_names arg) in
          while not (Sset.is_empty !frontier) do
            let next = ref Sset.empty in
            Sset.iter
              (fun n ->
                if not (Sset.mem n !visited) then begin
                  visited := Sset.add n !visited;
                  match Hashtbl.find_opt defs n with
                  | Some body ->
                      exprs := body :: !exprs;
                      next := Sset.union !next (free_names body)
                  | None -> ()
                end)
              !frontier;
            frontier := Sset.diff !next !visited
          done;
          (!exprs, !visited)
        in
        (* occurrences of [n] inside the closure: an occurrence is
           sanctioned when it is an argument of a sanctioned-module call *)
        let uses exprs =
          let bare = Hashtbl.create 16 in
          let sanctioned = Hashtbl.create 16 in
          let bump tbl n =
            let c = match Hashtbl.find_opt tbl n with Some c -> c | None -> 0 in
            Hashtbl.replace tbl n (c + 1)
          in
          let rec visit_expr iter e =
            match e.pexp_desc with
            | Pexp_apply (head, args) ->
                let head_sanctioned =
                  match Ast_util.applied_path head with
                  | Some p -> (
                      match Summary.canon scope p with
                      | Some (m, _) -> List.mem m Summary.sanctioned_modules
                      | None -> false)
                  | None -> false
                in
                if head_sanctioned then
                  List.iter
                    (fun (_, a) ->
                      match a.pexp_desc with
                      | Pexp_ident { txt = Longident.Lident n; _ } ->
                          bump sanctioned n
                      | _ -> visit_expr iter a)
                    args
                else Ast_iterator.default_iterator.expr iter e
            | Pexp_ident { txt = Longident.Lident n; _ } -> bump bare n
            | _ -> Ast_iterator.default_iterator.expr iter e
          in
          let iterator =
            { Ast_iterator.default_iterator with expr = visit_expr }
          in
          List.iter (fun e -> iterator.expr iterator e) exprs;
          (bare, sanctioned)
        in
        let report ~loc message =
          ctx.Rule.report ~severity:Finding.Error ~loc message
        in
        let check_spawn ~loc arg =
          let exprs, captured = expansion arg in
          let bare, _sanctioned = uses exprs in
          let bare_uses n =
            match Hashtbl.find_opt bare n with Some c -> c | None -> 0
          in
          (* closure-captured locals *)
          Sset.iter
            (fun n ->
              if not (List.mem n toplevel) && not (Hashtbl.mem sanctioned_bound n)
              then
                let evidence =
                  match Hashtbl.find_opt mutable_bound n with
                  | Some ctor -> Some (Printf.sprintf "bound to %s" ctor)
                  | None -> (
                      match
                        (Hashtbl.find_opt array_bound n, Hashtbl.find_opt written n)
                      with
                      | Some ctor, Some reason ->
                          Some (Printf.sprintf "bound to %s and %s" ctor reason)
                      | None, Some reason -> Some reason
                      | _, None -> None)
                in
                match evidence with
                | Some why when bare_uses n > 0 ->
                    report ~loc
                      (Printf.sprintf
                         "mutable value [%s] (%s) is captured by a \
                          Domain.spawn closure: the spawned domain races the \
                          owner — use a sanctioned capture (Mvcc.t, Flight.t, \
                          Sketch.t, Wallclock, Atomic.t), move the state into \
                          the closure, or hand it off explicitly (justify in \
                          .vmlint)"
                         n why)
                | _ -> ())
            (Sset.filter (fun n -> bare_uses n > 0) captured);
          (* module-level mutable state reached from the closure *)
          let seen = ref [] in
          List.iter
            (fun e ->
              List.iter
                (fun (m, x) ->
                  let m =
                    match List.assoc_opt m scope.Callgraph.aliases with
                    | Some t -> t
                    | None -> m
                  in
                  if
                    Summary.is_mutable_global env ~modname:m ~name:x
                    && not (List.mem (m, x) !seen)
                  then begin
                    seen := (m, x) :: !seen;
                    report ~loc
                      (Printf.sprintf
                         "module-level mutable value [%s.%s] is reached from a \
                          Domain.spawn closure: the spawned domain races every \
                          other user — thread it through the closure's own \
                          state or a sanctioned capture"
                         m x)
                  end)
                (qualified_idents e))
            exprs;
          (* own-module toplevel mutable state captured by name *)
          Sset.iter
            (fun n ->
              if
                List.mem n toplevel
                && Summary.is_mutable_global env ~modname:self_module ~name:n
                && bare_uses n > 0
              then
                report ~loc
                  (Printf.sprintf
                     "module-level mutable value [%s] is reached from a \
                      Domain.spawn closure: the spawned domain races every \
                      other user"
                     n))
            captured
        in
        let visit e =
          match e.pexp_desc with
          | Pexp_apply (f, args)
            when Ast_util.applied_path f = Some "Domain.spawn" -> (
              match Ast_util.unlabelled args with
              | arg :: _ -> check_spawn ~loc:e.pexp_loc arg
              | [] -> ())
          | _ -> ()
        in
        let iterator =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun iter e ->
                visit e;
                Ast_iterator.default_iterator.expr iter e);
          }
        in
        iterator.structure iterator structure);
  }

let all = [ d8; d9; d10 ]
