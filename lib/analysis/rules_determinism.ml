(* Determinism rules D1-D3: the static side of the engine's reproducibility
   story (DESIGN §7-§8).  All three are heuristic — they over- and
   under-approximate type information the parser doesn't have — but they are
   tuned so that every firing on this tree is either a real hazard or worth
   an explicit .vmlint justification. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* D1: no module-level mutable state                                    *)
(* ------------------------------------------------------------------ *)

(* PR 3 removed every ambient global so that engines are re-entrant and
   domain-parallel runs are isolated; D1 keeps it that way.  We walk the
   right-hand sides of toplevel [let]s, descending only through positions
   the module initializer actually evaluates — a mutable constructor under a
   lambda is per-call state and fine. *)

let mutable_constructors =
  [
    "ref";
    "Hashtbl.create";
    "Atomic.make";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
    "Bytes.create";
    "Bytes.make";
    "Array.make";
    "Array.init";
    "Array.create_float";
    "Array.of_list";
    "Array.copy";
    "Array.append";
    "Array.map";
    "Array.mapi";
    "Random.State.make";
    "Random.State.make_self_init";
  ]

let d1 =
  {
    Rule.id = "D1";
    doc =
      "no module-level mutable state (refs, hash tables, arrays, buffers) \
       outside an execution context";
    example = "let counter = ref 0\nlet bump () = incr counter";
    fix =
      "type t = { mutable counter : int }\n\
       let create () = { counter = 0 }\n\
       let bump t = t.counter <- t.counter + 1";
    check =
      (fun ctx structure ->
        let mutable_fields = Rule.mutable_field_names structure in
        let report loc what =
          ctx.Rule.report ~severity:Finding.Error ~loc
            (Printf.sprintf
               "module-level mutable state (%s): engines must own their state \
                via Ctx.t so runs are re-entrant and parallel domains are \
                isolated (DESIGN \xc2\xa77)"
               what)
        in
        (* Immediate-evaluation positions only; the wildcard stops at
           lambdas, functors and anything else deferred. *)
        let rec walk expr =
          match expr.pexp_desc with
          | Pexp_apply (f, args) ->
              (match Rule.applied_path f with
              | Some path when List.mem path mutable_constructors ->
                  report expr.pexp_loc path
              | _ -> ());
              List.iter (fun (_, arg) -> walk arg) args
          | Pexp_record (fields, base) ->
              List.iter
                (fun (lid, value) ->
                  (match lid.Location.txt with
                  | Longident.Lident name when List.mem name mutable_fields ->
                      report expr.pexp_loc
                        (Printf.sprintf "record literal with mutable field %s" name)
                  | _ -> ());
                  walk value)
                fields;
              Option.iter walk base
          | Pexp_let (_, bindings, body) ->
              List.iter (fun vb -> walk vb.pvb_expr) bindings;
              walk body
          | Pexp_sequence (a, b) ->
              walk a;
              walk b
          | Pexp_tuple exprs -> List.iter walk exprs
          | Pexp_construct (_, arg) -> Option.iter walk arg
          | Pexp_variant (_, arg) -> Option.iter walk arg
          | Pexp_field (inner, _) -> walk inner
          | Pexp_ifthenelse (c, t, e) ->
              walk c;
              walk t;
              Option.iter walk e
          | Pexp_match (scrutinee, cases) | Pexp_try (scrutinee, cases) ->
              walk scrutinee;
              List.iter (fun case -> walk case.pc_rhs) cases
          | Pexp_constraint (inner, _) -> walk inner
          | Pexp_open (_, inner) -> walk inner
          | Pexp_lazy inner ->
              (* deferred, but still module-level state once forced *)
              walk inner
          | _ -> ()
        in
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, bindings) ->
                List.iter (fun vb -> walk vb.pvb_expr) bindings
            | _ -> ())
          structure);
  }

(* ------------------------------------------------------------------ *)
(* D2: forbidden nondeterminism                                         *)
(* ------------------------------------------------------------------ *)

(* The engine's only randomness source is the seeded SplitMix64 in
   lib/util/rng.ml; wall clocks never feed measurements (the trace clock is
   the modeled-cost virtual clock); hashing goes through the monomorphic
   String.hash on canonical key strings so layouts cannot drift with the
   polymorphic hash function's treatment of a changed representation. *)

let forbidden_prefixes = [ "Random." ] (* any use of the global generator *)

let forbidden_paths =
  [
    "Sys.time";
    "Unix.gettimeofday";
    "Unix.time";
    "Hashtbl.hash";
    "Hashtbl.seeded_hash";
    "Hashtbl.hash_param";
  ]

let has_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let d2 =
  {
    Rule.id = "D2";
    doc =
      "no ambient nondeterminism: Random.*, wall clocks, polymorphic \
       Hashtbl.hash (use the seeded Rng and canonical key strings)";
    example = "let draw () = Random.int 10";
    fix = "let draw rng = Rng.int rng 10   (* seeded, threaded via ctx *)";
    check =
      (fun ctx structure ->
        (* The one blessed wrapper around randomness. *)
        if not (has_suffix ~suffix:"util/rng.ml" ctx.Rule.file) then begin
          let visit e =
            match e.pexp_desc with
            | Pexp_ident { txt; _ } ->
                let path = Rule.path_of_longident txt in
                let hit =
                  List.mem path forbidden_paths
                  || List.exists
                       (fun prefix ->
                         String.length path > String.length prefix
                         && String.sub path 0 (String.length prefix) = prefix)
                       forbidden_prefixes
                in
                if hit then
                  ctx.Rule.report ~severity:Finding.Error ~loc:e.pexp_loc
                    (Printf.sprintf
                       "%s is nondeterministic (or representation-dependent): \
                        draw randomness from the context Rng, time from the \
                        modeled-cost clock, hashes from Value.hash/String.hash"
                       path)
            | _ -> ()
          in
          let iterator =
            {
              Ast_iterator.default_iterator with
              expr =
                (fun iter e ->
                  visit e;
                  Ast_iterator.default_iterator.expr iter e);
            }
          in
          iterator.structure iterator structure
        end);
  }

(* ------------------------------------------------------------------ *)
(* D3: hash-order escaping into ordered output                          *)
(* ------------------------------------------------------------------ *)

(* Hashtbl iteration order is unspecified; building a list (or string) in an
   iter/fold callback bakes that order into whatever the caller prints,
   diffs, or — worse — feeds to storage structures whose page layout the
   meter observes.  Sorting the escape canonically (by tid or value key)
   makes it deterministic by construction; folds syntactically under a
   List.sort* application are therefore exempt. *)

let hashtbl_escapes = [ "Hashtbl.iter"; "Hashtbl.fold" ]

let sort_paths =
  [ "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq" ]

let accumulates_ordered expr =
  Rule.expr_contains
    (fun e ->
      match e.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> true
      | Pexp_ident { txt = Longident.Lident ("@" | "^"); _ } -> true
      | _ -> false)
    expr

let d3 =
  {
    Rule.id = "D3";
    doc =
      "Hashtbl.iter/fold accumulating an ordered result (list/string) \
       without a canonical sort leaks hash order";
    example = "let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []";
    fix =
      "let keys t =\n\
      \  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])";
    check =
      (fun ctx structure ->
        let under_sort = ref false in
        let iterator =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun iter e ->
                match e.pexp_desc with
                | Pexp_apply (f, args) -> (
                    match Rule.applied_path f with
                    | Some path when List.mem path sort_paths ->
                        let saved = !under_sort in
                        under_sort := true;
                        Fun.protect
                          ~finally:(fun () -> under_sort := saved)
                          (fun () -> Ast_iterator.default_iterator.expr iter e)
                    | Some path when List.mem path hashtbl_escapes ->
                        (if not !under_sort then
                           match Rule.unlabelled args with
                           | callback :: _ when accumulates_ordered callback ->
                               ctx.Rule.report ~severity:Finding.Warning
                                 ~loc:e.pexp_loc
                                 (Printf.sprintf
                                    "%s callback accumulates an ordered result: \
                                     hash-table iteration order escapes; sort \
                                     the result canonically (by tid / value \
                                     key) or justify in .vmlint"
                                    path)
                           | _ -> ());
                        Ast_iterator.default_iterator.expr iter e
                    | _ -> Ast_iterator.default_iterator.expr iter e)
                | _ -> Ast_iterator.default_iterator.expr iter e);
          }
        in
        iterator.structure iterator structure);
  }

let all = [ d1; d2; d3 ]
