(* The rule engine: parse, run every rule, collect findings in canonical
   order.  [lint_string] exists for the golden-fixture tests — each rule must
   both fire on a minimal violating program and stay silent on the idiomatic
   fix, without touching the filesystem. *)

let all_rules = Rules_determinism.all @ Rules_discipline.all

let rule_ids = List.map (fun rule -> rule.Rule.id) all_rules

let parse_error_finding ~file message =
  {
    Finding.rule = "PARSE";
    severity = Finding.Error;
    file;
    line = 1;
    col = 0;
    message;
  }

let lint_structure ?(rules = all_rules) ~file structure =
  let findings = ref [] in
  List.iter
    (fun rule ->
      let report ~severity ~loc message =
        let line, col = Rule.position loc in
        findings :=
          { Finding.rule = rule.Rule.id; severity; file; line; col; message }
          :: !findings
      in
      rule.Rule.check { Rule.file; report } structure)
    rules;
  List.sort Finding.compare !findings

let lint_string ?rules ~file source =
  match Source.parse_string ~file source with
  | Ok structure -> lint_structure ?rules ~file structure
  | Error message -> [ parse_error_finding ~file message ]

let lint_paths ?rules paths =
  Source.discover_all paths
  |> List.concat_map (fun file ->
         match Source.parse_file file with
         | Ok structure -> lint_structure ?rules ~file structure
         | Error message -> [ parse_error_finding ~file message ])
  |> List.sort Finding.compare

let filter_allowed allowlist findings =
  List.filter (fun finding -> not (Allowlist.matches allowlist finding)) findings
