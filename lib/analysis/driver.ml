(* The rule engine, two-pass since vmlint v2: pass 1 parses every file in
   the run and builds the interprocedural summary environment to a fixpoint
   (Summary.build); pass 2 runs every rule over every file with that
   environment in the rule context.  Findings come back in canonical order.

   [lint_string] exists for the golden-fixture tests — each rule must both
   fire on a minimal violating program and stay silent on the idiomatic
   fix, without touching the filesystem.  The fixture's own structure is its
   whole universe, so in-fixture helpers resolve interprocedurally. *)

let all_rules = Rules_determinism.all @ Rules_discipline.all @ Rules_borrow.all

let rule_ids = List.map (fun rule -> rule.Rule.id) all_rules

let parse_error_finding ~file message =
  {
    Finding.rule = "PARSE";
    severity = Finding.Error;
    file;
    line = 1;
    col = 0;
    message;
  }

let lint_structure ?(rules = all_rules) ?env ~file structure =
  let env =
    match env with Some env -> env | None -> Summary.build_one ~file structure
  in
  let findings = ref [] in
  List.iter
    (fun rule ->
      let report ~severity ~loc message =
        let line, col = Rule.position loc in
        findings :=
          { Finding.rule = rule.Rule.id; severity; file; line; col; message }
          :: !findings
      in
      rule.Rule.check { Rule.file; env; report } structure)
    rules;
  List.sort Finding.compare !findings

let lint_string ?rules ~file source =
  match Source.parse_string ~file source with
  | Ok structure -> lint_structure ?rules ~file structure
  | Error message -> [ parse_error_finding ~file message ]

(* Parse everything, build one summary environment for the whole run, lint
   each file against it.  Returns the findings and the environment (the
   latter feeds [vmlint --summaries-out]). *)
let lint_paths_env ?rules paths =
  let parsed, errors =
    Source.discover_all paths
    |> List.fold_left
         (fun (parsed, errors) file ->
           match Source.parse_file file with
           | Ok structure -> ((file, structure) :: parsed, errors)
           | Error message ->
               (parsed, parse_error_finding ~file message :: errors))
         ([], [])
  in
  let parsed = List.rev parsed in
  let env = Summary.build parsed in
  let findings =
    List.concat_map
      (fun (file, structure) -> lint_structure ?rules ~env ~file structure)
      parsed
  in
  (List.sort Finding.compare (errors @ findings), env)

let lint_paths ?rules paths = fst (lint_paths_env ?rules paths)

let filter_allowed allowlist findings =
  List.filter (fun finding -> not (Allowlist.matches allowlist finding)) findings
