open Vmat_storage
open Vmat_util
module Btree = Vmat_index.Btree
module Hash_file = Vmat_index.Hash_file
module Recorder = Vmat_obs.Recorder

(* AD entries extend the base tuple with three bookkeeping columns:
   role ("A" or "D"), the original tid, and the screening marker.  The entry
   itself gets a fresh tid so that an append and its cancelling delete can
   coexist in the hash file. *)

let role_appended = Value.Str "A"
let role_deleted = Value.Str "D"

type layout = Combined | Split

type t = {
  base : Btree.t;
  schema : Schema.t;
  ad : Hash_file.t;  (* combined layout: both roles; split layout: appends *)
  ad_deletes : Hash_file.t option;  (* split layout only *)
  bloom : Bloom.t;
  meter : Cost_meter.t;
  tids : Tuple.source;
  key_col : int;
  san : Sanitize.t;
  mutable a_count : int;
  mutable d_count : int;
}

let create ~disk ~tids ~base ~schema ~ad_buckets ~tuples_per_page ?bloom_bits
    ?(layout = Combined) ?(sanitize = Sanitize.none) () =
  let bloom_bits =
    match bloom_bits with
    | Some b -> b
    | None ->
        Bloom.ideal_bits ~expected_keys:(max 64 (ad_buckets * tuples_per_page)) ~fp_rate:0.01
  in
  let file suffix buckets =
    Hash_file.create ~disk ~name:(suffix ^ ":" ^ Schema.name schema) ~buckets:(max 1 buckets)
      ~tuples_per_page ~key_col:(Schema.key_index schema) ()
  in
  let ad, ad_deletes =
    match layout with
    | Combined -> (file "ad" ad_buckets, None)
    | Split ->
        (* each file holds half the entries *)
        let half = max 1 ((ad_buckets + 1) / 2) in
        (file "a" half, Some (file "d" half))
  in
  {
    base;
    schema;
    ad;
    ad_deletes;
    bloom = Bloom.create ~bits:bloom_bits ();
    meter = Disk.meter disk;
    tids;
    key_col = Schema.key_index schema;
    san = sanitize;
    a_count = 0;
    d_count = 0;
  }

(* The file an entry of the given role is stored in. *)
let file_for t role =
  match t.ad_deletes with
  | Some deletes when Value.equal role role_deleted -> deletes
  | _ -> t.ad

let all_files t = t.ad :: Option.to_list t.ad_deletes

let base t = t.base
let schema t = t.schema

let encode t tuple ~role ~marked =
  Tuple.make ~tid:(Tuple.next t.tids)
    (Array.append (Tuple.values tuple)
       [| role; Value.Int (Tuple.tid tuple); Value.Bool marked |])

(* Decode straight off the page cells, boxing only the base-tuple prefix. *)
let decode_view t view =
  let n = Schema.arity t.schema in
  let is_appended = Tuple_view.compare_col view n role_appended = 0 in
  let orig_tid = Tuple_view.get_int view (n + 1) in
  let marked = Tuple_view.get_bool_or_false view (n + 2) in
  (is_appended, marked, Tuple_view.materialize_prefix view n ~tid:orig_tid)

let note_in_bloom t tuple = Bloom.add t.bloom (Value.key_string (Tuple.get tuple t.key_col))

(* The paper fixes the "read the current tuple" step at one I/O (§2.2.2); we
   charge it synthetically to the Base category rather than simulating the
   access path the base update would have used anyway. *)
let charge_base_read t =
  Cost_meter.with_category t.meter Cost_meter.Base (fun () ->
      Cost_meter.charge_read t.meter)

let ad_files_entry_count files =
  List.fold_left (fun acc f -> acc + Hash_file.tuple_count f) 0 files

let ad_files_page_count files =
  List.fold_left (fun acc f -> acc + Hash_file.page_count f) 0 files

let bloom t = t.bloom

(* Keep the differential-file gauges fresh at transaction granularity (cheap:
   page/tuple counts are O(#files)).  Gauges, unlike the cost counters, are
   point-in-time, so sampling at txn boundaries is the honest reading. *)
let note_ad_gauges t =
  let r = Cost_meter.recorder t.meter in
  if Recorder.enabled r then begin
    Recorder.set_gauge r ~help:"Pages currently in the differential (A/D) file(s)."
      "vmat_hr_ad_pages"
      (float_of_int (ad_files_page_count (all_files t)));
    Recorder.set_gauge r ~help:"Entries currently in the differential (A/D) file(s)."
      "vmat_hr_ad_entries"
      (float_of_int (ad_files_entry_count (all_files t)));
    Recorder.set_gauge r
      ~help:"Analytic false-positive probability of the A/D Bloom filter at current load."
      "vmat_bloom_fp_rate" (Bloom.false_positive_rate t.bloom)
  end

let store t ~role entry =
  Cost_meter.with_category t.meter Cost_meter.Hr (fun () ->
      Hash_file.insert (file_for t role) entry)

let apply_insert t tuple ~marked =
  store t ~role:role_appended (encode t tuple ~role:role_appended ~marked);
  note_in_bloom t tuple;
  t.a_count <- t.a_count + 1

let apply_delete t tuple ~marked =
  charge_base_read t;
  store t ~role:role_deleted (encode t tuple ~role:role_deleted ~marked);
  note_in_bloom t tuple;
  t.d_count <- t.d_count + 1

let apply_update t ~old_tuple ~new_tuple ~marked_old ~marked_new =
  charge_base_read t;
  store t ~role:role_deleted (encode t old_tuple ~role:role_deleted ~marked:marked_old);
  store t ~role:role_appended (encode t new_tuple ~role:role_appended ~marked:marked_new);
  note_in_bloom t old_tuple;
  note_in_bloom t new_tuple;
  t.a_count <- t.a_count + 1;
  t.d_count <- t.d_count + 1

let end_transaction t =
  (* Flushes charge the page writes the conventional update would also have
     paid, hence Base; invalidation makes the next transaction's touches
     charge afresh, which is what the paper's per-transaction Yao term
     models. *)
  Cost_meter.with_category t.meter Cost_meter.Base (fun () ->
      List.iter (fun f -> Buffer_pool.invalidate (Hash_file.pool f)) (all_files t));
  note_ad_gauges t

let identity_key tuple = Tuple.value_key tuple ^ "#" ^ string_of_int (Tuple.tid tuple)

(* Cancel append/delete pairs that refer to the same tuple instance (all
   fields including the tid): a tuple appended and deleted within the same
   epoch contributes to neither net set.  Both net sets come back in
   canonical (original-tid) order: [d_net] falls out of a [Hashtbl.fold],
   whose iteration order is unspecified, and the order in which net changes
   are later applied to the materialized view decides the page-access
   pattern the meter sees — so it must not depend on the hash function of
   the running compiler (vmlint rule D3). *)
let by_tid (t1, _) (t2, _) = Int.compare (Tuple.tid t1) (Tuple.tid t2)

let cancel_pairs (a, d) =
  let deleted = Hashtbl.create (List.length d) in
  List.iter
    (fun (tuple, marked) ->
      Hashtbl.add deleted (identity_key tuple) (tuple, marked))
    d;
  let a_net =
    List.filter
      (fun (tuple, _) ->
        let key = identity_key tuple in
        if Hashtbl.mem deleted key then begin
          Hashtbl.remove deleted key;
          false
        end
        else true)
      a
  in
  let d_net =
    List.sort by_tid (Hashtbl.fold (fun _ entry acc -> entry :: acc) deleted [])
  in
  (List.sort by_tid a_net, d_net)

(* Partition the files' entries by role in file-scan order (the order the
   historical collect-then-partition produced), decoding off the page cells. *)
let partition_views t iter =
  let a = ref [] and d = ref [] in
  List.iter
    (fun f ->
      iter f (fun view ->
          let is_appended, marked, tuple = decode_view t view in
          if is_appended then a := (tuple, marked) :: !a else d := (tuple, marked) :: !d))
    (all_files t);
  (List.rev !a, List.rev !d)

let net_changes t = cancel_pairs (partition_views t Hash_file.scan_views)
let net_changes_unmetered t = cancel_pairs (partition_views t Hash_file.iter_views_unmetered)

let ad_entry_count t = List.fold_left (fun acc f -> acc + Hash_file.tuple_count f) 0 (all_files t)
let ad_page_count t = List.fold_left (fun acc f -> acc + Hash_file.page_count f) 0 (all_files t)

let reset t =
  let a_net, d_net = net_changes t in
  Cost_meter.with_category t.meter Cost_meter.Base (fun () ->
      List.iter
        (fun (tuple, _) ->
          ignore (Btree.remove t.base ~key:(Btree.key_of t.base tuple) ~tid:(Tuple.tid tuple)))
        d_net;
      List.iter (fun (tuple, _) -> Btree.insert t.base tuple) a_net;
      Buffer_pool.invalidate (Btree.pool t.base));
  List.iter
    (fun f ->
      Hash_file.clear f;
      Buffer_pool.invalidate (Hash_file.pool f))
    (all_files t);
  Bloom.clear t.bloom;
  t.a_count <- 0;
  t.d_count <- 0;
  note_ad_gauges t

(* The Bloom filter is derived state: every resident A/D entry fed it exactly
   one key (apply_insert/apply_delete note one tuple per stored entry;
   apply_update notes both), and entries only leave wholesale via {!reset},
   which clears the filter too.  So the filter is reconstructible from the
   A/D heap alone — which is what makes a checkpoint image that carries the
   heap but lost (or never stored) the filter recoverable.  Rebuilding scans
   unmetered: recovery cost is charged where the recovery driver says, not
   here. *)
let rebuild_filter t =
  Bloom.clear t.bloom;
  List.iter
    (fun f ->
      Hash_file.iter_views_unmetered f (fun view ->
          Bloom.add t.bloom (Tuple_view.key_string_col view t.key_col)))
    (all_files t)

let lookup t ~key =
  let r = Cost_meter.recorder t.meter in
  let find_in_base () =
    Cost_meter.charge_read t.meter;
    Btree.find_view_unmetered t.base (fun view ->
        Tuple_view.compare_col view t.key_col key = 0)
  in
  Recorder.span r ~cat:"hr" "hr.lookup" (fun () ->
      let screened_in = Bloom.mem t.bloom (Value.key_string key) in
      if Recorder.enabled r then begin
        Recorder.inc r ~help:"Bloom membership probes against the A/D filter."
          "vmat_bloom_probes_total" 1.;
        if screened_in then
          Recorder.inc r ~help:"Bloom probes that answered maybe-present."
            "vmat_bloom_positives_total" 1.
      end;
      if not screened_in then begin
        (* Sanitizer: a negative screen asserts the A/D file holds no entry
           for this key — the "no false negatives" half of the Bloom
           contract, which the probe statistics cannot observe (they only
           see positives).  The audit scans unmetered, so the measured I/O
           pattern is identical with the sanitizer off. *)
        if Sanitize.sample t.san ~rule:"bloom-no-false-negative" then
          Sanitize.check t.san ~rule:"bloom-no-false-negative"
            (fun () ->
              let found = ref false in
              List.iter
                (fun f ->
                  Hash_file.iter_views_unmetered f (fun view ->
                      if Tuple_view.compare_col view t.key_col key = 0 then found := true))
                (all_files t);
              not !found)
            ~detail:(fun () ->
              Printf.sprintf
                "negative screen for key %s but the differential file holds an entry \
                 for it (filter cleared or bypassed without clearing the A/D file?)"
                (Value.to_string key));
        find_in_base ()
      end
      else begin
        let a_raw = ref [] and d_raw = ref [] in
        List.iter
          (fun f ->
            Hash_file.lookup_views f key (fun view ->
                let is_appended, marked, tuple = decode_view t view in
                if is_appended then a_raw := (tuple, marked) :: !a_raw
                else d_raw := (tuple, marked) :: !d_raw))
          (all_files t);
        (* Every A/D insertion also feeds the filter and entries are only
           removed wholesale (with a filter clear), so an empty hash-file
           answer after a positive probe is, by construction, a false
           positive — the one outcome the probe itself cannot see. *)
        if List.is_empty !a_raw && List.is_empty !d_raw then begin
          Bloom.note_false_positive t.bloom;
          if Recorder.enabled r then begin
            Recorder.inc r
              ~help:"Positive Bloom probes the differential file then refuted (wasted I/O)."
              "vmat_bloom_false_positives_total" 1.;
            Recorder.instant r ~cat:"hr" "bloom.false_positive"
          end
        end;
        let a, d = cancel_pairs (!a_raw, !d_raw) in
        match a with
        | (tuple, _) :: _ -> Some tuple
        | [] -> (
            match find_in_base () with
            | None -> None
            | Some tuple ->
                let gone =
                  List.exists (fun (del, _) -> Tuple.equal del tuple) d
                in
                if gone then None else Some tuple)
      end)

let contents_unmetered t =
  let a_net, d_net = net_changes_unmetered t in
  let dead = Hashtbl.create 64 in
  List.iter (fun (tuple, _) -> Hashtbl.replace dead (identity_key tuple) ()) d_net;
  let out = ref (List.rev_map fst a_net) in
  Btree.iter_unmetered t.base (fun tuple ->
      if not (Hashtbl.mem dead (identity_key tuple)) then out := tuple :: !out);
  !out
