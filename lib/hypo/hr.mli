(** Hypothetical relations (paper §2.2): the base relation [R] (a clustered
    B+-tree) plus a combined differential file [AD] — appended and deleted
    tuples distinguished by a [role] attribute, clustered-hashed on the
    relation key — with a Bloom filter screening accesses to [AD] [Seve76].

    The true value of the relation is [(R ∪ A) − D].  Updates follow the
    paper's 3-I/O discipline: read the tuple (Bloom-screened), read the [AD]
    page where the new entries will lie, write that page back.  Only the
    middle I/O exceeds a conventional update, and it is charged to the [Hr]
    meter category (the paper's [C_AD]); the rest is charged to [Base].

    Each entry carries the screening marker set by the strategy when the
    update arrived, so deferred refresh does not re-screen. *)

open Vmat_storage

type t

type layout =
  | Combined  (** one [AD] file with a role attribute — the paper's design *)
  | Split
      (** separate [A] and [D] files — the alternative §2.2.2 argues
          against: an update must read and write both files, "at least five
          I/O's ... rather than three" *)

val create :
  disk:Disk.t ->
  tids:Tuple.source ->
  base:Vmat_index.Btree.t ->
  schema:Schema.t ->
  ad_buckets:int ->
  tuples_per_page:int ->
  ?bloom_bits:int ->
  ?layout:layout ->
  ?sanitize:Sanitize.t ->
  unit ->
  t
(** [base] is the stored copy of [R]; [schema] its schema (the key column of
    the schema clusters [AD]).  [tids] is the owning engine's tuple-id source
    (A/D entries get fresh tids from it).  [ad_buckets] sizes the static hash
    file (the paper's [2u/T] pages); [bloom_bits] defaults to a 1%
    false-positive size for [ad_buckets * tuples_per_page] keys.
    [sanitize] (default {!Sanitize.none}) enables the sampled
    no-false-negative audit in {!lookup}: after a negative Bloom screen the
    A/D file is scanned unmetered to confirm the key really is absent. *)

val base : t -> Vmat_index.Btree.t
val schema : t -> Schema.t

val apply_insert : t -> Tuple.t -> marked:bool -> unit
(** Record an appended tuple ([marked] = it passed both screening stages). *)

val apply_delete : t -> Tuple.t -> marked:bool -> unit
(** Record the deletion of a tuple currently visible in the relation (the
    tuple keeps the tid it had in [R] or [A]). *)

val apply_update : t -> old_tuple:Tuple.t -> new_tuple:Tuple.t -> marked_old:bool -> marked_new:bool -> unit
(** The common "modify without changing the key" case: one read of the
    current tuple, one read and one write of the [AD] page receiving both
    the [D] and [A] entries. *)

val end_transaction : t -> unit
(** Flush and drop the [AD] buffer pool so the next transaction's page
    touches are charged afresh (the paper charges [y(2u, 2u/T, l)] per
    transaction). *)

val lookup : t -> key:Value.t -> Tuple.t option
(** Read-through by relation key with [(R ∪ A) − D] semantics, charging the
    Bloom-directed I/Os.  The base read descends the clustered B+-tree with
    the key column of the stored tuples. *)

val net_changes : t -> (Tuple.t * bool) list * (Tuple.t * bool) list
(** [(a_net, d_net)] with markers: entries appended-then-deleted in the same
    epoch cancel (matching on all fields including the tid).  Charges one
    read of every [AD] page. *)

val ad_entry_count : t -> int
val ad_page_count : t -> int

val bloom : t -> Vmat_util.Bloom.t
(** The screening filter, exposed for its probe/false-positive counters
    ({!Vmat_util.Bloom.probes} and friends): {!lookup} reports spurious
    positive probes back to the filter, so the empirical FP rate is finally
    distinguishable from true differential-file hits. *)

val rebuild_filter : t -> unit
(** Reconstruct the Bloom filter from the resident A/D entries alone
    (unmetered scan).  The filter is derived state — every resident entry
    fed it exactly one key, and entries only leave together with a filter
    clear ({!reset}) — so the rebuilt filter is bit-identical to the live
    one and, in particular, admits no false negatives over the resident
    entries.  This is what makes the differential file self-describing for
    crash recovery (DESIGN §9): a checkpoint that carries the A/D heap
    need not trust a separately-stored filter image. *)

val reset : t -> unit
(** Fold the differential file into the base relation
    ([R := (R ∪ A) − D; A := ∅; D := ∅]) and clear the Bloom filter.  The
    fold-in I/O is charged to the [Base] category (see DESIGN.md). *)

val contents_unmetered : t -> Tuple.t list
(** Current true contents [(R ∪ A) − D] without charges (tests). *)

val net_changes_unmetered : t -> (Tuple.t * bool) list * (Tuple.t * bool) list
(** Like {!net_changes} but free of charge (tests/equivalence). *)
