(** A small database facade over the whole library: named tables, views
    defined in the QUEL-flavored language of {!Vmat_lang.Parser}, each view
    maintained by the strategy named in its [using] clause, every update
    statement flowing through screening and maintenance, and every cost
    charged to one shared meter.

    {[
      let db = Db.create () in
      let run s = Result.get_ok (Db.exec db s) in
      ignore (run "create table r (id int key, pval float, amount float) size 100");
      ignore (run "insert into r values (1, 0.05, 10)");
      ignore (run "define view v (pval, amount) from r where pval < 0.1 \
                   cluster on pval using deferred");
      ignore (run "update r set amount = 42 where id = 1");
      match run "select * from v" with Rows rows -> ... | _ -> ...
    ]}

    Tables hold the authoritative logical state in memory; the physical
    storage (B+-trees, hash files, differential files) lives inside each
    view's maintenance strategy, where the paper's analysis puts the cost.
    Statement = transaction: each [insert]/[update]/[delete] statement is one
    update transaction fed to every dependent view. *)

open Vmat_storage

type t

type result =
  | Done of string  (** DDL / DML acknowledgement *)
  | Rows of (Tuple.t * int) list  (** view tuples with duplicate counts *)
  | Scalar of float  (** aggregate value *)

val create :
  ?page_bytes:int -> ?index_entry_bytes:int -> ?ad_buckets:int -> ?seed:int -> unit -> t
(** Defaults: the paper's geometry ([B = 4000], [n = 20]), 8
    differential-file buckets, RNG seed 42.  Each [Db.t] owns its own
    {!Vmat_storage.Ctx.t} (meter, disk, tuple-id source, RNG): any number of
    databases coexist in one process in perfect isolation. *)

val exec : t -> string -> (result, string) Stdlib.result
(** Parse and execute one statement.  SP views accept strategies
    [deferred], [immediate] (default), [clustered], [unclustered],
    [sequential], [recompute], [snapshot]; join views accept [immediate]
    (default, the corrected bilateral maintainer), [blakeley], [loopjoin];
    aggregates accept [deferred], [immediate] (default), [recompute]. *)

val meter : t -> Cost_meter.t
(** The shared cost meter ([C1]/[C2]/[C3] at the paper's defaults). *)

val ctx : t -> Ctx.t
(** The database's execution context (owns the meter, disk, tid source,
    RNG). *)

val table_names : t -> string list
val view_names : t -> string list

val pp_result : Format.formatter -> result -> unit
