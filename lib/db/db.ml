open Vmat_storage
open Vmat_relalg
open Vmat_view
open Vmat_lang

type dependent =
  | Sp_dep of Strategy.t
  | Agg_dep of Strategy.t
  | Join_dep of Bilateral.side * Bilateral.t

type table = {
  schema : Schema.t;
  mutable rows : Tuple.t list;
  mutable dependents : dependent list;
}

type view_handle =
  | Sp_view of Strategy.t * View_def.sp
  | Join_view of Bilateral.t * View_def.join
  | Agg_view of Strategy.t * View_def.agg

type t = {
  ctx : Ctx.t;
  ad_buckets : int;
  tables : (string, table) Hashtbl.t;
  views : (string, view_handle) Hashtbl.t;
}

type result =
  | Done of string
  | Rows of (Tuple.t * int) list
  | Scalar of float

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Exec_error m)) fmt

let create ?(page_bytes = 4000) ?(index_entry_bytes = 20) ?(ad_buckets = 8) ?(seed = 42)
    () =
  {
    ctx = Ctx.create ~geometry:{ Ctx.page_bytes; index_entry_bytes } ~seed ();
    ad_buckets;
    tables = Hashtbl.create 8;
    views = Hashtbl.create 8;
  }

let ctx t = t.ctx
let meter t = Ctx.meter t.ctx

let table_names t =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [])

let view_names t =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.views [])

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None -> fail "unknown table %s" name

let find_view t name =
  match Hashtbl.find_opt t.views name with
  | Some view -> view
  | None -> fail "unknown view %s" name

let resolve_or_fail = function Ok pred -> pred | Error message -> raise (Exec_error message)

(* ------------------------------------------------------------------ *)
(* DDL                                                                 *)
(* ------------------------------------------------------------------ *)

let create_table t ~table ~columns ~tuple_bytes =
  if Hashtbl.mem t.tables table then fail "table %s already exists" table;
  let keys = List.filter (fun (_, _, is_key) -> is_key) columns in
  let key =
    match keys with
    | [ (name, _, _) ] -> name
    | [] -> (
        match columns with
        | (name, _, _) :: _ -> name
        | [] -> fail "table %s has no columns" table)
    | _ -> fail "table %s declares more than one key" table
  in
  let schema =
    Schema.make ~name:table
      ~columns:(List.map (fun (name, ty, _) -> { Schema.name; ty }) columns)
      ~tuple_bytes ~key
  in
  Hashtbl.replace t.tables table { schema; rows = []; dependents = [] };
  Done (Printf.sprintf "table %s created" table)

let column_of_table table (r : Ast.column_ref) =
  (match r.table with
  | Some qualifier when not (String.equal qualifier (String.lowercase_ascii (Schema.name table.schema))) ->
      fail "column %s does not belong to table %s" (Ast.column_ref_to_string r)
        (Schema.name table.schema)
  | _ -> ());
  match Schema.column_index table.schema r.column with
  | _ -> r.column
  | exception Not_found ->
      fail "unknown column %s in table %s" r.column (Schema.name table.schema)

let define_sp_view t ~view_name ~columns ~table ~where_ ~cluster ~using =
  let project = List.map (column_of_table table) columns in
  let cluster = column_of_table table cluster in
  let pred =
    match where_ with
    | None -> Predicate.True
    | Some p -> resolve_or_fail (Ast.resolve_pexpr table.schema p)
  in
  let view =
    View_def.make_sp ~name:view_name ~base:table.schema ~pred ~project ~cluster
  in
  let env =
    {
      Strategy_sp.ctx = t.ctx;
      view;
      initial = List.rev table.rows;
      ad_buckets = t.ad_buckets;
    }
  in
  let strategy =
    match Option.value ~default:"immediate" using with
    | "immediate" -> Strategy_sp.immediate env
    | "deferred" -> Strategy_sp.deferred env
    | "clustered" | "qmod" -> Strategy_sp.qmod_clustered env
    | "unclustered" -> Strategy_sp.qmod_unclustered env
    | "sequential" -> Strategy_sp.qmod_sequential env
    | "recompute" -> Strategy_sp.recompute env
    | "snapshot" -> Strategy_sp.snapshot ~period:10 env
    | "adaptive" -> Vmat_adaptive.Adaptive.strategy (Vmat_adaptive.Adaptive.wrap env)
    | other -> fail "unknown view strategy %s" other
  in
  table.dependents <- Sp_dep strategy :: table.dependents;
  Hashtbl.replace t.views view_name (Sp_view (strategy, view));
  Done
    (Printf.sprintf "view %s defined over %s (%s)" view_name (Schema.name table.schema)
       strategy.Strategy.name)

let define_join_view t ~view_name ~columns ~left ~right ~on:(on_l, on_r) ~where_ ~cluster
    ~using =
  let left_name = String.lowercase_ascii (Schema.name left.schema) in
  let right_name = String.lowercase_ascii (Schema.name right.schema) in
  let side_of (r : Ast.column_ref) =
    match r.table with
    | Some q when String.equal q left_name -> `Left
    | Some q when String.equal q right_name -> `Right
    | Some q -> fail "unknown table qualifier %s" q
    | None -> (
        match Schema.column_index left.schema r.column with
        | _ -> `Left
        | exception Not_found -> (
            match Schema.column_index right.schema r.column with
            | _ -> `Right
            | exception Not_found -> fail "unknown column %s" r.column))
  in
  let project_left =
    List.filter_map
      (fun r -> if side_of r = `Left then Some (column_of_table left r) else None)
      columns
  in
  let project_right =
    List.filter_map
      (fun r -> if side_of r = `Right then Some (column_of_table right r) else None)
      columns
  in
  if side_of cluster <> `Left then fail "the clustering column must come from the left relation";
  let left_pred =
    match where_ with
    | None -> Predicate.True
    | Some p -> resolve_or_fail (Ast.resolve_pexpr left.schema p)
  in
  if side_of on_l <> `Left || side_of on_r <> `Right then
    fail "the join condition must equate a left column with a right column";
  let view =
    View_def.make_join ~name:view_name ~left:left.schema ~right:right.schema ~left_pred
      ~on:(column_of_table left on_l, column_of_table right on_r)
      ~project_left ~project_right
      ~cluster:(column_of_table left cluster)
  in
  let env =
    {
      Strategy_join.ctx = t.ctx;
      view;
      initial_left = List.rev left.rows;
      initial_right = List.rev right.rows;
      ad_buckets = t.ad_buckets;
      r2_buckets = 8;
    }
  in
  let maintainer =
    match Option.value ~default:"immediate" using with
    | "immediate" -> Bilateral.immediate env
    | "blakeley" -> Bilateral.blakeley env
    | "loopjoin" | "qmod" -> Bilateral.loopjoin env
    | other -> fail "unknown join view strategy %s" other
  in
  left.dependents <- Join_dep (Bilateral.Left, maintainer) :: left.dependents;
  right.dependents <- Join_dep (Bilateral.Right, maintainer) :: right.dependents;
  Hashtbl.replace t.views view_name (Join_view (maintainer, view));
  Done (Printf.sprintf "join view %s defined (%s)" view_name (Bilateral.name maintainer))

let define_aggregate t ~view_name ~func ~arg ~table ~where_ ~using =
  let pred =
    match where_ with
    | None -> Predicate.True
    | Some p -> resolve_or_fail (Ast.resolve_pexpr table.schema p)
  in
  (* the underlying SP view projects the whole tuple; only the aggregate
     state is ever stored *)
  let project = List.map (fun c -> c.Schema.name) (Schema.columns table.schema) in
  let over =
    View_def.make_sp
      ~name:(view_name ^ "_over")
      ~base:table.schema ~pred ~project
      ~cluster:(List.hd project)
  in
  let kind =
    match (func, arg) with
    | "count", _ -> `Count
    | "sum", Some c -> `Sum c
    | "avg", Some c -> `Avg c
    | "variance", Some c -> `Variance c
    | "min", Some c -> `Min c
    | "max", Some c -> `Max c
    | f, None -> fail "%s requires a column argument" f
    | f, _ -> fail "unknown aggregate function %s" f
  in
  let agg = View_def.make_agg ~name:view_name ~over ~kind in
  let env =
    {
      Strategy_agg.ctx = t.ctx;
      agg;
      initial = List.rev table.rows;
      ad_buckets = t.ad_buckets;
    }
  in
  let strategy =
    match Option.value ~default:"immediate" using with
    | "immediate" -> Strategy_agg.immediate env
    | "deferred" -> Strategy_agg.deferred env
    | "recompute" -> Strategy_agg.recompute env
    | other -> fail "unknown aggregate strategy %s" other
  in
  table.dependents <- Agg_dep strategy :: table.dependents;
  Hashtbl.replace t.views view_name (Agg_view (strategy, agg));
  Done (Printf.sprintf "aggregate %s defined (%s)" view_name strategy.Strategy.name)

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)
(* ------------------------------------------------------------------ *)

let feed table changes =
  if not (List.is_empty changes) then
    List.iter
      (fun dependent ->
        match dependent with
        | Sp_dep s | Agg_dep s -> s.Strategy.handle_transaction changes
        | Join_dep (side, b) ->
            Bilateral.handle_transaction b (List.map (fun c -> (side, c)) changes))
      table.dependents

let insert t ~table_name ~values =
  let table = find_table t table_name in
  let columns = Schema.columns table.schema in
  if List.length values <> List.length columns then
    fail "table %s expects %d values, got %d" table_name (List.length columns)
      (List.length values);
  let tuple =
    Tuple.make ~tid:(Ctx.fresh_tid t.ctx)
      (Array.of_list
         (List.map2
            (fun (c : Schema.column) v -> Ast.value_of_literal (Some c.ty) v)
            columns values))
  in
  table.rows <- tuple :: table.rows;
  feed table [ Strategy.insert tuple ];
  Done "1 row inserted"

let matching_rows table where_ =
  let pred =
    match where_ with
    | None -> Predicate.True
    | Some p -> resolve_or_fail (Ast.resolve_pexpr table.schema p)
  in
  List.filter (Predicate.eval pred) table.rows

let update t ~table_name ~set_column ~set_value ~where_ =
  let table = find_table t table_name in
  let col =
    match Schema.column_index table.schema set_column with
    | i -> i
    | exception Not_found -> fail "unknown column %s" set_column
  in
  let ty = (List.nth (Schema.columns table.schema) col).Schema.ty in
  let victims = matching_rows table where_ in
  let changes =
    List.map
      (fun old_tuple ->
        let new_tuple =
          Tuple.with_tid
            (Tuple.set old_tuple col (Ast.value_of_literal (Some ty) set_value))
            (Ctx.fresh_tid t.ctx)
        in
        Strategy.modify ~old_tuple ~new_tuple)
      victims
  in
  table.rows <-
    List.map
      (fun row ->
        match
          List.find_opt
            (fun (c : Strategy.change) ->
              match c.before with Some b -> Tuple.tid b = Tuple.tid row | None -> false)
            changes
        with
        | Some change -> Option.get change.after
        | None -> row)
      table.rows;
  feed table changes;
  Done (Printf.sprintf "%d row(s) updated" (List.length changes))

let delete t ~table_name ~where_ =
  let table = find_table t table_name in
  let victims = matching_rows table where_ in
  let victim_tids = List.map Tuple.tid victims in
  table.rows <- List.filter (fun row -> not (List.mem (Tuple.tid row) victim_tids)) table.rows;
  feed table (List.map Strategy.delete victims);
  Done (Printf.sprintf "%d row(s) deleted" (List.length victims))

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let select_view t ~view_name ~range =
  match Hashtbl.find_opt t.views view_name with
  | Some handle -> (
      let query =
        match range with
        | None -> { Strategy.q_lo = Strategy.min_sentinel; q_hi = Strategy.max_sentinel }
        | Some (col, lo, hi) ->
            let cluster_name =
              match handle with
              | Sp_view (_, v) -> Schema.column_name v.sp_out_schema v.sp_cluster_out
              | Join_view (_, v) -> Schema.column_name v.j_out_schema v.j_cluster_out
              | Agg_view _ -> fail "aggregates are queried with select value"
            in
            if not (String.equal col cluster_name) then
              fail "views are range-queried on their clustering column %s, not %s"
                cluster_name col;
            {
              Strategy.q_lo = Ast.value_of_literal None lo;
              q_hi = Ast.value_of_literal None hi;
            }
      in
      match handle with
      | Sp_view (s, _) -> Rows (s.Strategy.answer_query query)
      | Join_view (b, _) -> Rows (Bilateral.answer_query b query)
      | Agg_view _ -> fail "aggregates are queried with select value")
  | None ->
      (* fall back to a table scan (modeling convenience; charged C1/tuple) *)
      let table = find_table t view_name in
      let rows =
        match range with
        | None -> List.rev table.rows
        | Some (col, lo, hi) ->
            let idx =
              match Schema.column_index table.schema col with
              | i -> i
              | exception Not_found -> fail "unknown column %s" col
            in
            let ty = (List.nth (Schema.columns table.schema) idx).Schema.ty in
            let lo = Ast.value_of_literal (Some ty) lo
            and hi = Ast.value_of_literal (Some ty) hi in
            List.filter
              (fun row ->
                let v = Tuple.get row idx in
                Value.compare lo v <= 0 && Value.compare v hi <= 0)
              (List.rev table.rows)
      in
      List.iter (fun _ -> Cost_meter.charge_predicate_test (Ctx.meter t.ctx)) table.rows;
      Rows (List.map (fun row -> (row, 1)) rows)

let select_value t ~view_name =
  match find_view t view_name with
  | Agg_view (s, _) -> Scalar (s.Strategy.scalar_query ())
  | Sp_view _ | Join_view _ -> fail "%s is not an aggregate" view_name

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let exec_statement t (statement : Ast.statement) =
  match statement with
  | Create_table { table; columns; tuple_bytes } -> create_table t ~table ~columns ~tuple_bytes
  | Define_view { view; columns; from_left; join = None; where_; cluster; using } ->
      if Hashtbl.mem t.views view then fail "view %s already exists" view;
      define_sp_view t ~view_name:view ~columns ~table:(find_table t from_left) ~where_
        ~cluster ~using
  | Define_view { view; columns; from_left; join = Some (right, on_l, on_r); where_; cluster; using } ->
      if Hashtbl.mem t.views view then fail "view %s already exists" view;
      define_join_view t ~view_name:view ~columns ~left:(find_table t from_left)
        ~right:(find_table t right) ~on:(on_l, on_r) ~where_ ~cluster ~using
  | Define_aggregate { view; func; arg; from_; where_; using } ->
      if Hashtbl.mem t.views view then fail "view %s already exists" view;
      define_aggregate t ~view_name:view ~func ~arg ~table:(find_table t from_) ~where_ ~using
  | Insert { table; values } -> insert t ~table_name:table ~values
  | Update { table; set_column; set_value; where_ } ->
      update t ~table_name:table ~set_column ~set_value ~where_
  | Delete { table; where_ } -> delete t ~table_name:table ~where_
  | Select_view { view; range } -> select_view t ~view_name:view ~range
  | Select_value { view } -> select_value t ~view_name:view

let exec t input =
  match Parser.parse input with
  | Error message -> Error ("parse error: " ^ message)
  | Ok statement -> (
      match exec_statement t statement with
      | result -> Ok result
      | exception Exec_error message -> Error message
      | exception Invalid_argument message -> Error message
      | exception Failure message -> Error message)

let pp_result fmt = function
  | Done message -> Format.fprintf fmt "ok: %s" message
  | Scalar v -> Format.fprintf fmt "%g" v
  | Rows rows ->
      Format.fprintf fmt "%d row(s)@." (List.length rows);
      List.iter
        (fun (tuple, count) ->
          if count = 1 then Format.fprintf fmt "  %a@." Tuple.pp tuple
          else Format.fprintf fmt "  %a x%d@." Tuple.pp tuple count)
        rows
