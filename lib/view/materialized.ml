open Vmat_storage
open Vmat_relalg
module Btree = Vmat_index.Btree

type t = {
  disk : Disk.t;
  name : string;
  fanout : int;
  leaf_capacity : int;
  mutable tree : Btree.t;
  cluster_col : int;
  mutable total : int;
}

let fresh_tree ~disk ~name ~fanout ~leaf_capacity ~cluster_col =
  Btree.create ~disk ~name:("view:" ^ name) ~fanout ~leaf_capacity ~key_col:cluster_col ()

let create ~disk ~name ~fanout ~leaf_capacity ~cluster_col () =
  {
    disk;
    name;
    fanout;
    leaf_capacity;
    tree = fresh_tree ~disk ~name ~fanout ~leaf_capacity ~cluster_col;
    cluster_col;
    total = 0;
  }

let tree t = t.tree
let pool t = Btree.pool t.tree
let distinct_count t = Btree.tuple_count t.tree
let total_count t = t.total
let height t = Btree.height t.tree

type action = Insert | Delete

(* A stored tuple is the view tuple's fields followed by an [Int count]. *)
let stored_of tuple ~count =
  Tuple.make ~tid:(Tuple.tid tuple) (Array.append (Tuple.values tuple) [| Value.Int count |])

let view_of stored =
  let values = Tuple.values stored in
  let n = Array.length values - 1 in
  (Tuple.make ~tid:(Tuple.tid stored) (Array.sub values 0 n), Value.as_int values.(n))

(* Bump the stored count in place: the replacement is rebuilt from the
   resident row, so representations the view tuple merely compares equal to
   are preserved exactly. *)
let bump_count t ~key ~tid delta =
  ignore
    (Btree.update_in_place t.tree ~key ~tid (fun stored ->
         let tuple, count = view_of stored in
         Tuple.with_tid (stored_of tuple ~count:(count + delta)) tid))

let apply t action tuple =
  let key = Tuple.get tuple t.cluster_col in
  let n = Tuple.arity tuple in
  (* First stored row (in (key, tid) order) whose view fields equal the
     tuple's, matched off the page cells; only its tid and count are kept. *)
  let existing = ref None in
  Btree.find_views t.tree key (fun v ->
      if Option.is_none !existing && Tuple_view.equal_prefix_values v tuple n then
        existing := Some (Tuple_view.tid v, Tuple_view.get_int v n));
  match (action, !existing) with
  | Insert, None ->
      Btree.insert t.tree (stored_of tuple ~count:1);
      t.total <- t.total + 1
  | Insert, Some (tid, _) ->
      bump_count t ~key ~tid 1;
      t.total <- t.total + 1
  | Delete, Some (tid, count) ->
      if count <= 1 then ignore (Btree.remove t.tree ~key ~tid)
      else bump_count t ~key ~tid (-1);
      t.total <- t.total - 1
  | Delete, None ->
      Printf.ksprintf failwith
        "Materialized.apply: delete of absent view tuple %s"
        (Format.asprintf "%a" Tuple.pp tuple)

let flush t = Buffer_pool.invalidate (Btree.pool t.tree)

let range t ~lo ~hi f =
  Btree.range_views t.tree ~lo ~hi (fun v ->
      let n = Tuple_view.arity v - 1 in
      f (Tuple_view.materialize_prefix v n ~tid:(Tuple_view.tid v)) (Tuple_view.get_int v n))

let rebuild t bag =
  (* Truncation is a metadata operation (uncharged); bulk-loading the
     recomputed contents packs pages full (the paper's assumption) and
     charges one write per page built, through the pool flush. *)
  t.tree <-
    fresh_tree ~disk:t.disk ~name:t.name ~fanout:t.fanout ~leaf_capacity:t.leaf_capacity
      ~cluster_col:t.cluster_col;
  t.total <- 0;
  let stored = ref [] in
  Bag.iter bag (fun tuple count ->
      if count > 0 then begin
        stored := stored_of tuple ~count :: !stored;
        t.total <- t.total + count
      end);
  Btree.bulk_load t.tree !stored;
  flush t

let to_bag_unmetered t =
  let bag = Bag.create () in
  Btree.iter_views_unmetered t.tree (fun v ->
      let n = Tuple_view.arity v - 1 in
      Bag.add_count bag
        (Tuple_view.materialize_prefix v n ~tid:(Tuple_view.tid v))
        (Tuple_view.get_int v n));
  bag
