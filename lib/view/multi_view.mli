(** Several materialized selection-projection views over one base relation,
    deferred-maintained from a single shared hypothetical relation.  §4: "In
    cases where more than one materialized view draws data from the same
    hypothetical relation, it may be worthwhile to refresh all the views
    whenever it is necessary to read the contents of the A and D sets for
    the relation, since this would eliminate the need to read the
    hypothetical database again."

    A query to any view triggers one [AD] read that refreshes {e every}
    stale view, so [n] views cost one differential-file scan per refresh
    instead of [n] (the ablation baseline is [n] independent
    {!Strategy_sp.deferred} instances, each with its own differential
    file).  Screening runs per view: stage 1 against each view's t-locks
    (free), stage 2 only for the breakers. *)

open Vmat_storage
open Vmat_relalg

type t

val create :
  ctx:Ctx.t ->
  base:Schema.t ->
  views:View_def.sp list ->
  initial:Tuple.t list ->
  ad_buckets:int ->
  ?base_cluster:string ->
  unit ->
  t
(** All views must be defined over [base].  Views may cluster on different
    output columns; the shared base B-tree clusters on the base column named
    [base_cluster] when given, else (compatibility default) on the first
    view's clustering column.  Views whose clustering column differs from
    the base tree's key simply lose the clustered-range narrowing on
    rebuilds — answers are unaffected, since view queries run against each
    view's own materialization.
    @raise Invalid_argument on an empty view list, duplicate view names, a
    view over another schema, or an unknown [base_cluster] column. *)

val view_names : t -> string list

val handle_transaction : t -> Strategy.change list -> unit

val answer_query : t -> view:string -> Strategy.query -> (Tuple.t * int) list
(** Range query on the named view's clustering column; refreshes all stale
    views first (one shared [AD] read).
    @raise Not_found for an unknown view name. *)

val refreshes : t -> int
(** Number of shared refresh passes performed so far. *)

val view_contents : t -> view:string -> Bag.t
(** Logical contents (pending changes applied), unmetered. *)
