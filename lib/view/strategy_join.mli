(** Model 2 strategies (two-way natural join views): deferred and immediate
    maintenance, and query modification with a nested-loop join using the
    clustered hash index on the inner relation [R2] (§3.4).  Only the left
    relation [R1] receives updates, as in the paper. *)

open Vmat_storage

type env = {
  ctx : Ctx.t;
      (** The owning engine's execution context (disk, meter, geometry,
          tuple-id source, RNG). *)
  view : View_def.join;
  initial_left : Tuple.t list;
  initial_right : Tuple.t list;
  ad_buckets : int;
  r2_buckets : int;  (** primary buckets of the [R2] hash file ([f_R2 b]). *)
}

val deferred : env -> Strategy.t
val immediate : env -> Strategy.t

val qmod_loopjoin : env -> Strategy.t
(** Nested loops: clustered scan of [R1] as the outer, hash probes into
    [R2] as the inner; [R2] pages stay buffered for the duration of one
    join (§3.4.3). *)
