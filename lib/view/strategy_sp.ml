open Vmat_storage
open Vmat_relalg
module Btree = Vmat_index.Btree
module Hr = Vmat_hypo.Hr

type env = {
  ctx : Ctx.t;
  view : View_def.sp;
  initial : Tuple.t list;
  ad_buckets : int;
}

let meter env = Ctx.meter env.ctx
let disk env = Ctx.disk env.ctx
let geometry env = Ctx.geometry env.ctx
let tids env = Ctx.tids env.ctx
let sp_output env tuple = View_def.sp_output ~tids:(tids env) env.view tuple

(* The base column the view is clustered on (the predicate column). *)
let base_cluster_col env = env.view.sp_positions.(env.view.sp_cluster_out)

let make_base_btree env =
  let schema = env.view.sp_base in
  let col = base_cluster_col env in
  let tree =
    Btree.create ~disk:(disk env) ~name:(Schema.name schema)
      ~fanout:(Strategy.fanout (geometry env))
      ~leaf_capacity:(Strategy.blocking_factor (geometry env) schema)
      ~key_col:col
      ()
  in
  Btree.bulk_load tree env.initial;
  Buffer_pool.invalidate (Btree.pool tree);
  tree

let make_materialized env =
  let mat =
    Materialized.create ~disk:(disk env) ~name:env.view.sp_name
      ~fanout:(Strategy.fanout (geometry env))
      ~leaf_capacity:(Strategy.blocking_factor (geometry env) env.view.sp_out_schema)
      ~cluster_col:env.view.sp_cluster_out ()
  in
  Materialized.rebuild mat (Delta.recompute_sp ~tids:(tids env) env.view env.initial);
  mat

let make_screen env =
  Screen.create ~meter:(meter env) ~view_name:env.view.sp_name ~pred:env.view.sp_pred ()

let answer_from_materialized env mat (q : Strategy.query) =
  let m = meter env in
  Cost_meter.with_category m Cost_meter.Query (fun () ->
      let out = ref [] in
      Materialized.range mat ~lo:q.q_lo ~hi:q.q_hi (fun tuple count ->
          Cost_meter.charge_predicate_test m;
          out := (tuple, count) :: !out);
      Buffer_pool.invalidate (Materialized.pool mat);
      List.rev !out)

(* The readily-ignorable-update test of [Bune79], applied per change: a
   modification that writes no column the view reads (predicate columns or
   projected columns) cannot change the view, so it needs neither stage-2
   screening nor maintenance.  The paper applies the test per command at
   compile time; per change is the same test at a finer grain. *)
let readily_ignorable env (change : Strategy.change) =
  match (change.before, change.after) with
  | Some old_tuple, Some new_tuple when Tuple.arity old_tuple = Tuple.arity new_tuple ->
      let view_reads =
        Predicate.columns_read env.view.sp_pred @ Array.to_list env.view.sp_positions
      in
      let ignorable = ref true in
      Array.iteri
        (fun i v ->
          if (not (Value.equal v (Tuple.get new_tuple i))) && List.mem i view_reads then
            ignorable := false)
        (Tuple.values old_tuple);
      !ignorable
  | _ -> false

(* Screening of one change: both the deleted and the inserted image are
   screened (each is an insertion into or deletion from the base relation),
   unless the RIU test already rules the change out. *)
let screen_change env screen (change : Strategy.change) =
  if readily_ignorable env change then (Some false, Some false)
  else
    let mark = Option.map (Screen.screen screen) in
    (mark change.before, mark change.after)

let logical_view_of_tuples env tuples =
  Delta.recompute_sp ~tids:(tids env) env.view tuples

(* Sanitizer: refresh ≡ recompute.  After an incremental maintenance step the
   stored view must equal the from-scratch recomputation over the current
   base contents — the semantic core of every materialization strategy, and
   exactly the kind of drift (a missed marker, a stale A/D entry, a wrong
   cancellation) that survives unit tests on toy workloads.  Everything here
   is observer-free: the base is read unmetered, and output tids come from a
   throwaway source (minting them from the context source would shift every
   subsequent tid the engine hands out). *)
let check_refresh_equals_recompute env ~name base mat =
  let san = Ctx.sanitizer env.ctx in
  if Sanitize.sample san ~rule:"refresh-equals-recompute" then
    Sanitize.check san ~rule:"refresh-equals-recompute"
      (fun () ->
        let tuples = ref [] in
        Btree.iter_unmetered base (fun tuple -> tuples := tuple :: !tuples);
        let expect =
          Delta.recompute_sp ~tids:(Tuple.source ~first:0 ()) env.view !tuples
        in
        Bag.equal (Materialized.to_bag_unmetered mat) expect)
      ~detail:(fun () ->
        Printf.sprintf
          "%s: incrementally maintained view %s diverged from the from-scratch \
           recomputation over current base contents"
          name env.view.sp_name)

(* ------------------------------------------------------------------ *)
(* Deferred view maintenance                                           *)
(* ------------------------------------------------------------------ *)

(* Shared machinery of the hypothetical-relation strategies: [deferred]
   refreshes just before each query; [deferred_periodic] additionally
   refreshes every [every] transactions (strictly more I/O, by the Yao
   triangle inequality -- the paper's section-4 argument for refreshing only
   on demand); [snapshot] refreshes ONLY every [period] transactions and
   serves possibly-stale answers in between, like the database snapshots of
   [Adib80, Lind86]. *)

type refresh_policy =
  | On_demand
  | Periodic_and_on_demand of int
  | Periodic_only of int

let deferred_with_policy_internal ?layout ~policy ~name env =
  let m = meter env in
  let base = make_base_btree env in
  let hr =
    Hr.create ~disk:(disk env) ~tids:(tids env) ~base ~schema:env.view.sp_base
      ~ad_buckets:env.ad_buckets
      ~tuples_per_page:(Strategy.blocking_factor (geometry env) env.view.sp_base)
      ?layout
      ~sanitize:(Ctx.sanitizer env.ctx) ()
  in
  let mat = make_materialized env in
  let screen = make_screen env in
  let refresh ?(category = Cost_meter.Refresh) () =
    Strategy.refresh_span m ~view:env.view.sp_name (fun () ->
        Cost_meter.with_category m category (fun () ->
            let a_net, d_net = Hr.net_changes hr in
            List.iter
              (fun (tuple, marked) ->
                if marked then
                  Materialized.apply mat Delete (sp_output env tuple))
              d_net;
            List.iter
              (fun (tuple, marked) ->
                if marked then
                  Materialized.apply mat Insert (sp_output env tuple))
              a_net;
            Materialized.flush mat);
        Hr.reset hr;
        check_refresh_equals_recompute env ~name base mat)
  in
  let txns_since_refresh = ref 0 in
  let handle_transaction changes =
    List.iter
      (fun (change : Strategy.change) ->
        let marked_old, marked_new = screen_change env screen change in
        match (change.before, change.after) with
        | Some old_tuple, Some new_tuple ->
            Hr.apply_update hr ~old_tuple ~new_tuple
              ~marked_old:(Option.value ~default:false marked_old)
              ~marked_new:(Option.value ~default:false marked_new)
        | None, Some tuple ->
            Hr.apply_insert hr tuple ~marked:(Option.value ~default:false marked_new)
        | Some tuple, None ->
            Hr.apply_delete hr tuple ~marked:(Option.value ~default:false marked_old)
        | None, None -> ())
      changes;
    Hr.end_transaction hr;
    incr txns_since_refresh;
    match policy with
    | Periodic_and_on_demand every | Periodic_only every ->
        if !txns_since_refresh >= every then begin
          refresh ();
          txns_since_refresh := 0
        end
    | On_demand -> ()
  in
  let answer_query q =
    (match policy with
    | On_demand | Periodic_and_on_demand _ -> refresh ()
    | Periodic_only _ -> () (* snapshots serve the last refreshed state *));
    answer_from_materialized env mat q
  in
  ( {
      Strategy.name;
      handle_transaction;
      answer_query;
      scalar_query = Strategy.no_scalar;
      view_contents =
        (fun () ->
          let bag = Materialized.to_bag_unmetered mat in
          let a_net, d_net = Hr.net_changes_unmetered hr in
          List.iter
            (fun (tuple, marked) ->
              if marked then ignore (Bag.remove bag (sp_output env tuple)))
            d_net;
          List.iter
            (fun (tuple, marked) ->
              if marked then ignore (Bag.add bag (sp_output env tuple)))
            a_net;
          bag);
    },
    refresh,
    hr )

let deferred_with_policy ?layout ~policy ~name env =
  let strategy, _refresh, _hr =
    deferred_with_policy_internal ?layout ~policy ~name env
  in
  strategy

let deferred env = deferred_with_policy ~policy:On_demand ~name:"deferred" env

(* The deferred strategy plus a handle on its hypothetical relation, for
   callers that must see the differential state itself rather than the
   answers it induces: the WAL checkpoint manager snapshots the net A/D
   sets and the Bloom filter (DESIGN §9), and tests exercise
   [Hr.rebuild_filter] against the live filter. *)
let deferred_introspect env =
  let strategy, _refresh, hr =
    deferred_with_policy_internal ~policy:On_demand ~name:"deferred" env
  in
  (strategy, hr)

(* Asynchronous refresh (§4): "if there is idle CPU and disk time available,
   it is likely to be useful to put it to work refreshing views
   asynchronously.  This would improve the response time of view queries in
   some situations since the views would not have to be refreshed first."
   We model idle-time work by refreshing eagerly after every transaction and
   charging that work to the excluded Base category: queries then find the
   view already fresh. *)
let deferred_async env =
  let inner, refresh, _hr =
    deferred_with_policy_internal ~policy:On_demand ~name:"deferred-async" env
  in
  {
    inner with
    Strategy.handle_transaction =
      (fun changes ->
        inner.Strategy.handle_transaction changes;
        (* the idle-time refresh: same work, charged off the critical path *)
        refresh ~category:Cost_meter.Base ());
  }

let deferred_split_ad env =
  deferred_with_policy ~layout:Hr.Split ~policy:On_demand ~name:"deferred-split-ad" env

let deferred_periodic ~every env =
  if every < 1 then invalid_arg "Strategy_sp.deferred_periodic: every must be >= 1";
  deferred_with_policy
    ~policy:(Periodic_and_on_demand every)
    ~name:(Printf.sprintf "deferred-every-%d" every)
    env

let snapshot ~period env =
  if period < 1 then invalid_arg "Strategy_sp.snapshot: period must be >= 1";
  deferred_with_policy ~policy:(Periodic_only period)
    ~name:(Printf.sprintf "snapshot-%d" period)
    env

(* ------------------------------------------------------------------ *)
(* Immediate view maintenance                                          *)
(* ------------------------------------------------------------------ *)

let immediate env =
  let m = meter env in
  let base = make_base_btree env in
  let mat = make_materialized env in
  let screen = make_screen env in
  let update_base (change : Strategy.change) =
    Cost_meter.with_category m Cost_meter.Base (fun () ->
        Option.iter
          (fun tuple ->
            ignore
              (Btree.remove base ~key:(Btree.key_of base tuple) ~tid:(Tuple.tid tuple)))
          change.before;
        Option.iter (Btree.insert base) change.after)
  in
  let handle_transaction changes =
    let marked_deletes = ref [] and marked_inserts = ref [] in
    List.iter
      (fun (change : Strategy.change) ->
        update_base change;
        let marked_old, marked_new = screen_change env screen change in
        (match (change.before, marked_old) with
        | Some tuple, Some true -> marked_deletes := tuple :: !marked_deletes
        | _ -> ());
        match (change.after, marked_new) with
        | Some tuple, Some true -> marked_inserts := tuple :: !marked_inserts
        | _ -> ())
      changes;
    Cost_meter.with_category m Cost_meter.Base (fun () ->
        Buffer_pool.invalidate (Btree.pool base));
    (* Resetting the in-memory A and D sets costs C3 per tuple they hold. *)
    Cost_meter.with_category m Cost_meter.Overhead (fun () ->
        Cost_meter.charge_set_overhead m
          (List.length !marked_deletes + List.length !marked_inserts));
    Strategy.refresh_span m ~view:env.view.sp_name (fun () ->
        Cost_meter.with_category m Cost_meter.Refresh (fun () ->
            List.iter
              (fun tuple ->
                Materialized.apply mat Delete (sp_output env tuple))
              (List.rev !marked_deletes);
            List.iter
              (fun tuple ->
                Materialized.apply mat Insert (sp_output env tuple))
              (List.rev !marked_inserts);
            Materialized.flush mat));
    check_refresh_equals_recompute env ~name:"immediate" base mat
  in
  {
    Strategy.name = "immediate";
    handle_transaction;
    answer_query = (fun q -> answer_from_materialized env mat q);
    scalar_query = Strategy.no_scalar;
    view_contents = (fun () -> Materialized.to_bag_unmetered mat);
  }

(* ------------------------------------------------------------------ *)
(* Query modification                                                  *)
(* ------------------------------------------------------------------ *)

let qmod_answer env m ~compiled examined (q : Strategy.query) =
  (* [examined] aims a page cursor at base rows; each is tested against the
     modified query (view predicate AND query range) at C1, straight off the
     cells.  Only survivors are boxed (and mint an output tid). *)
  let cluster = base_cluster_col env in
  let out = ref [] in
  examined (fun view ->
      Cost_meter.charge_predicate_test m;
      if
        Predicate.eval_view compiled view
        && Tuple_view.compare_col view cluster q.q_lo >= 0
        && Tuple_view.compare_col view cluster q.q_hi <= 0
      then out := (View_def.sp_output_view ~tids:(tids env) env.view view, 1) :: !out);
  List.rev !out

let qmod_clustered env =
  let m = meter env in
  let base = make_base_btree env in
  let compiled = Predicate.compile env.view.sp_base env.view.sp_pred in
  let handle_transaction changes =
    Cost_meter.with_category m Cost_meter.Base (fun () ->
        List.iter
          (fun (change : Strategy.change) ->
            Option.iter
              (fun tuple ->
                ignore
                  (Btree.remove base ~key:(Btree.key_of base tuple) ~tid:(Tuple.tid tuple)))
              change.before;
            Option.iter (Btree.insert base) change.after)
          changes;
        Buffer_pool.invalidate (Btree.pool base))
  in
  let answer_query (q : Strategy.query) =
    Cost_meter.with_category m Cost_meter.Query (fun () ->
        let result =
          qmod_answer env m ~compiled
            (fun f -> Btree.range_views base ~lo:q.q_lo ~hi:q.q_hi f)
            q
        in
        Buffer_pool.invalidate (Btree.pool base);
        result)
  in
  {
    Strategy.name = "qmod-clustered";
    handle_transaction;
    answer_query;
    scalar_query = Strategy.no_scalar;
    view_contents =
      (fun () ->
        let tuples = ref [] in
        Btree.iter_unmetered base (fun tuple -> tuples := tuple :: !tuples);
        logical_view_of_tuples env !tuples);
  }

module Secondary_key = struct
  type t = Value.t * int

  let compare (v1, t1) (v2, t2) =
    match Value.compare v1 v2 with 0 -> Int.compare t1 t2 | c -> c
end

module Secondary = Map.Make (Secondary_key)

let qmod_unclustered env =
  let m = meter env in
  let heap =
    Heap_file.create ~disk:(disk env) ~page_bytes:(geometry env).Strategy.page_bytes
      env.view.sp_base
  in
  let index = ref Secondary.empty in
  let compiled = Predicate.compile env.view.sp_base env.view.sp_pred in
  let cluster_col = base_cluster_col env in
  let key_of tuple = (Tuple.get tuple cluster_col, Tuple.tid tuple) in
  let add tuple =
    let locator = Heap_file.insert heap tuple in
    index := Secondary.add (key_of tuple) locator !index
  in
  List.iter add env.initial;
  Buffer_pool.invalidate (Heap_file.pool heap);
  let handle_transaction changes =
    Cost_meter.with_category m Cost_meter.Base (fun () ->
        List.iter
          (fun (change : Strategy.change) ->
            Option.iter
              (fun tuple ->
                let key = key_of tuple in
                (match Secondary.find_opt key !index with
                | Some locator -> Heap_file.delete heap locator
                | None -> invalid_arg "qmod_unclustered: deleting unknown tuple");
                index := Secondary.remove key !index)
              change.before;
            Option.iter add change.after)
          changes;
        Buffer_pool.invalidate (Heap_file.pool heap))
  in
  let answer_query (q : Strategy.query) =
    Cost_meter.with_category m Cost_meter.Query (fun () ->
        (* Walk the secondary index over the query range; each entry costs a
           (buffered) heap page read — the unclustered y(N, b, N f fv)
           behaviour.  The secondary index itself is assumed resident, as in
           the paper's generous treatment of access paths. *)
        let view = Tuple_view.on (Flat.create ()) 0 in
        let examined f =
          let seq = Secondary.to_seq_from (q.q_lo, Int.min_int) !index in
          Seq.iter
            (fun ((v, _), locator) ->
              if Value.compare v q.q_hi <= 0 then begin
                Heap_file.view_at heap locator view;
                f view
              end)
            (Seq.take_while (fun ((v, _), _) -> Value.compare v q.q_hi <= 0) seq)
        in
        let result = qmod_answer env m ~compiled examined q in
        Buffer_pool.invalidate (Heap_file.pool heap);
        result)
  in
  {
    Strategy.name = "qmod-unclustered";
    handle_transaction;
    answer_query;
    scalar_query = Strategy.no_scalar;
    view_contents =
      (fun () ->
        let tuples = ref [] in
        Heap_file.iter_unmetered heap (fun tuple -> tuples := tuple :: !tuples);
        logical_view_of_tuples env !tuples);
  }

let qmod_sequential env =
  let m = meter env in
  let heap =
    Heap_file.create ~disk:(disk env) ~page_bytes:(geometry env).Strategy.page_bytes
      env.view.sp_base
  in
  let compiled = Predicate.compile env.view.sp_base env.view.sp_pred in
  let locators = Hashtbl.create (List.length env.initial) in
  let add tuple = Hashtbl.replace locators (Tuple.tid tuple) (Heap_file.insert heap tuple) in
  List.iter add env.initial;
  Buffer_pool.invalidate (Heap_file.pool heap);
  let handle_transaction changes =
    Cost_meter.with_category m Cost_meter.Base (fun () ->
        List.iter
          (fun (change : Strategy.change) ->
            Option.iter
              (fun tuple ->
                match Hashtbl.find_opt locators (Tuple.tid tuple) with
                | Some locator ->
                    Heap_file.delete heap locator;
                    Hashtbl.remove locators (Tuple.tid tuple)
                | None -> invalid_arg "qmod_sequential: deleting unknown tuple")
              change.before;
            Option.iter add change.after)
          changes;
        Buffer_pool.invalidate (Heap_file.pool heap))
  in
  let answer_query (q : Strategy.query) =
    Cost_meter.with_category m Cost_meter.Query (fun () ->
        let result = qmod_answer env m ~compiled (fun f -> Heap_file.scan_views heap f) q in
        Buffer_pool.invalidate (Heap_file.pool heap);
        result)
  in
  {
    Strategy.name = "qmod-sequential";
    handle_transaction;
    answer_query;
    scalar_query = Strategy.no_scalar;
    view_contents =
      (fun () ->
        let tuples = ref [] in
        Heap_file.iter_unmetered heap (fun tuple -> tuples := tuple :: !tuples);
        logical_view_of_tuples env !tuples);
  }

(* ------------------------------------------------------------------ *)
(* Full recompute on potentially-affecting update (Buneman & Clemons)  *)
(* ------------------------------------------------------------------ *)

let recompute env =
  let m = meter env in
  let base = make_base_btree env in
  let mat = make_materialized env in
  let screen = make_screen env in
  let dirty = ref false in
  let handle_transaction changes =
    Cost_meter.with_category m Cost_meter.Base (fun () ->
        List.iter
          (fun (change : Strategy.change) ->
            Option.iter
              (fun tuple ->
                ignore
                  (Btree.remove base ~key:(Btree.key_of base tuple) ~tid:(Tuple.tid tuple)))
              change.before;
            Option.iter (Btree.insert base) change.after)
          changes;
        Buffer_pool.invalidate (Btree.pool base));
    List.iter
      (fun change ->
        let marked_old, marked_new = screen_change env screen change in
        if marked_old = Some true || marked_new = Some true then dirty := true)
      changes
  in
  let refresh_if_needed () =
    if !dirty then begin
      Strategy.refresh_span m ~view:env.view.sp_name ~name:"recompute" @@ fun () ->
      Cost_meter.with_category m Cost_meter.Refresh (fun () ->
          (* Recompute with a clustered scan of the base relation and replace
             the stored copy wholesale. *)
          let tuples = ref [] in
          let lo, hi =
            Strategy.clustered_scan_bounds env.view.sp_pred
              ~cluster_col:(base_cluster_col env)
          in
          Btree.range base ~lo ~hi (fun tuple ->
              Cost_meter.charge_predicate_test m;
              tuples := tuple :: !tuples);
          Buffer_pool.invalidate (Btree.pool base);
          Materialized.rebuild mat (logical_view_of_tuples env !tuples));
      dirty := false
    end
  in
  {
    Strategy.name = "recompute";
    handle_transaction;
    answer_query =
      (fun q ->
        refresh_if_needed ();
        answer_from_materialized env mat q);
    scalar_query = Strategy.no_scalar;
    view_contents =
      (fun () ->
        let tuples = ref [] in
        Btree.iter_unmetered base (fun tuple -> tuples := tuple :: !tuples);
        logical_view_of_tuples env !tuples);
  }
