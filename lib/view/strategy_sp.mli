(** Model 1 strategies (selection-projection views): deferred and immediate
    view maintenance, query modification through three access paths, and the
    full-recompute strategy of [Bune79] as an extra baseline. *)

open Vmat_storage

type env = {
  ctx : Ctx.t;
      (** The owning engine's execution context (disk, meter, geometry,
          tuple-id source, RNG). *)
  view : View_def.sp;
  initial : Tuple.t list;
  ad_buckets : int;
      (** Static sizing of the deferred differential file (the paper's
          [2u/T] pages). *)
}

val deferred : env -> Strategy.t
(** §2.2/§3.2.1: updates buffered in a hypothetical relation, view refreshed
    just before each query. *)

val deferred_introspect : env -> Strategy.t * Vmat_hypo.Hr.t
(** {!deferred} plus a handle on its hypothetical relation, for callers that
    need the differential state itself rather than the answers it induces:
    the WAL checkpoint manager snapshots the net A/D sets and Bloom filter
    (DESIGN §9), and tests compare {!Vmat_hypo.Hr.rebuild_filter} output
    against the live filter. *)

val deferred_async : env -> Strategy.t
(** §4's asynchronous refresh: idle CPU and disk time brings the view up to
    date after every transaction, so queries need no refresh first.  The
    refresh work is charged to the excluded [Base] category, modeling idle
    capacity; answers are identical to {!deferred}. *)

val deferred_split_ad : env -> Strategy.t
(** {!deferred} with separate [A] and [D] differential files instead of the
    combined [AD] file — the design §2.2.2 rejects because each update must
    read and write both files ("at least five I/O's ... rather than
    three").  Kept as an ablation. *)

val deferred_periodic : every:int -> env -> Strategy.t
(** Deferred maintenance that additionally refreshes after every [every]
    transactions.  Answers are identical to {!deferred}; total refresh I/O
    is never lower (the Yao triangle inequality, §4 — refreshing only on
    demand "uses the least system resources").
    @raise Invalid_argument if [every < 1]. *)

val snapshot : period:int -> env -> Strategy.t
(** A database snapshot [Adib80, Lind86]: the stored copy is refreshed only
    after every [period] transactions, and queries read the last refreshed
    state — answers may be stale by up to [period] transactions.
    @raise Invalid_argument if [period < 1]. *)

val immediate : env -> Strategy.t
(** [Blak86]/§3.2.2: view refreshed after every transaction; in-memory A/D
    sets charged [C3] per marked tuple. *)

val qmod_clustered : env -> Strategy.t
(** §3.2.3 (1): no materialization, clustered index scan of the base
    relation. *)

val qmod_unclustered : env -> Strategy.t
(** §3.2.3 (2): heap-stored base relation with an unclustered (secondary)
    index on the view predicate column. *)

val qmod_sequential : env -> Strategy.t
(** §3.2.3 (3): sequential scan of the entire base relation per query. *)

val recompute : env -> Strategy.t
(** [Bune79]: keep a materialized copy but recompute it from scratch before
    a query whenever some update since the last recomputation survived
    screening. *)
