(** View definitions for the paper's three models: selection-projection of
    one relation (Model 1), natural join of two relations on a key of the
    second (Model 2), and aggregates over a Model-1 view (Model 3). *)

open Vmat_storage
open Vmat_relalg

type sp = {
  sp_name : string;
  sp_base : Schema.t;
  sp_pred : Predicate.t;
  sp_positions : int array;  (** projected base columns, in output order *)
  sp_cluster_out : int;  (** output position of the view's clustering column *)
  sp_out_schema : Schema.t;
}

val make_sp :
  name:string ->
  base:Schema.t ->
  pred:Predicate.t ->
  project:string list ->
  cluster:string ->
  sp
(** @raise Invalid_argument if [cluster] is not among the projected columns
    or the projection names a missing column. *)

val sp_output : tids:Tuple.source -> sp -> Tuple.t -> Tuple.t
(** Project a base tuple into view shape (fresh tid from [tids]). *)

val sp_output_view : tids:Tuple.source -> sp -> Tuple_view.t -> Tuple.t
(** {!sp_output} straight off a page cursor: projects the viewed row into a
    boxed view tuple in one allocation (fresh tid from [tids]). *)

type join = {
  j_name : string;
  j_left : Schema.t;
  j_right : Schema.t;
  j_left_pred : Predicate.t;  (** the clause [C_f], over left columns *)
  j_left_col : int;
  j_right_col : int;  (** a key of the right relation *)
  j_positions_left : int array;
  j_positions_right : int array;
  j_cluster_out : int;
  j_out_schema : Schema.t;
}

val make_join :
  name:string ->
  left:Schema.t ->
  right:Schema.t ->
  left_pred:Predicate.t ->
  on:string * string ->
  project_left:string list ->
  project_right:string list ->
  cluster:string ->
  join
(** [cluster] must name a projected column of the left relation. *)

val join_output : tids:Tuple.source -> join -> Tuple.t -> Tuple.t -> Tuple.t
(** Build the view tuple for a joining pair (fresh tid from [tids]). *)

type agg_kind =
  | Count
  | Sum of int
  | Avg of int
  | Variance of int
  | Min of int
  | Max of int

type agg = { a_name : string; a_over : sp; a_kind : agg_kind }

val make_agg : name:string -> over:sp -> kind:[ `Count | `Sum of string | `Avg of string | `Variance of string | `Min of string | `Max of string ] -> agg
(** Column names are resolved against the base schema of [over].
    @raise Invalid_argument on a missing column. *)
