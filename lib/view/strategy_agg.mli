(** Model 3 strategies (aggregates over Model-1 views): only the aggregate
    state is stored (one page).  A query reads the state page; maintenance
    writes it when at least one relevant tuple changed (§3.6). *)

open Vmat_storage

type env = {
  ctx : Ctx.t;
      (** The owning engine's execution context (disk, meter, geometry,
          tuple-id source, RNG). *)
  agg : View_def.agg;
  initial : Tuple.t list;
  ad_buckets : int;
}

val deferred : env -> Strategy.t
(** Net changes applied to the state just before each query. *)

val immediate : env -> Strategy.t
(** State updated after every transaction touching the aggregated set. *)

val recompute : env -> Strategy.t
(** Standard processing: recompute the aggregate with a clustered index scan
    of the base relation on every query ([TOTAL_clustered] with the whole
    aggregated set read). *)
