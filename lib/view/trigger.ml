open Vmat_storage
open Vmat_relalg

type condition = Above of float | Below of float | Nonempty | Empty

type event = { condition : condition; transaction : int; value : float }

type watch = { watched : condition; mutable was_true : bool }

type t = {
  meter : Cost_meter.t;
  agg : View_def.agg;
  state : Aggregate.t;
  screen : Screen.t;
  watches : watch list;
  mutable txns : int;
  mutable fired : event list;  (* newest first *)
}

let condition_holds condition ~value ~cardinality =
  match condition with
  | Above threshold -> (not (Float.is_nan value)) && value > threshold
  | Below threshold -> (not (Float.is_nan value)) && value < threshold
  | Nonempty -> cardinality > 0
  | Empty -> cardinality = 0

let evaluate t watch =
  condition_holds watch.watched ~value:(Aggregate.value t.state)
    ~cardinality:(Aggregate.cardinality t.state)

let create ~ctx ~agg ~initial ~conditions () =
  let meter = Ctx.meter ctx in
  let sp = agg.View_def.a_over in
  let state = Aggregate.of_tuples agg.View_def.a_kind (Ops.select sp.sp_pred initial) in
  let t =
    {
      meter;
      agg;
      state;
      screen = Screen.create ~meter ~view_name:agg.View_def.a_name ~pred:sp.sp_pred ();
      watches = List.map (fun watched -> { watched; was_true = false }) conditions;
      txns = 0;
      fired = [];
    }
  in
  List.iter (fun watch -> watch.was_true <- evaluate t watch) t.watches;
  t

let check_watches t =
  List.iter
    (fun watch ->
      let now = evaluate t watch in
      if now && not watch.was_true then
        t.fired <-
          { condition = watch.watched; transaction = t.txns; value = Aggregate.value t.state }
          :: t.fired;
      watch.was_true <- now)
    t.watches

let handle_transaction t changes =
  let touched = ref false in
  List.iter
    (fun (change : Strategy.change) ->
      (match change.Strategy.before with
      | Some tuple when Screen.screen t.screen tuple ->
          Aggregate.delete t.state tuple;
          touched := true
      | _ -> ());
      match change.Strategy.after with
      | Some tuple when Screen.screen t.screen tuple ->
          Aggregate.insert t.state tuple;
          touched := true
      | _ -> ())
    changes;
  (* write the state page when the aggregated set changed, as in immediate
     maintenance of Model 3 *)
  if !touched then
    Cost_meter.with_category t.meter Cost_meter.Refresh (fun () ->
        Cost_meter.charge_write t.meter);
  t.txns <- t.txns + 1;
  check_watches t

let current_value t = Aggregate.value t.state

let events t = List.rev t.fired

let transactions t = t.txns
