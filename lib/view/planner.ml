open Vmat_storage
open Vmat_relalg
module Btree = Vmat_index.Btree

type route = Via_base | Via_view

type t = {
  meter : Cost_meter.t;
  tids : Tuple.source;
  view : View_def.sp;
  base_cluster_col : int;
  base : Btree.t;
  mat : Materialized.t;
  compiled : Tuple_view.t -> bool option;  (* sp_pred over page cursors *)
  screen : Screen.t;
  geometry : Strategy.geometry;
}

let create ~ctx ~view ~base_cluster ~initial () =
  let disk = Ctx.disk ctx in
  let geometry = Ctx.geometry ctx in
  let tids = Ctx.tids ctx in
  let base_cluster_col =
    match Schema.column_index view.View_def.sp_base base_cluster with
    | i -> i
    | exception Not_found ->
        invalid_arg ("Planner.create: unknown base column " ^ base_cluster)
  in
  let meter = Ctx.meter ctx in
  let base =
    Btree.create ~disk ~name:(Schema.name view.sp_base) ~fanout:(Strategy.fanout geometry)
      ~leaf_capacity:(Strategy.blocking_factor geometry view.sp_base)
      ~key_col:base_cluster_col
      ()
  in
  Btree.bulk_load base initial;
  Buffer_pool.invalidate (Btree.pool base);
  let mat =
    Materialized.create ~disk ~name:view.sp_name ~fanout:(Strategy.fanout geometry)
      ~leaf_capacity:(Strategy.blocking_factor geometry view.sp_out_schema)
      ~cluster_col:view.sp_cluster_out ()
  in
  Materialized.rebuild mat (Delta.recompute_sp ~tids view initial);
  let screen = Screen.create ~meter ~view_name:view.sp_name ~pred:view.sp_pred () in
  let compiled = Predicate.compile view.sp_base view.sp_pred in
  { meter; tids; view; base_cluster_col; base; mat; compiled; screen; geometry }

let handle_transaction t changes =
  let marked_deletes = ref [] and marked_inserts = ref [] in
  List.iter
    (fun (change : Strategy.change) ->
      Cost_meter.with_category t.meter Cost_meter.Base (fun () ->
          Option.iter
            (fun tuple ->
              ignore
                (Btree.remove t.base ~key:(Btree.key_of t.base tuple) ~tid:(Tuple.tid tuple)))
            change.Strategy.before;
          Option.iter (Btree.insert t.base) change.Strategy.after);
      (match change.Strategy.before with
      | Some tuple when Screen.screen t.screen tuple -> marked_deletes := tuple :: !marked_deletes
      | _ -> ());
      match change.Strategy.after with
      | Some tuple when Screen.screen t.screen tuple -> marked_inserts := tuple :: !marked_inserts
      | _ -> ())
    changes;
  Cost_meter.with_category t.meter Cost_meter.Base (fun () ->
      Buffer_pool.invalidate (Btree.pool t.base));
  Cost_meter.with_category t.meter Cost_meter.Refresh (fun () ->
      List.iter
        (fun tuple -> Materialized.apply t.mat Delete (View_def.sp_output ~tids:t.tids t.view tuple))
        (List.rev !marked_deletes);
      List.iter
        (fun tuple -> Materialized.apply t.mat Insert (View_def.sp_output ~tids:t.tids t.view tuple))
        (List.rev !marked_inserts);
      Materialized.flush t.mat)

(* Column resolution: its base position, and its output position when
   projected into the view. *)
let resolve t column =
  let base_col =
    match Schema.column_index t.view.sp_base column with
    | i -> i
    | exception Not_found -> invalid_arg ("Planner: unknown column " ^ column)
  in
  let out_col =
    let rec find i =
      if i >= Array.length t.view.sp_positions then None
      else if t.view.sp_positions.(i) = base_col then Some i
      else find (i + 1)
    in
    find 0
  in
  (base_col, out_col)

(* Selectivity of a range against a clustered structure, estimated from its
   current key span (catalog statistics, assuming a roughly uniform key
   distribution); 1.0 when the keys are not numeric. *)
let range_fraction tree ~lo ~hi =
  match (Btree.min_key_unmetered tree, Btree.max_key_unmetered tree) with
  | Some min_key, Some max_key -> (
      match
        ( Value.as_float min_key,
          Value.as_float max_key,
          Value.as_float lo,
          Value.as_float hi )
      with
      | kmin, kmax, a, b when kmax > kmin ->
          Float.max 0. (Float.min 1. ((Float.min b kmax -. Float.max a kmin) /. (kmax -. kmin)))
      | _ -> 1.
      | exception Invalid_argument _ -> 1.)
  | _ -> 1.

let plan t ~column ~lo ~hi =
  let base_col, out_col = resolve t column in
  let base_pages =
    float_of_int (Btree.leaf_pages t.base)
    *. (if base_col = t.base_cluster_col then range_fraction t.base ~lo ~hi else 1.)
  in
  let view_pages =
    match out_col with
    | None -> Float.infinity (* the view cannot answer a filter on this column *)
    | Some out ->
        let tree = Materialized.tree t.mat in
        float_of_int (Btree.leaf_pages tree)
        *. (if out = t.view.sp_cluster_out then range_fraction tree ~lo ~hi else 1.)
  in
  if base_pages <= view_pages then Via_base else Via_view

let in_range value ~lo ~hi = Value.compare lo value <= 0 && Value.compare value hi <= 0

let answer_via t route ~column ~lo ~hi =
  let base_col, out_col = resolve t column in
  match route with
  | Via_base ->
      Cost_meter.with_category t.meter Cost_meter.Query (fun () ->
          let out = ref [] in
          let scan_lo, scan_hi =
            if base_col = t.base_cluster_col then (lo, hi)
            else (Strategy.min_sentinel, Strategy.max_sentinel)
          in
          Btree.range_views t.base ~lo:scan_lo ~hi:scan_hi (fun v ->
              Cost_meter.charge_predicate_test t.meter;
              if
                Predicate.eval_view t.compiled v
                && Tuple_view.compare_col v base_col lo >= 0
                && Tuple_view.compare_col v base_col hi <= 0
              then out := (View_def.sp_output_view ~tids:t.tids t.view v, 1) :: !out);
          Buffer_pool.invalidate (Btree.pool t.base);
          List.rev !out)
  | Via_view -> (
      match out_col with
      | None -> invalid_arg "Planner.answer_via: column not projected into the view"
      | Some out ->
          Cost_meter.with_category t.meter Cost_meter.Query (fun () ->
              let results = ref [] in
              let scan_lo, scan_hi =
                if out = t.view.sp_cluster_out then (lo, hi)
                else (Strategy.min_sentinel, Strategy.max_sentinel)
              in
              Materialized.range t.mat ~lo:scan_lo ~hi:scan_hi (fun tuple count ->
                  Cost_meter.charge_predicate_test t.meter;
                  if in_range (Tuple.get tuple out) ~lo ~hi then
                    results := (tuple, count) :: !results);
              Buffer_pool.invalidate (Materialized.pool t.mat);
              List.rev !results))

let answer t ~column ~lo ~hi =
  let route = plan t ~column ~lo ~hi in
  (route, answer_via t route ~column ~lo ~hi)
