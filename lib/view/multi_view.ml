open Vmat_storage
open Vmat_relalg
module Btree = Vmat_index.Btree
module Hr = Vmat_hypo.Hr

type view_state = {
  def : View_def.sp;
  mat : Materialized.t;
  screen : Screen.t;
  mutable stale : bool;
}

type t = {
  meter : Cost_meter.t;
  tids : Tuple.source;
  hr : Hr.t;
  views : (string * view_state) list;
  mutable refreshes : int;
}

let create ~ctx ~base ~views ~initial ~ad_buckets ?base_cluster () =
  let disk = Ctx.disk ctx in
  let geometry = Ctx.geometry ctx in
  let tids = Ctx.tids ctx in
  if List.is_empty views then invalid_arg "Multi_view.create: no views";
  let names = List.map (fun (v : View_def.sp) -> v.sp_name) views in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Multi_view.create: duplicate view names";
  List.iter
    (fun (v : View_def.sp) ->
      if not (Schema.name v.sp_base = Schema.name base) then
        invalid_arg ("Multi_view.create: view " ^ v.sp_name ^ " is over another schema"))
    views;
  let meter = Ctx.meter ctx in
  let base_cluster =
    match base_cluster with
    | Some name -> (
        match Schema.column_index base name with
        | i -> i
        | exception Not_found ->
            invalid_arg
              ("Multi_view.create: base_cluster " ^ name ^ " is not a column of "
             ^ Schema.name base))
    | None ->
        (* Compatibility default: cluster the base on the first view's
           clustering column, as the original single-cluster engine did. *)
        let first = List.hd views in
        first.sp_positions.(first.sp_cluster_out)
  in
  let base_tree =
    Btree.create ~disk ~name:(Schema.name base) ~fanout:(Strategy.fanout geometry)
      ~leaf_capacity:(Strategy.blocking_factor geometry base)
      ~key_col:base_cluster
      ()
  in
  Btree.bulk_load base_tree initial;
  Buffer_pool.invalidate (Btree.pool base_tree);
  let hr =
    Hr.create ~disk ~tids ~base:base_tree ~schema:base ~ad_buckets
      ~tuples_per_page:(Strategy.blocking_factor geometry base)
      ~sanitize:(Ctx.sanitizer ctx) ()
  in
  let make_state (v : View_def.sp) =
    let mat =
      Materialized.create ~disk ~name:v.sp_name ~fanout:(Strategy.fanout geometry)
        ~leaf_capacity:(Strategy.blocking_factor geometry v.sp_out_schema)
        ~cluster_col:v.sp_cluster_out ()
    in
    Materialized.rebuild mat (Delta.recompute_sp ~tids v initial);
    ( v.sp_name,
      {
        def = v;
        mat;
        screen = Screen.create ~meter ~view_name:v.sp_name ~pred:v.sp_pred ();
        stale = false;
      } )
  in
  { meter; tids; hr; views = List.map make_state views; refreshes = 0 }

let view_names t = List.map fst t.views

(* A tuple is recorded as marked in the shared differential file when it is
   marked for at least one view; per-view relevance is re-derived from the
   stored predicate at refresh time (conceptually the per-view marker bits
   stored with the entry, so no extra charge). *)
let screen_all t tuple =
  List.fold_left
    (fun any (_, state) ->
      let marked = Screen.screen state.screen tuple in
      if marked then state.stale <- true;
      marked || any)
    false t.views

let handle_transaction t changes =
  List.iter
    (fun (change : Strategy.change) ->
      let mark = Option.map (screen_all t) in
      let marked_old = mark change.Strategy.before
      and marked_new = mark change.Strategy.after in
      match (change.Strategy.before, change.Strategy.after) with
      | Some old_tuple, Some new_tuple ->
          Hr.apply_update t.hr ~old_tuple ~new_tuple
            ~marked_old:(Option.value ~default:false marked_old)
            ~marked_new:(Option.value ~default:false marked_new)
      | None, Some tuple ->
          Hr.apply_insert t.hr tuple ~marked:(Option.value ~default:false marked_new)
      | Some tuple, None ->
          Hr.apply_delete t.hr tuple ~marked:(Option.value ~default:false marked_old)
      | None, None -> ())
    changes;
  Hr.end_transaction t.hr

let relevant (state : view_state) tuple = Predicate.eval state.def.sp_pred tuple

let refresh_all t =
  if List.exists (fun (_, state) -> state.stale) t.views then begin
    t.refreshes <- t.refreshes + 1;
    Cost_meter.with_category t.meter Cost_meter.Refresh (fun () ->
        let a_net, d_net = Hr.net_changes t.hr in
        List.iter
          (fun (_, state) ->
            List.iter
              (fun (tuple, marked) ->
                if marked && relevant state tuple then
                  Materialized.apply state.mat Delete (View_def.sp_output ~tids:t.tids state.def tuple))
              d_net;
            List.iter
              (fun (tuple, marked) ->
                if marked && relevant state tuple then
                  Materialized.apply state.mat Insert (View_def.sp_output ~tids:t.tids state.def tuple))
              a_net;
            Materialized.flush state.mat;
            state.stale <- false)
          t.views);
    Hr.reset t.hr
  end

let state_of t view =
  match List.assoc_opt view t.views with
  | Some state -> state
  | None -> raise Not_found

let answer_query t ~view (q : Strategy.query) =
  refresh_all t;
  let state = state_of t view in
  Cost_meter.with_category t.meter Cost_meter.Query (fun () ->
      let out = ref [] in
      Materialized.range state.mat ~lo:q.q_lo ~hi:q.q_hi (fun tuple count ->
          Cost_meter.charge_predicate_test t.meter;
          out := (tuple, count) :: !out);
      Buffer_pool.invalidate (Materialized.pool state.mat);
      List.rev !out)

let refreshes t = t.refreshes

let view_contents t ~view =
  let state = state_of t view in
  let bag = Materialized.to_bag_unmetered state.mat in
  let a_net, d_net = Hr.net_changes_unmetered t.hr in
  List.iter
    (fun (tuple, marked) ->
      if marked && relevant state tuple then
        ignore (Bag.remove bag (View_def.sp_output ~tids:t.tids state.def tuple)))
    d_net;
  List.iter
    (fun (tuple, marked) ->
      if marked && relevant state tuple then
        ignore (Bag.add bag (View_def.sp_output ~tids:t.tids state.def tuple)))
    a_net;
  bag
