open Vmat_storage
open Vmat_relalg
module Btree = Vmat_index.Btree
module Hash_file = Vmat_index.Hash_file

type side = Left | Right

type store = {
  meter : Cost_meter.t;
  tids : Tuple.source;
  view : View_def.join;
  r1 : Btree.t;
  (* Unclustered access path on R1's join column: the in-memory directory of
     an index whose page reads are charged one per probe. *)
  r1_by_jkey : (string, Tuple.t list) Hashtbl.t;
  r2 : Hash_file.t;
  screen : Screen.t;
}

type t = {
  name : string;
  handle : (side * Strategy.change) list -> unit;
  answer : Strategy.query -> (Tuple.t * int) list;
  contents : unit -> Bag.t;
}

let name t = t.name
let handle_transaction t changes = t.handle changes
let answer_query t q = t.answer q
let view_contents t = t.contents ()

let make_store (env : Strategy_join.env) =
  let ctx = env.Strategy_join.ctx in
  let meter = Ctx.meter ctx in
  let geometry = Ctx.geometry ctx in
  let view = env.view in
  let cluster_col = view.j_positions_left.(view.j_cluster_out) in
  let r1 =
    Btree.create ~disk:(Ctx.disk ctx) ~name:(Schema.name view.j_left)
      ~fanout:(Strategy.fanout geometry)
      ~leaf_capacity:(Strategy.blocking_factor geometry view.j_left)
      ~key_col:cluster_col
      ()
  in
  Btree.bulk_load r1 env.initial_left;
  Buffer_pool.invalidate (Btree.pool r1);
  let r1_by_jkey = Hashtbl.create 256 in
  let jkey_of tuple = Value.key_string (Tuple.get tuple view.j_left_col) in
  let index_add tuple =
    let key = jkey_of tuple in
    Hashtbl.replace r1_by_jkey key
      (tuple :: Option.value ~default:[] (Hashtbl.find_opt r1_by_jkey key))
  in
  let index_remove tuple =
    let key = jkey_of tuple in
    match Hashtbl.find_opt r1_by_jkey key with
    | None -> ()
    | Some tuples ->
        Hashtbl.replace r1_by_jkey key
          (List.filter (fun t -> Tuple.tid t <> Tuple.tid tuple) tuples)
  in
  List.iter index_add env.initial_left;
  let r2 =
    Hash_file.create ~disk:(Ctx.disk ctx) ~name:(Schema.name view.j_right)
      ~buckets:env.r2_buckets
      ~tuples_per_page:(Strategy.blocking_factor geometry view.j_right)
      ~key_col:view.j_right_col
      ()
  in
  List.iter (Hash_file.insert r2) env.initial_right;
  Buffer_pool.invalidate (Hash_file.pool r2);
  let screen = Screen.create ~meter ~view_name:view.j_name ~pred:view.j_left_pred () in
  let store = { meter; tids = Ctx.tids ctx; view; r1; r1_by_jkey; r2; screen } in
  (store, index_add, index_remove)

(* Collect the A and D sets of one transaction per relation (a modification
   contributes to both). *)
let partition changes =
  List.fold_left
    (fun (a1, d1, a2, d2) (side, (change : Strategy.change)) ->
      let add_opt set tuple = match tuple with Some t -> t :: set | None -> set in
      match side with
      | Left -> (add_opt a1 change.after, add_opt d1 change.before, a2, d2)
      | Right -> (a1, d1, add_opt a2 change.after, add_opt d2 change.before))
    ([], [], [], []) changes

let passes store tuple = Predicate.eval store.view.j_left_pred tuple

(* Join one left tuple to the stored R2 (hash probe, charged). *)
let probe_r2 store left_tuple =
  Cost_meter.charge_predicate_test store.meter;
  List.map
    (fun right -> View_def.join_output ~tids:store.tids store.view left_tuple right)
    (Hash_file.lookup store.r2 (Tuple.get left_tuple store.view.j_left_col))

(* Join one right tuple to the stored R1 through the unclustered join-column
   index: one page read per probe plus C1, the usual secondary-index
   charge. *)
let probe_r1 store right_tuple =
  Cost_meter.charge_read store.meter;
  Cost_meter.charge_predicate_test store.meter;
  let key = Value.key_string (Tuple.get right_tuple store.view.j_right_col) in
  List.filter_map
    (fun left ->
      if passes store left then Some (View_def.join_output ~tids:store.tids store.view left right_tuple)
      else None)
    (Option.value ~default:[] (Hashtbl.find_opt store.r1_by_jkey key))

(* In-memory join of two delta sets. *)
let join_deltas store lefts rights =
  List.concat_map
    (fun left ->
      Cost_meter.charge_predicate_test store.meter;
      if not (passes store left) then []
      else
        List.filter_map
          (fun right ->
            if
              Value.equal
                (Tuple.get left store.view.j_left_col)
                (Tuple.get right store.view.j_right_col)
            then Some (View_def.join_output ~tids:store.tids store.view left right)
            else None)
          rights)
    lefts

let base_apply store index_add index_remove ~deletes:(d1, d2) ~inserts:(a1, a2) =
  Cost_meter.with_category store.meter Cost_meter.Base (fun () ->
      List.iter
        (fun tuple ->
          ignore (Btree.remove store.r1 ~key:(Btree.key_of store.r1 tuple) ~tid:(Tuple.tid tuple));
          index_remove tuple)
        d1;
      List.iter
        (fun tuple ->
          ignore
            (Hash_file.remove store.r2
               ~key:(Tuple.get tuple store.view.j_right_col)
               ~tid:(Tuple.tid tuple)))
        d2;
      List.iter
        (fun tuple ->
          Btree.insert store.r1 tuple;
          index_add tuple)
        a1;
      List.iter (Hash_file.insert store.r2) a2;
      Buffer_pool.invalidate (Btree.pool store.r1))

let answer_from store mat (q : Strategy.query) =
  Cost_meter.with_category store.meter Cost_meter.Query (fun () ->
      let out = ref [] in
      Materialized.range mat ~lo:q.q_lo ~hi:q.q_hi (fun tuple count ->
          Cost_meter.charge_predicate_test store.meter;
          out := (tuple, count) :: !out);
      Buffer_pool.invalidate (Materialized.pool mat);
      List.rev !out)

let make_materialized (env : Strategy_join.env) =
  let ctx = env.Strategy_join.ctx in
  let geometry = Ctx.geometry ctx in
  let mat =
    Materialized.create ~disk:(Ctx.disk ctx) ~name:env.view.j_name
      ~fanout:(Strategy.fanout geometry)
      ~leaf_capacity:(Strategy.blocking_factor geometry env.view.j_out_schema)
      ~cluster_col:env.view.j_cluster_out ()
  in
  Materialized.rebuild mat
    (Delta.recompute_join ~tids:(Ctx.tids ctx) env.view env.initial_left env.initial_right);
  mat

let marked store tuple = Screen.screen store.screen tuple

let immediate env =
  let store, index_add, index_remove = make_store env in
  let mat = make_materialized env in
  let handle changes =
    let a1, d1, a2, d2 = partition changes in
    (* screening on the restricted relation only (stage 1 + 2); right-side
       changes always affect the view through the join, so they need no
       predicate screen *)
    let d1_marked = List.filter (marked store) d1 in
    (* Phase 1: apply the deletions, leaving the stored states at R1'/R2'. *)
    base_apply store index_add index_remove ~deletes:(d1, d2) ~inserts:([], []);
    Cost_meter.with_category store.meter Cost_meter.Refresh (fun () ->
        (* Deletion terms: D1 x R2', R1' x D2, D1 x D2. *)
        let dels =
          List.concat_map (probe_r2 store) d1_marked
          @ List.concat_map (probe_r1 store) d2
          @ join_deltas store d1 d2
        in
        (* Insertion term against R1' before A1 enters: R1' x A2. *)
        let ins_right = List.concat_map (probe_r1 store) a2 in
        List.iter (Materialized.apply mat Delete) dels;
        (* Phase 2: apply the insertions; R2 becomes R2' u A2. *)
        Cost_meter.with_category store.meter Cost_meter.Base (fun () ->
            base_apply store index_add index_remove ~deletes:([], []) ~inserts:(a1, a2));
        (* A1 x (R2' u A2) = A1 x R2' u A1 x A2. *)
        let a1_marked = List.filter (marked store) a1 in
        let ins_left = List.concat_map (probe_r2 store) a1_marked in
        List.iter (Materialized.apply mat Insert) (ins_right @ ins_left);
        Buffer_pool.invalidate (Hash_file.pool store.r2);
        Materialized.flush mat)
  in
  {
    name = "bilateral-immediate";
    handle;
    answer = (fun q -> answer_from store mat q);
    contents = (fun () -> Materialized.to_bag_unmetered mat);
  }

let blakeley env =
  let store, index_add, index_remove = make_store env in
  let mat = make_materialized env in
  let handle changes =
    let a1, d1, a2, d2 = partition changes in
    let d1_marked = List.filter (marked store) d1 in
    let a1_marked = List.filter (marked store) a1 in
    (* All terms evaluated against the PRE-transaction states — Blakeley's
       formulation (Appendix A). *)
    Cost_meter.with_category store.meter Cost_meter.Refresh (fun () ->
        let dels =
          join_deltas store d1 d2
          @ List.concat_map (probe_r2 store) d1_marked
          @ List.concat_map (probe_r1 store) d2
        in
        let ins =
          join_deltas store a1 a2
          @ List.concat_map (probe_r2 store) a1_marked
          @ List.concat_map (probe_r1 store) a2
        in
        base_apply store index_add index_remove ~deletes:(d1, d2) ~inserts:(a1, a2);
        List.iter (Materialized.apply mat Delete) dels;
        List.iter (Materialized.apply mat Insert) ins;
        Buffer_pool.invalidate (Hash_file.pool store.r2);
        Materialized.flush mat)
  in
  {
    name = "bilateral-blakeley";
    handle;
    answer = (fun q -> answer_from store mat q);
    contents = (fun () -> Materialized.to_bag_unmetered mat);
  }

let loopjoin env =
  let store, index_add, index_remove = make_store env in
  let compiled = Predicate.compile store.view.j_left store.view.j_left_pred in
  let handle changes =
    let a1, d1, a2, d2 = partition changes in
    base_apply store index_add index_remove ~deletes:(d1, d2) ~inserts:(a1, a2)
  in
  let answer (q : Strategy.query) =
    Cost_meter.with_category store.meter Cost_meter.Query (fun () ->
        (* Survivors are boxed during the scan and the R2 probes run after
           it: probing Hash_file pulls pages through its buffer pool, which
           must not happen under the live R1 cursor (vmlint D9). *)
        let survivors = ref [] in
        Btree.range_views store.r1 ~lo:q.q_lo ~hi:q.q_hi (fun view ->
            Cost_meter.charge_predicate_test store.meter;
            if Predicate.eval_view compiled view then
              survivors := Tuple_view.materialize view :: !survivors);
        let out = ref [] in
        List.iter
          (fun left ->
            List.iter (fun v -> out := (v, 1) :: !out) (probe_r2 store left))
          (List.rev !survivors);
        Buffer_pool.invalidate (Btree.pool store.r1);
        Buffer_pool.invalidate (Hash_file.pool store.r2);
        List.rev !out)
  in
  let contents () =
    let lefts = ref [] in
    Btree.iter_unmetered store.r1 (fun t -> lefts := t :: !lefts);
    let rights = ref [] in
    Hash_file.iter_unmetered store.r2 (fun t -> rights := t :: !rights);
    Delta.recompute_join ~tids:store.tids store.view !lefts !rights
  in
  { name = "bilateral-loopjoin"; handle; answer; contents }
