open Vmat_storage
open Vmat_relalg
module Btree = Vmat_index.Btree
module Hr = Vmat_hypo.Hr

type env = {
  ctx : Ctx.t;
  agg : View_def.agg;
  initial : Tuple.t list;
  ad_buckets : int;
}

let meter env = Ctx.meter env.ctx
let disk env = Ctx.disk env.ctx
let geometry env = Ctx.geometry env.ctx
let tids env = Ctx.tids env.ctx

let sp env = env.agg.View_def.a_over

let base_cluster_col env = (sp env).sp_positions.((sp env).sp_cluster_out)

let make_base_btree env =
  let schema = (sp env).sp_base in
  let col = base_cluster_col env in
  let tree =
    Btree.create ~disk:(disk env) ~name:(Schema.name schema)
      ~fanout:(Strategy.fanout (geometry env))
      ~leaf_capacity:(Strategy.blocking_factor (geometry env) schema)
      ~key_col:col
      ()
  in
  Btree.bulk_load tree env.initial;
  Buffer_pool.invalidate (Btree.pool tree);
  tree

let make_screen env =
  Screen.create ~meter:(meter env) ~view_name:env.agg.View_def.a_name
    ~pred:(sp env).sp_pred ()

let initial_state env =
  Aggregate.of_tuples env.agg.View_def.a_kind
    (Ops.select (sp env).sp_pred env.initial)

let single_tuple_answer env state =
  [ (Tuple.make ~tid:(Tuple.next (tids env)) [| Value.Float (Aggregate.value state) |], 1) ]

let bag_of_state state =
  Bag.of_list [ Tuple.make ~tid:0 [| Value.Float (Aggregate.value state) |] ]

(* One stored page holds the aggregate state. *)
let alloc_state_page env = Disk.alloc (disk env) ~file:("agg:" ^ env.agg.View_def.a_name)

let read_state env page =
  Cost_meter.with_category (meter env) Cost_meter.Query (fun () -> Disk.read (disk env) page)

let write_state env page =
  Cost_meter.with_category (meter env) Cost_meter.Refresh (fun () -> Disk.write (disk env) page)

let deferred env =
  let base = make_base_btree env in
  let hr =
    Hr.create ~disk:(disk env) ~tids:(tids env) ~base ~schema:(sp env).sp_base ~ad_buckets:env.ad_buckets
      ~tuples_per_page:(Strategy.blocking_factor (geometry env) (sp env).sp_base)
      ~sanitize:(Ctx.sanitizer env.ctx) ()
  in
  let state = initial_state env in
  let page = alloc_state_page env in
  let screen = make_screen env in
  let handle_transaction changes =
    List.iter
      (fun (change : Strategy.change) ->
        let mark = Option.map (Screen.screen screen) in
        let marked_old = mark change.before and marked_new = mark change.after in
        match (change.before, change.after) with
        | Some old_tuple, Some new_tuple ->
            Hr.apply_update hr ~old_tuple ~new_tuple
              ~marked_old:(Option.value ~default:false marked_old)
              ~marked_new:(Option.value ~default:false marked_new)
        | None, Some tuple ->
            Hr.apply_insert hr tuple ~marked:(Option.value ~default:false marked_new)
        | Some tuple, None ->
            Hr.apply_delete hr tuple ~marked:(Option.value ~default:false marked_old)
        | None, None -> ())
      changes;
    Hr.end_transaction hr
  in
  let refresh () =
    Strategy.refresh_span (meter env) ~view:env.agg.View_def.a_name @@ fun () ->
    Cost_meter.with_category (meter env) Cost_meter.Refresh (fun () ->
        let a_net, d_net = Hr.net_changes hr in
        let touched = ref false in
        List.iter
          (fun (tuple, marked) ->
            if marked then begin
              Aggregate.delete state tuple;
              touched := true
            end)
          d_net;
        List.iter
          (fun (tuple, marked) ->
            if marked then begin
              Aggregate.insert state tuple;
              touched := true
            end)
          a_net;
        (* No read is needed: the state is about to be read by the query
           anyway (§3.6); only the write is charged. *)
        if !touched then Disk.write (disk env) page);
    Hr.reset hr
  in
  let scalar_query () =
    refresh ();
    read_state env page;
    Aggregate.value state
  in
  {
    Strategy.name = "deferred";
    handle_transaction;
    answer_query =
      (fun _q ->
        let v = scalar_query () in
        ignore v;
        single_tuple_answer env state);
    scalar_query;
    view_contents =
      (fun () ->
        let tuples = Ops.select (sp env).sp_pred (Hr.contents_unmetered hr) in
        bag_of_state (Aggregate.of_tuples env.agg.View_def.a_kind tuples));
  }

let immediate env =
  let base = make_base_btree env in
  let state = initial_state env in
  let page = alloc_state_page env in
  let screen = make_screen env in
  let m = meter env in
  let handle_transaction changes =
    let touched = ref false in
    List.iter
      (fun (change : Strategy.change) ->
        Cost_meter.with_category m Cost_meter.Base (fun () ->
            Option.iter
              (fun tuple ->
                ignore
                  (Btree.remove base ~key:(Btree.key_of base tuple) ~tid:(Tuple.tid tuple)))
              change.before;
            Option.iter (Btree.insert base) change.after);
        let mark = Option.map (Screen.screen screen) in
        (match (change.before, mark change.before) with
        | Some tuple, Some true ->
            Aggregate.delete state tuple;
            touched := true
        | _ -> ());
        match (change.after, mark change.after) with
        | Some tuple, Some true ->
            Aggregate.insert state tuple;
            touched := true
        | _ -> ())
      changes;
    Cost_meter.with_category m Cost_meter.Base (fun () ->
        Buffer_pool.invalidate (Btree.pool base));
    if !touched then write_state env page
  in
  let scalar_query () =
    read_state env page;
    Aggregate.value state
  in
  {
    Strategy.name = "immediate";
    handle_transaction;
    answer_query =
      (fun _q ->
        ignore (scalar_query ());
        single_tuple_answer env state);
    scalar_query;
    view_contents =
      (fun () ->
        let tuples = ref [] in
        Btree.iter_unmetered base (fun tuple -> tuples := tuple :: !tuples);
        bag_of_state
          (Aggregate.of_tuples env.agg.View_def.a_kind
             (Ops.select (sp env).sp_pred !tuples)));
  }

let recompute env =
  let base = make_base_btree env in
  let m = meter env in
  let compiled = Predicate.compile (sp env).sp_base (sp env).sp_pred in
  let handle_transaction changes =
    Cost_meter.with_category m Cost_meter.Base (fun () ->
        List.iter
          (fun (change : Strategy.change) ->
            Option.iter
              (fun tuple ->
                ignore
                  (Btree.remove base ~key:(Btree.key_of base tuple) ~tid:(Tuple.tid tuple)))
              change.before;
            Option.iter (Btree.insert base) change.after)
          changes;
        Buffer_pool.invalidate (Btree.pool base))
  in
  let compute () =
    Cost_meter.with_category m Cost_meter.Query (fun () ->
        let state = Aggregate.create env.agg.View_def.a_kind in
        let lo, hi =
          Strategy.clustered_scan_bounds (sp env).sp_pred
            ~cluster_col:(base_cluster_col env)
        in
        Btree.range_views base ~lo ~hi (fun v ->
            Cost_meter.charge_predicate_test m;
            if Predicate.eval_view compiled v then
              Aggregate.insert state (Tuple_view.materialize v));
        Buffer_pool.invalidate (Btree.pool base);
        state)
  in
  {
    Strategy.name = "recompute";
    handle_transaction;
    answer_query = (fun _q -> single_tuple_answer env (compute ()));
    scalar_query = (fun () -> Aggregate.value (compute ()));
    view_contents =
      (fun () ->
        let tuples = ref [] in
        Btree.iter_unmetered base (fun tuple -> tuples := tuple :: !tuples);
        bag_of_state
          (Aggregate.of_tuples env.agg.View_def.a_kind
             (Ops.select (sp env).sp_pred !tuples)));
  }
