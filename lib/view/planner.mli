(** The access-path choice of §3.3: "a materialized view could be clustered
    on one attribute, and the base relation on another.  In this situation,
    a query optimizer could choose to process a view query in one of two
    ways, depending on the query predicate" — through the base relation's
    clustered index (query modification) or through the materialized view's
    clustered index as an alternate access path.

    The planner keeps the base relation clustered on a column of its own and
    the view (immediately maintained) clustered on the view's predicate
    column.  Range queries name the column they restrict; the planner
    estimates both plans with the paper's cost arithmetic and runs the
    cheaper one. *)

open Vmat_storage

type t

type route = Via_base | Via_view

val create :
  ctx:Ctx.t ->
  view:View_def.sp ->
  base_cluster:string ->
  initial:Tuple.t list ->
  unit ->
  t
(** [base_cluster] names the base column the relation is clustered on; it
    must differ in general from the view's clustering column (if equal, the
    planner still works — the base route then always wins on updates-free
    workloads).
    @raise Invalid_argument if [base_cluster] is not a base column. *)

val handle_transaction : t -> Strategy.change list -> unit
(** Base update plus immediate view maintenance. *)

val plan : t -> column:string -> lo:Value.t -> hi:Value.t -> route
(** The route the planner would choose for a range restriction on [column]
    (estimated I/O: fraction of the clustered structure scanned if the
    column matches its clustering, full scan otherwise).
    @raise Invalid_argument if [column] is neither clustering column. *)

val answer : t -> column:string -> lo:Value.t -> hi:Value.t -> route * (Tuple.t * int) list
(** Execute the chosen plan: view tuples satisfying the view predicate and
    the range restriction, with duplicate counts. *)

val answer_via : t -> route -> column:string -> lo:Value.t -> hi:Value.t -> (Tuple.t * int) list
(** Force a route (for comparing plans in tests and benchmarks). *)
