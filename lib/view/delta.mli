(** The differential view-update algorithm of §2.1, as pure algebra over
    in-memory tuple sets.  Two formulations of the two-relation case are
    provided: the paper's corrected one (using [R' = R − D]) and Blakeley's
    original, which Appendix A shows can decrement duplicate counts too many
    times when one transaction deletes joining tuples from both relations.

    The operational strategies use metered specializations of these
    expressions (probing stored access methods); these pure functions are the
    correctness reference and power the Appendix-A demonstration. *)

open Vmat_storage
open Vmat_relalg

type t = { ins : Tuple.t list; del : Tuple.t list }
(** View tuples to insert into / delete from the stored copy (with
    multiplicity). *)

val apply : Bag.t -> t -> unit
(** Apply to a duplicate-counted view: inserts increment, deletes decrement
    (counts can go negative, which is exactly the Blakeley corruption). *)

val sp :
  ?meter:Cost_meter.t ->
  tids:Tuple.source ->
  View_def.sp ->
  a:Tuple.t list ->
  d:Tuple.t list ->
  t
(** Model 1: [ins = π(σ(A))], [del = π(σ(D))].  Result tuples draw fresh tids
    from [tids] (the owning engine's source). *)

val join_corrected :
  ?meter:Cost_meter.t ->
  tids:Tuple.source ->
  View_def.join ->
  r1_prime:Tuple.t list ->
  r2_prime:Tuple.t list ->
  a1:Tuple.t list ->
  d1:Tuple.t list ->
  a2:Tuple.t list ->
  d2:Tuple.t list ->
  t
(** Hanson's corrected expression:
    [V1 = V0 − πσ(R1'×D2) − πσ(D1×D2) − πσ(D1×R2')
             ∪ πσ(R1'×A2) ∪ πσ(A1×R2') ∪ πσ(A1×A2)]
    with [R1' = R1 − D1] and [R2' = R2 − D2] (pass the post-deletion
    states). *)

val join_blakeley :
  ?meter:Cost_meter.t ->
  tids:Tuple.source ->
  View_def.join ->
  r1:Tuple.t list ->
  r2:Tuple.t list ->
  a1:Tuple.t list ->
  d1:Tuple.t list ->
  a2:Tuple.t list ->
  d2:Tuple.t list ->
  t
(** Blakeley's original expression (Appendix A), evaluated against the
    pre-transaction states [R1], [R2]:
    [V1 = V0 ∪ πσ(A1×A2) ∪ πσ(A1×R2) ∪ πσ(R1×A2)
             − πσ(D1×D2) − πσ(D1×R2) − πσ(R1×D2)] —
    incorrect when a transaction deletes joining tuples from both sides. *)

type source = {
  src_current : Tuple.t list;  (** [R_i' = R_i − D_i], the post-deletion state *)
  src_inserted : Tuple.t list;  (** [A_i] *)
  src_deleted : Tuple.t list;  (** [D_i] *)
}
(** One of the [N] base relations of the general §2.1 formulation. *)

val nway :
  ?meter:Cost_meter.t ->
  tids:Tuple.source ->
  pred:Predicate.t ->
  positions:int array ->
  source list ->
  t
(** The fully general corrected differential update for
    [V = π_Y(σ_X(R_1 × R_2 × ... × R_N))]: expanding
    [∏(R_i' ∪ A_i)] and [∏(R_i' ∪ D_i)] and cancelling the common all-[R']
    term leaves [2^N - 1] insertion terms and [2^N - 1] deletion terms.
    [pred] and [positions] address the concatenated columns of the cross
    product.  Exponential in [N] by nature; intended for small [N] (the
    paper's analysis stops at [N = 2]).
    @raise Invalid_argument on an empty source list. *)

val recompute_nway :
  ?meter:Cost_meter.t ->
  tids:Tuple.source ->
  pred:Predicate.t ->
  positions:int array ->
  Tuple.t list list ->
  Bag.t
(** Reference full recomputation of an N-way view from the current base
    relation states. *)

val recompute_sp :
  ?meter:Cost_meter.t -> tids:Tuple.source -> View_def.sp -> Tuple.t list -> Bag.t
(** Reference full recomputation of a Model-1 view. *)

val recompute_join :
  ?meter:Cost_meter.t ->
  tids:Tuple.source ->
  View_def.join ->
  Tuple.t list ->
  Tuple.t list ->
  Bag.t
(** Reference full recomputation of a Model-2 view. *)
