open Vmat_storage
open Vmat_relalg

type sp = {
  sp_name : string;
  sp_base : Schema.t;
  sp_pred : Predicate.t;
  sp_positions : int array;
  sp_cluster_out : int;
  sp_out_schema : Schema.t;
}

let position_of schema column =
  match Schema.column_index schema column with
  | i -> i
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf "View_def: column %s not in schema %s" column (Schema.name schema))

let output_position ~projected ~cluster =
  let rec find i = function
    | [] -> invalid_arg ("View_def: cluster column " ^ cluster ^ " is not projected")
    | c :: rest -> if String.equal c cluster then i else find (i + 1) rest
  in
  find 0 projected

let make_sp ~name ~base ~pred ~project ~cluster =
  let positions = Array.of_list (List.map (position_of base) project) in
  {
    sp_name = name;
    sp_base = base;
    sp_pred = pred;
    sp_positions = positions;
    sp_cluster_out = output_position ~projected:project ~cluster;
    sp_out_schema = Schema.project base ~name ~column_names:project ~key:cluster;
  }

let sp_output ~tids sp tuple =
  Tuple.with_tid (Tuple.project tuple sp.sp_positions) (Tuple.next tids)

let sp_output_view ~tids sp view =
  Tuple_view.project view sp.sp_positions ~tid:(Tuple.next tids)

type join = {
  j_name : string;
  j_left : Schema.t;
  j_right : Schema.t;
  j_left_pred : Predicate.t;
  j_left_col : int;
  j_right_col : int;
  j_positions_left : int array;
  j_positions_right : int array;
  j_cluster_out : int;
  j_out_schema : Schema.t;
}

let make_join ~name ~left ~right ~left_pred ~on:(left_on, right_on) ~project_left
    ~project_right ~cluster =
  let positions_left = Array.of_list (List.map (position_of left) project_left) in
  let positions_right = Array.of_list (List.map (position_of right) project_right) in
  let out_columns =
    List.map (fun c -> List.nth (Schema.columns left) (position_of left c)) project_left
    @ List.map (fun c -> List.nth (Schema.columns right) (position_of right c)) project_right
  in
  let half_bytes s = max 1 ((Schema.tuple_bytes s + 1) / 2) in
  let out_schema =
    Schema.make ~name ~columns:out_columns
      ~tuple_bytes:(half_bytes left + half_bytes right)
      ~key:cluster
  in
  {
    j_name = name;
    j_left = left;
    j_right = right;
    j_left_pred = left_pred;
    j_left_col = position_of left left_on;
    j_right_col = position_of right right_on;
    j_positions_left = positions_left;
    j_positions_right = positions_right;
    j_cluster_out = output_position ~projected:(project_left @ project_right) ~cluster;
    j_out_schema = out_schema;
  }

let join_output ~tids j left_tuple right_tuple =
  let l = Tuple.project left_tuple j.j_positions_left in
  let r = Tuple.project right_tuple j.j_positions_right in
  Tuple.concat ~tid:(Tuple.next tids) l r

type agg_kind =
  | Count
  | Sum of int
  | Avg of int
  | Variance of int
  | Min of int
  | Max of int

type agg = { a_name : string; a_over : sp; a_kind : agg_kind }

let make_agg ~name ~over ~kind =
  let col c = position_of over.sp_base c in
  let a_kind =
    match kind with
    | `Count -> Count
    | `Sum c -> Sum (col c)
    | `Avg c -> Avg (col c)
    | `Variance c -> Variance (col c)
    | `Min c -> Min (col c)
    | `Max c -> Max (col c)
  in
  { a_name = name; a_over = over; a_kind }
