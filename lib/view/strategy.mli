(** The common operational interface of the view materialization strategies.
    A strategy owns its storage structures (built over a shared simulated
    disk/meter) and processes two kinds of operations — update transactions
    against the base relation(s) and queries against the view — charging
    costs to the meter categories exactly as the paper attributes them. *)

open Vmat_storage
open Vmat_relalg

type change = { before : Tuple.t option; after : Tuple.t option }
(** One base-relation change within a transaction: insert ([before = None]),
    delete ([after = None]) or modification (both present; the new tuple has
    a fresh tid, per the hypothetical-relation discipline). *)

val modify : old_tuple:Tuple.t -> new_tuple:Tuple.t -> change
val insert : Tuple.t -> change
val delete : Tuple.t -> change

type query = { q_lo : Value.t; q_hi : Value.t }
(** A range query on the view's clustering column (retrieving the fraction
    [fv] of the view). *)

type t = {
  name : string;
  handle_transaction : change list -> unit;
      (** Process one update transaction (the paper's [l] tuples). *)
  answer_query : query -> (Tuple.t * int) list;
      (** Answer a view query: view tuples with duplicate counts. *)
  scalar_query : unit -> float;
      (** Aggregate strategies: current aggregate value (charging the state
          page I/O).  Non-aggregate strategies raise [Invalid_argument]. *)
  view_contents : unit -> Bag.t;
      (** The logical view contents with all pending changes applied —
          unmetered, for equivalence testing. *)
}

type geometry = Ctx.geometry = { page_bytes : int; index_entry_bytes : int }
(** The paper's [B] and [n] — an alias of {!Vmat_storage.Ctx.geometry}, the
    per-engine execution context's geometry. *)

val default_geometry : geometry
(** [B = 4000], [n = 20] (= {!Vmat_storage.Ctx.default_geometry}). *)

val fanout : geometry -> int
(** Index fanout [B/n]. *)

val blocking_factor : geometry -> Schema.t -> int
(** Tuples per page [B/S] for a schema (at least 1). *)

val no_scalar : unit -> float
(** Shared [scalar_query] for non-aggregate strategies. *)

val refresh_span : Cost_meter.t -> view:string -> ?name:string -> (unit -> 'a) -> 'a
(** [refresh_span meter ~view f] runs the refresh body [f] inside a
    [cat:"view"] trace span (default name ["refresh"]) on the meter's
    recorder, attaching the modeled cost the body charged as a [cost_ms]
    end-attribute.  Free (one branch) when the recorder is disabled; never
    affects the meter either way. *)

val min_sentinel : Value.t
val max_sentinel : Value.t
(** Extreme values bracketing every key (used for unbounded scans and
    t-lock interval ends). *)

val clustered_scan_bounds : Predicate.t -> cluster_col:int -> Value.t * Value.t
(** The key range a clustered scan must cover to see every tuple satisfying
    the predicate: the envelope of the predicate's interval cover on the
    clustering column, or the whole key space if no cover exists. *)
