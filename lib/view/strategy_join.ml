open Vmat_storage
open Vmat_relalg
module Btree = Vmat_index.Btree
module Hash_file = Vmat_index.Hash_file
module Hr = Vmat_hypo.Hr

type env = {
  ctx : Ctx.t;
  view : View_def.join;
  initial_left : Tuple.t list;
  initial_right : Tuple.t list;
  ad_buckets : int;
  r2_buckets : int;
}

let meter env = Ctx.meter env.ctx
let disk env = Ctx.disk env.ctx
let geometry env = Ctx.geometry env.ctx
let tids env = Ctx.tids env.ctx
let join_output env l r = View_def.join_output ~tids:(tids env) env.view l r

let base_cluster_col env = env.view.j_positions_left.(env.view.j_cluster_out)

let make_left_btree env =
  let schema = env.view.j_left in
  let col = base_cluster_col env in
  let tree =
    Btree.create ~disk:(disk env) ~name:(Schema.name schema)
      ~fanout:(Strategy.fanout (geometry env))
      ~leaf_capacity:(Strategy.blocking_factor (geometry env) schema)
      ~key_col:col
      ()
  in
  Btree.bulk_load tree env.initial_left;
  Buffer_pool.invalidate (Btree.pool tree);
  tree

let make_right_hash env =
  let schema = env.view.j_right in
  let hash =
    Hash_file.create ~disk:(disk env) ~name:(Schema.name schema) ~buckets:env.r2_buckets
      ~tuples_per_page:(Strategy.blocking_factor (geometry env) schema)
      ~key_col:env.view.j_right_col
      ()
  in
  List.iter (Hash_file.insert hash) env.initial_right;
  Buffer_pool.invalidate (Hash_file.pool hash);
  hash

let make_materialized env =
  let mat =
    Materialized.create ~disk:(disk env) ~name:env.view.j_name
      ~fanout:(Strategy.fanout (geometry env))
      ~leaf_capacity:(Strategy.blocking_factor (geometry env) env.view.j_out_schema)
      ~cluster_col:env.view.j_cluster_out ()
  in
  Materialized.rebuild mat (Delta.recompute_join ~tids:(tids env) env.view env.initial_left env.initial_right);
  mat

let make_screen env =
  Screen.create ~meter:(meter env) ~view_name:env.view.j_name ~pred:env.view.j_left_pred ()

(* Join one marked left tuple to R2 through the hash index, charging C1 for
   handling it (the paper's per-tuple CPU term in the refresh costs). *)
let probe env r2 m left_tuple =
  Cost_meter.charge_predicate_test m;
  List.map
    (fun right_tuple -> join_output env left_tuple right_tuple)
    (Hash_file.lookup r2 (Tuple.get left_tuple env.view.j_left_col))

let answer_from_materialized env mat (q : Strategy.query) =
  let m = meter env in
  Cost_meter.with_category m Cost_meter.Query (fun () ->
      let out = ref [] in
      Materialized.range mat ~lo:q.q_lo ~hi:q.q_hi (fun tuple count ->
          Cost_meter.charge_predicate_test m;
          out := (tuple, count) :: !out);
      Buffer_pool.invalidate (Materialized.pool mat);
      List.rev !out)

let logical_view env left_tuples =
  Delta.recompute_join ~tids:(tids env) env.view left_tuples env.initial_right

let deferred env =
  let m = meter env in
  let base = make_left_btree env in
  let r2 = make_right_hash env in
  let hr =
    Hr.create ~disk:(disk env) ~tids:(tids env) ~base ~schema:env.view.j_left ~ad_buckets:env.ad_buckets
      ~tuples_per_page:(Strategy.blocking_factor (geometry env) env.view.j_left)
      ~sanitize:(Ctx.sanitizer env.ctx) ()
  in
  let mat = make_materialized env in
  let screen = make_screen env in
  let handle_transaction changes =
    List.iter
      (fun (change : Strategy.change) ->
        let mark = Option.map (Screen.screen screen) in
        let marked_old = mark change.before and marked_new = mark change.after in
        match (change.before, change.after) with
        | Some old_tuple, Some new_tuple ->
            Hr.apply_update hr ~old_tuple ~new_tuple
              ~marked_old:(Option.value ~default:false marked_old)
              ~marked_new:(Option.value ~default:false marked_new)
        | None, Some tuple ->
            Hr.apply_insert hr tuple ~marked:(Option.value ~default:false marked_new)
        | Some tuple, None ->
            Hr.apply_delete hr tuple ~marked:(Option.value ~default:false marked_old)
        | None, None -> ())
      changes;
    Hr.end_transaction hr
  in
  let refresh () =
    Strategy.refresh_span m ~view:env.view.j_name @@ fun () ->
    Cost_meter.with_category m Cost_meter.Refresh (fun () ->
        let a_net, d_net = Hr.net_changes hr in
        (* Pages of R2 read for the delete join stay buffered for the insert
           join (§3.4.1); both joins complete before the pool is dropped. *)
        List.iter
          (fun (tuple, marked) ->
            if marked then
              List.iter (Materialized.apply mat Delete) (probe env r2 m tuple))
          d_net;
        List.iter
          (fun (tuple, marked) ->
            if marked then
              List.iter (Materialized.apply mat Insert) (probe env r2 m tuple))
          a_net;
        Buffer_pool.invalidate (Hash_file.pool r2);
        Materialized.flush mat);
    Hr.reset hr
  in
  {
    Strategy.name = "deferred";
    handle_transaction;
    answer_query =
      (fun q ->
        refresh ();
        answer_from_materialized env mat q);
    scalar_query = Strategy.no_scalar;
    view_contents =
      (fun () ->
        let bag = Materialized.to_bag_unmetered mat in
        let a_net, d_net = Hr.net_changes_unmetered hr in
        let outputs tuple =
          List.filter_map
            (fun right_tuple ->
              if Value.equal
                   (Tuple.get tuple env.view.j_left_col)
                   (Tuple.get right_tuple env.view.j_right_col)
              then Some (join_output env tuple right_tuple)
              else None)
            env.initial_right
        in
        List.iter
          (fun (tuple, marked) ->
            if marked then List.iter (fun o -> ignore (Bag.remove bag o)) (outputs tuple))
          d_net;
        List.iter
          (fun (tuple, marked) ->
            if marked then List.iter (fun o -> ignore (Bag.add bag o)) (outputs tuple))
          a_net;
        bag);
  }

let immediate env =
  let m = meter env in
  let base = make_left_btree env in
  let r2 = make_right_hash env in
  let mat = make_materialized env in
  let screen = make_screen env in
  let handle_transaction changes =
    let marked_deletes = ref [] and marked_inserts = ref [] in
    List.iter
      (fun (change : Strategy.change) ->
        Cost_meter.with_category m Cost_meter.Base (fun () ->
            Option.iter
              (fun tuple ->
                ignore
                  (Btree.remove base ~key:(Btree.key_of base tuple) ~tid:(Tuple.tid tuple)))
              change.before;
            Option.iter (Btree.insert base) change.after);
        let mark = Option.map (Screen.screen screen) in
        (match (change.before, mark change.before) with
        | Some tuple, Some true -> marked_deletes := tuple :: !marked_deletes
        | _ -> ());
        match (change.after, mark change.after) with
        | Some tuple, Some true -> marked_inserts := tuple :: !marked_inserts
        | _ -> ())
      changes;
    Cost_meter.with_category m Cost_meter.Base (fun () ->
        Buffer_pool.invalidate (Btree.pool base));
    Cost_meter.with_category m Cost_meter.Overhead (fun () ->
        Cost_meter.charge_set_overhead m
          (List.length !marked_deletes + List.length !marked_inserts));
    Strategy.refresh_span m ~view:env.view.j_name @@ fun () ->
    Cost_meter.with_category m Cost_meter.Refresh (fun () ->
        List.iter
          (fun tuple -> List.iter (Materialized.apply mat Delete) (probe env r2 m tuple))
          (List.rev !marked_deletes);
        List.iter
          (fun tuple -> List.iter (Materialized.apply mat Insert) (probe env r2 m tuple))
          (List.rev !marked_inserts);
        Buffer_pool.invalidate (Hash_file.pool r2);
        Materialized.flush mat)
  in
  {
    Strategy.name = "immediate";
    handle_transaction;
    answer_query = (fun q -> answer_from_materialized env mat q);
    scalar_query = Strategy.no_scalar;
    view_contents = (fun () -> Materialized.to_bag_unmetered mat);
  }

let qmod_loopjoin env =
  let m = meter env in
  let base = make_left_btree env in
  let r2 = make_right_hash env in
  let cluster_col = base_cluster_col env in
  let handle_transaction changes =
    Cost_meter.with_category m Cost_meter.Base (fun () ->
        List.iter
          (fun (change : Strategy.change) ->
            Option.iter
              (fun tuple ->
                ignore
                  (Btree.remove base ~key:(Btree.key_of base tuple) ~tid:(Tuple.tid tuple)))
              change.before;
            Option.iter (Btree.insert base) change.after)
          changes;
        Buffer_pool.invalidate (Btree.pool base))
  in
  let compiled = Predicate.compile env.view.j_left env.view.j_left_pred in
  let answer_query (q : Strategy.query) =
    Cost_meter.with_category m Cost_meter.Query (fun () ->
        (* Modified-query test straight off the cells; only joining survivors
           are boxed, and the R2 probes run after the scan — probing
           Hash_file pulls pages through its buffer pool, which must not
           happen under the live base cursor (vmlint D9). *)
        let survivors = ref [] in
        Btree.range_views base ~lo:q.q_lo ~hi:q.q_hi (fun v ->
            Cost_meter.charge_predicate_test m;
            if
              Predicate.eval_view compiled v
              && Tuple_view.compare_col v cluster_col q.q_lo >= 0
              && Tuple_view.compare_col v cluster_col q.q_hi <= 0
            then survivors := Tuple_view.materialize v :: !survivors);
        let out = ref [] in
        List.iter
          (fun left ->
            List.iter
              (fun view_tuple -> out := (view_tuple, 1) :: !out)
              (probe env r2 m left))
          (List.rev !survivors);
        Buffer_pool.invalidate (Btree.pool base);
        Buffer_pool.invalidate (Hash_file.pool r2);
        List.rev !out)
  in
  {
    Strategy.name = "qmod-loopjoin";
    handle_transaction;
    answer_query;
    scalar_query = Strategy.no_scalar;
    view_contents =
      (fun () ->
        let tuples = ref [] in
        Btree.iter_unmetered base (fun tuple -> tuples := tuple :: !tuples);
        logical_view env !tuples);
  }
