open Vmat_storage
open Vmat_relalg

type t = { ins : Tuple.t list; del : Tuple.t list }

let apply bag { ins; del } =
  List.iter (fun tuple -> ignore (Bag.add bag tuple)) ins;
  List.iter (fun tuple -> ignore (Bag.remove bag tuple)) del

let sp ?meter ~tids (view : View_def.sp) ~a ~d =
  let transform tuples =
    Ops.sp_view ?meter ~tids view.sp_pred ~positions:view.sp_positions tuples
  in
  { ins = transform a; del = transform d }

(* πσ(L × R) for a natural-join view: restrict L by the view's left clause,
   join, project both sides' target lists. *)
let join_term ?meter ~tids (view : View_def.join) left right =
  let restricted = Ops.select ?meter view.j_left_pred left in
  let joined =
    Ops.equi_join ?meter ~tids ~left_col:view.j_left_col ~right_col:view.j_right_col
      restricted right
  in
  (* [equi_join] concatenates full tuples; re-project into view shape. *)
  let left_arity = Schema.arity view.j_left in
  List.map
    (fun joined_tuple ->
      let values = Tuple.values joined_tuple in
      let l = Tuple.make ~tid:0 (Array.sub values 0 left_arity) in
      let r =
        Tuple.make ~tid:0 (Array.sub values left_arity (Array.length values - left_arity))
      in
      View_def.join_output ~tids view l r)
    joined

let join_corrected ?meter ~tids view ~r1_prime ~r2_prime ~a1 ~d1 ~a2 ~d2 =
  let term = join_term ?meter ~tids view in
  {
    ins = term r1_prime a2 @ term a1 r2_prime @ term a1 a2;
    del = term r1_prime d2 @ term d1 d2 @ term d1 r2_prime;
  }

let join_blakeley ?meter ~tids view ~r1 ~r2 ~a1 ~d1 ~a2 ~d2 =
  let term = join_term ?meter ~tids view in
  {
    ins = term a1 a2 @ term a1 r2 @ term r1 a2;
    del = term d1 d2 @ term d1 r2 @ term r1 d2;
  }

type source = {
  src_current : Tuple.t list;
  src_inserted : Tuple.t list;
  src_deleted : Tuple.t list;
}

(* Cross product of one tuple list per relation, concatenating fields
   left-to-right. *)
let cross_all parts =
  List.fold_left
    (fun acc part ->
      List.concat_map
        (fun left -> List.map (fun right -> Tuple.concat ~tid:0 left right) part)
        acc)
    [ Tuple.make ~tid:0 [||] ]
    parts

let nway ?meter ~tids ~pred ~positions sources =
  if List.is_empty sources then invalid_arg "Delta.nway: no sources";
  let n = List.length sources in
  let sources = Array.of_list sources in
  (* One term per non-zero bitmask: bit i set means relation i contributes
     its delta set, otherwise its current state R_i'. *)
  let terms delta_of =
    let out = ref [] in
    for mask = 1 to (1 lsl n) - 1 do
      let parts =
        List.init n (fun i ->
            if mask land (1 lsl i) <> 0 then delta_of sources.(i)
            else sources.(i).src_current)
      in
      let raw = cross_all parts in
      out := Ops.sp_view ?meter ~tids pred ~positions raw @ !out
    done;
    !out
  in
  {
    ins = terms (fun src -> src.src_inserted);
    del = terms (fun src -> src.src_deleted);
  }

let recompute_nway ?meter ~tids ~pred ~positions relations =
  Bag.of_list (Ops.sp_view ?meter ~tids pred ~positions (cross_all relations))

let recompute_sp ?meter ~tids (view : View_def.sp) tuples =
  Bag.of_list (Ops.sp_view ?meter ~tids view.sp_pred ~positions:view.sp_positions tuples)

let recompute_join ?meter ~tids view r1 r2 =
  Bag.of_list (join_term ?meter ~tids view r1 r2)
