open Vmat_storage
open Vmat_relalg
module Tlock = Vmat_index.Tlock
module Recorder = Vmat_obs.Recorder

type t = {
  meter : Cost_meter.t;
  view_name : string;
  pred : Predicate.t;
  compiled : Tuple.t -> bool option;  (* eval3 semantics, zero alloc per row *)
  locks : Tlock.t;
  columns_read : int list;
  mutable stage2 : int;
}

(* Unbounded interval ends become extreme sentinels for the t-lock table. *)
let lo_sentinel = Value.Null
let hi_sentinel = Value.Str "\xff\xff\xff\xff\xff\xff\xff\xff"

let create ~meter ~view_name ~pred () =
  let locks = Tlock.create () in
  (match Predicate.tlock_intervals pred with
  | None -> Tlock.lock_everything locks ~view:view_name
  | Some intervals ->
      List.iter
        (fun (iv : Predicate.interval) ->
          Tlock.lock locks ~view:view_name ~column:iv.column
            ~lo:(Option.value ~default:lo_sentinel iv.lo)
            ~hi:(Option.value ~default:hi_sentinel iv.hi))
        intervals);
  {
    meter;
    view_name;
    pred;
    compiled = Predicate.compile_boxed pred;
    locks;
    columns_read = Predicate.columns_read pred;
    stage2 = 0;
  }

let screen t tuple =
  if not (Tlock.breaks t.locks ~view:t.view_name tuple) then false
  else begin
    t.stage2 <- t.stage2 + 1;
    (let r = Cost_meter.recorder t.meter in
     if Recorder.enabled r then
       Recorder.inc r
         ~help:"Stage-2 screening tests (a t-lock broke, so the full predicate ran)."
         ~labels:[ ("view", t.view_name) ]
         "vmat_screen_stage2_total" 1.);
    Cost_meter.with_category t.meter Cost_meter.Screen (fun () ->
        Cost_meter.charge_predicate_test t.meter);
    (* Satisfiable under the tuple's bindings: only a definite [Some false]
       screens the change out (unknowns must pass, as in
       [Predicate.satisfiable_with]). *)
    match t.compiled tuple with Some false -> false | Some true | None -> true
  end

let stage2_tests t = t.stage2

let readily_ignorable t ~written_columns =
  not (List.exists (fun c -> List.mem c t.columns_read) written_columns)

let tlocks t = t.locks
