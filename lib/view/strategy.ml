open Vmat_storage
open Vmat_relalg

type change = { before : Tuple.t option; after : Tuple.t option }

let modify ~old_tuple ~new_tuple = { before = Some old_tuple; after = Some new_tuple }
let insert tuple = { before = None; after = Some tuple }
let delete tuple = { before = Some tuple; after = None }

type query = { q_lo : Value.t; q_hi : Value.t }

type t = {
  name : string;
  handle_transaction : change list -> unit;
  answer_query : query -> (Tuple.t * int) list;
  scalar_query : unit -> float;
  view_contents : unit -> Bag.t;
}

type geometry = Ctx.geometry = { page_bytes : int; index_entry_bytes : int }

let default_geometry = Ctx.default_geometry

let fanout g = max 2 (g.page_bytes / g.index_entry_bytes)

let blocking_factor g schema = max 1 (g.page_bytes / Schema.tuple_bytes schema)

let no_scalar () = invalid_arg "Strategy.scalar_query: not an aggregate strategy"

(* Observability: run a refresh body inside a trace span that records, at
   span end, how much the refresh actually charged (modeled ms, all
   categories).  The disabled-recorder path is a single branch — no
   snapshot, no allocation — and snapshots are read-only, so the meter
   readings are identical either way. *)
let refresh_span meter ~view ?(name = "refresh") f =
  let module Recorder = Vmat_obs.Recorder in
  let r = Cost_meter.recorder meter in
  if not (Recorder.enabled r) then f ()
  else begin
    let snap = Cost_meter.snapshot meter in
    Recorder.span r ~cat:"view" name
      ~args:[ ("view", view) ]
      ~end_args:(fun () ->
        [ ("cost_ms", Printf.sprintf "%.3f" (Cost_meter.cost_since meter snap ())) ])
      f
  end

let min_sentinel = Value.Null
let max_sentinel = Value.Str "\xff\xff\xff\xff\xff\xff\xff\xff"

let clustered_scan_bounds pred ~cluster_col =
  match Predicate.tlock_intervals pred with
  | None -> (min_sentinel, max_sentinel)
  | Some intervals -> (
      match List.filter (fun (iv : Predicate.interval) -> iv.column = cluster_col) intervals with
      | [] -> (min_sentinel, max_sentinel)
      | on_cluster when List.length on_cluster <> List.length intervals ->
          (* Part of the cover is on other columns; those tuples can lie
             anywhere on the clustering column. *)
          (min_sentinel, max_sentinel)
      | on_cluster ->
          let lo =
            List.fold_left
              (fun acc (iv : Predicate.interval) ->
                match iv.lo with
                | None -> min_sentinel
                | Some v -> if Value.compare v acc < 0 then v else acc)
              max_sentinel on_cluster
          in
          let hi =
            List.fold_left
              (fun acc (iv : Predicate.interval) ->
                match iv.hi with
                | None -> max_sentinel
                | Some v -> if Value.compare v acc > 0 then v else acc)
              min_sentinel on_cluster
          in
          (lo, hi))
