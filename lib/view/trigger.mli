(** Triggers and alerters over materialized aggregates — the application §4
    (after [Bune79]) suggests incremental view maintenance is best suited
    for: "materialization could support conditions for complex triggers and
    alerters".  An alerter watches an incrementally maintained aggregate over
    a Model-1 view and fires when its condition's truth value {e becomes}
    true (edge-triggered), which requires the maintained value after every
    transaction — exactly what immediate maintenance provides and query
    modification cannot do without recomputation. *)

open Vmat_storage

type condition =
  | Above of float  (** aggregate value > threshold *)
  | Below of float  (** aggregate value < threshold *)
  | Nonempty  (** the aggregated set has at least one tuple *)
  | Empty

type event = { condition : condition; transaction : int; value : float }
(** The condition that fired, after which transaction (1-based), and the
    aggregate value at that point. *)

type t

val create :
  ctx:Ctx.t ->
  agg:View_def.agg ->
  initial:Tuple.t list ->
  conditions:condition list ->
  unit ->
  t
(** Conditions already true on the initial state do not fire until they
    become false and then true again. *)

val handle_transaction : t -> Strategy.change list -> unit
(** Maintain the aggregate incrementally (screened, charged like immediate
    maintenance) and evaluate every condition. *)

val current_value : t -> float

val events : t -> event list
(** Fired events, oldest first. *)

val transactions : t -> int

val condition_holds : condition -> value:float -> cardinality:int -> bool
(** The evaluation rule (exposed for testing). *)
