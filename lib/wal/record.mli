(** WAL record vocabulary and framing (DESIGN §9).

    Each record is a tagged binary payload wrapped in a CRC32 frame
    ([Codec.frame]).  A transaction is [Txn_begin], one [Change] per tuple
    modification, then [Commit]; [Commit] carries the 1-based index of the
    operation in the workload stream (the resume point recovery reports).
    [Checkpoint_note] marks a durably-written image covering everything up
    to its [op_index]. *)

open Vmat_storage

type t =
  | Txn_begin of { txn_id : int }
  | Change of { txn_id : int; before : Tuple.t option; after : Tuple.t option }
  | Commit of { txn_id : int; op_index : int }
  | Checkpoint_note of { ckpt_id : int; op_index : int }

val describe : t -> string

val encode : t -> string
val decode : string -> t
(** @raise Codec.Corrupt on a malformed payload. *)

val to_frame : t -> string
(** [Codec.frame (encode r)]. *)

val change_of : Vmat_view.Strategy.change -> txn_id:int -> t
val to_change : t -> Vmat_view.Strategy.change option

type tail =
  | Clean
  | Torn  (** truncated mid-frame: the crash hit a force in flight *)
  | Bad_crc  (** checksum failure: bit rot or a torn overwrite *)

val tail_name : tail -> string

type scan = {
  records : t list;  (** the valid prefix, in log order *)
  valid_bytes : int;
  tail : tail;
}

val scan_bytes : string -> scan
(** Parse bytes into records, stopping at the first invalid frame — torn
    and corrupt tails are detected here and never reach replay. *)
