(* The WAL record vocabulary (DESIGN §9).  One record per log event, each
   wrapped in a CRC32 frame by [Codec.frame]:

     [u32 payload_len][u32 crc32(payload)][tag u8][fields...]

   A transaction is Txn_begin, one Change per tuple modification, then
   Commit; Commit carries the 1-based index of the operation in the
   workload stream, which is what recovery reports as the resume point.
   Checkpoint_note marks that an image covering everything up to
   [op_index] was durably written — recovery can ignore older segments. *)

open Vmat_storage
module Strategy = Vmat_view.Strategy

type t =
  | Txn_begin of { txn_id : int }
  | Change of { txn_id : int; before : Tuple.t option; after : Tuple.t option }
  | Commit of { txn_id : int; op_index : int }
  | Checkpoint_note of { ckpt_id : int; op_index : int }

let tag = function
  | Txn_begin _ -> 1
  | Change _ -> 2
  | Commit _ -> 3
  | Checkpoint_note _ -> 4

let describe = function
  | Txn_begin { txn_id } -> Printf.sprintf "txn-begin %d" txn_id
  | Change { txn_id; before; after } ->
      Printf.sprintf "change txn=%d %s->%s" txn_id
        (match before with None -> "_" | Some t -> string_of_int (Tuple.tid t))
        (match after with None -> "_" | Some t -> string_of_int (Tuple.tid t))
  | Commit { txn_id; op_index } -> Printf.sprintf "commit %d @op %d" txn_id op_index
  | Checkpoint_note { ckpt_id; op_index } ->
      Printf.sprintf "checkpoint %d @op %d" ckpt_id op_index

let encode r =
  let w = Codec.writer () in
  Codec.u8 w (tag r);
  (match r with
  | Txn_begin { txn_id } -> Codec.i64 w txn_id
  | Change { txn_id; before; after } ->
      Codec.i64 w txn_id;
      Codec.option w Codec.tuple before;
      Codec.option w Codec.tuple after
  | Commit { txn_id; op_index } ->
      Codec.i64 w txn_id;
      Codec.i64 w op_index
  | Checkpoint_note { ckpt_id; op_index } ->
      Codec.i64 w ckpt_id;
      Codec.i64 w op_index);
  Codec.contents w

let decode payload =
  let r = Codec.reader payload in
  let record =
    match Codec.r_u8 r with
    | 1 -> Txn_begin { txn_id = Codec.r_i64 r }
    | 2 ->
        let txn_id = Codec.r_i64 r in
        let before = Codec.r_option r Codec.r_tuple in
        let after = Codec.r_option r Codec.r_tuple in
        Change { txn_id; before; after }
    | 3 ->
        let txn_id = Codec.r_i64 r in
        let op_index = Codec.r_i64 r in
        Commit { txn_id; op_index }
    | 4 ->
        let ckpt_id = Codec.r_i64 r in
        let op_index = Codec.r_i64 r in
        Checkpoint_note { ckpt_id; op_index }
    | n -> raise (Codec.Corrupt (Printf.sprintf "bad record tag %d" n))
  in
  if not (Codec.at_end r) then
    raise (Codec.Corrupt "trailing bytes after record payload");
  record

let to_frame r = Codec.frame (encode r)

let change_of (c : Strategy.change) ~txn_id =
  Change { txn_id; before = c.Strategy.before; after = c.Strategy.after }

let to_change = function
  | Change { before; after; _ } -> Some { Strategy.before; after }
  | _ -> None

(* Tail classification after the last whole record. *)
type tail = Clean | Torn | Bad_crc

let tail_name = function Clean -> "clean" | Torn -> "torn" | Bad_crc -> "bad-crc"

type scan = {
  records : t list;  (** in log order *)
  valid_bytes : int;  (** bytes of the valid prefix *)
  tail : tail;
}

(* Parse a byte string into records, stopping at the first invalid frame.
   A frame whose CRC checks but whose payload does not decode is treated as
   [Bad_crc]-grade corruption (it cannot be a clean truncation). *)
let scan_bytes data =
  let r = Codec.reader data in
  let records = ref [] in
  let rec loop () =
    if Codec.at_end r then Clean
    else
      match Codec.read_frame r with
      | Error Codec.Torn -> Torn
      | Error Codec.Bad_crc -> Bad_crc
      | Ok payload -> (
          match decode payload with
          | record ->
              records := record :: !records;
              loop ()
          | exception Codec.Corrupt _ ->
              (* rewind to the frame start for an honest valid_bytes *)
              r.Codec.pos <- r.Codec.pos - (String.length payload + 8);
              Bad_crc)
  in
  let tail = loop () in
  { records = List.rev !records; valid_bytes = r.Codec.pos; tail }
