(** Crash-equivalence harness (DESIGN §9): enumerate every crash point a
    Model-1 workload passes, crash at each, recover on the surviving
    device, re-drive from the resume point, and compare the logical
    outcome (every query answer by stream position + final view contents,
    canonicalized by value key; net base contents bit-for-bit) against the
    uncrashed run.  Deterministic at a fixed seed — `vmperf crash-test`
    and the qcheck property both sit on {!crash_matrix}. *)

module Migrate = Vmat_adaptive.Migrate
module Params = Vmat_cost.Params

type kind = Static of Migrate.kind | Adaptive_k

val all_kinds : kind list
(** The five static disciplines plus the adaptive wrapper. *)

val kind_name : kind -> string
val kind_of_name : string -> kind option

type spec = {
  hp_params : Params.t;
  hp_kind : kind;
  hp_seed : int;
  hp_config : Wal.config;
}

val spec : ?seed:int -> ?config:Wal.config -> params:Params.t -> kind -> spec

type outcome = {
  oc_answers : (int * string) list;
      (** 0-based stream position of each query, canonical answer *)
  oc_view : (string * int) list;  (** canonical final view rows *)
  oc_base : string list;  (** net base contents: "tid key" lines, tid order *)
  oc_ops : int;  (** operations the durable engine counted *)
  oc_checkpoints : int;
}

val outcome_equal : outcome -> outcome -> bool

val state_lines : outcome -> string list
(** Canonical plain-text rendering of the final state (view + base), for
    the CI recovery-smoke byte-for-byte diff. *)

val reference : ?keep_labels:bool -> spec -> outcome * int * (int * string) list
(** Uncrashed run under a counting injector: the outcome, the number of
    crash points the workload passes, and (with [keep_labels]) the
    ordered point labels. *)

type crash_report = {
  cr_point : int;
  cr_label : string;  (** crash-point label ("" when the run completed) *)
  cr_crashed : bool;  (** false when [crash_at] exceeded the point count *)
  cr_resume : int;
  cr_txns_replayed : int;
  cr_tail : Record.tail;
  cr_outcome : outcome;
}

val crash_and_recover : spec -> crash_at:int -> crash_report
(** Run under [Fault.create ~crash_at]; on {!Vmat_storage.Fault.Crash},
    recover on the surviving device with a fresh fault-free context and
    re-drive the stream from the resume point. *)

val crash_into :
  spec -> dev:Device.t -> crash_at:int -> (outcome, string * int) result
(** Run the workload on [dev] (typically a {!Device.dir}) with
    [Fault.create ~crash_at]; [Ok outcome] when [crash_at] exceeded the
    point count and the run completed, [Error (label, point)] when the
    simulated machine died — the device is left exactly as the crash left
    it, for [vmperf recover]. *)

val recover_on : spec -> dev:Device.t -> outcome * Recovery.scan
(** Recover whatever state [dev] holds and re-drive the stream from the
    resume point (a fresh client session: only re-driven queries appear
    in [oc_answers]; view and base state are complete). *)

type matrix = {
  mx_points : int;
  mx_labels : (int * string) list;
  mx_reference : outcome;
  mx_reports : crash_report list;
  mx_mismatches : int list;  (** crash points whose outcome diverged *)
}

val crash_matrix : ?progress:(int -> int -> unit) -> spec -> matrix
(** The full property: reference run, then crash/recover at every point
    [1..K].  [progress k n] is called before point [k] of [n]. *)
