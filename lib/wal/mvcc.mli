(** Multi-version snapshot store with pin/reclaim (DESIGN §10).

    The concurrency substrate of the serving subsystem: a single writer
    {!publish}es an immutable payload per commit epoch; reader domains
    {!pin} the latest version, query it outside any lock, and {!unpin} it
    when done.  A superseded version is reclaimed (dropped from the live
    list) as soon as its pin count reaches zero; the newest version is
    always retained as the target of the next pin.  All operations are
    thread-safe and non-blocking apart from a short mutex-protected
    critical section.

    Payloads must be immutable: every pinning domain receives the same
    value.  The serving layer stores {!Vmat_serve.Snapshot.t} images built
    from the same canonical row representation as the WAL's checkpoint
    images ({!Checkpoint.image}[.ck_view]). *)

type 'a t

type stats = {
  st_published : int;  (** total versions ever published *)
  st_reclaimed : int;  (** superseded versions dropped after their last unpin *)
  st_live : int;  (** versions currently retained *)
  st_max_live : int;  (** high-water mark of retained versions *)
}

val create : ?first_version:int -> unit -> 'a t
(** An empty store; the first {!publish} gets version [first_version]
    (default 0) and versions increase by 1 per publish. *)

val publish : 'a t -> 'a -> int
(** Make [payload] the latest version and return its version number.
    Superseded unpinned versions are reclaimed immediately. *)

val pin : 'a t -> int * 'a
(** Pin and return the latest [(version, payload)].  The version cannot be
    reclaimed until a matching {!unpin}.
    @raise Invalid_argument when nothing has been published. *)

val pin_opt : 'a t -> (int * 'a) option
(** {!pin}, or [None] when nothing has been published. *)

val unpin : 'a t -> int -> unit
(** Release one pin on [version]; reclaims it right away when it is
    superseded and this was its last pin.
    @raise Invalid_argument on an unknown, reclaimed, or unpinned
    version. *)

val latest_version : 'a t -> int option

val live_versions : 'a t -> int list
(** Currently retained versions, ascending. *)

val stats : 'a t -> stats
