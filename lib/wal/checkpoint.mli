(** Versioned checkpoint images (DESIGN §9): a consistent snapshot of the
    net base contents, the materialized view (rows + duplicate counts), the
    hypothetical relation's net A/D sets and Bloom filter, and the adaptive
    controller's state.  Layout: magic ["VMATCKP1"] + one CRC32 frame.
    Images are written atomically; a corrupt image is skipped by {!latest}
    and the log tail covers the difference. *)

open Vmat_storage

type image = {
  ck_id : int;
  ck_op_index : int;
  ck_next_txn_id : int;
  ck_strategy : string;
  ck_base : Tuple.t list;
  ck_view : (Tuple.t * int) list;
  ck_a_net : (Tuple.t * bool) list;
  ck_d_net : (Tuple.t * bool) list;
  ck_bloom_bits : string;
  ck_bloom_insertions : int;
  ck_adaptive : (string * string) list;
}

val file_name : int -> string
val file_id : string -> int option
val image_files : Device.t -> (int * string) list

val encode : image -> string
val decode : string -> image
(** @raise Codec.Corrupt *)

val to_bytes : image -> string
val of_bytes : string -> (image, string) result

val write : Device.t -> image -> unit
val read : Device.t -> id:int -> (image, string) result

val latest : Device.t -> image option
(** Newest image that validates; corrupt ones are skipped. *)

val image_bytes : image -> int
