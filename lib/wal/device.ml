(* The durability device: where log segments and checkpoint images live.

   Two backends.  [Memory] is a per-run in-process store whose contents
   survive a *simulated* crash (the [Fault.Crash] exception unwinds the
   engine, but the device value lives on) — it is what the crash-test
   harness uses, and it keeps `--durability wal` measurement runs free of
   real filesystem traffic, so sweeps stay domain-parallel safe and
   byte-identical at any [--jobs].  [Dir] is a real directory for
   `vmperf recover` demos and CI artifacts.

   Append-order is the only order the log relies on; file listings are
   sorted by name so recovery scans are deterministic on both backends. *)

type t =
  | Memory of (string, Buffer.t) Hashtbl.t
  | Dir of string

let memory () = Memory (Hashtbl.create 16)

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    (try Sys.mkdir path 0o755 with Sys_error _ -> ())
  end

let dir path =
  mkdir_p path;
  if not (Sys.file_exists path && Sys.is_directory path) then
    invalid_arg ("Device.dir: not a directory: " ^ path);
  Dir path

let describe = function
  | Memory _ -> "memory"
  | Dir path -> "dir:" ^ path

let append t ~name data =
  match t with
  | Memory files ->
      let buf =
        match Hashtbl.find_opt files name with
        | Some b -> b
        | None ->
            let b = Buffer.create 4096 in
            Hashtbl.replace files name b;
            b
      in
      Buffer.add_string buf data
  | Dir path ->
      let oc =
        open_out_gen
          [ Open_append; Open_creat; Open_binary ]
          0o644
          (Filename.concat path name)
      in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc data)

(* Whole-file replacement, atomic on the Dir backend (write-temp + rename):
   a checkpoint image is either entirely present or entirely absent, never
   torn — torn tails are a log problem, handled by CRC framing there. *)
let write_atomic t ~name data =
  match t with
  | Memory files ->
      let b = Buffer.create (String.length data) in
      Buffer.add_string b data;
      Hashtbl.replace files name b
  | Dir path ->
      let final = Filename.concat path name in
      let tmp = final ^ ".tmp" in
      let oc = open_out_gen [ Open_trunc; Open_creat; Open_wronly; Open_binary ] 0o644 tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc data);
      Sys.rename tmp final

let read t ~name =
  match t with
  | Memory files -> Option.map Buffer.contents (Hashtbl.find_opt files name)
  | Dir path ->
      let file = Filename.concat path name in
      if not (Sys.file_exists file) then None
      else begin
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic)))
      end

let files t =
  match t with
  | Memory files ->
      List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) files [])
  | Dir path ->
      List.sort String.compare
        (List.filter
           (fun name -> not (Filename.check_suffix name ".tmp"))
           (Array.to_list (Sys.readdir path)))

let remove t ~name =
  match t with
  | Memory files -> Hashtbl.remove files name
  | Dir path ->
      let file = Filename.concat path name in
      if Sys.file_exists file then Sys.remove file

(* Truncate a file to its first [keep] bytes — how recovery repairs a torn
   log tail before the engine appends over it. *)
let truncate t ~name keep =
  match read t ~name with
  | None -> ()
  | Some data ->
      let keep = min keep (String.length data) in
      write_atomic t ~name (String.sub data 0 keep)

let size t ~name = Option.map String.length (read t ~name)

let total_bytes t =
  List.fold_left
    (fun acc name -> acc + Option.value ~default:0 (size t ~name))
    0 (files t)

(* Copy every file onto another device (used by `vmperf crash-test --keep`
   to export an in-memory run's log + checkpoints as CI artifacts). *)
let copy_to t dst =
  List.iter
    (fun name ->
      match read t ~name with
      | Some data -> write_atomic dst ~name data
      | None -> ())
    (files t)
