(** The durability wrapper (DESIGN §9): an ordinary
    {!Vmat_view.Strategy.t} that write-ahead-logs every transaction and
    periodically checkpoints, without changing the inner strategy's
    answers.  A `--durability wal` run differs from `--durability none`
    only by [Wal]-category charges. *)

open Vmat_storage

type probe = {
  p_ad : unit -> (Tuple.t * bool) list * (Tuple.t * bool) list;
      (** net A/D sets of the inner strategy's hypothetical relation *)
  p_bloom : unit -> (string * int) option;  (** filter bits + insertions *)
  p_adaptive : unit -> (string * string) list;  (** controller state *)
}
(** What a checkpoint image captures of the inner strategy's private state
    beyond the catalog the wrapper keeps itself. *)

val null_probe : probe

val hr_probe : Vmat_hypo.Hr.t -> probe
(** Probe over a deferred strategy's hypothetical relation (from
    {!Vmat_view.Strategy_sp.deferred_introspect}). *)

type t

val wrap :
  ?config:Wal.config ->
  ?probe:probe ->
  ?op_index:int ->
  ?next_txn_id:int ->
  ctx:Ctx.t ->
  dev:Device.t ->
  initial:Tuple.t list ->
  Vmat_view.Strategy.t ->
  t
(** Wrap [inner] with WAL durability on [dev].  [initial] seeds the
    uncharged base catalog; [op_index]/[next_txn_id] let recovery resume
    numbering where the pre-crash engine left off. *)

val strategy : t -> Vmat_view.Strategy.t
(** The pluggable durable strategy (same [name] as the inner one —
    durability is an engine property, not a strategy). *)

val wal : t -> Wal.t
val inner : t -> Vmat_view.Strategy.t

val op_index : t -> int
(** 1-based count of operations (transactions and queries) handled. *)

val checkpoints_taken : t -> int

val base_contents : t -> Tuple.t list
(** Net base contents from the catalog, ascending tid. *)

val view_rows : Vmat_view.Strategy.t -> (Tuple.t * int) list
(** Canonical (value-key-ordered) rows + duplicate counts of a strategy's
    logical view contents. *)

val flush : t -> unit
(** Force any buffered log records (end of run). *)

val checkpoint_now : t -> unit
(** Take a checkpoint immediately (operator command / tests). *)
