(* Crash-equivalence harness (DESIGN §9).

   The property `vmperf crash-test` and the qcheck suite check:

     for every crash point k and every strategy,
       recover (crash at k)  ≡  uncrashed run

   "≡" compares *logical* outcomes — every query answer (by stream
   position) and the final view contents, both canonicalized by value key
   (tids of strategy-private view tuples are legitimately reassigned when
   a strategy is rebuilt) — plus the net base contents bit-for-bit
   (logged changes carry original tids, so the catalog replays exactly).

   The enumeration is deterministic: one counting run (crash_at = 0)
   learns the number of points K the workload passes, then each k in
   1..K runs the same workload with [Fault.create ~crash_at:k], catches
   {!Vmat_storage.Fault.Crash}, recovers on the surviving device with a
   fresh fault-free context pinned to the same [first_tid], and re-drives
   the operation stream from the recovery resume point (client-retry
   semantics for transactions whose group commit had not been forced). *)

open Vmat_storage
module Strategy = Vmat_view.Strategy
module Strategy_sp = Vmat_view.Strategy_sp
module Migrate = Vmat_adaptive.Migrate
module Adaptive = Vmat_adaptive.Adaptive
module Params = Vmat_cost.Params
module Experiment = Vmat_workload.Experiment
module Stream = Vmat_workload.Stream
module Dataset = Vmat_workload.Dataset

type kind = Static of Migrate.kind | Adaptive_k

let all_kinds = List.map (fun k -> Static k) Migrate.all_kinds @ [ Adaptive_k ]

let kind_name = function
  | Static k -> Migrate.strategy_name k
  | Adaptive_k -> "adaptive"

let kind_of_name s =
  if String.equal s "adaptive" then Some Adaptive_k
  else Option.map (fun k -> Static k) (Migrate.kind_of_name s)

type spec = {
  hp_params : Params.t;
  hp_kind : kind;
  hp_seed : int;
  hp_config : Wal.config;
}

let spec ?(seed = 42) ?(config = Wal.default_config) ~params kind =
  { hp_params = params; hp_kind = kind; hp_seed = seed; hp_config = config }

(* ------------------------------------------------------------------ *)
(* Canonical outcomes                                                  *)
(* ------------------------------------------------------------------ *)

(* Merge rows by value key (distinct tids carrying equal values are the
   same logical row) and order by key; the Hashtbl.fold sits under the
   sort so hash order never escapes (vmlint D3). *)
let canonical_rows (rows : (Tuple.t * int) list) =
  let tbl = Hashtbl.create (max 16 (List.length rows)) in
  List.iter
    (fun (tuple, count) ->
      let key = Tuple.value_key tuple in
      let prior = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (prior + count))
    rows;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun key count acc -> (key, count) :: acc) tbl [])

let render_rows rows =
  String.concat ";"
    (List.map (fun (key, count) -> Printf.sprintf "%s*%d" key count) rows)

type outcome = {
  oc_answers : (int * string) list;
      (** 0-based stream position of each query, canonical answer *)
  oc_view : (string * int) list;  (** canonical final view rows *)
  oc_base : string list;  (** net base contents: "tid key" lines, tid order *)
  oc_ops : int;  (** operations the durable engine counted *)
  oc_checkpoints : int;
}

let equal_rows =
  List.equal (fun (a, ca) (b, cb) -> String.equal a b && Int.equal ca cb)

let outcome_equal a b =
  List.equal
    (fun (ia, sa) (ib, sb) -> Int.equal ia ib && String.equal sa sb)
    a.oc_answers b.oc_answers
  && equal_rows a.oc_view b.oc_view
  && List.equal String.equal a.oc_base b.oc_base

let outcome_of ~answers durable =
  {
    oc_answers =
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (Hashtbl.fold (fun i s acc -> (i, s) :: acc) answers []);
    oc_view = canonical_rows (Durable.view_rows (Durable.inner durable));
    oc_base =
      List.map
        (fun tuple ->
          Printf.sprintf "%d %s" (Tuple.tid tuple) (Tuple.value_key tuple))
        (Durable.base_contents durable);
    oc_ops = Durable.op_index durable;
    oc_checkpoints = Durable.checkpoints_taken durable;
  }

let state_lines outcome =
  ("# vmat durable state v1"
  :: List.map (fun (key, count) -> Printf.sprintf "view %s *%d" key count) outcome.oc_view)
  @ List.map (fun line -> "base " ^ line) outcome.oc_base

(* ------------------------------------------------------------------ *)
(* Building strategies (fresh and from a checkpoint image)             *)
(* ------------------------------------------------------------------ *)

let adaptive_probe a =
  {
    Durable.null_probe with
    Durable.p_adaptive =
      (fun () -> [ ("kind", Migrate.kind_name (Adaptive.current_kind a)) ]);
  }

(* [image] matters only to the adaptive wrapper, which resumes in the kind
   it had migrated to; the other strategies rebuild purely from the base
   contents — a freshly built deferred view (empty differential file) is
   logically a just-refreshed one. *)
let build spec ~ctx ~(dataset : Dataset.model1) ~image initial =
  let env =
    {
      Strategy_sp.ctx;
      view = dataset.Dataset.m1_view;
      initial;
      ad_buckets = Experiment.ad_buckets_for spec.hp_params;
    }
  in
  match spec.hp_kind with
  | Static Migrate.Deferred ->
      let strategy, hr = Strategy_sp.deferred_introspect env in
      (strategy, Durable.hr_probe hr)
  | Static k -> (Migrate.build env k, Durable.null_probe)
  | Adaptive_k ->
      let initial_kind =
        match image with
        | None -> None
        | Some im -> (
            match List.assoc_opt "kind" im.Checkpoint.ck_adaptive with
            | Some name -> Migrate.kind_of_name name
            | None -> None)
      in
      let a = Adaptive.wrap ?initial_kind env in
      (Adaptive.strategy a, adaptive_probe a)

(* ------------------------------------------------------------------ *)
(* Driving the stream                                                  *)
(* ------------------------------------------------------------------ *)

let drive ?(from_op = 0) durable ops answers =
  let s = Durable.strategy durable in
  List.iteri
    (fun i op ->
      if i >= from_op then
        match op with
        | Stream.Txn changes -> s.Strategy.handle_transaction changes
        | Stream.Query q ->
            Hashtbl.replace answers i (render_rows (canonical_rows (s.Strategy.answer_query q))))
    ops

(* One full run over [dev] under [fault]; raises [Fault.Crash] through.
   [answers] is the client-side record of observed query responses — it
   lives outside the simulated machine, so it survives a crash. *)
let run_once spec ~fault ~dev ~answers =
  let setup = Experiment.model1_setup ~seed:spec.hp_seed spec.hp_params in
  let ctx = Experiment.fresh_ctx ~fault spec.hp_params ~first_tid:setup.Experiment.ms_first_tid in
  let initial = setup.Experiment.ms_dataset.Dataset.m1_tuples in
  let strategy, probe =
    build spec ~ctx ~dataset:setup.Experiment.ms_dataset ~image:None initial
  in
  let durable =
    Durable.wrap ~config:spec.hp_config ~probe ~ctx ~dev ~initial strategy
  in
  drive durable setup.Experiment.ms_ops answers;
  Durable.flush durable;
  outcome_of ~answers durable

let reference ?(keep_labels = false) spec =
  let fault = Fault.create ~crash_at:0 ~keep_labels () in
  let outcome =
    run_once spec ~fault ~dev:(Device.memory ()) ~answers:(Hashtbl.create 64)
  in
  (outcome, Fault.points_seen fault, Fault.labels fault)

(* ------------------------------------------------------------------ *)
(* Crash, recover, re-drive                                            *)
(* ------------------------------------------------------------------ *)

type crash_report = {
  cr_point : int;
  cr_label : string;  (** crash-point label ("" when the run completed) *)
  cr_crashed : bool;  (** false when [crash_at] exceeded the point count *)
  cr_resume : int;
  cr_txns_replayed : int;
  cr_tail : Record.tail;
  cr_outcome : outcome;
}

let recover_and_finish spec ~dev ~answers =
  let setup = Experiment.model1_setup ~seed:spec.hp_seed spec.hp_params in
  let ctx = Experiment.fresh_ctx spec.hp_params ~first_tid:setup.Experiment.ms_first_tid in
  let initial = setup.Experiment.ms_dataset.Dataset.m1_tuples in
  let build_fn ~image base =
    build spec ~ctx ~dataset:setup.Experiment.ms_dataset ~image base
  in
  let durable, s =
    Recovery.recover ~config:spec.hp_config ~ctx ~dev ~initial ~build:build_fn ()
  in
  (* Client retry: re-issue every operation past the recovery point
     (pre-crash answers at earlier positions stand; later queries are
     re-answered and overwrite). *)
  drive ~from_op:s.Recovery.sc_resume durable setup.Experiment.ms_ops answers;
  Durable.flush durable;
  (outcome_of ~answers durable, s)

let crash_and_recover spec ~crash_at =
  let dev = Device.memory () in
  let fault = Fault.create ~crash_at () in
  let answers = Hashtbl.create 64 in
  match run_once spec ~fault ~dev ~answers with
  | outcome ->
      (* [crash_at] exceeded the number of points this workload passes:
         the run completed normally. *)
      {
        cr_point = crash_at;
        cr_label = "";
        cr_crashed = false;
        cr_resume = outcome.oc_ops;
        cr_txns_replayed = 0;
        cr_tail = Record.Clean;
        cr_outcome = outcome;
      }
  | exception Fault.Crash (label, _) ->
      (* The simulated machine died: all volatile state (the engine, its
         buffered log records) is gone; [dev] and the client-side
         [answers] survive.  Every op at a position < resume completed
         pre-crash, so every earlier query already has its (reference-
         identical) answer; later queries are re-answered on re-drive. *)
      let outcome, s = recover_and_finish spec ~dev ~answers in
      {
        cr_point = crash_at;
        cr_label = label;
        cr_crashed = true;
        cr_resume = s.Recovery.sc_resume;
        cr_txns_replayed = List.length s.Recovery.sc_txns;
        cr_tail = s.Recovery.sc_tail;
        cr_outcome = outcome;
      }

(* CLI building blocks (`vmperf crash-test --dir` / `vmperf recover`):
   run on a caller-supplied device — typically a [Device.dir] — so the
   crashed state can be inspected and recovered across processes. *)

let crash_into spec ~dev ~crash_at =
  let fault = Fault.create ~crash_at () in
  let answers = Hashtbl.create 64 in
  match run_once spec ~fault ~dev ~answers with
  | outcome -> Ok outcome
  | exception Fault.Crash (label, point) -> Error (label, point)

let recover_on spec ~dev =
  (* A fresh answers table: this models a new client session, so only the
     re-driven (post-resume) queries appear in [oc_answers]; the view and
     base state are complete regardless. *)
  recover_and_finish spec ~dev ~answers:(Hashtbl.create 64)

type matrix = {
  mx_points : int;
  mx_labels : (int * string) list;
  mx_reference : outcome;
  mx_reports : crash_report list;
  mx_mismatches : int list;  (** crash points whose outcome diverged *)
}

let crash_matrix ?(progress = fun _ _ -> ()) spec =
  let ref_outcome, points, labels = reference ~keep_labels:true spec in
  let reports =
    List.init points (fun i ->
        let k = i + 1 in
        progress k points;
        crash_and_recover spec ~crash_at:k)
  in
  let mismatches =
    List.filter_map
      (fun r -> if outcome_equal r.cr_outcome ref_outcome then None else Some r.cr_point)
      reports
  in
  {
    mx_points = points;
    mx_labels = labels;
    mx_reference = ref_outcome;
    mx_reports = reports;
    mx_mismatches = mismatches;
  }
