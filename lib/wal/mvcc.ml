(* A multi-version snapshot store (DESIGN §10): the single writer publishes
   an immutable payload per commit epoch, any number of reader domains pin
   the latest version, and superseded versions are reclaimed as soon as
   their pin count drops to zero.

   All bookkeeping hides behind one mutex; the critical sections are a few
   list operations, so contention is negligible next to the query work
   readers do outside the lock.  Payloads must be immutable — the store
   hands the same value to every pinning domain. *)

type 'a entry = { e_version : int; e_payload : 'a; mutable e_pins : int }

type 'a t = {
  lock : Mutex.t;
  mutable entries : 'a entry list; (* newest first *)
  mutable next_version : int;
  mutable published : int;
  mutable reclaimed : int;
  mutable max_live : int;
}

type stats = {
  st_published : int;
  st_reclaimed : int;
  st_live : int;
  st_max_live : int;
}

let create ?(first_version = 0) () =
  {
    lock = Mutex.create ();
    entries = [];
    next_version = first_version;
    published = 0;
    reclaimed = 0;
    max_live = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* An entry is reclaimable once nothing pins it and a newer version exists
   (the newest version stays live as the target of the next pin). *)
let sweep t =
  match t.entries with
  | [] -> ()
  | newest :: older ->
      let keep, dead = List.partition (fun e -> e.e_pins > 0) older in
      t.reclaimed <- t.reclaimed + List.length dead;
      t.entries <- newest :: keep

let publish t payload =
  locked t (fun () ->
      let v = t.next_version in
      t.next_version <- v + 1;
      t.entries <- { e_version = v; e_payload = payload; e_pins = 0 } :: t.entries;
      t.published <- t.published + 1;
      sweep t;
      t.max_live <- max t.max_live (List.length t.entries);
      v)

let pin_opt t =
  locked t (fun () ->
      match t.entries with
      | [] -> None
      | newest :: _ ->
          newest.e_pins <- newest.e_pins + 1;
          Some (newest.e_version, newest.e_payload))

let pin t =
  match pin_opt t with
  | Some pinned -> pinned
  | None -> invalid_arg "Mvcc.pin: nothing published yet"

let unpin t version =
  locked t (fun () ->
      match List.find_opt (fun e -> e.e_version = version) t.entries with
      | None -> invalid_arg "Mvcc.unpin: unknown or already reclaimed version"
      | Some e ->
          if e.e_pins <= 0 then invalid_arg "Mvcc.unpin: version is not pinned";
          e.e_pins <- e.e_pins - 1;
          sweep t)

let latest_version t =
  locked t (fun () ->
      match t.entries with [] -> None | e :: _ -> Some e.e_version)

let live_versions t =
  locked t (fun () -> List.rev_map (fun e -> e.e_version) t.entries)

let stats t =
  locked t (fun () ->
      {
        st_published = t.published;
        st_reclaimed = t.reclaimed;
        st_live = List.length t.entries;
        st_max_live = t.max_live;
      })
