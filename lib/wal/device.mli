(** The durability device: byte storage for log segments and checkpoint
    images (DESIGN §9).

    [Memory] survives a {e simulated} crash — the {!Vmat_storage.Fault.Crash}
    exception unwinds the engine but the device value lives on — and keeps
    measured `--durability wal` runs free of real filesystem traffic (so
    sweeps stay domain-parallel safe).  [Dir] is a real directory for
    `vmperf recover` and CI artifacts. *)

type t

val memory : unit -> t
val dir : string -> t
(** Creates the directory (and parents) when missing.
    @raise Invalid_argument when the path exists but is not a directory. *)

val describe : t -> string

val append : t -> name:string -> string -> unit

val write_atomic : t -> name:string -> string -> unit
(** Whole-file replacement; on [Dir] via write-temp + rename, so images are
    never observed torn. *)

val read : t -> name:string -> string option
val files : t -> string list
(** Sorted by name (deterministic on both backends). *)

val remove : t -> name:string -> unit

val truncate : t -> name:string -> int -> unit
(** Keep the first [n] bytes — the log-repair primitive. *)

val size : t -> name:string -> int option
val total_bytes : t -> int

val copy_to : t -> t -> unit
(** Copy every file onto another device (artifact export). *)
