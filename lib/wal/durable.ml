(* The durability wrapper: an ordinary [Strategy.t] that write-ahead-logs
   every transaction through {!Wal} and periodically checkpoints through
   {!Checkpoint} (DESIGN §9).  It drops in front of any of the paper's
   strategies (and the adaptive wrapper) without changing their answers:
   logging happens before the inner strategy applies the changes, commit
   follows application, and queries pass straight through — so a
   `--durability wal` run differs from `--durability none` only by the
   [Wal]-category charges, which is exactly the durability-overhead axis
   the bench figures report.

   The wrapper keeps an uncharged catalog of the net base contents (tid →
   tuple), maintained from the change stream it already sees; checkpoint
   images snapshot that catalog plus whatever the optional probe exposes of
   the inner strategy's state (net A/D sets, Bloom bits, adaptive kind). *)

open Vmat_storage
module Strategy = Vmat_view.Strategy
module Bag = Vmat_relalg.Bag
module Hr = Vmat_hypo.Hr
module Bloom = Vmat_util.Bloom
module Recorder = Vmat_obs.Recorder

type probe = {
  p_ad : unit -> (Tuple.t * bool) list * (Tuple.t * bool) list;
  p_bloom : unit -> (string * int) option;
  p_adaptive : unit -> (string * string) list;
}

(* Immutable record of closures: no module-level mutable state (D1). *)
let null_probe =
  {
    p_ad = (fun () -> ([], []));
    p_bloom = (fun () -> None);
    p_adaptive = (fun () -> []);
  }

let hr_probe hr =
  {
    p_ad = (fun () -> Hr.net_changes_unmetered hr);
    p_bloom =
      (fun () ->
        let b = Hr.bloom hr in
        Some (Bloom.snapshot_bits b, Bloom.cardinality b));
    p_adaptive = (fun () -> []);
  }

type t = {
  ctx : Ctx.t;
  wal : Wal.t;
  inner : Strategy.t;
  probe : probe;
  catalog : (int, Tuple.t) Hashtbl.t;
  mutable op_index : int;
  mutable txns_since_ckpt : int;
  mutable next_ckpt_id : int;
  mutable checkpoints_taken : int;
}

let wrap ?(config = Wal.default_config) ?(probe = null_probe) ?(op_index = 0)
    ?next_txn_id ~ctx ~dev ~initial inner =
  let catalog = Hashtbl.create (max 16 (List.length initial)) in
  List.iter (fun tuple -> Hashtbl.replace catalog (Tuple.tid tuple) tuple) initial;
  let next_ckpt_id =
    1 + List.fold_left (fun acc (i, _) -> max acc i) 0 (Checkpoint.image_files dev)
  in
  {
    ctx;
    wal = Wal.create ~config ?next_txn_id ~ctx dev;
    inner;
    probe;
    catalog;
    op_index;
    txns_since_ckpt = 0;
    next_ckpt_id;
    checkpoints_taken = 0;
  }

let wal t = t.wal
let inner t = t.inner
let op_index t = t.op_index
let checkpoints_taken t = t.checkpoints_taken

let by_tid a b = Int.compare (Tuple.tid a) (Tuple.tid b)

(* Canonical (ascending-tid) net base contents; the fold is under the sort
   so hash order never escapes (vmlint D3). *)
let base_contents t =
  List.sort by_tid (Hashtbl.fold (fun _ tuple acc -> tuple :: acc) t.catalog [])

let apply_catalog catalog (changes : Strategy.change list) =
  List.iter
    (fun (c : Strategy.change) ->
      (match c.Strategy.before with
      | Some old_tuple -> Hashtbl.remove catalog (Tuple.tid old_tuple)
      | None -> ());
      match c.Strategy.after with
      | Some new_tuple -> Hashtbl.replace catalog (Tuple.tid new_tuple) new_tuple
      | None -> ())
    changes

(* Canonical view rows (value-key order) from a strategy's logical
   contents. *)
let view_rows (s : Strategy.t) =
  let acc = ref [] in
  Bag.iter (s.Strategy.view_contents ()) (fun tuple count ->
      acc := (tuple, count) :: !acc);
  List.sort
    (fun (a, _) (b, _) -> String.compare (Tuple.value_key a) (Tuple.value_key b))
    !acc

let take_checkpoint t =
  let fault = Ctx.fault t.ctx in
  Fault.point fault "ckpt.begin";
  (* The log must durably cover everything the image will claim. *)
  Wal.force t.wal;
  let a_net, d_net = t.probe.p_ad () in
  let bloom_bits, bloom_insertions =
    match t.probe.p_bloom () with Some (bits, n) -> (bits, n) | None -> ("", 0)
  in
  let image =
    {
      Checkpoint.ck_id = t.next_ckpt_id;
      ck_op_index = t.op_index;
      ck_next_txn_id = Wal.next_txn_id t.wal;
      ck_strategy = t.inner.Strategy.name;
      ck_base = base_contents t;
      ck_view = view_rows t.inner;
      ck_a_net = a_net;
      ck_d_net = d_net;
      ck_bloom_bits = bloom_bits;
      ck_bloom_insertions = bloom_insertions;
      ck_adaptive =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (t.probe.p_adaptive ());
    }
  in
  Checkpoint.write (Wal.device t.wal) image;
  let bytes = Checkpoint.image_bytes image in
  ignore (Wal.charge_pages t.wal bytes);
  t.next_ckpt_id <- t.next_ckpt_id + 1;
  t.checkpoints_taken <- t.checkpoints_taken + 1;
  Fault.point fault "ckpt.written";
  Wal.append t.wal
    (Record.Checkpoint_note { ckpt_id = image.Checkpoint.ck_id; op_index = t.op_index });
  Wal.force t.wal;
  let r = Ctx.recorder t.ctx in
  if Recorder.enabled r then begin
    Recorder.inc r ~help:"Checkpoint images durably written."
      "vmat_wal_checkpoints_total" 1.;
    Recorder.set_gauge r ~help:"Size of the newest checkpoint image (bytes)."
      "vmat_wal_image_bytes" (float_of_int bytes);
    Recorder.instant r ~cat:"wal" "checkpoint"
      ~args:
        [
          ("id", string_of_int image.Checkpoint.ck_id);
          ("op_index", string_of_int t.op_index);
        ]
  end;
  Fault.point fault "ckpt.done"

let handle_transaction t changes =
  let txn_id = Wal.begin_txn t.wal in
  Wal.append t.wal (Record.Txn_begin { txn_id });
  List.iter (fun c -> Wal.append t.wal (Record.change_of c ~txn_id)) changes;
  t.inner.Strategy.handle_transaction changes;
  apply_catalog t.catalog changes;
  t.op_index <- t.op_index + 1;
  Wal.append t.wal (Record.Commit { txn_id; op_index = t.op_index });
  Wal.commit t.wal;
  t.txns_since_ckpt <- t.txns_since_ckpt + 1;
  if t.txns_since_ckpt >= (Wal.configuration t.wal).Wal.checkpoint_every then begin
    t.txns_since_ckpt <- 0;
    take_checkpoint t
  end

let strategy t =
  {
    Strategy.name = t.inner.Strategy.name;
    handle_transaction = (fun changes -> handle_transaction t changes);
    answer_query =
      (fun q ->
        t.op_index <- t.op_index + 1;
        t.inner.Strategy.answer_query q);
    scalar_query =
      (fun () ->
        t.op_index <- t.op_index + 1;
        t.inner.Strategy.scalar_query ());
    view_contents = (fun () -> t.inner.Strategy.view_contents ());
  }

let flush t = Wal.force t.wal
let checkpoint_now t = take_checkpoint t
