(* Versioned checkpoint images (DESIGN §9).

   An image is a consistent snapshot of everything the engine would need to
   answer queries without the log: the net base-relation contents (sorted
   by tid — canonical and replayable), the materialized-view rows with
   duplicate counts (canonical value-key order), the net A/D sets of the
   hypothetical relation with their screening markers, the Bloom filter's
   raw bits, and the adaptive controller's state as key/value pairs.

   Layout: magic "VMATCKP1", then one CRC32 frame holding the encoded
   image.  Images are written atomically (write-temp + rename on real
   directories), so recovery sees an old image or a new image, never a torn
   one; a corrupt image (failed CRC) is skipped and the next-newest is
   used, with the log tail covering the difference. *)

open Vmat_storage

let magic = "VMATCKP1"

type image = {
  ck_id : int;
  ck_op_index : int;  (** operations covered: everything <= this is in the image *)
  ck_next_txn_id : int;
  ck_strategy : string;  (** running strategy name at checkpoint time *)
  ck_base : Tuple.t list;  (** net base contents, ascending tid *)
  ck_view : (Tuple.t * int) list;  (** view rows + duplicate counts, value-key order *)
  ck_a_net : (Tuple.t * bool) list;  (** net appended tuples + screening markers *)
  ck_d_net : (Tuple.t * bool) list;  (** net deleted tuples + screening markers *)
  ck_bloom_bits : string;  (** raw filter bits ("" when the strategy keeps none) *)
  ck_bloom_insertions : int;
  ck_adaptive : (string * string) list;  (** controller state (sorted keys) *)
}

let file_name id = Printf.sprintf "ckpt-%06d.img" id

let file_id name =
  if String.length name = 15 && String.sub name 0 5 = "ckpt-"
     && Filename.check_suffix name ".img"
  then int_of_string_opt (String.sub name 5 6)
  else None

let image_files dev =
  List.filter_map
    (fun name -> Option.map (fun i -> (i, name)) (file_id name))
    (Device.files dev)

let marked w (t, m) =
  Codec.tuple w t;
  Codec.bool w m

let r_marked r =
  let t = Codec.r_tuple r in
  let m = Codec.r_bool r in
  (t, m)

let counted w (t, n) =
  Codec.tuple w t;
  Codec.i64 w n

let r_counted r =
  let t = Codec.r_tuple r in
  let n = Codec.r_i64 r in
  (t, n)

let pair w (k, v) =
  Codec.str w k;
  Codec.str w v

let r_pair r =
  let k = Codec.r_str r in
  let v = Codec.r_str r in
  (k, v)

let encode im =
  let w = Codec.writer () in
  Codec.i64 w im.ck_id;
  Codec.i64 w im.ck_op_index;
  Codec.i64 w im.ck_next_txn_id;
  Codec.str w im.ck_strategy;
  Codec.list w Codec.tuple im.ck_base;
  Codec.list w counted im.ck_view;
  Codec.list w marked im.ck_a_net;
  Codec.list w marked im.ck_d_net;
  Codec.str w im.ck_bloom_bits;
  Codec.i64 w im.ck_bloom_insertions;
  Codec.list w pair im.ck_adaptive;
  Codec.contents w

let decode payload =
  let r = Codec.reader payload in
  let ck_id = Codec.r_i64 r in
  let ck_op_index = Codec.r_i64 r in
  let ck_next_txn_id = Codec.r_i64 r in
  let ck_strategy = Codec.r_str r in
  let ck_base = Codec.r_list r Codec.r_tuple in
  let ck_view = Codec.r_list r r_counted in
  let ck_a_net = Codec.r_list r r_marked in
  let ck_d_net = Codec.r_list r r_marked in
  let ck_bloom_bits = Codec.r_str r in
  let ck_bloom_insertions = Codec.r_i64 r in
  let ck_adaptive = Codec.r_list r r_pair in
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes after image");
  {
    ck_id;
    ck_op_index;
    ck_next_txn_id;
    ck_strategy;
    ck_base;
    ck_view;
    ck_a_net;
    ck_d_net;
    ck_bloom_bits;
    ck_bloom_insertions;
    ck_adaptive;
  }

let to_bytes im = magic ^ Codec.frame (encode im)

let of_bytes data =
  let ml = String.length magic in
  if String.length data < ml || String.sub data 0 ml <> magic then
    Error "bad magic"
  else begin
    let r = Codec.reader data in
    r.Codec.pos <- ml;
    match Codec.read_frame r with
    | Error Codec.Torn -> Error "torn image"
    | Error Codec.Bad_crc -> Error "image checksum failure"
    | Ok payload -> (
        match decode payload with
        | im -> if Codec.at_end r then Ok im else Error "trailing bytes"
        | exception Codec.Corrupt msg -> Error msg)
  end

let write dev im = Device.write_atomic dev ~name:(file_name im.ck_id) (to_bytes im)

let read dev ~id =
  match Device.read dev ~name:(file_name id) with
  | None -> Error "no such image"
  | Some data -> of_bytes data

(* Newest image that validates; corrupt images are skipped (the log tail
   since the next-newest image covers the difference). *)
let latest dev =
  let rec pick = function
    | [] -> None
    | (id, _) :: rest -> (
        match read dev ~id with Ok im -> Some im | Error _ -> pick rest)
  in
  pick (List.rev (image_files dev))

let image_bytes im = String.length (to_bytes im)
