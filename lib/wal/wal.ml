(* Append-only segmented log writer with group commit (DESIGN §9).

   Appends buffer frames in memory; [force] makes the buffered bytes
   durable in one device append and charges the page writes to the [Wal]
   meter category — so durability overhead shows up as its own column in
   every cost report.  [commit] counts committed transactions and forces
   once [group_commit] of them are pending: group_commit = 1 is the
   force-per-transaction discipline immediate maintenance would pay;
   larger values amortize the log force the way the paper's deferred
   strategy amortizes refresh work into the AD append it already performs.

   Crash points (via the context's [Fault] injector):
     wal.append      — a record entered the in-memory buffer (lost on crash)
     wal.force.torn  — mid-force: the first half of the buffered bytes hit
                       the device, the rest did not (a genuinely torn tail
                       that recovery must detect by CRC)
     wal.force.done  — the force completed
   The buffer is the simulated volatile memory: whatever was appended but
   not forced disappears with the process, exactly like a real WAL. *)

open Vmat_storage
module Recorder = Vmat_obs.Recorder

type config = {
  group_commit : int;  (** force after this many committed transactions *)
  segment_bytes : int;  (** rotate segments at this size *)
  checkpoint_every : int;  (** Durable: checkpoint after this many txns *)
}

let default_config =
  { group_commit = 1; segment_bytes = 1 lsl 16; checkpoint_every = 64 }

let config ?(group_commit = 1) ?(segment_bytes = 1 lsl 16) ?(checkpoint_every = 64) () =
  if group_commit < 1 then invalid_arg "Wal.config: group_commit must be >= 1";
  if segment_bytes < 64 then invalid_arg "Wal.config: segment_bytes must be >= 64";
  if checkpoint_every < 1 then invalid_arg "Wal.config: checkpoint_every must be >= 1";
  { group_commit; segment_bytes; checkpoint_every }

let segment_name i = Printf.sprintf "wal-%06d.log" i

let segment_index name =
  if String.length name = 14 && String.sub name 0 4 = "wal-"
     && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 6)
  else None

let segment_files dev =
  List.filter_map
    (fun name -> Option.map (fun i -> (i, name)) (segment_index name))
    (Device.files dev)

type t = {
  ctx : Ctx.t;
  dev : Device.t;
  config : config;
  pending : Buffer.t;
  mutable pending_records : int;
  mutable pending_commits : int;
  mutable seg : int;
  mutable seg_bytes : int;
  mutable next_txn_id : int;
  mutable forces : int;
  mutable appended_records : int;
  mutable forced_bytes : int;
}

let create ?(config = default_config) ?(next_txn_id = 1) ~ctx dev =
  (* Never append into a pre-existing segment: recovery may have truncated a
     torn tail, and starting a fresh segment keeps old bytes immutable. *)
  let seg =
    1 + List.fold_left (fun acc (i, _) -> max acc i) 0 (segment_files dev)
  in
  {
    ctx;
    dev;
    config;
    pending = Buffer.create 4096;
    pending_records = 0;
    pending_commits = 0;
    seg;
    seg_bytes = 0;
    next_txn_id;
    forces = 0;
    appended_records = 0;
    forced_bytes = 0;
  }

let device t = t.dev
let configuration t = t.config
let forces t = t.forces
let appended_records t = t.appended_records
let forced_bytes t = t.forced_bytes
let pending_bytes t = Buffer.length t.pending

let begin_txn t =
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  id

let next_txn_id t = t.next_txn_id

let append t record =
  Buffer.add_string t.pending (Record.to_frame record);
  t.pending_records <- t.pending_records + 1;
  t.appended_records <- t.appended_records + 1;
  Fault.point (Ctx.fault t.ctx) "wal.append"

let charge_pages t bytes =
  let page_bytes = (Ctx.geometry t.ctx).Ctx.page_bytes in
  let pages = max 1 ((bytes + page_bytes - 1) / page_bytes) in
  let meter = Ctx.meter t.ctx in
  Cost_meter.with_category meter Cost_meter.Wal (fun () ->
      for _ = 1 to pages do
        Cost_meter.charge_write meter
      done);
  pages

let note_metrics t ~pages ~bytes ~records =
  let r = Ctx.recorder t.ctx in
  if Recorder.enabled r then begin
    Recorder.inc r ~help:"Log forces (group commits made durable)."
      "vmat_wal_forces_total" 1.;
    Recorder.inc r ~help:"Log bytes made durable." "vmat_wal_bytes_total"
      (float_of_int bytes);
    Recorder.inc r ~help:"Simulated pages charged for log forces."
      "vmat_wal_pages_total" (float_of_int pages);
    Recorder.inc r ~help:"Log records made durable." "vmat_wal_records_total"
      (float_of_int records)
  end

let rotate_if_full t =
  if t.seg_bytes >= t.config.segment_bytes then begin
    t.seg <- t.seg + 1;
    t.seg_bytes <- 0
  end

(* Make everything buffered durable.  The device write is split in two so
   that the [wal.force.torn] crash point leaves a half-written frame on the
   device — the torn tail the CRC framing exists to catch. *)
let force t =
  if Buffer.length t.pending > 0 then begin
    let fault = Ctx.fault t.ctx in
    let r = Ctx.recorder t.ctx in
    let data = Buffer.contents t.pending in
    let records = t.pending_records in
    Buffer.clear t.pending;
    t.pending_records <- 0;
    t.pending_commits <- 0;
    let body () =
      let name = segment_name t.seg in
      let len = String.length data in
      let half = len / 2 in
      Device.append t.dev ~name (String.sub data 0 half);
      Fault.point fault "wal.force.torn";
      Device.append t.dev ~name (String.sub data half (len - half));
      let pages = charge_pages t len in
      t.seg_bytes <- t.seg_bytes + len;
      t.forces <- t.forces + 1;
      t.forced_bytes <- t.forced_bytes + len;
      note_metrics t ~pages ~bytes:len ~records;
      rotate_if_full t;
      Fault.point fault "wal.force.done"
    in
    if Recorder.enabled r then Recorder.span r ~cat:"wal" "wal.force" body
    else body ()
  end

let commit t =
  t.pending_commits <- t.pending_commits + 1;
  if t.pending_commits >= t.config.group_commit then force t
