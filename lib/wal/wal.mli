(** Append-only segmented log writer with group commit (DESIGN §9).

    Appends buffer in memory (the simulated volatile state); {!force} makes
    the buffer durable in one device append, charging page writes to the
    [Wal] meter category and mirroring [vmat_wal_*] metrics through the
    context's recorder.  {!commit} forces once [group_commit] committed
    transactions are pending.  Crash points: [wal.append],
    [wal.force.torn] (half the bytes hit the device), [wal.force.done]. *)

open Vmat_storage

type config = {
  group_commit : int;
  segment_bytes : int;
  checkpoint_every : int;  (** used by {!Durable}, carried here so one
                               value configures the whole subsystem *)
}

val default_config : config
(** [group_commit = 1] (force per transaction), 64 KiB segments,
    checkpoint every 64 transactions. *)

val config :
  ?group_commit:int -> ?segment_bytes:int -> ?checkpoint_every:int -> unit -> config
(** Validated constructor. @raise Invalid_argument on non-positive knobs. *)

type t

val create : ?config:config -> ?next_txn_id:int -> ctx:Ctx.t -> Device.t -> t
(** A writer over [dev], starting a fresh segment after any existing ones
    (old bytes stay immutable — recovery may have truncated a torn tail). *)

val device : t -> Device.t
val configuration : t -> config

val begin_txn : t -> int
(** Allocate the next transaction id. *)

val next_txn_id : t -> int

val append : t -> Record.t -> unit
(** Buffer one framed record (volatile until the next {!force}). *)

val commit : t -> unit
(** Count one committed transaction; forces when [group_commit] are
    pending. *)

val force : t -> unit
(** Make everything buffered durable now. *)

val charge_pages : t -> int -> int
(** Charge [ceil (bytes / page_bytes)] (at least 1) page writes to the
    [Wal] meter category and return the page count — shared by log forces
    and checkpoint-image writes so all durability I/O lands in one cost
    column. *)

val segment_name : int -> string
val segment_index : string -> int option
val segment_files : Device.t -> (int * string) list

(** {1 Statistics} *)

val forces : t -> int
val appended_records : t -> int
val forced_bytes : t -> int
val pending_bytes : t -> int
