(** ARIES-lite crash recovery (DESIGN §9): scan the newest valid
    checkpoint image plus the committed log prefix, truncate any torn
    tail, and rebuild the strategy by replaying the committed post-image
    transactions through the ordinary differential update machinery.
    Redo-only — uncommitted work is discarded, and the workload driver
    re-issues everything past {!field:scan.sc_resume}. *)

open Vmat_storage
module Strategy = Vmat_view.Strategy

type txn = {
  rx_id : int;
  rx_op_index : int;
  rx_changes : Strategy.change list;
}

type scan = {
  sc_image : Checkpoint.image option;
  sc_txns : txn list;  (** committed, post-image, in log order *)
  sc_resume : int;  (** 1-based op index recovery restores through *)
  sc_next_txn_id : int;
  sc_tail : Record.tail;
  sc_invalid : (string * int) option;
      (** segment holding the first invalid frame, and its valid-prefix
          size — what {!repair} truncates *)
  sc_records : int;  (** valid log records scanned *)
  sc_log_bytes : int;  (** valid log bytes scanned *)
}

val scan : ?ctx:Ctx.t -> Device.t -> scan
(** Phase 1.  When [ctx] is supplied the image/log reads are charged to
    the [Wal] meter category; tests scan uncharged. *)

val repair : Device.t -> scan -> unit
(** Phase 2: truncate the invalid tail and drop any later segments. *)

type build = image:Checkpoint.image option -> Tuple.t list -> Strategy.t * Durable.probe
(** How to rebuild the inner strategy from a base relation.  [image]
    carries strategy-private state (view rows, A/D sets, Bloom bits,
    adaptive kind) the builder may restore. *)

val replay :
  scan -> initial:Tuple.t list -> build:build -> Strategy.t * Durable.probe * Tuple.t list
(** Phase 3: rebuild from the image's base (or [initial] when no image)
    and push every committed post-image transaction through the
    strategy.  Returns the strategy, its probe, and the post-replay net
    base contents (ascending tid) for the continuing engine's catalog. *)

val recover :
  ?config:Wal.config ->
  ctx:Ctx.t ->
  dev:Device.t ->
  initial:Tuple.t list ->
  build:build ->
  unit ->
  Durable.t * scan
(** All three phases, then re-wrap the rebuilt strategy in a fresh
    {!Durable.t} resuming op/txn numbering where the pre-crash engine
    left off. *)
