(* ARIES-lite crash recovery (DESIGN §9).

   Three phases, all deterministic:

   1. Scan: load the newest valid checkpoint image, then parse every log
      segment in order, stopping at the first invalid frame (torn tail or
      CRC failure).  Records are grouped into transactions; a transaction
      counts only once its Commit record lies in the valid prefix —
      uncommitted work is discarded, exactly the no-steal/no-undo
      discipline a redo-only log affords.

   2. Repair: truncate the invalid tail (and drop any later segments) so
      the continuing engine appends over a clean prefix.

   3. Replay: rebuild the strategy from the image's base contents via the
      caller's [build] function and push every committed post-image
      transaction through [Strategy.handle_transaction] — the *existing*
      differential update machinery (Delta/Strategy_sp/Strategy_join) is
      the redo engine; there is no separate recovery interpreter.

   The resume point (1-based operation index) is the max of the image's
   coverage and the last committed transaction's op_index; the workload
   driver re-issues everything after it, which also covers transactions
   that were lost because a group commit had not been forced (client-retry
   semantics). *)

open Vmat_storage
module Strategy = Vmat_view.Strategy
module Recorder = Vmat_obs.Recorder

type txn = {
  rx_id : int;
  rx_op_index : int;
  rx_changes : Strategy.change list;
}

type scan = {
  sc_image : Checkpoint.image option;
  sc_txns : txn list;  (** committed, post-image, in log order *)
  sc_resume : int;  (** 1-based op index recovery restores through *)
  sc_next_txn_id : int;
  sc_tail : Record.tail;
  sc_invalid : (string * int) option;
      (** segment holding the first invalid frame, and its valid-prefix
          size — what {!repair} truncates *)
  sc_records : int;  (** valid log records scanned *)
  sc_log_bytes : int;  (** valid log bytes scanned *)
}

(* Charge the log/image reads to the [Wal] category when a context is
   supplied (`vmperf recover` reports recovery I/O in the same cost terms
   as everything else); tests scan uncharged. *)
let charge_read_pages ctx bytes =
  match ctx with
  | None -> ()
  | Some ctx ->
      let page_bytes = (Ctx.geometry ctx).Ctx.page_bytes in
      let pages = max 1 ((bytes + page_bytes - 1) / page_bytes) in
      let meter = Ctx.meter ctx in
      Cost_meter.with_category meter Cost_meter.Wal (fun () ->
          for _ = 1 to pages do
            Cost_meter.charge_read meter
          done)

let scan ?ctx dev =
  let image = Checkpoint.latest dev in
  (match image with
  | Some im -> charge_read_pages ctx (Checkpoint.image_bytes im)
  | None -> ());
  let image_op =
    match image with Some im -> im.Checkpoint.ck_op_index | None -> 0
  in
  let open_txns : (int, Strategy.change list ref) Hashtbl.t = Hashtbl.create 8 in
  let committed = ref [] in
  let max_txn_id = ref 0 in
  let records = ref 0 in
  let log_bytes = ref 0 in
  let invalid = ref None in
  let tail = ref Record.Clean in
  let consume = function
    | Record.Txn_begin { txn_id } ->
        max_txn_id := max !max_txn_id txn_id;
        Hashtbl.replace open_txns txn_id (ref [])
    | Record.Change ({ txn_id; _ } as c) -> (
        match Hashtbl.find_opt open_txns txn_id with
        | Some changes -> (
            match Record.to_change (Record.Change c) with
            | Some change -> changes := change :: !changes
            | None -> ())
        | None -> () (* change for a txn whose begin predates the image: skip *))
    | Record.Commit { txn_id; op_index } ->
        (match Hashtbl.find_opt open_txns txn_id with
        | Some changes ->
            Hashtbl.remove open_txns txn_id;
            if op_index > image_op then
              committed :=
                { rx_id = txn_id; rx_op_index = op_index; rx_changes = List.rev !changes }
                :: !committed
        | None -> ());
        max_txn_id := max !max_txn_id txn_id
    | Record.Checkpoint_note _ -> ()
  in
  (try
     List.iter
       (fun (_, name) ->
         match Device.read dev ~name with
         | None -> ()
         | Some data ->
             charge_read_pages ctx (String.length data);
             let s = Record.scan_bytes data in
             List.iter consume s.Record.records;
             records := !records + List.length s.Record.records;
             log_bytes := !log_bytes + s.Record.valid_bytes;
             if s.Record.tail <> Record.Clean then begin
               tail := s.Record.tail;
               invalid := Some (name, s.Record.valid_bytes);
               (* nothing after the first invalid frame can be trusted *)
               raise Exit
             end)
       (Wal.segment_files dev)
   with Exit -> ());
  let txns = List.rev !committed in
  let resume =
    List.fold_left (fun acc tx -> max acc tx.rx_op_index) image_op txns
  in
  let next_txn_id =
    let from_image =
      match image with Some im -> im.Checkpoint.ck_next_txn_id | None -> 1
    in
    max from_image (!max_txn_id + 1)
  in
  {
    sc_image = image;
    sc_txns = txns;
    sc_resume = resume;
    sc_next_txn_id = next_txn_id;
    sc_tail = !tail;
    sc_invalid = !invalid;
    sc_records = !records;
    sc_log_bytes = !log_bytes;
  }

(* Truncate the invalid tail and drop any segments after it, so the
   continuing engine appends over a clean prefix. *)
let repair dev s =
  match s.sc_invalid with
  | None -> ()
  | Some (name, keep) ->
      Device.truncate dev ~name keep;
      let bad_from =
        match Wal.segment_index name with Some i -> i | None -> max_int
      in
      List.iter
        (fun (i, seg) -> if i > bad_from then Device.remove dev ~name:seg)
        (Wal.segment_files dev)

type build = image:Checkpoint.image option -> Tuple.t list -> Strategy.t * Durable.probe

(* Redo: rebuild from the image's base contents (or the original initial
   population) and replay the committed tail through the ordinary
   differential update machinery. *)
let replay s ~initial ~(build : build) =
  let base0 =
    match s.sc_image with Some im -> im.Checkpoint.ck_base | None -> initial
  in
  let strategy, probe = build ~image:s.sc_image base0 in
  List.iter
    (fun tx -> strategy.Strategy.handle_transaction tx.rx_changes)
    s.sc_txns;
  (* The post-replay net base contents, for the continuing engine's catalog
     (fold under the sort: D3). *)
  let catalog = Hashtbl.create (max 16 (List.length base0)) in
  List.iter (fun tuple -> Hashtbl.replace catalog (Tuple.tid tuple) tuple) base0;
  List.iter
    (fun tx ->
      List.iter
        (fun (c : Strategy.change) ->
          (match c.Strategy.before with
          | Some old_tuple -> Hashtbl.remove catalog (Tuple.tid old_tuple)
          | None -> ());
          match c.Strategy.after with
          | Some new_tuple -> Hashtbl.replace catalog (Tuple.tid new_tuple) new_tuple
          | None -> ())
        tx.rx_changes)
    s.sc_txns;
  let base =
    List.sort
      (fun a b -> Int.compare (Tuple.tid a) (Tuple.tid b))
      (Hashtbl.fold (fun _ tuple acc -> tuple :: acc) catalog [])
  in
  (strategy, probe, base)

let recover ?config ~ctx ~dev ~initial ~(build : build) () =
  let r = Ctx.recorder ctx in
  let body () =
    let s = scan ~ctx dev in
    repair dev s;
    let strategy, probe, base = replay s ~initial ~build in
    let durable =
      Durable.wrap ?config ~probe ~op_index:s.sc_resume
        ~next_txn_id:s.sc_next_txn_id ~ctx ~dev ~initial:base strategy
    in
    if Recorder.enabled r then
      Recorder.instant r ~cat:"wal" "recovered"
        ~args:
          [
            ("resume", string_of_int s.sc_resume);
            ("txns", string_of_int (List.length s.sc_txns));
            ("tail", Record.tail_name s.sc_tail);
          ];
    (durable, s)
  in
  if Recorder.enabled r then Recorder.span r ~cat:"wal" "recovery" body
  else body ()
