(* Minimal JSON *text construction* for the exporters.  Zero dependencies by
   design (see the library's charter in recorder.mli): we only ever need to
   *emit* well-formed JSON, never parse it, so a handful of string builders
   suffices. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

let num f =
  if Float.is_nan f then str "nan"
  else if f = Float.infinity then str "+inf"
  else if f = Float.neg_infinity then str "-inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let int i = string_of_int i
let bool b = if b then "true" else "false"
let arr items = "[" ^ String.concat "," items ^ "]"

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"
