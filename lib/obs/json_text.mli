(** JSON text builders shared by the trace and metrics exporters.  Emission
    only — the observability layer never parses JSON. *)

val escape : string -> string
(** Backslash-escape a string for inclusion inside JSON quotes. *)

val str : string -> string
(** Quoted, escaped JSON string literal. *)

val num : float -> string
(** JSON number.  Non-finite floats (illegal in JSON) are emitted as the
    strings ["nan"], ["+inf"], ["-inf"]. *)

val int : int -> string
val bool : bool -> string
val arr : string list -> string
val obj : (string * string) list -> string
