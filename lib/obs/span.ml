type id = int

type t = {
  id : id;
  name : string;
  cat : string;
  start_ts : float;
  tid : int;
  args : (string * string) list;
}

let make ~id ~name ~cat ~start_ts ~tid ~args = { id; name; cat; start_ts; tid; args }

let id t = t.id
let name t = t.name
let cat t = t.cat
let start_ts t = t.start_ts
let tid t = t.tid
let args t = t.args
