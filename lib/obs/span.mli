(** An open span: a named, nestable interval of (virtual) time with key/value
    attributes.  Spans are created by {!Trace.begin_span} and closed by
    {!Trace.end_span}; well-nestedness is enforced by the trace's span stack
    (and guaranteed by construction when going through
    {!Recorder.span}). *)

type id = int

type t

val make :
  id:id ->
  name:string ->
  cat:string ->
  start_ts:float ->
  tid:int ->
  args:(string * string) list ->
  t

val id : t -> id
val name : t -> string
val cat : t -> string

val start_ts : t -> float
(** Timestamp in virtual milliseconds (see {!Recorder.set_clock}: the default
    wiring uses the cost meter's modeled time, so traces are deterministic). *)

val tid : t -> int
(** Chrome-trace thread id: one logical lane per strategy run. *)

val args : t -> (string * string) list
