(** Dashboard snapshots: a plain, serializable summary of a serving run at
    one instant, plus an ASCII renderer for `vmperf top --live` and
    `vmperf serve --dashboard`.

    The serving writer emits a snapshot every few epochs (from its own
    counters, the shared query counter, and its private sketch/ring — no
    cross-domain reads of mutable state), and the coordinator emits one
    final snapshot post-join with the merged view.  Snapshots are written
    as machine-readable JSON ({!to_json}) so CI can validate them, and
    rendered as a refreshing ASCII panel ({!render}) that keeps short
    per-key and TPS/QPS histories for sparklines. *)

type category = { c_name : string; c_meter_ms : float; c_metric_ms : float }
(** One cost category: the meter's view vs the metrics registry's mirror. *)

type hot = { h_key : string; h_count : int; h_err : int }

type ring_stat = { rs_label : string; rs_appended : int; rs_dropped : int }

type snapshot = {
  d_seq : int;  (** Frame number, 0-based. *)
  d_final : bool;  (** True for the one post-join snapshot. *)
  d_strategy : string;
  d_wall_s : float;
  d_txns : int;
  d_queries : int;
  d_epochs : int;
  d_tps : float;
  d_qps : float;
  d_txn_p50_us : float;
  d_txn_p95_us : float;
  d_txn_p99_us : float;
  d_query_p50_us : float;
  d_query_p95_us : float;
  d_query_p99_us : float;
      (** Query quantiles are only known post-join (reader-private
          latencies); mid-run frames carry 0. *)
  d_modeled_ms : float;  (** Cumulative modeled cost, excluding Base. *)
  d_categories : category list;
  d_hot_keys : hot list;
  d_key_total : int;
  d_key_distinct : float;
  d_key_skew : float;
  d_flight : ring_stat list;
  d_gauges : (string * float) list;
      (** Selected registry gauges (A/D file, Bloom, controller state);
          populated only on the final snapshot. *)
}

val to_json : snapshot -> string
(** One JSON object (single line) with every field above. *)

type view
(** Mutable render state: remembers recent TPS/QPS and per-key counts so
    successive frames can show sparklines. *)

val view : ?width:int -> unit -> view
(** [width] (default 32) is the sparkline history length. *)

val render : view -> snapshot -> string
(** Render one frame, updating the view's histories.  Pure ASCII; the
    caller decides whether to clear the screen between frames. *)
