(* The wall-clock axis of the serving benchmark (DESIGN §10).

   Everything else in this repository runs on the modeled cost-meter clock,
   which is deterministic by construction — vmlint rule D2 bans real time
   sources outside this file precisely so that no wall-clock reading can leak
   into a modeled measurement.  This module is the single allowlisted
   exception: it feeds TPS and latency numbers of `vmperf serve` /
   `bench --wall` only, and nothing here ever touches a Cost_meter. *)

type stopwatch = float

let now_s () = Unix.gettimeofday ()
let start () = now_s ()
let elapsed_s started = now_s () -. started
let elapsed_us started = (now_s () -. started) *. 1e6
