(* Bounded per-domain event rings; merged deterministically post-join. *)

type event =
  | Query_begin of { seq : int; epoch : int; lo : string; hi : string }
  | Query_end of { seq : int; rows : int; wall_us : float }
  | Txn_commit of {
      seq : int;
      changes : int;
      modeled_ms : float;
      wall_us : float;
    }
  | Publish of { epoch : int; txns : int; modeled_ms : float }
  | Pin of { epoch : int }
  | Unpin of { epoch : int }
  | Group_commit_force of { forces : int }

let kind_name = function
  | Query_begin _ -> "query_begin"
  | Query_end _ -> "query_end"
  | Txn_commit _ -> "txn_commit"
  | Publish _ -> "publish"
  | Pin _ -> "pin"
  | Unpin _ -> "unpin"
  | Group_commit_force _ -> "group_commit_force"

type stamped = { at_us : float; ev : event }

type t = {
  fl_label : string;
  fl_capacity : int;
  fl_slots : stamped option array;
  mutable fl_appended : int;
}

let create ?(capacity = 4096) ~label () =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be >= 1";
  {
    fl_label = label;
    fl_capacity = capacity;
    fl_slots = Array.make capacity None;
    fl_appended = 0;
  }

let label t = t.fl_label
let capacity t = t.fl_capacity

let append t ~at_us ev =
  t.fl_slots.(t.fl_appended mod t.fl_capacity) <- Some { at_us; ev };
  t.fl_appended <- t.fl_appended + 1

let appended t = t.fl_appended
let dropped t = max 0 (t.fl_appended - t.fl_capacity)

let drain t =
  let n = min t.fl_appended t.fl_capacity in
  List.init n (fun i ->
      let idx = (t.fl_appended - n + i) mod t.fl_capacity in
      match t.fl_slots.(idx) with
      | Some s -> (s.at_us, s.ev)
      | None -> assert false (* slots [appended-n, appended) are filled *))

let merge rings =
  let sorted =
    List.sort (fun a b -> String.compare a.fl_label b.fl_label) rings
  in
  let rec dup = function
    | a :: (b :: _ as rest) ->
        if String.equal a.fl_label b.fl_label then Some a.fl_label
        else dup rest
    | _ -> None
  in
  (match dup sorted with
  | Some l -> invalid_arg (Printf.sprintf "Flight.merge: duplicate label %S" l)
  | None -> ());
  sorted

let export_metrics r rings =
  List.iter
    (fun ring ->
      let domain = ring.fl_label in
      Recorder.inc r ~help:"Events appended to a domain flight ring."
        ~labels:[ ("domain", domain) ]
        "vmat_flight_appended_total"
        (float_of_int ring.fl_appended);
      Recorder.inc r
        ~help:"Flight-ring events lost to overflow (oldest evicted first)."
        ~labels:[ ("domain", domain) ]
        "vmat_flight_dropped_events_total"
        (float_of_int (dropped ring));
      (* Per-kind breakdown over what survived in the ring. *)
      let by_kind = Hashtbl.create 8 in
      List.iter
        (fun (_, ev) ->
          let k = kind_name ev in
          Hashtbl.replace by_kind k
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind k)))
        (drain ring);
      List.iter
        (fun (k, n) ->
          Recorder.inc r ~help:"Retained flight-ring events by kind."
            ~labels:[ ("domain", domain); ("kind", k) ]
            "vmat_flight_events_total" (float_of_int n))
        (List.sort
           (fun (a, _) (b, _) -> String.compare a b)
           (Hashtbl.fold (fun k n acc -> (k, n) :: acc) by_kind [])))
    (merge rings)

let to_trace trace rings =
  let rings = merge rings in
  List.iteri
    (fun i ring ->
      (* Lane 0 is the coordinator's; flight lanes start at 1. *)
      let tid = i + 1 in
      Trace.set_thread trace ~tid ~label:("flight:" ^ ring.fl_label);
      let pending = ref None in
      let last_ts = ref 0. in
      let close ts args =
        match !pending with
        | None -> ()
        | Some sp ->
            Trace.end_span trace ~ts ~args sp;
            pending := None
      in
      List.iter
        (fun (at_us, ev) ->
          let ts = at_us /. 1000. in
          last_ts := ts;
          match ev with
          | Query_begin { seq; epoch; lo; hi } ->
              (* An evicted Query_end leaves a span open: close it here so
                 spans still nest. *)
              close ts [ ("truncated", "true") ];
              pending :=
                Some
                  (Trace.begin_span trace ~ts ~cat:"serve"
                     ~args:
                       [
                         ("seq", string_of_int seq);
                         ("epoch", string_of_int epoch);
                         ("lo", lo);
                         ("hi", hi);
                       ]
                     "query")
          | Query_end { seq; rows; wall_us } -> (
              let args =
                [
                  ("seq", string_of_int seq);
                  ("rows", string_of_int rows);
                  ("wall_us", Printf.sprintf "%.1f" wall_us);
                ]
              in
              match !pending with
              | Some sp ->
                  Trace.end_span trace ~ts ~args sp;
                  pending := None
              | None ->
                  (* The matching begin was evicted. *)
                  Trace.instant trace ~ts ~cat:"serve" ~args "query_end")
          | Txn_commit { seq; changes; modeled_ms; wall_us } ->
              Trace.instant trace ~ts ~cat:"serve"
                ~args:
                  [
                    ("seq", string_of_int seq);
                    ("changes", string_of_int changes);
                    ("modeled_ms", Printf.sprintf "%.3f" modeled_ms);
                    ("wall_us", Printf.sprintf "%.1f" wall_us);
                  ]
                "txn_commit"
          | Publish { epoch; txns; modeled_ms } ->
              Trace.instant trace ~ts ~cat:"serve"
                ~args:
                  [
                    ("epoch", string_of_int epoch);
                    ("txns", string_of_int txns);
                    ("modeled_ms", Printf.sprintf "%.3f" modeled_ms);
                  ]
                "publish"
          | Pin { epoch } ->
              Trace.instant trace ~ts ~cat:"serve"
                ~args:[ ("epoch", string_of_int epoch) ]
                "pin"
          | Unpin { epoch } ->
              Trace.instant trace ~ts ~cat:"serve"
                ~args:[ ("epoch", string_of_int epoch) ]
                "unpin"
          | Group_commit_force { forces } ->
              Trace.instant trace ~ts ~cat:"serve"
                ~args:[ ("forces", string_of_int forces) ]
                "group_commit_force")
        (drain ring);
      close !last_ts [ ("truncated", "true") ])
    rings
