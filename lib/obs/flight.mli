(** Per-domain flight recorders: bounded event rings with deterministic
    oldest-event eviction.

    The serving protocol (DESIGN §10–11) forbids cross-domain mutation of
    the metrics registry and trace log — both are single-domain structures.
    A flight ring is the sanctioned alternative: each reader/writer domain
    owns a private ring, appends structured events while it runs, and hands
    the ring back when it joins.  The coordinator then {!merge}s the rings
    (sorted by label, so the result is independent of join order) and
    {!export_metrics} / {!to_trace} them into the ordinary exporters.

    Appending never allocates beyond the event itself and never touches a
    cost meter, wall clock or registry — zero observer effect on modeled
    artifacts.  When a ring overflows, the oldest event is evicted
    deterministically and counted; {!export_metrics} publishes the loss as
    [vmat_flight_dropped_events_total]. *)

type event =
  | Query_begin of { seq : int; epoch : int; lo : string; hi : string }
      (** A reader starts query [seq] over [lo, hi] against epoch [epoch]. *)
  | Query_end of { seq : int; rows : int; wall_us : float }
  | Txn_commit of {
      seq : int;
      changes : int;
      modeled_ms : float;
      wall_us : float;
    }
      (** Writer applied txn [seq]; [modeled_ms] is the meter delta it
          charged (the writer owns the meter, so reading it is safe). *)
  | Publish of { epoch : int; txns : int; modeled_ms : float }
      (** Writer published a snapshot; [modeled_ms] is the cumulative
          modeled cost at publication. *)
  | Pin of { epoch : int }
  | Unpin of { epoch : int }
  | Group_commit_force of { forces : int }
      (** WAL group-commit boundary; [forces] physical forces so far. *)

val kind_name : event -> string
(** Stable lowercase tag, e.g. ["query_begin"]. *)

type t

val create : ?capacity:int -> label:string -> unit -> t
(** A ring holding at most [capacity] (default 4096) events; [label] is
    the owning domain's name (["writer"], ["reader-0"], ...).
    @raise Invalid_argument when [capacity < 1]. *)

val label : t -> string
val capacity : t -> int

val append : t -> at_us:float -> event -> unit
(** Record an event stamped with a wall-clock microsecond timestamp
    (from {!Wallclock}, the one sanctioned wall-time source).  When full,
    the oldest retained event is evicted. *)

val appended : t -> int
(** Events ever appended, including evicted ones. *)

val dropped : t -> int
(** Events evicted by overflow ([max 0 (appended - capacity)]). *)

val drain : t -> (float * event) list
(** Retained events, oldest first, as [(at_us, event)]. *)

val merge : t list -> t list
(** Canonical coordinator order: rings sorted by label — independent of
    domain join order.  @raise Invalid_argument on duplicate labels. *)

val export_metrics : Recorder.t -> t list -> unit
(** Publish ring health counters: [vmat_flight_events_total{domain,kind}]
    over retained events, [vmat_flight_appended_total{domain}] and
    [vmat_flight_dropped_events_total{domain}].  Call on the
    registry-owning domain only (vmlint rule D6), post-join. *)

val to_trace : Trace.t -> t list -> unit
(** Replay merged rings into a trace: one Chrome-trace lane per ring
    (labelled with the domain), [Query_begin]/[Query_end] pairs become
    spans (orphans — evicted halves — degrade to instants), everything
    else becomes an instant with its fields as args.  Timestamps are the
    rings' wall-clock stamps, so serving traces are on wall time (unlike
    modeled-clock workload traces — the lanes say which is which). *)
