(** Wall-clock stopwatches for the serving benchmark (DESIGN §10).

    The only module allowed to read real time (vmlint rule D2 allowlists it
    by path).  Wall-clock readings feed the TPS / latency report of
    [vmperf serve] and [bench --wall] exclusively — they must never be fed
    into a {!Vmat_storage.Cost_meter} or any other modeled artifact, or
    cross-machine determinism of the modeled outputs is lost. *)

type stopwatch

val now_s : unit -> float
(** Seconds since the Unix epoch, sub-microsecond resolution. *)

val start : unit -> stopwatch
val elapsed_s : stopwatch -> float
val elapsed_us : stopwatch -> float
