type t = {
  enabled : bool;
  trace : Trace.t option;
  metrics : Metrics.t option;
  trace_charges : bool;
  mutable clock : unit -> float;
  (* Monotonic repair: the virtual clock (usually the cost meter's running
     total) can jump backwards when the meter is reset between phases; we
     fold such jumps into a growing offset so exported timestamps never
     decrease. *)
  mutable last_raw : float;
  mutable offset : float;
}

let noop =
  {
    enabled = false;
    trace = None;
    metrics = None;
    trace_charges = false;
    clock = (fun () -> 0.);
    last_raw = 0.;
    offset = 0.;
  }

let create ?trace ?metrics ?(trace_charges = false) () =
  {
    enabled = (trace <> None || metrics <> None);
    trace;
    metrics;
    trace_charges;
    clock = (fun () -> 0.);
    last_raw = 0.;
    offset = 0.;
  }

let enabled t = t.enabled
let trace t = t.trace
let metrics t = t.metrics
let trace_charges t = t.enabled && t.trace_charges && t.trace <> None

let set_clock t clock = if t.enabled then t.clock <- clock

let now t =
  let raw = t.clock () in
  if raw < t.last_raw then t.offset <- t.offset +. (t.last_raw -. raw);
  t.last_raw <- raw;
  raw +. t.offset

(* ------------------------------------------------------------------ *)
(* Spans and events                                                    *)
(* ------------------------------------------------------------------ *)

let span t ?cat ?args ?end_args name f =
  match t.trace with
  | None -> f ()
  | Some trace ->
      let span = Trace.begin_span trace ~ts:(now t) ?cat ?args name in
      Fun.protect
        ~finally:(fun () ->
          let args = match end_args with None -> [] | Some g -> g () in
          Trace.end_span trace ~ts:(now t) ~args span)
        f

let instant t ?cat ?args name =
  match t.trace with
  | None -> ()
  | Some trace -> Trace.instant trace ~ts:(now t) ?cat ?args name

let trace_counter t name values =
  match t.trace with
  | None -> ()
  | Some trace -> Trace.counter trace ~ts:(now t) name values

let set_thread t ~tid ~label =
  match t.trace with None -> () | Some trace -> Trace.set_thread trace ~tid ~label

(* ------------------------------------------------------------------ *)
(* Name-addressed metric conveniences (slow path: one registry lookup
   per call; hot loops should resolve handles once via [metrics]).     *)
(* ------------------------------------------------------------------ *)

let inc t ?help ?labels name by =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.inc (Metrics.counter m ?help ?labels name) by

let set_gauge t ?help ?labels name v =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.set (Metrics.gauge m ?help ?labels name) v

let observe t ?help ?labels ?bounds name v =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.observe (Metrics.histogram m ?help ?labels ?bounds name) v
