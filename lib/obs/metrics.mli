(** A metric registry: counters, gauges and log-scale histograms with
    optional labels, Prometheus text exposition and a JSON snapshot.

    Handles ({!counter}, {!gauge}, {!histogram}) are resolved once and then
    updated with plain field writes, so instrumented hot paths pay one
    hashtable lookup at registration, not per update.  Registering the same
    name and label set twice returns the same handle.

    Unlike a production Prometheus client, counters here can be {e reset}:
    the cost meter zeroes its mirrored counters whenever it is itself reset
    (at the start of a measured run), which is exactly what keeps metric
    totals provably equal to the meter's report — see
    {!Vmat_storage.Cost_meter.set_recorder}. *)

type t

type kind = Counter | Gauge | Histogram

val kind_name : kind -> string

type counter
type gauge
type histogram

val create : unit -> t

(** {1 Registration} *)

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> ?bounds:float array -> string -> histogram
(** [bounds] are strictly increasing finite bucket upper bounds; an implicit
    [+Inf] overflow bucket is always appended.  The default is
    {!log_bounds}[ ~start:1. ~growth:2. ~count:16 ()] — covering 1 ms to
    32.8 s of modeled time at power-of-two resolution. *)

val log_bounds : ?start:float -> ?growth:float -> count:int -> unit -> float array
(** [log_bounds ~start ~growth ~count ()] is
    [[| start; start*growth; ...; start*growth^(count-1) |]]. *)

val bucket_index : float array -> float -> int
(** [bucket_index bounds v] is the index of the bucket that [v] falls in:
    the smallest [i] with [v <= bounds.(i)], or [Array.length bounds] for the
    overflow bucket. *)

(** {1 Updates} *)

val inc : counter -> float -> unit
(** @raise Invalid_argument on negative increments. *)

val reset_counter : counter -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Reads} *)

val counter_value : t -> ?labels:(string * string) list -> string -> float option
val gauge_value : t -> ?labels:(string * string) list -> string -> float option

val histogram_totals : t -> ?labels:(string * string) list -> string -> (int * float) option
(** [(observation count, sum)]. *)

val histogram_buckets :
  t -> ?labels:(string * string) list -> string -> (float array * int array) option
(** [(bounds, per-bucket counts)]; the count array has one extra trailing
    overflow cell.  Counts are raw per-bucket (not cumulative). *)

val histogram_quantile :
  t -> ?labels:(string * string) list -> string -> float -> float option
(** [histogram_quantile t name q] estimates the [q]-th quantile ([q] in
    [[0, 1]]) of a histogram from its bucket counts, Prometheus
    [histogram_quantile]-style: linear interpolation inside the bucket where
    the cumulative count crosses [q * count] (lower edge 0 for the first
    bucket; the overflow bucket clamps to the last finite bound).  [None]
    for unknown series or zero observations; a single-observation histogram
    returns that sole value exactly (its retained [sum]) for every [q]
    rather than a bucket-edge interpolation.
    @raise Invalid_argument when [q] is outside [[0, 1]]. *)

val export_quantiles : float list
(** The quantiles emitted per histogram series by {!to_prometheus}:
    [[0.5; 0.95; 0.99]]. *)

val fold_series :
  t ->
  ('a -> name:string -> kind:kind -> labels:(string * string) list -> float -> 'a) ->
  'a ->
  'a
(** Fold over every non-histogram-aware scalar value (histogram series fold
    their [sum]s as 0 — use {!histogram_totals} for those). *)

(** {1 Exporters} *)

val to_prometheus : t -> string
(** Prometheus text exposition format, version 0.0.4: [# HELP]/[# TYPE]
    headers, cumulative [_bucket{le=...}] lines plus [_sum]/[_count] and
    estimated [_quantile{quantile="0.5|0.95|0.99"}] lines (see
    {!histogram_quantile}) for histograms. *)

val to_json : t -> string
(** [{"metrics": [{"name", "kind", "labels", "value" | "buckets"/"sum"/"count"}, ...]}] *)
