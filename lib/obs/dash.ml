(* Serving dashboard snapshots: JSON for CI, ASCII panel for humans. *)

type category = { c_name : string; c_meter_ms : float; c_metric_ms : float }
type hot = { h_key : string; h_count : int; h_err : int }
type ring_stat = { rs_label : string; rs_appended : int; rs_dropped : int }

type snapshot = {
  d_seq : int;
  d_final : bool;
  d_strategy : string;
  d_wall_s : float;
  d_txns : int;
  d_queries : int;
  d_epochs : int;
  d_tps : float;
  d_qps : float;
  d_txn_p50_us : float;
  d_txn_p95_us : float;
  d_txn_p99_us : float;
  d_query_p50_us : float;
  d_query_p95_us : float;
  d_query_p99_us : float;
  d_modeled_ms : float;
  d_categories : category list;
  d_hot_keys : hot list;
  d_key_total : int;
  d_key_distinct : float;
  d_key_skew : float;
  d_flight : ring_stat list;
  d_gauges : (string * float) list;
}

let to_json s =
  let module J = Json_text in
  J.obj
    [
      ("seq", J.int s.d_seq);
      ("final", J.bool s.d_final);
      ("strategy", J.str s.d_strategy);
      ("wall_s", J.num s.d_wall_s);
      ("txns", J.int s.d_txns);
      ("queries", J.int s.d_queries);
      ("epochs", J.int s.d_epochs);
      ("tps", J.num s.d_tps);
      ("qps", J.num s.d_qps);
      ( "txn_latency_us",
        J.obj
          [
            ("p50", J.num s.d_txn_p50_us);
            ("p95", J.num s.d_txn_p95_us);
            ("p99", J.num s.d_txn_p99_us);
          ] );
      ( "query_latency_us",
        J.obj
          [
            ("p50", J.num s.d_query_p50_us);
            ("p95", J.num s.d_query_p95_us);
            ("p99", J.num s.d_query_p99_us);
          ] );
      ("modeled_ms", J.num s.d_modeled_ms);
      ( "categories",
        J.arr
          (List.map
             (fun c ->
               J.obj
                 [
                   ("name", J.str c.c_name);
                   ("meter_ms", J.num c.c_meter_ms);
                   ("metric_ms", J.num c.c_metric_ms);
                 ])
             s.d_categories) );
      ( "hot_keys",
        J.arr
          (List.map
             (fun h ->
               J.obj
                 [
                   ("key", J.str h.h_key);
                   ("count", J.int h.h_count);
                   ("err", J.int h.h_err);
                 ])
             s.d_hot_keys) );
      ("key_total", J.int s.d_key_total);
      ("key_distinct", J.num s.d_key_distinct);
      ("key_skew", J.num s.d_key_skew);
      ( "flight",
        J.arr
          (List.map
             (fun r ->
               J.obj
                 [
                   ("domain", J.str r.rs_label);
                   ("appended", J.int r.rs_appended);
                   ("dropped", J.int r.rs_dropped);
                 ])
             s.d_flight) );
      ( "gauges",
        J.obj (List.map (fun (k, v) -> (k, Json_text.num v)) s.d_gauges) );
    ]

(* ---------------------------------------------------------------- render *)

type view = {
  v_width : int;
  mutable v_tps : float list; (* newest last *)
  mutable v_qps : float list;
  mutable v_keys : (string * float list) list;
  mutable v_last_counts : (string * int) list;
}

let view ?(width = 32) () =
  if width < 1 then invalid_arg "Dash.view: width must be >= 1";
  { v_width = width; v_tps = []; v_qps = []; v_keys = []; v_last_counts = [] }

let push width xs x =
  let xs = xs @ [ x ] in
  let n = List.length xs in
  if n > width then List.filteri (fun i _ -> i >= n - width) xs else xs

let update v s =
  v.v_tps <- push v.v_width v.v_tps s.d_tps;
  v.v_qps <- push v.v_width v.v_qps s.d_qps;
  (* Per-key history tracks the delta of each hot key's count between
     frames, so the sparkline shows traffic, not the running total. *)
  let deltas =
    List.map
      (fun h ->
        let prev =
          Option.value ~default:0 (List.assoc_opt h.h_key v.v_last_counts)
        in
        (h.h_key, float_of_int (max 0 (h.h_count - prev))))
      s.d_hot_keys
  in
  v.v_keys <-
    List.map
      (fun (key, d) ->
        let hist = Option.value ~default:[] (List.assoc_opt key v.v_keys) in
        (key, push v.v_width hist d))
      deltas;
  v.v_last_counts <- List.map (fun h -> (h.h_key, h.h_count)) s.d_hot_keys

let fmt_f = Vmat_util.Table.float_cell ~decimals:1

let render v s =
  update v s;
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  let spark xs = Vmat_util.Ascii_plot.sparkline xs in
  let head =
    Printf.sprintf "vmat serve · %s · epoch %d · %.1fs%s" s.d_strategy
      s.d_epochs s.d_wall_s
      (if s.d_final then " · final" else "")
  in
  line "── %s %s" head (String.make (max 2 (64 - String.length head)) '-');
  line "  txns %d (%.1f tps)   queries %d (%.1f qps)   modeled %.1f ms"
    s.d_txns s.d_tps s.d_queries s.d_qps s.d_modeled_ms;
  if List.length v.v_tps > 1 then begin
    line "  tps %s" (spark v.v_tps);
    line "  qps %s" (spark v.v_qps)
  end;
  line "";
  line "%s"
    (Vmat_util.Table.render
       ~headers:[ "latency (us)"; "p50"; "p95"; "p99" ]
       [
         [ "txn"; fmt_f s.d_txn_p50_us; fmt_f s.d_txn_p95_us; fmt_f s.d_txn_p99_us ];
         [
           "query";
           fmt_f s.d_query_p50_us;
           fmt_f s.d_query_p95_us;
           fmt_f s.d_query_p99_us;
         ];
       ]);
  if not (List.is_empty s.d_categories) then
    line "%s"
      (Vmat_util.Table.render
         ~headers:[ "category"; "meter ms"; "metric ms" ]
         (List.map
            (fun c -> [ c.c_name; fmt_f c.c_meter_ms; fmt_f c.c_metric_ms ])
            s.d_categories));
  if not (List.is_empty s.d_hot_keys) then begin
    line "  hot keys (space-saving; %d obs, ~%.0f distinct, skew %.3f):"
      s.d_key_total s.d_key_distinct s.d_key_skew;
    List.iter
      (fun h ->
        let hist = Option.value ~default:[] (List.assoc_opt h.h_key v.v_keys) in
        line "    %-16s %7d (±%d) %s" h.h_key h.h_count h.h_err (spark hist))
      s.d_hot_keys
  end;
  if not (List.is_empty s.d_flight) then
    line "  flight: %s"
      (String.concat "  "
         (List.map
            (fun r ->
              Printf.sprintf "%s %d/%d dropped" r.rs_label r.rs_appended
                r.rs_dropped)
            s.d_flight));
  if not (List.is_empty s.d_gauges) then
    List.iter (fun (k, g) -> line "  %-28s %s" k (fmt_f g)) s.d_gauges;
  Buffer.contents b
