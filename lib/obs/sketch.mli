(** Workload sketches: Space-Saving top-k heavy hitters plus a KMV
    count-distinct summary over an opaque string key space.

    The serving subsystem (DESIGN §11) maintains one sketch per domain —
    the writer over updated cluster keys, each reader over queried cluster
    keys — with no cross-domain sharing, then {!merge}s them post-join.
    The merged summary is the online input the adaptive controller
    ({!Vmat_adaptive.Wstats}) and the future heavy/light partitioner read.

    Guarantees (Metwally et al., Space-Saving): with capacity [k] over a
    stream of [n] observations, every key whose true frequency exceeds
    [n / k] is present in the sketch, and each reported count [c] with
    error [e] brackets the true count: [c - e <= true <= c].  Merging
    preserves the bracket with the error bounds summed — see the qcheck
    properties in [test/test_flight.ml].

    Everything here is deterministic: hashing is a locally implemented
    FNV-1a (stable across OCaml versions, unlike [Hashtbl.hash]), and all
    reported orders break ties lexicographically.  Nothing touches a cost
    meter, so sketches ride along with zero observer effect. *)

type t

val create : ?capacity:int -> ?distinct_k:int -> unit -> t
(** [capacity] (default 64) bounds the tracked heavy-hitter entries;
    [distinct_k] (default 256) bounds the KMV hash reservoir (counts up to
    [distinct_k] distinct keys exactly, estimates beyond).
    @raise Invalid_argument when either is < 1. *)

val capacity : t -> int

val observe : t -> ?count:int -> string -> unit
(** Record [count] (default 1) occurrences of a key. *)

val total : t -> int
(** Observations seen (the stream length [n]). *)

val tracked : t -> int
(** Keys currently tracked (at most [capacity]). *)

type heavy = { hh_key : string; hh_count : int; hh_err : int }
(** One reported heavy hitter: [hh_count - hh_err <= true <= hh_count]. *)

val top : ?k:int -> t -> heavy list
(** The tracked keys, heaviest first (ties broken by key, ascending);
    at most [k] of them when given. *)

val find : t -> string -> heavy option

val error_bound : t -> float
(** [total / capacity] — the worst-case overcount of any reported key, and
    the frequency threshold above which presence is guaranteed. *)

val distinct : t -> float
(** KMV estimate of the number of distinct keys observed (exact while the
    reservoir is not full). *)

val skew : t -> float
(** Estimated frequency of the hottest key, [top-1 count / total] in
    [[0, 1]]; [0.] on an empty sketch.  Uniform traffic over [d] keys
    gives roughly [1/d]; a Zipfian hotspot pushes it toward 1. *)

val merge : t list -> t
(** Merge per-domain sketches into a fresh one (inputs untouched).  Keys
    absent from one input are charged that input's minimum count — the
    standard mergeable-summaries construction, keeping the count bracket
    valid with error bounds summed.  Deterministic for any input order
    modulo the inputs' labels being disjoint streams: the union is
    resolved in key order.  @raise Invalid_argument when the inputs'
    capacities differ. *)

val bucket_index : cells:int -> lo:float -> hi:float -> float -> int
(** The bucket a value quantizes into under {!bucket_key}'s scheme, without
    rendering the label — callers that observe millions of keys precompute
    the [cells] label strings once and index them with this, keeping the
    per-observation path allocation-free.  Out-of-range values clamp.
    @raise Invalid_argument when [cells < 1] or [hi <= lo]. *)

val bucket_label : cells:int -> lo:float -> hi:float -> int -> string
(** Render bucket [i]'s canonical ["[a,b)"] label.  [bucket_key x] is
    [bucket_label (bucket_index x)]. *)

val bucket_key : cells:int -> lo:float -> hi:float -> float -> string
(** Quantize a continuous value into one of [cells] equal-width buckets of
    [[lo, hi)] and render the bucket as a canonical ["[a,b)"] label —
    continuous cluster keys (Model 1's [pval]) become a finite, mergeable
    key space.  Out-of-range values clamp to the edge buckets.
    @raise Invalid_argument when [cells < 1] or [hi <= lo]. *)

val export : ?labels:(string * string) list -> Recorder.t -> t -> unit
(** Publish the summary as [vmat_key_*] gauges: [vmat_key_observed_total],
    [vmat_key_distinct_est], [vmat_key_skew], [vmat_key_error_bound],
    [vmat_key_tracked], plus one [vmat_key_hot{key=...}] gauge per
    reported heavy hitter (top 16).  Call on the registry-owning domain
    only (vmlint rule D6). *)
