type event =
  | Begin of Span.t
  | End of { span : Span.t; ts : float; args : (string * string) list }
  | Instant of { name : string; cat : string; ts : float; tid : int; args : (string * string) list }
  | Counter of { name : string; ts : float; tid : int; values : (string * float) list }
  | Thread_name of { tid : int; label : string }

type t = {
  mutable events : event list; (* newest first *)
  mutable stack : Span.t list; (* open spans, innermost first *)
  mutable next_id : int;
  mutable cur_tid : int;
  mutable n_events : int;
}

let create () = { events = []; stack = []; next_id = 1; cur_tid = 1; n_events = 0 }

let push t ev =
  t.events <- ev :: t.events;
  t.n_events <- t.n_events + 1

let set_thread t ~tid ~label =
  t.cur_tid <- tid;
  push t (Thread_name { tid; label })

let current_tid t = t.cur_tid

let begin_span t ~ts ?(cat = "") ?(args = []) name =
  let span = Span.make ~id:t.next_id ~name ~cat ~start_ts:ts ~tid:t.cur_tid ~args in
  t.next_id <- t.next_id + 1;
  t.stack <- span :: t.stack;
  push t (Begin span);
  span

let end_span t ~ts ?(args = []) span =
  (match t.stack with
  | top :: rest when Span.id top = Span.id span -> t.stack <- rest
  | _ ->
      invalid_arg
        (Printf.sprintf "Trace.end_span: span %S (#%d) is not innermost" (Span.name span)
           (Span.id span)));
  push t (End { span; ts; args })

let instant t ~ts ?(cat = "") ?(args = []) name =
  push t (Instant { name; cat; ts; tid = t.cur_tid; args })

let counter t ~ts name values = push t (Counter { name; ts; tid = t.cur_tid; values })

let open_depth t = List.length t.stack
let event_count t = t.n_events
let events t = List.rev t.events

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

(* Chrome trace_event timestamps are microseconds; our virtual clock is
   modeled milliseconds, so scale by 1000 to keep the UI's ms ruler honest. *)
let us_of_ms ms = ms *. 1000.

let json_of_args args = Json_text.obj (List.map (fun (k, v) -> (k, Json_text.str v)) args)

let json_of_event ev =
  let common ~ph ~name ~cat ~ts ~tid extra =
    Json_text.obj
      ([
         ("name", Json_text.str name);
         ("cat", Json_text.str (if cat = "" then "vmat" else cat));
         ("ph", Json_text.str ph);
         ("ts", Json_text.num (us_of_ms ts));
         ("pid", Json_text.int 1);
         ("tid", Json_text.int tid);
       ]
      @ extra)
  in
  match ev with
  | Begin span ->
      common ~ph:"B" ~name:(Span.name span) ~cat:(Span.cat span) ~ts:(Span.start_ts span)
        ~tid:(Span.tid span)
        [ ("args", json_of_args (Span.args span)) ]
  | End { span; ts; args } ->
      common ~ph:"E" ~name:(Span.name span) ~cat:(Span.cat span) ~ts ~tid:(Span.tid span)
        [ ("args", json_of_args args) ]
  | Instant { name; cat; ts; tid; args } ->
      common ~ph:"i" ~name ~cat ~ts ~tid
        [ ("s", Json_text.str "t"); ("args", json_of_args args) ]
  | Counter { name; ts; tid; values } ->
      common ~ph:"C" ~name ~cat:"vmat" ~ts ~tid
        [ ("args", Json_text.obj (List.map (fun (k, v) -> (k, Json_text.num v)) values)) ]
  | Thread_name { tid; label } ->
      Json_text.obj
        [
          ("name", Json_text.str "thread_name");
          ("ph", Json_text.str "M");
          ("pid", Json_text.int 1);
          ("tid", Json_text.int tid);
          ("args", Json_text.obj [ ("name", Json_text.str label) ]);
        ]

let to_chrome_json t =
  Json_text.obj
    [
      ("traceEvents", Json_text.arr (List.map json_of_event (events t)));
      ("displayTimeUnit", Json_text.str "ms");
      ( "otherData",
        Json_text.obj
          [
            ("clock", Json_text.str "modeled-cost-ms");
            ("producer", Json_text.str "vmat");
          ] );
    ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (json_of_event ev);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
