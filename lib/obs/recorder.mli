(** The handle instrumented code records against: an optional {!Trace} plus an
    optional {!Metrics} registry behind one enabled/disabled switch.

    The charter of this library: {b zero dependencies, zero observer effect}.
    Nothing in here touches the cost meter, the disk, or any other metered
    structure, so a run with any recorder — no-op or live — reports costs
    bit-identical to a recorder-free run (there is a test for exactly that in
    [test/test_obs.ml]).  The disabled ({!noop}) path costs one branch.

    Time: spans and events are stamped with a {e virtual clock}, installed by
    the runner as the cost meter's accumulated modeled milliseconds.  That
    makes traces deterministic across machines and exactly aligned with the
    paper's cost accounting.  The clock is monotonically repaired across
    meter resets (phase boundaries). *)

type t

val noop : t
(** Permanently disabled recorder; every operation is a no-op. *)

val create : ?trace:Trace.t -> ?metrics:Metrics.t -> ?trace_charges:bool -> unit -> t
(** A live recorder writing to the given sinks.  [trace_charges] (default
    [false]) additionally emits a Chrome counter event for {e every} cost
    meter charge — fine-grained but large; leave off for big workloads. *)

val enabled : t -> bool
val trace : t -> Trace.t option
val metrics : t -> Metrics.t option
val trace_charges : t -> bool

val set_clock : t -> (unit -> float) -> unit
(** Install the virtual clock (modeled ms).  Ignored on {!noop}. *)

val now : t -> float
(** Current virtual time, monotonically repaired. *)

val span :
  t ->
  ?cat:string ->
  ?args:(string * string) list ->
  ?end_args:(unit -> (string * string) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [span t name f] runs [f] inside a named span (exception-safe, so spans
    are well-nested by construction).  [end_args] is evaluated only when
    tracing is live, after [f] returns — use it for "how much did this
    cost" attributes. *)

val instant : t -> ?cat:string -> ?args:(string * string) list -> string -> unit
val trace_counter : t -> string -> (string * float) list -> unit

val set_thread : t -> tid:int -> label:string -> unit
(** Route subsequent trace events to a labelled Chrome-trace lane (one per
    strategy run by convention). *)

(** {1 Name-addressed metric conveniences}

    One registry lookup per call; hot loops should resolve handles once via
    {!metrics} and the {!Metrics} API instead. *)

val inc : t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit
val set_gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit

val observe :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?bounds:float array ->
  string ->
  float ->
  unit
