(** An append-only event log of spans, instants and counter samples, with
    exporters for the Chrome [trace_event] JSON format (load the file in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}) and for
    line-delimited JSON.

    Timestamps are in {e modeled milliseconds} — the deterministic virtual
    clock of the cost meter, not wall time — so two runs of the same seeded
    workload produce byte-identical traces. *)

type event =
  | Begin of Span.t
  | End of { span : Span.t; ts : float; args : (string * string) list }
  | Instant of {
      name : string;
      cat : string;
      ts : float;
      tid : int;
      args : (string * string) list;
    }
  | Counter of { name : string; ts : float; tid : int; values : (string * float) list }
  | Thread_name of { tid : int; label : string }

type t

val create : unit -> t

val set_thread : t -> tid:int -> label:string -> unit
(** Route subsequent events to Chrome-trace thread [tid], labelled [label]
    (one lane per strategy run is the convention). *)

val current_tid : t -> int

val begin_span : t -> ts:float -> ?cat:string -> ?args:(string * string) list -> string -> Span.t
(** Open a span; it becomes the innermost open span. *)

val end_span : t -> ts:float -> ?args:(string * string) list -> Span.t -> unit
(** Close a span.  @raise Invalid_argument if it is not the innermost open
    span — spans must nest (use {!Recorder.span} for by-construction
    nesting). *)

val instant : t -> ts:float -> ?cat:string -> ?args:(string * string) list -> string -> unit
val counter : t -> ts:float -> string -> (string * float) list -> unit

val open_depth : t -> int
(** Number of currently open spans. *)

val event_count : t -> int

val events : t -> event list
(** In emission order. *)

val to_chrome_json : t -> string
(** The whole log as one Chrome [trace_event] JSON object
    ([{"traceEvents": [...]}], timestamps scaled to microseconds as the
    format requires). *)

val to_jsonl : t -> string
(** One JSON object per line per event (same shapes as the Chrome export). *)
