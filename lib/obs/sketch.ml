(* Space-Saving heavy hitters + KMV count-distinct over string keys.
   Deterministic: local FNV-1a hashing, lexicographic tie-breaking. *)

type entry = { e_key : string; mutable e_count : int; mutable e_err : int }

type t = {
  sk_capacity : int;
  sk_distinct_k : int;
  sk_entries : (string, entry) Hashtbl.t;
  mutable sk_total : int;
  (* KMV reservoir: the [distinct_k] smallest hashes seen, ascending,
     duplicates removed. *)
  mutable sk_hashes : float list;
  mutable sk_nhashes : int;
}

let create ?(capacity = 64) ?(distinct_k = 256) () =
  if capacity < 1 then invalid_arg "Sketch.create: capacity must be >= 1";
  if distinct_k < 1 then invalid_arg "Sketch.create: distinct_k must be >= 1";
  {
    sk_capacity = capacity;
    sk_distinct_k = distinct_k;
    sk_entries = Hashtbl.create (2 * capacity);
    sk_total = 0;
    sk_hashes = [];
    sk_nhashes = 0;
  }

let capacity t = t.sk_capacity
let total t = t.sk_total
let tracked t = Hashtbl.length t.sk_entries

(* FNV-1a 64-bit, mapped to [0, 1).  Hashtbl.hash is banned (vmlint D2:
   polymorphic hashing is not stable across OCaml versions). *)
let fnv1a_unit s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  (* Top 53 bits as a uniform float in [0, 1). *)
  Int64.to_float (Int64.shift_right_logical !h 11) /. 9007199254740992.

let rec kmv_insert x = function
  | [] -> [ x ]
  | y :: rest ->
      if x < y then x :: y :: rest
      else if x = y then y :: rest (* duplicate key: reservoir unchanged *)
      else y :: kmv_insert x rest

let observe_hash t h =
  if t.sk_nhashes < t.sk_distinct_k then begin
    let before = t.sk_nhashes in
    t.sk_hashes <- kmv_insert h t.sk_hashes;
    (* kmv_insert drops duplicates, so recount cheaply via physical growth *)
    if List.length t.sk_hashes > before then t.sk_nhashes <- before + 1
  end
  else
    match List.rev t.sk_hashes with
    | [] -> ()
    | kth :: _ ->
        if h < kth then begin
          let inserted = kmv_insert h t.sk_hashes in
          if List.length inserted > t.sk_nhashes then
            (* drop the (now k+1-th) largest *)
            t.sk_hashes <- List.filteri (fun i _ -> i < t.sk_nhashes) inserted
          else t.sk_hashes <- inserted
        end

(* The eviction victim: smallest count; among equal counts the
   lexicographically largest key goes first, so survivors are stable. *)
let min_entry t =
  Hashtbl.fold
    (fun _ e acc ->
      match acc with
      | None -> Some e
      | Some best ->
          if
            e.e_count < best.e_count
            || (e.e_count = best.e_count && String.compare e.e_key best.e_key > 0)
          then Some e
          else Some best)
    t.sk_entries None

let min_count t =
  if Hashtbl.length t.sk_entries < t.sk_capacity then 0
  else match min_entry t with None -> 0 | Some e -> e.e_count

let observe t ?(count = 1) key =
  if count < 1 then invalid_arg "Sketch.observe: count must be >= 1";
  t.sk_total <- t.sk_total + count;
  observe_hash t (fnv1a_unit key);
  match Hashtbl.find_opt t.sk_entries key with
  | Some e -> e.e_count <- e.e_count + count
  | None ->
      if Hashtbl.length t.sk_entries < t.sk_capacity then
        Hashtbl.replace t.sk_entries key
          { e_key = key; e_count = count; e_err = 0 }
      else begin
        match min_entry t with
        | None -> assert false (* capacity >= 1 and table is full *)
        | Some victim ->
            Hashtbl.remove t.sk_entries victim.e_key;
            Hashtbl.replace t.sk_entries key
              {
                e_key = key;
                e_count = victim.e_count + count;
                e_err = victim.e_count;
              }
      end

type heavy = { hh_key : string; hh_count : int; hh_err : int }

let heavy_of_entry e = { hh_key = e.e_key; hh_count = e.e_count; hh_err = e.e_err }

let top ?k t =
  let all =
    List.sort
      (fun a b ->
        let c = Int.compare b.e_count a.e_count in
        if c <> 0 then c else String.compare a.e_key b.e_key)
      (Hashtbl.fold (fun _ e acc -> e :: acc) t.sk_entries [])
  in
  let all = List.map heavy_of_entry all in
  match k with
  | None -> all
  | Some k -> List.filteri (fun i _ -> i < k) all

let find t key =
  Option.map heavy_of_entry (Hashtbl.find_opt t.sk_entries key)

let error_bound t = float_of_int t.sk_total /. float_of_int t.sk_capacity

let distinct t =
  if t.sk_nhashes < t.sk_distinct_k then float_of_int t.sk_nhashes
  else
    match List.rev t.sk_hashes with
    | [] -> 0.
    | kth :: _ ->
        if kth <= 0. then float_of_int t.sk_nhashes
        else float_of_int (t.sk_nhashes - 1) /. kth

let skew t =
  if t.sk_total = 0 then 0.
  else
    match top ~k:1 t with
    | [] -> 0.
    | h :: _ -> float_of_int h.hh_count /. float_of_int t.sk_total

let merge sketches =
  match sketches with
  | [] -> create ()
  | first :: rest ->
      List.iter
        (fun s ->
          if s.sk_capacity <> first.sk_capacity then
            invalid_arg "Sketch.merge: capacities differ")
        rest;
      let out =
        create ~capacity:first.sk_capacity ~distinct_k:first.sk_distinct_k ()
      in
      (* Union of tracked keys, resolved in key order for determinism. *)
      let keys =
        List.sort_uniq String.compare
          (List.concat_map
             (fun s -> Hashtbl.fold (fun k _ acc -> k :: acc) s.sk_entries [])
             sketches)
      in
      let mins = List.map min_count sketches in
      let combined =
        List.map
          (fun key ->
            let count, err =
              List.fold_left2
                (fun (c, e) s m ->
                  match Hashtbl.find_opt s.sk_entries key with
                  | Some entry -> (c + entry.e_count, e + entry.e_err)
                  (* Absent from a full sketch: its true count there is at
                     most that sketch's minimum — charge it as overcount. *)
                  | None -> (c + m, e + m))
                (0, 0) sketches mins
            in
            { e_key = key; e_count = count; e_err = err })
          keys
      in
      let ranked =
        List.sort
          (fun a b ->
            let c = Int.compare b.e_count a.e_count in
            if c <> 0 then c else String.compare a.e_key b.e_key)
          combined
      in
      List.iteri
        (fun i e ->
          if i < out.sk_capacity then Hashtbl.replace out.sk_entries e.e_key e)
        ranked;
      out.sk_total <- List.fold_left (fun acc s -> acc + s.sk_total) 0 sketches;
      List.iter
        (fun s -> List.iter (fun h -> observe_hash out h) s.sk_hashes)
        sketches;
      out

let bucket_index ~cells ~lo ~hi x =
  if cells < 1 then invalid_arg "Sketch.bucket_key: cells must be >= 1";
  if hi <= lo then invalid_arg "Sketch.bucket_key: need lo < hi";
  let w = (hi -. lo) /. float_of_int cells in
  let i = int_of_float (Float.floor ((x -. lo) /. w)) in
  if i < 0 then 0 else if i >= cells then cells - 1 else i

let bucket_label ~cells ~lo ~hi i =
  let w = (hi -. lo) /. float_of_int cells in
  Printf.sprintf "[%.4g,%.4g)"
    (lo +. (w *. float_of_int i))
    (lo +. (w *. float_of_int (i + 1)))

let bucket_key ~cells ~lo ~hi x =
  bucket_label ~cells ~lo ~hi (bucket_index ~cells ~lo ~hi x)

let export ?(labels = []) r t =
  let gauge name help v = Recorder.set_gauge r ~help ~labels name v in
  gauge "vmat_key_observed_total" "Cluster-key observations sketched."
    (float_of_int t.sk_total);
  gauge "vmat_key_distinct_est" "KMV estimate of distinct cluster keys."
    (distinct t);
  gauge "vmat_key_skew" "Estimated frequency of the hottest cluster key."
    (skew t);
  gauge "vmat_key_error_bound"
    "Space-Saving worst-case overcount (total / capacity)." (error_bound t);
  gauge "vmat_key_tracked" "Cluster keys tracked by the Space-Saving sketch."
    (float_of_int (tracked t));
  List.iter
    (fun h ->
      Recorder.set_gauge r
        ~help:"Estimated count of a heavy-hitter cluster key."
        ~labels:(labels @ [ ("key", h.hh_key) ])
        "vmat_key_hot"
        (float_of_int h.hh_count))
    (top ~k:16 t)
