type kind = Counter | Gauge | Histogram

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"

type histo = {
  bounds : float array; (* strictly increasing finite upper bounds *)
  counts : int array; (* length = Array.length bounds + 1; last bucket is +Inf *)
  mutable sum : float;
  mutable nobs : int;
}

type series = {
  s_labels : (string * string) list; (* sorted by label name *)
  mutable value : float; (* counters and gauges *)
  histo : histo option;
}

type counter = series
type gauge = series
type histogram = series

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  mutable f_series : series list; (* newest first *)
  f_tbl : (string, series) Hashtbl.t;
}

type t = { families : (string, family) Hashtbl.t; mutable order : string list }

let create () = { families = Hashtbl.create 64; order = [] }

let canon_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let label_key labels =
  String.concat "\x00" (List.concat_map (fun (k, v) -> [ k; v ]) labels)

(* ------------------------------------------------------------------ *)
(* Log-scale histogram bucket math                                     *)
(* ------------------------------------------------------------------ *)

let log_bounds ?(start = 1.) ?(growth = 2.) ~count () =
  if count < 1 then invalid_arg "Metrics.log_bounds: count must be >= 1";
  if start <= 0. then invalid_arg "Metrics.log_bounds: start must be positive";
  if growth <= 1. then invalid_arg "Metrics.log_bounds: growth must be > 1";
  Array.init count (fun i -> start *. (growth ** float_of_int i))

let default_bounds = log_bounds ~start:1. ~growth:2. ~count:16 ()

(* Smallest bucket whose upper bound is >= v; the overflow bucket (index
   [Array.length bounds]) catches everything above the last bound. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec search lo hi =
    (* invariant: every i < lo has bounds.(i) < v; every i >= hi admits v *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then search lo mid else search (mid + 1) hi
  in
  search 0 n

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let family t ~kind ~help name =
  match Hashtbl.find_opt t.families name with
  | Some f ->
      if f.f_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name
             (kind_name f.f_kind));
      f
  | None ->
      let f =
        { f_name = name; f_help = help; f_kind = kind; f_series = []; f_tbl = Hashtbl.create 4 }
      in
      Hashtbl.replace t.families name f;
      t.order <- name :: t.order;
      f

let series f ~labels ~histo =
  let labels = canon_labels labels in
  let key = label_key labels in
  match Hashtbl.find_opt f.f_tbl key with
  | Some s -> s
  | None ->
      let s = { s_labels = labels; value = 0.; histo = histo () } in
      Hashtbl.replace f.f_tbl key s;
      f.f_series <- s :: f.f_series;
      s

let counter t ?(help = "") ?(labels = []) name : counter =
  series (family t ~kind:Counter ~help name) ~labels ~histo:(fun () -> None)

let gauge t ?(help = "") ?(labels = []) name : gauge =
  series (family t ~kind:Gauge ~help name) ~labels ~histo:(fun () -> None)

let histogram t ?(help = "") ?(labels = []) ?(bounds = default_bounds) name : histogram =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metrics.histogram: no buckets";
  for i = 1 to n - 1 do
    if bounds.(i - 1) >= bounds.(i) then
      invalid_arg "Metrics.histogram: bounds must be strictly increasing"
  done;
  series (family t ~kind:Histogram ~help name) ~labels ~histo:(fun () ->
      Some { bounds = Array.copy bounds; counts = Array.make (n + 1) 0; sum = 0.; nobs = 0 })

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)
(* ------------------------------------------------------------------ *)

let inc c by =
  if by < 0. then invalid_arg "Metrics.inc: counters only go up";
  c.value <- c.value +. by

let reset_counter c = c.value <- 0.
let set g v = g.value <- v

let observe h v =
  match h.histo with
  | None -> invalid_arg "Metrics.observe: not a histogram"
  | Some histo ->
      let i = bucket_index histo.bounds v in
      histo.counts.(i) <- histo.counts.(i) + 1;
      histo.sum <- histo.sum +. v;
      histo.nobs <- histo.nobs + 1

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

let find t ?(labels = []) name =
  match Hashtbl.find_opt t.families name with
  | None -> None
  | Some f -> Hashtbl.find_opt f.f_tbl (label_key (canon_labels labels))

let counter_value t ?labels name = Option.map (fun s -> s.value) (find t ?labels name)
let gauge_value t ?labels name = Option.map (fun s -> s.value) (find t ?labels name)

let histogram_totals t ?labels name =
  match find t ?labels name with
  | Some { histo = Some h; _ } -> Some (h.nobs, h.sum)
  | _ -> None

let histogram_buckets t ?labels name =
  match find t ?labels name with
  | Some { histo = Some h; _ } -> Some (Array.copy h.bounds, Array.copy h.counts)
  | _ -> None

(* Prometheus-style quantile estimate from cumulative bucket counts: walk to
   the bucket where the cumulative count reaches [q * nobs] and interpolate
   linearly inside it.  The first bucket interpolates from a lower edge of 0;
   the overflow bucket has no upper edge, so the last finite bound is the
   best defensible estimate there. *)
let histo_quantile h q =
  if q < 0. || q > 1. then invalid_arg "Metrics.histogram_quantile: q must be in [0, 1]";
  if h.nobs = 0 then None
    (* A single observation has an exact answer — its own value, which the
       histogram retains as [sum] — so skip the bucket interpolation (whose
       answer depends on where the bucket edges happen to fall). *)
  else if h.nobs = 1 then Some h.sum
  else begin
    let n = Array.length h.bounds in
    let target = Float.max 1. (q *. float_of_int h.nobs) in
    let rec find i cum =
      if i = n then Some h.bounds.(n - 1)
      else
        let c = h.counts.(i) in
        if float_of_int (cum + c) >= target then
          let lo = if i = 0 then 0. else h.bounds.(i - 1) in
          let hi = h.bounds.(i) in
          if c = 0 then Some hi
          else Some (lo +. ((hi -. lo) *. ((target -. float_of_int cum) /. float_of_int c)))
        else find (i + 1) (cum + c)
    in
    find 0 0
  end

let histogram_quantile t ?labels name q =
  match find t ?labels name with
  | Some { histo = Some h; _ } -> histo_quantile h q
  | _ -> None

let export_quantiles = [ 0.5; 0.95; 0.99 ]

let families t =
  List.filter_map (fun name -> Hashtbl.find_opt t.families name) (List.rev t.order)

let fold_series t f init =
  List.fold_left
    (fun acc fam ->
      List.fold_left
        (fun acc s -> f acc ~name:fam.f_name ~kind:fam.f_kind ~labels:s.s_labels s.value)
        acc (List.rev fam.f_series))
    init (families t)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

let prom_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
      ^ "}"

let prom_num f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_prometheus t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun fam ->
      if fam.f_help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" fam.f_name (prom_escape fam.f_help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam.f_name (kind_name fam.f_kind));
      List.iter
        (fun s ->
          match s.histo with
          | None ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" fam.f_name (prom_labels s.s_labels) (prom_num s.value))
          | Some h ->
              let cumulative = ref 0 in
              Array.iteri
                (fun i count ->
                  cumulative := !cumulative + count;
                  let le =
                    if i < Array.length h.bounds then prom_num h.bounds.(i) else "+Inf"
                  in
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" fam.f_name
                       (prom_labels (s.s_labels @ [ ("le", le) ]))
                       !cumulative))
                h.counts;
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" fam.f_name (prom_labels s.s_labels)
                   (prom_num h.sum));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %d\n" fam.f_name (prom_labels s.s_labels) h.nobs);
              List.iter
                (fun q ->
                  match histo_quantile h q with
                  | None -> ()
                  | Some v ->
                      Buffer.add_string buf
                        (Printf.sprintf "%s_quantile%s %s\n" fam.f_name
                           (prom_labels (s.s_labels @ [ ("quantile", prom_num q) ]))
                           (prom_num v)))
                export_quantiles)
        (List.rev fam.f_series))
    (families t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                       *)
(* ------------------------------------------------------------------ *)

let json_of_labels labels =
  Json_text.obj (List.map (fun (k, v) -> (k, Json_text.str v)) labels)

let to_json t =
  Json_text.obj
    [
      ( "metrics",
        Json_text.arr
          (List.concat_map
             (fun fam ->
               List.map
                 (fun s ->
                   let base =
                     [
                       ("name", Json_text.str fam.f_name);
                       ("kind", Json_text.str (kind_name fam.f_kind));
                       ("labels", json_of_labels s.s_labels);
                     ]
                   in
                   match s.histo with
                   | None -> Json_text.obj (base @ [ ("value", Json_text.num s.value) ])
                   | Some h ->
                       Json_text.obj
                         (base
                         @ [
                             ( "buckets",
                               Json_text.arr
                                 (Array.to_list
                                    (Array.mapi
                                       (fun i count ->
                                         Json_text.obj
                                           [
                                             ( "le",
                                               if i < Array.length h.bounds then
                                                 Json_text.num h.bounds.(i)
                                               else Json_text.str "+Inf" );
                                             ("count", Json_text.int count);
                                           ])
                                       h.counts)) );
                             ("sum", Json_text.num h.sum);
                             ("count", Json_text.int h.nobs);
                           ]))
                 (List.rev fam.f_series))
             (families t)) );
    ]
