(** Fleet experiment driver: one Zipf-addressed stream replayed against a
    shared fleet engine and against [n] isolated single-view engines, with
    modeled-cost accounting and (optionally) a per-query equivalence check
    against the isolated oracles (DESIGN §14.5, EXPERIMENTS X10). *)

type opts = {
  ro_views : int;
  ro_overlap : float;  (** fraction of alias (duplicate-definition) views *)
  ro_subsume : float;
  ro_hetero : float;
  ro_zipf : float;  (** query-popularity skew across views *)
  ro_n_tuples : int;
  ro_k : int;  (** update transactions *)
  ro_l : int;  (** modified tuples per transaction *)
  ro_q : int;  (** queries *)
  ro_fv : float;  (** fraction of a view's envelope per query *)
  ro_seed : int;
  ro_ad_buckets : int;
  ro_advisor : Advisor.config option;
  ro_check : bool;  (** compare every answer against the isolated oracle *)
}

val default_opts : opts
(** 64 views, overlap 0.5, zipf 1.1, 2000 tuples, k=200 l=8 q=100, fv=0.3,
    seed 11, 4 AD buckets, default advisor, check on. *)

type result = {
  r_views : int;
  r_classes : int;
  r_groups : int;
  r_aliases : int;
  r_materialized : int;  (** materialized DAG nodes at end of run *)
  r_refreshes : int;
  r_promotions : int;
  r_demotions : int;
  r_shared_maint_ms : float;  (** Screen + Hr + Refresh + Migrate, fleet *)
  r_shared_total_ms : float;  (** everything but Base, fleet *)
  r_isolated_maint_ms : float;  (** summed over the isolated engines *)
  r_isolated_total_ms : float;
  r_shared_ms_per_delta : float;
  r_isolated_ms_per_delta : float;
  r_maint_speedup : float;  (** isolated / shared maintenance *)
  r_total_speedup : float;
  r_digest : string;  (** FNV-1a 64 over all final view contents *)
  r_match : bool;  (** true when every check passed (or checks were off) *)
  r_dag : string list;  (** {!Dag.describe} of the compiled fleet *)
  r_events : Fleet.event list;  (** advisor promote/demote log, oldest first *)
  r_nodes : Fleet.node_info list;  (** end-of-run per-node state *)
}

val run_comparison : ?recorder:Vmat_obs.Recorder.t -> opts -> result
(** Generate the fleet and stream from [ro_seed], replay against both
    organizations, and return the comparison.  When [recorder] is given it
    is installed on the fleet context's meter and [vmat_fleet_*] metrics are
    exported at the end of the run. *)
