open Vmat_storage
open Vmat_relalg
module Btree = Vmat_index.Btree
module Hr = Vmat_hypo.Hr
module View_def = Vmat_view.View_def
module Materialized = Vmat_view.Materialized
module Screen = Vmat_view.Screen
module Strategy = Vmat_view.Strategy
module Wstats = Vmat_adaptive.Wstats
module Recorder = Vmat_obs.Recorder

type node_rt = {
  node : Dag.node;
  screen : Screen.t;
  mutable mat : Materialized.t option;
  mutable generation : int;  (** rebuilds, for unique storage names *)
  mutable queries_n : int;
  mutable applied_n : int;
  mutable applied_w : int;  (** relevant deltas since the last decision *)
}

type event = { ev_query : int; ev_node : string; ev_action : string; ev_score : float }

type t = {
  meter : Cost_meter.t;
  disk : Disk.t;
  geometry : Ctx.geometry;
  tids : Tuple.source;
  base_schema : Schema.t;
  base_tree : Btree.t;
  hr : Hr.t;
  dag : Dag.t;
  nodes : node_rt array;
  roots : int list;
  advisor : Advisor.t option;
  wstats : Wstats.t;
  mutable any_stale : bool;
  mutable refreshes : int;
  mutable txns : int;
  mutable queries : int;
  mutable promotions : int;
  mutable demotions : int;
  mutable events_rev : event list;
}

let is_class (rt : node_rt) = match rt.node.nd_kind with Dag.Class -> true | Dag.Group -> false

let default_base_cluster views =
  let counts =
    List.fold_left
      (fun acc (v : View_def.sp) ->
        let c = v.sp_positions.(v.sp_cluster_out) in
        let rec bump = function
          | [] -> [ (c, 1) ]
          | (c', n) :: rest when Int.equal c c' -> (c', n + 1) :: rest
          | e :: rest -> e :: bump rest
        in
        bump acc)
      [] views
  in
  fst
    (List.fold_left
       (fun (bc, bn) (c, n) -> if n > bn || (n = bn && c < bc) then (c, n) else (bc, bn))
       (max_int, 0) counts)

let create ~ctx ~base ~views ~initial ~ad_buckets ?(advisor = Some Advisor.default_config)
    ?base_cluster () =
  let dag = Dag.build ~base views in
  let disk = Ctx.disk ctx in
  let geometry = Ctx.geometry ctx in
  let tids = Ctx.tids ctx in
  let meter = Ctx.meter ctx in
  let base_cluster_col =
    match base_cluster with
    | Some name -> (
        match Schema.column_index base name with
        | i -> i
        | exception Not_found ->
            invalid_arg
              ("Fleet.create: base_cluster " ^ name ^ " is not a column of " ^ Schema.name base))
    | None -> default_base_cluster views
  in
  let base_tree =
    Btree.create ~disk ~name:(Schema.name base) ~fanout:(Strategy.fanout geometry)
      ~leaf_capacity:(Strategy.blocking_factor geometry base)
      ~key_col:base_cluster_col ()
  in
  Btree.bulk_load base_tree initial;
  Buffer_pool.invalidate (Btree.pool base_tree);
  let hr =
    Hr.create ~disk ~tids ~base:base_tree ~schema:base ~ad_buckets
      ~tuples_per_page:(Strategy.blocking_factor geometry base)
      ~sanitize:(Ctx.sanitizer ctx) ()
  in
  let make_rt (nd : Dag.node) =
    let mat =
      match nd.nd_kind with
      | Dag.Group -> None (* groups start transient; the advisor may promote them *)
      | Dag.Class ->
          let m =
            Materialized.create ~disk ~name:nd.nd_name ~fanout:(Strategy.fanout geometry)
              ~leaf_capacity:(Strategy.blocking_factor geometry nd.nd_def.sp_out_schema)
              ~cluster_col:nd.nd_def.sp_cluster_out ()
          in
          Materialized.rebuild m (Vmat_view.Delta.recompute_sp ~tids nd.nd_def initial);
          Some m
    in
    {
      node = nd;
      screen = Screen.create ~meter ~view_name:nd.nd_name ~pred:nd.nd_def.sp_pred ();
      mat;
      generation = 0;
      queries_n = 0;
      applied_n = 0;
      applied_w = 0;
    }
  in
  {
    meter;
    disk;
    geometry;
    tids;
    base_schema = base;
    base_tree;
    hr;
    dag;
    nodes = Array.map make_rt dag.dag_nodes;
    roots = Dag.roots dag;
    advisor = Option.map (fun cfg -> Advisor.create ~config:cfg ~n_nodes:(Array.length dag.dag_nodes) ()) advisor;
    wstats = Wstats.create ();
    any_stale = false;
    refreshes = 0;
    txns = 0;
    queries = 0;
    promotions = 0;
    demotions = 0;
    events_rev = [];
  }

let view_names t = List.map fst t.dag.Dag.dag_view_node
let dag t = t.dag

let node_index t view =
  let rec find = function
    | [] -> raise Not_found
    | (name, id) :: rest -> if String.equal name view then id else find rest
  in
  find t.dag.Dag.dag_view_node

(* Cascade screening: a child's region is contained in its parent's, so a
   tuple its parent's screen rejects cannot be marked for any descendant —
   the subtree is skipped without paying its stage-2 tests.  A tuple is
   recorded as marked in the shared differential file when some {e class}
   node marks it (group marks alone serve maintenance filtering; per-node
   relevance is re-derived from the stored predicates at refresh time, like
   [Multi_view]'s per-view marker bits). *)
let screen_image t tuple =
  let any_class = ref false in
  let rec go idx =
    let rt = t.nodes.(idx) in
    if Screen.screen rt.screen tuple then begin
      if is_class rt then any_class := true;
      List.iter go rt.node.nd_children
    end
  in
  List.iter go t.roots;
  if !any_class then t.any_stale <- true;
  !any_class

let handle_transaction t changes =
  let before = Cost_meter.snapshot t.meter in
  List.iter
    (fun (change : Strategy.change) ->
      let mark = Option.map (screen_image t) in
      let marked_old = mark change.Strategy.before
      and marked_new = mark change.Strategy.after in
      match (change.Strategy.before, change.Strategy.after) with
      | Some old_tuple, Some new_tuple ->
          Hr.apply_update t.hr ~old_tuple ~new_tuple
            ~marked_old:(Option.value ~default:false marked_old)
            ~marked_new:(Option.value ~default:false marked_new)
      | None, Some tuple ->
          Hr.apply_insert t.hr tuple ~marked:(Option.value ~default:false marked_new)
      | Some tuple, None ->
          Hr.apply_delete t.hr tuple ~marked:(Option.value ~default:false marked_old)
      | None, None -> ())
    changes;
  Hr.end_transaction t.hr;
  t.txns <- t.txns + 1;
  let cost = Cost_meter.cost_since t.meter before ~excluding:[ Cost_meter.Base ] () in
  Wstats.observe_txn t.wstats ~l:(List.length changes) ~cost ()

let relevant (rt : node_rt) tuple = Predicate.eval rt.node.nd_def.sp_pred tuple

(* One shared refresh pass: a single AD read brings every materialized node
   up to date (per-node relevance is re-derived at no extra charge from the
   conceptually-stored marker bits, exactly like [Multi_view]); transient
   nodes only tally their would-be work for the advisor.  [Hr.reset] then
   folds the deltas into the base relation, which is what keeps transient
   query answering (a base or ancestor scan) current. *)
let refresh_all t =
  if t.any_stale then begin
    t.refreshes <- t.refreshes + 1;
    Cost_meter.with_category t.meter Cost_meter.Refresh (fun () ->
        let a_net, d_net = Hr.net_changes t.hr in
        Array.iter
          (fun rt ->
            let apply_if action (tuple, marked) =
              if marked && relevant rt tuple then begin
                rt.applied_w <- rt.applied_w + 1;
                rt.applied_n <- rt.applied_n + 1;
                match rt.mat with
                | Some mat ->
                    Materialized.apply mat action (View_def.sp_output ~tids:t.tids rt.node.nd_def tuple)
                | None -> ()
              end
            in
            List.iter (apply_if Materialized.Delete) d_net;
            List.iter (apply_if Materialized.Insert) a_net;
            match rt.mat with Some m -> Materialized.flush m | None -> ())
          t.nodes);
    Hr.reset t.hr;
    t.any_stale <- false
  end

(* ------------------------------------------------------------------ *)
(* Transient answering: nearest materialized ancestor                  *)
(* ------------------------------------------------------------------ *)

let rec mat_ancestor t idx =
  match t.nodes.(idx).node.nd_parent with
  | None -> None
  | Some p -> (
      match t.nodes.(p).mat with
      | Some m -> Some (t.nodes.(p), m)
      | None -> mat_ancestor t p)

let cluster_base_col_of (def : View_def.sp) = def.sp_positions.(def.sp_cluster_out)

(* Output position of base column [bcol] in [parent]'s projection. *)
let position_in (parent : View_def.sp) bcol =
  let rec find j =
    if j >= Array.length parent.sp_positions then None
    else if Int.equal parent.sp_positions.(j) bcol then Some j
    else find (j + 1)
  in
  find 0

let position_in_exn parent bcol =
  match position_in parent bcol with
  | Some j -> j
  | None -> invalid_arg "Fleet: child projection not derivable from parent (DAG bug)"

let project_from_parent t ~proj tuple =
  Tuple.make ~tid:(Tuple.next t.tids) (Array.map (fun j -> Tuple.get tuple j) proj)

(* Scan the base relation for a transient node's rows, with the clustered
   range narrowed when the node clusters on the base tree's key column. *)
let scan_base t (def : View_def.sp) ~(q : Strategy.query) k =
  let cb = cluster_base_col_of def in
  let lo, hi =
    if Int.equal cb (Btree.key_col t.base_tree) then (q.q_lo, q.q_hi)
    else (Strategy.min_sentinel, Strategy.max_sentinel)
  in
  let compiled =
    Predicate.compile t.base_schema (Predicate.And (def.sp_pred, Predicate.Between (cb, q.q_lo, q.q_hi)))
  in
  Btree.range_views t.base_tree ~lo ~hi (fun view ->
      Cost_meter.charge_predicate_test t.meter;
      if Predicate.eval_view compiled view then
        k (View_def.sp_output_view ~tids:t.tids def view, 1));
  Buffer_pool.invalidate (Btree.pool t.base_tree)

(* Scan a materialized ancestor for a transient node's rows: the node's
   predicate and clustered query bounds are remapped into the ancestor's
   output shape (the DAG guarantees every needed column is projected). *)
let scan_ancestor t ~(anc : node_rt) ~(m : Materialized.t) (def : View_def.sp)
    ~(q : Strategy.query) k =
  let anc_def = anc.node.nd_def in
  let cb = cluster_base_col_of def in
  let cb_anc = position_in_exn anc_def cb in
  let lo, hi =
    if Int.equal (cluster_base_col_of anc_def) cb then (q.q_lo, q.q_hi)
    else (Strategy.min_sentinel, Strategy.max_sentinel)
  in
  let pred =
    match Ir.remap_columns def.sp_pred ~f:(position_in anc_def) with
    | Some p -> Predicate.And (p, Predicate.Between (cb_anc, q.q_lo, q.q_hi))
    | None -> invalid_arg "Fleet: child predicate not derivable from parent (DAG bug)"
  in
  let proj = Array.map (position_in_exn anc_def) def.sp_positions in
  Materialized.range m ~lo ~hi (fun tuple count ->
      Cost_meter.charge_predicate_test t.meter;
      if Predicate.eval pred tuple then k (project_from_parent t ~proj tuple, count));
  Buffer_pool.invalidate (Materialized.pool m)

let answer_node t idx (q : Strategy.query) =
  let rt = t.nodes.(idx) in
  let out = ref [] in
  (match rt.mat with
  | Some mat ->
      Materialized.range mat ~lo:q.q_lo ~hi:q.q_hi (fun tuple count ->
          Cost_meter.charge_predicate_test t.meter;
          out := (tuple, count) :: !out);
      Buffer_pool.invalidate (Materialized.pool mat)
  | None -> (
      match mat_ancestor t idx with
      | Some (anc, m) -> scan_ancestor t ~anc ~m rt.node.nd_def ~q (fun row -> out := row :: !out)
      | None -> scan_base t rt.node.nd_def ~q (fun row -> out := row :: !out)));
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Advisor wiring                                                      *)
(* ------------------------------------------------------------------ *)

(* Heuristic row estimate for a transient node: the tightest unit-column
   selectivity of its predicate times the base cardinality. *)
let est_rows t (rt : node_rt) =
  match rt.mat with
  | Some m -> Materialized.total_count m
  | None ->
      let def = rt.node.nd_def in
      let sel =
        List.fold_left
          (fun acc c -> Float.min acc (Predicate.selectivity_on_unit_column def.sp_pred ~column:c))
          1.
          (Predicate.columns_read def.sp_pred)
      in
      int_of_float (Float.max 1. (sel *. float_of_int (Btree.tuple_count t.base_tree)))

let costs_of t i =
  let rt = t.nodes.(i) in
  let c1 = Cost_meter.c1 t.meter and c2 = Cost_meter.c2 t.meter in
  let fv = Float.max 0.01 (Float.min 1. (Wstats.mean_fv t.wstats)) in
  let rows = float_of_int (est_rows t rt) in
  let bf = float_of_int (Strategy.blocking_factor t.geometry rt.node.nd_def.sp_out_schema) in
  let pages = Float.max 1. (Float.ceil (rows /. bf)) in
  let height = match rt.mat with Some m -> float_of_int (Materialized.height m) | None -> 1. in
  let qc_mat = (c2 *. (height +. (fv *. pages))) +. (c1 *. fv *. rows) in
  let src_pages, src_rows =
    match mat_ancestor t i with
    | Some (_, m) ->
        ( float_of_int (Btree.leaf_pages (Materialized.tree m)),
          float_of_int (Materialized.total_count m) )
    | None ->
        (float_of_int (Btree.leaf_pages t.base_tree), float_of_int (Btree.tuple_count t.base_tree))
  in
  let qc_trans = (c2 *. src_pages) +. (c1 *. src_rows) in
  let apply_mat = c2 *. (height +. 2.) in
  let build = qc_trans +. (c2 *. pages) in
  { Advisor.qc_mat; qc_trans; apply_mat; build }

let log_event t node action score =
  let ev = { ev_query = t.queries; ev_node = node; ev_action = action; ev_score = score } in
  let rec take n = function [] -> [] | x :: xs -> if n = 0 then [] else x :: take (n - 1) xs in
  t.events_rev <- take 255 (ev :: t.events_rev)

(* Materialize a transient node from its nearest materialized ancestor (or
   the base relation), charged to [Migrate] like an adaptive strategy
   migration.  Runs right after a refresh pass, so the source is current. *)
let promote t i score =
  let rt = t.nodes.(i) in
  match rt.mat with
  | Some _ -> ()
  | None ->
      let def = rt.node.nd_def in
      Cost_meter.with_category t.meter Cost_meter.Migrate (fun () ->
          let bag = Bag.of_list [] in
          (match mat_ancestor t i with
          | Some (anc, m) ->
              scan_ancestor t ~anc ~m def
                ~q:{ Strategy.q_lo = Strategy.min_sentinel; q_hi = Strategy.max_sentinel }
                (fun (tuple, count) -> ignore (Bag.add_count bag tuple count))
          | None ->
              scan_base t def
                ~q:{ Strategy.q_lo = Strategy.min_sentinel; q_hi = Strategy.max_sentinel }
                (fun (tuple, _) -> ignore (Bag.add bag tuple)));
          rt.generation <- rt.generation + 1;
          let m =
            Materialized.create ~disk:t.disk
              ~name:(Printf.sprintf "%s#%d" rt.node.nd_name rt.generation)
              ~fanout:(Strategy.fanout t.geometry)
              ~leaf_capacity:(Strategy.blocking_factor t.geometry def.sp_out_schema)
              ~cluster_col:def.sp_cluster_out ()
          in
          Materialized.rebuild m bag;
          rt.mat <- Some m);
      t.promotions <- t.promotions + 1;
      log_event t rt.node.nd_name "promote" score

(* Dropping stored state costs one page write (the catalog update), the
   same accounting as [Migrate]'s dematerialization. *)
let demote t i score =
  let rt = t.nodes.(i) in
  match rt.mat with
  | None -> ()
  | Some _ ->
      rt.mat <- None;
      Cost_meter.with_category t.meter Cost_meter.Migrate (fun () -> Cost_meter.charge_write t.meter);
      t.demotions <- t.demotions + 1;
      log_event t rt.node.nd_name "demote" score

let run_decisions t adv =
  let verdicts =
    Advisor.decide adv
      ~materialized:(fun i -> Option.is_some t.nodes.(i).mat)
      ~applied:(fun i -> t.nodes.(i).applied_w)
      ~costs_of:(costs_of t)
  in
  Array.iter (fun rt -> rt.applied_w <- 0) t.nodes;
  List.iter
    (fun (i, decision, score) ->
      match decision with
      | Advisor.Promote -> promote t i score
      | Advisor.Demote -> demote t i score
      | Advisor.Stay -> ())
    verdicts

(* A query on a transient node is served by its nearest materialized
   ancestor: credit the whole chain up to (and including) the server, so
   the advisor sees which interior nodes the fleet's traffic flows
   through. *)
let note_query_chain t adv idx =
  Advisor.note_query adv idx;
  if Option.is_none t.nodes.(idx).mat then begin
    let rec up j =
      match t.nodes.(j).node.nd_parent with
      | None -> ()
      | Some p ->
          Advisor.note_query adv p;
          if Option.is_none t.nodes.(p).mat then up p
    in
    up idx
  end

let answer_query t ~view (q : Strategy.query) =
  let idx = node_index t view in
  refresh_all t;
  t.queries <- t.queries + 1;
  let rt = t.nodes.(idx) in
  rt.queries_n <- rt.queries_n + 1;
  (match t.advisor with
  | Some adv ->
      note_query_chain t adv idx;
      if Advisor.decision_due adv then run_decisions t adv
  | None -> ());
  let before = Cost_meter.snapshot t.meter in
  let out = Cost_meter.with_category t.meter Cost_meter.Query (fun () -> answer_node t idx q) in
  let cost = Cost_meter.cost_since t.meter before ~excluding:[ Cost_meter.Base ] () in
  let view_size =
    match t.nodes.(idx).mat with Some m -> Materialized.total_count m | None -> est_rows t rt
  in
  Wstats.observe_query t.wstats ~returned:(List.length out) ~view_size ~cost ();
  out

let view_contents t ~view =
  let idx = node_index t view in
  let rt = t.nodes.(idx) in
  let def = rt.node.nd_def in
  let bag =
    match rt.mat with
    | Some m -> Materialized.to_bag_unmetered m
    | None ->
        let b = Bag.of_list [] in
        Btree.iter_unmetered t.base_tree (fun tuple ->
            if Predicate.eval def.sp_pred tuple then
              ignore (Bag.add b (View_def.sp_output ~tids:t.tids def tuple)));
        b
  in
  let a_net, d_net = Hr.net_changes_unmetered t.hr in
  List.iter
    (fun (tuple, marked) ->
      if marked && Predicate.eval def.sp_pred tuple then
        ignore (Bag.remove bag (View_def.sp_output ~tids:t.tids def tuple)))
    d_net;
  List.iter
    (fun (tuple, marked) ->
      if marked && Predicate.eval def.sp_pred tuple then
        ignore (Bag.add bag (View_def.sp_output ~tids:t.tids def tuple)))
    a_net;
  bag

let refreshes t = t.refreshes
let queries t = t.queries

type node_info = {
  ni_name : string;
  ni_kind : string;
  ni_members : string list;
  ni_parent : string option;
  ni_materialized : bool;
  ni_rows : int;
  ni_queries : int;
  ni_applied : int;
}

type stats = {
  st_views : int;
  st_classes : int;
  st_groups : int;
  st_aliases : int;
  st_materialized : int;
  st_refreshes : int;
  st_txns : int;
  st_queries : int;
  st_promotions : int;
  st_demotions : int;
  st_stage2_tests : int;
  st_stage2_saved : int;
}

let nodes_info t =
  List.map
    (fun rt ->
      {
        ni_name = rt.node.Dag.nd_name;
        ni_kind = (match rt.node.nd_kind with Dag.Class -> "class" | Dag.Group -> "group");
        ni_members = rt.node.nd_members;
        ni_parent = Option.map (fun p -> t.nodes.(p).node.Dag.nd_name) rt.node.nd_parent;
        ni_materialized = Option.is_some rt.mat;
        ni_rows = (match rt.mat with Some m -> Materialized.total_count m | None -> 0);
        ni_queries = rt.queries_n;
        ni_applied = rt.applied_n;
      })
    (Array.to_list t.nodes)

let stats t =
  let materialized =
    Array.fold_left (fun n rt -> if Option.is_some rt.mat then n + 1 else n) 0 t.nodes
  in
  let stage2 = Array.fold_left (fun n rt -> n + Screen.stage2_tests rt.screen) 0 t.nodes in
  let saved =
    Array.fold_left
      (fun n rt ->
        if is_class rt then n + ((List.length rt.node.nd_members - 1) * Screen.stage2_tests rt.screen)
        else n)
      0 t.nodes
  in
  {
    st_views = List.length t.dag.Dag.dag_view_node;
    st_classes = t.dag.Dag.dag_classes;
    st_groups = t.dag.Dag.dag_groups;
    st_aliases = t.dag.Dag.dag_aliases;
    st_materialized = materialized;
    st_refreshes = t.refreshes;
    st_txns = t.txns;
    st_queries = t.queries;
    st_promotions = t.promotions;
    st_demotions = t.demotions;
    st_stage2_tests = stage2;
    st_stage2_saved = saved;
  }

let events t = List.rev t.events_rev

let export_metrics t recorder =
  if Recorder.enabled recorder then begin
    let s = stats t in
    let g name v = Recorder.set_gauge recorder name (float_of_int v) in
    g "vmat_fleet_views" s.st_views;
    g "vmat_fleet_class_nodes" s.st_classes;
    g "vmat_fleet_group_nodes" s.st_groups;
    g "vmat_fleet_aliases" s.st_aliases;
    g "vmat_fleet_nodes_materialized" s.st_materialized;
    g "vmat_fleet_refresh_passes" s.st_refreshes;
    g "vmat_fleet_queries" s.st_queries;
    g "vmat_fleet_txns" s.st_txns;
    g "vmat_fleet_promotions" s.st_promotions;
    g "vmat_fleet_demotions" s.st_demotions;
    g "vmat_fleet_stage2_tests" s.st_stage2_tests;
    g "vmat_fleet_stage2_saved" s.st_stage2_saved;
    Array.iter
      (fun rt ->
        Recorder.set_gauge recorder
          ~labels:[ ("node", rt.node.Dag.nd_name) ]
          "vmat_fleet_node_queries" (float_of_int rt.queries_n);
        Recorder.set_gauge recorder
          ~labels:[ ("node", rt.node.Dag.nd_name) ]
          "vmat_fleet_node_materialized"
          (if Option.is_some rt.mat then 1. else 0.))
      t.nodes
  end
