(** Compile a fleet of selection-projection views over one base relation
    into a shared-subexpression DAG (DESIGN §14).

    Three sharing mechanisms, per Mistry/Roy/Ramamritham/Sudarshan:

    - {b Equivalence classes}: views whose {!Ir.signature} agrees (same
      normalized predicate, projection and clustering) collapse into one
      [Class] node; the member views are aliases served by the same stored
      state and screened once, not once per view.
    - {b Subsumed ranges}: a class whose region is provably contained in
      another class with a compatible projection hangs below it; when
      transient, it answers queries by scanning its parent's (smaller)
      materialization instead of the base relation.
    - {b Shared selection prefixes / cluster columns}: classes that all
      constrain a common clustering column are grouped under a synthetic
      [Group] node whose predicate is the interval hull of the members —
      a shared intermediate that screens deltas once for the whole group
      and, if the advisor materializes it, gives every transient member a
      cheap scan source.

    Nodes are emitted in topological order (parents before children), so a
    single left-to-right pass over [dag_nodes] is a valid maintenance
    order. *)

open Vmat_storage

type kind = Class | Group

type node = {
  nd_id : int;  (** position in [dag_nodes] *)
  nd_name : string;
  nd_kind : kind;
  nd_def : Vmat_view.View_def.sp;
      (** Representative definition: the shared predicate, projection and
          output schema this node's storage uses.  [Group] nodes project
          every base column (their rows are full base tuples). *)
  nd_norm : Ir.t;
  nd_members : string list;  (** view names served (empty for [Group]) *)
  nd_parent : int option;  (** [None] = the base relation *)
  nd_children : int list;
}

type t = {
  dag_base : Schema.t;
  dag_nodes : node array;
  dag_view_node : (string * int) list;  (** view name → class node id *)
  dag_classes : int;
  dag_groups : int;
  dag_aliases : int;  (** views beyond the first of each class *)
}

val build : base:Schema.t -> Vmat_view.View_def.sp list -> t
(** @raise Invalid_argument on an empty list, duplicate view names, or a
    view over another schema (same contract as [Multi_view.create]). *)

val node_of_view : t -> string -> node
(** @raise Not_found for an unknown view name. *)

val roots : t -> int list
(** Node ids with no parent, in topological order. *)

val describe : t -> string list
(** One human-readable line per node (vmperf / debugging). *)
