open Vmat_storage
open Vmat_relalg

type iv = { iv_col : int; iv_lo : Value.t option; iv_hi : Value.t option }

type t = { n_sat : bool; n_ivs : iv list; n_residual : string list }

let render_pred p = Format.asprintf "%a" Predicate.pp p

(* Flatten the conjunct tree; [True] vanishes, everything else is kept. *)
let rec conjuncts p acc =
  match (p : Predicate.t) with
  | And (a, b) -> conjuncts a (conjuncts b acc)
  | True -> acc
  | p -> p :: acc

(* Interval reading of one conjunct, when it has one. *)
let as_interval (p : Predicate.t) =
  match p with
  | Between (c, lo, hi) -> Some (c, Some lo, Some hi)
  | Cmp (Eq, Column c, Const v) | Cmp (Eq, Const v, Column c) -> Some (c, Some v, Some v)
  | Cmp (Le, Column c, Const v) | Cmp (Ge, Const v, Column c) -> Some (c, None, Some v)
  | Cmp (Ge, Column c, Const v) | Cmp (Le, Const v, Column c) -> Some (c, Some v, None)
  | _ -> None

let max_lo a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (if Value.compare a b >= 0 then a else b)

let min_hi a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (if Value.compare a b <= 0 then a else b)

let empty_iv iv =
  match (iv.iv_lo, iv.iv_hi) with
  | Some lo, Some hi -> Value.compare lo hi > 0
  | _ -> false

let normalize p =
  let cs = conjuncts p [] in
  if List.exists (fun (c : Predicate.t) -> match c with False -> true | _ -> false) cs then
    { n_sat = false; n_ivs = []; n_residual = [] }
  else begin
    let ivs = ref [] and residual = ref [] in
    List.iter
      (fun c ->
        match as_interval c with
        | Some (col, lo, hi) ->
            let existing, rest = List.partition (fun iv -> iv.iv_col = col) !ivs in
            let merged =
              List.fold_left
                (fun acc iv ->
                  { acc with iv_lo = max_lo acc.iv_lo iv.iv_lo; iv_hi = min_hi acc.iv_hi iv.iv_hi })
                { iv_col = col; iv_lo = lo; iv_hi = hi }
                existing
            in
            ivs := merged :: rest
        | None -> residual := render_pred c :: !residual)
      cs;
    let ivs = List.sort (fun a b -> Int.compare a.iv_col b.iv_col) !ivs in
    if List.exists empty_iv ivs then { n_sat = false; n_ivs = []; n_residual = [] }
    else { n_sat = true; n_ivs = ivs; n_residual = List.sort_uniq String.compare !residual }
  end

let satisfiable t = t.n_sat
let intervals t = t.n_ivs
let interval_on t ~col = List.find_opt (fun iv -> iv.iv_col = col) t.n_ivs
let residual t = t.n_residual

let bound_key = function None -> "*" | Some v -> Value.key_string v

let render_iv iv =
  Printf.sprintf "iv:%d:[%s,%s]" iv.iv_col (bound_key iv.iv_lo) (bound_key iv.iv_hi)

let conjunct_keys t = List.map render_iv t.n_ivs @ t.n_residual

let render t =
  if not t.n_sat then "unsat" else String.concat " & " (conjunct_keys t)

let equal a b =
  Bool.equal a.n_sat b.n_sat
  && List.equal String.equal (List.map render_iv a.n_ivs) (List.map render_iv b.n_ivs)
  && List.equal String.equal a.n_residual b.n_residual

(* [a ⊇ b] on one column: [a]'s bound must be no tighter than [b]'s. *)
let iv_contains ~outer ~inner =
  (match (outer.iv_lo, inner.iv_lo) with
  | None, _ -> true
  | Some _, None -> false
  | Some a, Some b -> Value.compare a b <= 0)
  &&
  match (outer.iv_hi, inner.iv_hi) with
  | None, _ -> true
  | Some _, None -> false
  | Some a, Some b -> Value.compare a b >= 0

let subset_str xs ys = List.for_all (fun x -> List.exists (String.equal x) ys) xs

let subsumes a b =
  if not b.n_sat then true
  else if not a.n_sat then false
  else
    List.for_all
      (fun iv_a ->
        match interval_on b ~col:iv_a.iv_col with
        | None -> false
        | Some iv_b -> iv_contains ~outer:iv_a ~inner:iv_b)
      a.n_ivs
    && subset_str a.n_residual b.n_residual

let disjoint a b =
  (not a.n_sat) || (not b.n_sat)
  || List.exists
       (fun iv_a ->
         match interval_on b ~col:iv_a.iv_col with
         | None -> false
         | Some iv_b ->
             empty_iv
               {
                 iv_col = iv_a.iv_col;
                 iv_lo = max_lo iv_a.iv_lo iv_b.iv_lo;
                 iv_hi = min_hi iv_a.iv_hi iv_b.iv_hi;
               })
       a.n_ivs

type rel = Equivalent | Subsumes | Subsumed | Overlap | Disjoint

let relation a b =
  if equal a b then Equivalent
  else if subsumes a b then Subsumes
  else if subsumes b a then Subsumed
  else if disjoint a b then Disjoint
  else Overlap

let common_conjuncts a b =
  let kb = conjunct_keys b in
  List.filter (fun k -> List.exists (String.equal k) kb) (conjunct_keys a)

let hull_on norms ~col =
  match norms with
  | [] -> None
  | _ ->
      let rec go lo hi = function
        | [] -> Some (lo, hi)
        | n :: rest -> (
            if not n.n_sat then go lo hi rest
            else
              match interval_on n ~col with
              | None -> None
              | Some iv ->
                  let lo =
                    match (lo, iv.iv_lo) with
                    | None, _ | _, None -> None
                    | Some a, Some b -> Some (if Value.compare a b <= 0 then a else b)
                  in
                  let hi =
                    match (hi, iv.iv_hi) with
                    | None, _ | _, None -> None
                    | Some a, Some b -> Some (if Value.compare a b >= 0 then a else b)
                  in
                  go lo hi rest)
      in
      (* Seed the fold from the first satisfiable form so [None] bounds mean
         "some member is unbounded", not "not seen yet". *)
      let rec seed = function
        | [] -> None
        | n :: rest when not n.n_sat -> seed rest
        | n :: rest -> (
            match interval_on n ~col with
            | None -> None
            | Some iv -> go iv.iv_lo iv.iv_hi rest)
      in
      seed norms

let signature (v : Vmat_view.View_def.sp) =
  let positions = String.concat "," (List.map string_of_int (Array.to_list v.sp_positions)) in
  Printf.sprintf "%s|%s|%s|%d"
    (Schema.name v.sp_base)
    (render (normalize v.sp_pred))
    positions v.sp_cluster_out

let remap_columns p ~f =
  let open Predicate in
  let operand = function
    | Column c -> Option.map (fun c' -> Column c') (f c)
    | Const v -> Some (Const v)
  in
  let rec go = function
    | True -> Some True
    | False -> Some False
    | Cmp (c, a, b) -> (
        match (operand a, operand b) with
        | Some a', Some b' -> Some (Cmp (c, a', b'))
        | _ -> None)
    | Between (c, lo, hi) -> Option.map (fun c' -> Between (c', lo, hi)) (f c)
    | And (a, b) -> ( match (go a, go b) with Some a', Some b' -> Some (And (a', b')) | _ -> None)
    | Or (a, b) -> ( match (go a, go b) with Some a', Some b' -> Some (Or (a', b')) | _ -> None)
    | Not a -> Option.map (fun a' -> Not a') (go a)
  in
  go p
