(** Canonical predicate/projection IR for fleets of selection-projection
    views (DESIGN §14).

    A view predicate is normalized into a {e per-column interval envelope}
    (the conjuncts the index machinery understands: [Between], equality and
    one-sided comparisons against constants) plus a canonical {e residual}
    of the remaining conjuncts.  Two normal forms can then be compared
    syntactically-but-canonically: reordered conjuncts, flipped operands and
    redundant bounds all normalize away, so shared subexpressions across a
    fleet — equivalent definitions, subsumed ranges, common selection
    prefixes — become decidable with sound (conservative) answers.  The DAG
    compiler ({!Dag}) builds equivalence classes and containment edges from
    exactly these tests. *)

open Vmat_storage
open Vmat_relalg

type iv = { iv_col : int; iv_lo : Value.t option; iv_hi : Value.t option }
(** Closed (inclusive) interval constraint on one column; [None] means
    unbounded on that side. *)

type t
(** A normal form: satisfiability flag, interval envelope (sorted by column,
    at most one interval per column), canonical residual conjuncts. *)

val normalize : Predicate.t -> t

val satisfiable : t -> bool
(** [false] only when the normal form is provably empty (a [False] conjunct
    or an empty interval intersection); [true] is conservative. *)

val intervals : t -> iv list
(** The envelope, sorted by column. *)

val interval_on : t -> col:int -> iv option

val residual : t -> string list
(** Canonical renderings of the non-interval conjuncts, sorted. *)

val equal : t -> t -> bool
(** Same envelope and same residual — the equivalence used for fleet
    signature classes. *)

val subsumes : t -> t -> bool
(** [subsumes a b] — the region of [a] provably contains the region of [b]:
    every constraint of [a] is implied by [b]'s.  Sound, not complete
    (residual conjuncts compare as syntactic sets). *)

val disjoint : t -> t -> bool
(** Provably disjoint: some column is constrained in both with an empty
    intersection (or a side is unsatisfiable).  Sound, not complete. *)

type rel = Equivalent | Subsumes | Subsumed | Overlap | Disjoint

val relation : t -> t -> rel
(** [relation a b]: [Subsumes] means [a ⊇ b]; [Overlap] is the residual
    "can't prove anything stronger" case. *)

val common_conjuncts : t -> t -> string list
(** Canonical renderings of the conjuncts (intervals and residuals) present
    in both normal forms — the shared selection prefix. *)

val hull_on : t list -> col:int -> (Value.t option * Value.t option) option
(** Smallest interval on [col] containing every normal form's constraint on
    it: [None] when some form leaves [col] unconstrained (the hull would be
    the whole key space) or the list is empty.  Used to derive shared
    interior selection nodes clustered on a common column. *)

val render : t -> string
(** Injective canonical rendering (for signatures and debugging). *)

val signature : Vmat_view.View_def.sp -> string
(** Equivalence-class key of a view definition: base schema, canonical
    predicate normal form, projection positions and clustering output
    position.  The view {e name} deliberately does not participate, so
    same-shaped views of different owners share one class. *)

val remap_columns : Predicate.t -> f:(int -> int option) -> Predicate.t option
(** Rewrite every column reference through [f]; [None] if any referenced
    column has no image (the predicate cannot be evaluated in the target
    row shape). *)
