open Vmat_storage
open Vmat_util
module View_def = Vmat_view.View_def
module Strategy = Vmat_view.Strategy
module Predicate = Vmat_relalg.Predicate

type t = {
  fs_base : Schema.t;
  fs_views : View_def.sp list;
  fs_distinct : int;
  fs_envelopes : (float * float) array;
}

(* One distinct definition: predicate range [lo, hi] on [cluster]. *)
type def = { d_cluster : string; d_lo : float; d_hi : float }

let in_unit name x =
  if not (x >= 0. && x <= 1.) then invalid_arg ("Spec.overlapping_fleet: " ^ name ^ " outside [0,1]")

let overlapping_fleet ~rng ~base ~views ~overlap ?(subsume = 0.25) ?(hetero = 0.2)
    ?(width = 0.15) () =
  if views <= 0 then invalid_arg "Spec.overlapping_fleet: views <= 0";
  in_unit "overlap" overlap;
  in_unit "subsume" subsume;
  in_unit "hetero" hetero;
  in_unit "width" width;
  let distinct = max 1 (views - int_of_float (Float.round (overlap *. float_of_int views))) in
  let defs = Array.make distinct { d_cluster = "pval"; d_lo = 0.; d_hi = 1. } in
  for j = 0 to distinct - 1 do
    let tightened =
      if j > 0 && Rng.float rng < subsume then begin
        (* Tighten an earlier definition's range: a strict containment edge
           on the same clustering column (projection is shared fleet-wide). *)
        let parent = defs.(Rng.int rng j) in
        let span = parent.d_hi -. parent.d_lo in
        let lo = parent.d_lo +. (0.25 *. span *. Rng.float rng) in
        let hi = parent.d_hi -. (0.25 *. span *. Rng.float rng) in
        if hi > lo then Some { parent with d_lo = lo; d_hi = hi } else None
      end
      else None
    in
    defs.(j) <-
      (match tightened with
      | Some d -> d
      | None ->
          if Rng.float rng < hetero then begin
            (* Cluster on amount (domain [0, 1000)). *)
            let lo = Rng.float rng *. 600. in
            let w = (width +. (Rng.float rng *. 0.15)) *. 1000. in
            { d_cluster = "amount"; d_lo = lo; d_hi = lo +. w }
          end
          else begin
            let lo = Rng.float rng *. 0.6 in
            let w = width +. (Rng.float rng *. 0.15) in
            { d_cluster = "pval"; d_lo = lo; d_hi = lo +. w }
          end)
  done;
  let view_of v =
    let d = defs.(v mod distinct) in
    let col = Schema.column_index base d.d_cluster in
    View_def.make_sp
      ~name:(Printf.sprintf "v%d" v)
      ~base
      ~pred:(Predicate.Between (col, Value.Float d.d_lo, Value.Float d.d_hi))
      ~project:[ "pval"; "amount" ] ~cluster:d.d_cluster
  in
  {
    fs_base = base;
    fs_views = List.init views view_of;
    fs_distinct = distinct;
    fs_envelopes =
      Array.init views (fun v ->
          let d = defs.(v mod distinct) in
          (d.d_lo, d.d_hi));
  }

let query_of t ~fv rng i =
  let lo, hi = t.fs_envelopes.(i) in
  let span = hi -. lo in
  let w = fv *. span in
  let q_lo = lo +. (Rng.float rng *. (span -. w)) in
  { Strategy.q_lo = Value.Float q_lo; q_hi = Value.Float (q_lo +. w) }
