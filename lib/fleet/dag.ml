open Vmat_storage
module View_def = Vmat_view.View_def
module Strategy = Vmat_view.Strategy
module Predicate = Vmat_relalg.Predicate

type kind = Class | Group

type node = {
  nd_id : int;
  nd_name : string;
  nd_kind : kind;
  nd_def : View_def.sp;
  nd_norm : Ir.t;
  nd_members : string list;
  nd_parent : int option;
  nd_children : int list;
}

type t = {
  dag_base : Schema.t;
  dag_nodes : node array;
  dag_view_node : (string * int) list;
  dag_classes : int;
  dag_groups : int;
  dag_aliases : int;
}

let validate ~base views =
  if List.is_empty views then invalid_arg "Dag.build: no views";
  let names = List.map (fun (v : View_def.sp) -> v.sp_name) views in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Dag.build: duplicate view names";
  List.iter
    (fun (v : View_def.sp) ->
      if not (String.equal (Schema.name v.sp_base) (Schema.name base)) then
        invalid_arg ("Dag.build: view " ^ v.sp_name ^ " is over another schema"))
    views

(* Equivalence classes in first-seen order: (signature, representative def,
   member names in definition order). *)
let classes_of views =
  List.fold_left
    (fun acc (v : View_def.sp) ->
      let sg = Ir.signature v in
      let rec add = function
        | [] -> [ (sg, v, [ v.sp_name ]) ]
        | (sg', rep, members) :: rest when String.equal sg sg' ->
            (sg', rep, members @ [ v.sp_name ]) :: rest
        | c :: rest -> c :: add rest
      in
      add acc)
    [] views

let mem_int x xs = List.exists (fun y -> y = x) xs

(* Can a transient [child] class answer its queries from [parent]'s stored
   rows?  Every projected child column and every column the child predicate
   reads must appear in the parent's projection. *)
let projection_compatible ~(parent : View_def.sp) ~(child : View_def.sp) =
  let pcols = Array.to_list parent.sp_positions in
  Array.for_all (fun c -> mem_int c pcols) child.sp_positions
  && List.for_all (fun c -> mem_int c pcols) (Predicate.columns_read child.sp_pred)

let cluster_base_col (v : View_def.sp) = v.sp_positions.(v.sp_cluster_out)

let build ~base views =
  validate ~base views;
  let classes = classes_of views in
  let cls = Array.of_list classes in
  let n_classes = Array.length cls in
  let norm = Array.map (fun (_, rep, _) -> Ir.normalize (rep : View_def.sp).sp_pred) cls in
  (* Class → class subsumption parent: the tightest provable container with
     a compatible projection.  Mutual (region-equal) pairs are broken by
     index order so the relation stays acyclic. *)
  let class_parent =
    Array.init n_classes (fun i ->
        let _, rep_i, _ = cls.(i) in
        let candidate j =
          j <> i
          &&
          let _, rep_j, _ = cls.(j) in
          Ir.subsumes norm.(j) norm.(i)
          && ((not (Ir.subsumes norm.(i) norm.(j))) || j < i)
          && projection_compatible ~parent:rep_j ~child:rep_i
        in
        let cands = List.filter candidate (List.init n_classes Fun.id) in
        match cands with
        | [] -> None
        | _ ->
            (* Tightest candidate: contained in every other candidate. *)
            let tight =
              List.find_opt
                (fun j -> List.for_all (fun k -> Ir.subsumes norm.(k) norm.(j)) cands)
                cands
            in
            Some (match tight with Some j -> j | None -> List.hd cands))
  in
  (* Group nodes: base-parented classes sharing a clustering column they all
     constrain get a synthetic hull-selection parent on that column. *)
  let base_cols = List.map (fun (c : Schema.column) -> c.name) (Schema.columns base) in
  let group_candidates =
    List.filter (fun i -> Option.is_none class_parent.(i)) (List.init n_classes Fun.id)
  in
  let cols_in_play =
    List.sort_uniq Int.compare
      (List.map (fun i -> let _, rep, _ = cls.(i) in cluster_base_col rep) group_candidates)
  in
  let groups =
    List.filter_map
      (fun col ->
        let members =
          List.filter
            (fun i ->
              let _, rep, _ = cls.(i) in
              cluster_base_col rep = col && Option.is_some (Ir.interval_on norm.(i) ~col))
            group_candidates
        in
        if List.length members < 2 then None
        else
          match Ir.hull_on (List.map (fun i -> norm.(i)) members) ~col with
          | None -> None
          | Some (lo, hi) ->
              if Option.is_none lo && Option.is_none hi then None
              else
                let lo = Option.value lo ~default:Strategy.min_sentinel in
                let hi = Option.value hi ~default:Strategy.max_sentinel in
                let colname = Schema.column_name base col in
                let def =
                  View_def.make_sp
                    ~name:("group:" ^ colname)
                    ~base
                    ~pred:(Predicate.Between (col, lo, hi))
                    ~project:base_cols ~cluster:colname
                in
                Some (def, members))
      cols_in_play
  in
  let groups = Array.of_list groups in
  let n_groups = Array.length groups in
  let group_of_class =
    Array.init n_classes (fun i ->
        let rec find g =
          if g >= n_groups then None
          else
            let _, members = groups.(g) in
            if mem_int i members then Some g else find (g + 1)
        in
        find 0)
  in
  (* Temp node list: groups first, then classes; parents as temp refs. *)
  let temp_parent_of_class i =
    match class_parent.(i) with
    | Some j -> `Class j
    | None -> ( match group_of_class.(i) with Some g -> `Group g | None -> `Base)
  in
  let temp =
    List.init n_groups (fun g ->
        let def, _ = groups.(g) in
        (`Group g, def, Ir.normalize def.View_def.sp_pred, Group, ([] : string list), `Base))
    @ List.init n_classes (fun i ->
          let _, rep, members = cls.(i) in
          (`Class i, rep, norm.(i), Class, members, temp_parent_of_class i))
  in
  (* Topological emission: repeatedly emit nodes whose parent is emitted. *)
  let emitted = ref [] (* (temp ref, final id), reversed *) in
  let ref_equal a b =
    match (a, b) with
    | `Base, `Base -> true
    | `Class i, `Class j -> i = j
    | `Group i, `Group j -> i = j
    | _ -> false
  in
  let final_id r =
    List.fold_left
      (fun acc (r', id) -> match acc with Some _ -> acc | None -> if ref_equal r r' then Some id else None)
      None !emitted
  in
  let pending = ref temp in
  let ordered = ref [] in
  while not (List.is_empty !pending) do
    let ready, rest =
      List.partition
        (fun (_, _, _, _, _, parent) ->
          match parent with `Base -> true | (`Class _ | `Group _) as p -> Option.is_some (final_id p))
        !pending
    in
    if List.is_empty ready then failwith "Dag.build: cycle in subsumption edges (bug)";
    List.iter
      (fun ((r, _, _, _, _, _) as node) ->
        emitted := (r, List.length !emitted) :: !emitted;
        ordered := node :: !ordered)
      ready;
    pending := rest
  done;
  (* !emitted grew alongside !ordered, so ids are dense and consistent. *)
  let ordered = List.rev !ordered in
  let nodes =
    List.mapi
      (fun id (r, (def : View_def.sp), nrm, kind, members, parent) ->
        let name =
          match kind with Group -> def.sp_name | Class -> "class:" ^ List.hd members
        in
        ignore r;
        {
          nd_id = id;
          nd_name = name;
          nd_kind = kind;
          nd_def = def;
          nd_norm = nrm;
          nd_members = members;
          nd_parent =
            (match parent with
            | `Base -> None
            | (`Class _ | `Group _) as p -> final_id p);
          nd_children = [];
        })
      ordered
  in
  let nodes = Array.of_list nodes in
  Array.iteri
    (fun id nd ->
      match nd.nd_parent with
      | None -> ()
      | Some p -> nodes.(p) <- { (nodes.(p)) with nd_children = nodes.(p).nd_children @ [ id ] })
    nodes;
  let view_node =
    List.concat_map
      (fun nd -> List.map (fun m -> (m, nd.nd_id)) nd.nd_members)
      (Array.to_list nodes)
  in
  {
    dag_base = base;
    dag_nodes = nodes;
    dag_view_node = view_node;
    dag_classes = n_classes;
    dag_groups = n_groups;
    dag_aliases = List.length views - n_classes;
  }

let node_of_view t view =
  match List.assoc_opt view t.dag_view_node with
  | Some id -> t.dag_nodes.(id)
  | None -> raise Not_found

let roots t =
  List.filter_map
    (fun nd -> if Option.is_none nd.nd_parent then Some nd.nd_id else None)
    (Array.to_list t.dag_nodes)

let describe t =
  List.map
    (fun nd ->
      let kind = match nd.nd_kind with Class -> "class" | Group -> "group" in
      let parent =
        match nd.nd_parent with None -> "base" | Some p -> Printf.sprintf "#%d" p
      in
      let members =
        match nd.nd_members with [] -> "-" | ms -> String.concat "," ms
      in
      Printf.sprintf "#%d %-5s %-18s parent=%-5s members=%-24s pred=%s" nd.nd_id kind
        nd.nd_name parent members (Ir.render nd.nd_norm))
    (Array.to_list t.dag_nodes)
