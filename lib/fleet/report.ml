open Vmat_storage
open Vmat_relalg
open Vmat_util
module Multi_view = Vmat_view.Multi_view
module Dataset = Vmat_workload.Dataset
module Stream = Vmat_workload.Stream
module Recorder = Vmat_obs.Recorder

type opts = {
  ro_views : int;
  ro_overlap : float;
  ro_subsume : float;
  ro_hetero : float;
  ro_zipf : float;
  ro_n_tuples : int;
  ro_k : int;
  ro_l : int;
  ro_q : int;
  ro_fv : float;
  ro_seed : int;
  ro_ad_buckets : int;
  ro_advisor : Advisor.config option;
  ro_check : bool;
}

let default_opts =
  {
    ro_views = 64;
    ro_overlap = 0.5;
    ro_subsume = 0.25;
    ro_hetero = 0.2;
    ro_zipf = 1.1;
    ro_n_tuples = 2000;
    ro_k = 200;
    ro_l = 8;
    ro_q = 100;
    ro_fv = 0.3;
    ro_seed = 11;
    ro_ad_buckets = 4;
    ro_advisor = Some Advisor.default_config;
    ro_check = true;
  }

type result = {
  r_views : int;
  r_classes : int;
  r_groups : int;
  r_aliases : int;
  r_materialized : int;
  r_refreshes : int;
  r_promotions : int;
  r_demotions : int;
  r_shared_maint_ms : float;
  r_shared_total_ms : float;
  r_isolated_maint_ms : float;
  r_isolated_total_ms : float;
  r_shared_ms_per_delta : float;
  r_isolated_ms_per_delta : float;
  r_maint_speedup : float;
  r_total_speedup : float;
  r_digest : string;
  r_match : bool;
  r_dag : string list;
  r_events : Fleet.event list;
  r_nodes : Fleet.node_info list;
}

let maint_categories = Cost_meter.[ Screen; Hr; Refresh; Migrate ]

let maint_cost meter =
  List.fold_left (fun acc cat -> acc +. Cost_meter.cost meter cat) 0. maint_categories

let bag_of_answer rows =
  let b = Bag.create () in
  List.iter (fun (tuple, count) -> Bag.add_count b tuple count) rows;
  b

(* FNV-1a 64 over a bag's value-sorted (tuple key, count) entries. *)
let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let fnv_bag h bag =
  let entries = ref [] in
  Bag.iter bag (fun tuple count -> entries := (Tuple.value_key tuple, count) :: !entries);
  let entries =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !entries
  in
  List.fold_left (fun h (key, count) -> fnv_string h (Printf.sprintf "%s#%d;" key count)) h entries

let vname v = Printf.sprintf "v%d" v

let run_comparison ?recorder o =
  let gen_rng = Rng.create o.ro_seed in
  let gen_tids = Tuple.source () in
  let dataset =
    Dataset.make_model1 ~rng:gen_rng ~tids:gen_tids ~n:o.ro_n_tuples ~f:0.5 ~s_bytes:100
  in
  let base = dataset.Dataset.m1_schema in
  let spec =
    Spec.overlapping_fleet ~rng:gen_rng ~base ~views:o.ro_views ~overlap:o.ro_overlap
      ~subsume:o.ro_subsume ~hetero:o.ro_hetero ()
  in
  let tuples = Array.of_list dataset.Dataset.m1_tuples in
  let ops =
    Stream.generate_fleet ~rng:gen_rng ~tuples
      ~mutate:
        (Stream.mutate_column ~tids:gen_tids ~col:2 (fun rng ->
             Value.Float (float_of_int (Rng.int rng 1000))))
      ~views:o.ro_views ~zipf_s:o.ro_zipf ~k:o.ro_k ~l:o.ro_l ~q:o.ro_q
      ~query_of:(fun rng v -> Spec.query_of spec ~fv:o.ro_fv rng v)
  in
  let first_tid = Tuple.peek gen_tids in
  let initial = dataset.Dataset.m1_tuples in
  let fleet_ctx = Ctx.create ~seed:(o.ro_seed + 1) ~first_tid () in
  let fleet_meter = Ctx.meter fleet_ctx in
  (match recorder with Some r -> Cost_meter.set_recorder fleet_meter r | None -> ());
  let fleet =
    Fleet.create ~ctx:fleet_ctx ~base ~views:spec.Spec.fs_views ~initial
      ~ad_buckets:o.ro_ad_buckets ~advisor:o.ro_advisor ()
  in
  Cost_meter.reset fleet_meter;
  let isolated =
    Array.init o.ro_views (fun i ->
        let ctx = Ctx.create ~seed:(o.ro_seed + 2 + i) ~first_tid () in
        let engine =
          Multi_view.create ~ctx ~base
            ~views:[ List.nth spec.Spec.fs_views i ]
            ~initial ~ad_buckets:o.ro_ad_buckets ()
        in
        Cost_meter.reset (Ctx.meter ctx);
        (engine, Ctx.meter ctx))
  in
  let all_match = ref true in
  List.iter
    (fun op ->
      match op with
      | Stream.Ftxn changes ->
          Fleet.handle_transaction fleet changes;
          Array.iter (fun (engine, _) -> Multi_view.handle_transaction engine changes) isolated
      | Stream.Fquery (v, q) ->
          let shared_rows = Fleet.answer_query fleet ~view:(vname v) q in
          let oracle_rows =
            let engine, _ = isolated.(v) in
            Multi_view.answer_query engine ~view:(vname v) q
          in
          if o.ro_check && not (Bag.equal (bag_of_answer shared_rows) (bag_of_answer oracle_rows))
          then all_match := false)
    ops;
  let digest = ref fnv_basis in
  for v = 0 to o.ro_views - 1 do
    let shared = Fleet.view_contents fleet ~view:(vname v) in
    digest := fnv_bag !digest shared;
    if o.ro_check then begin
      let engine, _ = isolated.(v) in
      if not (Bag.equal shared (Multi_view.view_contents engine ~view:(vname v))) then
        all_match := false
    end
  done;
  let stats = Fleet.stats fleet in
  let shared_maint = maint_cost fleet_meter in
  let shared_total = Cost_meter.total_cost ~excluding:[ Cost_meter.Base ] fleet_meter in
  let isolated_maint =
    Array.fold_left (fun acc (_, m) -> acc +. maint_cost m) 0. isolated
  in
  let isolated_total =
    Array.fold_left
      (fun acc (_, m) -> acc +. Cost_meter.total_cost ~excluding:[ Cost_meter.Base ] m)
      0. isolated
  in
  let deltas = float_of_int (max 1 (o.ro_k * o.ro_l)) in
  let ratio num den = if den > 0. then num /. den else Float.nan in
  (match recorder with Some r -> Fleet.export_metrics fleet r | None -> ());
  {
    r_views = o.ro_views;
    r_classes = stats.Fleet.st_classes;
    r_groups = stats.Fleet.st_groups;
    r_aliases = stats.Fleet.st_aliases;
    r_materialized = stats.Fleet.st_materialized;
    r_refreshes = stats.Fleet.st_refreshes;
    r_promotions = stats.Fleet.st_promotions;
    r_demotions = stats.Fleet.st_demotions;
    r_shared_maint_ms = shared_maint;
    r_shared_total_ms = shared_total;
    r_isolated_maint_ms = isolated_maint;
    r_isolated_total_ms = isolated_total;
    r_shared_ms_per_delta = shared_maint /. deltas;
    r_isolated_ms_per_delta = isolated_maint /. deltas;
    r_maint_speedup = ratio isolated_maint shared_maint;
    r_total_speedup = ratio isolated_total shared_total;
    r_digest = Printf.sprintf "%016Lx" !digest;
    r_match = !all_match;
    r_dag = Dag.describe (Fleet.dag fleet);
    r_events = Fleet.events fleet;
    r_nodes = Fleet.nodes_info fleet;
  }
