(** The fleet engine: many selection-projection views over one base
    relation, maintained through a shared-subexpression DAG with one
    hypothetical relation, one screening cascade and one refresh pass —
    plus an online advisor that promotes/demotes per-node materialization
    (DESIGN §14).

    Equivalence to isolated maintenance is the design invariant: for any
    stream, every query answer and every final view content is
    value-identical (bags; tids excluded, as everywhere) to what [N]
    isolated single-view engines would produce — transient nodes answer
    from their nearest materialized ancestor (or the base relation, which
    [Hr.reset] keeps current across refresh passes), so promote/demote
    events change only where cost is paid, never what is returned. *)

open Vmat_storage
open Vmat_relalg

type t

val create :
  ctx:Ctx.t ->
  base:Schema.t ->
  views:Vmat_view.View_def.sp list ->
  initial:Tuple.t list ->
  ad_buckets:int ->
  ?advisor:Advisor.config option ->
  ?base_cluster:string ->
  unit ->
  t
(** Views may cluster on different output columns.  The shared base B-tree
    clusters on [base_cluster] when given (a base column name), else on the
    most common clustering column across the fleet.  [?advisor:None]
    disables promote/demote (every class stays materialized, like
    [Multi_view]); the default runs {!Advisor.default_config}.
    @raise Invalid_argument as [Multi_view.create] (empty list, duplicate
    names, foreign schema, unknown [base_cluster]). *)

val view_names : t -> string list
val dag : t -> Dag.t

val handle_transaction : t -> Vmat_view.Strategy.change list -> unit

val answer_query : t -> view:string -> Vmat_view.Strategy.query -> (Tuple.t * int) list
(** Range query on the named view's clustering column.  Refreshes every
    stale node first (one shared AD read), runs any due advisor decision,
    then answers from the view's class node — its own materialization when
    present, otherwise a metered scan of the nearest materialized ancestor
    or the base relation.
    @raise Not_found for an unknown view name. *)

val view_contents : t -> view:string -> Bag.t
(** Logical contents (pending changes applied), unmetered. *)

val refreshes : t -> int
val queries : t -> int

type event = {
  ev_query : int;  (** fleet query count when the decision fired *)
  ev_node : string;
  ev_action : string;  (** ["promote"] or ["demote"] *)
  ev_score : float;
}

type node_info = {
  ni_name : string;
  ni_kind : string;
  ni_members : string list;
  ni_parent : string option;
  ni_materialized : bool;
  ni_rows : int;  (** stored rows when materialized, 0 otherwise *)
  ni_queries : int;
  ni_applied : int;  (** relevant deltas seen across refresh passes *)
}

type stats = {
  st_views : int;
  st_classes : int;
  st_groups : int;
  st_aliases : int;
  st_materialized : int;
  st_refreshes : int;
  st_txns : int;
  st_queries : int;
  st_promotions : int;
  st_demotions : int;
  st_stage2_tests : int;  (** stage-2 screening tests actually run *)
  st_stage2_saved : int;
      (** stage-2 tests aliasing avoided vs. screening per view *)
}

val stats : t -> stats
val nodes_info : t -> node_info list
val events : t -> event list
(** Advisor promote/demote log, oldest first. *)

val export_metrics : t -> Vmat_obs.Recorder.t -> unit
(** Publish [vmat_fleet_*] gauges/counters into the recorder's metric
    registry (fleet shape, materialized-node count, promote/demote totals,
    refresh passes, screening savings). *)
