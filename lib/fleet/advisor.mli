(** Online materialization advisor for a fleet DAG (DESIGN §14.3).

    Each DAG node is either {e materialized} (owns stored state, pays
    maintenance I/O per relevant delta, answers member queries cheaply) or
    {e transient} (free to maintain, answers by scanning its nearest
    materialized ancestor).  The advisor keeps exponentially-decayed
    per-node query and delta rates — the same estimator family as
    [Wstats] — and at every decision point scores the per-window benefit of
    being materialized:

    [score = qr·(q_trans − q_mat) − ar·apply_mat]

    where [qr]/[ar] are the decayed per-window query/relevant-delta rates
    and the costs are the engine's modeled estimates.  A transient node is
    promoted when the score clears a hysteresis margin {e and} the one-time
    build cost amortizes within [horizon] windows; a materialized node is
    demoted when the score is negative past the same margin.  Hysteresis +
    a minimum-evidence floor (the [Controller]'s flap guards) keep the
    advisor from oscillating on noisy workloads. *)

type config = {
  decide_every : int;  (** fleet queries between decision points *)
  min_evidence : float;  (** decayed per-node ops required before acting *)
  hysteresis : float;  (** relative margin a switch must clear *)
  horizon : float;  (** windows over which a build cost must amortize *)
  alpha : float;  (** decay: weight of the newest window *)
}

val default_config : config
(** [{ decide_every = 8; min_evidence = 1.; hysteresis = 0.15;
      horizon = 20.; alpha = 0.3 }] *)

type costs = {
  qc_mat : float;  (** modeled cost of one member query if materialized *)
  qc_trans : float;  (** modeled cost of one member query if transient *)
  apply_mat : float;  (** modeled cost per relevant delta if materialized *)
  build : float;  (** one-time cost of materializing now *)
}

type decision = Promote | Demote | Stay

type t

val create : ?config:config -> n_nodes:int -> unit -> t
(** @raise Invalid_argument on a non-positive node count or invalid config. *)

val config : t -> config

val note_query : t -> int -> unit
(** Record one query answered by the given node. *)

val decision_due : t -> bool
(** [decide_every] queries have accrued since the last {!decide}. *)

val decide :
  t ->
  materialized:(int -> bool) ->
  applied:(int -> int) ->
  costs_of:(int -> costs) ->
  (int * decision * float) list
(** Close the window: fold the window's per-node query counts and the
    engine-reported relevant-delta counts ([applied]) into the decayed
    rates, and return one [(node, decision, score)] verdict per node.
    Deterministic: verdicts are in node order. *)

val queries_in_window : t -> int
val node_query_rate : t -> int -> float
val node_delta_rate : t -> int -> float
