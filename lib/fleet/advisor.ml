type config = {
  decide_every : int;
  min_evidence : float;
  hysteresis : float;
  horizon : float;
  alpha : float;
}

let default_config =
  { decide_every = 8; min_evidence = 1.; hysteresis = 0.15; horizon = 20.; alpha = 0.3 }

type costs = { qc_mat : float; qc_trans : float; apply_mat : float; build : float }

type decision = Promote | Demote | Stay

type nodestat = {
  mutable qw : int;  (** queries this window *)
  mutable qr : float;  (** decayed queries per window *)
  mutable ar : float;  (** decayed relevant deltas per window *)
  mutable seen : float;  (** decayed total evidence *)
}

type t = { cfg : config; stats : nodestat array; mutable window_queries : int }

let create ?(config = default_config) ~n_nodes () =
  if n_nodes <= 0 then invalid_arg "Advisor.create: no nodes";
  if config.decide_every < 1 then invalid_arg "Advisor.create: decide_every < 1";
  if not (config.alpha > 0. && config.alpha <= 1.) then
    invalid_arg "Advisor.create: alpha out of (0, 1]";
  if config.hysteresis < 0. then invalid_arg "Advisor.create: negative hysteresis";
  if config.horizon <= 0. then invalid_arg "Advisor.create: non-positive horizon";
  {
    cfg = config;
    stats = Array.init n_nodes (fun _ -> { qw = 0; qr = 0.; ar = 0.; seen = 0. });
    window_queries = 0;
  }

let config t = t.cfg

let note_query t node =
  t.stats.(node).qw <- t.stats.(node).qw + 1;
  t.window_queries <- t.window_queries + 1

let decision_due t = t.window_queries >= t.cfg.decide_every

let queries_in_window t = t.window_queries
let node_query_rate t i = t.stats.(i).qr
let node_delta_rate t i = t.stats.(i).ar

let decide t ~materialized ~applied ~costs_of =
  let a = t.cfg.alpha in
  let verdicts =
    Array.to_list
      (Array.mapi
         (fun i st ->
           let aw = applied i in
           st.qr <- (a *. float_of_int st.qw) +. ((1. -. a) *. st.qr);
           st.ar <- (a *. float_of_int aw) +. ((1. -. a) *. st.ar);
           st.seen <- st.qr +. st.ar;
           st.qw <- 0;
           let c = costs_of i in
           (* Per-window benefit of holding the node materialized. *)
           let score = (st.qr *. (c.qc_trans -. c.qc_mat)) -. (st.ar *. c.apply_mat) in
           let decision =
             if st.seen < t.cfg.min_evidence then Stay
             else if materialized i then begin
               let margin = t.cfg.hysteresis *. ((st.qr *. c.qc_mat) +. (st.ar *. c.apply_mat)) in
               if score < -.margin then Demote else Stay
             end
             else begin
               let margin = t.cfg.hysteresis *. st.qr *. c.qc_trans in
               if score > margin && score *. t.cfg.horizon >= c.build then Promote else Stay
             end
           in
           (i, decision, score))
         t.stats)
  in
  t.window_queries <- 0;
  verdicts
