(** Parameterized fleet generators: [n] selection-projection views over the
    Model 1 base relation with a controlled amount of definition sharing.

    [overlap] is the fraction of views that are exact duplicates of an
    earlier definition (signature aliases); [subsume] is the probability
    that a fresh definition tightens an earlier one's range (a subsumed-range
    containment edge); [hetero] is the probability that a definition
    clusters on [amount] instead of [pval] (exercising the mixed-cluster
    base paths).  Everything is drawn from the caller's RNG, so fleets are
    reproducible. *)

open Vmat_storage
open Vmat_util

type t = {
  fs_base : Schema.t;
  fs_views : Vmat_view.View_def.sp list;  (** names ["v0"] … ["v{n-1}"] *)
  fs_distinct : int;  (** distinct definitions among the views *)
  fs_envelopes : (float * float) array;
      (** per view, the numeric range its predicate allows on its
          clustering column — the envelope queries are drawn within *)
}

val overlapping_fleet :
  rng:Rng.t ->
  base:Schema.t ->
  views:int ->
  overlap:float ->
  ?subsume:float ->
  ?hetero:float ->
  ?width:float ->
  unit ->
  t
(** [base] must be the Model 1 schema (columns [pval] and [amount] are
    referenced by name).  Defaults: [subsume = 0.25], [hetero = 0.2],
    [width = 0.15] (the base selectivity of a fresh [pval] definition).
    @raise Invalid_argument on [views <= 0] or parameters outside [0, 1]. *)

val query_of : t -> fv:float -> Rng.t -> int -> Vmat_view.Strategy.query
(** Draw a clustered range query for view [i]: a subrange of width
    [fv × (hi − lo)] uniform inside that view's envelope. *)
