(** Online workload statistics for one view.

    The paper's winning strategy is a function of workload parameters —
    update probability [P], transaction size [l], per-query view fraction
    [fv] — that drift in production.  [Wstats] observes the operation stream
    as it happens and maintains exponentially-decayed estimates of those
    parameters, plus the measured per-operation costs (from {!Cost_meter}
    deltas), so the {!Controller} can re-evaluate the analytic model against
    the workload the view is {e actually} seeing.

    All estimators use the same decay [alpha] (the weight of the newest
    sample): after a phase shift, an estimate converges to the new regime in
    roughly [1/alpha] operations. *)

type t

val create : ?alpha:float -> ?key_capacity:int -> unit -> t
(** [alpha] defaults to [0.25]; [key_capacity] (default [16]) sizes the
    Space-Saving sketch behind {!hot_keys}.
    @raise Invalid_argument unless [0 < alpha <= 1] and [key_capacity >= 1]. *)

val alpha : t -> float

val observe_txn : t -> ?keys:string list -> l:int -> cost:float -> unit -> unit
(** Record one update transaction of [l] tuple changes whose measured
    (non-[Base]) cost was [cost] ms.  [keys] are the quantized cluster keys
    the transaction touched (see {!Vmat_obs.Sketch.bucket_key}); they feed
    the heavy-hitter sketch only and never influence {!to_params}. *)

val observe_query : t -> ?key:string -> returned:int -> view_size:int -> cost:float -> unit -> unit
(** Record one view query that returned [returned] tuples out of a view
    currently holding [view_size] tuples, at measured cost [cost] ms.
    [key] is the quantized start of the queried range, for {!hot_keys}. *)

val txns_seen : t -> int
val queries_seen : t -> int
val ops_seen : t -> int

val update_probability : t -> float
(** Decayed estimate of [P = k / (k + q)]; [0.5] before any observation. *)

val update_ratio : t -> float
(** Decayed [k / q] (clamped to a large finite value while no query has
    been seen). *)

val mean_l : t -> float
(** Decayed mean transaction size; [1.] before any transaction. *)

val mean_fv : t -> float
(** Decayed mean fraction of the view retrieved per query; [0.1] before any
    query. *)

val mean_txn_cost : t -> float
val mean_query_cost : t -> float
(** Decayed measured cost per operation (observability; the controller's
    decisions use the analytic model, these ground it in reality). *)

val hot_keys : ?k:int -> t -> Vmat_obs.Sketch.heavy list
(** The heaviest cluster keys observed so far (count-descending; at most the
    sketch capacity, or [k] when given).  Observability only. *)

val key_skew : t -> float
(** Fraction of all observed key touches landing on the single hottest key
    ([0.] before any keyed observation). *)

val key_distinct : t -> float
(** KMV estimate of the number of distinct cluster keys observed. *)

val to_params :
  t -> base:Vmat_cost.Params.t -> n_tuples:float -> f:float -> Vmat_cost.Params.t
(** Project the observed workload onto the paper's parameter space: keep
    [base]'s physical constants ([S], [B], [n], [C1..C3], [f_R2]), install
    the observed [n_tuples] and [f], and set [l], [fv], and the [k : q]
    ratio from the decayed estimates.  All fractions are clamped to valid
    ranges so the result always passes {!Vmat_cost.Params.validate}. *)

val pp : Format.formatter -> t -> unit
