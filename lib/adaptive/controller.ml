module Params = Vmat_cost.Params
module Advisor = Vmat_cost.Advisor

type config = {
  decide_every : int;
  min_ops : int;
  hysteresis : float;
  horizon : float;
  alpha : float;
}

let default_config =
  { decide_every = 4; min_ops = 6; hysteresis = 0.15; horizon = 200.; alpha = 0.25 }

type decision = {
  d_at_query : int;
  d_current : Migrate.kind;
  d_best : Migrate.kind;
  d_costs : (string * float) list;
  d_params : Params.t;
  d_saving : float;
  d_migration : float;
  d_switched : bool;
  d_reason : string;
}

type t = {
  cfg : config;
  cands : Migrate.kind list;
  base_params : Params.t;
  mutable cur : Migrate.kind;
  mutable last_decision_query : int;
  mutable decisions : decision list;  (* newest first *)
  mutable nswitches : int;
}

let create ?(config = default_config) ~candidates ~initial ~base_params () =
  if List.is_empty candidates then invalid_arg "Controller.create: no candidates";
  if not (List.mem initial candidates) then
    invalid_arg "Controller.create: initial kind is not a candidate";
  if config.decide_every < 1 then invalid_arg "Controller.create: decide_every must be >= 1";
  {
    cfg = config;
    cands = candidates;
    base_params;
    cur = initial;
    last_decision_query = 0;
    decisions = [];
    nswitches = 0;
  }

let config t = t.cfg
let current t = t.cur
let candidates t = t.cands
let log t = List.rev t.decisions
let switches t = t.nswitches
let force t kind = t.cur <- kind

let candidate_costs t params =
  let r = Advisor.recommend Advisor.Selection_projection params in
  List.filter
    (fun (name, _) ->
      List.exists (fun kind -> String.equal (Migrate.kind_name kind) name) t.cands)
    r.Advisor.costs

let record t d = t.decisions <- d :: t.decisions

let decide t ~wstats ~n_tuples ~f ~at_query =
  if
    Wstats.ops_seen wstats < t.cfg.min_ops
    || at_query - t.last_decision_query < t.cfg.decide_every
  then None
  else begin
    t.last_decision_query <- at_query;
    let params = Wstats.to_params wstats ~base:t.base_params ~n_tuples ~f in
    let costs = candidate_costs t params in
    let cost_of kind = List.assoc_opt (Migrate.kind_name kind) costs in
    match (costs, cost_of t.cur) with
    | [], _ | _, None -> None
    | (best_name, best_cost) :: _, Some current_cost ->
        let best =
          match Migrate.kind_of_name best_name with Some k -> k | None -> t.cur
        in
        let saving = current_cost -. best_cost in
        let migration = Migrate.predicted_cost params ~from_:t.cur ~to_:best in
        let margin = t.cfg.hysteresis *. current_cost in
        let switched, reason =
          if best = t.cur then (false, "already on the cheapest candidate")
          else if saving <= margin then
            ( false,
              Printf.sprintf "hysteresis: saving %.1f <= %.0f%% margin %.1f" saving
                (100. *. t.cfg.hysteresis) margin )
          else if saving *. t.cfg.horizon <= migration then
            ( false,
              Printf.sprintf
                "break-even: saving %.1f x horizon %.0f <= migration %.1f" saving
                t.cfg.horizon migration )
          else
            ( true,
              Printf.sprintf "switch: saving %.1f/query amortizes %.1f in %.0f queries"
                saving migration
                (Float.round (migration /. Float.max 1e-9 saving)) )
        in
        record t
          {
            d_at_query = at_query;
            d_current = t.cur;
            d_best = best;
            d_costs = costs;
            d_params = params;
            d_saving = saving;
            d_migration = migration;
            d_switched = switched;
            d_reason = reason;
          };
        if switched then begin
          t.cur <- best;
          t.nswitches <- t.nswitches + 1;
          Some best
        end
        else None
  end

let pp_decision fmt d =
  Format.fprintf fmt "q%-5d %-11s -> %-11s P=%.2f l=%.0f fv=%.3f %s [%s]" d.d_at_query
    (Migrate.kind_name d.d_current)
    (Migrate.kind_name (if d.d_switched then d.d_best else d.d_current))
    (Params.update_probability d.d_params)
    d.d_params.Params.l_per_txn d.d_params.Params.fv
    (if d.d_switched then "SWITCH" else "stay")
    d.d_reason
