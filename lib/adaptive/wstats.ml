module Params = Vmat_cost.Params
module Sketch = Vmat_obs.Sketch

type t = {
  w_alpha : float;
  (* decayed event counters: every observed operation multiplies both by
     (1 - alpha) and adds 1 to its own.  Their ratio estimates k : q with
     exponentially fading memory. *)
  mutable dk : float;
  mutable dq : float;
  (* EWMA estimates ([None] until the first sample of that kind). *)
  mutable e_l : float option;
  mutable e_fv : float option;
  mutable e_txn_cost : float option;
  mutable e_query_cost : float option;
  mutable n_txns : int;
  mutable n_queries : int;
  (* Heavy-hitter sketch over the cluster keys the workload touches
     (DESIGN §11) — pure observation, never consulted by [to_params]. *)
  keys : Sketch.t;
}

let create ?(alpha = 0.25) ?(key_capacity = 16) () =
  if not (alpha > 0. && alpha <= 1.) then invalid_arg "Wstats.create: alpha must be in (0, 1]";
  if key_capacity < 1 then invalid_arg "Wstats.create: key_capacity must be >= 1";
  {
    w_alpha = alpha;
    dk = 0.;
    dq = 0.;
    e_l = None;
    e_fv = None;
    e_txn_cost = None;
    e_query_cost = None;
    n_txns = 0;
    n_queries = 0;
    keys = Sketch.create ~capacity:key_capacity ();
  }

let alpha t = t.w_alpha

let ewma t prev sample =
  match prev with
  | None -> Some sample
  | Some old -> Some (((1. -. t.w_alpha) *. old) +. (t.w_alpha *. sample))

let decay t =
  t.dk <- (1. -. t.w_alpha) *. t.dk;
  t.dq <- (1. -. t.w_alpha) *. t.dq

let observe_txn t ?(keys = []) ~l ~cost () =
  if l < 0 then invalid_arg "Wstats.observe_txn: negative l";
  decay t;
  t.dk <- t.dk +. 1.;
  t.e_l <- ewma t t.e_l (float_of_int l);
  t.e_txn_cost <- ewma t t.e_txn_cost cost;
  List.iter (Sketch.observe t.keys) keys;
  t.n_txns <- t.n_txns + 1

let observe_query t ?key ~returned ~view_size ~cost () =
  decay t;
  t.dq <- t.dq +. 1.;
  Option.iter (Sketch.observe t.keys) key;
  let fv =
    if view_size <= 0 then 0.
    else Float.min 1. (float_of_int (max 0 returned) /. float_of_int view_size)
  in
  t.e_fv <- ewma t t.e_fv fv;
  t.e_query_cost <- ewma t t.e_query_cost cost;
  t.n_queries <- t.n_queries + 1

let txns_seen t = t.n_txns
let queries_seen t = t.n_queries
let ops_seen t = t.n_txns + t.n_queries

let update_probability t =
  let total = t.dk +. t.dq in
  if total <= 0. then 0.5 else t.dk /. total

let update_ratio t =
  if t.dq <= 0. then if t.dk <= 0. then 1. else 1e6 else t.dk /. t.dq

let mean_l t = Option.value ~default:1. t.e_l
let mean_fv t = Option.value ~default:0.1 t.e_fv
let mean_txn_cost t = Option.value ~default:0. t.e_txn_cost
let mean_query_cost t = Option.value ~default:0. t.e_query_cost
let hot_keys ?k t = Sketch.top ?k t.keys
let key_skew t = Sketch.skew t.keys
let key_distinct t = Sketch.distinct t.keys

let clamp lo hi v = Float.max lo (Float.min hi v)

let to_params t ~(base : Params.t) ~n_tuples ~f =
  let p =
    {
      base with
      Params.n_tuples = Float.max 1. n_tuples;
      f = clamp 0. 1. f;
      fv = clamp 1e-4 1. (mean_fv t);
      l_per_txn = Float.max 1. (Float.round (mean_l t));
    }
  in
  (* Only the ratio k : q enters the per-query formulas; anchor q at the
     base's value and derive k from the decayed update probability. *)
  Params.with_update_probability p (clamp 0. 0.999 (update_probability t))

let pp fmt t =
  Format.fprintf fmt
    "wstats: P=%.3f l=%.1f fv=%.4f (txns=%d queries=%d, txn=%.1fms query=%.1fms)"
    (update_probability t) (mean_l t) (mean_fv t) t.n_txns t.n_queries (mean_txn_cost t)
    (mean_query_cost t)
