open Vmat_storage
open Vmat_relalg
open Vmat_view
module Params = Vmat_cost.Params
module Model1 = Vmat_cost.Model1

type kind = Immediate | Deferred | Qmod_clustered | Qmod_unclustered | Qmod_sequential

let all_kinds = [ Immediate; Deferred; Qmod_clustered; Qmod_unclustered; Qmod_sequential ]

let kind_name = function
  | Immediate -> "immediate"
  | Deferred -> "deferred"
  | Qmod_clustered -> "clustered"
  | Qmod_unclustered -> "unclustered"
  | Qmod_sequential -> "sequential"

let strategy_name = function
  | Immediate -> "immediate"
  | Deferred -> "deferred"
  | Qmod_clustered -> "qmod-clustered"
  | Qmod_unclustered -> "qmod-unclustered"
  | Qmod_sequential -> "qmod-sequential"

let kind_of_name name =
  match String.lowercase_ascii name with
  | "immediate" -> Some Immediate
  | "deferred" -> Some Deferred
  | "clustered" | "qmod" | "qmod-clustered" | "querymod" -> Some Qmod_clustered
  | "unclustered" | "qmod-unclustered" -> Some Qmod_unclustered
  | "sequential" | "qmod-sequential" -> Some Qmod_sequential
  | _ -> None

let is_materialized = function
  | Immediate | Deferred -> true
  | Qmod_clustered | Qmod_unclustered | Qmod_sequential -> false

let build (env : Strategy_sp.env) = function
  | Immediate -> Strategy_sp.immediate env
  | Deferred -> Strategy_sp.deferred env
  | Qmod_clustered -> Strategy_sp.qmod_clustered env
  | Qmod_unclustered -> Strategy_sp.qmod_unclustered env
  | Qmod_sequential -> Strategy_sp.qmod_sequential env

(* ------------------------------------------------------------------ *)
(* Analytic migration cost (for the controller's break-even test)      *)
(* ------------------------------------------------------------------ *)

let materialize_cost (p : Params.t) =
  (* Clustered scan of the base relation (b page reads, C1 per tuple) plus
     writing the f b / 2 pages of the view copy (view tuples are S/2). *)
  let b = Params.blocks p in
  (p.Params.c2 *. (b +. (p.Params.f *. b /. 2.))) +. (p.Params.c1 *. p.Params.n_tuples)

let predicted_cost (p : Params.t) ~from_ ~to_ =
  if from_ = to_ then 0.
  else
    let drain = if from_ = Deferred then Model1.c_ad_read p +. Model1.c_def_refresh p else 0. in
    let enter =
      match (is_materialized from_, is_materialized to_) with
      | false, true -> materialize_cost p
      | _, false -> p.Params.c2 (* dematerialize: one catalog page write *)
      | true, true -> 0. (* the stored view is retained *)
    in
    drain +. enter

(* ------------------------------------------------------------------ *)
(* Metered migration                                                   *)
(* ------------------------------------------------------------------ *)

(* Draining a deferred strategy: an empty-range query forces its on-demand
   refresh (net A/D sets applied to the stored view, differential file folded
   into the base) through the strategy's own metered path. *)
let drain (current : Strategy.t) =
  ignore
    (current.Strategy.answer_query
       { Strategy.q_lo = Strategy.max_sentinel; q_hi = Strategy.min_sentinel })

let pages ~tuples ~per_page = (tuples + per_page - 1) / max 1 per_page

let migrate ~(env : Strategy_sp.env) ~from_ ~current ~to_ =
  let m = Ctx.meter env.Strategy_sp.ctx in
  let snap = Cost_meter.snapshot m in
  if from_ = Deferred && to_ <> Deferred then drain current;
  (* Rebuilding per-strategy storage is a simulator artifact (a shared-storage
     engine would hand the same files over); charge it to the excluded Base
     category and meter the real migration work explicitly below. *)
  let replacement = Cost_meter.with_category m Cost_meter.Base (fun () -> build env to_) in
  Cost_meter.with_category m Cost_meter.Migrate (fun () ->
      (match (is_materialized from_, is_materialized to_) with
      | false, true ->
          (* materialize: clustered base scan + write the view copy *)
          let n_base = List.length env.Strategy_sp.initial in
          let n_view =
            List.fold_left
              (fun acc tuple ->
                if Predicate.eval env.Strategy_sp.view.View_def.sp_pred tuple then acc + 1
                else acc)
              0 env.Strategy_sp.initial
          in
          let base_pages =
            pages ~tuples:n_base
              ~per_page:
                (Strategy.blocking_factor (Ctx.geometry env.Strategy_sp.ctx)
                   env.Strategy_sp.view.View_def.sp_base)
          in
          let view_pages =
            pages ~tuples:n_view
              ~per_page:
                (Strategy.blocking_factor (Ctx.geometry env.Strategy_sp.ctx)
                   env.Strategy_sp.view.View_def.sp_out_schema)
          in
          for _ = 1 to base_pages do
            Cost_meter.charge_read m
          done;
          for _ = 1 to n_base do
            Cost_meter.charge_predicate_test m
          done;
          for _ = 1 to view_pages do
            Cost_meter.charge_write m
          done
      | _, false when from_ <> to_ ->
          (* dematerialize / switch access path: one catalog page write *)
          Cost_meter.charge_write m
      | _ -> ()));
  let cost = Cost_meter.cost_since m snap ~excluding:[ Cost_meter.Base ] () in
  (replacement, cost)
