open Vmat_storage
open Vmat_relalg
open Vmat_view
module Params = Vmat_cost.Params
module Recorder = Vmat_obs.Recorder

type migration = {
  at_query : int;
  from_kind : Migrate.kind;
  to_kind : Migrate.kind;
  measured_cost : float;
}

type t = {
  env : Strategy_sp.env;
  meter : Cost_meter.t;
  (* The logical base-relation contents (tid -> tuple), maintained by the
     observer so a migration can rebuild storage from the current state.
     Pure catalog bookkeeping: no meter charges. *)
  table : (int, Tuple.t) Hashtbl.t;
  mutable match_count : int;  (** tuples currently satisfying the view predicate *)
  ws : Wstats.t;
  ctl : Controller.t;
  mutable active : Strategy.t;
  mutable kind : Migrate.kind;
  mutable n_queries : int;
  mutable migs : migration list;  (* newest first *)
}

(* ------------------------------------------------------------------ *)
(* Logical base tracking                                               *)
(* ------------------------------------------------------------------ *)

let matches t tuple = Predicate.eval t.env.Strategy_sp.view.View_def.sp_pred tuple

let remove_tuple t tuple =
  let tid = Tuple.tid tuple in
  if Hashtbl.mem t.table tid then begin
    Hashtbl.remove t.table tid;
    if matches t tuple then t.match_count <- t.match_count - 1
  end

let add_tuple t tuple =
  let tid = Tuple.tid tuple in
  if not (Hashtbl.mem t.table tid) then begin
    Hashtbl.add t.table tid tuple;
    if matches t tuple then t.match_count <- t.match_count + 1
  end

let apply_change t { Strategy.before; after } =
  (match before with Some tuple -> remove_tuple t tuple | None -> ());
  match after with Some tuple -> add_tuple t tuple | None -> ()

(* Canonical (tid) order: the fold's hash-table iteration order is
   unspecified, and these tuples seed the migration target's storage
   structures, whose page layout the meter observes (vmlint rule D3). *)
let current_tuples t =
  List.sort
    (fun t1 t2 -> Int.compare (Tuple.tid t1) (Tuple.tid t2))
    (Hashtbl.fold (fun _ tuple acc -> tuple :: acc) t.table [])

(* ------------------------------------------------------------------ *)
(* Migration                                                           *)
(* ------------------------------------------------------------------ *)

let perform_migration t target =
  let r = Cost_meter.recorder t.meter in
  let env' = { t.env with Strategy_sp.initial = current_tuples t } in
  let replacement, cost =
    Recorder.span r ~cat:"adaptive" "migrate"
      ~args:
        [ ("from", Migrate.kind_name t.kind); ("to", Migrate.kind_name target) ]
      (fun () -> Migrate.migrate ~env:env' ~from_:t.kind ~current:t.active ~to_:target)
  in
  if Recorder.enabled r then begin
    Recorder.inc r ~help:"Live strategy migrations performed by the adaptive controller."
      ~labels:
        [ ("from", Migrate.kind_name t.kind); ("to", Migrate.kind_name target) ]
      "vmat_migrations_total" 1.;
    Recorder.instant r ~cat:"adaptive" "migration"
      ~args:
        [
          ("from", Migrate.kind_name t.kind);
          ("to", Migrate.kind_name target);
          ("at_query", string_of_int t.n_queries);
          ("cost_ms", Printf.sprintf "%.3f" cost);
        ]
  end;
  t.migs <-
    { at_query = t.n_queries; from_kind = t.kind; to_kind = target; measured_cost = cost }
    :: t.migs;
  t.active <- replacement;
  t.kind <- target;
  cost

(* ------------------------------------------------------------------ *)
(* The observing strategy                                              *)
(* ------------------------------------------------------------------ *)

(* Quantized cluster key of a base tuple's clustering value, in the same
   64-cell [0, 1) key space the serving sketches use (DESIGN §11). *)
let bucket_of_value = function
  | Value.Float x -> Vmat_obs.Sketch.bucket_key ~cells:64 ~lo:0. ~hi:1. x
  | v -> Value.to_string v

let change_keys t changes =
  let view = t.env.Strategy_sp.view in
  let col = view.View_def.sp_positions.(view.View_def.sp_cluster_out) in
  List.filter_map
    (fun { Strategy.before; after } ->
      match (match after with Some _ -> after | None -> before) with
      | Some tuple -> Some (bucket_of_value (Tuple.get tuple col))
      | None -> None)
    changes

let handle_transaction t changes =
  List.iter (apply_change t) changes;
  let snap = Cost_meter.snapshot t.meter in
  t.active.Strategy.handle_transaction changes;
  let cost = Cost_meter.cost_since t.meter snap ~excluding:[ Cost_meter.Base ] () in
  Wstats.observe_txn t.ws ~keys:(change_keys t changes) ~l:(List.length changes) ~cost ()

let answer_query t q =
  let snap = Cost_meter.snapshot t.meter in
  let rows = t.active.Strategy.answer_query q in
  let cost = Cost_meter.cost_since t.meter snap ~excluding:[ Cost_meter.Base ] () in
  let returned = List.fold_left (fun acc (_, dup) -> acc + dup) 0 rows in
  Wstats.observe_query t.ws ~key:(bucket_of_value q.Strategy.q_lo) ~returned
    ~view_size:t.match_count ~cost ();
  t.n_queries <- t.n_queries + 1;
  let n = Hashtbl.length t.table in
  let f = if n = 0 then 0. else float_of_int t.match_count /. float_of_int n in
  (match
     Controller.decide t.ctl ~wstats:t.ws
       ~n_tuples:(float_of_int (max 1 n))
       ~f ~at_query:t.n_queries
   with
  | None -> ()
  | Some target -> ignore (perform_migration t target));
  rows

let strategy t =
  {
    Strategy.name = "adaptive";
    handle_transaction = (fun changes -> handle_transaction t changes);
    answer_query = (fun q -> answer_query t q);
    scalar_query = (fun () -> t.active.Strategy.scalar_query ());
    view_contents = (fun () -> t.active.Strategy.view_contents ());
  }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let base_params_of (env : Strategy_sp.env) meter =
  {
    Params.defaults with
    Params.n_tuples = Float.max 1. (float_of_int (List.length env.Strategy_sp.initial));
    tuple_bytes =
      float_of_int (Schema.tuple_bytes env.Strategy_sp.view.View_def.sp_base);
    page_bytes = float_of_int (Ctx.geometry env.Strategy_sp.ctx).Strategy.page_bytes;
    index_bytes = float_of_int (Ctx.geometry env.Strategy_sp.ctx).Strategy.index_entry_bytes;
    c1 = Cost_meter.c1 meter;
    c2 = Cost_meter.c2 meter;
    c3 = Cost_meter.c3 meter;
  }

let default_candidates = [ Migrate.Deferred; Migrate.Immediate; Migrate.Qmod_clustered ]

let wrap ?config ?(candidates = default_candidates) ?initial_kind
    (env : Strategy_sp.env) =
  let initial_kind =
    match initial_kind with
    | Some k -> k
    | None -> (
        match candidates with
        | k :: _ -> k
        | [] -> invalid_arg "Adaptive.wrap: no candidates")
  in
  let meter = Ctx.meter env.Strategy_sp.ctx in
  let cfg = Option.value ~default:Controller.default_config config in
  let ctl =
    Controller.create ~config:cfg ~candidates ~initial:initial_kind
      ~base_params:(base_params_of env meter) ()
  in
  let active =
    Cost_meter.with_category meter Cost_meter.Base (fun () ->
        Migrate.build env initial_kind)
  in
  let t =
    {
      env;
      meter;
      table = Hashtbl.create (max 16 (List.length env.Strategy_sp.initial));
      match_count = 0;
      ws = Wstats.create ~alpha:cfg.Controller.alpha ();
      ctl;
      active;
      kind = initial_kind;
      n_queries = 0;
      migs = [];
    }
  in
  List.iter (add_tuple t) env.Strategy_sp.initial;
  t

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let controller t = t.ctl
let wstats t = t.ws
let current_kind t = t.kind
let migrations t = List.rev t.migs
let decision_log t = Controller.log t.ctl

let force_migrate t target =
  let cost = perform_migration t target in
  Controller.force t.ctl target;
  cost
