(** Live strategy migration for selection-projection views.

    A migration replaces the running {!Vmat_view.Strategy.t} of a view with
    an equivalent one under a different maintenance discipline, {e preserving
    the exact view contents}, and meters the work a real system would do:

    - query-modification → materialized (immediate or deferred): one
      clustered scan of the base relation (a read per base page plus a [C1]
      predicate test per tuple) and a write per page of the freshly
      materialized view — charged to the {!Vmat_storage.Cost_meter.Migrate}
      category;
    - deferred → anywhere: the hypothetical relation is drained first (the
      net [A]/[D] sets are applied to the stored view and the differential
      file is folded into the base), charged through the strategy's own
      refresh path exactly as an ordinary deferred refresh would be;
    - materialized → materialized: the stored view is retained, so beyond a
      possible drain the switch is free;
    - anywhere → query modification: dematerializing is a catalog update
      (one page write); the base relation already exists.

    Rebuilding the simulator's per-strategy storage structures is an artifact
    of strategy instances owning their files; that construction work is
    charged to the excluded [Base] category so measurements see only the
    migration work a shared-storage system would pay. *)

open Vmat_view

type kind = Immediate | Deferred | Qmod_clustered | Qmod_unclustered | Qmod_sequential

val all_kinds : kind list

val kind_name : kind -> string
(** The analytic model's candidate name ("immediate", "deferred",
    "clustered", "unclustered", "sequential") — matches
    {!Vmat_cost.Model1.all}. *)

val strategy_name : kind -> string
(** The operational strategy's name ("immediate", "deferred",
    "qmod-clustered", ...) — matches {!Vmat_view.Strategy.t.name}. *)

val kind_of_name : string -> kind option
(** Accepts either spelling. *)

val is_materialized : kind -> bool

val build : Strategy_sp.env -> kind -> Strategy.t
(** Construct a fresh strategy of the given kind over [env] (whose
    [initial] must be the current base-relation contents). *)

val predicted_cost : Vmat_cost.Params.t -> from_:kind -> to_:kind -> float
(** Analytic estimate of the one-time migration cost in ms, used by the
    {!Controller}'s break-even test {e before} committing to a switch:
    leaving deferred costs one differential-file read plus one refresh
    ({!Vmat_cost.Model1.c_ad_read} + {!Vmat_cost.Model1.c_def_refresh});
    materializing from query modification costs [C2 (b + f b / 2) + C1 N];
    dematerializing costs one page write. *)

val migrate :
  env:Strategy_sp.env -> from_:kind -> current:Strategy.t -> to_:kind -> Strategy.t * float
(** [migrate ~env ~from_ ~current ~to_] performs the transition and returns
    the replacement strategy together with its measured cost (everything
    charged outside [Base] while migrating, in ms).  [env.initial] must hold
    the current logical base contents; [current] is the strategy being
    retired (drained if deferred). *)
