(** Adaptive view maintenance: an ordinary {!Vmat_view.Strategy.t} that
    observes its own workload ({!Wstats}), periodically consults the
    analytic model ({!Controller}) and migrates live between maintenance
    disciplines ({!Migrate}) when the workload crosses a region boundary.

    Because the result is a plain [Strategy.t], it drops unchanged into
    {!Vmat_workload.Runner.run}, the equivalence tests, the [Db] engine
    ([using adaptive]) and the bench harness. *)

open Vmat_view

type migration = {
  at_query : int;  (** queries answered when the migration ran *)
  from_kind : Migrate.kind;
  to_kind : Migrate.kind;
  measured_cost : float;  (** ms, everything charged outside [Base] *)
}

type t

val wrap :
  ?config:Controller.config ->
  ?candidates:Migrate.kind list ->
  ?initial_kind:Migrate.kind ->
  Strategy_sp.env ->
  t
(** Build an adaptive strategy over a selection-projection view.
    [candidates] defaults to
    [[Deferred; Immediate; Qmod_clustered]] (the paper's three contenders);
    [initial_kind] defaults to the head of [candidates].  The base-relation
    contents are tracked logically (the observer's catalog bookkeeping, not
    charged) so migrations can rebuild storage from the current state. *)

val strategy : t -> Strategy.t
(** The pluggable strategy (name ["adaptive"]). *)

val controller : t -> Controller.t
val wstats : t -> Wstats.t
val current_kind : t -> Migrate.kind

val migrations : t -> migration list
(** Migrations performed, oldest first. *)

val decision_log : t -> Controller.decision list

val force_migrate : t -> Migrate.kind -> float
(** Migrate immediately to the given kind regardless of the controller's
    opinion, returning the measured migration cost (tests, operator
    override).  The controller's current kind is kept in sync. *)
