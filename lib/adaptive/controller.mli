(** The adaptive policy loop: periodically re-evaluate the analytic cost
    model ({!Vmat_cost.Advisor}) at the parameter point the {!Wstats}
    observer currently estimates, and decide whether switching the view's
    maintenance strategy is worth a live migration.

    Two guards keep the controller from flapping on a region boundary
    (the paper's Figures 2–4 show the winning regions touch along curves
    where the costs are {e equal}, so a noisy estimate sitting on a boundary
    would otherwise oscillate):

    - {b hysteresis}: the challenger must beat the incumbent by at least
      [hysteresis] (a relative margin, e.g. 0.15 = 15%) of the incumbent's
      predicted per-query cost;
    - {b break-even}: the predicted per-query saving must amortize the
      predicted migration cost ({!Migrate.predicted_cost}) within [horizon]
      queries.

    Every evaluation is appended to a decision log for observability,
    whether or not it results in a switch. *)

type config = {
  decide_every : int;  (** queries between decision points *)
  min_ops : int;  (** observed operations before the first decision *)
  hysteresis : float;  (** required relative advantage, e.g. [0.15] *)
  horizon : float;  (** queries over which a migration must pay for itself *)
  alpha : float;  (** EWMA decay for the {!Wstats} observer *)
}

val default_config : config
(** [{ decide_every = 4; min_ops = 6; hysteresis = 0.15; horizon = 200.; alpha = 0.25 }] *)

type decision = {
  d_at_query : int;  (** queries answered when the decision was taken *)
  d_current : Migrate.kind;
  d_best : Migrate.kind;  (** cheapest candidate at the estimated point *)
  d_costs : (string * float) list;  (** candidate costs, cheapest first *)
  d_params : Vmat_cost.Params.t;  (** the estimated parameter point *)
  d_saving : float;  (** predicted per-query saving of switching *)
  d_migration : float;  (** predicted one-time migration cost *)
  d_switched : bool;
  d_reason : string;  (** why the controller stayed or switched *)
}

type t

val create :
  ?config:config ->
  candidates:Migrate.kind list ->
  initial:Migrate.kind ->
  base_params:Vmat_cost.Params.t ->
  unit ->
  t
(** [base_params] supplies the physical constants ([S], [B], [n], [C1..C3])
    that observation cannot see.  @raise Invalid_argument if [candidates]
    is empty or does not contain [initial]. *)

val config : t -> config
val current : t -> Migrate.kind
val candidates : t -> Migrate.kind list

val decide :
  t -> wstats:Wstats.t -> n_tuples:float -> f:float -> at_query:int -> Migrate.kind option
(** Called after every answered query.  Returns [Some target] when the
    controller commits to a migration (and updates its notion of the current
    kind — the caller must actually perform the {!Migrate.migrate}); [None]
    otherwise.  Decisions are only evaluated every [decide_every] queries
    once [min_ops] operations have been observed. *)

val force : t -> Migrate.kind -> unit
(** Overwrite the current kind (used when the caller migrates out-of-band,
    e.g. in tests). *)

val log : t -> decision list
(** All evaluations, oldest first. *)

val switches : t -> int
(** Number of migrations committed. *)

val pp_decision : Format.formatter -> decision -> unit
