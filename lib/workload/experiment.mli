(** One-call measured experiments: build the synthetic dataset and operation
    stream implied by a parameter set, instantiate the requested strategies
    on fresh simulated disks, replay, and report.  These are the "measured"
    counterparts of the analytic formulas in [Vmat_cost]. *)

open Vmat_cost

type model1_strategy =
  [ `Deferred | `Immediate | `Clustered | `Unclustered | `Sequential | `Recompute | `Adaptive ]

type model2_strategy = [ `Deferred | `Immediate | `Loopjoin ]

type model3_strategy = [ `Deferred | `Immediate | `Recompute ]

val scale : Params.t -> float -> Params.t
(** [scale p s] shrinks the relation to [s * N] tuples (keeping fractions and
    per-query update counts) for faster simulation. *)

val fresh_ctx :
  ?sanitize:bool ->
  ?fault:Vmat_storage.Fault.t ->
  Params.t ->
  first_tid:int ->
  Vmat_storage.Ctx.t
(** The execution context a measured run gives each strategy: geometry and
    cost constants from [p], tids pinned to [first_tid] (the next tid after
    dataset/stream generation) so every strategy sees identical tuple
    identities.  [fault] threads a crash-injection handle through for the
    durability harness (default: disabled). *)

type model1_setup = {
  ms_dataset : Dataset.model1;
  ms_ops : Stream.op list;
  ms_first_tid : int;
}
(** The shared half of a Model-1 measurement: dataset, operation stream, and
    the pinned first tid, for drivers that replay the ops themselves
    (the WAL crash-equivalence harness, [vmperf crash-test]). *)

val model1_setup : ?seed:int -> Params.t -> model1_setup
(** Deterministic: same [seed] and [p] produce byte-identical datasets and
    streams on every call. *)

val model1_env :
  ?sanitize:bool -> Params.t -> model1_setup -> Vmat_view.Strategy_sp.env
(** A fresh strategy environment over [setup] — its own context (meter,
    disk, RNG) pinned to [setup.ms_first_tid], exactly what one
    {!measure_model1} strategy run builds internally.  External drivers
    (the serving subsystem, DESIGN §10) use this to instantiate engines
    that replay the shared stream themselves. *)

val model1_strategy_of :
  Vmat_view.Strategy_sp.env -> model1_strategy -> Vmat_view.Strategy.t
(** The strategy a measured Model-1 run would build for [which] over
    [env] (the [`Adaptive] case wraps with default controller
    configuration). *)

type wrap =
  ctx:Vmat_storage.Ctx.t ->
  initial:Vmat_storage.Tuple.t list ->
  Vmat_view.Strategy.t ->
  Vmat_view.Strategy.t
(** A strategy decorator applied after construction, before the run — how
    [--durability wal] slips {!Vmat_wal.Durable} in front of every strategy
    without this library depending on the WAL.  [initial] is the base
    relation the change stream mutates. *)

val model1_keys_of : Stream.op -> string list
(** The cluster keys a Model-1 operation touches — updated tuples' [pval]
    and queried range starts, quantized with {!Vmat_obs.Sketch.bucket_key}
    into the same 64-bucket [0, 1) key space the serving sketches use. *)

val measure_model1 :
  ?seed:int ->
  ?recorder:Vmat_obs.Recorder.t ->
  ?sanitize:bool ->
  ?wrap:wrap ->
  ?track_keys:bool ->
  Params.t ->
  model1_strategy list ->
  (string * Runner.measurement) list
(** One shared dataset and stream; each strategy runs on its own disk and
    meter.  [recorder], when given, is installed on every strategy's meter:
    trace spans carry a [strategy] attribute, so a shared trace reads
    naturally, but the mirrored cost {e counters} are reset per strategy run
    — pass one strategy (or one recorder per call) for per-strategy metric
    snapshots.  [sanitize] forces the runtime invariant checker on (or off)
    for every strategy's context, overriding the [VMAT_SANITIZE] environment
    default (see {!Vmat_storage.Sanitize}).  [track_keys] (default off)
    feeds {!model1_keys_of} to {!Runner.run}'s key sketch, surfacing
    per-strategy [vmat_key_*] hot-key gauges when a recorder is enabled. *)

type phase_spec = { sp_k : int; sp_l : int; sp_q : int; sp_fv : float }
(** One segment of a phase-shifting Model-1 workload: [sp_k] transactions of
    [sp_l] tuples interleaved with [sp_q] queries, each retrieving the
    fraction [sp_fv] of the view.  The base parameter set supplies everything
    else ([N], [S], [B], [f], [C1..C3]). *)

type phased_result = {
  ph_name : string;
  ph_per_phase : Runner.measurement list;  (** one measurement per phase, in order *)
  ph_overall : Runner.measurement;  (** whole-run combination *)
  ph_adaptive : Vmat_adaptive.Adaptive.t option;
      (** the adaptive handle (decision log, migrations) when the strategy
          was [`Adaptive] *)
}

val measure_phased :
  ?seed:int ->
  ?recorder:Vmat_obs.Recorder.t ->
  ?sanitize:bool ->
  ?wrap:wrap ->
  ?adaptive_config:Vmat_adaptive.Controller.config ->
  ?adaptive_candidates:Vmat_adaptive.Migrate.kind list ->
  ?adaptive_initial:Vmat_adaptive.Migrate.kind ->
  Params.t ->
  phases:phase_spec list ->
  model1_strategy list ->
  phased_result list
(** Generate one phase-shifting stream (shared across strategies, each on its
    own fresh disk and meter) and measure every strategy per phase and
    overall.  The [adaptive_*] options configure the [`Adaptive] contender
    and are ignored for static strategies. *)

val measure_model2 :
  ?seed:int ->
  ?recorder:Vmat_obs.Recorder.t ->
  ?sanitize:bool ->
  ?wrap:wrap ->
  Params.t ->
  model2_strategy list ->
  (string * Runner.measurement) list

val measure_model3 :
  ?seed:int ->
  ?recorder:Vmat_obs.Recorder.t ->
  ?sanitize:bool ->
  ?wrap:wrap ->
  ?kind:[ `Count | `Sum of string | `Avg of string | `Variance of string | `Min of string | `Max of string ] ->
  Params.t ->
  model3_strategy list ->
  (string * Runner.measurement) list

val ad_buckets_for : Params.t -> int
(** Static sizing of the deferred differential file: [ceil (2u / T)] primary
    buckets (at least 1). *)
