(** One-call measured experiments: build the synthetic dataset and operation
    stream implied by a parameter set, instantiate the requested strategies
    on fresh simulated disks, replay, and report.  These are the "measured"
    counterparts of the analytic formulas in [Vmat_cost]. *)

open Vmat_cost

type model1_strategy =
  [ `Deferred | `Immediate | `Clustered | `Unclustered | `Sequential | `Recompute | `Adaptive ]

type model2_strategy = [ `Deferred | `Immediate | `Loopjoin ]

type model3_strategy = [ `Deferred | `Immediate | `Recompute ]

val scale : Params.t -> float -> Params.t
(** [scale p s] shrinks the relation to [s * N] tuples (keeping fractions and
    per-query update counts) for faster simulation. *)

val measure_model1 :
  ?seed:int ->
  ?recorder:Vmat_obs.Recorder.t ->
  ?sanitize:bool ->
  Params.t ->
  model1_strategy list ->
  (string * Runner.measurement) list
(** One shared dataset and stream; each strategy runs on its own disk and
    meter.  [recorder], when given, is installed on every strategy's meter:
    trace spans carry a [strategy] attribute, so a shared trace reads
    naturally, but the mirrored cost {e counters} are reset per strategy run
    — pass one strategy (or one recorder per call) for per-strategy metric
    snapshots.  [sanitize] forces the runtime invariant checker on (or off)
    for every strategy's context, overriding the [VMAT_SANITIZE] environment
    default (see {!Vmat_storage.Sanitize}). *)

type phase_spec = { sp_k : int; sp_l : int; sp_q : int; sp_fv : float }
(** One segment of a phase-shifting Model-1 workload: [sp_k] transactions of
    [sp_l] tuples interleaved with [sp_q] queries, each retrieving the
    fraction [sp_fv] of the view.  The base parameter set supplies everything
    else ([N], [S], [B], [f], [C1..C3]). *)

type phased_result = {
  ph_name : string;
  ph_per_phase : Runner.measurement list;  (** one measurement per phase, in order *)
  ph_overall : Runner.measurement;  (** whole-run combination *)
  ph_adaptive : Vmat_adaptive.Adaptive.t option;
      (** the adaptive handle (decision log, migrations) when the strategy
          was [`Adaptive] *)
}

val measure_phased :
  ?seed:int ->
  ?recorder:Vmat_obs.Recorder.t ->
  ?sanitize:bool ->
  ?adaptive_config:Vmat_adaptive.Controller.config ->
  ?adaptive_candidates:Vmat_adaptive.Migrate.kind list ->
  ?adaptive_initial:Vmat_adaptive.Migrate.kind ->
  Params.t ->
  phases:phase_spec list ->
  model1_strategy list ->
  phased_result list
(** Generate one phase-shifting stream (shared across strategies, each on its
    own fresh disk and meter) and measure every strategy per phase and
    overall.  The [adaptive_*] options configure the [`Adaptive] contender
    and are ignored for static strategies. *)

val measure_model2 :
  ?seed:int ->
  ?recorder:Vmat_obs.Recorder.t ->
  ?sanitize:bool ->
  Params.t ->
  model2_strategy list ->
  (string * Runner.measurement) list

val measure_model3 :
  ?seed:int ->
  ?recorder:Vmat_obs.Recorder.t ->
  ?sanitize:bool ->
  ?kind:[ `Count | `Sum of string | `Avg of string | `Variance of string | `Min of string | `Max of string ] ->
  Params.t ->
  model3_strategy list ->
  (string * Runner.measurement) list

val ad_buckets_for : Params.t -> int
(** Static sizing of the deferred differential file: [ceil (2u / T)] primary
    buckets (at least 1). *)
