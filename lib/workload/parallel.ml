open Vmat_util

let default_jobs () = Domain.recommended_domain_count ()

let split_seeds ~root n =
  if n < 0 then invalid_arg "Parallel.split_seeds: negative count";
  let rng = Rng.create root in
  List.init n (fun _ ->
      let child = Rng.split rng in
      Int64.to_int (Rng.next child) land max_int)

let map_points ?(jobs = 1) f items =
  if jobs < 0 then invalid_arg "Parallel.map_points: negative jobs";
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.to_list (Array.map f items)
  else begin
    let results : ('b, exn) result option array = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (results.(i) <- (try Some (Ok (f items.(i))) with e -> Some (Error e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (* Deterministic error behavior: whatever [jobs] was, the exception
       reported is the one the serial run would have raised first. *)
    Array.to_list
      (Array.map
         (function
           | Some (Ok r) -> r
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end
