open Vmat_storage
open Vmat_util
open Vmat_relalg
open Vmat_view

let base_columns =
  Schema.
    [
      { name = "id"; ty = T_int };
      { name = "pval"; ty = T_float };
      { name = "amount"; ty = T_float };
      { name = "note"; ty = T_string };
    ]

let base_schema ~s_bytes =
  Schema.make ~name:"R" ~columns:base_columns ~tuple_bytes:s_bytes ~key:"id"

let base_tuple ~tids rng ~id =
  Tuple.make ~tid:(Tuple.next tids)
    [|
      Value.Int id;
      Value.Float (Rng.float rng);
      Value.Float (Float.of_int (Rng.int rng 1000));
      Value.Str (Printf.sprintf "n%06d" (Rng.int rng 1_000_000));
    |]

let pred_on schema ~f =
  Predicate.Cmp (Predicate.Lt, Predicate.Column (Schema.column_index schema "pval"),
                 Predicate.Const (Value.Float f))

type model1 = {
  m1_schema : Schema.t;
  m1_view : View_def.sp;
  m1_tuples : Tuple.t list;
}

let make_model1 ~rng ~tids ~n ~f ~s_bytes =
  let schema = base_schema ~s_bytes in
  let view =
    View_def.make_sp ~name:"V" ~base:schema ~pred:(pred_on schema ~f)
      ~project:[ "pval"; "amount" ] ~cluster:"pval"
  in
  {
    m1_schema = schema;
    m1_view = view;
    m1_tuples = List.init n (fun id -> base_tuple ~tids rng ~id);
  }

type model2 = {
  m2_left : Schema.t;
  m2_right : Schema.t;
  m2_view : View_def.join;
  m2_left_tuples : Tuple.t list;
  m2_right_tuples : Tuple.t list;
}

let make_model2 ~rng ~tids ~n ~f ~f_r2 ~s_bytes =
  let left =
    Schema.make ~name:"R1"
      ~columns:
        Schema.
          [
            { name = "id"; ty = T_int };
            { name = "pval"; ty = T_float };
            { name = "jkey"; ty = T_int };
            { name = "c"; ty = T_string };
          ]
      ~tuple_bytes:s_bytes ~key:"id"
  in
  let right =
    Schema.make ~name:"R2"
      ~columns:
        Schema.
          [
            { name = "jkey"; ty = T_int };
            { name = "weight"; ty = T_float };
            { name = "tag"; ty = T_string };
          ]
      ~tuple_bytes:s_bytes ~key:"jkey"
  in
  let n_right = max 1 (int_of_float (Float.round (f_r2 *. float_of_int n))) in
  let view =
    View_def.make_join ~name:"VJ" ~left ~right ~left_pred:(pred_on left ~f)
      ~on:("jkey", "jkey") ~project_left:[ "pval"; "c" ] ~project_right:[ "weight" ]
      ~cluster:"pval"
  in
  let right_tuples =
    List.init n_right (fun jkey ->
        Tuple.make ~tid:(Tuple.next tids)
          [|
            Value.Int jkey;
            Value.Float (Rng.float rng);
            Value.Str (Printf.sprintf "t%06d" (Rng.int rng 1_000_000));
          |])
  in
  let left_tuples =
    List.init n (fun id ->
        Tuple.make ~tid:(Tuple.next tids)
          [|
            Value.Int id;
            Value.Float (Rng.float rng);
            Value.Int (Rng.int rng n_right);
            Value.Str (Printf.sprintf "c%06d" (Rng.int rng 1_000_000));
          |])
  in
  {
    m2_left = left;
    m2_right = right;
    m2_view = view;
    m2_left_tuples = left_tuples;
    m2_right_tuples = right_tuples;
  }

type model3 = {
  m3_schema : Schema.t;
  m3_agg : View_def.agg;
  m3_tuples : Tuple.t list;
}

let make_model3 ~rng ~tids ~n ~f ~s_bytes ~kind =
  let { m1_schema; m1_view; m1_tuples } = make_model1 ~rng ~tids ~n ~f ~s_bytes in
  {
    m3_schema = m1_schema;
    m3_agg = View_def.make_agg ~name:"VA" ~over:m1_view ~kind;
    m3_tuples = m1_tuples;
  }
