open Vmat_storage
open Vmat_view

type measurement = {
  strategy_name : string;
  transactions : int;
  queries : int;
  cost_per_query : float;
  category_costs : (Cost_meter.category * float) list;
  physical_reads : int;
  physical_writes : int;
  tuples_returned : int;
}

let run ~meter ~disk ~strategy ~ops =
  Cost_meter.reset meter;
  let reads0 = Disk.physical_reads disk and writes0 = Disk.physical_writes disk in
  let returned = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Stream.Txn changes -> strategy.Strategy.handle_transaction changes
      | Stream.Query q ->
          let result = strategy.Strategy.answer_query q in
          returned := !returned + List.length result)
    ops;
  let transactions, queries = Stream.count_ops ops in
  {
    strategy_name = strategy.Strategy.name;
    transactions;
    queries;
    cost_per_query =
      (if queries = 0 then 0.
       else Cost_meter.total_cost ~excluding:[ Cost_meter.Base ] meter /. float_of_int queries);
    category_costs =
      List.map (fun cat -> (cat, Cost_meter.cost meter cat)) Cost_meter.all_categories;
    physical_reads = Disk.physical_reads disk - reads0;
    physical_writes = Disk.physical_writes disk - writes0;
    tuples_returned = !returned;
  }

let combine name ms =
  let sum f = List.fold_left (fun acc m -> acc + f m) 0 ms in
  let queries = sum (fun m -> m.queries) in
  let total_excl_base =
    List.fold_left
      (fun acc m -> acc +. (m.cost_per_query *. float_of_int m.queries))
      0. ms
  in
  {
    strategy_name = name;
    transactions = sum (fun m -> m.transactions);
    queries;
    cost_per_query = (if queries = 0 then 0. else total_excl_base /. float_of_int queries);
    category_costs =
      List.map
        (fun cat ->
          ( cat,
            List.fold_left
              (fun acc m ->
                acc +. (try List.assoc cat m.category_costs with Not_found -> 0.))
              0. ms ))
        Cost_meter.all_categories;
    physical_reads = sum (fun m -> m.physical_reads);
    physical_writes = sum (fun m -> m.physical_writes);
    tuples_returned = sum (fun m -> m.tuples_returned);
  }

let run_phases ~meter ~disk ~strategy ~phases =
  let per_phase = List.map (fun ops -> run ~meter ~disk ~strategy ~ops) phases in
  (per_phase, combine strategy.Strategy.name per_phase)

let pp fmt m =
  Format.fprintf fmt "%s: %.1f ms/query (%d txns, %d queries, %d reads, %d writes)"
    m.strategy_name m.cost_per_query m.transactions m.queries m.physical_reads
    m.physical_writes;
  List.iter
    (fun (cat, cost) ->
      if cost > 0. then Format.fprintf fmt " %s=%.0f" (Cost_meter.category_name cat) cost)
    m.category_costs
