open Vmat_storage
open Vmat_view
module Recorder = Vmat_obs.Recorder

type measurement = {
  strategy_name : string;
  transactions : int;
  queries : int;
  cost_per_query : float;
  category_costs : (Cost_meter.category * float) list;
  physical_reads : int;
  physical_writes : int;
  buffer_pool_hits : int;
  buffer_pool_misses : int;
  tuples_returned : int;
}

(* The virtual trace clock: accumulated modeled milliseconds.  Deterministic
   across machines and exactly the paper's cost axis; the recorder repairs
   monotonicity across the meter resets at run/phase boundaries. *)
let install_clock recorder meter =
  Recorder.set_clock recorder (fun () -> Cost_meter.total_cost meter)

let run ?recorder ?keys_of ~ctx ~strategy ~ops () =
  (* Replays are single-threaded over the context by construction; claiming
     ownership here makes the ctx handoff explicit when a run is driven from
     a spawned domain (sweep workers, the serving writer — DESIGN §10). *)
  Ctx.adopt ctx;
  let meter = Ctx.meter ctx and disk = Ctx.disk ctx in
  (match recorder with
  | Some r ->
      (* Wiring point: the meter carries the recorder to every layer below
         (storage, hypo, view, adaptive) without constructor changes. *)
      Cost_meter.set_recorder meter r;
      install_clock r meter
  | None -> ());
  let r = Cost_meter.recorder meter in
  Cost_meter.reset meter;
  (* Workload key sketch (DESIGN §11): quantized cluster keys of every op,
     exported as vmat_key_* gauges at run end.  Recorder-gated — pure data
     structure, never touches the meter, zero observer effect. *)
  let key_sketch =
    match keys_of with
    | Some f when Recorder.enabled r ->
        Some (f, Vmat_obs.Sketch.create ~capacity:32 ())
    | _ -> None
  in
  let reads0 = Disk.physical_reads disk and writes0 = Disk.physical_writes disk in
  let hits0 = Disk.pool_hits disk and misses0 = Disk.pool_misses disk in
  let returned = ref 0 in
  let san = Ctx.sanitizer ctx in
  let exec op =
    (match op with
    | Stream.Txn changes -> strategy.Strategy.handle_transaction changes
    | Stream.Query q ->
        let result = strategy.Strategy.answer_query q in
        returned := !returned + List.length result);
    (* Sanitizer: after every operation the meter's tallies must equal the
       independent mirror fed by the charge hook — any divergence means a
       charge path bypassed the hook (or a tally was mutated directly).
       Reads only; never charges. *)
    if Sanitize.enabled san then Sanitize.check_meter san meter
  in
  let run_op op =
    (match key_sketch with
    | Some (f, sk) -> List.iter (Vmat_obs.Sketch.observe sk) (f op)
    | None -> ());
    if not (Recorder.enabled r) then exec op
    else begin
      (* Span per operation with its modeled cost as an end-attribute, plus a
         log-scale latency histogram per op kind.  Snapshots are read-only,
         so none of this perturbs the measurement (see the observer-effect
         test in test/test_obs.ml). *)
      let op_kind, span_name =
        match op with
        | Stream.Txn _ -> ("txn", "handle_transaction")
        | Stream.Query _ -> ("query", "answer_query")
      in
      let snap = Cost_meter.snapshot meter in
      let cost () = Cost_meter.cost_since meter snap () in
      Recorder.span r ~cat:"workload" span_name
        ~args:[ ("strategy", strategy.Strategy.name) ]
        ~end_args:(fun () -> [ ("cost_ms", Printf.sprintf "%.3f" (cost ())) ])
        (fun () -> exec op);
      Recorder.observe r ~help:"Modeled cost of one workload operation (ms)."
        ~labels:[ ("op", op_kind); ("strategy", strategy.Strategy.name) ]
        "vmat_op_cost_ms" (cost ())
    end
  in
  Recorder.span r ~cat:"workload" "run"
    ~args:
      [
        ("strategy", strategy.Strategy.name);
        ("ops", string_of_int (List.length ops));
      ]
    (fun () -> List.iter run_op ops);
  (match key_sketch with
  | Some (_, sk) ->
      Vmat_obs.Sketch.export
        ~labels:[ ("strategy", strategy.Strategy.name) ]
        r sk
  | None -> ());
  let transactions, queries = Stream.count_ops ops in
  {
    strategy_name = strategy.Strategy.name;
    transactions;
    queries;
    cost_per_query =
      (if queries = 0 then 0.
       else Cost_meter.total_cost ~excluding:[ Cost_meter.Base ] meter /. float_of_int queries);
    category_costs =
      List.map (fun cat -> (cat, Cost_meter.cost meter cat)) Cost_meter.all_categories;
    physical_reads = Disk.physical_reads disk - reads0;
    physical_writes = Disk.physical_writes disk - writes0;
    buffer_pool_hits = Disk.pool_hits disk - hits0;
    buffer_pool_misses = Disk.pool_misses disk - misses0;
    tuples_returned = !returned;
  }

let combine name ms =
  let sum f = List.fold_left (fun acc m -> acc + f m) 0 ms in
  let queries = sum (fun m -> m.queries) in
  let total_excl_base =
    List.fold_left
      (fun acc m -> acc +. (m.cost_per_query *. float_of_int m.queries))
      0. ms
  in
  {
    strategy_name = name;
    transactions = sum (fun m -> m.transactions);
    queries;
    cost_per_query = (if queries = 0 then 0. else total_excl_base /. float_of_int queries);
    category_costs =
      List.map
        (fun cat ->
          ( cat,
            List.fold_left
              (fun acc m ->
                acc +. (try List.assoc cat m.category_costs with Not_found -> 0.))
              0. ms ))
        Cost_meter.all_categories;
    physical_reads = sum (fun m -> m.physical_reads);
    physical_writes = sum (fun m -> m.physical_writes);
    buffer_pool_hits = sum (fun m -> m.buffer_pool_hits);
    buffer_pool_misses = sum (fun m -> m.buffer_pool_misses);
    tuples_returned = sum (fun m -> m.tuples_returned);
  }

let run_phases ?recorder ~ctx ~strategy ~phases () =
  let phase_no = ref 0 in
  let per_phase =
    List.map
      (fun ops ->
        incr phase_no;
        (match recorder with
        | Some r when Recorder.enabled r ->
            Recorder.instant r ~cat:"workload" "phase"
              ~args:[ ("phase", string_of_int !phase_no) ]
        | _ -> ());
        run ?recorder ~ctx ~strategy ~ops ())
      phases
  in
  (per_phase, combine strategy.Strategy.name per_phase)

let pp fmt m =
  Format.fprintf fmt "%s: %.1f ms/query (%d txns, %d queries, %d reads, %d writes)"
    m.strategy_name m.cost_per_query m.transactions m.queries m.physical_reads
    m.physical_writes;
  if m.buffer_pool_hits + m.buffer_pool_misses > 0 then
    Format.fprintf fmt " pool=%d/%d" m.buffer_pool_hits
      (m.buffer_pool_hits + m.buffer_pool_misses);
  List.iter
    (fun (cat, cost) ->
      if cost > 0. then Format.fprintf fmt " %s=%.0f" (Cost_meter.category_name cat) cost)
    m.category_costs
