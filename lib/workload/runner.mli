(** Replay an operation stream against a strategy and report measured costs
    in the paper's units (the per-query average excludes the [Base] category,
    exactly like the paper's accounting).

    The runner is also the wiring point for observability: pass a live
    {!Vmat_obs.Recorder.t} and it is installed on the meter (reaching every
    layer below), given the virtual clock (accumulated modeled ms), and fed a
    span per operation plus a per-op-kind cost histogram.  Without a
    recorder — or with {!Vmat_obs.Recorder.noop} — the measured numbers are
    bit-identical (tested). *)

open Vmat_storage
open Vmat_view

type measurement = {
  strategy_name : string;
  transactions : int;
  queries : int;
  cost_per_query : float;  (** average, excluding ordinary base maintenance *)
  category_costs : (Cost_meter.category * float) list;  (** totals, ms *)
  physical_reads : int;
  physical_writes : int;
  buffer_pool_hits : int;  (** logical reads served without I/O, all pools *)
  buffer_pool_misses : int;  (** logical reads that paid a physical read *)
  tuples_returned : int;  (** across all queries (sanity signal) *)
}

val run :
  ?recorder:Vmat_obs.Recorder.t ->
  ?keys_of:(Stream.op -> string list) ->
  ctx:Ctx.t ->
  strategy:Strategy.t ->
  ops:Stream.op list ->
  unit ->
  measurement
(** Resets the context's meter (construction charges are setup, not
    workload), then replays.  [recorder], when given, is installed on the
    meter first — subsequent runs on the same meter keep it until another is
    installed.  [keys_of], when given alongside an enabled recorder, maps
    every operation to the cluster keys it touches; the keys feed a
    {!Vmat_obs.Sketch} whose summary lands in the registry as [vmat_key_*]
    gauges at run end (zero observer effect on the measurement). *)

val run_phases :
  ?recorder:Vmat_obs.Recorder.t ->
  ctx:Ctx.t ->
  strategy:Strategy.t ->
  phases:Stream.op list list ->
  unit ->
  measurement list * measurement
(** Replay a phase-shifting workload (see {!Stream.generate_phased}) against
    one live strategy instance, resetting the meter at each phase boundary so
    every phase gets its own measurement.  Returns the per-phase measurements
    in order plus the combined whole-run measurement (cost per query weighted
    over all phases). *)

val pp : Format.formatter -> measurement -> unit
