(** Replay an operation stream against a strategy and report measured costs
    in the paper's units (the per-query average excludes the [Base] category,
    exactly like the paper's accounting). *)

open Vmat_storage
open Vmat_view

type measurement = {
  strategy_name : string;
  transactions : int;
  queries : int;
  cost_per_query : float;  (** average, excluding ordinary base maintenance *)
  category_costs : (Cost_meter.category * float) list;  (** totals, ms *)
  physical_reads : int;
  physical_writes : int;
  tuples_returned : int;  (** across all queries (sanity signal) *)
}

val run : meter:Cost_meter.t -> disk:Disk.t -> strategy:Strategy.t -> ops:Stream.op list -> measurement
(** Resets the meter (construction charges are setup, not workload), then
    replays. *)

val run_phases :
  meter:Cost_meter.t ->
  disk:Disk.t ->
  strategy:Strategy.t ->
  phases:Stream.op list list ->
  measurement list * measurement
(** Replay a phase-shifting workload (see {!Stream.generate_phased}) against
    one live strategy instance, resetting the meter at each phase boundary so
    every phase gets its own measurement.  Returns the per-phase measurements
    in order plus the combined whole-run measurement (cost per query weighted
    over all phases). *)

val pp : Format.formatter -> measurement -> unit
