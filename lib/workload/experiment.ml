open Vmat_storage
open Vmat_util
open Vmat_view
open Vmat_cost

module Adaptive = Vmat_adaptive.Adaptive

type model1_strategy =
  [ `Deferred | `Immediate | `Clustered | `Unclustered | `Sequential | `Recompute | `Adaptive ]

type model2_strategy = [ `Deferred | `Immediate | `Loopjoin ]

type model3_strategy = [ `Deferred | `Immediate | `Recompute ]

let scale (p : Params.t) s =
  if s <= 0. || s > 1. then invalid_arg "Experiment.scale: factor must be in (0, 1]";
  { p with Params.n_tuples = Float.max 100. (Float.round (p.n_tuples *. s)) }

let ad_buckets_for (p : Params.t) =
  let u = Params.updates_per_query p in
  max 1 (int_of_float (ceil (2. *. u /. Params.tuples_per_page p)))

let geometry_of (p : Params.t) =
  {
    Strategy.page_bytes = int_of_float p.page_bytes;
    index_entry_bytes = int_of_float p.index_bytes;
  }

let ints (p : Params.t) =
  ( int_of_float p.n_tuples,
    int_of_float (Float.round p.k_updates),
    int_of_float p.l_per_txn,
    int_of_float p.q_queries )

(* One execution context per strategy run, all pinned to the same
   [first_tid] (the next tid after dataset/stream generation), so every
   strategy sees identical tuple identities regardless of run order.  This is
   what makes back-to-back in-process measurements bit-identical. *)
let fresh_ctx ?sanitize ?fault (p : Params.t) ~first_tid =
  Ctx.create ~geometry:(geometry_of p) ~c1:p.c1 ~c2:p.c2 ~c3:p.c3 ~first_tid ?sanitize
    ?fault ()

let amount_col = 2 (* R(id, pval, amount, note) *)

let model1_stream ~rng ~tids ~(p : Params.t) (dataset : Dataset.model1) =
  let _, k, l, q = ints p in
  let tuples = Array.of_list dataset.m1_tuples in
  let width = p.f *. p.fv in
  Stream.generate ~rng ~tuples
    ~mutate:
      (Stream.mutate_column ~tids ~col:amount_col (fun rng ->
           Value.Float (Float.of_int (Rng.int rng 1000))))
    ~k ~l ~q
    ~query_of:(Stream.range_query_of ~lo_max:(p.f -. width) ~width)

type model1_setup = {
  ms_dataset : Dataset.model1;
  ms_ops : Stream.op list;
  ms_first_tid : int;
}

(* The dataset/stream half of [measure_model1], split out so external
   drivers (the WAL crash-equivalence harness, `vmperf crash-test`) can
   replay the exact same operation sequence themselves. *)
let model1_setup ?(seed = 42) (p : Params.t) =
  let rng = Rng.create seed in
  let tids = Tuple.source () in
  let n, _, _, _ = ints p in
  let dataset =
    Dataset.make_model1 ~rng ~tids ~n ~f:p.f ~s_bytes:(int_of_float p.tuple_bytes)
  in
  let ops = model1_stream ~rng ~tids ~p dataset in
  { ms_dataset = dataset; ms_ops = ops; ms_first_tid = Tuple.peek tids }

type wrap =
  ctx:Ctx.t -> initial:Tuple.t list -> Strategy.t -> Strategy.t

let apply_wrap wrap ~ctx ~initial strategy =
  match wrap with None -> strategy | Some (w : wrap) -> w ~ctx ~initial strategy

(* The engine half of a Model-1 measurement, split out so external drivers
   (the serving subsystem, DESIGN §10) can build the exact strategy a
   measured run would, over the exact same setup. *)
let model1_env ?sanitize (p : Params.t) (s : model1_setup) =
  let ctx = fresh_ctx ?sanitize p ~first_tid:s.ms_first_tid in
  {
    Strategy_sp.ctx;
    view = s.ms_dataset.Dataset.m1_view;
    initial = s.ms_dataset.Dataset.m1_tuples;
    ad_buckets = ad_buckets_for p;
  }

let model1_strategy_of (env : Strategy_sp.env) (which : model1_strategy) =
  match which with
  | `Deferred -> Strategy_sp.deferred env
  | `Immediate -> Strategy_sp.immediate env
  | `Clustered -> Strategy_sp.qmod_clustered env
  | `Unclustered -> Strategy_sp.qmod_unclustered env
  | `Sequential -> Strategy_sp.qmod_sequential env
  | `Recompute -> Strategy_sp.recompute env
  | `Adaptive -> Adaptive.strategy (Adaptive.wrap env)

(* Cluster keys an operation touches, quantized into the same 64-bucket
   [0, 1) key space the serving sketches use (Sketch.bucket_key), so fleet
   tooling can compare offline and serving heat maps directly.  Model 1:
   R(id, pval, amount, note), pval is the cluster column. *)
let model1_keys_of op =
  let pval_col = 1 in
  let bucket = function
    | Value.Float x -> Vmat_obs.Sketch.bucket_key ~cells:64 ~lo:0. ~hi:1. x
    | v -> Value.to_string v
  in
  match op with
  | Stream.Txn changes ->
      List.filter_map
        (fun (c : Strategy.change) ->
          match (c.Strategy.after, c.Strategy.before) with
          | Some t, _ | None, Some t -> Some (bucket (Tuple.get t pval_col))
          | None, None -> None)
        changes
  | Stream.Query q -> [ bucket q.Strategy.q_lo ]

let measure_model1 ?(seed = 42) ?recorder ?sanitize ?wrap ?(track_keys = false)
    (p : Params.t) strategies =
  let setup = model1_setup ~seed p in
  let keys_of = if track_keys then Some model1_keys_of else None in
  let run which =
    let env = model1_env ?sanitize p setup in
    let ctx = env.Strategy_sp.ctx in
    let strategy = model1_strategy_of env which in
    let strategy = apply_wrap wrap ~ctx ~initial:setup.ms_dataset.Dataset.m1_tuples strategy in
    let m = Runner.run ?recorder ?keys_of ~ctx ~strategy ~ops:setup.ms_ops () in
    (m.Runner.strategy_name, m)
  in
  List.map run strategies

type phase_spec = { sp_k : int; sp_l : int; sp_q : int; sp_fv : float }

type phased_result = {
  ph_name : string;
  ph_per_phase : Runner.measurement list;
  ph_overall : Runner.measurement;
  ph_adaptive : Adaptive.t option;
}

let measure_phased ?(seed = 42) ?recorder ?sanitize ?wrap ?adaptive_config
    ?adaptive_candidates ?adaptive_initial (p : Params.t) ~phases strategies =
  if List.is_empty phases then invalid_arg "Experiment.measure_phased: no phases";
  let rng = Rng.create seed in
  let tids = Tuple.source () in
  let n, _, _, _ = ints p in
  let dataset =
    Dataset.make_model1 ~rng ~tids ~n ~f:p.f ~s_bytes:(int_of_float p.tuple_bytes)
  in
  let tuples = Array.of_list dataset.m1_tuples in
  let phase_streams =
    List.map
      (fun { sp_k; sp_l; sp_q; sp_fv } ->
        let width = p.f *. sp_fv in
        {
          Stream.ph_k = sp_k;
          ph_l = sp_l;
          ph_q = sp_q;
          ph_mutate =
            Stream.mutate_column ~tids ~col:amount_col (fun rng ->
                Value.Float (Float.of_int (Rng.int rng 1000)));
          ph_query_of = Stream.range_query_of ~lo_max:(p.f -. width) ~width;
        })
      phases
  in
  let ops_phases = Stream.generate_phased ~rng ~tuples phase_streams in
  let first_tid = Tuple.peek tids in
  let run which =
    let ctx = fresh_ctx ?sanitize p ~first_tid in
    let env =
      {
        Strategy_sp.ctx;
        view = dataset.m1_view;
        initial = dataset.m1_tuples;
        ad_buckets = ad_buckets_for p;
      }
    in
    let strategy, handle =
      match which with
      | `Deferred -> (Strategy_sp.deferred env, None)
      | `Immediate -> (Strategy_sp.immediate env, None)
      | `Clustered -> (Strategy_sp.qmod_clustered env, None)
      | `Unclustered -> (Strategy_sp.qmod_unclustered env, None)
      | `Sequential -> (Strategy_sp.qmod_sequential env, None)
      | `Recompute -> (Strategy_sp.recompute env, None)
      | `Adaptive ->
          let a =
            Adaptive.wrap ?config:adaptive_config ?candidates:adaptive_candidates
              ?initial_kind:adaptive_initial env
          in
          (Adaptive.strategy a, Some a)
    in
    let strategy = apply_wrap wrap ~ctx ~initial:dataset.m1_tuples strategy in
    let per_phase, overall = Runner.run_phases ?recorder ~ctx ~strategy ~phases:ops_phases () in
    {
      ph_name = overall.Runner.strategy_name;
      ph_per_phase = per_phase;
      ph_overall = overall;
      ph_adaptive = handle;
    }
  in
  List.map run strategies

let c_col = 3 (* R1(id, pval, jkey, c) *)

let measure_model2 ?(seed = 42) ?recorder ?sanitize ?wrap (p : Params.t) strategies =
  let rng = Rng.create seed in
  let tids = Tuple.source () in
  let n, k, l, q = ints p in
  let dataset =
    Dataset.make_model2 ~rng ~tids ~n ~f:p.f ~f_r2:p.f_r2
      ~s_bytes:(int_of_float p.tuple_bytes)
  in
  let tuples = Array.of_list dataset.m2_left_tuples in
  let width = p.f *. p.fv in
  let ops =
    Stream.generate ~rng ~tuples
      ~mutate:
        (Stream.mutate_column ~tids ~col:c_col (fun rng ->
             Value.Str (Printf.sprintf "c%06d" (Rng.int rng 1_000_000))))
      ~k ~l ~q
      ~query_of:(Stream.range_query_of ~lo_max:(p.f -. width) ~width)
  in
  let r2_buckets = max 1 (int_of_float (ceil (p.f_r2 *. Params.blocks p))) in
  let first_tid = Tuple.peek tids in
  let run which =
    let ctx = fresh_ctx ?sanitize p ~first_tid in
    let env =
      {
        Strategy_join.ctx;
        view = dataset.m2_view;
        initial_left = dataset.m2_left_tuples;
        initial_right = dataset.m2_right_tuples;
        ad_buckets = ad_buckets_for p;
        r2_buckets;
      }
    in
    let strategy =
      match which with
      | `Deferred -> Strategy_join.deferred env
      | `Immediate -> Strategy_join.immediate env
      | `Loopjoin -> Strategy_join.qmod_loopjoin env
    in
    (* The change stream only touches the left relation, so the durable
       wrapper's catalog seeds from it. *)
    let strategy = apply_wrap wrap ~ctx ~initial:dataset.m2_left_tuples strategy in
    let m = Runner.run ?recorder ~ctx ~strategy ~ops () in
    (m.Runner.strategy_name, m)
  in
  List.map run strategies

let measure_model3 ?(seed = 42) ?recorder ?sanitize ?wrap ?(kind = `Sum "amount")
    (p : Params.t) strategies =
  let rng = Rng.create seed in
  let tids = Tuple.source () in
  let n, _, _, _ = ints p in
  let dataset =
    Dataset.make_model3 ~rng ~tids ~n ~f:p.f ~s_bytes:(int_of_float p.tuple_bytes) ~kind
  in
  let ops =
    model1_stream ~rng ~tids ~p
      {
        Dataset.m1_schema = dataset.m3_schema;
        m1_view = dataset.m3_agg.View_def.a_over;
        m1_tuples = dataset.m3_tuples;
      }
  in
  let first_tid = Tuple.peek tids in
  let run which =
    let ctx = fresh_ctx ?sanitize p ~first_tid in
    let env =
      {
        Strategy_agg.ctx;
        agg = dataset.m3_agg;
        initial = dataset.m3_tuples;
        ad_buckets = ad_buckets_for p;
      }
    in
    let strategy =
      match which with
      | `Deferred -> Strategy_agg.deferred env
      | `Immediate -> Strategy_agg.immediate env
      | `Recompute -> Strategy_agg.recompute env
    in
    let strategy = apply_wrap wrap ~ctx ~initial:dataset.m3_tuples strategy in
    let m = Runner.run ?recorder ~ctx ~strategy ~ops () in
    (m.Runner.strategy_name, m)
  in
  List.map run strategies
