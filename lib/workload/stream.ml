open Vmat_storage
open Vmat_util
open Vmat_view

type op = Txn of Strategy.change list | Query of Strategy.query

let generate ~rng ~tuples ~mutate ~k ~l ~q ~query_of =
  if k < 0 || l <= 0 || q < 0 then invalid_arg "Stream.generate: bad k/l/q";
  let total = k + q in
  let ops = ref [] in
  for i = 0 to total - 1 do
    (* Bresenham-style even spacing of the q queries among k + q slots. *)
    let is_query = (i + 1) * q / total > i * q / total in
    if is_query then ops := Query (query_of rng) :: !ops
    else begin
      let population = Array.length tuples in
      let indices = Rng.sample_without_replacement rng ~n:population ~k:(min l population) in
      let changes =
        List.map
          (fun idx ->
            let old_tuple = tuples.(idx) in
            let new_tuple = mutate rng old_tuple in
            tuples.(idx) <- new_tuple;
            Strategy.modify ~old_tuple ~new_tuple)
          indices
      in
      ops := Txn changes :: !ops
    end
  done;
  List.rev !ops

type phase = {
  ph_k : int;
  ph_l : int;
  ph_q : int;
  ph_mutate : Rng.t -> Tuple.t -> Tuple.t;
  ph_query_of : Rng.t -> Strategy.query;
}

let generate_phased ~rng ~tuples phases =
  if List.is_empty phases then invalid_arg "Stream.generate_phased: no phases";
  List.map
    (fun ph ->
      generate ~rng ~tuples ~mutate:ph.ph_mutate ~k:ph.ph_k ~l:ph.ph_l ~q:ph.ph_q
        ~query_of:ph.ph_query_of)
    phases

let mutate_column ~tids ~col draw rng tuple =
  Tuple.with_tid (Tuple.set tuple col (draw rng)) (Tuple.next tids)

let range_query_of ~lo_max ~width rng =
  let lo = Rng.float rng *. Float.max 0. lo_max in
  { Strategy.q_lo = Value.Float lo; q_hi = Value.Float (lo +. width) }

let count_ops ops =
  List.fold_left
    (fun (txns, queries) -> function
      | Txn _ -> (txns + 1, queries)
      | Query _ -> (txns, queries + 1))
    (0, 0) ops

type fleet_op = Ftxn of Strategy.change list | Fquery of int * Strategy.query

let zipf_weights ~n ~s =
  if n <= 0 then invalid_arg "Stream.zipf_weights: no views";
  if s < 0. then invalid_arg "Stream.zipf_weights: negative exponent";
  let raw = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0. raw in
  Array.map (fun w -> w /. total) raw

(* Inverse-CDF draw over the (already normalized) weights. *)
let pick_weighted rng weights =
  let u = Rng.float rng in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.

let generate_fleet ~rng ~tuples ~mutate ~views ~zipf_s ~k ~l ~q ~query_of =
  if k < 0 || l <= 0 || q < 0 then invalid_arg "Stream.generate_fleet: bad k/l/q";
  let weights = zipf_weights ~n:views ~s:zipf_s in
  let total = k + q in
  let ops = ref [] in
  for i = 0 to total - 1 do
    let is_query = (i + 1) * q / total > i * q / total in
    if is_query then begin
      let v = pick_weighted rng weights in
      ops := Fquery (v, query_of rng v) :: !ops
    end
    else begin
      let population = Array.length tuples in
      let indices = Rng.sample_without_replacement rng ~n:population ~k:(min l population) in
      let changes =
        List.map
          (fun idx ->
            let old_tuple = tuples.(idx) in
            let new_tuple = mutate rng old_tuple in
            tuples.(idx) <- new_tuple;
            Strategy.modify ~old_tuple ~new_tuple)
          indices
      in
      ops := Ftxn changes :: !ops
    end
  done;
  List.rev !ops

let count_fleet_ops ops =
  List.fold_left
    (fun (txns, queries) -> function
      | Ftxn _ -> (txns + 1, queries)
      | Fquery _ -> (txns, queries + 1))
    (0, 0) ops
