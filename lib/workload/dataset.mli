(** Synthetic datasets matching the paper's workload models.  All data is
    derived from a deterministic RNG, so every experiment is reproducible.

    The Model 1/3 base relation is [R(id, pval, amount, note)] with [pval]
    uniform on [0, 1) (so the view predicate [pval < f] has selectivity [f])
    and tuples of [s_bytes] bytes; the view projects half the attributes
    ([pval, amount]) clustered on [pval].  The Model 2 pair adds
    [R1.jkey] drawn uniformly from the key column of
    [R2(jkey, weight, tag)], so every [R1] tuple joins exactly one [R2]
    tuple. *)

open Vmat_storage
open Vmat_util
open Vmat_view

type model1 = {
  m1_schema : Schema.t;
  m1_view : View_def.sp;
  m1_tuples : Tuple.t list;
}

val make_model1 :
  rng:Rng.t -> tids:Tuple.source -> n:int -> f:float -> s_bytes:int -> model1

type model2 = {
  m2_left : Schema.t;
  m2_right : Schema.t;
  m2_view : View_def.join;
  m2_left_tuples : Tuple.t list;
  m2_right_tuples : Tuple.t list;
}

val make_model2 :
  rng:Rng.t ->
  tids:Tuple.source ->
  n:int ->
  f:float ->
  f_r2:float ->
  s_bytes:int ->
  model2

type model3 = {
  m3_schema : Schema.t;
  m3_agg : View_def.agg;
  m3_tuples : Tuple.t list;
}

val make_model3 :
  rng:Rng.t ->
  tids:Tuple.source ->
  n:int ->
  f:float ->
  s_bytes:int ->
  kind:[ `Count | `Sum of string | `Avg of string | `Variance of string | `Min of string | `Max of string ] ->
  model3
(** The aggregated column for non-count kinds should be ["amount"]. *)
