(** Domain-parallel execution of independent sweep points.

    Every point of a parameter sweep is an isolated simulation: it builds its
    own {!Vmat_storage.Ctx.t} (meter, disk, tid source, RNG), so no state is
    shared between points and they may run on separate domains.  The contract
    is strict determinism: [map_points ~jobs f points] returns {e exactly}
    [List.map f points] for every [jobs], including which exception is raised
    when [f] fails — so a [--jobs 4] sweep writes byte-identical CSV/JSON to
    a [--jobs 1] sweep.

    Each [f point] call must be self-contained: derive the point's seed with
    {!split_seeds} up front (never from a generator shared across points) and
    build all mutable state inside [f].  Uses the stdlib [Domain] module
    only; no extra dependencies. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: a sensible [--jobs 0] default. *)

val split_seeds : root:int -> int -> int list
(** [split_seeds ~root n] derives [n] independent RNG seeds from one root
    seed by repeatedly splitting a SplitMix64 generator.  Depends only on
    [root] and the position in the list — never on scheduling — so seed
    assignment is identical under any [jobs]. *)

val map_points : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_points ~jobs f points] is [List.map f points] computed by [jobs]
    domains pulling points off a shared atomic cursor (order-preserving
    results; [jobs] is clamped to [[1, length points]]).  [jobs = 1] (the
    default) runs serially on the calling domain with no spawns at all.
    @raise Invalid_argument when [jobs] is negative. *)
