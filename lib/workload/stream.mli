(** Operation streams: [k] update transactions of [l] tuple modifications
    each, evenly interleaved with [q] view queries (so that [u = kl/q]
    tuples change between consecutive queries, as the analysis assumes).
    The stream is materialized once and replayed verbatim against every
    strategy, which keeps measured comparisons apples-to-apples. *)

open Vmat_storage
open Vmat_util
open Vmat_view

type op = Txn of Strategy.change list | Query of Strategy.query

val generate :
  rng:Rng.t ->
  tuples:Tuple.t array ->
  mutate:(Rng.t -> Tuple.t -> Tuple.t) ->
  k:int ->
  l:int ->
  q:int ->
  query_of:(Rng.t -> Strategy.query) ->
  op list
(** [tuples] is the live population; it is updated in place as the stream is
    generated so later transactions modify current versions.  [mutate] must
    return a fresh-tid new version of the tuple. *)

type phase = {
  ph_k : int;  (** update transactions in this phase *)
  ph_l : int;  (** tuples modified per transaction *)
  ph_q : int;  (** view queries in this phase *)
  ph_mutate : Rng.t -> Tuple.t -> Tuple.t;
  ph_query_of : Rng.t -> Strategy.query;
}
(** One segment of a phase-shifting workload. *)

val generate_phased : rng:Rng.t -> tuples:Tuple.t array -> phase list -> op list list
(** Generate each phase with {!generate} over the {e same} live tuple
    population, so later phases modify the tuple versions earlier phases
    produced.  Returns one op list per phase (concatenate for a single
    stream; keep separate for per-phase measurement with
    {!Runner.run_phases}).  @raise Invalid_argument on an empty phase
    list or a bad [k]/[l]/[q]. *)

val mutate_column :
  tids:Tuple.source -> col:int -> (Rng.t -> Value.t) -> Rng.t -> Tuple.t -> Tuple.t
(** Standard mutation: replace one column with a newly drawn value (drawing
    the new tuple version's tid from [tids]). *)

val range_query_of : lo_max:float -> width:float -> Rng.t -> Strategy.query
(** A query over [pval in [x, x + width]] with [x] uniform on
    [[0, lo_max]] — retrieving the fraction [fv] of a view of selectivity
    [f] when [width = f fv] and [lo_max = f - width]. *)

val count_ops : op list -> int * int
(** [(transactions, queries)]. *)

type fleet_op = Ftxn of Strategy.change list | Fquery of int * Strategy.query
(** A fleet stream op: a shared update transaction, or a range query
    addressed to one view (by fleet index). *)

val zipf_weights : n:int -> s:float -> float array
(** Normalized Zipf(s) popularity over [n] views: weight of view [i] is
    proportional to [1 / (i + 1)^s].  [s = 0.] is uniform.
    @raise Invalid_argument on [n <= 0] or negative [s]. *)

val generate_fleet :
  rng:Rng.t ->
  tuples:Tuple.t array ->
  mutate:(Rng.t -> Tuple.t -> Tuple.t) ->
  views:int ->
  zipf_s:float ->
  k:int ->
  l:int ->
  q:int ->
  query_of:(Rng.t -> int -> Strategy.query) ->
  fleet_op list
(** Like {!generate}, but each query slot first draws a view index from the
    Zipf([zipf_s]) popularity distribution, then draws that view's query via
    [query_of rng view].  The same materialized stream replays verbatim
    against a fleet engine and against isolated per-view engines. *)

val count_fleet_ops : fleet_op list -> int * int
(** [(transactions, queries)]. *)
