(* Triggers and alerters over an incrementally maintained aggregate — the
   application §4 singles out as the best fit for view materialization
   ("materialization could support conditions for complex triggers and
   alerters" [Bune79]).  We watch the total exposure of a trading book
   (sum of amounts where pval < .5) and alert when it crosses limits.

     dune exec examples/alerter.exe *)

open Core

let () =
  let rng = Rng.create 7 in
  let n = 1_000 in
  let ctx = Ctx.create () in
  let meter = Ctx.meter ctx in
  let dataset =
    Dataset.make_model3 ~rng ~tids:(Ctx.tids ctx) ~n ~f:0.5 ~s_bytes:100
      ~kind:(`Sum "amount")
  in
  let initial_value =
    let t =
      Trigger.create ~ctx ~agg:dataset.m3_agg ~initial:dataset.m3_tuples ~conditions:[] ()
    in
    Trigger.current_value t
  in
  let upper = initial_value *. 1.05 and lower = initial_value *. 0.95 in
  let watch =
    Trigger.create ~ctx ~agg:dataset.m3_agg ~initial:dataset.m3_tuples
      ~conditions:[ Trigger.Above upper; Trigger.Below lower ] ()
  in
  Printf.printf "initial exposure: %.0f  (alert above %.0f or below %.0f)\n\n" initial_value
    upper lower;
  let live = Array.of_list dataset.m3_tuples in
  for _ = 1 to 60 do
    let changes =
      List.map
        (fun _ ->
          let idx = Rng.int rng n in
          let old_tuple = live.(idx) in
          let drift = float_of_int (Rng.int rng 400) -. 150. in
          let amount = Float.max 0. (Value.as_float (Tuple.get old_tuple 2) +. drift) in
          let new_tuple =
            Tuple.with_tid (Tuple.set old_tuple 2 (Value.Float amount)) (Ctx.fresh_tid ctx)
          in
          live.(idx) <- new_tuple;
          Strategy.modify ~old_tuple ~new_tuple)
        (List.init 10 Fun.id)
    in
    Trigger.handle_transaction watch changes
  done;
  Printf.printf "after %d transactions: exposure %.0f, %d alert(s)\n"
    (Trigger.transactions watch) (Trigger.current_value watch)
    (List.length (Trigger.events watch));
  List.iter
    (fun event ->
      Printf.printf "  txn %4d: %s (value %.0f)\n" event.Trigger.transaction
        (match event.Trigger.condition with
        | Trigger.Above t -> Printf.sprintf "exposure rose above %.0f" t
        | Trigger.Below t -> Printf.sprintf "exposure fell below %.0f" t
        | Trigger.Nonempty -> "set became non-empty"
        | Trigger.Empty -> "set became empty")
        event.Trigger.value)
    (Trigger.events watch);
  Printf.printf
    "\nevaluating the conditions required the maintained aggregate after every\n\
     transaction; maintenance cost %.0f ms total vs %.0f ms for recomputing the\n\
     aggregate on each of the %d transactions (clustered scan at %.0f ms each).\n"
    (Cost_meter.total_cost ~excluding:[ Cost_meter.Base ] meter)
    (float_of_int (Trigger.transactions watch) *. Model3.total_recompute
       { Params.defaults with Params.n_tuples = float_of_int n; f = 0.5 })
    (Trigger.transactions watch)
    (Model3.total_recompute { Params.defaults with Params.n_tuples = float_of_int n; f = 0.5 })
