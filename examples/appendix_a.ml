(* Appendix A, executed: Blakeley's original refresh expression decrements
   duplicate counts too many times when one transaction deletes joining
   tuples from both relations; Hanson's corrected expression (using
   R' = R − D) does not.

     dune exec examples/appendix_a.exe *)

open Core
open Core.Predicate

let left_schema =
  Schema.make ~name:"R1"
    ~columns:Schema.[ { name = "a"; ty = T_int }; { name = "b"; ty = T_int } ]
    ~tuple_bytes:20 ~key:"a"

let right_schema =
  Schema.make ~name:"R2"
    ~columns:Schema.[ { name = "b"; ty = T_int }; { name = "c"; ty = T_int } ]
    ~tuple_bytes:20 ~key:"b"

let () =
  (* The paper's running example: V = π_{a,c} σ_{R1.a = 5 ∧ R1.b = R2.b}. *)
  let view =
    View_def.make_join ~name:"V" ~left:left_schema ~right:right_schema
      ~left_pred:(Cmp (Eq, Column 0, Const (Value.Int 5)))
      ~on:("b", "b") ~project_left:[ "a" ] ~project_right:[ "c" ] ~cluster:"a"
  in
  let t1 = Tuple.make ~tid:1 [| Value.Int 5; Value.Int 7 |] in
  let t2 = Tuple.make ~tid:2 [| Value.Int 7; Value.Int 99 |] in
  let tids = Tuple.source ~first:3 () in
  let r1 = [ t1 ] and r2 = [ t2 ] in
  let v0 () = Delta.recompute_join ~tids view r1 r2 in
  Format.printf "R1 = { (a=5, b=7) },  R2 = { (b=7, c=99) }@.";
  Format.printf "V0 = %a@.@." Bag.pp (v0 ());

  Format.printf "Transaction deletes t1 from R1 AND t2 from R2.@.@.";

  (* Blakeley's formulation evaluates the deletion terms against the OLD
     relations: D1xD2, D1xR2 and R1xD2 each rediscover the joined tuple. *)
  let blakeley = Delta.join_blakeley ~tids view ~r1 ~r2 ~a1:[] ~d1:[ t1 ] ~a2:[] ~d2:[ t2 ] in
  Format.printf "Blakeley's expression deletes %d time(s):@." (List.length blakeley.del);
  let v_blakeley = v0 () in
  Delta.apply v_blakeley blakeley;
  Format.printf "  resulting view: %a@." Bag.pp v_blakeley;
  Format.printf "  duplicate counts corrupted: %b@.@." (Bag.has_negative_count v_blakeley);

  (* The corrected formulation uses R1' = R1 − D1 and R2' = R2 − D2. *)
  let corrected =
    Delta.join_corrected ~tids view ~r1_prime:[] ~r2_prime:[] ~a1:[] ~d1:[ t1 ] ~a2:[] ~d2:[ t2 ]
  in
  Format.printf "Hanson's corrected expression deletes %d time(s):@."
    (List.length corrected.del);
  let v_corrected = v0 () in
  Delta.apply v_corrected corrected;
  Format.printf "  resulting view: %a@." Bag.pp v_corrected;
  Format.printf "  duplicate counts corrupted: %b@." (Bag.has_negative_count v_corrected);
  assert (not (Bag.has_negative_count v_corrected));
  assert (Bag.total_size v_corrected = 0)
