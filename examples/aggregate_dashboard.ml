(* A "window on a database" (§4): live aggregates over a changing relation,
   maintained incrementally instead of recomputed — the application the paper
   suggests materialization is best suited for.  We keep four aggregates over
   the same Model-1 view and print them after every batch of updates,
   comparing the incremental values against full recomputation and showing
   the cumulative cost of each approach.

     dune exec examples/aggregate_dashboard.exe *)

open Core

let () =
  let rng = Rng.create 2024 in
  let n = 5_000 and f = 0.2 in
  let ctx = Ctx.create () in
  let dataset =
    Dataset.make_model3 ~rng ~tids:(Ctx.tids ctx) ~n ~f ~s_bytes:100 ~kind:(`Sum "amount")
  in
  let kinds =
    [
      ("count", View_def.Count);
      ("sum(amount)", View_def.Sum 2);
      ("avg(amount)", View_def.Avg 2);
      ("max(amount)", View_def.Max 2);
    ]
  in
  let pred = dataset.m3_agg.a_over.sp_pred in
  let states =
    List.map (fun (name, kind) -> (name, Aggregate.of_tuples kind (Ops.select pred dataset.m3_tuples)))
      kinds
  in
  let live = Array.of_list dataset.m3_tuples in
  let meter = Cost_meter.create () in
  let incremental_cost = ref 0. and recompute_cost = ref 0. in
  Format.printf "tick  %12s %14s %14s %14s   (incremental = recomputed?)@."
    "count" "sum" "avg" "max";
  for tick = 1 to 8 do
    (* a batch of 50 random updates *)
    for _ = 1 to 50 do
      let idx = Rng.int rng n in
      let old_tuple = live.(idx) in
      let new_tuple =
        Tuple.with_tid
          (Tuple.set old_tuple 2 (Value.Float (float_of_int (Rng.int rng 1000))))
          (Ctx.fresh_tid ctx)
      in
      live.(idx) <- new_tuple;
      (* screening: only tuples inside the aggregated set touch the states *)
      let screen t = Predicate.eval pred t in
      Cost_meter.charge_predicate_test meter;
      if screen old_tuple then
        List.iter (fun (_, st) -> Aggregate.delete st old_tuple) states;
      if screen new_tuple then
        List.iter (fun (_, st) -> Aggregate.insert st new_tuple) states;
      incremental_cost := !incremental_cost +. 2. (* C1 for both screens *)
    done;
    incremental_cost := !incremental_cost +. 30. (* one page write per batch *);
    (* full recomputation for comparison *)
    let current = Array.to_list live in
    let selected = Ops.select pred current in
    recompute_cost :=
      !recompute_cost
      +. (30. *. ceil (float_of_int (List.length current) /. 40.))
      +. float_of_int (List.length current);
    let recomputed =
      List.map (fun (name, _) ->
          let kind = List.assoc name kinds in
          (name, Aggregate.value (Aggregate.of_tuples kind selected)))
        states
    in
    let ok =
      List.for_all2
        (fun (_, st) (_, expected) -> Float.abs (Aggregate.value st -. expected) < 1e-6)
        states recomputed
    in
    let value name = Aggregate.value (List.assoc name states) in
    Format.printf "%4d  %12.0f %14.1f %14.3f %14.1f   %s@." tick (value "count")
      (value "sum(amount)") (value "avg(amount)") (value "max(amount)")
      (if ok then "yes" else "NO!");
    if not ok then exit 1
  done;
  Format.printf
    "@.Cumulative cost: incremental maintenance %.0f ms vs recompute-per-tick %.0f ms (%.0fx)@."
    !incremental_cost !recompute_cost
    (!recompute_cost /. Float.max 1. !incremental_cost)
