(* Adaptive maintenance: a workload that starts update-heavy (query
   modification's region) and turns query-heavy (materialization's region).
   The adaptive strategy watches its own operation stream, re-evaluates the
   paper's cost model at the observed parameter point, and migrates live —
   ending up close to the best static strategy in every phase.

     dune exec examples/adaptive.exe *)

open Core

let () =
  let p =
    { (Experiment.scale Params.defaults 0.05) with Params.f = 0.5; fv = 0.5 }
  in
  let phases =
    [
      (* phase 1: update-heavy — query modification's region *)
      { Experiment.sp_k = 120; sp_l = 8; sp_q = 12; sp_fv = p.Params.fv };
      (* phase 2: query-heavy — materialization's region *)
      { Experiment.sp_k = 12; sp_l = 8; sp_q = 240; sp_fv = p.Params.fv };
    ]
  in
  let results =
    Experiment.measure_phased p ~phases ~adaptive_initial:Migrate.Qmod_clustered
      [ `Clustered; `Deferred; `Immediate; `Adaptive ]
  in

  Format.printf "Two-phase workload (N = %.0f, f = %.1f, fv = %.1f):@." p.Params.n_tuples
    p.Params.f p.Params.fv;
  Format.printf "  phase 1: 120 txns x 8 tuples, 12 queries (update-heavy)@.";
  Format.printf "  phase 2: 12 txns x 8 tuples, 240 queries (query-heavy)@.@.";
  Format.printf "  %-14s %14s %14s %14s@." "strategy" "phase1 ms/q" "phase2 ms/q"
    "overall ms/q";
  List.iter
    (fun r ->
      let per_phase = List.map (fun m -> m.Runner.cost_per_query) r.Experiment.ph_per_phase in
      match per_phase with
      | [ ph1; ph2 ] ->
          Format.printf "  %-14s %14.1f %14.1f %14.1f@." r.Experiment.ph_name ph1 ph2
            r.Experiment.ph_overall.Runner.cost_per_query
      | _ -> ())
    results;

  (* The adaptive run's internals: what it believed and when it moved. *)
  List.iter
    (fun r ->
      match r.Experiment.ph_adaptive with
      | None -> ()
      | Some a ->
          Format.printf "@.Adaptive decision log (evaluations around the shift):@.";
          let log = Adaptive.decision_log a in
          let interesting i d =
            i < 8 || d.Controller.d_switched
            || List.exists (fun d' -> d'.Controller.d_switched) log
               && List.exists
                    (fun d' ->
                      d'.Controller.d_switched
                      && abs (d'.Controller.d_at_query - d.Controller.d_at_query) <= 8)
                    log
          in
          List.iteri
            (fun i d ->
              if interesting i d then Format.printf "  %a@." Controller.pp_decision d)
            log;
          Format.printf "  ... (%d evaluations total, %d switches)@." (List.length log)
            (Controller.switches (Adaptive.controller a));
          Format.printf "@.Migrations:@.";
          List.iter
            (fun m ->
              Format.printf "  after query %d: %s -> %s (measured %.0f ms)@."
                m.Adaptive.at_query
                (Migrate.kind_name m.Adaptive.from_kind)
                (Migrate.kind_name m.Adaptive.to_kind)
                m.Adaptive.measured_cost)
            (Adaptive.migrations a);
          Format.printf "@.Final observer state: %a@." Wstats.pp (Adaptive.wstats a))
    results
