(* Golden fixtures for the vmlint rules (DESIGN §8): each rule must fire on
   a minimal violating program and stay silent on the idiomatic fix.  The
   fixtures go through [Driver.lint_string], so no filesystem is involved
   and the expected findings are pinned down to rule id and count. *)

module Driver = Vmat_analysis.Driver
module Finding = Vmat_analysis.Finding
module Allowlist = Vmat_analysis.Allowlist

let lint ?(file = "lib/fixture.ml") source = Driver.lint_string ~file source

let rules_fired findings =
  List.sort_uniq String.compare (List.map (fun f -> f.Finding.rule) findings)

let check_fires ~what ~rule source =
  let fired = rules_fired (lint source) in
  if not (List.mem rule fired) then
    Alcotest.failf "%s: expected %s to fire, got [%s]" what rule
      (String.concat "; " fired)

let check_silent ~what ?file source =
  let findings = lint ?file source in
  if not (List.is_empty findings) then
    Alcotest.failf "%s: expected no findings, got: %s" what
      (String.concat " | " (List.map Finding.to_human findings))

(* ------------------------------------------------------------------ *)
(* D1: module-level mutable state                                      *)
(* ------------------------------------------------------------------ *)

let test_d1_fires () =
  check_fires ~what:"toplevel ref" ~rule:"D1" "let counter = ref 0";
  check_fires ~what:"toplevel hashtable" ~rule:"D1"
    "let cache = Hashtbl.create 16";
  check_fires ~what:"toplevel array" ~rule:"D1" "let slots = Array.make 8 0";
  check_fires ~what:"ref under let-in" ~rule:"D1"
    "let table = let n = 4 in ref n";
  check_fires ~what:"lazy mutable" ~rule:"D1"
    "let memo = lazy (Array.make 64 0.)";
  check_fires ~what:"mutable record literal" ~rule:"D1"
    "type s = { mutable hits : int }\nlet stats = { hits = 0 }"

let test_d1_silent () =
  check_silent ~what:"ref under lambda"
    "let make_counter () = ref 0\nlet use c = incr c";
  check_silent ~what:"immutable toplevel" "let names = [ \"a\"; \"b\" ]";
  check_silent ~what:"record without mutable fields"
    "type s = { hits : int }\nlet stats = { hits = 0 }"

(* ------------------------------------------------------------------ *)
(* D2: ambient nondeterminism                                          *)
(* ------------------------------------------------------------------ *)

let test_d2_fires () =
  check_fires ~what:"global Random" ~rule:"D2"
    "let draw () = Random.int 10";
  check_fires ~what:"wall clock" ~rule:"D2" "let now () = Sys.time ()";
  check_fires ~what:"Unix clock" ~rule:"D2"
    "let now () = Unix.gettimeofday ()";
  check_fires ~what:"polymorphic hash" ~rule:"D2"
    "let h key = Hashtbl.hash key"

let test_d2_silent () =
  check_silent ~what:"monomorphic String.hash"
    "let h key = String.hash key";
  (* The one blessed wrapper around randomness is exempt by path. *)
  check_silent ~what:"rng.ml exemption" ~file:"lib/util/rng.ml"
    "let draw () = Random.int 10"

(* ------------------------------------------------------------------ *)
(* D3: hash order escaping into ordered output                         *)
(* ------------------------------------------------------------------ *)

let test_d3_fires () =
  check_fires ~what:"fold building list" ~rule:"D3"
    "let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []";
  check_fires ~what:"iter building string" ~rule:"D3"
    "let dump t b = Hashtbl.iter (fun k _ -> ignore (k ^ \",\")) t"

let test_d3_silent () =
  check_silent ~what:"fold under canonical sort"
    "let keys t =\n\
    \  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])";
  check_silent ~what:"fold accumulating a scalar"
    "let total t = Hashtbl.fold (fun _ v acc -> acc + v) t 0"

(* ------------------------------------------------------------------ *)
(* D4: polymorphic comparison                                          *)
(* ------------------------------------------------------------------ *)

let test_d4_fires () =
  check_fires ~what:"= []" ~rule:"D4" "let empty xs = xs = []";
  check_fires ~what:"<> []" ~rule:"D4" "let nonempty xs = xs <> []";
  check_fires ~what:"bare compare" ~rule:"D4"
    "let sorted xs = List.sort compare xs";
  check_fires ~what:"poly = on Tuple.get" ~rule:"D4"
    "let same t u = Tuple.get t 0 = Tuple.get u 0";
  check_fires ~what:"List.mem on Value" ~rule:"D4"
    "let has v vs = List.mem (Value.Int v) vs"

let test_d4_silent () =
  check_silent ~what:"List.is_empty" "let empty xs = List.is_empty xs";
  check_silent ~what:"monomorphic comparator"
    "let sorted xs = List.sort String.compare xs";
  check_silent ~what:"Value.equal"
    "let same a b = Value.equal a b";
  (* Map/Set functor-argument idiom: the file's own compare is fine. *)
  check_silent ~what:"file defining compare"
    "let compare a b = Stdlib.Int.compare a b\nlet sorted xs = List.sort compare xs"

(* ------------------------------------------------------------------ *)
(* D5: ctx-discipline for meter access                                 *)
(* ------------------------------------------------------------------ *)

let test_d5_fires () =
  check_fires ~what:"toplevel meter" ~rule:"D5"
    "let meter = Cost_meter.create ()\n\
     let f () = Cost_meter.charge_read meter";
  check_fires ~what:"qualified ambient meter" ~rule:"D5"
    "let f () = Cost_meter.charge_write Globals.meter"

let test_d5_silent () =
  check_silent ~what:"meter from parameter"
    "let f meter = Cost_meter.charge_read meter";
  check_silent ~what:"meter through ctx parameter"
    "let f ctx = Cost_meter.charge_read (Ctx.meter ctx)";
  check_silent ~what:"meter from env field"
    "let f env = Cost_meter.charge_write env.meter"

(* ------------------------------------------------------------------ *)
(* D6: registry-domain discipline                                      *)
(* ------------------------------------------------------------------ *)

let test_d6_fires () =
  check_fires ~what:"metrics mutation in spawn" ~rule:"D6"
    "let f m = Domain.spawn (fun () -> Metrics.inc m 1.)";
  check_fires ~what:"recorder gauge in spawn" ~rule:"D6"
    "let f r = Domain.spawn (fun () -> Recorder.set_gauge r \"g\" 1.)";
  check_fires ~what:"trace instant nested in spawn closure" ~rule:"D6"
    "let f tr work =\n\
    \  Domain.spawn (fun () -> List.iter (fun x -> Trace.instant tr x) work)";
  check_fires ~what:"fully qualified mutator in spawn" ~rule:"D6"
    "let f m = Domain.spawn (fun () -> Vmat_obs.Metrics.observe m 3.)"

let test_d6_silent () =
  check_silent ~what:"flight ring in spawn"
    "let f ring ev = Domain.spawn (fun () -> Flight.append ring ev)";
  check_silent ~what:"sketch in spawn"
    "let f sk keys = Domain.spawn (fun () -> List.iter (Sketch.observe sk) keys)";
  check_silent ~what:"mutator outside any spawn" "let f m = Metrics.inc m 1.";
  check_silent ~what:"mutator after the join"
    "let f m d =\n  Domain.join d;\n  Metrics.inc m 1."

(* ------------------------------------------------------------------ *)
(* D7: scan-loop hygiene (lib/view, lib/relalg only)                    *)
(* ------------------------------------------------------------------ *)

let test_d7_fires () =
  let lint_view source = lint ~file:"lib/view/fixture.ml" source in
  let fires ~what source =
    let fired = rules_fired (lint_view source) in
    if not (List.mem "D7" fired) then
      Alcotest.failf "%s: expected D7 to fire, got [%s]" what
        (String.concat "; " fired)
  in
  fires ~what:"materialize in range_views closure"
    "let f base lo hi out =\n\
    \  Btree.range_views base ~lo ~hi (fun v ->\n\
    \      out := Tuple_view.materialize v :: !out)";
  fires ~what:"Tuple.make in scan_views closure"
    "let f heap out =\n\
    \  Heap_file.scan_views heap (fun v ->\n\
    \      out := Tuple.make ~tid:0 [| Tuple_view.get v 0 |] :: !out)";
  fires ~what:"Tuple.project in lookup_views closure"
    "let f hash key out =\n\
    \  Hash_file.lookup_views hash key (fun v ->\n\
    \      out := Tuple.project (Tuple_view.materialize v) [| 0 |] :: !out)";
  fires ~what:"Array.map nested under iterator closure"
    "let f base g =\n\
    \  Btree.iter_views_unmetered base (fun v ->\n\
    \      ignore (Array.map g (Tuple_view.cells v)))";
  fires ~what:"qualified iterator head"
    "let f base lo hi out =\n\
    \  Vmat_index.Btree.range_views base ~lo ~hi (fun v ->\n\
    \      out := Tuple_view.materialize v :: !out)"

let test_d7_silent () =
  check_silent ~what:"cursor-only closure" ~file:"lib/view/fixture.ml"
    "let f base lo hi n =\n\
    \  Btree.range_views base ~lo ~hi (fun v ->\n\
    \      if Tuple_view.compare_col v 0 lo >= 0 then incr n)";
  check_silent ~what:"materializer outside any iterator"
    ~file:"lib/view/fixture.ml"
    "let f v = Tuple_view.materialize v";
  check_silent ~what:"out of scope (lib/index)" ~file:"lib/index/fixture.ml"
    "let f base lo hi out =\n\
    \  Btree.range_views base ~lo ~hi (fun v ->\n\
    \      out := Tuple_view.materialize v :: !out)";
  check_silent ~what:"out of scope (default fixture path)"
    "let f base lo hi out =\n\
    \  Btree.range_views base ~lo ~hi (fun v ->\n\
    \      out := Tuple_view.materialize v :: !out)"

(* ------------------------------------------------------------------ *)
(* D8: borrow discipline for zero-copy cursors (interprocedural)       *)
(* ------------------------------------------------------------------ *)

let test_d8_fires () =
  check_fires ~what:"cursor into a ref" ~rule:"D8"
    "let scan base out =\n\
    \  Btree.iter_views_unmetered base (fun v -> out := v :: !out)";
  check_fires ~what:"cursor into a mutable field" ~rule:"D8"
    "type s = { mutable last : Tuple_view.t option }\n\
     let scan base s =\n\
    \  Heap_file.scan_views base (fun v -> s.last <- Some v)";
  check_fires ~what:"cursor captured by stored closure" ~rule:"D8"
    "let scan base q =\n\
    \  Btree.iter_views_unmetered base (fun v ->\n\
    \      Queue.add (fun () -> Tuple_view.get v 0) q)";
  (* The acceptance fixture: the cursor escapes through a helper two calls
     deep — only the summary fixpoint can see it. *)
  check_fires ~what:"escape two calls deep" ~rule:"D8"
    "let save out v = out := v :: !out\n\
     let relay out v = save out v\n\
     let scan base out =\n\
    \  Btree.iter_views_unmetered base (fun v -> relay out v)"

let test_d8_silent () =
  check_silent ~what:"boxed at the boundary"
    "let scan base out =\n\
    \  Btree.iter_views_unmetered base (fun v ->\n\
    \      out := Tuple_view.materialize v :: !out)";
  check_silent ~what:"fixed two-deep helper boxes first"
    "let save out t = out := t :: !out\n\
     let relay out t = save out t\n\
     let scan base out =\n\
    \  Btree.iter_views_unmetered base (fun v ->\n\
    \      relay out (Tuple_view.materialize v))";
  check_silent ~what:"compare/key reads never escape"
    "let count base n lo =\n\
    \  Btree.iter_views_unmetered base (fun v ->\n\
    \      if Tuple_view.compare_col v 0 lo >= 0 then incr n)";
  check_silent ~what:"helper that only reads the cursor"
    "let wide v = Tuple_view.arity v > 4\n\
     let count base n =\n\
    \  Heap_file.scan_views base (fun v -> if wide v then incr n)"

(* The summary fixpoint terminates on mutual recursion (the pass cap is a
   backstop, not the convergence argument) and the converged summaries stay
   precise: the mutually-recursive pair only boxes, so nothing fires. *)
let test_d8_mutual_recursion_fixpoint () =
  check_silent ~what:"mutually recursive helpers converge"
    "let rec ping out k v =\n\
    \  if Tuple_view.compare_col v 0 k >= 0 then pong out k v\n\
    \  else out := Tuple_view.materialize v :: !out\n\
     and pong out k v = ping out k v\n\
     let scan base out k =\n\
    \  Btree.iter_views_unmetered base (fun v -> ping out k v)";
  check_fires ~what:"mutually recursive escape still found" ~rule:"D8"
    "let rec ping out k v =\n\
    \  if Tuple_view.compare_col v 0 k >= 0 then pong out k v\n\
    \  else out := v :: !out\n\
     and pong out k v = ping out k v\n\
     let scan base out k =\n\
    \  Btree.iter_views_unmetered base (fun v -> ping out k v)"

(* ------------------------------------------------------------------ *)
(* D9: no mutation while borrowed                                      *)
(* ------------------------------------------------------------------ *)

let test_d9_fires () =
  check_fires ~what:"delete under live scan" ~rule:"D9"
    "let purge heap =\n\
    \  Heap_file.scan_views heap (fun v ->\n\
    \      Heap_file.delete heap (Tuple_view.tid v))";
  check_fires ~what:"pool traffic under live scan" ~rule:"D9"
    "let f base pool page =\n\
    \  Btree.iter_views_unmetered base (fun v ->\n\
    \      ignore (Buffer_pool.read pool page))";
  (* Interprocedural: the mutator hides behind a local helper. *)
  check_fires ~what:"mutator behind a helper" ~rule:"D9"
    "let drop heap tid = Heap_file.delete heap tid\n\
     let purge heap =\n\
    \  Heap_file.scan_views heap (fun v -> drop heap (Tuple_view.tid v))"

let test_d9_silent () =
  check_silent ~what:"collect tids, mutate after the scan"
    "let purge heap =\n\
    \  let doomed = ref [] in\n\
    \  Heap_file.scan_views heap (fun v ->\n\
    \      doomed := Tuple_view.tid v :: !doomed);\n\
    \  List.iter (fun tid -> Heap_file.delete heap tid) !doomed";
  check_silent ~what:"read-only helper under the scan"
    "let keep v = Tuple_view.arity v > 2\n\
     let count heap n =\n\
    \  Heap_file.scan_views heap (fun v -> if keep v then incr n)"

(* ------------------------------------------------------------------ *)
(* D10: domain-capture races                                           *)
(* ------------------------------------------------------------------ *)

let test_d10_fires () =
  (* The acceptance fixture: a Hashtbl captured by a spawned closure. *)
  check_fires ~what:"Hashtbl capture" ~rule:"D10"
    "let f () =\n\
    \  let tbl = Hashtbl.create 16 in\n\
    \  let d = Domain.spawn (fun () -> Hashtbl.add tbl 1 2) in\n\
    \  Hashtbl.add tbl 3 4;\n\
    \  Domain.join d";
  check_fires ~what:"captured ref" ~rule:"D10"
    "let f () =\n\
    \  let hits = ref 0 in\n\
    \  let d = Domain.spawn (fun () -> incr hits) in\n\
    \  Domain.join d;\n\
    \  !hits";
  check_fires ~what:"capture through a local helper" ~rule:"D10"
    "let f () =\n\
    \  let q = Queue.create () in\n\
    \  let work () = Queue.push 1 q in\n\
    \  Domain.spawn work"

let test_d10_silent () =
  check_silent ~what:"sanctioned Atomic capture"
    "let f () =\n\
    \  let total = Atomic.make 0 in\n\
    \  let d = Domain.spawn (fun () -> Atomic.set total 1) in\n\
    \  Domain.join d;\n\
    \  Atomic.get total";
  check_silent ~what:"sanctioned Flight/Sketch captures"
    "let f ev keys =\n\
    \  let ring = Flight.create ~capacity:64 ~label:\"w\" () in\n\
    \  let sk = Sketch.create ~capacity:32 () in\n\
    \  Domain.spawn (fun () ->\n\
    \      Flight.append ring ev;\n\
    \      List.iter (Sketch.observe sk) keys)";
  check_silent ~what:"state created inside the domain"
    "let f () =\n\
    \  Domain.spawn (fun () ->\n\
    \      let tbl = Hashtbl.create 16 in\n\
    \      Hashtbl.add tbl 1 2)";
  check_silent ~what:"immutable capture"
    "let f xs = Domain.spawn (fun () -> List.length xs)"

(* ------------------------------------------------------------------ *)
(* Infrastructure: parse errors, allowlist                             *)
(* ------------------------------------------------------------------ *)

let test_parse_error () =
  match lint "let let let" with
  | [ f ] ->
      Alcotest.(check string) "rule" "PARSE" f.Finding.rule;
      Alcotest.(check bool) "severity" true (f.Finding.severity = Finding.Error)
  | other -> Alcotest.failf "expected one PARSE finding, got %d" (List.length other)

let finding rule file line =
  { Finding.rule; severity = Finding.Error; file; line; col = 0; message = "m" }

let test_allowlist_matching () =
  let allowlist =
    match
      Allowlist.of_string
        "# comment\n\
         D1 lib/storage/cost_meter.ml:28 read-only lookup table\n\
         D3 bag.ml caller re-sorts\n"
    with
    | Ok entries -> entries
    | Error message -> Alcotest.failf "allowlist parse: %s" message
  in
  Alcotest.(check bool) "rule+path+line match" true
    (Allowlist.matches allowlist (finding "D1" "lib/storage/cost_meter.ml" 28));
  Alcotest.(check bool) "wrong line" false
    (Allowlist.matches allowlist (finding "D1" "lib/storage/cost_meter.ml" 99));
  Alcotest.(check bool) "wrong rule" false
    (Allowlist.matches allowlist (finding "D2" "lib/storage/cost_meter.ml" 28));
  Alcotest.(check bool) "path suffix match" true
    (Allowlist.matches allowlist (finding "D3" "lib/relalg/bag.ml" 7));
  Alcotest.(check bool) "suffix needs / boundary" false
    (Allowlist.matches allowlist (finding "D3" "lib/relalg/notbag.ml" 7))

let test_allowlist_unused_and_errors () =
  (match Allowlist.of_string "D1 lib/a.ml justified\nD2 lib/b.ml never hit\n" with
  | Ok allowlist ->
      ignore (Allowlist.matches allowlist (finding "D1" "lib/a.ml" 3));
      let unused = Allowlist.unused allowlist in
      Alcotest.(check int) "one unused" 1 (List.length unused);
      Alcotest.(check string) "unused is D2" "D2"
        (List.hd unused).Allowlist.rule
  | Error message -> Alcotest.failf "allowlist parse: %s" message);
  match Allowlist.of_string "D1 missing-justification\n" with
  | Ok _ -> Alcotest.fail "entry without justification should be rejected"
  | Error _ -> ()

let test_filter_allowed () =
  let findings = lint "let counter = ref 0" in
  Alcotest.(check bool) "fixture fires" false (List.is_empty findings);
  let allowlist =
    match Allowlist.of_string "D1 lib/fixture.ml deliberate fixture\n" with
    | Ok entries -> entries
    | Error message -> Alcotest.failf "allowlist parse: %s" message
  in
  Alcotest.(check int) "all suppressed" 0
    (List.length (Driver.filter_allowed allowlist findings))

let test_allowlist_unknown_rules () =
  match Allowlist.of_string "D1 lib/a.ml fine\nD99 lib/b.ml typo'd rule id\n" with
  | Ok allowlist ->
      let bad = Allowlist.unknown_rules ~known:Driver.rule_ids allowlist in
      Alcotest.(check int) "one unknown" 1 (List.length bad);
      Alcotest.(check string) "the typo'd one" "D99" (List.hd bad).Allowlist.rule;
      Alcotest.(check int) "current ids all known" 0
        (List.length (Allowlist.unknown_rules ~known:Driver.rule_ids
           (match Allowlist.of_string "D8 lib/a.ml x\nD10 lib/b.ml y\n" with
           | Ok e -> e
           | Error m -> Alcotest.failf "parse: %s" m)))
  | Error message -> Alcotest.failf "allowlist parse: %s" message

(* Every rule ships its own documentation: a doc line, a minimal firing
   example, and a fix (the payload of [vmlint --explain]).  The example is
   kept honest by linting it: it must fire its own rule. *)
let test_rule_examples_fire () =
  List.iter
    (fun rule ->
      let module Rule = Vmat_analysis.Rule in
      Alcotest.(check bool)
        (rule.Rule.id ^ " has doc") false (String.length rule.Rule.doc = 0);
      Alcotest.(check bool)
        (rule.Rule.id ^ " has fix") false (String.length rule.Rule.fix = 0);
      let fired =
        rules_fired (lint ~file:"lib/view/fixture.ml" rule.Rule.example)
      in
      if not (List.mem rule.Rule.id fired) then
        Alcotest.failf "%s: its own --explain example does not fire it (got [%s])"
          rule.Rule.id
          (String.concat "; " fired))
    Driver.all_rules

let test_finding_format () =
  let f = finding "D1" "lib/x.ml" 3 in
  Alcotest.(check string) "human line" "lib/x.ml:3:0 · D1 · m [error]"
    (Finding.to_human f);
  let json = Finding.list_to_json [ f ] in
  Alcotest.(check bool) "json mentions rule" true
    (Astring.String.is_infix ~affix:"\"rule\":\"D1\"" json)

(* The self-test that keeps the analyzer honest about its own tree: the
   checked-in .vmlint suppresses every remaining finding, and carries no
   stale entries.  Only meaningful when run from the repo root (dune's test
   sandbox has no lib/); CI's lint job is the authoritative enforcement. *)
let test_lint_own_tree () =
  if not (Sys.file_exists ".vmlint" && Sys.file_exists "lib") then ()
  else begin
  let findings = Driver.lint_paths [ "lib" ] in
  let allowlist =
    match Allowlist.load ".vmlint" with
    | Ok entries -> entries
    | Error message -> Alcotest.failf ".vmlint: %s" message
  in
  let kept = Driver.filter_allowed allowlist findings in
  if not (List.is_empty kept) then
    Alcotest.failf "unsuppressed findings on lib/: %s"
      (String.concat " | " (List.map Finding.to_human kept));
  Alcotest.(check int) "no stale allowlist entries" 0
    (List.length (Allowlist.unused allowlist))
  end

let suites =
  [
    ( "analysis",
      Alcotest.
        [
          test_case "D1 fires" `Quick test_d1_fires;
          test_case "D1 silent" `Quick test_d1_silent;
          test_case "D2 fires" `Quick test_d2_fires;
          test_case "D2 silent" `Quick test_d2_silent;
          test_case "D3 fires" `Quick test_d3_fires;
          test_case "D3 silent" `Quick test_d3_silent;
          test_case "D4 fires" `Quick test_d4_fires;
          test_case "D4 silent" `Quick test_d4_silent;
          test_case "D5 fires" `Quick test_d5_fires;
          test_case "D5 silent" `Quick test_d5_silent;
          test_case "D6 fires" `Quick test_d6_fires;
          test_case "D6 silent" `Quick test_d6_silent;
          test_case "D7 fires" `Quick test_d7_fires;
          test_case "D7 silent" `Quick test_d7_silent;
          test_case "D8 fires" `Quick test_d8_fires;
          test_case "D8 silent" `Quick test_d8_silent;
          test_case "D8 mutual-recursion fixpoint" `Quick
            test_d8_mutual_recursion_fixpoint;
          test_case "D9 fires" `Quick test_d9_fires;
          test_case "D9 silent" `Quick test_d9_silent;
          test_case "D10 fires" `Quick test_d10_fires;
          test_case "D10 silent" `Quick test_d10_silent;
          test_case "parse error finding" `Quick test_parse_error;
          test_case "allowlist matching" `Quick test_allowlist_matching;
          test_case "allowlist unused + errors" `Quick test_allowlist_unused_and_errors;
          test_case "allowlist unknown rules" `Quick test_allowlist_unknown_rules;
          test_case "rule examples fire" `Quick test_rule_examples_fire;
          test_case "filter allowed" `Quick test_filter_allowed;
          test_case "finding format" `Quick test_finding_format;
          test_case "lint own tree" `Quick test_lint_own_tree;
        ] );
  ]
