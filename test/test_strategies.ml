open Core

let test_tids = Tuple.source ()

(* Every strategy must compute the same view.  We run identical operation
   streams through all strategies of a model and require: (a) every query
   answer is the same multiset of view tuples, and (b) the final logical view
   contents agree.  This exercises the whole stack: screening, hypothetical
   relations, the differential algorithm, duplicate counts and the stored
   access methods. *)

let geometry = { Strategy.page_bytes = 400; index_entry_bytes = 20 }

(* Each strategy engine owns an isolated ctx; all engines in a test pin the
   same first_tid (far above any dataset tid) so generated view tids agree. *)
let fresh_ctx () = Ctx.create ~geometry ~first_tid:1_000_000 ()

let answer_bag answers =
  let bag = Bag.create () in
  List.iter
    (fun (tuple, count) ->
      for _ = 1 to count do
        ignore (Bag.add bag tuple)
      done)
    answers;
  bag

let run_collect (strategy : Strategy.t) ops =
  List.filter_map
    (fun op ->
      match op with
      | Stream.Txn changes ->
          strategy.Strategy.handle_transaction changes;
          None
      | Stream.Query q -> Some (answer_bag (strategy.Strategy.answer_query q)))
    ops

let check_equivalent ~what strategies_with_answers =
  match strategies_with_answers with
  | [] | [ _ ] -> ()
  | (ref_name, ref_answers) :: rest ->
      List.iter
        (fun (name, answers) ->
          Alcotest.(check int)
            (Printf.sprintf "%s: %s answers as many queries as %s" what name ref_name)
            (List.length ref_answers) (List.length answers);
          List.iteri
            (fun i (a, b) ->
              if not (Bag.equal a b) then
                Alcotest.failf "%s: query %d differs between %s and %s" what i ref_name name)
            (List.combine ref_answers answers))
        rest

(* ------------------------------------------------------------------ *)
(* Model 1                                                             *)
(* ------------------------------------------------------------------ *)

let model1_env () =
  let rng = Rng.create 11 in
  let dataset = Dataset.make_model1 ~rng ~tids:test_tids ~n:300 ~f:0.3 ~s_bytes:100 in
  let tuples = Array.of_list dataset.m1_tuples in
  let ops =
    Stream.generate ~rng ~tuples
      ~mutate:
        (Stream.mutate_column ~tids:test_tids ~col:2 (fun rng -> Value.Float (float_of_int (Rng.int rng 100))))
      ~k:24 ~l:4 ~q:8
      ~query_of:(Stream.range_query_of ~lo_max:0.27 ~width:0.03)
  in
  (dataset, ops)

let sp_strategies dataset =
  let make ctor =
    ctor
      {
        Strategy_sp.ctx = fresh_ctx ();
        view = dataset.Dataset.m1_view;
        initial = dataset.Dataset.m1_tuples;
        ad_buckets = 4;
      }
  in
  [
    ("deferred", make Strategy_sp.deferred);
    ("immediate", make Strategy_sp.immediate);
    ("qmod-clustered", make Strategy_sp.qmod_clustered);
    ("qmod-unclustered", make Strategy_sp.qmod_unclustered);
    ("qmod-sequential", make Strategy_sp.qmod_sequential);
    ("recompute", make Strategy_sp.recompute);
  ]

let test_model1_equivalence () =
  let dataset, ops = model1_env () in
  let strategies = sp_strategies dataset in
  let results =
    List.map (fun (name, s) -> (name, run_collect s ops)) strategies
  in
  check_equivalent ~what:"model1" results;
  (* final logical contents *)
  match List.map (fun (name, s) -> (name, s.Strategy.view_contents ())) strategies with
  | [] -> ()
  | (ref_name, ref_bag) :: rest ->
      List.iter
        (fun (name, bag) ->
          if not (Bag.equal ref_bag bag) then
            Alcotest.failf "final contents differ: %s vs %s" ref_name name)
        rest

let test_model1_inserts_and_deletes () =
  let rng = Rng.create 13 in
  let dataset = Dataset.make_model1 ~rng ~tids:test_tids ~n:100 ~f:0.5 ~s_bytes:100 in
  let strategies = sp_strategies dataset in
  let live = Array.of_list dataset.m1_tuples in
  let fresh i =
    Tuple.make ~tid:(Tuple.next test_tids)
      [| Value.Int (1000 + i); Value.Float (Rng.float rng); Value.Float 1.; Value.Str "new" |]
  in
  let inserted = List.init 10 fresh in
  let deletions = List.map (fun i -> Strategy.delete live.(i)) [ 0; 5; 10; 15; 20 ] in
  let ops =
    [
      Stream.Txn (List.map Strategy.insert inserted);
      Stream.Query { Strategy.q_lo = Value.Float 0.; q_hi = Value.Float 0.5 };
      Stream.Txn deletions;
      Stream.Txn [ Strategy.delete (List.nth inserted 0) ];
      Stream.Query { Strategy.q_lo = Value.Float 0.; q_hi = Value.Float 0.5 };
    ]
  in
  let results = List.map (fun (name, s) -> (name, run_collect s ops)) strategies in
  check_equivalent ~what:"insert/delete" results

let test_model1_empty_view () =
  (* f = 0: the view is empty and stays empty; nothing crashes. *)
  let rng = Rng.create 17 in
  let dataset = Dataset.make_model1 ~rng ~tids:test_tids ~n:50 ~f:0. ~s_bytes:100 in
  let tuples = Array.of_list dataset.m1_tuples in
  let ops =
    Stream.generate ~rng ~tuples
      ~mutate:(Stream.mutate_column ~tids:test_tids ~col:2 (fun _ -> Value.Float 0.))
      ~k:4 ~l:2 ~q:3
      ~query_of:(fun _ -> { Strategy.q_lo = Value.Float 0.; q_hi = Value.Float 0. })
  in
  let strategies = sp_strategies dataset in
  List.iter
    (fun (name, s) ->
      ignore (run_collect s ops);
      Alcotest.(check int) (name ^ " view empty") 0 (Bag.total_size (s.Strategy.view_contents ())))
    strategies

let test_model1_full_selectivity () =
  (* f = 1: every tuple is in the view. *)
  let rng = Rng.create 19 in
  let dataset = Dataset.make_model1 ~rng ~tids:test_tids ~n:60 ~f:1.0 ~s_bytes:100 in
  let tuples = Array.of_list dataset.m1_tuples in
  let ops =
    Stream.generate ~rng ~tuples
      ~mutate:(Stream.mutate_column ~tids:test_tids ~col:2 (fun rng -> Value.Float (float_of_int (Rng.int rng 9))))
      ~k:6 ~l:3 ~q:4
      ~query_of:(Stream.range_query_of ~lo_max:0.9 ~width:0.1)
  in
  let strategies = sp_strategies dataset in
  let results = List.map (fun (name, s) -> (name, run_collect s ops)) strategies in
  check_equivalent ~what:"f=1" results;
  List.iter
    (fun (name, s) ->
      Alcotest.(check int) (name ^ " full view") 60 (Bag.total_size (s.Strategy.view_contents ())))
    strategies

let test_model1_cost_structure () =
  let dataset, ops = model1_env () in
  let run ctor =
    let ctx = fresh_ctx () in
    let env =
      {
        Strategy_sp.ctx;
        view = dataset.Dataset.m1_view;
        initial = dataset.Dataset.m1_tuples;
        ad_buckets = 4;
      }
    in
    let s = ctor env in
    let m = Runner.run ~ctx ~strategy:s ~ops () in
    (m, Ctx.meter ctx)
  in
  let deferred, _ = run Strategy_sp.deferred in
  let immediate, _ = run Strategy_sp.immediate in
  let clustered, _ = run Strategy_sp.qmod_clustered in
  let cost m cat = List.assoc cat m.Runner.category_costs in
  (* structural expectations from the paper's accounting *)
  Alcotest.(check bool) "deferred pays HR" true (cost deferred Cost_meter.Hr > 0.);
  Alcotest.(check (float 1e-9)) "immediate pays no HR" 0. (cost immediate Cost_meter.Hr);
  Alcotest.(check bool) "immediate pays overhead" true
    (cost immediate Cost_meter.Overhead > 0.);
  Alcotest.(check (float 1e-9)) "deferred pays no C3 overhead" 0.
    (cost deferred Cost_meter.Overhead);
  Alcotest.(check (float 1e-9)) "qmod never refreshes" 0. (cost clustered Cost_meter.Refresh);
  Alcotest.(check (float 1e-9)) "qmod never screens" 0. (cost clustered Cost_meter.Screen);
  Alcotest.(check bool) "both maintenance schemes refresh" true
    (cost deferred Cost_meter.Refresh > 0. && cost immediate Cost_meter.Refresh > 0.);
  Alcotest.(check bool) "screen cost equal across maintenance schemes" true
    (Float.abs (cost deferred Cost_meter.Screen -. cost immediate Cost_meter.Screen) < 1e-9);
  Alcotest.(check bool) "all queries answered" true
    (deferred.Runner.tuples_returned = immediate.Runner.tuples_returned
    && immediate.Runner.tuples_returned = clustered.Runner.tuples_returned)

(* Randomized equivalence across seeds. *)
let prop_model1_equivalence =
  QCheck.Test.make ~name:"model1 strategies agree (random seeds)" ~count:8
    (QCheck.int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let f = 0.2 +. (0.6 *. Rng.float rng) in
      let dataset = Dataset.make_model1 ~rng ~tids:test_tids ~n:120 ~f ~s_bytes:100 in
      let tuples = Array.of_list dataset.m1_tuples in
      let ops =
        Stream.generate ~rng ~tuples
          ~mutate:
            (Stream.mutate_column ~tids:test_tids ~col:2 (fun rng -> Value.Float (float_of_int (Rng.int rng 50))))
          ~k:10 ~l:3 ~q:5
          ~query_of:(Stream.range_query_of ~lo_max:(0.8 *. f) ~width:(0.2 *. f))
      in
      let strategies = sp_strategies dataset in
      let results = List.map (fun (name, s) -> (name, run_collect s ops)) strategies in
      match results with
      | (_, ref_answers) :: rest ->
          List.for_all
            (fun (_, answers) ->
              List.length answers = List.length ref_answers
              && List.for_all2 Bag.equal ref_answers answers)
            rest
      | [] -> true)

(* ------------------------------------------------------------------ *)
(* Model 2                                                             *)
(* ------------------------------------------------------------------ *)

let join_strategies dataset =
  let make ctor =
    ctor
      {
        Strategy_join.ctx = fresh_ctx ();
        view = dataset.Dataset.m2_view;
        initial_left = dataset.Dataset.m2_left_tuples;
        initial_right = dataset.Dataset.m2_right_tuples;
        ad_buckets = 4;
        r2_buckets = 8;
      }
  in
  [
    ("deferred", make Strategy_join.deferred);
    ("immediate", make Strategy_join.immediate);
    ("qmod-loopjoin", make Strategy_join.qmod_loopjoin);
  ]

let test_model2_equivalence () =
  let rng = Rng.create 23 in
  let dataset = Dataset.make_model2 ~rng ~tids:test_tids ~n:200 ~f:0.4 ~f_r2:0.2 ~s_bytes:100 in
  let tuples = Array.of_list dataset.m2_left_tuples in
  let ops =
    Stream.generate ~rng ~tuples
      ~mutate:
        (Stream.mutate_column ~tids:test_tids ~col:3 (fun rng ->
             Value.Str (Printf.sprintf "c%d" (Rng.int rng 1000))))
      ~k:16 ~l:4 ~q:6
      ~query_of:(Stream.range_query_of ~lo_max:0.35 ~width:0.05)
  in
  let strategies = join_strategies dataset in
  let results = List.map (fun (name, s) -> (name, run_collect s ops)) strategies in
  check_equivalent ~what:"model2" results;
  match List.map (fun (name, s) -> (name, s.Strategy.view_contents ())) strategies with
  | (ref_name, ref_bag) :: rest ->
      List.iter
        (fun (name, bag) ->
          if not (Bag.equal ref_bag bag) then
            Alcotest.failf "final join contents differ: %s vs %s" ref_name name)
        rest
  | [] -> ()

let test_model2_join_column_update () =
  (* Changing the join key must move the view tuple to the new R2 partner. *)
  let rng = Rng.create 29 in
  let dataset = Dataset.make_model2 ~rng ~tids:test_tids ~n:50 ~f:1.0 ~f_r2:0.2 ~s_bytes:100 in
  let strategies = join_strategies dataset in
  let live = Array.of_list dataset.m2_left_tuples in
  let retarget idx new_jkey =
    let old_tuple = live.(idx) in
    let new_tuple =
      Tuple.with_tid (Tuple.set old_tuple 2 (Value.Int new_jkey)) (Tuple.next test_tids)
    in
    live.(idx) <- new_tuple;
    Strategy.modify ~old_tuple ~new_tuple
  in
  (* Build transactions in program order: retarget mutates [live], so the
     list literal must not interleave its (unspecified-order) element
     evaluation with it. *)
  let txn1 = Stream.Txn [ retarget 0 3; retarget 1 3 ] in
  let txn2 = Stream.Txn [ retarget 0 5 ] in
  let query = Stream.Query { Strategy.q_lo = Value.Float 0.; q_hi = Value.Float 1. } in
  let ops = [ txn1; query; txn2; query ] in
  let results = List.map (fun (name, s) -> (name, run_collect s ops)) strategies in
  check_equivalent ~what:"join-key update" results

(* ------------------------------------------------------------------ *)
(* Model 3                                                             *)
(* ------------------------------------------------------------------ *)

let agg_strategies dataset =
  let make ctor =
    ctor
      {
        Strategy_agg.ctx = fresh_ctx ();
        agg = dataset.Dataset.m3_agg;
        initial = dataset.Dataset.m3_tuples;
        ad_buckets = 4;
      }
  in
  [
    ("deferred", make Strategy_agg.deferred);
    ("immediate", make Strategy_agg.immediate);
    ("recompute", make Strategy_agg.recompute);
  ]

let scalar_answers (strategy : Strategy.t) ops =
  List.filter_map
    (fun op ->
      match op with
      | Stream.Txn changes ->
          strategy.Strategy.handle_transaction changes;
          None
      | Stream.Query _ -> Some (strategy.Strategy.scalar_query ()))
    ops

let test_model3_equivalence () =
  let rng = Rng.create 31 in
  let dataset = Dataset.make_model3 ~rng ~tids:test_tids ~n:150 ~f:0.4 ~s_bytes:100 ~kind:(`Sum "amount") in
  let tuples = Array.of_list dataset.m3_tuples in
  let ops =
    Stream.generate ~rng ~tuples
      ~mutate:
        (Stream.mutate_column ~tids:test_tids ~col:2 (fun rng -> Value.Float (float_of_int (Rng.int rng 100))))
      ~k:12 ~l:4 ~q:6
      ~query_of:(Stream.range_query_of ~lo_max:0.3 ~width:0.1)
  in
  let strategies = agg_strategies dataset in
  let results = List.map (fun (name, s) -> (name, scalar_answers s ops)) strategies in
  match results with
  | (ref_name, ref_answers) :: rest ->
      List.iter
        (fun (name, answers) ->
          List.iteri
            (fun i (a, b) ->
              if Float.abs (a -. b) > 1e-6 then
                Alcotest.failf "query %d: %s=%f %s=%f" i ref_name a name b)
            (List.combine ref_answers answers))
        rest
  | [] -> ()

let test_model3_kinds () =
  List.iter
    (fun kind ->
      let rng = Rng.create 37 in
      let dataset = Dataset.make_model3 ~rng ~tids:test_tids ~n:80 ~f:0.5 ~s_bytes:100 ~kind in
      let tuples = Array.of_list dataset.m3_tuples in
      let ops =
        Stream.generate ~rng ~tuples
          ~mutate:
            (Stream.mutate_column ~tids:test_tids ~col:2 (fun rng ->
                 Value.Float (float_of_int (Rng.int rng 100))))
          ~k:6 ~l:3 ~q:4
          ~query_of:(Stream.range_query_of ~lo_max:0.4 ~width:0.1)
      in
      let strategies = agg_strategies dataset in
      let results = List.map (fun (name, s) -> (name, scalar_answers s ops)) strategies in
      match results with
      | (_, ref_answers) :: rest ->
          List.iter
            (fun (name, answers) ->
              List.iteri
                (fun i (a, b) ->
                  let both_nan = Float.is_nan a && Float.is_nan b in
                  if (not both_nan) && Float.abs (a -. b) > 1e-6 then
                    Alcotest.failf "%s query %d differs (%f vs %f)" name i a b)
                (List.combine ref_answers answers))
            rest
      | [] -> ())
    [ `Count; `Sum "amount"; `Avg "amount"; `Variance "amount"; `Min "amount"; `Max "amount" ]

let test_model3_cost_structure () =
  let rng = Rng.create 41 in
  let dataset = Dataset.make_model3 ~rng ~tids:test_tids ~n:200 ~f:0.3 ~s_bytes:100 ~kind:(`Sum "amount") in
  let tuples = Array.of_list dataset.m3_tuples in
  let ops =
    Stream.generate ~rng ~tuples
      ~mutate:
        (Stream.mutate_column ~tids:test_tids ~col:2 (fun rng -> Value.Float (float_of_int (Rng.int rng 100))))
      ~k:10 ~l:3 ~q:5
      ~query_of:(Stream.range_query_of ~lo_max:0.2 ~width:0.1)
  in
  let run ctor =
    let ctx = fresh_ctx () in
    let env =
      {
        Strategy_agg.ctx;
        agg = dataset.Dataset.m3_agg;
        initial = dataset.Dataset.m3_tuples;
        ad_buckets = 4;
      }
    in
    Runner.run ~ctx ~strategy:(ctor env) ~ops ()
  in
  let deferred = run Strategy_agg.deferred in
  let immediate = run Strategy_agg.immediate in
  let recompute = run Strategy_agg.recompute in
  (* Figure 8's shape: maintaining the aggregate is far cheaper than
     recomputing it (the gap grows with relation size; this is a tiny one). *)
  Alcotest.(check bool) "immediate beats recompute" true
    (immediate.Runner.cost_per_query < recompute.Runner.cost_per_query /. 2.);
  Alcotest.(check bool) "deferred beats recompute" true
    (deferred.Runner.cost_per_query < recompute.Runner.cost_per_query)

let qcheck = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "strategies.model1",
      [
        Alcotest.test_case "equivalence on mixed stream" `Quick test_model1_equivalence;
        Alcotest.test_case "inserts and deletes" `Quick test_model1_inserts_and_deletes;
        Alcotest.test_case "empty view (f=0)" `Quick test_model1_empty_view;
        Alcotest.test_case "full view (f=1)" `Quick test_model1_full_selectivity;
        Alcotest.test_case "cost structure" `Quick test_model1_cost_structure;
      ]
      @ qcheck [ prop_model1_equivalence ] );
    ( "strategies.model2",
      [
        Alcotest.test_case "equivalence on mixed stream" `Quick test_model2_equivalence;
        Alcotest.test_case "join-key updates" `Quick test_model2_join_column_update;
      ] );
    ( "strategies.model3",
      [
        Alcotest.test_case "equivalence (sum)" `Quick test_model3_equivalence;
        Alcotest.test_case "all aggregate kinds" `Quick test_model3_kinds;
        Alcotest.test_case "cost structure (Figure 8 shape)" `Quick test_model3_cost_structure;
      ] );
  ]
