let () =
  Alcotest.run "vmat"
    (Test_util.suites @ Test_storage.suites @ Test_index.suites @ Test_relalg.suites
    @ Test_hypo.suites @ Test_view.suites @ Test_nway.suites @ Test_strategies.suites
    @ Test_bilateral.suites @ Test_cost.suites @ Test_workload.suites
    @ Test_extensions.suites @ Test_adaptive.suites @ Test_lang.suites @ Test_db.suites
    @ Test_stress.suites @ Test_obs.suites @ Test_ctx.suites @ Test_integration.suites
    @ Test_sanitize.suites @ Test_analysis.suites @ Test_wal.suites @ Test_serve.suites
    @ Test_flight.suites @ Test_flat.suites @ Test_fleet.suites)
