open Core
open Core.Predicate

let test_tids = Tuple.source ()

(* The general N-relation differential update of §2.1, checked against full
   recomputation, plus duplicate-heavy end-to-end runs that stress the
   duplicate-count machinery through the whole strategy stack. *)

let tuple ?(tid = Tuple.next test_tids) values = Tuple.make ~tid values

(* ------------------------------------------------------------------ *)
(* N-way differential update                                           *)
(* ------------------------------------------------------------------ *)

let test_nway_empty_sources () =
  match Delta.nway ~tids:test_tids ~pred:True ~positions:[| 0 |] [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty source list accepted"

let test_nway_single_relation_is_sp () =
  (* With one relation, nway degenerates to the Model-1 delta. *)
  let pred = Cmp (Lt, Column 0, Const (Value.Int 5)) in
  let a = [ tuple [| Value.Int 3 |]; tuple [| Value.Int 7 |] ] in
  let d = [ tuple [| Value.Int 1 |] ] in
  let current = [ tuple [| Value.Int 2 |] ] in
  let delta =
    Delta.nway ~tids:test_tids ~pred ~positions:[| 0 |]
      [ { Delta.src_current = current; src_inserted = a; src_deleted = d } ]
  in
  Alcotest.(check int) "one insert passes" 1 (List.length delta.ins);
  Alcotest.(check int) "one delete passes" 1 (List.length delta.del)

let test_nway_three_relations_hand_case () =
  (* R1(x), R2(x), R3(x); V = σ(R1.x = R2.x and R2.x = R3.x) — a 3-way
     equi-join via the cross-product predicate. *)
  let pred = And (Cmp (Eq, Column 0, Column 1), Cmp (Eq, Column 1, Column 2)) in
  let positions = [| 0 |] in
  let r v = tuple [| Value.Int v |] in
  let r1 = [ r 1; r 2 ] and r2 = [ r 1; r 2 ] and r3 = [ r 1 ] in
  let v0 = Delta.recompute_nway ~tids:test_tids ~pred ~positions [ r1; r2; r3 ] in
  Alcotest.(check int) "v0 = {1}" 1 (Bag.total_size v0);
  (* insert 2 into R3: now both 1 and 2 join *)
  let sources =
    [
      { Delta.src_current = r1; src_inserted = []; src_deleted = [] };
      { Delta.src_current = r2; src_inserted = []; src_deleted = [] };
      { Delta.src_current = r3; src_inserted = [ r 2 ]; src_deleted = [] };
    ]
  in
  let delta = Delta.nway ~tids:test_tids ~pred ~positions sources in
  Delta.apply v0 delta;
  let expected = Delta.recompute_nway ~tids:test_tids ~pred ~positions [ r1; r2; r3 @ [ r 2 ] ] in
  Alcotest.(check bool) "incremental = recompute" true (Bag.equal v0 expected)

let test_nway_appendix_a_generalizes () =
  (* The two-sided delete that breaks Blakeley's formulation is handled by
     the general form: deleting the joining tuples from all three relations
     in one transaction removes the join result exactly once. *)
  let pred = And (Cmp (Eq, Column 0, Column 1), Cmp (Eq, Column 1, Column 2)) in
  let positions = [| 0 |] in
  let x = tuple [| Value.Int 7 |] in
  let y = tuple [| Value.Int 7 |] in
  let z = tuple [| Value.Int 7 |] in
  let v0 = Delta.recompute_nway ~tids:test_tids ~pred ~positions [ [ x ]; [ y ]; [ z ] ] in
  Alcotest.(check int) "joined once" 1 (Bag.total_size v0);
  let gone t = { Delta.src_current = []; src_inserted = []; src_deleted = [ t ] } in
  let delta = Delta.nway ~tids:test_tids ~pred ~positions [ gone x; gone y; gone z ] in
  Alcotest.(check int) "exactly one deletion term survives" 1 (List.length delta.del);
  Delta.apply v0 delta;
  Alcotest.(check int) "view empty" 0 (Bag.total_size v0);
  Alcotest.(check bool) "no negative counts" false (Bag.has_negative_count v0)

let nway_gen =
  (* three small relations of single-int tuples plus delete masks and
     inserts *)
  QCheck.Gen.(
    let relation = list_size (int_range 0 5) (int_range 0 3) in
    let triple_rel = triple relation relation relation in
    pair triple_rel (pair (list_size (int_range 0 4) bool) (list_size (int_range 0 3) (int_range 0 3))))

let prop_nway_equals_recompute =
  QCheck.Test.make ~name:"3-way delta = recompute" ~count:120 (QCheck.make nway_gen)
    (fun ((l1, l2, l3), (mask, extra)) ->
      let pred = And (Cmp (Eq, Column 0, Column 1), Cmp (Eq, Column 1, Column 2)) in
      let positions = [| 0; 2 |] in
      let mk vs = List.map (fun v -> tuple [| Value.Int v |]) vs in
      let r1 = mk l1 and r2 = mk l2 and r3 = mk l3 in
      (* delete a masked subset of r2, insert extras into r1 and r3 *)
      let deleted =
        List.filteri (fun i _ -> i < List.length mask && List.nth mask i) r2
      in
      let r2' =
        List.filter (fun t -> not (List.exists (fun d -> Tuple.tid d = Tuple.tid t) deleted)) r2
      in
      let a1 = mk extra and a3 = mk extra in
      let v0 = Delta.recompute_nway ~tids:test_tids ~pred ~positions [ r1; r2; r3 ] in
      let sources =
        [
          { Delta.src_current = r1; src_inserted = a1; src_deleted = [] };
          { Delta.src_current = r2'; src_inserted = []; src_deleted = deleted };
          { Delta.src_current = r3; src_inserted = a3; src_deleted = [] };
        ]
      in
      Delta.apply v0 (Delta.nway ~tids:test_tids ~pred ~positions sources);
      let expected = Delta.recompute_nway ~tids:test_tids ~pred ~positions [ r1 @ a1; r2'; r3 @ a3 ] in
      Bag.equal v0 expected && not (Bag.has_negative_count v0))

(* ------------------------------------------------------------------ *)
(* Duplicate-heavy views through the full strategy stack               *)
(* ------------------------------------------------------------------ *)

let geometry = { Strategy.page_bytes = 400; index_entry_bytes = 20 }

(* A view projecting only a low-cardinality bucket of pval, so projection
   produces many duplicate view tuples and duplicate counts do real work. *)
let dup_heavy_view base =
  View_def.make_sp ~name:"VDUP" ~base
    ~pred:(Cmp (Lt, Column 1, Const (Value.Float 0.6)))
    ~project:[ "bucket" ] ~cluster:"bucket"

let dup_heavy_dataset ~rng ~n =
  let base =
    Schema.make ~name:"RD"
      ~columns:
        Schema.[
          { name = "id"; ty = T_int };
          { name = "pval"; ty = T_float };
          { name = "bucket"; ty = T_int };
        ]
      ~tuple_bytes:100 ~key:"id"
  in
  let tuples =
    List.init n (fun id ->
        tuple
          [| Value.Int id; Value.Float (Rng.float rng); Value.Int (Rng.int rng 5) |])
  in
  (base, tuples)

let test_duplicate_counts_through_strategies () =
  let rng = Rng.create 71 in
  let base, initial = dup_heavy_dataset ~rng ~n:150 in
  let view = dup_heavy_view base in
  let make ctor =
    (* each strategy engine gets an isolated ctx pinned to the same first_tid
       so generated view tids agree across engines *)
    let ctx = Ctx.create ~geometry ~first_tid:1_000_000 () in
    ctor { Strategy_sp.ctx; view; initial; ad_buckets = 4 }
  in
  let strategies =
    [
      ("deferred", make Strategy_sp.deferred);
      ("immediate", make Strategy_sp.immediate);
      ("qmod-sequential", make Strategy_sp.qmod_sequential);
      ("recompute", make Strategy_sp.recompute);
    ]
  in
  (* updates move tuples between buckets AND across the predicate line *)
  let live = Array.of_list initial in
  let ops =
    List.concat
      (List.init 10 (fun round ->
           let changes =
             List.map
               (fun i ->
                 let idx = ((round * 13) + (i * 7)) mod Array.length live in
                 let old_tuple = live.(idx) in
                 let new_tuple =
                   Tuple.with_tid
                     (Tuple.set
                        (Tuple.set old_tuple 2 (Value.Int (Rng.int rng 5)))
                        1
                        (Value.Float (Rng.float rng)))
                     (Tuple.next test_tids)
                 in
                 live.(idx) <- new_tuple;
                 Strategy.modify ~old_tuple ~new_tuple)
               [ 0; 1; 2 ]
           in
           [
             Stream.Txn changes;
             Stream.Query { Strategy.q_lo = Value.Int 0; q_hi = Value.Int 4 };
           ]))
  in
  let collect (s : Strategy.t) =
    List.filter_map
      (fun op ->
        match op with
        | Stream.Txn changes ->
            s.Strategy.handle_transaction changes;
            None
        | Stream.Query q ->
            let bag = Bag.create () in
            List.iter
              (fun (t, c) ->
                for _ = 1 to c do
                  ignore (Bag.add bag t)
                done)
              (s.Strategy.answer_query q);
            Some bag)
      ops
  in
  match List.map (fun (name, s) -> (name, collect s)) strategies with
  | (ref_name, ref_answers) :: rest ->
      List.iter
        (fun (name, answers) ->
          List.iteri
            (fun i (a, b) ->
              if not (Bag.equal a b) then
                Alcotest.failf "query %d: %s vs %s differ" i ref_name name)
            (List.combine ref_answers answers))
        rest;
      (* sanity: duplicates really occurred *)
      let last = List.nth ref_answers (List.length ref_answers - 1) in
      Alcotest.(check bool) "duplicate counts in play" true
        (Bag.total_size last > Bag.distinct_size last)
  | [] -> ()

let test_materialized_many_duplicates_per_key () =
  (* hundreds of duplicates of few distinct values on one clustering key *)
  let meter = Cost_meter.create () in
  let disk = Disk.create meter in
  let mat = Materialized.create ~disk ~name:"dup" ~fanout:8 ~leaf_capacity:4 ~cluster_col:0 () in
  let v k = tuple [| Value.Int k |] in
  for _ = 1 to 200 do
    Materialized.apply mat Insert (v 1)
  done;
  for _ = 1 to 100 do
    Materialized.apply mat Insert (v 2)
  done;
  Alcotest.(check int) "two distinct" 2 (Materialized.distinct_count mat);
  Alcotest.(check int) "300 total" 300 (Materialized.total_count mat);
  for _ = 1 to 200 do
    Materialized.apply mat Delete (v 1)
  done;
  Alcotest.(check int) "one distinct left" 1 (Materialized.distinct_count mat);
  Alcotest.(check int) "100 total left" 100 (Materialized.total_count mat);
  Btree.check_invariants (Materialized.tree mat)

let qcheck = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "nway.delta",
      [
        Alcotest.test_case "empty sources" `Quick test_nway_empty_sources;
        Alcotest.test_case "single relation = sp" `Quick test_nway_single_relation_is_sp;
        Alcotest.test_case "3-way hand case" `Quick test_nway_three_relations_hand_case;
        Alcotest.test_case "Appendix A generalizes" `Quick test_nway_appendix_a_generalizes;
      ]
      @ qcheck [ prop_nway_equals_recompute ] );
    ( "nway.duplicates",
      [
        Alcotest.test_case "duplicate-heavy strategy equivalence" `Quick
          test_duplicate_counts_through_strategies;
        Alcotest.test_case "many duplicates per key" `Quick
          test_materialized_many_duplicates_per_key;
      ] );
  ]
