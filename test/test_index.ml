open Core

let test_tids = Tuple.source ()

let world () =
  let m = Cost_meter.create () in
  (m, Disk.create m)

let key_col0 tuple = Tuple.get tuple 0

let tuple ?(tid = Tuple.next test_tids) key payload =
  Tuple.make ~tid [| Value.Int key; Value.Str payload |]

(* ------------------------------------------------------------------ *)
(* B+-tree                                                             *)
(* ------------------------------------------------------------------ *)

let btree ?(fanout = 4) ?(leaf_capacity = 4) () =
  let _, disk = world () in
  (disk, Btree.create ~disk ~name:"t" ~fanout ~leaf_capacity ~key_col:0 ())

let test_btree_insert_find () =
  let _, t = btree () in
  let tuples = List.map (fun k -> tuple k ("p" ^ string_of_int k)) [ 5; 1; 9; 3; 7; 2; 8 ] in
  List.iter (Btree.insert t) tuples;
  Alcotest.(check int) "count" 7 (Btree.tuple_count t);
  List.iter
    (fun tu ->
      match Btree.find t (key_col0 tu) with
      | [ found ] -> Alcotest.(check bool) "found" true (Tuple.equal tu found)
      | other -> Alcotest.failf "expected 1 match, got %d" (List.length other))
    tuples;
  Alcotest.(check (list int)) "missing key" [] (List.map Tuple.tid (Btree.find t (Value.Int 42)));
  Btree.check_invariants t

let test_btree_duplicates () =
  let _, t = btree () in
  let dups = List.init 10 (fun i -> tuple ~tid:(100 + i) 5 (string_of_int i)) in
  List.iter (Btree.insert t) dups;
  Btree.insert t (tuple 4 "x");
  Btree.insert t (tuple 6 "y");
  let found = Btree.find t (Value.Int 5) in
  Alcotest.(check int) "all duplicates found" 10 (List.length found);
  Alcotest.(check (list int)) "tid order" (List.init 10 (fun i -> 100 + i))
    (List.map Tuple.tid found);
  Btree.check_invariants t

let test_btree_range () =
  let _, t = btree () in
  List.iter (fun k -> Btree.insert t (tuple k "")) (List.init 50 Fun.id);
  let seen = ref [] in
  Btree.range t ~lo:(Value.Int 10) ~hi:(Value.Int 19) (fun tu ->
      seen := Value.as_int (key_col0 tu) :: !seen);
  Alcotest.(check (list int)) "range keys in order" (List.init 10 (fun i -> 10 + i))
    (List.rev !seen);
  let seen = ref 0 in
  Btree.range t ~lo:(Value.Int 60) ~hi:(Value.Int 70) (fun _ -> incr seen);
  Alcotest.(check int) "empty range" 0 !seen;
  Btree.range t ~lo:(Value.Int 10) ~hi:(Value.Int 5) (fun _ -> incr seen);
  Alcotest.(check int) "inverted range" 0 !seen

let test_btree_remove () =
  let _, t = btree () in
  let tuples = List.map (fun k -> tuple ~tid:(1000 + k) k "") (List.init 30 Fun.id) in
  List.iter (Btree.insert t) tuples;
  Alcotest.(check bool) "remove present" true
    (Btree.remove t ~key:(Value.Int 7) ~tid:1007);
  Alcotest.(check bool) "remove twice" false (Btree.remove t ~key:(Value.Int 7) ~tid:1007);
  Alcotest.(check bool) "remove wrong tid" false
    (Btree.remove t ~key:(Value.Int 8) ~tid:9999);
  Alcotest.(check int) "count" 29 (Btree.tuple_count t);
  Alcotest.(check (list int)) "gone" [] (List.map Tuple.tid (Btree.find t (Value.Int 7)));
  Btree.check_invariants t

let test_btree_update_in_place () =
  let _, t = btree () in
  List.iter (fun k -> Btree.insert t (tuple ~tid:(50 + k) k "old")) (List.init 10 Fun.id);
  let ok =
    Btree.update_in_place t ~key:(Value.Int 3) ~tid:53 (fun tu -> Tuple.set tu 1 (Value.Str "new"))
  in
  Alcotest.(check bool) "updated" true ok;
  (match Btree.find t (Value.Int 3) with
  | [ tu ] -> Alcotest.(check bool) "new payload" true (Value.equal (Value.Str "new") (Tuple.get tu 1))
  | _ -> Alcotest.fail "lookup failed");
  (match
     Btree.update_in_place t ~key:(Value.Int 3) ~tid:53 (fun tu ->
         Tuple.set tu 0 (Value.Int 99))
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "key move accepted");
  Btree.check_invariants t

let test_btree_height_growth () =
  let _, t = btree ~fanout:4 ~leaf_capacity:4 () in
  Alcotest.(check int) "empty height" 0 (Btree.height t);
  List.iter (fun k -> Btree.insert t (tuple k "")) (List.init 300 Fun.id);
  Alcotest.(check bool) "height grew" true (Btree.height t >= 3);
  Alcotest.(check bool) "leaf pages" true (Btree.leaf_pages t >= 75);
  Btree.check_invariants t

let test_btree_io_accounting () =
  let m = Cost_meter.create () in
  let disk = Disk.create m in
  let t = Btree.create ~disk ~name:"io" ~fanout:200 ~leaf_capacity:40 ~key_col:0 () in
  List.iter (fun k -> Btree.insert t (tuple k "")) (List.init 2000 Fun.id);
  Buffer_pool.invalidate (Btree.pool t);
  let reads0 = Disk.physical_reads disk in
  (* A range scan over ~400 consecutive keys touches ~10 consecutive leaves
     plus the descent. *)
  let count = ref 0 in
  Btree.range t ~lo:(Value.Int 1000) ~hi:(Value.Int 1399) (fun _ -> incr count);
  Alcotest.(check int) "tuples scanned" 400 !count;
  let reads = Disk.physical_reads disk - reads0 in
  (* Sequential insertion leaves split leaves about half full, so ~400/20
     leaves plus the descent. *)
  if reads < 10 || reads > 25 then Alcotest.failf "unexpected scan reads: %d" reads

let test_btree_bulk_load () =
  let m = Cost_meter.create () in
  let disk = Disk.create m in
  let t = Btree.create ~disk ~name:"bulk" ~fanout:5 ~leaf_capacity:4 ~key_col:0 () in
  let tuples = List.map (fun k -> tuple k "") (List.init 103 Fun.id) in
  let writes0 = Disk.physical_writes disk in
  Btree.bulk_load t tuples;
  Buffer_pool.flush (Btree.pool t);
  Btree.check_invariants t;
  Alcotest.(check int) "count" 103 (Btree.tuple_count t);
  Alcotest.(check int) "packed leaves" 26 (Btree.leaf_pages t);
  Alcotest.(check int) "one write per page" (26 + Btree.index_pages t)
    (Disk.physical_writes disk - writes0);
  (match Btree.find t (Value.Int 50) with
  | [ _ ] -> ()
  | _ -> Alcotest.fail "lookup after bulk load");
  (* loading a non-empty tree is rejected *)
  (match Btree.bulk_load t tuples with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bulk load of non-empty tree accepted");
  (* incremental inserts still work afterwards *)
  Btree.insert t (tuple 200 "x");
  Btree.check_invariants t;
  Alcotest.(check int) "insert after bulk" 104 (Btree.tuple_count t)

let test_btree_bulk_load_empty () =
  let _, disk = world () in
  let t = Btree.create ~disk ~name:"e" ~fanout:4 ~leaf_capacity:4 ~key_col:0 () in
  Btree.bulk_load t [];
  Btree.check_invariants t;
  Alcotest.(check int) "still empty" 0 (Btree.tuple_count t)

let test_btree_reverse_and_random_order () =
  let _, t = btree () in
  List.iter (fun k -> Btree.insert t (tuple k "")) (List.rev (List.init 100 Fun.id));
  Btree.check_invariants t;
  let keys = ref [] in
  Btree.iter_unmetered t (fun tu -> keys := Value.as_int (key_col0 tu) :: !keys);
  Alcotest.(check (list int)) "sorted iteration" (List.init 100 Fun.id) (List.rev !keys)

(* Model-based qcheck: a btree tracks a reference association list under a
   random sequence of inserts and removes. *)
let btree_ops =
  QCheck.list_of_size (QCheck.Gen.int_range 0 200)
    (QCheck.pair QCheck.bool (QCheck.int_range 0 30))

let prop_btree_model =
  QCheck.Test.make ~name:"btree matches reference model" ~count:60 btree_ops (fun ops ->
      let _, t = btree ~fanout:3 ~leaf_capacity:2 () in
      let model = Hashtbl.create 64 in
      let next = ref 0 in
      List.iter
        (fun (is_insert, key) ->
          if is_insert then begin
            incr next;
            let tu = tuple ~tid:!next key "" in
            Btree.insert t tu;
            Hashtbl.add model key !next
          end
          else
            match Hashtbl.find_opt model key with
            | Some tid ->
                if not (Btree.remove t ~key:(Value.Int key) ~tid) then
                  QCheck.Test.fail_report "remove of present entry failed";
                Hashtbl.remove model key
            | None ->
                if Btree.remove t ~key:(Value.Int key) ~tid:(-1) then
                  QCheck.Test.fail_report "remove of absent entry succeeded")
        ops;
      Btree.check_invariants t;
      let expected = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
      let actual = ref [] in
      Btree.iter_unmetered t (fun tu -> actual := Value.as_int (key_col0 tu) :: !actual);
      List.sort Int.compare expected = List.sort Int.compare !actual)

let prop_bulk_load_equals_inserts =
  QCheck.Test.make ~name:"bulk load = incremental inserts" ~count:60
    (QCheck.list_of_size (QCheck.Gen.int_range 0 150) (QCheck.int_range 0 40))
    (fun keys ->
      let tuples = List.mapi (fun i k -> tuple ~tid:(i + 1) k "") keys in
      let _, bulk = btree ~fanout:4 ~leaf_capacity:3 () in
      Btree.bulk_load bulk tuples;
      let _, incremental = btree ~fanout:4 ~leaf_capacity:3 () in
      List.iter (Btree.insert incremental) tuples;
      Btree.check_invariants bulk;
      let contents t =
        let acc = ref [] in
        Btree.iter_unmetered t (fun tu -> acc := (Value.as_int (key_col0 tu), Tuple.tid tu) :: !acc);
        List.rev !acc
      in
      contents bulk = contents incremental
      && Btree.leaf_pages bulk <= Btree.leaf_pages incremental)

(* ------------------------------------------------------------------ *)
(* Hash file                                                           *)
(* ------------------------------------------------------------------ *)

let hash_file ?(buckets = 8) ?(tuples_per_page = 4) () =
  let m, disk = world () in
  ( m,
    disk,
    Hash_file.create ~disk ~name:"h" ~buckets ~tuples_per_page ~key_col:0 () )

let test_hash_insert_lookup () =
  let _, _, h = hash_file () in
  List.iter (fun k -> Hash_file.insert h (tuple k ("v" ^ string_of_int k))) (List.init 40 Fun.id);
  Alcotest.(check int) "count" 40 (Hash_file.tuple_count h);
  for k = 0 to 39 do
    match Hash_file.lookup h (Value.Int k) with
    | [ tu ] ->
        Alcotest.(check bool) "payload" true
          (Value.equal (Value.Str ("v" ^ string_of_int k)) (Tuple.get tu 1))
    | other -> Alcotest.failf "key %d: %d matches" k (List.length other)
  done;
  Alcotest.(check int) "missing key" 0 (List.length (Hash_file.lookup h (Value.Int 999)))

let test_hash_duplicates_and_remove () =
  let _, _, h = hash_file () in
  Hash_file.insert h (tuple ~tid:1 7 "a");
  Hash_file.insert h (tuple ~tid:2 7 "b");
  Alcotest.(check int) "both stored" 2 (List.length (Hash_file.lookup h (Value.Int 7)));
  Alcotest.(check bool) "remove by tid" true (Hash_file.remove h ~key:(Value.Int 7) ~tid:1);
  Alcotest.(check bool) "remove absent" false (Hash_file.remove h ~key:(Value.Int 7) ~tid:1);
  (match Hash_file.lookup h (Value.Int 7) with
  | [ tu ] -> Alcotest.(check int) "survivor" 2 (Tuple.tid tu)
  | _ -> Alcotest.fail "expected one survivor");
  Alcotest.(check int) "count" 1 (Hash_file.tuple_count h)

let test_hash_overflow_chains () =
  (* One bucket forces chains: all tuples land together. *)
  let _, _, h = hash_file ~buckets:1 ~tuples_per_page:2 () in
  Alcotest.(check int) "primary page exists" 1 (Hash_file.page_count h);
  List.iter (fun k -> Hash_file.insert h (tuple k "")) (List.init 10 Fun.id);
  Alcotest.(check int) "pages = ceil(10/2)" 5 (Hash_file.page_count h);
  let seen = ref 0 in
  Hash_file.scan h (fun _ -> incr seen);
  Alcotest.(check int) "scan all" 10 !seen

let test_hash_scan_cost () =
  let m, disk, h = hash_file ~buckets:4 ~tuples_per_page:4 () in
  List.iter (fun k -> Hash_file.insert h (tuple k "")) (List.init 32 Fun.id);
  Buffer_pool.invalidate (Hash_file.pool h);
  Cost_meter.reset m;
  let reads0 = Disk.physical_reads disk in
  Hash_file.scan h (fun _ -> ());
  Alcotest.(check int) "one read per page" (Hash_file.page_count h)
    (Disk.physical_reads disk - reads0)

let test_hash_clear () =
  let _, disk, h = hash_file () in
  List.iter (fun k -> Hash_file.insert h (tuple k "")) (List.init 20 Fun.id);
  let pages = Hash_file.page_count h in
  Alcotest.(check bool) "has pages" true (pages > 0);
  Hash_file.clear h;
  Alcotest.(check int) "no tuples" 0 (Hash_file.tuple_count h);
  Alcotest.(check int) "back to primary pages" 8 (Hash_file.page_count h);
  Alcotest.(check int) "overflow pages freed" 8 (Disk.allocated_pages disk);
  Hash_file.insert h (tuple 1 "");
  Alcotest.(check int) "usable after clear" 1 (Hash_file.tuple_count h)

let prop_hash_model =
  QCheck.Test.make ~name:"hash file matches reference model" ~count:60 btree_ops
    (fun ops ->
      let _, _, h = hash_file ~buckets:3 ~tuples_per_page:2 () in
      let model = Hashtbl.create 64 in
      let next = ref 0 in
      List.iter
        (fun (is_insert, key) ->
          if is_insert then begin
            incr next;
            Hash_file.insert h (tuple ~tid:!next key "");
            Hashtbl.add model key !next
          end
          else
            match Hashtbl.find_opt model key with
            | Some tid ->
                ignore (Hash_file.remove h ~key:(Value.Int key) ~tid);
                Hashtbl.remove model key
            | None -> ())
        ops;
      Hashtbl.fold
        (fun key tid acc ->
          acc
          && List.exists (fun tu -> Tuple.tid tu = tid) (Hash_file.lookup h (Value.Int key)))
        model true
      && Hash_file.tuple_count h = Hashtbl.length model)

(* ------------------------------------------------------------------ *)
(* T-locks                                                             *)
(* ------------------------------------------------------------------ *)

let test_tlock_intervals () =
  let locks = Tlock.create () in
  Tlock.lock locks ~view:"v1" ~column:1 ~lo:(Value.Float 0.) ~hi:(Value.Float 0.1);
  Tlock.lock locks ~view:"v2" ~column:1 ~lo:(Value.Float 0.05) ~hi:(Value.Float 0.2);
  let inside = Tuple.make ~tid:1 [| Value.Int 0; Value.Float 0.07 |] in
  let outside = Tuple.make ~tid:2 [| Value.Int 0; Value.Float 0.5 |] in
  Alcotest.(check (list string)) "both views broken" [ "v1"; "v2" ]
    (Tlock.broken_by locks inside);
  Alcotest.(check (list string)) "no view broken" [] (Tlock.broken_by locks outside);
  Alcotest.(check bool) "breaks v1" true (Tlock.breaks locks ~view:"v1" inside);
  Alcotest.(check bool) "boundary inclusive" true
    (Tlock.breaks locks ~view:"v1" (Tuple.make ~tid:3 [| Value.Int 0; Value.Float 0.1 |]))

let test_tlock_catch_all_and_unlock () =
  let locks = Tlock.create () in
  Tlock.lock_everything locks ~view:"v";
  let t = Tuple.make ~tid:1 [| Value.Int 0 |] in
  Alcotest.(check bool) "catch-all breaks" true (Tlock.breaks locks ~view:"v" t);
  Tlock.unlock_view locks ~view:"v";
  Alcotest.(check bool) "unlocked" false (Tlock.breaks locks ~view:"v" t);
  Alcotest.(check int) "empty" 0 (Tlock.interval_count locks)

let qcheck = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "index.btree",
      [
        Alcotest.test_case "insert/find" `Quick test_btree_insert_find;
        Alcotest.test_case "duplicates" `Quick test_btree_duplicates;
        Alcotest.test_case "range" `Quick test_btree_range;
        Alcotest.test_case "remove" `Quick test_btree_remove;
        Alcotest.test_case "update in place" `Quick test_btree_update_in_place;
        Alcotest.test_case "height growth" `Quick test_btree_height_growth;
        Alcotest.test_case "I/O accounting" `Quick test_btree_io_accounting;
        Alcotest.test_case "bulk load" `Quick test_btree_bulk_load;
        Alcotest.test_case "bulk load empty" `Quick test_btree_bulk_load_empty;
        Alcotest.test_case "insertion orders" `Quick test_btree_reverse_and_random_order;
      ]
      @ qcheck [ prop_btree_model; prop_bulk_load_equals_inserts ] );
    ( "index.hash",
      [
        Alcotest.test_case "insert/lookup" `Quick test_hash_insert_lookup;
        Alcotest.test_case "duplicates/remove" `Quick test_hash_duplicates_and_remove;
        Alcotest.test_case "overflow chains" `Quick test_hash_overflow_chains;
        Alcotest.test_case "scan cost" `Quick test_hash_scan_cost;
        Alcotest.test_case "clear" `Quick test_hash_clear;
      ]
      @ qcheck [ prop_hash_model ] );
    ( "index.tlock",
      [
        Alcotest.test_case "intervals" `Quick test_tlock_intervals;
        Alcotest.test_case "catch-all/unlock" `Quick test_tlock_catch_all_and_unlock;
      ] );
  ]
