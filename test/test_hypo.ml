open Core

let test_tids = Tuple.source ()

let schema =
  Schema.make ~name:"R"
    ~columns:
      Schema.[
        { name = "id"; ty = T_int };
        { name = "pval"; ty = T_float };
        { name = "amount"; ty = T_float };
      ]
    ~tuple_bytes:100 ~key:"id"

let tuple ?(tid = Tuple.next test_tids) id pval amount =
  Tuple.make ~tid [| Value.Int id; Value.Float pval; Value.Float amount |]

let make_hr ?(initial = []) () =
  let meter = Cost_meter.create () in
  let disk = Disk.create meter in
  let base =
    Btree.create ~disk ~name:"R" ~fanout:8 ~leaf_capacity:4
      ~key_col:1 ()
  in
  Btree.bulk_load base initial;
  let hr = Hr.create ~tids:test_tids ~disk ~base ~schema ~ad_buckets:4 ~tuples_per_page:4 () in
  Cost_meter.reset meter;
  (meter, disk, hr)

let ids tuples =
  List.sort Int.compare (List.map (fun t -> Value.as_int (Tuple.get t 0)) tuples)

let test_insert_visible () =
  let _, _, hr = make_hr () in
  Hr.apply_insert hr (tuple 1 0.5 10.) ~marked:true;
  Hr.apply_insert hr (tuple 2 0.6 20.) ~marked:false;
  Alcotest.(check (list int)) "both visible" [ 1; 2 ] (ids (Hr.contents_unmetered hr));
  let a_net, d_net = Hr.net_changes_unmetered hr in
  Alcotest.(check int) "a_net" 2 (List.length a_net);
  Alcotest.(check int) "d_net" 0 (List.length d_net);
  Alcotest.(check bool) "markers preserved" true
    (List.exists (fun (t, m) -> Value.as_int (Tuple.get t 0) = 1 && m) a_net);
  Alcotest.(check bool) "unmarked preserved" true
    (List.exists (fun (t, m) -> Value.as_int (Tuple.get t 0) = 2 && not m) a_net)

let test_delete_of_base_tuple () =
  let t1 = tuple 1 0.5 10. and t2 = tuple 2 0.6 20. in
  let _, _, hr = make_hr ~initial:[ t1; t2 ] () in
  Hr.apply_delete hr t1 ~marked:true;
  Alcotest.(check (list int)) "t1 gone" [ 2 ] (ids (Hr.contents_unmetered hr));
  let a_net, d_net = Hr.net_changes_unmetered hr in
  Alcotest.(check int) "no appends" 0 (List.length a_net);
  Alcotest.(check (list int)) "d_net has t1" [ 1 ] (ids (List.map fst d_net))

let test_append_then_delete_cancels () =
  let _, _, hr = make_hr () in
  let t = tuple 5 0.1 1. in
  Hr.apply_insert hr t ~marked:true;
  Hr.apply_delete hr t ~marked:true;
  let a_net, d_net = Hr.net_changes_unmetered hr in
  Alcotest.(check int) "a_net empty" 0 (List.length a_net);
  Alcotest.(check int) "d_net empty" 0 (List.length d_net);
  Alcotest.(check (list int)) "invisible" [] (ids (Hr.contents_unmetered hr))

let test_update_chain_nets () =
  (* v0 -> v1 -> v2 within one epoch: net = delete v0, append v2. *)
  let v0 = tuple ~tid:100 7 0.3 1. in
  let _, _, hr = make_hr ~initial:[ v0 ] () in
  let v1 = tuple ~tid:101 7 0.3 2. in
  let v2 = tuple ~tid:102 7 0.3 3. in
  Hr.apply_update hr ~old_tuple:v0 ~new_tuple:v1 ~marked_old:true ~marked_new:true;
  Hr.end_transaction hr;
  Hr.apply_update hr ~old_tuple:v1 ~new_tuple:v2 ~marked_old:true ~marked_new:true;
  Hr.end_transaction hr;
  let a_net, d_net = Hr.net_changes_unmetered hr in
  Alcotest.(check (list int)) "a_net = v2" [ 102 ] (List.map (fun (t, _) -> Tuple.tid t) a_net);
  Alcotest.(check (list int)) "d_net = v0" [ 100 ] (List.map (fun (t, _) -> Tuple.tid t) d_net);
  match Hr.contents_unmetered hr with
  | [ t ] -> Alcotest.(check (float 0.)) "visible amount" 3. (Value.as_float (Tuple.get t 2))
  | other -> Alcotest.failf "expected 1 tuple, got %d" (List.length other)

let test_update_io_discipline () =
  (* §2.2.2: one base read (charged Base) plus one AD page read (the single
     extra I/O, charged Hr); the page write lands at end_transaction. *)
  let meter, disk, hr = make_hr ~initial:[ tuple ~tid:100 1 0.5 10. ] () in
  let writes0 = Disk.physical_writes disk in
  Hr.apply_update hr ~old_tuple:(tuple ~tid:100 1 0.5 10.)
    ~new_tuple:(tuple ~tid:101 1 0.5 11.) ~marked_old:true ~marked_new:true;
  Alcotest.(check int) "one base read" 1 (Cost_meter.reads meter Cost_meter.Base);
  Alcotest.(check int) "one extra AD read" 1 (Cost_meter.reads meter Cost_meter.Hr);
  Alcotest.(check int) "no write before txn end" 0 (Disk.physical_writes disk - writes0);
  Hr.end_transaction hr;
  Alcotest.(check int) "one write at txn end" 1 (Disk.physical_writes disk - writes0);
  Alcotest.(check int) "write charged to base" 1 (Cost_meter.writes meter Cost_meter.Base)

let test_ad_page_recharged_across_transactions () =
  let meter, _, hr = make_hr ~initial:[ tuple ~tid:100 1 0.5 10.; tuple ~tid:200 2 0.6 20. ] () in
  Hr.apply_update hr ~old_tuple:(tuple ~tid:100 1 0.5 10.)
    ~new_tuple:(tuple ~tid:101 1 0.5 11.) ~marked_old:true ~marked_new:true;
  Hr.end_transaction hr;
  let hr_reads = Cost_meter.reads meter Cost_meter.Hr in
  Hr.apply_update hr ~old_tuple:(tuple ~tid:200 2 0.6 20.)
    ~new_tuple:(tuple ~tid:201 2 0.6 21.) ~marked_old:true ~marked_new:true;
  Hr.end_transaction hr;
  Alcotest.(check bool) "second transaction recharged" true
    (Cost_meter.reads meter Cost_meter.Hr > hr_reads)

let test_reset_folds_into_base () =
  let v0 = tuple ~tid:100 1 0.5 10. in
  let _, _, hr = make_hr ~initial:[ v0 ] () in
  Hr.apply_update hr ~old_tuple:v0 ~new_tuple:(tuple ~tid:101 1 0.5 99.) ~marked_old:true
    ~marked_new:true;
  Hr.apply_insert hr (tuple ~tid:102 2 0.7 5.) ~marked:false;
  Hr.end_transaction hr;
  Hr.reset hr;
  Alcotest.(check int) "AD empty" 0 (Hr.ad_entry_count hr);
  let base_tuples = ref [] in
  Btree.iter_unmetered (Hr.base hr) (fun t -> base_tuples := t :: !base_tuples);
  Alcotest.(check (list int)) "base updated" [ 1; 2 ] (ids !base_tuples);
  let amounts = List.sort Float.compare (List.map (fun t -> Value.as_float (Tuple.get t 2)) !base_tuples) in
  Alcotest.(check (list (float 0.))) "new values in base" [ 5.; 99. ] amounts;
  (* contents are unchanged by the fold-in *)
  Alcotest.(check (list int)) "contents stable" [ 1; 2 ] (ids (Hr.contents_unmetered hr))

let test_lookup_read_through () =
  let v0 = tuple ~tid:100 1 0.5 10. in
  let _, _, hr = make_hr ~initial:[ v0; tuple ~tid:200 2 0.6 20. ] () in
  (* untouched tuple comes from base *)
  (match Hr.lookup hr ~key:(Value.Int 2) with
  | Some t -> Alcotest.(check int) "base tuple" 200 (Tuple.tid t)
  | None -> Alcotest.fail "base tuple not found");
  (* updated tuple: the AD version wins *)
  Hr.apply_update hr ~old_tuple:v0 ~new_tuple:(tuple ~tid:101 1 0.5 11.) ~marked_old:true
    ~marked_new:true;
  (match Hr.lookup hr ~key:(Value.Int 1) with
  | Some t -> Alcotest.(check int) "AD version" 101 (Tuple.tid t)
  | None -> Alcotest.fail "updated tuple not found");
  (* deleted tuple is invisible *)
  Hr.apply_delete hr (tuple ~tid:200 2 0.6 20.) ~marked:true;
  (match Hr.lookup hr ~key:(Value.Int 2) with
  | None -> ()
  | Some _ -> Alcotest.fail "deleted tuple visible");
  (* unknown key *)
  match Hr.lookup hr ~key:(Value.Int 42) with
  | None -> ()
  | Some _ -> Alcotest.fail "phantom tuple"

(* Property: HR read-through semantics equal replaying the log on a list. *)
let prop_hr_equals_log_replay =
  let op_gen =
    QCheck.Gen.(
      list_size (int_range 0 40)
        (pair (int_range 0 2) (pair (int_range 0 9) (int_range 0 100))))
  in
  QCheck.Test.make ~name:"HR contents = log replay" ~count:50 (QCheck.make op_gen)
    (fun ops ->
      let _, _, hr = make_hr () in
      let reference = Hashtbl.create 16 in
      (* key -> current tuple *)
      List.iter
        (fun (kind, (id, amount)) ->
          let current = Hashtbl.find_opt reference id in
          match (kind, current) with
          | 0, None ->
              let t = tuple id (float_of_int id /. 10.) (float_of_int amount) in
              Hr.apply_insert hr t ~marked:true;
              Hashtbl.replace reference id t
          | 1, Some old_tuple ->
              let t = tuple id (float_of_int id /. 10.) (float_of_int amount) in
              Hr.apply_update hr ~old_tuple ~new_tuple:t ~marked_old:true ~marked_new:true;
              Hashtbl.replace reference id t
          | 2, Some old_tuple ->
              Hr.apply_delete hr old_tuple ~marked:true;
              Hashtbl.remove reference id
          | _ -> ())
        ops;
      Hr.end_transaction hr;
      let expected = Hashtbl.fold (fun _ t acc -> Tuple.tid t :: acc) reference [] in
      let actual = List.map Tuple.tid (Hr.contents_unmetered hr) in
      List.sort Int.compare expected = List.sort Int.compare actual)

(* Property: reset preserves contents and empties AD. *)
let prop_reset_preserves_contents =
  QCheck.Test.make ~name:"reset preserves contents" ~count:40
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 20) (pair (int_range 0 9) (int_range 0 50))))
    (fun updates ->
      let initial = List.init 10 (fun i -> tuple ~tid:(1000 + i) i (float_of_int i /. 10.) 0.) in
      let _, _, hr = make_hr ~initial () in
      let live = Array.of_list initial in
      List.iter
        (fun (idx, amount) ->
          let old_tuple = live.(idx) in
          let new_tuple =
            Tuple.with_tid (Tuple.set old_tuple 2 (Value.Float (float_of_int amount)))
              (Tuple.next test_tids)
          in
          Hr.apply_update hr ~old_tuple ~new_tuple ~marked_old:true ~marked_new:true;
          live.(idx) <- new_tuple)
        updates;
      Hr.end_transaction hr;
      let before = List.sort Int.compare (List.map Tuple.tid (Hr.contents_unmetered hr)) in
      Hr.reset hr;
      let after = List.sort Int.compare (List.map Tuple.tid (Hr.contents_unmetered hr)) in
      before = after && Hr.ad_entry_count hr = 0)

let test_lookup_with_tiny_bloom () =
  (* An 8-bit Bloom filter saturates quickly, forcing the false-positive
     path (filter says maybe, differential file says no, base answers).
     Correctness must be unaffected. *)
  let initial = List.init 30 (fun i -> tuple (500 + i) (float_of_int i /. 30.) 1.) in
  let meter = Cost_meter.create () in
  let disk = Disk.create meter in
  let base =
    Btree.create ~disk ~name:"R" ~fanout:8 ~leaf_capacity:4
      ~key_col:1 ()
  in
  Btree.bulk_load base initial;
  let hr = Hr.create ~tids:test_tids ~disk ~base ~schema ~ad_buckets:4 ~tuples_per_page:4 ~bloom_bits:8 () in
  List.iteri
    (fun i t -> if i < 10 then Hr.apply_insert hr (Tuple.set t 0 (Value.Int i)) ~marked:true)
    initial;
  Hr.end_transaction hr;
  (* base tuples answer through the saturated filter *)
  List.iter
    (fun i ->
      match Hr.lookup hr ~key:(Value.Int (500 + i)) with
      | Some t -> Alcotest.(check int) "base key found" (500 + i) (Value.as_int (Tuple.get t 0))
      | None -> Alcotest.failf "base key %d lost behind the bloom filter" (500 + i))
    [ 0; 7; 15; 29 ];
  (* absent keys stay absent *)
  List.iter
    (fun k ->
      match Hr.lookup hr ~key:(Value.Int k) with
      | None -> ()
      | Some _ -> Alcotest.failf "phantom key %d" k)
    [ 9999; 777; 123456 ]

let qcheck = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "hypo.hr",
      [
        Alcotest.test_case "inserts visible" `Quick test_insert_visible;
        Alcotest.test_case "delete of base tuple" `Quick test_delete_of_base_tuple;
        Alcotest.test_case "append-then-delete cancels" `Quick test_append_then_delete_cancels;
        Alcotest.test_case "update chain nets" `Quick test_update_chain_nets;
        Alcotest.test_case "3-I/O update discipline" `Quick test_update_io_discipline;
        Alcotest.test_case "AD recharged across txns" `Quick
          test_ad_page_recharged_across_transactions;
        Alcotest.test_case "reset folds into base" `Quick test_reset_folds_into_base;
        Alcotest.test_case "lookup read-through" `Quick test_lookup_read_through;
        Alcotest.test_case "lookup with tiny bloom filter" `Quick test_lookup_with_tiny_bloom;
      ]
      @ qcheck [ prop_hr_equals_log_replay; prop_reset_preserves_contents ] );
  ]
