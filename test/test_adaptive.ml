open Core

(* Adaptive maintenance: (a) live migrations must preserve the exact view —
   answers and final contents equal a query-modification reference along every
   migration path, including migrations taken while the deferred strategy's
   hypothetical relation holds pending updates; (b) the controller's guards
   (min_ops, decide_every, hysteresis, break-even) must hold and the policy
   must not flap on a steady workload. *)

let geometry = { Strategy.page_bytes = 400; index_entry_bytes = 20 }

(* Every strategy engine gets its own context.  Output tids start well above
   any generation tid, so identical engines produce identical tid streams
   and can never collide with base-tuple tids. *)
let fresh_ctx () = Ctx.create ~geometry ~first_tid:1_000_000 ()

let answer_bag answers =
  let bag = Bag.create () in
  List.iter
    (fun (tuple, count) ->
      for _ = 1 to count do
        ignore (Bag.add bag tuple)
      done)
    answers;
  bag

let make_env dataset =
  {
    Strategy_sp.ctx = fresh_ctx ();
    view = dataset.Dataset.m1_view;
    initial = dataset.Dataset.m1_tuples;
    ad_buckets = 4;
  }

(* A controller config that never volunteers a migration, so tests drive
   every transition through [force_migrate]. *)
let no_auto = { Controller.default_config with Controller.min_ops = max_int }

let mutate ~tids =
  Stream.mutate_column ~tids ~col:2 (fun rng -> Value.Float (float_of_int (Rng.int rng 100)))

let dataset_and_ops seed =
  let rng = Rng.create (11 + seed) in
  let tids = Tuple.source () in
  let dataset = Dataset.make_model1 ~rng ~tids ~n:200 ~f:0.3 ~s_bytes:100 in
  let tuples = Array.of_list dataset.Dataset.m1_tuples in
  let ops =
    Stream.generate ~rng ~tuples ~mutate:(mutate ~tids) ~k:18 ~l:3 ~q:6
      ~query_of:(Stream.range_query_of ~lo_max:0.27 ~width:0.03)
  in
  (dataset, ops)

(* ------------------------------------------------------------------ *)
(* Forced-migration equivalence                                        *)
(* ------------------------------------------------------------------ *)

(* Deterministic walk over every interesting edge of the migration graph,
   with update transactions (and NO draining query) before each hop, so
   deferred is migrated away from while its differential file is non-empty. *)
let test_forced_paths () =
  let rng = Rng.create 5 in
  let tids = Tuple.source () in
  let dataset = Dataset.make_model1 ~rng ~tids ~n:150 ~f:0.3 ~s_bytes:100 in
  let tuples = Array.of_list dataset.Dataset.m1_tuples in
  let path =
    Migrate.
      [ Immediate; Deferred; Qmod_clustered; Deferred; Immediate; Qmod_unclustered ]
  in
  let txn_phase =
    {
      Stream.ph_k = 4;
      ph_l = 3;
      ph_q = 0;
      ph_mutate = mutate ~tids;
      ph_query_of = Stream.range_query_of ~lo_max:0.27 ~width:0.03;
    }
  in
  let segments =
    Stream.generate_phased ~rng ~tuples (List.map (fun _ -> txn_phase) path)
  in
  let reference = Strategy_sp.qmod_clustered (make_env dataset) in
  let a =
    Adaptive.wrap ~config:no_auto ~candidates:Migrate.all_kinds
      ~initial_kind:Migrate.Qmod_clustered (make_env dataset)
  in
  let s = Adaptive.strategy a in
  let whole_view = { Strategy.q_lo = Strategy.min_sentinel; q_hi = Strategy.max_sentinel } in
  List.iter2
    (fun ops target ->
      List.iter
        (fun op ->
          match op with
          | Stream.Txn changes ->
              reference.Strategy.handle_transaction changes;
              s.Strategy.handle_transaction changes
          | Stream.Query _ -> ())
        ops;
      let from_ = Adaptive.current_kind a in
      let cost = Adaptive.force_migrate a target in
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %s migration cost is finite and non-negative"
           (Migrate.kind_name from_) (Migrate.kind_name target))
        true
        (Float.is_finite cost && cost >= 0.);
      Alcotest.(check bool)
        (Printf.sprintf "controller tracks forced kind %s" (Migrate.kind_name target))
        true
        (Adaptive.current_kind a = target
        && Controller.current (Adaptive.controller a) = target);
      if
        not
          (Bag.equal
             (answer_bag (reference.Strategy.answer_query whole_view))
             (answer_bag (s.Strategy.answer_query whole_view)))
      then
        Alcotest.failf "query answers differ after migrating to %s"
          (Migrate.kind_name target);
      if
        not
          (Bag.equal (reference.Strategy.view_contents ()) (s.Strategy.view_contents ()))
      then
        Alcotest.failf "view contents differ after migrating to %s"
          (Migrate.kind_name target))
    segments path;
  Alcotest.(check int) "all migrations recorded" (List.length path)
    (List.length (Adaptive.migrations a))

(* Property: any sequence of forced migrations at arbitrary points of a
   random stream leaves the adaptive view indistinguishable from the
   query-modification reference. *)
let prop_forced_migration_equivalence =
  let gen =
    QCheck.Gen.(pair (int_range 0 1000) (list_size (int_range 1 6) (int_range 0 4)))
  in
  QCheck.Test.make ~name:"random forced migrations preserve the view" ~count:25
    (QCheck.make gen)
    (fun (seed, path) ->
      let dataset, ops = dataset_and_ops seed in
      let reference = Strategy_sp.qmod_clustered (make_env dataset) in
      let a =
        Adaptive.wrap ~config:no_auto ~candidates:Migrate.all_kinds (make_env dataset)
      in
      let s = Adaptive.strategy a in
      let nops = List.length ops in
      let kinds = List.map (List.nth Migrate.all_kinds) path in
      let nmig = List.length kinds in
      let mig_at = Array.make (nops + 1) None in
      List.iteri (fun j kind -> mig_at.((j + 1) * nops / (nmig + 1)) <- Some kind) kinds;
      let ok = ref true in
      List.iteri
        (fun i op ->
          (match mig_at.(i) with
          | Some kind -> ignore (Adaptive.force_migrate a kind)
          | None -> ());
          match op with
          | Stream.Txn changes ->
              reference.Strategy.handle_transaction changes;
              s.Strategy.handle_transaction changes
          | Stream.Query q ->
              if
                not
                  (Bag.equal
                     (answer_bag (reference.Strategy.answer_query q))
                     (answer_bag (s.Strategy.answer_query q)))
              then ok := false)
        ops;
      !ok
      && Bag.equal (reference.Strategy.view_contents ()) (s.Strategy.view_contents ()))

(* ------------------------------------------------------------------ *)
(* Controller guards                                                   *)
(* ------------------------------------------------------------------ *)

let base_params = { Params.defaults with Params.n_tuples = 5000.; f = 0.5; fv = 0.5 }

let candidates = Migrate.[ Deferred; Immediate; Qmod_clustered ]

let controller ?(config = Controller.default_config) ?(initial = Migrate.Qmod_clustered) ()
    =
  Controller.create ~config ~candidates ~initial ~base_params ()

let query_heavy_wstats () =
  (* all queries, no updates: P ~ 0, squarely in materialization's region *)
  let ws = Wstats.create () in
  for _ = 1 to 40 do
    Wstats.observe_query ws ~returned:1250 ~view_size:2500 ~cost:100. ()
  done;
  ws

let decide c ws ~at_query =
  Controller.decide c ~wstats:ws ~n_tuples:5000. ~f:0.5 ~at_query

let test_min_ops_gate () =
  let c = controller () in
  let ws = Wstats.create () in
  Wstats.observe_query ws ~returned:10 ~view_size:100 ~cost:1. ();
  Alcotest.(check bool) "no decision before min_ops" true (decide c ws ~at_query:10 = None);
  Alcotest.(check int) "nothing logged" 0 (List.length (Controller.log c))

let test_decide_every_gate () =
  let c = controller () in
  let ws = query_heavy_wstats () in
  ignore (decide c ws ~at_query:10);
  let logged = List.length (Controller.log c) in
  Alcotest.(check bool) "too soon after last decision" true
    (decide c ws ~at_query:11 = None);
  Alcotest.(check int) "no extra evaluation logged" logged
    (List.length (Controller.log c))

let test_switch_on_clear_advantage () =
  let c = controller () in
  let ws = query_heavy_wstats () in
  (match decide c ws ~at_query:10 with
  | Some kind ->
      Alcotest.(check bool) "switched to a materialized kind" true
        (Migrate.is_materialized kind);
      Alcotest.(check bool) "controller current updated" true
        (Controller.current c = kind)
  | None -> Alcotest.fail "expected a switch on a query-heavy workload");
  Alcotest.(check int) "one switch" 1 (Controller.switches c)

let test_hysteresis_blocks () =
  let c =
    controller ~config:{ Controller.default_config with Controller.hysteresis = 1e6 } ()
  in
  let ws = query_heavy_wstats () in
  Alcotest.(check bool) "huge hysteresis prevents any switch" true
    (decide c ws ~at_query:10 = None);
  match Controller.log c with
  | [ d ] ->
      Alcotest.(check bool) "evaluation logged but not switched" false d.Controller.d_switched;
      Alcotest.(check bool) "reason names hysteresis" true
        (Astring.String.is_infix ~affix:"hysteresis" d.Controller.d_reason)
  | l -> Alcotest.failf "expected exactly one logged decision, got %d" (List.length l)

let test_break_even_blocks () =
  let c =
    controller ~config:{ Controller.default_config with Controller.horizon = 0. } ()
  in
  let ws = query_heavy_wstats () in
  Alcotest.(check bool) "zero horizon prevents any switch" true
    (decide c ws ~at_query:10 = None);
  match Controller.log c with
  | [ d ] ->
      Alcotest.(check bool) "reason names break-even" true
        (Astring.String.is_infix ~affix:"break-even" d.Controller.d_reason)
  | l -> Alcotest.failf "expected exactly one logged decision, got %d" (List.length l)

let test_no_flapping () =
  let c = controller () in
  let ws = query_heavy_wstats () in
  let switched_first = decide c ws ~at_query:10 <> None in
  Alcotest.(check bool) "first decision switches" true switched_first;
  (* the workload stays query-heavy: the controller must now hold still *)
  for i = 1 to 30 do
    Wstats.observe_query ws ~returned:1250 ~view_size:2500 ~cost:100. ();
    match decide c ws ~at_query:(10 + (i * Controller.default_config.Controller.decide_every)) with
    | Some _ -> Alcotest.failf "flapped at evaluation %d" i
    | None -> ()
  done;
  Alcotest.(check int) "exactly one switch over the steady regime" 1
    (Controller.switches c)

(* ------------------------------------------------------------------ *)
(* Workload observer                                                   *)
(* ------------------------------------------------------------------ *)

let test_wstats_tracks_shift () =
  let ws = Wstats.create ~alpha:0.25 () in
  for _ = 1 to 50 do
    Wstats.observe_txn ws ~l:8 ~cost:50. ()
  done;
  Alcotest.(check bool) "update-heavy: P near 1" true (Wstats.update_probability ws > 0.9);
  Alcotest.(check (float 1e-6)) "mean l" 8. (Wstats.mean_l ws);
  for _ = 1 to 50 do
    Wstats.observe_query ws ~returned:50 ~view_size:100 ~cost:10. ()
  done;
  Alcotest.(check bool) "after the shift: P near 0" true
    (Wstats.update_probability ws < 0.1);
  Alcotest.(check bool) "fv observed" true (Float.abs (Wstats.mean_fv ws -. 0.5) < 0.01);
  let p = Wstats.to_params ws ~base:base_params ~n_tuples:5000. ~f:0.5 in
  (match Params.validate p with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "projected params invalid: %s" msg);
  Alcotest.(check int) "ops counted" 100 (Wstats.ops_seen ws)

(* ------------------------------------------------------------------ *)
(* End to end                                                          *)
(* ------------------------------------------------------------------ *)

(* The wrapped strategy drops into the language layer: [using adaptive]. *)
let test_using_adaptive_in_db () =
  let db = Db.create () in
  let run statement =
    match Db.exec db statement with
    | Ok result -> result
    | Error message -> Alcotest.failf "%s: %s" statement message
  in
  ignore (run "create table r (id int key, pval float, amount float) size 100");
  for i = 1 to 20 do
    ignore
      (run
         (Printf.sprintf "insert into r values (%d, %g, %d)" i
            (float_of_int i /. 20.)
            (10 * i)))
  done;
  ignore
    (run "define view v (pval, amount) from r where pval < 0.5 cluster on pval using adaptive");
  (match run "select * from v" with
  | Db.Rows rows -> Alcotest.(check int) "adaptive view answers" 9 (List.length rows)
  | _ -> Alcotest.fail "expected rows");
  ignore (run "insert into r values (21, 0.05, 5)");
  match run "select * from v" with
  | Db.Rows rows -> Alcotest.(check int) "insert visible through view" 10 (List.length rows)
  | _ -> Alcotest.fail "expected rows"

(* The controller actually migrates (and pays off) on a phase shift. *)
let test_phase_shift_end_to_end () =
  let p =
    { (Experiment.scale Params.defaults 0.05) with Params.f = 0.5; fv = 0.5 }
  in
  let phases =
    [
      { Experiment.sp_k = 120; sp_l = 8; sp_q = 12; sp_fv = 0.5 };
      { Experiment.sp_k = 12; sp_l = 8; sp_q = 240; sp_fv = 0.5 };
    ]
  in
  let results =
    Experiment.measure_phased p ~phases ~adaptive_initial:Migrate.Qmod_clustered
      [ `Clustered; `Deferred; `Immediate; `Adaptive ]
  in
  let adaptive = List.find (fun r -> r.Experiment.ph_adaptive <> None) results in
  let statics = List.filter (fun r -> r.Experiment.ph_adaptive = None) results in
  let a = Option.get adaptive.Experiment.ph_adaptive in
  Alcotest.(check bool) "at least one migration" true (Adaptive.migrations a <> []);
  List.iteri
    (fun i _ ->
      let cost r = (List.nth r.Experiment.ph_per_phase i).Runner.cost_per_query in
      let best = List.fold_left (fun acc r -> Float.min acc (cost r)) Float.infinity statics in
      if cost adaptive > 1.1 *. best then
        Alcotest.failf "phase %d: adaptive %.1f exceeds best static %.1f by > 10%%" (i + 1)
          (cost adaptive) best)
    phases;
  let overall r = r.Experiment.ph_overall.Runner.cost_per_query in
  let worst = List.fold_left (fun acc r -> Float.max acc (overall r)) 0. statics in
  Alcotest.(check bool) "adaptive strictly beats the worst static overall" true
    (overall adaptive < worst)

let qcheck = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "adaptive.migrate",
      [
        Alcotest.test_case "forced path equivalence (pending HR)" `Quick test_forced_paths;
      ]
      @ qcheck [ prop_forced_migration_equivalence ] );
    ( "adaptive.controller",
      [
        Alcotest.test_case "min_ops gate" `Quick test_min_ops_gate;
        Alcotest.test_case "decide_every gate" `Quick test_decide_every_gate;
        Alcotest.test_case "switches on clear advantage" `Quick test_switch_on_clear_advantage;
        Alcotest.test_case "hysteresis blocks" `Quick test_hysteresis_blocks;
        Alcotest.test_case "break-even blocks" `Quick test_break_even_blocks;
        Alcotest.test_case "no flapping on a steady workload" `Quick test_no_flapping;
      ] );
    ( "adaptive.wstats",
      [ Alcotest.test_case "tracks a phase shift" `Quick test_wstats_tracks_shift ] );
    ( "adaptive.end-to-end",
      [
        Alcotest.test_case "using adaptive via sql" `Quick test_using_adaptive_in_db;
        Alcotest.test_case "migrates and pays off on a phase shift" `Slow
          test_phase_shift_end_to_end;
      ] );
  ]
