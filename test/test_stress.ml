open Core

let test_tids = Tuple.source ()

(* Stress runs: long mixed workloads where updates move tuples across the
   view predicate boundary (tuples enter and leave the view, not just change
   inside it), combined inserts/deletes/modifications, and a randomized
   session against the database facade. *)

let geometry = { Strategy.page_bytes = 400; index_entry_bytes = 20 }

let sp_strategies dataset =
  let make ctor =
    (* one isolated ctx per engine, pinned to a common first_tid so the
       engines' generated view tids agree *)
    let ctx = Ctx.create ~geometry ~first_tid:10_000_000 () in
    ctor
      {
        Strategy_sp.ctx;
        view = dataset.Dataset.m1_view;
        initial = dataset.Dataset.m1_tuples;
        ad_buckets = 4;
      }
  in
  [
    ("deferred", make Strategy_sp.deferred);
    ("deferred-split", make Strategy_sp.deferred_split_ad);
    ("deferred-async", make Strategy_sp.deferred_async);
    ("deferred-every-3", make (Strategy_sp.deferred_periodic ~every:3));
    ("immediate", make Strategy_sp.immediate);
    ("qmod-clustered", make Strategy_sp.qmod_clustered);
    ("qmod-unclustered", make Strategy_sp.qmod_unclustered);
    ("qmod-sequential", make Strategy_sp.qmod_sequential);
    ("recompute", make Strategy_sp.recompute);
  ]

(* Mixed workload: modifications that change pval (crossing the predicate
   boundary), pure inserts, pure deletes, all interleaved with queries. *)
let boundary_crossing_ops ~rng ~dataset ~rounds ~f =
  let live = ref (Array.of_list dataset.Dataset.m1_tuples) in
  let fresh_id = ref 1_000_000 in
  let pick () = Rng.int rng (Array.length !live) in
  let ops = ref [] in
  for _ = 1 to rounds do
    (* a transaction's changes are kept in logical order, and a tuple touched
       once in a transaction is not touched again (the paper requires net
       per-transaction change sets) *)
    let touched = Hashtbl.create 8 in
    let changes = ref [] in
    (* two pval-moving modifications of distinct tuples *)
    for _ = 1 to 2 do
      let rec fresh_idx () =
        let idx = pick () in
        if Hashtbl.mem touched idx then fresh_idx () else idx
      in
      let idx = fresh_idx () in
      Hashtbl.replace touched idx ();
      let old_tuple = !live.(idx) in
      let new_tuple =
        Tuple.with_tid (Tuple.set old_tuple 1 (Value.Float (Rng.float rng))) (Tuple.next test_tids)
      in
      !live.(idx) <- new_tuple;
      changes := !changes @ [ Strategy.modify ~old_tuple ~new_tuple ]
    done;
    (* one delete of an untouched survivor *)
    let rec victim_idx () =
      let idx = pick () in
      if Hashtbl.mem touched idx then victim_idx () else idx
    in
    let idx = victim_idx () in
    let victim = !live.(idx) in
    changes := !changes @ [ Strategy.delete victim ];
    live := Array.of_list (List.filter (fun t -> Tuple.tid t <> Tuple.tid victim)
                             (Array.to_list !live));
    (* one insert of a brand-new tuple *)
    incr fresh_id;
    let inserted =
      Tuple.make ~tid:(Tuple.next test_tids)
        [| Value.Int !fresh_id; Value.Float (Rng.float rng); Value.Float 1.; Value.Str "new" |]
    in
    changes := !changes @ [ Strategy.insert inserted ];
    live := Array.append !live [| inserted |];
    ops := Stream.Query (Stream.range_query_of ~lo_max:(0.5 *. f) ~width:(0.5 *. f) rng)
           :: Stream.Txn !changes :: !ops
  done;
  List.rev !ops

let collect (s : Strategy.t) ops =
  List.filter_map
    (fun op ->
      match op with
      | Stream.Txn changes ->
          s.Strategy.handle_transaction changes;
          None
      | Stream.Query q ->
          let bag = Bag.create () in
          List.iter
            (fun (t, c) ->
              for _ = 1 to c do
                ignore (Bag.add bag t)
              done)
            (s.Strategy.answer_query q);
          Some bag)
    ops

let test_boundary_crossing_equivalence () =
  let rng = Rng.create 1001 in
  let f = 0.5 in
  let dataset = Dataset.make_model1 ~rng ~tids:test_tids ~n:250 ~f ~s_bytes:100 in
  let ops = boundary_crossing_ops ~rng ~dataset ~rounds:25 ~f in
  let results = List.map (fun (name, s) -> (name, collect s ops)) (sp_strategies dataset) in
  match results with
  | (ref_name, reference) :: rest ->
      List.iter
        (fun (name, answers) ->
          List.iteri
            (fun i (a, b) ->
              if not (Bag.equal a b) then
                Alcotest.failf "query %d: %s vs %s" i ref_name name)
            (List.combine reference answers))
        rest
  | [] -> ()

let prop_boundary_crossing_seeds =
  QCheck.Test.make ~name:"boundary-crossing equivalence (random seeds)" ~count:6
    (QCheck.int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let f = 0.1 +. (0.8 *. Rng.float rng) in
      let dataset = Dataset.make_model1 ~rng ~tids:test_tids ~n:120 ~f ~s_bytes:100 in
      let ops = boundary_crossing_ops ~rng ~dataset ~rounds:10 ~f in
      let strategies =
        List.filter
          (fun (name, _) -> List.mem name [ "deferred"; "immediate"; "qmod-sequential" ])
          (sp_strategies dataset)
      in
      match List.map (fun (_, s) -> collect s ops) strategies with
      | reference :: rest ->
          List.for_all (fun answers -> List.for_all2 Bag.equal reference answers) rest
      | [] -> true)

(* Randomized facade session: the same random statement stream against two
   databases whose views use different strategies must agree. *)
let test_db_randomized_session () =
  let statements strategy =
    let rng = Rng.create 2002 in
    let setup =
      [
        "create table r (id int key, pval float, amount float) size 100";
        Printf.sprintf
          "define view v (pval, amount) from r where pval < 0.5 cluster on pval using %s"
          strategy;
        "define aggregate s as sum(amount) from r where pval < 0.5 using immediate";
      ]
    in
    let next_id = ref 0 in
    let body =
      List.concat
        (List.init 60 (fun _ ->
             match Rng.int rng 4 with
             | 0 ->
                 incr next_id;
                 [ Printf.sprintf "insert into r values (%d, %f, %d)" !next_id
                     (Rng.float rng) (Rng.int rng 100) ]
             | 1 when !next_id > 0 ->
                 [ Printf.sprintf "update r set amount = %d where id = %d" (Rng.int rng 100)
                     (1 + Rng.int rng !next_id) ]
             | 2 when !next_id > 0 ->
                 [ Printf.sprintf "delete from r where id = %d" (1 + Rng.int rng !next_id) ]
             | _ -> [ "select * from v" ]))
    in
    setup @ body @ [ "select * from v"; "select value from s" ]
  in
  let outcomes strategy =
    let db = Db.create () in
    List.map
      (fun statement ->
        match Db.exec db statement with
        | Ok (Db.Rows rows) ->
            Printf.sprintf "rows:%s"
              (String.concat ";"
                 (List.sort String.compare
                    (List.map (fun (t, c) -> Printf.sprintf "%s*%d" (Tuple.value_key t) c) rows)))
        | Ok (Db.Scalar v) -> Printf.sprintf "scalar:%.6f" v
        | Ok (Db.Done _) -> "ok"
        | Error m -> Alcotest.failf "%s: %s" statement m)
      (statements strategy)
  in
  let strip_setup outcome = List.tl (List.tl outcome) in
  let reference = strip_setup (outcomes "immediate") in
  List.iter
    (fun strategy ->
      Alcotest.(check (list string))
        (strategy ^ " session agrees")
        reference
        (strip_setup (outcomes strategy)))
    [ "deferred"; "recompute"; "sequential" ]

let test_btree_large_random () =
  (* a larger randomized soak of the B+-tree with realistic fanout *)
  let rng = Rng.create 3003 in
  let meter = Cost_meter.create () in
  let disk = Disk.create meter in
  let tree =
    Btree.create ~disk ~name:"soak" ~fanout:16 ~leaf_capacity:8
      ~key_col:0
      ()
  in
  let model = Hashtbl.create 4096 in
  for round = 1 to 5_000 do
    let key = Rng.int rng 500 in
    if Rng.int rng 3 > 0 then begin
      let t = Tuple.make ~tid:round [| Value.Int key |] in
      Btree.insert tree t;
      Hashtbl.add model key round
    end
    else
      match Hashtbl.find_opt model key with
      | Some tid ->
          Alcotest.(check bool) "remove finds entry" true
            (Btree.remove tree ~key:(Value.Int key) ~tid);
          Hashtbl.remove model key
      | None -> ()
  done;
  Btree.check_invariants tree;
  Alcotest.(check int) "sizes agree" (Hashtbl.length model) (Btree.tuple_count tree);
  (* spot-check range scans against the model *)
  for _ = 1 to 20 do
    let lo = Rng.int rng 400 in
    let hi = lo + Rng.int rng 100 in
    let expected =
      Hashtbl.fold (fun k _ acc -> if k >= lo && k <= hi then acc + 1 else acc) model 0
    in
    let got = ref 0 in
    Btree.range tree ~lo:(Value.Int lo) ~hi:(Value.Int hi) (fun _ -> incr got);
    Alcotest.(check int) (Printf.sprintf "range [%d,%d]" lo hi) expected !got
  done

let test_hr_soak () =
  (* thousands of updates through the hypothetical relation with periodic
     resets; contents must always equal the reference map *)
  let rng = Rng.create 4004 in
  let schema =
    Schema.make ~name:"soak"
      ~columns:Schema.[ { name = "id"; ty = T_int }; { name = "pval"; ty = T_float } ]
      ~tuple_bytes:100 ~key:"id"
  in
  let meter = Cost_meter.create () in
  let disk = Disk.create meter in
  let base =
    Btree.create ~disk ~name:"soak" ~fanout:16 ~leaf_capacity:8
      ~key_col:1
      ()
  in
  let initial =
    List.init 100 (fun i ->
        Tuple.make ~tid:(Tuple.next test_tids) [| Value.Int i; Value.Float (Rng.float rng) |])
  in
  Btree.bulk_load base initial;
  let hr = Hr.create ~tids:test_tids ~disk ~base ~schema ~ad_buckets:4 ~tuples_per_page:4 () in
  let reference = Hashtbl.create 256 in
  List.iter (fun t -> Hashtbl.replace reference (Value.as_int (Tuple.get t 0)) t) initial;
  let next_id = ref 100 in
  for round = 1 to 1_000 do
    (match Rng.int rng 3 with
    | 0 ->
        incr next_id;
        let t =
          Tuple.make ~tid:(Tuple.next test_tids)
            [| Value.Int !next_id; Value.Float (Rng.float rng) |]
        in
        Hr.apply_insert hr t ~marked:true;
        Hashtbl.replace reference !next_id t
    | 1 ->
        let keys = Hashtbl.fold (fun k _ acc -> k :: acc) reference [] in
        let key = List.nth keys (Rng.int rng (List.length keys)) in
        let old_tuple = Hashtbl.find reference key in
        let new_tuple =
          Tuple.with_tid (Tuple.set old_tuple 1 (Value.Float (Rng.float rng)))
            (Tuple.next test_tids)
        in
        Hr.apply_update hr ~old_tuple ~new_tuple ~marked_old:true ~marked_new:true;
        Hashtbl.replace reference key new_tuple
    | _ ->
        let keys = Hashtbl.fold (fun k _ acc -> k :: acc) reference [] in
        if List.length keys > 10 then begin
          let key = List.nth keys (Rng.int rng (List.length keys)) in
          Hr.apply_delete hr (Hashtbl.find reference key) ~marked:true;
          Hashtbl.remove reference key
        end);
    Hr.end_transaction hr;
    if round mod 100 = 0 then begin
      Hr.reset hr;
      let expected =
        List.sort Int.compare (Hashtbl.fold (fun _ t acc -> Tuple.tid t :: acc) reference [])
      in
      let actual = List.sort Int.compare (List.map Tuple.tid (Hr.contents_unmetered hr)) in
      if expected <> actual then Alcotest.failf "round %d: contents diverged" round
    end
  done

let qcheck = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "stress",
      [
        Alcotest.test_case "boundary-crossing equivalence (9 strategies)" `Slow
          test_boundary_crossing_equivalence;
        Alcotest.test_case "randomized facade session" `Slow test_db_randomized_session;
        Alcotest.test_case "btree soak" `Slow test_btree_large_random;
        Alcotest.test_case "hypothetical relation soak" `Slow test_hr_soak;
      ]
      @ qcheck [ prop_boundary_crossing_seeds ] );
  ]
