open Core

let test_tids = Tuple.source ()

let v_int i = Value.Int i
let v_float f = Value.Float f
let v_str s = Value.Str s

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_ordering () =
  let check what a b expected =
    Alcotest.(check int) what expected (compare (Value.compare a b) 0)
  in
  check "null lowest" Value.Null (v_int 0) (-1);
  check "bool below int" (Value.Bool true) (v_int 0) (-1);
  check "int/float numeric" (v_int 2) (v_float 2.) 0;
  check "int below float" (v_int 2) (v_float 2.5) (-1);
  check "float above int" (v_float 2.5) (v_int 2) 1;
  check "numbers below strings" (v_int 999) (v_str "a") (-1);
  check "string order" (v_str "a") (v_str "b") (-1)

let test_value_key_string_injective () =
  let values =
    [ Value.Null; Value.Bool true; Value.Bool false; v_int 0; v_int 1; v_float 1.5;
      v_str "x"; v_str "1"; v_str "" ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let same_key = String.equal (Value.key_string a) (Value.key_string b) in
          Alcotest.(check bool)
            (Printf.sprintf "keys %s/%s" (Value.to_string a) (Value.to_string b))
            (Value.equal a b) same_key)
        values)
    values

let test_value_coercions () =
  Alcotest.(check int) "as_int" 5 (Value.as_int (v_int 5));
  Alcotest.(check (float 0.)) "as_float of int" 5. (Value.as_float (v_int 5));
  Alcotest.(check (float 0.)) "as_float" 2.5 (Value.as_float (v_float 2.5));
  (match Value.as_int (v_str "x") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "as_int of string accepted");
  (* int and equal float share a key (they compare equal) *)
  Alcotest.(check string) "int/float key unified" (Value.key_string (v_int 3))
    (Value.key_string (v_float 3.))

let test_value_nan_deterministic () =
  (* Float.compare-based ordering keeps NaN usable as a key: it equals
     itself and orders consistently, so structures never lose tuples. *)
  let nan_v = v_float Float.nan in
  Alcotest.(check int) "nan = nan" 0 (Value.compare nan_v nan_v);
  Alcotest.(check bool) "nan below numbers" true (Value.compare nan_v (v_float 0.) < 0);
  Alcotest.(check bool) "key_string stable" true
    (String.equal (Value.key_string nan_v) (Value.key_string nan_v))

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let sample_schema () =
  Schema.make ~name:"R"
    ~columns:
      Schema.[
        { name = "id"; ty = T_int };
        { name = "pval"; ty = T_float };
        { name = "amount"; ty = T_float };
        { name = "note"; ty = T_string };
      ]
    ~tuple_bytes:100 ~key:"id"

let test_schema_basics () =
  let s = sample_schema () in
  Alcotest.(check int) "arity" 4 (Schema.arity s);
  Alcotest.(check int) "key index" 0 (Schema.key_index s);
  Alcotest.(check int) "column index" 1 (Schema.column_index s "pval");
  Alcotest.(check string) "column name" "amount" (Schema.column_name s 2);
  (match Schema.column_index s "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "missing column accepted")

let test_schema_validation () =
  let cols = Schema.[ { name = "a"; ty = T_int } ] in
  (match Schema.make ~name:"x" ~columns:cols ~tuple_bytes:0 ~key:"a" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero tuple_bytes accepted");
  (match Schema.make ~name:"x" ~columns:cols ~tuple_bytes:10 ~key:"b" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing key accepted");
  match
    Schema.make ~name:"x"
      ~columns:Schema.[ { name = "a"; ty = T_int }; { name = "a"; ty = T_int } ]
      ~tuple_bytes:10 ~key:"a"
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate column accepted"

let test_schema_project () =
  let s = sample_schema () in
  let p = Schema.project s ~name:"V" ~column_names:[ "pval"; "amount" ] ~key:"pval" in
  Alcotest.(check int) "projected arity" 2 (Schema.arity p);
  Alcotest.(check int) "half the bytes" 50 (Schema.tuple_bytes p);
  Alcotest.(check int) "cluster key" 0 (Schema.key_index p)

let test_schema_join () =
  let a = sample_schema () in
  let b =
    Schema.make ~name:"S"
      ~columns:Schema.[ { name = "jkey"; ty = T_int }; { name = "w"; ty = T_float } ]
      ~tuple_bytes:60 ~key:"jkey"
  in
  let j = Schema.join a b ~name:"J" ~key:"id" in
  Alcotest.(check int) "joined arity" 6 (Schema.arity j);
  Alcotest.(check int) "joined bytes" 160 (Schema.tuple_bytes j)

(* ------------------------------------------------------------------ *)
(* Tuple                                                               *)
(* ------------------------------------------------------------------ *)

let tuple values = Tuple.make ~tid:(Tuple.next test_tids) values

let test_tuple_basics () =
  let t = tuple [| v_int 1; v_float 0.5; v_str "a" |] in
  Alcotest.(check int) "arity" 3 (Tuple.arity t);
  Alcotest.(check bool) "get" true (Value.equal (v_float 0.5) (Tuple.get t 1));
  let t2 = Tuple.set t 2 (v_str "b") in
  Alcotest.(check bool) "set immutable" true (Value.equal (v_str "a") (Tuple.get t 2));
  Alcotest.(check bool) "set applied" true (Value.equal (v_str "b") (Tuple.get t2 2));
  Alcotest.(check int) "tid preserved" (Tuple.tid t) (Tuple.tid t2)

let test_tuple_equalities () =
  let a = Tuple.make ~tid:1 [| v_int 1; v_str "x" |] in
  let b = Tuple.make ~tid:2 [| v_int 1; v_str "x" |] in
  Alcotest.(check bool) "value equality ignores tid" true (Tuple.equal_values a b);
  Alcotest.(check bool) "full equality uses tid" false (Tuple.equal a b);
  Alcotest.(check bool) "same value_key" true
    (String.equal (Tuple.value_key a) (Tuple.value_key b));
  Alcotest.(check int) "compare_values equal" 0 (Tuple.compare_values a b)

let test_tuple_project_concat () =
  let t = tuple [| v_int 1; v_float 0.5; v_str "a" |] in
  let p = Tuple.project t [| 2; 0 |] in
  Alcotest.(check bool) "projection order" true
    (Value.equal (v_str "a") (Tuple.get p 0) && Value.equal (v_int 1) (Tuple.get p 1));
  let c = Tuple.concat ~tid:99 t p in
  Alcotest.(check int) "concat arity" 5 (Tuple.arity c);
  Alcotest.(check int) "concat tid" 99 (Tuple.tid c)

let test_fresh_tid_monotone () =
  let a = Tuple.next test_tids in
  let b = Tuple.next test_tids in
  Alcotest.(check bool) "monotone" true (b > a)

(* ------------------------------------------------------------------ *)
(* Cost meter                                                          *)
(* ------------------------------------------------------------------ *)

let test_meter_categories () =
  let m = Cost_meter.create ~c1:1. ~c2:30. ~c3:2. () in
  Cost_meter.charge_read m;
  Cost_meter.with_category m Cost_meter.Query (fun () ->
      Cost_meter.charge_read m;
      Cost_meter.charge_write m;
      Cost_meter.charge_predicate_test m);
  Cost_meter.with_category m Cost_meter.Overhead (fun () -> Cost_meter.charge_set_overhead m 5);
  Alcotest.(check int) "base reads" 1 (Cost_meter.reads m Cost_meter.Base);
  Alcotest.(check int) "query reads" 1 (Cost_meter.reads m Cost_meter.Query);
  Alcotest.(check (float 1e-9)) "query cost" 61. (Cost_meter.cost m Cost_meter.Query);
  Alcotest.(check (float 1e-9)) "overhead cost" 10. (Cost_meter.cost m Cost_meter.Overhead);
  Alcotest.(check (float 1e-9)) "total excl base" 71.
    (Cost_meter.total_cost ~excluding:[ Cost_meter.Base ] m);
  Alcotest.(check (float 1e-9)) "total" 101. (Cost_meter.total_cost m)

let test_meter_nesting_and_exceptions () =
  let m = Cost_meter.create () in
  (try
     Cost_meter.with_category m Cost_meter.Refresh (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check string) "category restored after exception" "base"
    (Cost_meter.category_name (Cost_meter.current_category m));
  Cost_meter.with_category m Cost_meter.Refresh (fun () ->
      Cost_meter.with_category m Cost_meter.Screen (fun () ->
          Cost_meter.charge_predicate_test m);
      Cost_meter.charge_read m);
  Alcotest.(check int) "nested inner" 1 (Cost_meter.predicate_tests m Cost_meter.Screen);
  Alcotest.(check int) "nested outer" 1 (Cost_meter.reads m Cost_meter.Refresh)

let test_meter_snapshot () =
  let m = Cost_meter.create () in
  Cost_meter.charge_read m;
  let snap = Cost_meter.snapshot m in
  Cost_meter.charge_read m;
  Cost_meter.charge_read m;
  Alcotest.(check (float 1e-9)) "since snapshot" 60. (Cost_meter.cost_since m snap ());
  Cost_meter.reset m;
  Alcotest.(check (float 1e-9)) "reset" 0. (Cost_meter.total_cost m)

(* ------------------------------------------------------------------ *)
(* Disk                                                                *)
(* ------------------------------------------------------------------ *)

let test_disk_alloc_and_accounting () =
  let m = Cost_meter.create () in
  let disk = Disk.create m in
  let p1 = Disk.alloc disk ~file:"a" in
  let p2 = Disk.alloc disk ~file:"a" in
  let p3 = Disk.alloc disk ~file:"b" in
  Alcotest.(check int) "pages in a" 2 (Disk.pages_in_file disk "a");
  Alcotest.(check int) "pages in b" 1 (Disk.pages_in_file disk "b");
  Alcotest.(check int) "allocated" 3 (Disk.allocated_pages disk);
  Disk.read disk p1;
  Disk.write disk p2;
  Alcotest.(check int) "physical reads" 1 (Disk.physical_reads disk);
  Alcotest.(check int) "physical writes" 1 (Disk.physical_writes disk);
  Alcotest.(check (float 1e-9)) "charged" 60. (Cost_meter.total_cost m);
  Alcotest.(check string) "file_of" "b" (Disk.file_of disk p3);
  Disk.free disk p3;
  Alcotest.(check int) "freed" 0 (Disk.pages_in_file disk "b");
  match Disk.read disk p3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "read of freed page accepted"

(* ------------------------------------------------------------------ *)
(* Buffer pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_hit_miss () =
  let m = Cost_meter.create () in
  let disk = Disk.create m in
  let pool = Buffer_pool.create disk in
  let p = Disk.alloc disk ~file:"f" in
  Buffer_pool.read pool p;
  Buffer_pool.read pool p;
  Buffer_pool.read pool p;
  Alcotest.(check int) "one physical read" 1 (Disk.physical_reads disk);
  Alcotest.(check int) "hits" 2 (Buffer_pool.hits pool);
  Alcotest.(check int) "misses" 1 (Buffer_pool.misses pool)

let test_pool_write_coalescing () =
  (* The Yao-function accounting: many writes to one page in a batch cost a
     single physical write at flush. *)
  let m = Cost_meter.create () in
  let disk = Disk.create m in
  let pool = Buffer_pool.create disk in
  let p = Disk.alloc disk ~file:"f" in
  Buffer_pool.read pool p;
  for _ = 1 to 10 do
    Buffer_pool.write pool p
  done;
  Alcotest.(check int) "no writes before flush" 0 (Disk.physical_writes disk);
  Buffer_pool.flush pool;
  Alcotest.(check int) "one write at flush" 1 (Disk.physical_writes disk);
  Buffer_pool.flush pool;
  Alcotest.(check int) "clean after flush" 1 (Disk.physical_writes disk)

let test_pool_eviction_writes_dirty () =
  let m = Cost_meter.create () in
  let disk = Disk.create m in
  let pool = Buffer_pool.create ~capacity:2 disk in
  let pages = List.init 3 (fun _ -> Disk.alloc disk ~file:"f") in
  (match pages with
  | [ a; b; c ] ->
      Buffer_pool.read pool a;
      Buffer_pool.write pool a;
      Buffer_pool.read pool b;
      Buffer_pool.read pool c;
      (* a is LRU and dirty: eviction must write it *)
      Alcotest.(check bool) "a evicted" false (Buffer_pool.resident pool a);
      Alcotest.(check int) "dirty write-back" 1 (Disk.physical_writes disk);
      Buffer_pool.read pool a;
      Alcotest.(check int) "re-read charged" 4 (Disk.physical_reads disk)
  | _ -> assert false)

let test_pool_invalidate_and_discard () =
  let m = Cost_meter.create () in
  let disk = Disk.create m in
  let pool = Buffer_pool.create disk in
  let p = Disk.alloc disk ~file:"f" in
  Buffer_pool.write pool p;
  Buffer_pool.invalidate pool;
  Alcotest.(check int) "invalidate flushes" 1 (Disk.physical_writes disk);
  Alcotest.(check int) "empty" 0 (Buffer_pool.resident_count pool);
  Buffer_pool.write pool p;
  Buffer_pool.discard pool p;
  Buffer_pool.flush pool;
  Alcotest.(check int) "discard drops dirty page" 1 (Disk.physical_writes disk)

let test_pool_lru_order () =
  let m = Cost_meter.create () in
  let disk = Disk.create m in
  let pool = Buffer_pool.create ~capacity:2 disk in
  let a = Disk.alloc disk ~file:"f" and b = Disk.alloc disk ~file:"f" in
  let c = Disk.alloc disk ~file:"f" in
  Buffer_pool.read pool a;
  Buffer_pool.read pool b;
  Buffer_pool.read pool a;
  (* touch a again: b is now LRU *)
  Buffer_pool.read pool c;
  Alcotest.(check bool) "a kept (recently used)" true (Buffer_pool.resident pool a);
  Alcotest.(check bool) "b evicted" false (Buffer_pool.resident pool b)

(* Model-based check: the pool's physical reads equal those of a reference
   LRU simulation over the same access trace. *)
let prop_pool_matches_reference_lru =
  let ops_gen =
    QCheck.Gen.(
      pair (int_range 1 6)
        (list_size (int_range 0 120) (pair bool (int_range 0 11))))
  in
  QCheck.Test.make ~name:"pool = reference LRU" ~count:80 (QCheck.make ops_gen)
    (fun (capacity, ops) ->
      let m = Cost_meter.create () in
      let disk = Disk.create m in
      let pool = Buffer_pool.create ~capacity disk in
      let pages = Array.init 12 (fun _ -> Disk.alloc disk ~file:"f") in
      (* reference: list of (page index, dirty) in LRU order, MRU first *)
      let reference = ref [] in
      let ref_reads = ref 0 and ref_writes = ref 0 in
      let touch idx ~dirty =
        let present = List.mem_assoc idx !reference in
        let was_dirty = try List.assoc idx !reference with Not_found -> false in
        if (not present) && not dirty then incr ref_reads;
        reference := (idx, (was_dirty || dirty)) :: List.remove_assoc idx !reference;
        if List.length !reference > capacity then begin
          match List.rev !reference with
          | (victim, victim_dirty) :: _ ->
              if victim_dirty then incr ref_writes;
              reference := List.remove_assoc victim !reference
          | [] -> ()
        end
      in
      List.iter
        (fun (is_write, idx) ->
          if is_write then begin
            Buffer_pool.write pool pages.(idx);
            touch idx ~dirty:true
          end
          else begin
            Buffer_pool.read pool pages.(idx);
            touch idx ~dirty:false
          end)
        ops;
      Disk.physical_reads disk = !ref_reads && Disk.physical_writes disk = !ref_writes)

(* ------------------------------------------------------------------ *)
(* Heap file                                                           *)
(* ------------------------------------------------------------------ *)

let heap () =
  let m = Cost_meter.create () in
  let disk = Disk.create m in
  let schema = sample_schema () in
  (m, disk, Heap_file.create ~disk ~page_bytes:400 schema)

let heap_tuple i =
  tuple [| v_int i; v_float (float_of_int i /. 100.); v_float 1.; v_str "x" |]

let test_heap_insert_scan () =
  let _, _, h = heap () in
  Alcotest.(check int) "tuples per page" 4 (Heap_file.tuples_per_page h);
  let tuples = List.init 10 heap_tuple in
  List.iter (fun t -> ignore (Heap_file.insert h t)) tuples;
  Alcotest.(check int) "count" 10 (Heap_file.tuple_count h);
  Alcotest.(check int) "pages" 3 (Heap_file.page_count h);
  let seen = ref 0 in
  Heap_file.scan h (fun _ -> incr seen);
  Alcotest.(check int) "scan sees all" 10 !seen

let test_heap_scan_cost () =
  let m, disk, h = heap () in
  List.iter (fun t -> ignore (Heap_file.insert h t)) (List.init 12 heap_tuple);
  Buffer_pool.invalidate (Heap_file.pool h);
  Cost_meter.reset m;
  let reads0 = Disk.physical_reads disk in
  Heap_file.scan h (fun _ -> ());
  Alcotest.(check int) "one read per page" (Heap_file.page_count h)
    (Disk.physical_reads disk - reads0)

let test_heap_delete_and_locators () =
  let _, _, h = heap () in
  let tuples = List.init 8 heap_tuple in
  let locators = List.map (fun t -> (Heap_file.insert h t, t)) tuples in
  let loc, t = List.nth locators 3 in
  Alcotest.(check bool) "read_at" true (Tuple.equal t (Heap_file.read_at h loc));
  Heap_file.delete h loc;
  Alcotest.(check int) "deleted" 7 (Heap_file.tuple_count h);
  (match Heap_file.delete h loc with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stale locator accepted");
  (* deleted slot is reused by a later insert *)
  ignore (Heap_file.insert h (heap_tuple 100));
  Alcotest.(check int) "page count stable" 2 (Heap_file.page_count h)

let test_heap_find_unmetered () =
  let _, _, h = heap () in
  List.iter (fun t -> ignore (Heap_file.insert h t)) (List.init 5 heap_tuple);
  match Heap_file.find_unmetered h (fun t -> Value.equal (Tuple.get t 0) (v_int 3)) with
  | Some (_, t) -> Alcotest.(check bool) "found id 3" true (Value.equal (v_int 3) (Tuple.get t 0))
  | None -> Alcotest.fail "not found"

let suites =
  [
    ( "storage.value",
      [
        Alcotest.test_case "ordering" `Quick test_value_ordering;
        Alcotest.test_case "key_string injective" `Quick test_value_key_string_injective;
        Alcotest.test_case "coercions" `Quick test_value_coercions;
        Alcotest.test_case "NaN determinism" `Quick test_value_nan_deterministic;
      ] );
    ( "storage.schema",
      [
        Alcotest.test_case "basics" `Quick test_schema_basics;
        Alcotest.test_case "validation" `Quick test_schema_validation;
        Alcotest.test_case "project" `Quick test_schema_project;
        Alcotest.test_case "join" `Quick test_schema_join;
      ] );
    ( "storage.tuple",
      [
        Alcotest.test_case "basics" `Quick test_tuple_basics;
        Alcotest.test_case "equalities" `Quick test_tuple_equalities;
        Alcotest.test_case "project/concat" `Quick test_tuple_project_concat;
        Alcotest.test_case "fresh tid monotone" `Quick test_fresh_tid_monotone;
      ] );
    ( "storage.meter",
      [
        Alcotest.test_case "categories" `Quick test_meter_categories;
        Alcotest.test_case "nesting and exceptions" `Quick test_meter_nesting_and_exceptions;
        Alcotest.test_case "snapshot" `Quick test_meter_snapshot;
      ] );
    ("storage.disk", [ Alcotest.test_case "alloc/accounting" `Quick test_disk_alloc_and_accounting ]);
    ( "storage.pool",
      [
        Alcotest.test_case "hit/miss" `Quick test_pool_hit_miss;
        Alcotest.test_case "write coalescing" `Quick test_pool_write_coalescing;
        Alcotest.test_case "eviction writes dirty" `Quick test_pool_eviction_writes_dirty;
        Alcotest.test_case "invalidate/discard" `Quick test_pool_invalidate_and_discard;
        Alcotest.test_case "lru order" `Quick test_pool_lru_order;
        QCheck_alcotest.to_alcotest prop_pool_matches_reference_lru;
      ] );
    ( "storage.heap",
      [
        Alcotest.test_case "insert/scan" `Quick test_heap_insert_scan;
        Alcotest.test_case "scan cost" `Quick test_heap_scan_cost;
        Alcotest.test_case "delete/locators" `Quick test_heap_delete_and_locators;
        Alcotest.test_case "find_unmetered" `Quick test_heap_find_unmetered;
      ] );
  ]
