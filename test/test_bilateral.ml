open Core

let test_tids = Tuple.source ()

(* Operational Appendix A: join-view maintenance with updates to both
   relations.  The corrected maintainer always agrees with query
   modification; Blakeley's maintainer works on one-sided transactions but
   corrupts the stored view on a two-sided delete of joining tuples. *)

let geometry = { Strategy.page_bytes = 400; index_entry_bytes = 20 }

(* One dataset, fresh storage per maintainer (tids must match across the
   maintainers so base updates find their tuples). *)
let make_world ?(seed = 81) ?(n = 120) () =
  let rng = Rng.create seed in
  let dataset = Dataset.make_model2 ~rng ~tids:test_tids ~n ~f:0.6 ~f_r2:0.25 ~s_bytes:100 in
  let env () =
    (* engines must agree on generated tids, so each gets a ctx pinned to the
       same first_tid, far above any base-tuple tid *)
    {
      Strategy_join.ctx = Ctx.create ~geometry ~first_tid:1_000_000 ();
      view = dataset.m2_view;
      initial_left = dataset.m2_left_tuples;
      initial_right = dataset.m2_right_tuples;
      ad_buckets = 4;
      r2_buckets = 8;
    }
  in
  (dataset, env, rng)

let whole_view = { Strategy.q_lo = Value.Float 0.; q_hi = Value.Float 1. }

let bag_of results =
  let bag = Bag.create () in
  List.iter
    (fun (t, c) ->
      for _ = 1 to c do
        ignore (Bag.add bag t)
      done)
    results;
  bag

let check_agree what a b =
  if not (Bag.equal (bag_of (Bilateral.answer_query a whole_view))
            (bag_of (Bilateral.answer_query b whole_view)))
  then
    Alcotest.failf "%s: %s and %s disagree" what (Bilateral.name a) (Bilateral.name b)

(* a bilateral workload generator over the live populations of both sides *)
let bilateral_ops ~rng ~dataset ~rounds =
  let left = Array.of_list dataset.Dataset.m2_left_tuples in
  let right = Array.of_list dataset.Dataset.m2_right_tuples in
  let next_right_key = ref 10_000 in
  List.concat
    (List.init rounds (fun _ ->
         let modify_left () =
           let idx = Rng.int rng (Array.length left) in
           let old_tuple = left.(idx) in
           let new_tuple =
             Tuple.with_tid
               (Tuple.set old_tuple 3 (Value.Str (Printf.sprintf "c%d" (Rng.int rng 1000))))
               (Tuple.next test_tids)
           in
           left.(idx) <- new_tuple;
           (Bilateral.Left, Strategy.modify ~old_tuple ~new_tuple)
         in
         let modify_right () =
           let idx = Rng.int rng (Array.length right) in
           let old_tuple = right.(idx) in
           let new_tuple =
             Tuple.with_tid
               (Tuple.set old_tuple 1 (Value.Float (Rng.float rng)))
               (Tuple.next test_tids)
           in
           right.(idx) <- new_tuple;
           (Bilateral.Right, Strategy.modify ~old_tuple ~new_tuple)
         in
         let insert_right () =
           incr next_right_key;
           let t =
             Tuple.make ~tid:(Tuple.next test_tids)
               [| Value.Int !next_right_key; Value.Float (Rng.float rng); Value.Str "t" |]
           in
           (Bilateral.Right, Strategy.insert t)
         in
         (* list literals evaluate elements right-to-left, so sequence the
            side-effecting constructors explicitly *)
         let c1 = modify_left () in
         let c2 = modify_right () in
         let c3 = modify_right () in
         let c4 = insert_right () in
         [ [ c1; c2 ]; [ c3; c4 ] ]))

let test_corrected_matches_loopjoin () =
  let dataset, env, rng = make_world () in
  let immediate = Bilateral.immediate (env ()) in
  let reference = Bilateral.loopjoin (env ()) in
  List.iter
    (fun txn ->
      Bilateral.handle_transaction immediate txn;
      Bilateral.handle_transaction reference txn;
      check_agree "after txn" immediate reference)
    (bilateral_ops ~rng ~dataset ~rounds:12);
  Alcotest.(check bool) "final contents agree" true
    (Bag.equal (Bilateral.view_contents immediate) (Bilateral.view_contents reference))

let test_blakeley_ok_one_sided () =
  (* With updates confined to one relation per transaction, Blakeley's
     expression is fine. *)
  let dataset, env, rng = make_world () in
  let blakeley = Bilateral.blakeley (env ()) in
  let reference = Bilateral.loopjoin (env ()) in
  let left = Array.of_list dataset.Dataset.m2_left_tuples in
  for _ = 1 to 8 do
    let idx = Rng.int rng (Array.length left) in
    let old_tuple = left.(idx) in
    let new_tuple =
      Tuple.with_tid
        (Tuple.set old_tuple 3 (Value.Str (Printf.sprintf "x%d" (Rng.int rng 1000))))
        (Tuple.next test_tids)
    in
    left.(idx) <- new_tuple;
    let txn = [ (Bilateral.Left, Strategy.modify ~old_tuple ~new_tuple) ] in
    Bilateral.handle_transaction blakeley txn;
    Bilateral.handle_transaction reference txn;
    check_agree "one-sided" blakeley reference
  done

let both_sided_delete_txn dataset =
  (* pick a joining pair (every left tuple joins exactly one right tuple) *)
  let left_tuple =
    List.find
      (fun t -> Predicate.eval dataset.Dataset.m2_view.j_left_pred t)
      dataset.Dataset.m2_left_tuples
  in
  let jkey = Tuple.get left_tuple 2 in
  let right_tuple =
    List.find
      (fun t -> Value.equal (Tuple.get t 0) jkey)
      dataset.Dataset.m2_right_tuples
  in
  [
    (Bilateral.Left, Strategy.delete left_tuple);
    (Bilateral.Right, Strategy.delete right_tuple);
  ]

let test_blakeley_corrupts_on_two_sided_delete () =
  let dataset, env, _ = make_world () in
  let blakeley = Bilateral.blakeley (env ()) in
  match Bilateral.handle_transaction blakeley (both_sided_delete_txn dataset) with
  | exception Failure message ->
      Alcotest.(check bool) "stored view detected the over-deletion" true
        (Astring.String.is_infix ~affix:"delete of absent view tuple" message)
  | () -> Alcotest.fail "Blakeley's expression went undetected"

let test_corrected_handles_two_sided_delete () =
  let dataset, env, _ = make_world () in
  let immediate = Bilateral.immediate (env ()) in
  let reference = Bilateral.loopjoin (env ()) in
  let txn = both_sided_delete_txn dataset in
  Bilateral.handle_transaction immediate txn;
  Bilateral.handle_transaction reference txn;
  check_agree "after two-sided delete" immediate reference

let test_two_sided_insert_and_retarget () =
  (* a transaction that inserts a new right tuple AND moves a left tuple onto
     it exercises the A1 x A2 term *)
  let dataset, env, _ = make_world () in
  let immediate = Bilateral.immediate (env ()) in
  let reference = Bilateral.loopjoin (env ()) in
  let fresh_right =
    Tuple.make ~tid:(Tuple.next test_tids) [| Value.Int 777; Value.Float 0.5; Value.Str "t" |]
  in
  let old_left = List.hd dataset.Dataset.m2_left_tuples in
  let new_left =
    Tuple.with_tid (Tuple.set old_left 2 (Value.Int 777)) (Tuple.next test_tids)
  in
  let txn =
    [
      (Bilateral.Right, Strategy.insert fresh_right);
      (Bilateral.Left, Strategy.modify ~old_tuple:old_left ~new_tuple:new_left);
    ]
  in
  Bilateral.handle_transaction immediate txn;
  Bilateral.handle_transaction reference txn;
  check_agree "A1 x A2 term" immediate reference

let prop_bilateral_random_equivalence =
  QCheck.Test.make ~name:"bilateral corrected = loopjoin (random)" ~count:10
    (QCheck.int_range 0 1000)
    (fun seed ->
      let dataset, env, _ = make_world ~seed:(9_000 + seed) ~n:60 () in
      let rng = Rng.create (77_000 + seed) in
      let immediate = Bilateral.immediate (env ()) in
      let reference = Bilateral.loopjoin (env ()) in
      List.for_all
        (fun txn ->
          Bilateral.handle_transaction immediate txn;
          Bilateral.handle_transaction reference txn;
          Bag.equal
            (bag_of (Bilateral.answer_query immediate whole_view))
            (bag_of (Bilateral.answer_query reference whole_view)))
        (bilateral_ops ~rng ~dataset ~rounds:5))

let qcheck = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "bilateral",
      [
        Alcotest.test_case "corrected = loopjoin" `Quick test_corrected_matches_loopjoin;
        Alcotest.test_case "Blakeley fine one-sided" `Quick test_blakeley_ok_one_sided;
        Alcotest.test_case "Blakeley corrupts on two-sided delete" `Quick
          test_blakeley_corrupts_on_two_sided_delete;
        Alcotest.test_case "corrected survives two-sided delete" `Quick
          test_corrected_handles_two_sided_delete;
        Alcotest.test_case "A1 x A2 term" `Quick test_two_sided_insert_and_retarget;
      ]
      @ qcheck [ prop_bilateral_random_equivalence ] );
  ]
