(* Tests for the serving observability layer (DESIGN §11): flight-ring
   overflow and merge determinism, Space-Saving sketch accuracy on Zipfian
   streams (qcheck), multi-domain sketch merging against a single-stream
   reference, the bucket_key quantizer, and dashboard snapshot JSON. *)

open Core

(* ------------------------------------------------------------------ *)
(* Flight rings: overflow, drain order, merge determinism              *)
(* ------------------------------------------------------------------ *)

let pin e = Flight.Pin { epoch = e }

let test_flight_overflow () =
  let ring = Flight.create ~capacity:4 ~label:"writer" () in
  Alcotest.(check int) "capacity" 4 (Flight.capacity ring);
  for i = 0 to 5 do
    Flight.append ring ~at_us:(float_of_int i) (pin i)
  done;
  Alcotest.(check int) "appended counts evictions" 6 (Flight.appended ring);
  Alcotest.(check int) "dropped = appended - capacity" 2 (Flight.dropped ring);
  let drained = Flight.drain ring in
  Alcotest.(check int) "drain returns capacity events" 4 (List.length drained);
  (* Oldest-first, and exactly the oldest two were evicted. *)
  Alcotest.(check (list int)) "oldest evicted, order preserved" [ 2; 3; 4; 5 ]
    (List.map
       (fun (_, ev) -> match ev with Flight.Pin { epoch } -> epoch | _ -> -1)
       drained);
  Alcotest.(check (list (float 1e-9))) "timestamps ride along" [ 2.; 3.; 4.; 5. ]
    (List.map fst drained)

let test_flight_no_overflow () =
  let ring = Flight.create ~capacity:8 ~label:"r" () in
  Flight.append ring ~at_us:1. (pin 0);
  Flight.append ring ~at_us:2. (pin 1);
  Alcotest.(check int) "nothing dropped" 0 (Flight.dropped ring);
  Alcotest.(check int) "both retained" 2 (List.length (Flight.drain ring))

let test_flight_merge_order_independent () =
  let mk label epochs =
    let ring = Flight.create ~capacity:16 ~label () in
    List.iter (fun e -> Flight.append ring ~at_us:(float_of_int e) (pin e)) epochs;
    ring
  in
  let a () = mk "reader-0" [ 1; 2 ] in
  let b () = mk "reader-1" [ 3 ] in
  let w () = mk "writer" [ 0 ] in
  let labels rings = List.map Flight.label (Flight.merge rings) in
  let canonical = [ "reader-0"; "reader-1"; "writer" ] in
  Alcotest.(check (list string)) "join order 1" canonical (labels [ a (); b (); w () ]);
  Alcotest.(check (list string)) "join order 2" canonical (labels [ w (); b (); a () ]);
  Alcotest.(check (list string)) "join order 3" canonical (labels [ b (); w (); a () ]);
  Alcotest.check_raises "duplicate labels rejected"
    (Invalid_argument "Flight.merge: duplicate label \"reader-0\"") (fun () ->
      ignore (Flight.merge [ a (); a () ]))

let test_flight_export_metrics () =
  let ring = Flight.create ~capacity:2 ~label:"writer" () in
  for i = 0 to 4 do
    Flight.append ring ~at_us:(float_of_int i) (pin i)
  done;
  let metrics = Metrics.create () in
  let r = Recorder.create ~metrics () in
  Flight.export_metrics r [ ring ];
  let v name =
    Option.value ~default:(-1.)
      (Metrics.counter_value metrics ~labels:[ ("domain", "writer") ] name)
  in
  Alcotest.(check (float 1e-9)) "appended exported" 5. (v "vmat_flight_appended_total");
  Alcotest.(check (float 1e-9)) "dropped exported" 3.
    (v "vmat_flight_dropped_events_total");
  Alcotest.(check (float 1e-9)) "per-kind counts retained events only" 2.
    (Option.value ~default:(-1.)
       (Metrics.counter_value metrics
          ~labels:[ ("domain", "writer"); ("kind", "pin") ]
          "vmat_flight_events_total"))

let test_flight_to_trace () =
  let reader = Flight.create ~capacity:16 ~label:"reader-0" () in
  Flight.append reader ~at_us:1000.
    (Flight.Query_begin { seq = 0; epoch = 2; lo = "0.1"; hi = "0.2" });
  Flight.append reader ~at_us:1500. (Flight.Query_end { seq = 0; rows = 7; wall_us = 500. });
  (* An orphan begin (its end was evicted) must degrade, not raise. *)
  Flight.append reader ~at_us:2000.
    (Flight.Query_begin { seq = 1; epoch = 2; lo = "0.3"; hi = "0.4" });
  let writer = Flight.create ~capacity:16 ~label:"writer" () in
  Flight.append writer ~at_us:800. (Flight.Publish { epoch = 1; txns = 8; modeled_ms = 3. });
  let trace = Trace.create () in
  Flight.to_trace trace (Flight.merge [ writer; reader ]);
  Alcotest.(check int) "no span left open" 0 (Trace.open_depth trace);
  Alcotest.(check bool) "events emitted" true (Trace.event_count trace > 0);
  (* The chrome export must stay balanced and well-formed. *)
  let begins, ends =
    List.fold_left
      (fun (b, e) ev ->
        match ev with
        | Trace.Begin _ -> (b + 1, e)
        | Trace.End _ -> (b, e + 1)
        | _ -> (b, e))
      (0, 0) (Trace.events trace)
  in
  Alcotest.(check int) "begin/end balanced" begins ends

(* ------------------------------------------------------------------ *)
(* Sketch: deterministic unit behavior                                 *)
(* ------------------------------------------------------------------ *)

let test_sketch_exact_under_capacity () =
  let sk = Sketch.create ~capacity:8 () in
  List.iter
    (fun (key, n) -> Sketch.observe sk ~count:n key)
    [ ("a", 5); ("b", 3); ("c", 1) ];
  Alcotest.(check int) "total" 9 (Sketch.total sk);
  Alcotest.(check int) "tracked" 3 (Sketch.tracked sk);
  (match Sketch.top sk with
  | { Sketch.hh_key = "a"; hh_count = 5; hh_err = 0 } :: _ -> ()
  | tops ->
      Alcotest.failf "unexpected top: %s"
        (String.concat ";"
           (List.map (fun h -> Printf.sprintf "%s=%d" h.Sketch.hh_key h.Sketch.hh_count) tops)));
  Alcotest.(check (float 1e-9)) "skew = 5/9" (5. /. 9.) (Sketch.skew sk);
  Alcotest.(check (float 1e-9)) "distinct exact under reservoir" 3. (Sketch.distinct sk)

let test_bucket_key () =
  let b = Sketch.bucket_key ~cells:4 ~lo:0. ~hi:1. in
  Alcotest.(check string) "first cell" "[0,0.25)" (b 0.1);
  Alcotest.(check string) "boundary belongs to upper cell" "[0.25,0.5)" (b 0.25);
  Alcotest.(check string) "last cell" "[0.75,1)" (b 0.99);
  Alcotest.(check string) "clamped below" "[0,0.25)" (b (-3.));
  Alcotest.(check string) "clamped above (hi is exclusive)" "[0.75,1)" (b 1.);
  Alcotest.check_raises "cells < 1 rejected"
    (Invalid_argument "Sketch.bucket_key: cells must be >= 1") (fun () ->
      ignore (Sketch.bucket_key ~cells:0 ~lo:0. ~hi:1. 0.5))

(* ------------------------------------------------------------------ *)
(* Sketch: Space-Saving guarantees on Zipfian streams (qcheck)         *)
(* ------------------------------------------------------------------ *)

(* A deterministic Zipf-ish stream over [universe] keys: key i is drawn with
   weight 1/(i+1)^s, using the repo's own RNG so runs are reproducible. *)
let zipf_stream ~seed ~universe ~s ~n =
  let rng = Rng.create seed in
  let weights = Array.init universe (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s) in
  let cum = Array.make universe 0. in
  let _ =
    Array.fold_left
      (fun (i, acc) w ->
        let acc = acc +. w in
        cum.(i) <- acc;
        (i + 1, acc))
      (0, 0.) weights
  in
  let total = cum.(universe - 1) in
  List.init n (fun _ ->
      let x = Rng.float rng *. total in
      let rec find i = if i >= universe - 1 || cum.(i) >= x then i else find (i + 1) in
      Printf.sprintf "k%02d" (find 0))

let true_counts stream =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun key -> Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    stream;
  tbl

(* Every key above the n/k frequency bound is present, and every reported
   (count, err) brackets the true count. *)
let sketch_zipf_guarantees =
  QCheck.Test.make ~name:"space-saving bound and bracket on zipf streams" ~count:30
    QCheck.(triple (int_range 1 1000) (int_range 4 16) (int_range 200 1500))
    (fun (seed, capacity, n) ->
      let stream = zipf_stream ~seed ~universe:40 ~s:1.2 ~n in
      let sk = Sketch.create ~capacity () in
      List.iter (Sketch.observe sk) stream;
      let truth = true_counts stream in
      let bound = Sketch.error_bound sk in
      if Sketch.total sk <> n then QCheck.Test.fail_report "total miscounts stream";
      (* Guarantee 1: frequent keys are present. *)
      Hashtbl.iter
        (fun key c ->
          if float_of_int c > bound && Sketch.find sk key = None then
            QCheck.Test.fail_reportf "key %s (count %d > bound %.1f) missing" key c bound)
        truth;
      (* Guarantee 2: the reported bracket holds for every tracked key. *)
      List.iter
        (fun h ->
          let t = Option.value ~default:0 (Hashtbl.find_opt truth h.Sketch.hh_key) in
          if not (h.Sketch.hh_count - h.Sketch.hh_err <= t && t <= h.Sketch.hh_count) then
            QCheck.Test.fail_reportf "bracket broken for %s: count %d err %d true %d"
              h.Sketch.hh_key h.Sketch.hh_count h.Sketch.hh_err t)
        (Sketch.top sk);
      true)

(* Merged per-domain sketches obey the same bracket (with summed error)
   against the concatenated stream, and agree with a single-sketch
   reference on which high-frequency keys exist. *)
let sketch_merge_vs_reference =
  QCheck.Test.make ~name:"merged sketches match single-domain reference within bound"
    ~count:30
    QCheck.(triple (int_range 1 1000) (int_range 6 16) (int_range 2 4))
    (fun (seed, capacity, domains) ->
      let streams =
        List.init domains (fun d ->
            zipf_stream ~seed:(seed + d) ~universe:30 ~s:1.1 ~n:(300 + (100 * d)))
      in
      let sketches =
        List.map
          (fun stream ->
            let sk = Sketch.create ~capacity () in
            List.iter (Sketch.observe sk) stream;
            sk)
          streams
      in
      let merged = Sketch.merge sketches in
      let whole = List.concat streams in
      let truth = true_counts whole in
      let n = List.length whole in
      if Sketch.total merged <> n then QCheck.Test.fail_report "merged total wrong";
      (* Bracket for every reported key, against the concatenated truth. *)
      List.iter
        (fun h ->
          let t = Option.value ~default:0 (Hashtbl.find_opt truth h.Sketch.hh_key) in
          if not (h.Sketch.hh_count - h.Sketch.hh_err <= t && t <= h.Sketch.hh_count) then
            QCheck.Test.fail_reportf "merged bracket broken for %s: count %d err %d true %d"
              h.Sketch.hh_key h.Sketch.hh_count h.Sketch.hh_err t)
        (Sketch.top merged);
      (* Presence above the merged error bound. *)
      let bound = Sketch.error_bound merged in
      Hashtbl.iter
        (fun key c ->
          if float_of_int c > bound && Sketch.find merged key = None then
            QCheck.Test.fail_reportf "merged lost key %s (count %d > bound %.1f)" key c
              bound)
        truth;
      (* Merge is order-independent. *)
      let merged_rev = Sketch.merge (List.rev sketches) in
      if Sketch.top merged <> Sketch.top merged_rev then
        QCheck.Test.fail_report "merge depends on input order";
      true)

(* ------------------------------------------------------------------ *)
(* Dashboard snapshots                                                 *)
(* ------------------------------------------------------------------ *)

let sample_snapshot ~final =
  {
    Dash.d_seq = 3;
    d_final = final;
    d_strategy = "deferred";
    d_wall_s = 0.25;
    d_txns = 100;
    d_queries = 400;
    d_epochs = 13;
    d_tps = 400.;
    d_qps = 1600.;
    d_txn_p50_us = 10.;
    d_txn_p95_us = 20.;
    d_txn_p99_us = 30.;
    d_query_p50_us = 1.;
    d_query_p95_us = 2.;
    d_query_p99_us = 3.;
    d_modeled_ms = 1234.5;
    d_categories =
      [ { Dash.c_name = "hr"; c_meter_ms = 100.; c_metric_ms = 100. } ];
    d_hot_keys = [ { Dash.h_key = "[0,0.25)"; h_count = 42; h_err = 1 } ];
    d_key_total = 500;
    d_key_distinct = 17.;
    d_key_skew = 0.2;
    d_flight = [ { Dash.rs_label = "writer"; rs_appended = 50; rs_dropped = 2 } ];
    d_gauges = (if final then [ ("vmat_serve_epochs", 13.) ] else []);
  }

let test_dash_json () =
  let snap = sample_snapshot ~final:true in
  let json = Dash.to_json snap in
  match Test_obs.parse_json json with
  | Test_obs.Jobj fields ->
      let get k = List.assoc_opt k fields in
      Alcotest.(check bool) "seq" true (get "seq" = Some (Test_obs.Jnum 3.));
      Alcotest.(check bool) "final" true (get "final" = Some (Test_obs.Jbool true));
      Alcotest.(check bool) "strategy" true
        (get "strategy" = Some (Test_obs.Jstr "deferred"));
      (match get "hot_keys" with
      | Some (Test_obs.Jarr [ Test_obs.Jobj hk ]) ->
          Alcotest.(check bool) "hot key label" true
            (List.assoc_opt "key" hk = Some (Test_obs.Jstr "[0,0.25)"))
      | _ -> Alcotest.fail "hot_keys missing or malformed");
      (match get "txn_latency_us" with
      | Some (Test_obs.Jobj l) ->
          Alcotest.(check bool) "txn p95" true
            (List.assoc_opt "p95" l = Some (Test_obs.Jnum 20.))
      | _ -> Alcotest.fail "txn_latency_us missing")
  | _ -> Alcotest.fail "dash snapshot is not a JSON object"

let test_dash_render () =
  let view = Dash.view ~width:8 () in
  (* Two frames so the sparkline histories engage; render must not raise
     and must carry the headline numbers. *)
  let r1 = Dash.render view (sample_snapshot ~final:false) in
  let r2 = Dash.render view (sample_snapshot ~final:true) in
  Alcotest.(check bool) "mentions strategy" true
    (Astring.String.is_infix ~affix:"deferred" r1);
  Alcotest.(check bool) "mentions hot key" true
    (Astring.String.is_infix ~affix:"[0,0.25)" r2);
  Alcotest.(check bool) "final frame marked" true
    (Astring.String.is_infix ~affix:"final" r2)

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "obs: flight rings",
      Alcotest.
        [
          test_case "overflow evicts oldest deterministically" `Quick
            test_flight_overflow;
          test_case "no overflow below capacity" `Quick test_flight_no_overflow;
          test_case "merge independent of join order" `Quick
            test_flight_merge_order_independent;
          test_case "export_metrics counts" `Quick test_flight_export_metrics;
          test_case "to_trace balances spans" `Quick test_flight_to_trace;
        ] );
    ( "obs: sketches",
      Alcotest.
        [
          test_case "exact under capacity" `Quick test_sketch_exact_under_capacity;
          test_case "bucket_key quantizer" `Quick test_bucket_key;
        ]
      @ qcheck [ sketch_zipf_guarantees; sketch_merge_vs_reference ] );
    ( "obs: dashboard",
      Alcotest.
        [
          test_case "snapshot JSON round-trips" `Quick test_dash_json;
          test_case "render smoke" `Quick test_dash_render;
        ] );
  ]
